// Quickstart: load an RDF graph with RDFS constraints from Turtle text,
// then answer a query with every technique of the paper and compare.
//
//   ./quickstart
//
// Walks the typical library flow: parse → QueryAnswerer → ParseSparql →
// Answer(strategy) → decode the table.

#include <cstdio>
#include <string>

#include "api/query_answering.h"
#include "query/sparql_parser.h"
#include "rdf/parser.h"

namespace {

constexpr const char* kData = R"(
@prefix ex: <http://example.org/company/> .

# --- RDFS constraints (the "schema") --------------------------------
ex:Manager rdfs:subClassOf ex:Employee .
ex:Employee rdfs:subClassOf ex:Person .
ex:manages rdfs:domain ex:Manager .
ex:manages rdfs:range ex:Project .
ex:leads rdfs:subPropertyOf ex:manages .

# --- data ------------------------------------------------------------
ex:ann a ex:Manager .
ex:bob a ex:Employee .
ex:carl ex:leads ex:apollo .
ex:dana ex:manages ex:hermes .
ex:apollo ex:name "Apollo" .
)";

}  // namespace

int main() {
  using rdfref::api::QueryAnswerer;
  using rdfref::api::Strategy;
  using rdfref::api::StrategyName;

  // 1. Parse the data (constraints are ordinary triples).
  rdfref::rdf::Graph graph;
  rdfref::Status st =
      rdfref::rdf::TurtleParser::ParseString(kData, &graph);
  if (!st.ok()) {
    std::fprintf(stderr, "parse error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu explicit triples\n", graph.size());

  // 2. Build the answerer (extracts + saturates the schema, indexes).
  QueryAnswerer answerer(std::move(graph));

  // 3. Ask for all employees. ann (a Manager) and carl/dana (who manage
  //    something, hence are Managers by domain) are implicit answers.
  auto query = rdfref::query::ParseSparql(
      "PREFIX ex: <http://example.org/company/>\n"
      "SELECT ?x WHERE { ?x a ex:Employee . }",
      &answerer.dict());
  if (!query.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 query.status().ToString().c_str());
    return 1;
  }

  const Strategy strategies[] = {
      Strategy::kSaturation,    Strategy::kRefUcq,  Strategy::kRefScq,
      Strategy::kRefGcov,       Strategy::kDatalog, Strategy::kRefIncomplete,
  };
  for (Strategy s : strategies) {
    auto table = answerer.Answer(*query, s);
    if (!table.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", StrategyName(s),
                   table.status().ToString().c_str());
      continue;
    }
    table->Sort();
    std::printf("\n%s -> %zu answer(s)\n", StrategyName(s),
                table->NumRows());
    std::printf("%s", table->ToString(answerer.dict()).c_str());
  }
  std::printf(
      "\nNote how REF-INCOMPLETE (the Virtuoso/AllegroGraph-style fixed\n"
      "strategy) misses carl and dana: it ignores domain constraints.\n");
  return 0;
}
