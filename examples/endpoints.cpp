// The distributed scenario of Section 1: Semantic Web data "split across
// independent sources", where an implicit fact follows from a fact in one
// endpoint and a constraint in another — and saturation is unfeasible
// because no endpoint may be rewritten.
//
//   ./endpoints

#include <cstdio>

#include "federation/federation.h"
#include "query/sparql_parser.h"
#include "rdf/parser.h"

namespace {

constexpr const char* kMuseumFacts = R"(
@prefix art: <http://example.org/art/> .
art:aleph a art:ShortStoryCollection .
art:aleph art:writtenBy art:borges .
art:borges art:hasName "J. L. Borges" .
art:southern_library art:holdsCopyOf art:aleph .
)";

constexpr const char* kLibraryFacts = R"(
@prefix art: <http://example.org/art/> .
art:ficciones a art:ShortStoryCollection .
art:ficciones art:writtenBy art:borges .
art:national_library art:holdsCopyOf art:ficciones .
)";

constexpr const char* kOntology = R"(
@prefix art: <http://example.org/art/> .
art:ShortStoryCollection rdfs:subClassOf art:Book .
art:Book rdfs:subClassOf art:Publication .
art:writtenBy rdfs:subPropertyOf art:hasAuthor .
art:writtenBy rdfs:range art:Person .
art:holdsCopyOf rdfs:domain art:Library .
art:holdsCopyOf rdfs:range art:Publication .
)";

}  // namespace

int main() {
  using rdfref::federation::EndpointOptions;
  using rdfref::federation::Federation;

  Federation federation;
  auto add = [&federation](const char* name, const char* turtle,
                           EndpointOptions options) {
    rdfref::rdf::Graph graph;
    rdfref::Status st =
        rdfref::rdf::TurtleParser::ParseString(turtle, &graph);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", name, st.ToString().c_str());
      std::exit(1);
    }
    federation.AddEndpoint(name, graph, options);
    std::printf("endpoint '%s': %zu triples\n", name, graph.size());
  };

  add("museum", kMuseumFacts, EndpointOptions{});
  add("library", kLibraryFacts, EndpointOptions{});
  add("ontology", kOntology, EndpointOptions{});
  std::printf("mediated schema: %zu constraint(s) after saturation\n\n",
              federation.schema().NumConstraints());

  auto query = rdfref::query::ParseSparql(
      "PREFIX art: <http://example.org/art/>\n"
      "SELECT ?lib ?pub WHERE {\n"
      "  ?lib a art:Library .\n"
      "  ?lib art:holdsCopyOf ?pub .\n"
      "  ?pub a art:Publication .\n"
      "}",
      &federation.dict());
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("q: %s\n\n", query->ToString(federation.dict()).c_str());

  // A naive mediator (no reasoning) sees nothing: no endpoint asserts any
  // art:Library or art:Publication typing.
  rdfref::engine::Table naive = federation.EvaluateWithoutReasoning(*query);
  std::printf("naive mediator (no reasoning): %zu answer(s)\n",
              naive.NumRows());

  // Mediated reformulation recovers the cross-endpoint entailments:
  // libraries are typed by the domain of holdsCopyOf, publications through
  // the class hierarchy and the range of holdsCopyOf.
  auto answer = federation.Answer(*query);
  if (!answer.ok()) {
    std::fprintf(stderr, "%s\n", answer.status().ToString().c_str());
    return 1;
  }
  answer->Sort();
  std::printf("mediated Ref (GCov cover):   %zu answer(s)\n%s\n",
              answer->NumRows(),
              answer->ToString(federation.dict()).c_str());

  std::printf("requests served per endpoint:\n");
  for (const auto& ep : federation.endpoints()) {
    std::printf("  %-18s %llu\n", ep->name().c_str(),
                static_cast<unsigned long long>(ep->requests_served()));
  }
  return 0;
}
