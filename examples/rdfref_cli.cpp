// Command-line query answering over an RDF file — the library as a tool.
//
//   ./rdfref_cli DATA.ttl QUERY.rq [--strategy=sat|ucq|scq|gcov|incomplete|datalog]
//                                  [--explain] [--stats] [--max-rows=N]
//
// DATA.ttl holds triples (constraints included) in the Turtle subset;
// QUERY.rq holds one SELECT ... WHERE { ... } conjunctive query.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "api/query_answering.h"
#include "query/sparql_parser.h"
#include "rdf/parser.h"
#include "storage/serialize.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s DATA.ttl|DATA.rdfb QUERY.rq "
      "[--strategy=sat|ucq|scq|gcov|incomplete|datalog] [--explain] "
      "[--stats] [--max-rows=N] [--save-binary=OUT.rdfb]\n",
      argv0);
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream contents;
  contents << in.rdbuf();
  *out = contents.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using rdfref::api::AnswerProfile;
  using rdfref::api::QueryAnswerer;
  using rdfref::api::Strategy;
  using rdfref::api::StrategyName;

  if (argc < 3) return Usage(argv[0]);
  const std::string data_path = argv[1];
  const std::string query_path = argv[2];
  Strategy strategy = Strategy::kRefGcov;
  bool explain = false, stats = false;
  size_t max_rows = 20;
  std::string save_binary;
  for (int i = 3; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--strategy=", 0) == 0) {
      std::string name = arg.substr(11);
      if (name == "sat") {
        strategy = Strategy::kSaturation;
      } else if (name == "ucq") {
        strategy = Strategy::kRefUcq;
      } else if (name == "scq") {
        strategy = Strategy::kRefScq;
      } else if (name == "gcov") {
        strategy = Strategy::kRefGcov;
      } else if (name == "incomplete") {
        strategy = Strategy::kRefIncomplete;
      } else if (name == "datalog") {
        strategy = Strategy::kDatalog;
      } else {
        return Usage(argv[0]);
      }
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg.rfind("--max-rows=", 0) == 0) {
      max_rows = static_cast<size_t>(std::atoll(arg.c_str() + 11));
    } else if (arg.rfind("--save-binary=", 0) == 0) {
      save_binary = arg.substr(14);
    } else {
      return Usage(argv[0]);
    }
  }

  rdfref::rdf::Graph graph;
  const bool binary_input =
      data_path.size() > 5 &&
      data_path.compare(data_path.size() - 5, 5, ".rdfb") == 0;
  if (binary_input) {
    auto loaded = rdfref::storage::LoadGraph(data_path);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s: %s\n", data_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    graph = std::move(*loaded);
  } else {
    rdfref::Status st =
        rdfref::rdf::TurtleParser::ParseFile(data_path, &graph);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", data_path.c_str(),
                   st.ToString().c_str());
      return 1;
    }
  }
  if (!save_binary.empty()) {
    rdfref::Status st = rdfref::storage::SaveGraph(graph, save_binary);
    if (!st.ok()) {
      std::fprintf(stderr, "%s: %s\n", save_binary.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %s\n", save_binary.c_str());
  }
  std::fprintf(stderr, "loaded %zu triples from %s\n", graph.size(),
               data_path.c_str());
  QueryAnswerer answerer(std::move(graph));
  if (stats) {
    std::printf("%s\n",
                answerer.ref_store().stats().Report(answerer.dict()).c_str());
  }

  std::string query_text;
  if (!ReadFile(query_path, &query_text)) {
    std::fprintf(stderr, "cannot read %s\n", query_path.c_str());
    return 1;
  }
  auto query = rdfref::query::ParseSparql(query_text, &answerer.dict());
  if (!query.ok()) {
    std::fprintf(stderr, "%s: %s\n", query_path.c_str(),
                 query.status().ToString().c_str());
    return 1;
  }

  if (explain) {
    rdfref::engine::Evaluator evaluator(&answerer.ref_store());
    std::printf("%s\n", evaluator.ExplainCq(*query).c_str());
  }

  AnswerProfile profile;
  auto table = answerer.Answer(*query, strategy, &profile);
  if (!table.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", StrategyName(strategy),
                 table.status().ToString().c_str());
    return 1;
  }
  table->Sort();
  std::printf("%s", table->ToString(answerer.dict(), max_rows).c_str());
  std::fprintf(stderr,
               "%s: %zu answer(s); prepare %.2f ms, eval %.2f ms, %llu "
               "reformulated CQ(s)%s%s\n",
               StrategyName(strategy), table->NumRows(),
               profile.prepare_millis, profile.eval_millis,
               static_cast<unsigned long long>(profile.reformulation_cqs),
               strategy == Strategy::kRefGcov ? "; cover " : "",
               strategy == Strategy::kRefGcov
                   ? profile.cover.ToString().c_str()
                   : "");
  return 0;
}
