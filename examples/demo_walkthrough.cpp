// The demonstration outline of Section 5, as a CLI walkthrough:
//   1. pick an RDF graph and visualize its statistics;
//   2. answer a query through all the systems, comparing performance and
//      completeness;
//   3. inspect cardinalities, costs, and GCov's explored alternatives;
//   4. modify the constraints and re-run to see the impact.
//
//   ./demo_walkthrough [lubm|dblp|geo]

#include <cstdio>
#include <cstring>
#include <string>

#include "api/query_answering.h"
#include "datagen/dblp.h"
#include "datagen/geo.h"
#include "datagen/lubm.h"
#include "query/sparql_parser.h"

namespace {

struct ScenarioSpec {
  std::string name;
  std::string query;  // full SPARQL text
};

void RunAllStrategies(rdfref::api::QueryAnswerer* answerer,
                      const rdfref::query::Cq& q) {
  using rdfref::api::AnswerProfile;
  using rdfref::api::Strategy;
  using rdfref::api::StrategyName;
  std::printf("%-16s %10s %12s %12s %9s\n", "system", "answers",
              "prepare(ms)", "eval(ms)", "#CQs");
  for (Strategy s : {Strategy::kSaturation, Strategy::kRefUcq,
                     Strategy::kRefScq, Strategy::kRefGcov,
                     Strategy::kRefIncomplete, Strategy::kDatalog}) {
    AnswerProfile profile;
    auto table = answerer->Answer(q, s, &profile);
    if (!table.ok()) {
      std::printf("%-16s failed: %s\n", StrategyName(s),
                  table.status().ToString().c_str());
      continue;
    }
    std::printf("%-16s %10zu %12.2f %12.2f %9llu\n", StrategyName(s),
                table->NumRows(), profile.prepare_millis,
                profile.eval_millis,
                static_cast<unsigned long long>(profile.reformulation_cqs));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using rdfref::api::AnswerProfile;
  using rdfref::api::QueryAnswerer;
  using rdfref::api::Strategy;

  const char* which = argc > 1 ? argv[1] : "lubm";

  // ------- Step 1: pick a graph, visualize its statistics -------------
  rdfref::rdf::Graph graph;
  ScenarioSpec spec;
  if (std::strcmp(which, "dblp") == 0) {
    rdfref::datagen::Dblp::Generate({5000, 7}, &graph);
    spec.name = "DBLP-style bibliography";
    spec.query =
        "PREFIX dblp: <http://example.org/dblp/>\n"
        "SELECT ?p ?a WHERE { ?p a dblp:Publication . ?p dblp:creator ?a . }";
  } else if (std::strcmp(which, "geo") == 0) {
    rdfref::datagen::Geo::Generate({8, 11}, &graph);
    spec.name = "INSEE/IGN-style geographic data";
    spec.query =
        "PREFIX geo: <http://example.org/geo/>\n"
        "SELECT ?c ?d WHERE { ?c a geo:AdministrativeUnit . "
        "?c geo:locatedIn ?d . }";
  } else {
    rdfref::datagen::LubmConfig config;
    config.universities = 1;
    config.scale = 1.0;
    rdfref::datagen::Lubm::Generate(config, &graph);
    spec.name = "LUBM-style university data";
    spec.query =
        "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
        "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . "
        "?x ub:memberOf ?z . ?x ub:undergraduateDegreeFrom "
        "<http://www.University2.edu> . }";
  }

  std::printf("=== Step 1: dataset '%s'\n", spec.name.c_str());
  QueryAnswerer answerer(std::move(graph));
  std::printf("%s\n",
              answerer.ref_store().stats().Report(answerer.dict()).c_str());

  auto query = rdfref::query::ParseSparql(spec.query, &answerer.dict());
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("query: %s\n\n", query->ToString(answerer.dict()).c_str());

  // ------- Step 2: answer through all systems -------------------------
  std::printf("=== Step 2: all systems\n");
  RunAllStrategies(&answerer, *query);

  // ------- Step 3: inspect plans, costs, explored covers --------------
  std::printf("\n=== Step 3: GCov's explored alternatives\n");
  AnswerProfile profile;
  auto table = answerer.Answer(*query, Strategy::kRefGcov, &profile);
  if (table.ok()) {
    std::printf("%s", profile.gcov.ToString().c_str());
    std::printf("per-fragment detail of the chosen JUCQ:\n");
    for (const auto& f : profile.jucq.fragments) {
      std::printf("  %-12s %6llu CQs -> %9llu rows in %8.2f ms\n",
                  f.cover_fragment.c_str(),
                  static_cast<unsigned long long>(f.ucq_members),
                  static_cast<unsigned long long>(f.result_rows), f.millis);
    }
    // The chosen physical plan (demo step 3: "inspect the chosen query
    // plan").
    rdfref::engine::Evaluator evaluator(&answerer.ref_store());
    std::printf("\n%s", evaluator.ExplainCq(*query).c_str());
  }

  // ------- Step 4: modify the constraints, re-run ----------------------
  std::printf("\n=== Step 4: drop all domain/range constraints, re-run\n");
  rdfref::rdf::Graph modified;
  {
    // Rebuild the scenario graph, then strip domain/range triples.
    rdfref::rdf::Graph original;
    if (std::strcmp(which, "dblp") == 0) {
      rdfref::datagen::Dblp::Generate({5000, 7}, &original);
    } else if (std::strcmp(which, "geo") == 0) {
      rdfref::datagen::Geo::Generate({8, 11}, &original);
    } else {
      rdfref::datagen::LubmConfig config;
      config.universities = 1;
      config.scale = 1.0;
      rdfref::datagen::Lubm::Generate(config, &original);
    }
    size_t dropped = 0;
    for (const rdfref::rdf::Triple& t : original.SortedTriples()) {
      if (t.p == rdfref::rdf::vocab::kDomainId ||
          t.p == rdfref::rdf::vocab::kRangeId) {
        ++dropped;
        continue;
      }
      const rdfref::rdf::Dictionary& dict = original.dict();
      modified.Add(dict.Lookup(t.s), dict.Lookup(t.p), dict.Lookup(t.o));
    }
    std::printf("dropped %zu domain/range constraints\n", dropped);
  }
  QueryAnswerer modified_answerer(std::move(modified));
  auto modified_query =
      rdfref::query::ParseSparql(spec.query, &modified_answerer.dict());
  if (modified_query.ok()) {
    RunAllStrategies(&modified_answerer, *modified_query);
    std::printf(
        "\nWith fewer constraints the reformulations shrink (fewer CQs)\n"
        "and answers may be lost — \"constraints ... may have a dramatic\n"
        "impact\" (Section 5, step 4).\n");
  }
  return 0;
}
