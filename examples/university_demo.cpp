// Example 1 of the paper at laptop scale: the LUBM query whose UCQ
// reformulation explodes, whose SCQ reformulation is slow, and whose
// well-chosen JUCQ cover is fast.
//
//   ./university_demo [universities=2] [scale=1.0]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "api/query_answering.h"
#include "datagen/lubm.h"
#include "query/sparql_parser.h"

namespace {

void PrintProfile(const char* label, const rdfref::api::AnswerProfile& p,
                  size_t answers) {
  std::printf("%-22s reformulation: %8llu CQs   prepare: %8.2f ms   "
              "eval: %9.2f ms   answers: %zu\n",
              label, static_cast<unsigned long long>(p.reformulation_cqs),
              p.prepare_millis, p.eval_millis, answers);
  for (const auto& f : p.jucq.fragments) {
    std::printf("    fragment %-14s %6llu CQs -> %9llu rows in %8.2f ms\n",
                f.cover_fragment.c_str(),
                static_cast<unsigned long long>(f.ucq_members),
                static_cast<unsigned long long>(f.result_rows), f.millis);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using rdfref::api::AnswerOptions;
  using rdfref::api::AnswerProfile;
  using rdfref::api::QueryAnswerer;
  using rdfref::api::Strategy;

  rdfref::datagen::LubmConfig config;
  config.universities = argc > 1 ? std::atoi(argv[1]) : 2;
  config.scale = argc > 2 ? std::atof(argv[2]) : 1.0;
  // Keep the degree pool compact so the Example 1 join is non-empty at
  // laptop scale (LUBM 100M references ~1000 universities at ~1000x size).
  config.referenced_universities = 10;

  std::printf("generating LUBM-style data (%d universities, scale %.2f)\n",
              config.universities, config.scale);
  rdfref::rdf::Graph graph;
  rdfref::datagen::Lubm::Generate(config, &graph);
  QueryAnswerer answerer(std::move(graph));
  std::printf("%zu explicit triples\n\n", answerer.num_explicit_triples());

  const std::string univ = rdfref::datagen::Lubm::UniversityUri(1);
  auto query = rdfref::query::ParseSparql(
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?x ?u ?y ?v ?z WHERE {\n"
      "  ?x rdf:type ?u .\n"                       // (t1)
      "  ?y rdf:type ?v .\n"                       // (t2)
      "  ?x ub:mastersDegreeFrom <" + univ + "> .\n"   // (t3)
      "  ?y ub:doctoralDegreeFrom <" + univ + "> .\n"  // (t4)
      "  ?x ub:memberOf ?z .\n"                    // (t5)
      "  ?y ub:memberOf ?z .\n"                    // (t6)
      "}",
      &answerer.dict());
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }

  // The UCQ reformulation explodes: count it without materializing.
  rdfref::reformulation::Reformulator reformulator(&answerer.schema());
  auto count = reformulator.CountReformulations(*query);
  if (count.ok()) {
    std::printf("UCQ reformulation of q: %llu CQs "
                "(paper: 318,096 — \"could not even be parsed\")\n\n",
                static_cast<unsigned long long>(*count));
  }

  // SCQ (the singleton cover of [15]).
  AnswerProfile scq;
  auto scq_table = answerer.Answer(*query, Strategy::kRefScq, &scq);
  if (!scq_table.ok()) {
    std::fprintf(stderr, "SCQ failed: %s\n",
                 scq_table.status().ToString().c_str());
    return 1;
  }
  PrintProfile("SCQ  (q' of Ex. 1)", scq, scq_table->NumRows());

  // The paper's winning cover q'' = {t1,t3}{t3,t5}{t2,t4}{t4,t6}.
  AnswerOptions options;
  options.cover = rdfref::query::Cover({{0, 2}, {2, 4}, {1, 3}, {3, 5}});
  AnswerProfile jucq;
  auto jucq_table =
      answerer.Answer(*query, Strategy::kRefJucq, &jucq, options);
  if (!jucq_table.ok()) {
    std::fprintf(stderr, "JUCQ failed: %s\n",
                 jucq_table.status().ToString().c_str());
    return 1;
  }
  PrintProfile("JUCQ (q'' of Ex. 1)", jucq, jucq_table->NumRows());

  // GCov finds a cover automatically.
  AnswerProfile gcov;
  auto gcov_table = answerer.Answer(*query, Strategy::kRefGcov, &gcov);
  if (!gcov_table.ok()) {
    std::fprintf(stderr, "GCov failed: %s\n",
                 gcov_table.status().ToString().c_str());
    return 1;
  }
  std::printf("\nGCov selected cover: %s\n", gcov.cover.ToString().c_str());
  PrintProfile("GCov-selected JUCQ", gcov, gcov_table->NumRows());

  double speedup = scq.eval_millis / (jucq.eval_millis > 0.001
                                          ? jucq.eval_millis
                                          : 0.001);
  std::printf("\nq'' evaluation is %.1fx faster than q' "
              "(paper: >430x at 100M triples)\n",
              speedup);
  return 0;
}
