// Figure 2 of the paper, end to end: the bibliographic RDF graph, its
// implicit (dashed) triples, and the Section 3 query
//   q(x3) :- x1 hasAuthor x2, x2 hasName x3, x1 x4 "1949"
// whose answer is {"J. L. Borges"} — but only with reasoning.

#include <cstdio>

#include "api/query_answering.h"
#include "datagen/bibliography.h"
#include "query/sparql_parser.h"
#include "reasoner/saturation.h"
#include "rdf/parser.h"

int main() {
  using rdfref::api::QueryAnswerer;
  using rdfref::api::Strategy;
  using rdfref::api::StrategyName;

  rdfref::rdf::Graph graph;
  rdfref::datagen::Bibliography::AddFigure2Graph(&graph);
  std::printf("The explicit graph G (Figure 2, solid edges):\n%s\n",
              rdfref::rdf::ToNTriples(graph).c_str());

  QueryAnswerer answerer(std::move(graph));

  // Show the saturation G∞: the dashed edges of Figure 2 appear.
  size_t explicit_size = answerer.num_explicit_triples();
  const rdfref::storage::Store& saturated = answerer.sat_store();
  std::printf("G has %zu triples; G∞ has %zu (%zu entailed).\n\n",
              explicit_size, saturated.size(),
              saturated.size() - explicit_size);

  auto query = rdfref::query::ParseSparql(
      "PREFIX bib: <http://example.org/bib/>\n"
      "SELECT ?x3 WHERE {\n"
      "  ?x1 bib:hasAuthor ?x2 .\n"
      "  ?x2 bib:hasName ?x3 .\n"
      "  ?x1 ?x4 \"1949\" .\n"
      "}",
      &answerer.dict());
  if (!query.ok()) {
    std::fprintf(stderr, "%s\n", query.status().ToString().c_str());
    return 1;
  }
  std::printf("q: %s\n\n", query->ToString(answerer.dict()).c_str());

  // Plain evaluation against G is empty (Section 3: "evaluating q only
  // against G leads to the empty answer, which is obviously incomplete").
  rdfref::engine::Evaluator plain(&answerer.ref_store());
  std::printf("evaluation against explicit G only: %zu answer(s)\n\n",
              plain.EvaluateCq(*query).NumRows());

  // Reformulation: show the UCQ the 13 rules produce.
  rdfref::reformulation::Reformulator reformulator(&answerer.schema());
  auto ucq = reformulator.Reformulate(*query);
  if (ucq.ok()) {
    std::printf("UCQ reformulation (%zu CQs):\n%s\n\n", ucq->size(),
                ucq->ToString(answerer.dict()).c_str());
  }

  for (Strategy s : {Strategy::kSaturation, Strategy::kRefUcq,
                     Strategy::kRefScq, Strategy::kRefGcov,
                     Strategy::kDatalog}) {
    auto table = answerer.Answer(*query, s);
    if (!table.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", StrategyName(s),
                   table.status().ToString().c_str());
      continue;
    }
    std::printf("%-10s -> %s", StrategyName(s),
                table->ToString(answerer.dict()).c_str());
  }
  return 0;
}
