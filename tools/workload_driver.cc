// Macro-benchmark CLI: runs the sp2b closed-loop workload over a sweep of
// (strategy, client count, writer on/off) configurations against one shared
// QueryAnswerer and emits an "rdfref-workload/1" JSON document.
//
//   workload_driver --scale 0.5 --clients 1,4,16 --strategies REF-UCQ,REF-JUCQ
//       --duration-ms 500 --writer-sweep --json BENCH_PR8_macro.json
//
// --require-progress makes the process exit nonzero unless every
// configuration completed queries without errors — the CI smoke contract.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "workload/workload.h"

namespace {

using rdfref::Result;
using rdfref::api::Strategy;
using rdfref::workload::DriverOptions;
using rdfref::workload::WorkloadMix;
using rdfref::workload::WorkloadReport;

struct Flags {
  double scale = 0.25;
  uint64_t seed = 1;
  std::vector<int> clients = {1, 4, 16};
  std::vector<Strategy> strategies = {Strategy::kRefUcq, Strategy::kRefJucq};
  double duration_ms = 500;
  int ops_per_client = 0;  // 0 = duration mode
  int writer_mode = 2;     // 0 = off, 1 = on, 2 = sweep both
  int cache_mode = 0;      // 0 = off, 1 = on, 2 = sweep both
  bool view_selection = true;
  std::string json_path;
  bool require_progress = false;
  bool require_cache_hits = false;
};

bool ParseStrategy(const std::string& name, Strategy* out) {
  const struct {
    const char* name;
    Strategy s;
  } kTable[] = {
      {"SAT", Strategy::kSaturation},
      {"REF-UCQ", Strategy::kRefUcq},
      {"REF-SCQ", Strategy::kRefScq},
      {"REF-JUCQ", Strategy::kRefJucq},
      {"REF-GCOV", Strategy::kRefGcov},
      {"REF-INCOMPLETE", Strategy::kRefIncomplete},
      {"DATALOG", Strategy::kDatalog},
  };
  for (const auto& entry : kTable) {
    if (name == entry.name) {
      *out = entry.s;
      return true;
    }
  }
  return false;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> parts;
  std::stringstream ss(s);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

int Usage() {
  std::cerr
      << "usage: workload_driver [--scale F] [--seed N] [--clients A,B,C]\n"
         "         [--strategies REF-UCQ,REF-JUCQ,...] [--duration-ms F]\n"
         "         [--ops N] [--writer | --no-writer | --writer-sweep]\n"
         "         [--view-cache | --no-view-cache | --view-cache-sweep]\n"
         "         [--no-view-selection] [--require-cache-hits]\n"
         "         [--json PATH] [--require-progress]\n";
  return 2;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::stod(argv[++i]);
      return true;
    };
    if (arg == "--scale") {
      if (!next(&flags->scale)) return false;
    } else if (arg == "--seed") {
      double v;
      if (!next(&v)) return false;
      flags->seed = static_cast<uint64_t>(v);
    } else if (arg == "--clients") {
      if (i + 1 >= argc) return false;
      flags->clients.clear();
      for (const std::string& part : SplitCsv(argv[++i])) {
        flags->clients.push_back(std::stoi(part));
      }
      if (flags->clients.empty()) return false;
    } else if (arg == "--strategies") {
      if (i + 1 >= argc) return false;
      flags->strategies.clear();
      for (const std::string& part : SplitCsv(argv[++i])) {
        Strategy s;
        if (!ParseStrategy(part, &s)) {
          std::cerr << "unknown strategy: " << part << "\n";
          return false;
        }
        flags->strategies.push_back(s);
      }
      if (flags->strategies.empty()) return false;
    } else if (arg == "--duration-ms") {
      if (!next(&flags->duration_ms)) return false;
    } else if (arg == "--ops") {
      double v;
      if (!next(&v)) return false;
      flags->ops_per_client = static_cast<int>(v);
    } else if (arg == "--writer") {
      flags->writer_mode = 1;
    } else if (arg == "--no-writer") {
      flags->writer_mode = 0;
    } else if (arg == "--writer-sweep") {
      flags->writer_mode = 2;
    } else if (arg == "--view-cache") {
      flags->cache_mode = 1;
    } else if (arg == "--no-view-cache") {
      flags->cache_mode = 0;
    } else if (arg == "--view-cache-sweep") {
      flags->cache_mode = 2;
    } else if (arg == "--no-view-selection") {
      flags->view_selection = false;
    } else if (arg == "--require-cache-hits") {
      flags->require_cache_hits = true;
    } else if (arg == "--json") {
      if (i + 1 >= argc) return false;
      flags->json_path = argv[++i];
    } else if (arg == "--require-progress") {
      flags->require_progress = true;
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return false;
    }
  }
  return true;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";  // canonical view keys separate atoms with newlines
    } else {
      out += c;
    }
  }
  return out;
}

struct RunRecord {
  Strategy strategy;
  int clients;
  bool writer;
  bool cache;
  WorkloadReport report;
};

void WriteJson(std::ostream& os, const Flags& flags,
               const std::vector<RunRecord>& runs) {
  char buf[64];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
    return std::string(buf);
  };
  os << "{\n  \"schema\": \"rdfref-workload/1\",\n"
     << "  \"scenario\": \"sp2b\",\n"
     << "  \"scale\": " << num(flags.scale) << ",\n"
     << "  \"seed\": " << flags.seed << ",\n"
     << "  \"duration_ms\": " << num(flags.duration_ms) << ",\n"
     << "  \"ops_per_client\": " << flags.ops_per_client << ",\n"
     << "  \"host_threads\": " << std::thread::hardware_concurrency()
     << ",\n  \"results\": [\n";
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRecord& r = runs[i];
    const WorkloadReport& rep = r.report;
    os << "    {\"strategy\": \"" << rdfref::api::StrategyName(r.strategy)
       << "\", \"clients\": " << r.clients
       << ", \"writer\": " << (r.writer ? "true" : "false")
       << ", \"queries\": " << rep.total_queries
       << ", \"rows\": " << rep.total_rows
       << ", \"errors\": " << rep.errors
       << ", \"writer_ops\": " << rep.writer_ops
       << ", \"wall_ms\": " << num(rep.wall_ms)
       << ", \"qps\": " << num(rep.throughput_qps)
       << ", \"p50_ms\": " << num(rep.p50_ms)
       << ", \"p95_ms\": " << num(rep.p95_ms)
       << ", \"p99_ms\": " << num(rep.p99_ms)
       << ",\n     \"view_cache\": " << (r.cache ? "true" : "false")
       << ", \"cache_hits\": " << rep.cache_hits
       << ", \"cache_misses\": " << rep.cache_misses
       << ", \"cache_hit_rate\": " << num(rep.cache_hit_rate)
       << ", \"cache_installs\": " << rep.cache_installs
       << ", \"cache_evictions\": " << rep.cache_evictions
       << ", \"cache_invalidations\": " << rep.cache_invalidations
       << ", \"cache_bytes\": " << rep.cache_bytes
       << ", \"cache_entries\": " << rep.cache_entries
       << ",\n     \"selected_views\": [";
    for (size_t v = 0; v < rep.selected_views.size(); ++v) {
      if (v) os << ", ";
      os << "\"" << JsonEscape(rep.selected_views[v]) << "\"";
    }
    os << "],\n     \"per_query\": [";
    for (size_t q = 0; q < rep.per_query.size(); ++q) {
      const auto& stats = rep.per_query[q];
      if (q) os << ", ";
      os << "{\"name\": \"" << JsonEscape(stats.name)
         << "\", \"count\": " << stats.count << ", \"rows\": " << stats.rows
         << ", \"p50_ms\": " << num(stats.p50_ms)
         << ", \"p95_ms\": " << num(stats.p95_ms)
         << ", \"p99_ms\": " << num(stats.p99_ms) << "}";
    }
    os << "]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return Usage();

  std::cerr << "generating sp2b graph (scale " << flags.scale << ")...\n";
  auto answerer = rdfref::workload::MakeSp2bAnswerer(flags.scale);
  Result<WorkloadMix> mix = rdfref::workload::Sp2bQueryMix(answerer.get());
  if (!mix.ok()) {
    std::cerr << "query mix failed: " << mix.status().ToString() << "\n";
    return 1;
  }

  std::vector<bool> writer_settings;
  if (flags.writer_mode == 0) writer_settings = {false};
  if (flags.writer_mode == 1) writer_settings = {true};
  if (flags.writer_mode == 2) writer_settings = {false, true};
  std::vector<bool> cache_settings;
  if (flags.cache_mode == 0) cache_settings = {false};
  if (flags.cache_mode == 1) cache_settings = {true};
  if (flags.cache_mode == 2) cache_settings = {false, true};

  std::vector<RunRecord> runs;
  bool ok = true;
  for (Strategy strategy : flags.strategies) {
    for (int clients : flags.clients) {
      for (bool writer : writer_settings) {
        if (writer && (strategy == Strategy::kSaturation ||
                       strategy == Strategy::kDatalog)) {
          continue;  // lazy strategy state is not update-safe; skip quietly
        }
        if (strategy == Strategy::kDatalog && clients > 1) continue;
        for (bool cache : cache_settings) {
          if (cache && (strategy == Strategy::kSaturation ||
                        strategy == Strategy::kDatalog)) {
            continue;  // the view cache serves the Ref strategies only
          }
          DriverOptions options;
          options.strategy = strategy;
          options.clients = clients;
          options.seed = flags.seed;
          options.ops_per_client = flags.ops_per_client;
          options.duration_ms = flags.duration_ms;
          options.concurrent_writer = writer;
          options.view_cache = cache;
          options.view_selection = flags.view_selection;
          Result<WorkloadReport> report =
              rdfref::workload::RunClosedLoop(answerer.get(), *mix, options);
          if (!report.ok()) {
            std::cerr << rdfref::api::StrategyName(strategy) << " x" << clients
                      << (writer ? " +writer" : "") << (cache ? " +cache" : "")
                      << " failed: " << report.status().ToString() << "\n";
            ok = false;
            continue;
          }
          std::cerr << rdfref::api::StrategyName(strategy) << " x" << clients
                    << (writer ? " +writer" : "") << (cache ? " +cache" : "")
                    << ": " << report->total_queries << " queries, "
                    << static_cast<int>(report->throughput_qps)
                    << " qps, p50 " << report->p50_ms << " ms, p99 "
                    << report->p99_ms << " ms, errors " << report->errors;
          if (cache) {
            std::cerr << ", hit-rate " << report->cache_hit_rate
                      << " (" << report->cache_hits << "/"
                      << (report->cache_hits + report->cache_misses) << ")";
          }
          std::cerr << "\n";
          if (report->total_queries == 0 || report->errors != 0) ok = false;
          if (cache && flags.require_cache_hits && report->cache_hits == 0) {
            std::cerr << "FAIL: cache-on run recorded zero hits\n";
            ok = false;
          }
          runs.push_back({strategy, clients, writer, cache,
                          std::move(*report)});
        }
      }
    }
  }

  if (!flags.json_path.empty()) {
    std::ofstream out(flags.json_path);
    if (!out) {
      std::cerr << "cannot open " << flags.json_path << "\n";
      return 1;
    }
    WriteJson(out, flags, runs);
    std::cerr << "wrote " << flags.json_path << "\n";
  } else {
    WriteJson(std::cout, flags, runs);
  }

  if (flags.require_progress && !ok) {
    std::cerr << "FAIL: some configuration made no progress or errored\n";
    return 1;
  }
  return 0;
}
