#!/usr/bin/env python3
"""rdfref_check: Clang-AST borrow & snapshot-discipline checker (DESIGN.md §14).

The zero-copy paths hand out `std::span` views into store permutation
indexes, delta runs, and pinned snapshot epochs. Regex lint cannot see
whether a span outlives its source or whether a raw `SnapshotSource*`
escaped its pinning `shared_ptr` — those are properties of the AST. This
tool drives `clang++ -Xclang -ast-dump=json` over the compile database
(no LibTooling build required) and enforces the repo invariants the
compiler itself cannot:

  span-escape          A borrowed span must not be stored in a field of an
                       un-annotated class, a global/static, or a by-value
                       lambda capture; any function returning a borrowed
                       span must carry RDFREF_LIFETIME_BOUND or
                       RDFREF_BORROWS_FROM (src/common/annotations.h).
  snapshot-pin         No raw SnapshotSource pointer/reference stored in a
                       field or global outside its pinning shared_ptr, and
                       no `.get()` called directly on the temporary
                       returned by VersionSet::snapshot()/PinSnapshot() —
                       the pin dies at the end of the full-expression.
  guard-completeness   In a class that owns a common::Mutex, every mutable
                       field written outside constructors and touched from
                       two or more methods must carry RDFREF_GUARDED_BY
                       (or RDFREF_NOT_GUARDED with a reason). This is the
                       gap Clang's thread-safety analysis silently skips:
                       unannotated fields are simply not checked.
  termid-arith         AST port of the old regex rule, now typed: +, -,
                       +=, -=, ++, -- on an operand whose type is
                       rdf::TermId, outside src/rdf/ and the hierarchy
                       encoder. Ids are interval codes, not integers.
  std-function         AST port of the old regex rule: std::function
                       parameters on engine/storage hot paths (virtual
                       dispatch per triple; prefer spans or templates).

A deliberate violation is silenced for one declaration with
`// rdfref-check: allow(<rule>)` on the finding line, up to two lines
above it, or the line after (multi-line signatures) — plus a prose
justification. Stale escapes (the rule no longer fires there) and unknown
rule names are themselves findings, so suppressions cannot outlive the
code they excuse.

Modes:
  (default)        analyze every src/**.cc entry of the compile database;
                   exits 0 with a skip note when no clang++ is installed
                   (the container toolchain is GCC; CI installs clang-19).
  --require-clang  same, but a missing clang++ is an error (CI).
  --ast-json FILE  run the rules over one pre-dumped AST (or a fixture
                   wrapper with embedded source text); exit 1 on findings.
                   Used by the tests/negative/ WILL_FAIL ctest entries.
  --probe FILE     dump+check a single source file with -DRDFREF_NEGATIVE;
                   exit 0 iff at least one finding fires (negative gate).
  --self-test      run the rule engine against the hand-written AST
                   fixtures in tools/rdfref_check_testdata/.

Per-TU results are cached in .rdfref_check_cache/ keyed on the compile
command, the TU contents, and every repo-local header it includes (via
clang -MM), so incremental CI runs stay fast; CI persists the directory
with actions/cache. `--json-out findings.json` writes the machine-readable
artifact CI uploads on failure.
"""

import argparse
import hashlib
import json
import os
import re
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

CHECK_RULES = (
    "span-escape",
    "snapshot-pin",
    "guard-completeness",
    "termid-arith",
    "std-function",
)
ESCAPE_RE = re.compile(r"//\s*rdfref-check:\s*allow\(([a-z-]+)\)")
# termid-arith does not apply where ids are *assigned*: the dictionary and
# the hierarchy encoder own the id space.
TERMID_EXEMPT = ("src/rdf/", "src/schema/encoder")
STD_FUNCTION_SCOPE = ("src/engine/", "src/storage/")
# Wrapper nodes to strip when matching expression shapes.
EXPR_WRAPPERS = frozenset({
    "ExprWithCleanups", "MaterializeTemporaryExpr", "ImplicitCastExpr",
    "CXXBindTemporaryExpr", "ParenExpr", "ConstantExpr", "CXXConstructExpr",
})
ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                        "<<=", ">>="})
CACHE_VERSION = "rdfref-check-v1"


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path          # repo-relative, '/'-separated
        self.line = line
        self.rule = rule
        self.message = message

    def key(self):
        return (self.path, self.line, self.rule)

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self):
        return {"file": self.path, "line": self.line, "rule": self.rule,
                "message": self.message}


class SourceIndex:
    """Line-level access to source text, from disk or a fixture's embedded
    file map. Escape comments and annotation macros are recovered from the
    text because older clangs omit AnnotateAttr string values from the
    JSON dump."""

    def __init__(self, repo_root, virtual_files=None):
        self.repo_root = repo_root
        self.virtual = dict(virtual_files or {})
        self.cache = {}

    def lines(self, relpath):
        if relpath in self.cache:
            return self.cache[relpath]
        if relpath in self.virtual:
            out = self.virtual[relpath].splitlines()
        else:
            full = os.path.join(self.repo_root, relpath)
            try:
                with open(full, encoding="utf-8", errors="replace") as f:
                    out = f.read().splitlines()
            except OSError:
                out = []
        self.cache[relpath] = out
        return out

    def line(self, relpath, lineno):
        lines = self.lines(relpath)
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1]
        return ""

    def window(self, relpath, lo, hi):
        return "\n".join(self.line(relpath, n) for n in range(max(1, lo), hi + 1))


def qual_type(node):
    t = node.get("type")
    if not isinstance(t, dict):
        return ""
    return t.get("qualType", "") + " " + t.get("desugaredQualType", "")


def is_span_type(qt):
    return "span<" in qt


def is_raw_snapshot_type(qt):
    if "shared_ptr" in qt or "SnapshotPtr" in qt:
        return False
    return bool(re.search(r"SnapshotSource\s*[*&]", qt))


def strip_wrappers(node):
    while isinstance(node, dict) and node.get("kind") in EXPR_WRAPPERS:
        inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
        if len(inner) != 1:
            break
        node = inner[0]
    return node


class RecordInfo:
    def __init__(self, rec_id, name, path, line, is_closure):
        self.id = rec_id
        self.name = name
        self.path = path
        self.line = line
        self.is_closure = is_closure
        self.mutexes = []            # field names of common::Mutex members
        self.fields = {}             # field id -> FieldInfo
        self.has_borrows_from = False


class FieldInfo:
    def __init__(self, name, path, line, qt, annotated):
        self.name = name
        self.path = path
        self.line = line
        self.qt = qt
        self.annotated = annotated   # GUARDED_BY / NOT_GUARDED present


class MethodInfo:
    def __init__(self, owner_id, name, is_ctor):
        self.owner_id = owner_id
        self.name = name
        self.is_ctor = is_ctor
        self.accessed = set()        # field ids
        self.written = set()


class TuAnalyzer:
    """One pass over one translation unit's JSON AST.

    Clang delta-encodes source locations: a loc object carries `file` and
    `line` only when they differ from the previously emitted location, in
    document order. The walker therefore maintains a single (file, line)
    state, updated by every loc-bearing object it passes — including
    range begin/end and spelling/expansion pairs — exactly mirroring the
    dumper's emission order (`loc` before `range` before `inner`)."""

    def __init__(self, source, repo_root):
        self.source = source
        self.repo_root = os.path.abspath(repo_root)
        self.cur_file = ""
        self.cur_line = 0
        self.raw_findings = []       # pre-escape Finding list
        self.records = {}            # id -> RecordInfo
        self.methods = []            # MethodInfo list
        self.record_stack = []

    # ---- location state ------------------------------------------------

    def _consume_bare(self, loc):
        if "line" in loc:
            self.cur_line = loc["line"]
        if "file" in loc:
            self.cur_file = loc["file"]
        return self.cur_file, self.cur_line

    def _consume_loc(self, loc):
        """Update state from a loc object; returns the *expansion*
        position (where the code is written, not where a macro was
        defined)."""
        if not isinstance(loc, dict):
            return self.cur_file, self.cur_line
        if "spellingLoc" in loc or "expansionLoc" in loc:
            # Emission order in the dumper: spelling first, expansion
            # second; the shared delta state sees both.
            res = (self.cur_file, self.cur_line)
            if isinstance(loc.get("spellingLoc"), dict):
                self._consume_bare(loc["spellingLoc"])
            if isinstance(loc.get("expansionLoc"), dict):
                res = self._consume_bare(loc["expansionLoc"])
            return res
        return self._consume_bare(loc)

    def _relpath(self, path):
        if not path:
            return None
        ap = os.path.abspath(os.path.join(self.repo_root, path))
        if not ap.startswith(self.repo_root + os.sep):
            return None
        rel = os.path.relpath(ap, self.repo_root).replace(os.sep, "/")
        if rel.startswith("src/") or rel.startswith("tests/"):
            return rel
        return None

    # ---- helpers over the tree ----------------------------------------

    def _subtree_has_kind(self, node, kinds):
        if isinstance(node, list):
            return any(self._subtree_has_kind(x, kinds) for x in node)
        if not isinstance(node, dict):
            return False
        if node.get("kind") in kinds:
            return True
        return self._subtree_has_kind(node.get("inner", []), kinds)

    def _member_ids(self, node, out):
        """Collect referencedMemberDecl ids in a subtree (no loc updates —
        used only after the subtree was already walked)."""
        if isinstance(node, list):
            for x in node:
                self._member_ids(x, out)
            return
        if not isinstance(node, dict):
            return
        if node.get("kind") == "MemberExpr" and "referencedMemberDecl" in node:
            out.add(node["referencedMemberDecl"])
        self._member_ids(node.get("inner", []), out)

    def _mentions_termid(self, node, depth=0):
        """True if the expression (casts/parens stripped) has TermId value
        type. Pointer types are excluded: TermId* arithmetic is ordinary
        pointer math over an arena, not id arithmetic."""
        if not isinstance(node, dict) or depth > 4:
            return False
        qt = node.get("type", {}).get("qualType", "") if isinstance(
            node.get("type"), dict) else ""
        if "TermId" in qt and "*" not in qt:
            return True
        if node.get("kind") in EXPR_WRAPPERS:
            for c in node.get("inner", []):
                if self._mentions_termid(c, depth + 1):
                    return True
        return False

    def _finding(self, path, line, rule, message):
        self.raw_findings.append(Finding(path, line, rule, message))

    # ---- main walk -----------------------------------------------------

    def run(self, root):
        self.walk(root, method=None)
        self._finish_guard_completeness()
        return self.raw_findings

    def walk(self, node, method):
        if isinstance(node, list):
            for x in node:
                self.walk(x, method)
            return
        if not isinstance(node, dict):
            return
        kind = node.get("kind")

        pos = (self.cur_file, self.cur_line)
        if "loc" in node:
            pos = self._consume_loc(node["loc"])
        rng = node.get("range")
        range_begin = pos
        if isinstance(rng, dict):
            if "begin" in rng:
                range_begin = self._consume_loc(rng["begin"])
                if "loc" not in node:
                    pos = range_begin
            if "end" in rng:
                self._consume_loc(rng["end"])

        handler = getattr(self, "visit_" + kind, None) if kind else None
        if handler is not None:
            handler(node, pos, method)
            return  # handlers own the recursion into inner
        self.walk(node.get("inner", []), method)

    # ---- declarations --------------------------------------------------

    def visit_CXXRecordDecl(self, node, pos, method):
        rel = self._relpath(pos[0])
        defn = node.get("completeDefinition", False)
        if not defn or rel is None:
            self.walk(node.get("inner", []), method)
            return
        is_closure = bool(node.get("definitionData", {}).get("isLambda")) or \
            "name" not in node
        info = RecordInfo(node.get("id"), node.get("name", "<lambda>"),
                          rel, pos[1], is_closure)
        # The annotation must be known before the fields are visited:
        # check the source line the class head sits on, plus any direct
        # AnnotateAttr child (the dump carries it when clang serializes
        # attribute nodes for the record).
        src_line = self.source.window(rel, pos[1], pos[1] + 1)
        if "RDFREF_BORROWS_FROM" in src_line:
            info.has_borrows_from = True
        if any(isinstance(c, dict) and c.get("kind") == "AnnotateAttr"
               for c in node.get("inner", [])):
            info.has_borrows_from = True
        self.records[info.id] = info
        self.record_stack.append(info)
        self.walk(node.get("inner", []), method)
        self.record_stack.pop()

    def visit_FieldDecl(self, node, pos, method):
        self.walk(node.get("inner", []), method)
        rel = self._relpath(pos[0])
        if rel is None or not self.record_stack:
            return
        rec = self.record_stack[-1]
        qt = qual_type(node)
        name = node.get("name", "")
        if "common::Mutex" in qt or qt.strip().startswith("Mutex"):
            rec.mutexes.append(name)
            return
        # Annotation recovery: attribute nodes when the dump carries them,
        # source text otherwise (AnnotateAttr values are absent in some
        # clang versions' JSON output).
        annotated = self._subtree_has_kind(
            node.get("inner", []),
            {"GuardedByAttr", "PtGuardedByAttr", "AnnotateAttr"})
        # Text fallback scoped to this declaration only: its own line,
        # plus the continuation line when the declaration does not end
        # here (multi-line field types put the macro on the last line).
        text = self.source.line(rel, pos[1])
        if ";" not in text:
            text += "\n" + self.source.line(rel, pos[1] + 1)
        if re.search(r"RDFREF(_PT)?_GUARDED_BY|RDFREF_NOT_GUARDED", text):
            annotated = True
        rec.fields[node.get("id")] = FieldInfo(name, rel, pos[1], qt, annotated)

        if is_span_type(qt):
            if rec.is_closure:
                self._finding(
                    rel, pos[1], "span-escape",
                    "by-value lambda capture of a borrowed span; capture by "
                    "reference, or re-derive the span inside the lambda")
            elif not rec.has_borrows_from:
                self._finding(
                    rel, pos[1], "span-escape",
                    f"borrowed span stored in field '{name}' of "
                    f"'{rec.name}'; declare the holder with "
                    "RDFREF_BORROWS_FROM(<source>) naming what it borrows "
                    "from, or own the data")
        if is_raw_snapshot_type(qt):
            self._finding(
                rel, pos[1], "snapshot-pin",
                f"raw SnapshotSource pointer stored in field '{name}'; "
                "store the pinning storage::SnapshotPtr instead — the "
                "epoch it reads from is reclaimed when the last pin drops")

    def visit_VarDecl(self, node, pos, method):
        self.walk(node.get("inner", []), method)
        rel = self._relpath(pos[0])
        if rel is None:
            return
        at_global_scope = method is None and not self.record_stack
        is_static = node.get("storageClass") == "static"
        if not (at_global_scope or is_static):
            return
        qt = qual_type(node)
        name = node.get("name", "")
        if is_span_type(qt):
            self._finding(
                rel, pos[1], "span-escape",
                f"borrowed span stored in static/global '{name}' outlives "
                "every source; materialize an owned copy instead")
        if is_raw_snapshot_type(qt):
            self._finding(
                rel, pos[1], "snapshot-pin",
                f"raw SnapshotSource pointer stored in static/global "
                f"'{name}'; keep the pinning storage::SnapshotPtr instead")

    def _enter_method(self, node):
        owner = None
        if self.record_stack:
            owner = self.record_stack[-1].id
        elif "parentDeclContextId" in node:
            owner = node["parentDeclContextId"]
        m = MethodInfo(owner, node.get("name", ""),
                       node.get("kind") in ("CXXConstructorDecl",
                                            "CXXDestructorDecl"))
        self.methods.append(m)
        return m

    def visit_FunctionDecl(self, node, pos, method):
        self._visit_function_like(node, pos, method)

    def visit_CXXMethodDecl(self, node, pos, method):
        self._visit_function_like(node, pos, self._enter_method(node))

    def visit_CXXConstructorDecl(self, node, pos, method):
        self._visit_function_like(node, pos, self._enter_method(node))

    def visit_CXXDestructorDecl(self, node, pos, method):
        self._visit_function_like(node, pos, self._enter_method(node))

    def visit_CXXConversionDecl(self, node, pos, method):
        self._visit_function_like(node, pos, self._enter_method(node))

    def _visit_function_like(self, node, pos, method):
        rel = self._relpath(pos[0])
        self.walk(node.get("inner", []), method)
        if rel is None or node.get("isImplicit"):
            return
        if self.record_stack and self.record_stack[-1].is_closure:
            return  # lambdas: covered by the capture rule
        qt = node.get("type", {}).get("qualType", "") if isinstance(
            node.get("type"), dict) else ""
        ret = qt.split("(")[0]
        if not is_span_type(ret):
            return
        # Out-of-line definitions inherit attributes from the in-class
        # declaration, which is checked on its own.
        if "previousDecl" in node:
            return
        if self._subtree_has_kind(node.get("inner", []),
                                  {"LifetimeBoundAttr", "AnnotateAttr"}):
            return
        text = self.source.window(rel, pos[1] - 1, pos[1] + 4)
        if "RDFREF_LIFETIME_BOUND" in text or "RDFREF_BORROWS_FROM" in text:
            return
        self._finding(
            rel, pos[1], "span-escape",
            f"'{node.get('name', '?')}' returns a borrowed span without a "
            "lifetime contract; add RDFREF_LIFETIME_BOUND (after the "
            "cv-qualifiers, or on the borrowed-from parameter) or "
            "RDFREF_BORROWS_FROM(...)")

    def visit_ParmVarDecl(self, node, pos, method):
        self.walk(node.get("inner", []), method)
        rel = self._relpath(pos[0])
        if rel is None:
            return
        if "std::function<" in qual_type(node) and \
                rel.startswith(STD_FUNCTION_SCOPE):
            self._finding(
                rel, pos[1], "std-function",
                "std::function parameter on an engine/storage hot path: "
                "one indirect call per triple; prefer spans, cursors, or a "
                "template parameter")

    # ---- expressions ---------------------------------------------------

    def visit_MemberExpr(self, node, pos, method):
        rel = self._relpath(pos[0])
        if method is not None and "referencedMemberDecl" in node:
            method.accessed.add(node["referencedMemberDecl"])
        if rel is not None and node.get("name") == "get":
            inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
            base = strip_wrappers(inner[0]) if inner else None
            if isinstance(base, dict) and base.get("kind") == \
                    "CXXMemberCallExpr":
                callee = [c for c in base.get("inner", [])
                          if isinstance(c, dict)]
                callee = strip_wrappers(callee[0]) if callee else None
                if isinstance(callee, dict) and callee.get("name") in (
                        "snapshot", "PinSnapshot"):
                    self._finding(
                        rel, pos[1], "snapshot-pin",
                        ".get() on the temporary snapshot pin: the epoch "
                        "is released at the end of this full-expression; "
                        "bind the SnapshotPtr to a named local that "
                        "outlives every use of the raw pointer")
        self.walk(node.get("inner", []), method)

    def visit_BinaryOperator(self, node, pos, method):
        self._arith_check(node, pos)
        self.walk(node.get("inner", []), method)
        if method is not None and node.get("opcode") in ASSIGN_OPS:
            inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
            if inner:
                self._member_ids(inner[0], method.written)

    def visit_CompoundAssignOperator(self, node, pos, method):
        self._arith_check(node, pos)
        self.walk(node.get("inner", []), method)
        if method is not None:
            inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
            if inner:
                self._member_ids(inner[0], method.written)

    def visit_UnaryOperator(self, node, pos, method):
        op = node.get("opcode", "")
        if op in ("++", "--"):
            self._arith_check(node, pos, unary=True)
        self.walk(node.get("inner", []), method)
        if method is not None and op in ("++", "--", "&"):
            self._member_ids(node.get("inner", []), method.written)

    def visit_CXXOperatorCallExpr(self, node, pos, method):
        self.walk(node.get("inner", []), method)
        if method is None:
            return
        inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
        if len(inner) >= 2:
            callee = strip_wrappers(inner[0])
            name = ""
            if isinstance(callee, dict):
                name = callee.get("name", "") or callee.get(
                    "referencedDecl", {}).get("name", "")
            if name == "operator=":
                self._member_ids(inner[1], method.written)

    def visit_CallExpr(self, node, pos, method):
        self.walk(node.get("inner", []), method)
        if method is None:
            return
        inner = [c for c in node.get("inner", []) if isinstance(c, dict)]
        if not inner:
            return
        callee = strip_wrappers(inner[0])
        name = ""
        if isinstance(callee, dict):
            name = callee.get("name", "") or callee.get(
                "referencedDecl", {}).get("name", "")
        if name == "move":
            for arg in inner[1:]:
                self._member_ids(arg, method.written)

    def _arith_check(self, node, pos, unary=False):
        rel = self._relpath(pos[0])
        if rel is None or rel.startswith(TERMID_EXEMPT):
            return
        op = node.get("opcode", "")
        if not unary and op not in ("+", "-", "+=", "-="):
            return
        kids = [c for c in node.get("inner", []) if isinstance(c, dict)]
        if any(self._mentions_termid(c) for c in kids):
            self._finding(
                rel, pos[1], "termid-arith",
                f"raw '{op}' on a TermId: ids are hierarchy interval codes "
                "(DESIGN.md §12), not dense integers; go through the "
                "dictionary/encoder, or justify with an allow escape")

    # ---- guard-completeness post-pass ----------------------------------

    def _finish_guard_completeness(self):
        by_owner = {}
        for m in self.methods:
            if m.owner_id is not None:
                by_owner.setdefault(m.owner_id, []).append(m)
        for rec in self.records.values():
            if not rec.mutexes or rec.is_closure:
                continue
            methods = by_owner.get(rec.id, [])
            for fid, field in rec.fields.items():
                if field.annotated:
                    continue
                qt = field.qt
                if qt.strip().startswith("const ") or any(
                        tok in qt for tok in
                        ("Mutex", "CondVar", "Notification", "atomic")):
                    continue
                touching = [m for m in methods if fid in m.accessed]
                written = any(fid in m.written and not m.is_ctor
                              for m in touching)
                if len(touching) >= 2 and written:
                    self._finding(
                        field.path, field.line, "guard-completeness",
                        f"'{rec.name}' owns a Mutex "
                        f"({', '.join(rec.mutexes)}) but mutable field "
                        f"'{field.name}' is written from "
                        f"{len(touching)} methods without "
                        "RDFREF_GUARDED_BY; annotate it (thread-safety "
                        "analysis skips unannotated fields) or mark it "
                        "RDFREF_NOT_GUARDED(\"why\")")


# ---- escapes -----------------------------------------------------------

def apply_escapes(findings, source, used_escapes):
    """Drop findings excused by a nearby `// rdfref-check: allow(rule)`.
    The window is [line-2, line+1]: above for leading comments, below for
    multi-line signatures whose closing line carries the escape. Records
    every escape that excused something into `used_escapes`."""
    kept = []
    for f in findings:
        excused = False
        for n in range(max(1, f.line - 2), f.line + 2):
            for m in ESCAPE_RE.finditer(source.line(f.path, n)):
                if m.group(1) == f.rule:
                    used_escapes.add((f.path, n, f.rule))
                    excused = True
        if not excused:
            kept.append(f)
    return kept


def scan_escape_comments(source, relpaths):
    """All rdfref-check escape comments in the given files."""
    out = []
    for rel in relpaths:
        for idx, text in enumerate(source.lines(rel), start=1):
            for m in ESCAPE_RE.finditer(text):
                out.append((rel, idx, m.group(1)))
    return out


def escape_findings(source, relpaths, used_escapes):
    """Stale and unknown escapes are findings themselves: a suppression
    must die with the code it excused."""
    out = []
    for rel, line, rule in scan_escape_comments(source, relpaths):
        if rule not in CHECK_RULES:
            out.append(Finding(
                rel, line, "unknown-escape",
                f"escape names unknown rule '{rule}'; known rules: "
                f"{', '.join(CHECK_RULES)} (rdfref_lint.py escapes use "
                "'rdfref-lint: allow(...)')"))
        elif (rel, line, rule) not in used_escapes:
            out.append(Finding(
                rel, line, "stale-escape",
                f"escape for '{rule}' no longer suppresses anything; "
                "delete it"))
    return out


# ---- clang driving -----------------------------------------------------

def find_clang():
    for name in ("clang++", "clang++-19", "clang++-18", "clang++-17",
                 "clang++-16", "clang++-15", "clang++-14"):
        path = shutil.which(name)
        if path:
            return path
    return None


def load_compile_db(build_dir):
    path = os.path.join(build_dir, "compile_commands.json")
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def entry_args(entry):
    if "arguments" in entry:
        return list(entry["arguments"])
    # shlex-free split is wrong for quoted paths, but CMake-generated
    # commands in this repo have none; keep the dependency surface small.
    return entry["command"].split()


def dump_args(entry, clang, extra=None):
    """Rewrite a compile-DB entry into an AST-dump invocation."""
    args = entry_args(entry)
    out = [clang]
    skip_next = False
    for a in args[1:]:
        if skip_next:
            skip_next = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip_next = True
            continue
        if a in ("-c", "-MD", "-MMD") or a.startswith("-W") or a == "-Werror":
            continue
        out.append(a)
    out += ["-w", "-fsyntax-only", "-Xclang", "-ast-dump=json"]
    out += extra or []
    return out


def tu_cache_key(entry, clang, repo_root):
    """sha256 over the compile command, the TU, and every repo-local file
    it includes (clang -MM): any edit that can change the AST changes the
    key."""
    h = hashlib.sha256()
    h.update(CACHE_VERSION.encode())
    h.update(clang.encode())
    h.update(" ".join(entry_args(entry)).encode())
    deps = [entry["file"]]
    mm = dump_args(entry, clang)
    mm = [a for a in mm if a not in ("-Xclang", "-ast-dump=json")]
    mm += ["-MM", "-MF", "-"]
    try:
        res = subprocess.run(mm, cwd=entry.get("directory", repo_root),
                             capture_output=True, text=True, timeout=120)
        if res.returncode == 0:
            for tok in res.stdout.replace("\\\n", " ").split()[1:]:
                ap = os.path.abspath(
                    os.path.join(entry.get("directory", repo_root), tok))
                if ap.startswith(os.path.abspath(repo_root) + os.sep):
                    deps.append(ap)
    except (subprocess.TimeoutExpired, OSError):
        pass
    for dep in sorted(set(deps)):
        try:
            with open(dep, "rb") as f:
                h.update(hashlib.sha256(f.read()).digest())
        except OSError:
            h.update(b"<missing>")
    return h.hexdigest()


def analyze_ast(root, source, repo_root):
    analyzer = TuAnalyzer(source, repo_root)
    raw = analyzer.run(root)
    used = set()
    kept = apply_escapes(raw, source, used)
    return kept, used


def analyze_tu(entry, clang, repo_root, cache_dir, log):
    key = tu_cache_key(entry, clang, repo_root)
    cache_path = os.path.join(cache_dir, key + ".json")
    if os.path.exists(cache_path):
        try:
            with open(cache_path, encoding="utf-8") as f:
                cached = json.load(f)
            findings = [Finding(d["file"], d["line"], d["rule"], d["message"])
                        for d in cached["findings"]]
            used = {tuple(e) for e in cached["used_escapes"]}
            return findings, used, True
        except (OSError, ValueError, KeyError):
            pass
    cmd = dump_args(entry, clang)
    res = subprocess.run(cmd, cwd=entry.get("directory", repo_root),
                         capture_output=True, text=True, timeout=600)
    if res.returncode != 0:
        log(f"warning: AST dump failed for {entry['file']}:\n"
            f"{res.stderr[-2000:]}")
        return [], set(), False
    root = json.loads(res.stdout)
    del res
    source = SourceIndex(repo_root)
    findings, used = analyze_ast(root, source, repo_root)
    os.makedirs(cache_dir, exist_ok=True)
    tmp = cache_path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump({"findings": [x.as_json() for x in findings],
                   "used_escapes": sorted(list(e) for e in used)}, f)
    os.replace(tmp, cache_path)
    return findings, used, False


def repo_source_files():
    out = []
    for base in ("src",):
        for dirpath, _, names in os.walk(os.path.join(REPO, base)):
            for n in names:
                if n.endswith((".h", ".cc")):
                    rel = os.path.relpath(os.path.join(dirpath, n), REPO)
                    out.append(rel.replace(os.sep, "/"))
    return sorted(out)


# ---- modes -------------------------------------------------------------

def run_full_tree(opts):
    clang = find_clang()
    if clang is None:
        msg = ("rdfref_check: no clang++ on PATH; AST analysis skipped "
               "(the CI static-analysis job installs clang-19 and passes "
               "--require-clang). Run --self-test for the clang-free "
               "fixture suite.")
        if opts.require_clang:
            print(msg, file=sys.stderr)
            return 2
        print(msg)
        return 0
    try:
        db = load_compile_db(opts.build_dir)
    except OSError as e:
        print(f"rdfref_check: cannot read compile database: {e}\n"
              "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
              file=sys.stderr)
        return 2
    entries = [e for e in db
               if os.path.abspath(e["file"]).startswith(
                   os.path.join(REPO, "src") + os.sep)
               and e["file"].endswith(".cc")]
    entries.sort(key=lambda e: e["file"])
    all_findings = {}
    used = set()
    hits = 0
    for entry in entries:
        findings, tu_used, was_hit = analyze_tu(
            entry, clang, REPO, opts.cache_dir,
            lambda m: print(m, file=sys.stderr))
        hits += was_hit
        used |= tu_used
        for f in findings:
            all_findings.setdefault(f.key(), f)
    source = SourceIndex(REPO)
    for f in escape_findings(source, repo_source_files(), used):
        all_findings.setdefault(f.key(), f)
    findings = sorted(all_findings.values(), key=Finding.key)
    print(f"rdfref_check: {len(entries)} TUs analyzed "
          f"({hits} cache hits), {len(findings)} finding(s)")
    for f in findings:
        print(f"  {f}")
    if opts.json_out:
        with open(opts.json_out, "w", encoding="utf-8") as f:
            json.dump({"findings": [x.as_json() for x in findings]}, f,
                      indent=2)
    return 1 if findings else 0


def load_fixture(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if "ast" in doc:
        return doc
    return {"ast": doc, "source_files": {}, "expect": None}


def run_ast_json(opts):
    doc = load_fixture(opts.ast_json)
    source = SourceIndex(opts.source_root or REPO,
                         virtual_files=doc.get("source_files"))
    findings, used = analyze_ast(doc["ast"], source, opts.source_root or REPO)
    if doc.get("check_escapes"):
        findings += escape_findings(source,
                                    sorted(doc.get("source_files", {})), used)
    findings.sort(key=Finding.key)
    for f in findings:
        print(f)
    if opts.json_out:
        with open(opts.json_out, "w", encoding="utf-8") as f:
            json.dump({"findings": [x.as_json() for x in findings]}, f,
                      indent=2)
    return 1 if findings else 0


def run_probe(opts):
    clang = find_clang()
    if clang is None:
        print("rdfref_check --probe: no clang++ on PATH", file=sys.stderr)
        return 2
    entry = {
        "file": os.path.abspath(opts.probe),
        "directory": REPO,
        "arguments": [clang, "-std=c++20", "-I", os.path.join(REPO, "src"),
                      "-DRDFREF_NEGATIVE", opts.probe],
    }
    cmd = dump_args(entry, clang)
    res = subprocess.run(cmd, cwd=REPO, capture_output=True, text=True,
                         timeout=600)
    if res.returncode != 0:
        print(f"rdfref_check --probe: dump failed:\n{res.stderr[-2000:]}",
              file=sys.stderr)
        return 2
    source = SourceIndex(REPO)
    findings, _ = analyze_ast(json.loads(res.stdout), source, REPO)
    for f in findings:
        print(f)
    if findings:
        print(f"rdfref_check --probe: {len(findings)} finding(s) as expected")
        return 0
    print("rdfref_check --probe: expected at least one finding, got none",
          file=sys.stderr)
    return 1


def run_self_test(opts):
    testdata = os.path.join(REPO, "tools", "rdfref_check_testdata")
    fixtures = sorted(f for f in os.listdir(testdata) if f.endswith(".json"))
    failures = 0
    for name in fixtures:
        doc = load_fixture(os.path.join(testdata, name))
        source = SourceIndex(REPO, virtual_files=doc.get("source_files"))
        findings, used = analyze_ast(doc["ast"], source, REPO)
        if doc.get("check_escapes"):
            findings += escape_findings(
                source, sorted(doc.get("source_files", {})), used)
        got = sorted(f"{f.rule}@{f.path}:{f.line}" for f in findings)
        want = sorted(doc.get("expect") or [])
        if got == want:
            print(f"PASS {name} ({len(got)} finding(s))")
        else:
            failures += 1
            print(f"FAIL {name}\n  want: {want}\n  got:  {got}")
            for f in findings:
                print(f"    {f}")
    print(f"rdfref_check --self-test: {len(fixtures) - failures}/"
          f"{len(fixtures)} fixtures pass")
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(REPO, "build"),
                    help="build dir holding compile_commands.json")
    ap.add_argument("--cache-dir",
                    default=os.path.join(REPO, ".rdfref_check_cache"),
                    help="per-TU findings cache directory")
    ap.add_argument("--require-clang", action="store_true",
                    help="fail (exit 2) instead of skipping without clang++")
    ap.add_argument("--ast-json", metavar="FILE",
                    help="analyze one pre-dumped AST or fixture file")
    ap.add_argument("--source-root", help="repo root for --ast-json paths")
    ap.add_argument("--probe", metavar="FILE",
                    help="dump+check FILE with -DRDFREF_NEGATIVE; succeed "
                         "iff findings fire")
    ap.add_argument("--self-test", action="store_true",
                    help="run the fixture suite in tools/rdfref_check_testdata")
    ap.add_argument("--json-out", metavar="FILE",
                    help="write findings JSON artifact")
    opts = ap.parse_args(argv)
    if opts.self_test:
        return run_self_test(opts)
    if opts.ast_json:
        return run_ast_json(opts)
    if opts.probe:
        return run_probe(opts)
    return run_full_tree(opts)


if __name__ == "__main__":
    sys.exit(main())
