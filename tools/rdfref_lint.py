#!/usr/bin/env python3
"""rdfref_lint: fast AST-free checker for rdfref-specific invariants.

Run from anywhere: `python3 tools/rdfref_lint.py` (add --root to point at a
checkout). Exits non-zero when any finding is reported; CI runs it as a
blocking step of the `static-analysis` job, and `ctest -R rdfref_lint`
runs it locally.

Rules (see DESIGN.md section 8):

  raw-sync      No raw std::mutex / std::condition_variable / lock scopes
                outside src/common/synchronization.h. Everything must go
                through the capability-annotated wrappers so Clang's
                -Wthread-safety can see every lock in the repository.
  nodiscard     Result<T> and Status stay class-level [[nodiscard]], and
                every Answer*/Evaluate* function declared in a public
                header carries [[nodiscard]] (directly or via a
                [[nodiscard]] return type).
  rng-seed      No wall-clock or entropy seeding (std::random_device,
                srand, time(...)): every random stream in rdfref is
                seeded explicitly so fault injection, fuzzing and jitter
                replay bit-exactly.
  std-function  No std::function parameters in the src/engine/ and
                src/storage/ hot paths: the per-triple virtual callback
                was the seed scan API and survives only as a
                compatibility shim (see DESIGN.md section 9). New code
                takes spans (TryGetRange), buffers (ScanInto) or
                cursors (PatternCursor) — all inlineable, none
                type-erased.
  delta-mutation
                The engine evaluates immutable TripleSource views; naming
                the mutable storage types (DeltaStore, VersionSet) from
                src/engine/ is banned. Updates go through
                api::QueryAnswerer, and concurrent evaluation pins an
                immutable SnapshotSource (storage/version_set.h) — engine
                code reaching for the mutable overlay would bypass epoch
                isolation.
  termid-arith  No raw TermId arithmetic (id-space loops, `id + 1`-style
                offsets, interval-endpoint math) outside rdf/ and the
                hierarchy encoder (schema/encoder.*). Encoded ids are an
                interval layout that Reencode() re-permutes at will; code
                elsewhere doing arithmetic on ids bakes in an id-space
                assumption that the next re-encoding silently breaks.
                Sites where the interval invariant is load-bearing carry
                an explicit allow with a justification.
  layering      Library-level include DAG: each of the 15 src/ libraries
                may only include the libraries listed in ALLOWED_DEPS
                (common at the bottom, engine never includes federation,
                ...). New edges are a design decision: add them here in
                the same PR, with a reason.
  include-cycle No #include cycles among src/ headers (file-level DFS).

A finding can be silenced for one line with a trailing
`// rdfref-lint: allow(<rule>)` comment — pair it with a justification.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from collections import defaultdict

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

# The one file allowed to name the raw primitives.
SYNC_SHIM = os.path.join("common", "synchronization.h")

RAW_SYNC_PATTERNS = [
    (re.compile(r"\bstd::(recursive_|shared_|timed_)?mutex\b"), "std::mutex"),
    (re.compile(r"\bstd::condition_variable(_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "raw lock scope"),
    (re.compile(r'#\s*include\s*<(mutex|condition_variable|shared_mutex)>'),
     "raw synchronization header"),
]

RNG_SEED_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time(...)"),
    (re.compile(r"\bseed\s*\(\s*std::chrono\b"), "clock-seeded RNG"),
]

# Library-level allowed dependencies (edges not listed here are findings).
# This is the architecture: `common` at the bottom of everything, the
# engine never reaching into the federation, `testing` alone allowed to
# see it all. Adding an edge is a deliberate design change — do it here,
# in the PR that introduces the include.
ALLOWED_DEPS = {
    "common": set(),
    "rdf": {"common"},
    "schema": {"rdf", "common"},
    "query": {"common", "rdf"},
    "storage": {"common", "rdf"},
    "reasoner": {"rdf", "schema", "common"},
    "cost": {"query", "rdf", "storage", "common"},
    "engine": {"common", "query", "rdf", "storage"},
    "datagen": {"common", "rdf"},
    "reformulation": {"common", "query", "rdf", "schema"},
    "datalog": {"common", "engine", "query", "rdf", "storage"},
    "optimizer": {"common", "cost", "query", "reformulation"},
    "federation": {"common", "cost", "engine", "optimizer", "query", "rdf",
                   "reformulation", "schema", "storage"},
    "api": {"common", "datalog", "engine", "optimizer", "query", "rdf",
            "reasoner", "reformulation", "schema", "storage"},
    # Closed-loop workload driver: sits above api (it drives a shared
    # QueryAnswerer) and uses datagen's sp2b scenario for its pinned mix.
    "workload": {"api", "common", "datagen", "engine", "query", "rdf",
                 "storage"},
    "testing": {"api", "common", "engine", "federation", "query", "rdf",
                "reformulation", "schema", "storage", "datagen"},
}

ALLOW_RE = re.compile(r"//\s*rdfref-lint:\s*allow\(([a-z-]+)\)")

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

# Answer*/Evaluate* declarations in headers must be [[nodiscard]], either
# on the declaration itself or via a [[nodiscard]] return type
# (Result<T>/Status are class-level [[nodiscard]]).
ENTRY_POINT_RE = re.compile(
    r"^\s*(?:virtual\s+)?"
    r"(?P<ret>[A-Za-z_][\w:<>,\s&*]*?)\s+"
    r"(?P<name>Answer\w*|Evaluate\w*)\s*\(")
NODISCARD_COVERED_TYPES = re.compile(r"^(Result\s*<|::rdfref::Status\b|Status\b|void\b)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(line: str, rule: str) -> bool:
    m = ALLOW_RE.search(line)
    return bool(m) and m.group(1) == rule


def iter_source_files(src_root):
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                yield os.path.join(dirpath, name)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

def check_raw_sync(path, rel, lines, findings):
    if rel == SYNC_SHIM:
        return
    for i, line in enumerate(lines, 1):
        for pattern, what in RAW_SYNC_PATTERNS:
            if pattern.search(line) and not allowed(line, "raw-sync"):
                findings.append(Finding(path, i, "raw-sync",
                    f"{what} outside common/synchronization.h — use "
                    "common::Mutex / common::MutexLock / common::CondVar"))


def check_rng_seed(path, rel, lines, findings):
    for i, line in enumerate(lines, 1):
        for pattern, what in RNG_SEED_PATTERNS:
            if pattern.search(line) and not allowed(line, "rng-seed"):
                findings.append(Finding(path, i, "rng-seed",
                    f"{what}: rdfref randomness must be explicitly seeded "
                    "(deterministic replay of faults/fuzzing/jitter)"))


# Directories whose scan/join inner loops are performance-critical: a
# std::function parameter there forces a type-erased indirect call per
# triple. The legacy Scan() overrides carry explicit allows.
STD_FUNCTION_DIRS = ("engine", "storage")
STD_FUNCTION_RE = re.compile(r"\bstd::function\s*<")


def check_std_function(path, rel, lines, findings):
    if rel.split(os.sep, 1)[0] not in STD_FUNCTION_DIRS:
        return
    for i, line in enumerate(lines, 1):
        code = line.split("//", 1)[0]  # prose mentions in comments are fine
        if not STD_FUNCTION_RE.search(code):
            continue
        # Wrapped signatures may carry the allow on the closing line.
        nxt = lines[i] if i < len(lines) else ""
        if allowed(line, "std-function") or allowed(nxt, "std-function"):
            continue
        findings.append(Finding(path, i, "std-function",
            "std::function parameter in a storage/engine hot path — use "
            "TryGetRange/ScanInto/PatternCursor (DESIGN.md section 9); "
            "legacy Scan shims need an explicit allow"))


# Hierarchy-encoded TermIds are opaque handles outside the id-assignment
# layer: the interval layout is owned by rdf/ (dictionary + encoding) and
# schema/encoder, and Reencode() permutes the entire id space at will.
# Arithmetic on ids anywhere else assumes a layout the next re-encoding
# breaks. The allow comment may sit on the flagged line or up to two lines
# above it (loop headers often carry a justification block).
TERMID_ARITH_ALLOWED_PREFIXES = ("rdf" + os.sep, "schema" + os.sep + "encoder")
TERMID_ARITH_PATTERNS = [
    (re.compile(r"for\s*\(\s*(rdf::)?TermId\s+\w+\s*="),
     "TermId loop over the id space"),
    (re.compile(r"\.term\(\)\s*[+\-]\s*\w"),
     "arithmetic on a term id"),
    (re.compile(r"\brange_hi\s*[+\-]\s*\w"),
     "arithmetic on an interval endpoint"),
]


def check_termid_arith(path, rel, lines, findings):
    if rel.startswith(TERMID_ARITH_ALLOWED_PREFIXES):
        return
    for i, line in enumerate(lines, 1):
        code = line.split("//", 1)[0]
        for pattern, what in TERMID_ARITH_PATTERNS:
            if not pattern.search(code):
                continue
            context = lines[max(0, i - 3):i]  # flagged line + two above
            if any(allowed(entry, "termid-arith") for entry in context):
                continue
            findings.append(Finding(path, i, "termid-arith",
                f"{what} outside rdf/ and schema/encoder — Reencode() "
                "permutes ids; resolve terms through the dictionary, or "
                "justify with rdfref-lint: allow(termid-arith)"))


# The engine must see the database only through immutable TripleSource
# views: snapshot isolation is enforced at the storage layer, and an
# evaluator holding the mutable overlay (or the version set itself) could
# observe a torn epoch. Only api/ wires updates to evaluation.
DELTA_MUTATION_DIRS = ("engine",)
DELTA_MUTATION_RE = re.compile(r"\b(DeltaStore|VersionSet)\b")


def check_delta_mutation(path, rel, lines, findings):
    if rel.split(os.sep, 1)[0] not in DELTA_MUTATION_DIRS:
        return
    for i, line in enumerate(lines, 1):
        code = line.split("//", 1)[0]  # prose mentions in comments are fine
        if not DELTA_MUTATION_RE.search(code):
            continue
        if allowed(line, "delta-mutation"):
            continue
        findings.append(Finding(path, i, "delta-mutation",
            "engine code must not name the mutable storage types "
            "(DeltaStore/VersionSet) — evaluate an immutable TripleSource; "
            "pin a SnapshotSource via api::QueryAnswerer::PinSnapshot()"))


def check_nodiscard_classes(src_root, findings):
    for rel, cls in (("common/result.h", "Result"),
                     ("common/status.h", "Status")):
        path = os.path.join(src_root, rel)
        try:
            text = open(path, encoding="utf-8").read()
        except OSError:
            findings.append(Finding(path, 1, "nodiscard", "file missing"))
            continue
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, text):
            findings.append(Finding(path, 1, "nodiscard",
                f"class {cls} must be declared `class [[nodiscard]] {cls}` "
                "(dropped statuses are correctness bugs)"))


def check_entry_points(path, rel, lines, findings):
    if not rel.endswith(".h"):
        return
    for i, line in enumerate(lines, 1):
        m = ENTRY_POINT_RE.match(line)
        if not m:
            continue
        ret = m.group("ret").strip()
        if NODISCARD_COVERED_TYPES.match(ret):
            continue  # Result<T>/Status are class-level [[nodiscard]]
        window = (lines[i - 2] if i >= 2 else "") + " " + line
        if "[[nodiscard]]" in window:
            continue
        if allowed(line, "nodiscard"):
            continue
        findings.append(Finding(path, i, "nodiscard",
            f"{m.group('name')}() returns {ret} without [[nodiscard]] — "
            "answer-producing entry points must not be silently droppable"))


def library_of(rel):
    head = rel.split(os.sep, 1)[0]
    return head if head in ALLOWED_DEPS else None


def check_layering_and_cycles(src_root, findings):
    includes = {}  # rel path -> [(line_no, included rel path)]
    for path in iter_source_files(src_root):
        rel = os.path.relpath(path, src_root)
        entries = []
        with open(path, encoding="utf-8") as f:
            for i, line in enumerate(f, 1):
                m = INCLUDE_RE.search(line)
                if not m:
                    continue
                inc = m.group(1)
                if library_of(inc) is None:
                    continue  # not an intra-src include
                if allowed(line, "layering"):
                    continue
                entries.append((i, inc, line))
        includes[rel] = entries

    # Library-level layering.
    for rel, entries in sorted(includes.items()):
        lib = library_of(rel)
        if lib is None:
            continue
        for line_no, inc, line in entries:
            target = library_of(inc)
            if target == lib:
                continue
            if target not in ALLOWED_DEPS[lib]:
                findings.append(Finding(
                    os.path.join(src_root, rel), line_no, "layering",
                    f'library "{lib}" must not include "{target}" '
                    f'("{inc}"); allowed deps: '
                    f'{sorted(ALLOWED_DEPS[lib]) or "none"}'))

    # File-level include cycles among headers (iterative DFS).
    graph = {rel: [inc for _, inc, _ in entries if inc in includes]
             for rel, entries in includes.items() if rel.endswith(".h")}
    WHITE, GRAY, BLACK = 0, 1, 2
    color = defaultdict(int)
    for start in sorted(graph):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(graph.get(start, ())))]
        color[start] = GRAY
        trail = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:
                    cycle = trail[trail.index(nxt):] + [nxt]
                    findings.append(Finding(
                        os.path.join(src_root, nxt), 1, "include-cycle",
                        "#include cycle: " + " -> ".join(cycle)))
                elif color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(graph.get(nxt, ()))))
                    trail.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                trail.pop()


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--quiet", action="store_true",
                        help="print findings only, no summary")
    args = parser.parse_args(argv)

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        print(f"rdfref_lint: no src/ under {root}", file=sys.stderr)
        return 2

    findings = []
    for path in iter_source_files(src_root):
        rel = os.path.relpath(path, src_root)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        check_raw_sync(path, rel, lines, findings)
        check_rng_seed(path, rel, lines, findings)
        check_std_function(path, rel, lines, findings)
        check_termid_arith(path, rel, lines, findings)
        check_delta_mutation(path, rel, lines, findings)
        check_entry_points(path, rel, lines, findings)
    check_nodiscard_classes(src_root, findings)
    check_layering_and_cycles(src_root, findings)

    for finding in findings:
        print(finding)
    if not args.quiet:
        n_files = sum(1 for _ in iter_source_files(src_root))
        print(f"rdfref_lint: {len(findings)} finding(s) across "
              f"{n_files} files", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
