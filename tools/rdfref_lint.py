#!/usr/bin/env python3
"""rdfref_lint: fast AST-free checker for rdfref-specific invariants.

Run from anywhere: `python3 tools/rdfref_lint.py` (add --root to point at a
checkout). Exits non-zero when any finding is reported; CI runs it as a
blocking step of the `static-analysis` job, and `ctest -R rdfref_lint`
runs it locally. `--self-test` checks the lint against a synthetic tree
(every rule must fire, every escape state must be classified).

Rules (see DESIGN.md section 8):

  raw-sync      No raw std::mutex / std::condition_variable / lock scopes
                outside src/common/synchronization.h. Everything must go
                through the capability-annotated wrappers so Clang's
                -Wthread-safety can see every lock in the repository.
  nodiscard     Result<T> and Status stay class-level [[nodiscard]], and
                every Answer*/Evaluate* function declared in a public
                header carries [[nodiscard]] (directly or via a
                [[nodiscard]] return type).
  rng-seed      No wall-clock or entropy seeding (std::random_device,
                srand, time(...)): every random stream in rdfref is
                seeded explicitly so fault injection, fuzzing and jitter
                replay bit-exactly.
  delta-mutation
                The engine evaluates immutable TripleSource views; naming
                the mutable storage types (DeltaStore, VersionSet) from
                src/engine/ is banned. Updates go through
                api::QueryAnswerer, and concurrent evaluation pins an
                immutable SnapshotSource (storage/version_set.h) — engine
                code reaching for the mutable overlay would bypass epoch
                isolation.
  layering      Library-level include DAG: each of the src/ libraries
                may only include the libraries listed in ALLOWED_DEPS
                (common at the bottom, engine never includes federation,
                ...). New edges are a design decision: add them here in
                the same PR, with a reason.
  include-cycle No #include cycles among src/ headers (file-level DFS).
  stale-escape / unknown-escape
                Escape hygiene: a `// rdfref-lint: allow(<rule>)` comment
                that no longer suppresses anything, or that names a rule
                this lint does not have, is itself a finding. Escapes must
                die with the code they excused.

The former `std-function` and `termid-arith` regex rules moved to the
Clang-AST backend (tools/rdfref_check.py, DESIGN.md section 14), which
sees real types instead of token patterns; their escapes are spelled
`// rdfref-check: allow(...)` there.

A finding can be silenced for one line with a trailing
`// rdfref-lint: allow(<rule>)` comment — pair it with a justification.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
import tempfile
from collections import defaultdict

# --------------------------------------------------------------------------
# Configuration
# --------------------------------------------------------------------------

# The one file allowed to name the raw primitives.
SYNC_SHIM = os.path.join("common", "synchronization.h")

RAW_SYNC_PATTERNS = [
    (re.compile(r"\bstd::(recursive_|shared_|timed_)?mutex\b"), "std::mutex"),
    (re.compile(r"\bstd::condition_variable(_any)?\b"),
     "std::condition_variable"),
    (re.compile(r"\bstd::(lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
     "raw lock scope"),
    (re.compile(r'#\s*include\s*<(mutex|condition_variable|shared_mutex)>'),
     "raw synchronization header"),
]

RNG_SEED_PATTERNS = [
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bsrand\s*\("), "srand()"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time(...)"),
    (re.compile(r"\bseed\s*\(\s*std::chrono\b"), "clock-seeded RNG"),
]

# Library-level allowed dependencies (edges not listed here are findings).
# This is the architecture: `common` at the bottom of everything, the
# engine never reaching into the federation, `testing` alone allowed to
# see it all. Adding an edge is a deliberate design change — do it here,
# in the PR that introduces the include.
ALLOWED_DEPS = {
    "common": set(),
    "rdf": {"common"},
    "schema": {"rdf", "common"},
    "query": {"common", "rdf"},
    "storage": {"common", "rdf"},
    "reasoner": {"rdf", "schema", "common"},
    "cost": {"query", "rdf", "storage", "common"},
    "engine": {"common", "query", "rdf", "storage"},
    "datagen": {"common", "rdf"},
    "reformulation": {"common", "query", "rdf", "schema"},
    "datalog": {"common", "engine", "query", "rdf", "storage"},
    "optimizer": {"common", "cost", "query", "reformulation"},
    "federation": {"common", "cost", "engine", "optimizer", "query", "rdf",
                   "reformulation", "schema", "storage"},
    "api": {"common", "datalog", "engine", "optimizer", "query", "rdf",
            "reasoner", "reformulation", "schema", "storage"},
    # Closed-loop workload driver: sits above api (it drives a shared
    # QueryAnswerer) and uses datagen's sp2b scenario for its pinned mix.
    "workload": {"api", "common", "datagen", "engine", "query", "rdf",
                 "storage"},
    "testing": {"api", "common", "engine", "federation", "query", "rdf",
                "reformulation", "schema", "storage", "datagen"},
}

ALLOW_RE = re.compile(r"//\s*rdfref-lint:\s*allow\(([a-z-]+)\)")

INCLUDE_RE = re.compile(r'#\s*include\s*"([^"]+)"')

# Rules this lint owns (escape targets). include-cycle deliberately has no
# allow path — a cycle cannot be excused, only broken.
LINT_RULES = ("raw-sync", "rng-seed", "delta-mutation", "nodiscard",
              "layering", "include-cycle")
# Rules that live on the AST backend now; escapes naming them here get a
# pointed hint instead of a generic unknown-rule message.
CHECK_RULES = ("std-function", "termid-arith", "span-escape", "snapshot-pin",
               "guard-completeness")

# Answer*/Evaluate* declarations in headers must be [[nodiscard]], either
# on the declaration itself or via a [[nodiscard]] return type
# (Result<T>/Status are class-level [[nodiscard]]).
ENTRY_POINT_RE = re.compile(
    r"^\s*(?:virtual\s+)?"
    r"(?P<ret>[A-Za-z_][\w:<>,\s&*]*?)\s+"
    r"(?P<name>Answer\w*|Evaluate\w*)\s*\(")
NODISCARD_COVERED_TYPES = re.compile(r"^(Result\s*<|::rdfref::Status\b|Status\b|void\b)")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path, self.line, self.rule, self.message = path, line, rule, message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Lint:
    """One lint run: findings plus the set of escapes that earned their
    keep, so the post-pass can flag the stale ones."""

    def __init__(self, src_root):
        self.src_root = src_root
        self.findings = []
        self.used_escapes = set()  # (rel, line_no)

    def allowed(self, line, rule, rel, line_no):
        m = ALLOW_RE.search(line)
        if m and m.group(1) == rule:
            self.used_escapes.add((rel, line_no))
            return True
        return False

    def add(self, path, line, rule, message):
        self.findings.append(Finding(path, line, rule, message))


def iter_source_files(src_root):
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if name.endswith((".h", ".cc")):
                yield os.path.join(dirpath, name)


# --------------------------------------------------------------------------
# Rules
# --------------------------------------------------------------------------

def check_raw_sync(lint, path, rel, lines):
    if rel == SYNC_SHIM:
        return
    for i, line in enumerate(lines, 1):
        for pattern, what in RAW_SYNC_PATTERNS:
            if pattern.search(line) and not lint.allowed(line, "raw-sync",
                                                         rel, i):
                lint.add(path, i, "raw-sync",
                    f"{what} outside common/synchronization.h — use "
                    "common::Mutex / common::MutexLock / common::CondVar")


def check_rng_seed(lint, path, rel, lines):
    for i, line in enumerate(lines, 1):
        for pattern, what in RNG_SEED_PATTERNS:
            if pattern.search(line) and not lint.allowed(line, "rng-seed",
                                                         rel, i):
                lint.add(path, i, "rng-seed",
                    f"{what}: rdfref randomness must be explicitly seeded "
                    "(deterministic replay of faults/fuzzing/jitter)")


# The engine must see the database only through immutable TripleSource
# views: snapshot isolation is enforced at the storage layer, and an
# evaluator holding the mutable overlay (or the version set itself) could
# observe a torn epoch. Only api/ wires updates to evaluation.
DELTA_MUTATION_DIRS = ("engine",)
DELTA_MUTATION_RE = re.compile(r"\b(DeltaStore|VersionSet)\b")


def check_delta_mutation(lint, path, rel, lines):
    if rel.split(os.sep, 1)[0] not in DELTA_MUTATION_DIRS:
        return
    for i, line in enumerate(lines, 1):
        code = line.split("//", 1)[0]  # prose mentions in comments are fine
        if not DELTA_MUTATION_RE.search(code):
            continue
        if lint.allowed(line, "delta-mutation", rel, i):
            continue
        lint.add(path, i, "delta-mutation",
            "engine code must not name the mutable storage types "
            "(DeltaStore/VersionSet) — evaluate an immutable TripleSource; "
            "pin a SnapshotSource via api::QueryAnswerer::PinSnapshot()")


def check_nodiscard_classes(lint, src_root):
    for rel, cls in (("common/result.h", "Result"),
                     ("common/status.h", "Status")):
        path = os.path.join(src_root, rel)
        try:
            text = open(path, encoding="utf-8").read()
        except OSError:
            lint.add(path, 1, "nodiscard", "file missing")
            continue
        if not re.search(r"class\s+\[\[nodiscard\]\]\s+" + cls, text):
            lint.add(path, 1, "nodiscard",
                f"class {cls} must be declared `class [[nodiscard]] {cls}` "
                "(dropped statuses are correctness bugs)")


def check_entry_points(lint, path, rel, lines):
    if not rel.endswith(".h"):
        return
    for i, line in enumerate(lines, 1):
        m = ENTRY_POINT_RE.match(line)
        if not m:
            continue
        ret = m.group("ret").strip()
        if NODISCARD_COVERED_TYPES.match(ret):
            continue  # Result<T>/Status are class-level [[nodiscard]]
        window = (lines[i - 2] if i >= 2 else "") + " " + line
        if "[[nodiscard]]" in window:
            continue
        if lint.allowed(line, "nodiscard", rel, i):
            continue
        lint.add(path, i, "nodiscard",
            f"{m.group('name')}() returns {ret} without [[nodiscard]] — "
            "answer-producing entry points must not be silently droppable")


def library_of(rel):
    head = rel.split(os.sep, 1)[0]
    return head if head in ALLOWED_DEPS else None


def check_layering_and_cycles(lint, src_root):
    includes = {}  # rel path -> [(line_no, included rel path)]
    for path in iter_source_files(src_root):
        rel = os.path.relpath(path, src_root)
        entries = []
        with open(path, encoding="utf-8") as f:
            for i, line in enumerate(f, 1):
                m = INCLUDE_RE.search(line)
                if not m:
                    continue
                inc = m.group(1)
                if library_of(inc) is None:
                    continue  # not an intra-src include
                if lint.allowed(line, "layering", rel, i):
                    continue
                entries.append((i, inc, line))
        includes[rel] = entries

    # Library-level layering.
    for rel, entries in sorted(includes.items()):
        lib = library_of(rel)
        if lib is None:
            continue
        for line_no, inc, line in entries:
            target = library_of(inc)
            if target == lib:
                continue
            if target not in ALLOWED_DEPS[lib]:
                lint.add(
                    os.path.join(src_root, rel), line_no, "layering",
                    f'library "{lib}" must not include "{target}" '
                    f'("{inc}"); allowed deps: '
                    f'{sorted(ALLOWED_DEPS[lib]) or "none"}')

    # File-level include cycles among headers (iterative DFS).
    graph = {rel: [inc for _, inc, _ in entries if inc in includes]
             for rel, entries in includes.items() if rel.endswith(".h")}
    WHITE, GRAY, BLACK = 0, 1, 2
    color = defaultdict(int)
    for start in sorted(graph):
        if color[start] != WHITE:
            continue
        stack = [(start, iter(graph.get(start, ())))]
        color[start] = GRAY
        trail = [start]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                if color[nxt] == GRAY:
                    cycle = trail[trail.index(nxt):] + [nxt]
                    lint.add(
                        os.path.join(src_root, nxt), 1, "include-cycle",
                        "#include cycle: " + " -> ".join(cycle))
                elif color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, iter(graph.get(nxt, ()))))
                    trail.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                trail.pop()


def check_escape_hygiene(lint, src_root):
    """Every `rdfref-lint: allow(...)` must (a) name a rule this lint has
    and (b) still suppress a live finding. Anything else rots: an escape
    that outlives its violation is a suppression waiting to hide the next
    real one."""
    for path in iter_source_files(src_root):
        rel = os.path.relpath(path, src_root)
        with open(path, encoding="utf-8") as f:
            for i, line in enumerate(f, 1):
                for m in ALLOW_RE.finditer(line):
                    rule = m.group(1)
                    if rule in CHECK_RULES:
                        lint.add(path, i, "unknown-escape",
                            f"'{rule}' is a tools/rdfref_check.py rule; "
                            "spell the escape `// rdfref-check: "
                            f"allow({rule})`")
                    elif rule not in LINT_RULES:
                        lint.add(path, i, "unknown-escape",
                            f"escape names unknown rule '{rule}'; known "
                            f"rules: {', '.join(LINT_RULES)}")
                    elif (rel, i) not in lint.used_escapes:
                        lint.add(path, i, "stale-escape",
                            f"escape for '{rule}' no longer suppresses "
                            "anything on this line; delete it")


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def run_lint(root):
    src_root = os.path.join(root, "src")
    if not os.path.isdir(src_root):
        return None
    lint = Lint(src_root)
    for path in iter_source_files(src_root):
        rel = os.path.relpath(path, src_root)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        check_raw_sync(lint, path, rel, lines)
        check_rng_seed(lint, path, rel, lines)
        check_delta_mutation(lint, path, rel, lines)
        check_entry_points(lint, path, rel, lines)
    check_nodiscard_classes(lint, src_root)
    check_layering_and_cycles(lint, src_root)
    check_escape_hygiene(lint, src_root)
    return lint


def self_test():
    """Synthetic tree: every rule must fire where expected, escapes must
    be classified used / stale / unknown, and the clean files must stay
    clean. Runs without touching the real checkout."""
    files = {
        # Minimal [[nodiscard]] carriers so check_nodiscard_classes passes.
        "common/result.h": "template <typename T>\nclass [[nodiscard]] Result {};\n",
        "common/status.h": "class [[nodiscard]] Status {};\n",
        "common/synchronization.h": "#include <mutex>\n",  # the one shim
        "engine/bad.cc":
            "#include <mutex>\n"                      # raw-sync
            "std::mutex m;  // rdfref-lint: allow(raw-sync) justified\n"  # used escape
            "std::random_device rd;\n"                # rng-seed
            "storage::VersionSet* vs;\n"              # delta-mutation
            "int x;  // rdfref-lint: allow(rng-seed) nothing here\n"  # stale
            "int y;  // rdfref-lint: allow(no-such-rule)\n"           # unknown
            "int z;  // rdfref-lint: allow(termid-arith)\n",          # moved rule
        "engine/bad.h":
            '#include "federation/federation.h"\n'    # layering
            "bool AnswerFast(const Q& q);\n",         # nodiscard entry point
        "federation/federation.h": "#pragma once\n",
        # Include cycle pair.
        "rdf/a.h": '#include "rdf/b.h"\n',
        "rdf/b.h": '#include "rdf/a.h"\n',
    }
    expect = {
        ("engine/bad.cc", 1, "raw-sync"),
        ("engine/bad.cc", 3, "rng-seed"),
        ("engine/bad.cc", 4, "delta-mutation"),
        ("engine/bad.cc", 5, "stale-escape"),
        ("engine/bad.cc", 6, "unknown-escape"),
        ("engine/bad.cc", 7, "unknown-escape"),
        ("engine/bad.h", 1, "layering"),
        ("engine/bad.h", 2, "nodiscard"),
        ("rdf/a.h", 1, "include-cycle"),
    }
    with tempfile.TemporaryDirectory(prefix="rdfref_lint_selftest") as tmp:
        src = os.path.join(tmp, "src")
        for rel, content in files.items():
            path = os.path.join(src, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(content)
        lint = run_lint(tmp)
        got = {(os.path.relpath(f.path, src), f.line, f.rule)
               for f in lint.findings}
    # The cycle may be reported from either header; normalize.
    got = {(p.replace("rdf/b.h", "rdf/a.h") if r == "include-cycle" else p,
            l if r != "include-cycle" else 1, r) for p, l, r in got}
    missing = expect - got
    extra = got - expect
    for what, items in (("missing", missing), ("unexpected", extra)):
        for item in sorted(items):
            print(f"self-test {what}: {item}")
    ok = not missing and not extra
    print(f"rdfref_lint --self-test: {'PASS' if ok else 'FAIL'} "
          f"({len(got)} finding(s) on the synthetic tree)")
    return 0 if ok else 1


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repo root (default: parent of this script)")
    parser.add_argument("--quiet", action="store_true",
                        help="print findings only, no summary")
    parser.add_argument("--self-test", action="store_true",
                        help="run the lint against its synthetic tree")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    lint = run_lint(root)
    if lint is None:
        print(f"rdfref_lint: no src/ under {root}", file=sys.stderr)
        return 2

    for finding in lint.findings:
        print(finding)
    if not args.quiet:
        n_files = sum(1 for _ in iter_source_files(lint.src_root))
        print(f"rdfref_lint: {len(lint.findings)} finding(s) across "
              f"{n_files} files", file=sys.stderr)
    return 1 if lint.findings else 0


if __name__ == "__main__":
    sys.exit(main())
