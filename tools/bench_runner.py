#!/usr/bin/env python3
"""bench_runner: pinned perf-smoke subset with machine-readable output.

Runs a fixed, small subset of the benchmark suite — the reformulation-heavy
strategy comparison (Q6, the largest UCQ of the LUBM suite: 462 CQs after
reformulation), the parallel-evaluation suite at 1 and 8 threads, the
snapshot-isolation read-path overhead (pristine store vs sealed delta runs
vs a racing writer), the hierarchy-encoding comparison (classic
per-subclass UCQ members vs collapsed interval range scans, T15), and the
view-cache cold/warm/churn comparison (T17) — plus the sp2b macro
benchmark (T16): the closed-loop workload_driver replaying the pinned
query mix from concurrent clients, swept over writer on/off and view
cache on/off (the cache rows carry hit/miss/invalidation counters).
Writes one JSON document per run (default BENCH_PR10.json).

The subset is pinned so numbers stay comparable across commits: same
queries, same scenario (the shared LUBM dataset the bench binaries build),
same benchmark filters. Google Benchmark's JSON goes to a temp file via
--benchmark_out (stdout carries the human tables), and this script folds
every binary's results into one document:

    {
      "schema": "rdfref-bench/1",
      "generated_by": "tools/bench_runner.py",
      "git_rev": "<short rev or null>",
      "config": {"pinned": [["bench/bench_strategies", "<filter>"], ...],
                 "min_time": null,
                 "macro": {"scenario": "sp2b", "scale": 0.25,
                           "clients": [1, 4, 16], "duration_ms": 300,
                           "strategies": ["REF-UCQ", "REF-JUCQ"],
                           "host_threads": 8}},
      "benchmarks": [
        {"binary": "bench_strategies", "name": "BM_Q6_RefUcq",
         "real_time_ms": 5.43, "cpu_time_ms": 5.42, "iterations": 130},
        ...
      ],
      "macro": [
        {"strategy": "REF-UCQ", "clients": 4, "writer": false,
         "qps": 3729.8, "p50_ms": 0.1, "p95_ms": 3.8, "p99_ms": 5.6, ...},
        ...
      ]
    }

The git_rev + config stamp makes every artifact self-describing: a JSON
diffed months later still says which commit produced it and which pinned
scenario (binaries, filters, min time) it measured.

CI runs this as the perf-smoke job and uploads the JSON as an artifact;
compare against the committed BENCH_PR6.json to spot regressions. The job
is a smoke test, not a gate: shared CI runners are too noisy for hard
thresholds, so regressions are judged by humans diffing the artifacts.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile

# The pinned subset: (binary, benchmark_filter). Q6 is the reformulation
# stress case (largest UCQ); the Suite benchmarks cover the parallel chunk
# path that shares the per-UCQ scan cache; the Snapshot trio measures the
# versioned-storage read path (pristine vs sealed runs vs racing writer);
# the Encoding pair measures the hierarchy-interval collapse against the
# classic per-subclass reformulation on the same queries (T15).
PINNED = [
    ("bench/bench_strategies",
     "BM_Q6_(Sat|RefUcq|RefScq|RefGcov)$"),
    ("bench/bench_parallel",
     "BM_Suite_Ref(Ucq|Scq|Gcov)_Threads/(1|8)$"),
    ("bench/bench_snapshot",
     "BM_Snapshot_(Pristine|SealedRuns|UnderWriter)$"),
    ("bench/bench_encoding",
     "BM_Encoding_(Classic|Interval)/(0|1|2)$"),
    ("bench/bench_view_cache",
     "BM_ViewCache_((Cold|Warm)_Ref(Ucq|Gcov)|WarmUnderChurn)$"),
]

# The pinned macro configuration (T16): the sp2b closed-loop mix swept over
# client counts and writer on/off for the two cover-based Ref strategies.
MACRO = {
    "scenario": "sp2b",
    "scale": 0.25,
    "clients": [1, 4, 16],
    "strategies": ["REF-UCQ", "REF-JUCQ"],
    "duration_ms": 300,
    "seed": 1,
}


def git_rev(root):
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"], cwd=root,
            capture_output=True, text=True, timeout=10)
        return out.stdout.strip() or None if out.returncode == 0 else None
    except OSError:
        return None


def run_one(binary, bench_filter, min_time):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        cmd = [
            binary,
            f"--benchmark_filter={bench_filter}",
            f"--benchmark_out={out_path}",
            "--benchmark_out_format=json",
        ]
        if min_time is not None:
            # This benchmark library version parses a bare double (no
            # "s" suffix).
            cmd.append(f"--benchmark_min_time={min_time}")
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                              stderr=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            print(f"bench_runner: {binary} failed:\n{proc.stderr}",
                  file=sys.stderr)
            return None
        with open(out_path, encoding="utf-8") as f:
            return json.load(f)
    finally:
        os.unlink(out_path)


def fold(binary, raw):
    rows = []
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        # The binaries declare Unit(kMillisecond); trust but record it.
        unit = b.get("time_unit", "ms")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
        if scale is None:
            print(f"bench_runner: unknown time unit {unit!r} in "
                  f"{b.get('name')}", file=sys.stderr)
            continue
        rows.append({
            "binary": os.path.basename(binary),
            "name": b["name"],
            "real_time_ms": round(b["real_time"] * scale, 4),
            "cpu_time_ms": round(b["cpu_time"] * scale, 4),
            "iterations": b["iterations"],
        })
    return rows


def run_macro(build_dir, macro):
    """Runs workload_driver over the pinned macro sweep; returns its parsed
    per-configuration results (or None on failure)."""
    binary = os.path.join(build_dir, "tools", "workload_driver")
    if not os.path.exists(binary):
        print(f"bench_runner: missing binary {binary} "
              "(build the workload_driver target first)", file=sys.stderr)
        return None
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        out_path = tmp.name
    try:
        cmd = [
            binary,
            "--scale", str(macro["scale"]),
            "--seed", str(macro["seed"]),
            "--clients", ",".join(str(c) for c in macro["clients"]),
            "--strategies", ",".join(macro["strategies"]),
            "--duration-ms", str(macro["duration_ms"]),
            "--writer-sweep",
            "--view-cache-sweep",
            "--require-progress",
            "--json", out_path,
        ]
        proc = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                              stderr=subprocess.PIPE, text=True)
        if proc.returncode != 0:
            print(f"bench_runner: workload_driver failed:\n{proc.stderr}",
                  file=sys.stderr)
            return None
        with open(out_path, encoding="utf-8") as f:
            return json.load(f).get("results", [])
    finally:
        os.unlink(out_path)


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory with bench binaries")
    parser.add_argument("--out", default="BENCH_PR10.json",
                        help="output JSON path")
    parser.add_argument("--min-time", default=None,
                        help="per-benchmark min time in seconds "
                             "(default: library default)")
    parser.add_argument("--no-macro", action="store_true",
                        help="skip the sp2b closed-loop macro benchmark")
    args = parser.parse_args(argv)

    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    results = []
    for rel, bench_filter in PINNED:
        binary = os.path.join(args.build_dir, rel)
        if not os.path.exists(binary):
            print(f"bench_runner: missing binary {binary} "
                  "(build the bench targets first)", file=sys.stderr)
            return 2
        raw = run_one(binary, bench_filter, args.min_time)
        if raw is None:
            return 1
        rows = fold(binary, raw)
        if not rows:
            print(f"bench_runner: filter {bench_filter!r} matched nothing "
                  f"in {binary}", file=sys.stderr)
            return 1
        results.extend(rows)

    macro_results = None
    if not args.no_macro:
        macro_results = run_macro(args.build_dir, MACRO)
        if macro_results is None:
            return 1

    # Self-describing artifact: the exact pinned scenario measured, plus
    # the host parallelism the concurrency numbers depend on.
    config = {
        "pinned": [list(entry) for entry in PINNED],
        "min_time": args.min_time,
    }
    if macro_results is not None:
        config["macro"] = dict(MACRO, host_threads=os.cpu_count())
    doc = {
        "schema": "rdfref-bench/1",
        "generated_by": "tools/bench_runner.py",
        "git_rev": git_rev(root),
        "config": config,
        "benchmarks": results,
    }
    if macro_results is not None:
        doc["macro"] = macro_results
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    for row in results:
        print(f"{row['binary']:>18} {row['name']:<40} "
              f"{row['real_time_ms']:>10.3f} ms")
    for row in macro_results or []:
        tag = "+writer" if row["writer"] else "       "
        cache = "+cache " if row.get("view_cache") else "       "
        rate = (f"  hit {row['cache_hit_rate']:.2f}"
                if row.get("view_cache") else "")
        print(f"   workload_driver {row['strategy']:<9} x{row['clients']:<3}"
              f"{tag}{cache} {row['qps']:>9.0f} qps"
              f"  p50 {row['p50_ms']:>7.3f} ms"
              f"  p99 {row['p99_ms']:>7.3f} ms{rate}")
    n_macro = len(macro_results or [])
    print(f"bench_runner: wrote {len(results)} micro + {n_macro} macro "
          f"result(s) to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
