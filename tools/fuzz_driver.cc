// Differential fuzzing driver — the correctness gate every PR runs.
//
// Draws seeded random (schema, graph, query) scenarios, answers each query
// with every strategy, and checks the oracle protocol (Sat is ground truth;
// complete strategies match bit-for-bit; incomplete Ref is a subset) plus
// the metamorphic relations (thread-count / deadline invariance, federation
// graph-partition equivalence, insertion monotonicity, DRed consistency).
// On divergence the case is greedily shrunk and emitted as a compilable
// gtest snippet plus a replayable seed file.
//
// Usage:
//   fuzz_driver --seeds 0..500            # fuzz a seed range (inclusive)
//   fuzz_driver --seeds 200               # 0..200
//   fuzz_driver --replay repro.seed       # re-run one recorded case
//   fuzz_driver --inject-bug --seeds 50   # harness self-test: a synthetic
//                                         #   evaluator bug MUST be caught
//   --trials N        queries per seed (default 4)
//   --no-metamorphic  oracle only
//   --no-federation   skip the federation partition relation
//   --no-updates      skip insert/delete relations
//   --no-encoded      skip the hierarchy-encoding equivalence relation
//   --check-encoded   ONLY the hierarchy-encoding relation: interval
//                     reformulation vs the classic UCQ it fuses, at load,
//                     after a schema insert, and across Reencode()
//   --no-cached       skip the view-cache equivalence relation
//   --check-cached    ONLY the view-cache relation: cache-mediated
//                     evaluation (fill then replay, whole unions and JUCQ
//                     fragments) vs cold evaluation, bit-for-bit, across
//                     load/update/compact phases
//   --no-shrink       report the unshrunk failing case
//   --scenario NAME   graph source: random (default) or sp2b (the
//                     SP2Bench-style bibliographic generator — deep
//                     hierarchies, cyclic Zipf-skewed citations)
//   --updates-concurrent
//                     ONLY the threaded snapshot relation: a churning
//                     writer (with background compaction) races reader
//                     threads whose pinned epochs must answer bit-
//                     identically to from-scratch evaluation — both
//                     directly and through the shared view cache;
//                     divergences are reported unshrunk (timing-dependent)
//   --out PATH        write the shrunken repro test here (default
//                     fuzz_repro.cc next to the seed file fuzz_repro.seed)
//
// Exit code 0 = no divergence; 1 = divergence (artifacts written); 2 = bad
// usage. With --inject-bug the meaning inverts: 0 = the injected bug was
// caught AND shrunk small (the harness works), 1 = it slipped through.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "testing/fuzz.h"

namespace {

using rdfref::testing::FuzzFailure;
using rdfref::testing::FuzzOptions;
using rdfref::testing::FuzzReport;

bool ParseSeedRange(const std::string& arg, uint64_t* begin, uint64_t* end) {
  size_t dots = arg.find("..");
  char* parse_end = nullptr;
  if (dots == std::string::npos) {
    *begin = 0;
    *end = std::strtoull(arg.c_str(), &parse_end, 10);
    return parse_end && *parse_end == '\0';
  }
  // Keep the substrings alive past the *parse_end checks (a temporary's
  // c_str() would dangle by then).
  const std::string head = arg.substr(0, dots);
  const std::string tail = arg.substr(dots + 2);
  *begin = std::strtoull(head.c_str(), &parse_end, 10);
  if (!parse_end || *parse_end != '\0') return false;
  *end = std::strtoull(tail.c_str(), &parse_end, 10);
  return parse_end && *parse_end == '\0' && *begin <= *end;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) return false;
  out << contents;
  return static_cast<bool>(out);
}

void PrintFailure(const FuzzFailure& failure) {
  std::fprintf(stderr,
               "DIVERGENCE seed=%llu trial=%d relation=%s\n%s\n"
               "shrunk to %zu triple(s) (%zu schema + %zu data), "
               "%zu query atom(s) in %d round(s), %d evaluation(s)\n",
               static_cast<unsigned long long>(failure.seed), failure.trial,
               failure.relation.c_str(), failure.detail.c_str(),
               failure.shrunk.triples(), failure.shrunk.schema_triples.size(),
               failure.shrunk.data_triples.size(),
               failure.shrunk.query.body().size(), failure.shrunk.rounds,
               failure.shrunk.evaluations);
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed_begin = 0, seed_end = 100;
  bool inject_bug = false;
  bool have_replay = false;
  std::string replay_path;
  std::string out_path = "fuzz_repro.cc";
  FuzzOptions options;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v || !ParseSeedRange(v, &seed_begin, &seed_end)) {
        std::fprintf(stderr, "bad --seeds (want N or A..B)\n");
        return 2;
      }
    } else if (arg == "--trials") {
      const char* v = next();
      if (!v) return 2;
      options.trials_per_seed = std::atoi(v);
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return 2;
      have_replay = true;
      replay_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return 2;
      out_path = v;
    } else if (arg == "--inject-bug") {
      inject_bug = true;
    } else if (arg == "--no-metamorphic") {
      options.check_metamorphic = false;
    } else if (arg == "--no-federation") {
      options.check_federation = false;
    } else if (arg == "--no-updates") {
      options.check_updates = false;
    } else if (arg == "--no-encoded") {
      options.check_encoded = false;
    } else if (arg == "--no-cached") {
      options.check_cached = false;
    } else if (arg == "--check-encoded") {
      // Focused mode: every cycle goes to the encoding-equivalence relation.
      options.check_oracle = false;
      options.check_columnar = false;
      options.check_metamorphic = false;
      options.check_federation = false;
      options.check_updates = false;
      options.check_snapshots = false;
      options.check_cached = false;
      options.check_encoded = true;
    } else if (arg == "--check-cached") {
      // Focused mode: every cycle goes to the view-cache relation.
      options.check_oracle = false;
      options.check_columnar = false;
      options.check_metamorphic = false;
      options.check_federation = false;
      options.check_updates = false;
      options.check_snapshots = false;
      options.check_encoded = false;
      options.check_cached = true;
    } else if (arg == "--updates-concurrent") {
      // Focused mode: every cycle goes to the threaded relations (the
      // snapshot one, then the view-cache one).
      options.check_oracle = false;
      options.check_columnar = false;
      options.check_metamorphic = false;
      options.check_federation = false;
      options.check_updates = false;
      options.check_snapshots = false;
      options.check_encoded = false;
      options.check_cached = false;
      options.check_concurrent = true;
    } else if (arg == "--no-shrink") {
      options.shrink = false;
    } else if (arg == "--scenario") {
      const char* v = next();
      if (!v) return 2;
      const std::string name = v;
      if (name == "random") {
        options.scenario.source = rdfref::testing::ScenarioSource::kRandom;
      } else if (name == "sp2b") {
        options.scenario.source = rdfref::testing::ScenarioSource::kSp2b;
      } else {
        std::fprintf(stderr, "unknown --scenario %s (random|sp2b)\n", v);
        return 2;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  if (inject_bug) {
    // The mutation check: silently drop one row from Ref-SCQ's answers.
    // This models a real evaluator bug class (a lost tuple); the oracle
    // must flag it and the shrinker must reduce it to a tiny repro.
    options.mutate = [](rdfref::api::Strategy s, rdfref::engine::Table* t) {
      if (s == rdfref::api::Strategy::kRefScq && !t->empty()) {
        t->RemoveLastRow();
      }
    };
  }

  FuzzReport report;
  if (have_replay) {
    std::ifstream in(replay_path);
    if (!in) {
      std::fprintf(stderr, "cannot read %s\n", replay_path.c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    rdfref::testing::SeedFileEntry entry;
    if (!rdfref::testing::ParseSeedFile(buffer.str(), &entry)) {
      std::fprintf(stderr, "malformed seed file %s\n", replay_path.c_str());
      return 2;
    }
    std::fprintf(stderr, "replaying seed=%llu trial=%d (%s)\n",
                 static_cast<unsigned long long>(entry.seed), entry.trial,
                 entry.relation.c_str());
    rdfref::testing::RunFuzzSeed(entry.seed, options, &report);
  } else {
    report = rdfref::testing::RunFuzz(seed_begin, seed_end, options);
  }

  std::fprintf(stderr,
               "fuzz: %llu seed(s), %llu quer%s, %llu check(s), "
               "%zu divergence(s)\n",
               static_cast<unsigned long long>(report.seeds_run),
               static_cast<unsigned long long>(report.queries_checked),
               report.queries_checked == 1 ? "y" : "ies",
               static_cast<unsigned long long>(report.checks_run),
               report.failures.size());

  if (!report.failures.empty()) {
    const FuzzFailure& failure = report.failures.front();
    PrintFailure(failure);
    std::string seed_path = out_path;
    size_t dot = seed_path.rfind(".cc");
    seed_path = (dot == std::string::npos ? seed_path
                                          : seed_path.substr(0, dot)) +
                ".seed";
    if (!WriteFile(out_path, failure.repro_cc) ||
        !WriteFile(seed_path, failure.seed_file)) {
      std::fprintf(stderr, "warning: could not write repro artifacts\n");
    } else {
      std::fprintf(stderr, "repro test:  %s\nseed file:   %s\n",
                   out_path.c_str(), seed_path.c_str());
    }
  }

  if (inject_bug) {
    if (report.failures.empty()) {
      std::fprintf(stderr,
                   "MUTATION CHECK FAILED: injected bug was not caught\n");
      return 1;
    }
    const FuzzFailure& failure = report.failures.front();
    const bool small = failure.shrunk.triples() <= 10 &&
                       failure.shrunk.query.body().size() <= 3;
    if (!options.shrink) {
      std::fprintf(stderr, "mutation check: caught (shrinking disabled)\n");
      return 0;
    }
    if (!small) {
      std::fprintf(stderr,
                   "MUTATION CHECK FAILED: repro not minimal "
                   "(%zu triples, %zu atoms)\n",
                   failure.shrunk.triples(),
                   failure.shrunk.query.body().size());
      return 1;
    }
    std::fprintf(stderr,
                 "mutation check: injected bug caught and shrunk to "
                 "%zu triple(s), %zu atom(s)\n",
                 failure.shrunk.triples(),
                 failure.shrunk.query.body().size());
    return 0;
  }
  return report.failures.empty() ? 0 : 1;
}
