#ifndef RDFREF_BENCH_BENCH_COMMON_H_
#define RDFREF_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/query_answering.h"
#include "datagen/lubm.h"
#include "query/sparql_parser.h"

namespace rdfref {
namespace bench {

inline constexpr const char* kUbPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

/// \brief Lazily built shared LUBM-style answerer (one per process).
inline api::QueryAnswerer* SharedLubm(int universities = 3,
                                      double scale = 1.0) {
  static api::QueryAnswerer* answerer = [universities, scale]() {
    datagen::LubmConfig config;
    config.universities = universities;
    config.scale = scale;
    // A compact degree pool keeps Example 1 non-empty at bench scale (the
    // paper's LUBM 100M references ~1000 universities at 1000x our size).
    config.referenced_universities = 10;
    rdf::Graph graph;
    datagen::Lubm::Generate(config, &graph);
    auto* a = new api::QueryAnswerer(std::move(graph));
    std::printf("# LUBM-style dataset: %d universities, scale %.2f, "
                "%zu explicit triples\n",
                universities, scale, a->num_explicit_triples());
    return a;
  }();
  return answerer;
}

/// \brief Parses a ub:-prefixed SPARQL BGP against the answerer's
/// dictionary; aborts on error (benchmark setup code).
inline query::Cq ParseUb(api::QueryAnswerer* answerer,
                         const std::string& body) {
  auto q = query::ParseSparql(kUbPrefix + body, &answerer->dict());
  if (!q.ok()) {
    std::fprintf(stderr, "query parse failed: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return *q;
}

/// \brief The LUBM-flavoured query suite used across benchmarks (the demo's
/// step 2 compares "a query" across all systems; we sweep a suite).
inline const std::vector<std::pair<std::string, std::string>>&
LubmQuerySuite() {
  static const auto* suite =
      new std::vector<std::pair<std::string, std::string>>{
          {"Q1-persons", "SELECT ?x WHERE { ?x a ub:Person . }"},
          {"Q2-professors",
           "SELECT ?x ?d WHERE { ?x a ub:Professor . ?x ub:worksFor ?d . }"},
          {"Q3-students",
           "SELECT ?x ?c WHERE { ?x a ub:Student . ?x ub:takesCourse ?c . }"},
          {"Q4-advisors",
           "SELECT ?x ?a WHERE { ?x ub:advisor ?a . ?a ub:headOf ?d . }"},
          {"Q5-degrees",
           "SELECT ?x WHERE { ?x ub:degreeFrom "
           "<http://www.University1.edu> . }"},
          {"Q6-members",
           "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . ?x ub:memberOf ?z . }"},
          {"Q7-typed-degrees",
           "SELECT ?x ?u WHERE { ?x rdf:type ?u . "
           "?x ub:mastersDegreeFrom <http://www.University1.edu> . }"},
          {"Q8-org-units",
           "SELECT ?g ?d WHERE { ?g a ub:Organization . "
           "?g ub:subOrganizationOf ?d . }"},
          {"Q9-teachers",
           "SELECT ?f ?c ?s WHERE { ?f ub:teacherOf ?c . "
           "?s ub:takesCourse ?c . ?s a ub:Student . }"},
          {"Q10-chain",
           "SELECT ?s ?a ?d WHERE { ?s ub:advisor ?a . "
           "?a ub:worksFor ?d . ?d ub:subOrganizationOf ?u . }"},
      };
  return *suite;
}

/// \brief The Example 1 query of the paper (six triple patterns).
inline query::Cq Example1Query(api::QueryAnswerer* answerer,
                               int university = 1) {
  const std::string univ = datagen::Lubm::UniversityUri(university);
  return ParseUb(answerer,
                 "SELECT ?x ?u ?y ?v ?z WHERE {\n"
                 "  ?x rdf:type ?u .\n"
                 "  ?y rdf:type ?v .\n"
                 "  ?x ub:mastersDegreeFrom <" + univ + "> .\n"
                 "  ?y ub:doctoralDegreeFrom <" + univ + "> .\n"
                 "  ?x ub:memberOf ?z .\n"
                 "  ?y ub:memberOf ?z .\n"
                 "}");
}

/// \brief The paper's winning cover for Example 1 (0-indexed atoms).
inline query::Cover Example1PaperCover() {
  return query::Cover({{0, 2}, {2, 4}, {1, 3}, {3, 5}});
}

}  // namespace bench
}  // namespace rdfref

#endif  // RDFREF_BENCH_BENCH_COMMON_H_
