// Experiment T1 — demo step 2: answer a query suite "through all the
// available systems, to compare their performance and completeness".
// Rows: query × strategy → answers, prepare ms, eval ms, #CQs.
//
// Expected shape: Sat pays saturation once then evaluates fastest;
// Ref-UCQ suffers on reformulation-heavy queries; Ref-GCov tracks the best
// cover; Dat pays the closure once; incomplete Ref loses answers.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace rdfref {
namespace bench {
namespace {

void PrintStrategyTable() {
  api::QueryAnswerer* answerer = SharedLubm();
  // Force the one-time preparations first so per-query rows are warm.
  query::Cq warmup = ParseUb(answerer, "SELECT ?x WHERE { ?x a ub:Course . }");
  (void)answerer->Answer(warmup, api::Strategy::kSaturation);
  (void)answerer->Answer(warmup, api::Strategy::kDatalog);

  std::printf("\n== T1: strategy comparison across the query suite ==\n");
  std::printf("%-16s %-16s %9s %12s %12s %8s\n", "query", "system",
              "answers", "prepare(ms)", "eval(ms)", "#CQs");
  for (const auto& [name, text] : LubmQuerySuite()) {
    query::Cq q = ParseUb(answerer, text);
    for (api::Strategy s :
         {api::Strategy::kSaturation, api::Strategy::kRefUcq,
          api::Strategy::kRefScq, api::Strategy::kRefGcov,
          api::Strategy::kRefIncomplete, api::Strategy::kDatalog}) {
      api::AnswerProfile profile;
      auto table = answerer->Answer(q, s, &profile);
      if (!table.ok()) {
        std::printf("%-16s %-16s failed: %s\n", name.c_str(),
                    api::StrategyName(s),
                    table.status().ToString().c_str());
        continue;
      }
      std::printf("%-16s %-16s %9zu %12.2f %12.2f %8llu\n", name.c_str(),
                  api::StrategyName(s), table->NumRows(),
                  profile.prepare_millis, profile.eval_millis,
                  static_cast<unsigned long long>(
                      profile.reformulation_cqs));
    }
  }
  std::printf("\n");
}

void RunStrategy(benchmark::State& state, api::Strategy strategy,
                 const char* text) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = ParseUb(answerer, text);
  (void)answerer->Answer(q, strategy);  // warm one-time preparation
  for (auto _ : state) {
    auto table = answerer->Answer(q, strategy);
    benchmark::DoNotOptimize(table);
  }
}

constexpr const char* kQ6 =
    "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . ?x ub:memberOf ?z . }";

void BM_Q6_Sat(benchmark::State& state) {
  RunStrategy(state, api::Strategy::kSaturation, kQ6);
}
void BM_Q6_RefUcq(benchmark::State& state) {
  RunStrategy(state, api::Strategy::kRefUcq, kQ6);
}
void BM_Q6_RefScq(benchmark::State& state) {
  RunStrategy(state, api::Strategy::kRefScq, kQ6);
}
void BM_Q6_RefGcov(benchmark::State& state) {
  RunStrategy(state, api::Strategy::kRefGcov, kQ6);
}
void BM_Q6_Datalog(benchmark::State& state) {
  RunStrategy(state, api::Strategy::kDatalog, kQ6);
}
BENCHMARK(BM_Q6_Sat)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q6_RefUcq)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q6_RefScq)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q6_RefGcov)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Q6_Datalog)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintStrategyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
