// Experiment T11 — resilient federation: answer completeness and latency as
// endpoint failure rate sweeps 0 -> 50%.
//
// The paper motivates reformulation because Semantic Web sources are
// independent, rate-limited, and unreliable (Section 1); SP²Bench argues a
// credible benchmark must stress engines under adverse shapes. This table
// extends that to adverse *source* behaviour: LUBM-style facts split across
// endpoints, each endpoint failing a seeded fraction of requests, the
// mediator answering in degraded mode (retry + circuit breaker + partial
// answers with a completeness report).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "federation/federation.h"

namespace rdfref {
namespace bench {
namespace {

std::unique_ptr<federation::Federation> MakeFlakyFederation(
    int universities, double failure_probability) {
  auto fed = std::make_unique<federation::Federation>();

  rdf::Graph ontology;
  datagen::Lubm::AddOntology(&ontology);
  // The ontology endpoint stays healthy: the mediated schema (and with it
  // the reformulation) is available even when fact sources flake.
  fed->AddEndpoint("ontology", ontology, federation::EndpointOptions{});

  for (int u = 0; u < universities; ++u) {
    datagen::LubmConfig config;
    config.universities = 1;
    config.seed = 42 + static_cast<uint64_t>(u);
    config.scale = 0.5;
    config.referenced_universities = 10;
    rdf::Graph graph;
    datagen::Lubm::Generate(config, &graph);
    rdf::Graph facts;
    for (const rdf::Triple& t : graph.SortedTriples()) {
      if (rdf::vocab::IsSchemaProperty(t.p)) continue;
      facts.Add(graph.dict().Lookup(t.s), graph.dict().Lookup(t.p),
                graph.dict().Lookup(t.o));
    }
    federation::EndpointOptions options;
    options.fault.failure_probability = failure_probability;
    options.fault.seed = 1000 + static_cast<uint64_t>(u);
    fed->AddEndpoint("university" + std::to_string(u), facts, options);
  }

  federation::ResilienceOptions resilience;
  resilience.retry.max_attempts = 3;
  resilience.breaker.failure_threshold = 5;
  resilience.breaker.cooldown_ms = 50.0;
  fed->set_resilience(resilience);
  return fed;
}

void PrintResilienceTable() {
  std::printf("\n== T11: resilient federation — completeness vs. failure "
              "rate ==\n");
  std::printf("%-10s %10s %10s %10s %10s %10s  %s\n", "fail-rate", "answers",
              "complete", "retries", "skipped", "time(ms)", "degraded");

  // Baseline answer count from a fully healthy federation.
  size_t full_answers = 0;
  {
    auto fed = MakeFlakyFederation(3, 0.0);
    auto q = query::ParseSparql(
        std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
        &fed->dict());
    if (!q.ok()) return;
    auto answer = fed->AnswerResilient(*q);
    if (answer.ok()) full_answers = answer->table.NumRows();
  }

  for (double rate : {0.0, 0.1, 0.2, 0.3, 0.4, 0.5}) {
    auto fed = MakeFlakyFederation(3, rate);
    auto q = query::ParseSparql(
        std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
        &fed->dict());
    if (!q.ok()) return;
    federation::FederationAnswerOptions options;
    options.allow_partial = true;

    Timer timer;
    auto answer = fed->AnswerResilient(*q, options);
    double ms = timer.ElapsedMillis();
    if (!answer.ok()) {
      std::printf("%-10.2f answering failed: %s\n", rate,
                  answer.status().ToString().c_str());
      continue;
    }
    const federation::CompletenessReport& report = answer->report;
    uint64_t skipped = 0;
    std::string degraded;
    for (const federation::EndpointHealth& h : report.endpoints) {
      skipped += h.skipped;
      if (h.data_lost()) {
        if (!degraded.empty()) degraded += ",";
        degraded += h.endpoint;
      }
    }
    std::printf("%-10.2f %7zu/%zu %10s %10llu %10llu %10.2f  %s\n", rate,
                answer->table.NumRows(), full_answers,
                report.known_complete ? "yes" : "NO",
                static_cast<unsigned long long>(report.total_retries),
                static_cast<unsigned long long>(skipped), ms,
                degraded.empty() ? "-" : degraded.c_str());
  }
  std::printf("(degraded mode: partial answers + completeness report; "
              "breakers stop hammering dead sources)\n");

  // Deadline sweep: how tight a budget the mediated Ref call tolerates.
  std::printf("\n-- deadline sweep (healthy federation) --\n");
  auto fed = MakeFlakyFederation(2, 0.0);
  auto q = query::ParseSparql(
      std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
      &fed->dict());
  if (!q.ok()) return;
  for (double budget_ms : {0.01, 0.1, 1.0, 10.0, 100.0}) {
    federation::FederationAnswerOptions options;
    options.deadline = Deadline::AfterMillis(budget_ms);
    Timer timer;
    auto answer = fed->AnswerResilient(*q, options);
    double ms = timer.ElapsedMillis();
    std::printf("budget %8.2f ms -> %-18s in %8.2f ms\n", budget_ms,
                answer.ok() ? "complete answer"
                            : StatusCodeToString(answer.status().code()),
                ms);
  }
}

void BM_ResilientRefHealthy(benchmark::State& state) {
  static auto fed = MakeFlakyFederation(2, 0.0);
  static auto q = *query::ParseSparql(
      std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
      &fed->dict());
  federation::FederationAnswerOptions options;
  options.allow_partial = true;
  for (auto _ : state) {
    auto answer = fed->AnswerResilient(q, options);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ResilientRefHealthy)->Unit(benchmark::kMillisecond);

void BM_ResilientRefFlaky(benchmark::State& state) {
  static auto fed = MakeFlakyFederation(2, 0.2);
  static auto q = *query::ParseSparql(
      std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
      &fed->dict());
  federation::FederationAnswerOptions options;
  options.allow_partial = true;
  for (auto _ : state) {
    auto answer = fed->AnswerResilient(q, options);
    benchmark::DoNotOptimize(answer);
  }
}
BENCHMARK(BM_ResilientRefFlaky)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintResilienceTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
