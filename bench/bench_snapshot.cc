// Experiment T14 — snapshot-isolation read-path overhead.
//
// Three read latencies over the same LUBM dataset and the same
// reformulated UCQ (Q9-teachers, a three-atom join): a pristine immutable
// Store; a pinned snapshot over a VersionSet carrying sealed delta runs
// (churn triples use a dedicated bench property, so the measured overhead
// is exactly the per-generation presence checks and range bookkeeping, not
// extra answers); and the same pinned read while a writer thread churns
// with background compaction enabled. The PR 6 acceptance bar: SealedRuns
// stays within ~1.2x of Pristine, and UnderWriter close behind — writers
// must not collapse reader latency.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/evaluator.h"
#include "reformulation/reformulator.h"
#include "storage/version_set.h"

namespace rdfref {
namespace bench {
namespace {

struct SnapshotWorkload {
  api::QueryAnswerer* answerer = nullptr;
  query::Ucq ucq;
  // Pre-interned churn triples over a bench-only property: the writer
  // threads must never touch the (unsynchronized) dictionary.
  std::vector<rdf::Triple> churn;
};

SnapshotWorkload* Workload() {
  static SnapshotWorkload* workload = [] {
    auto* out = new SnapshotWorkload;
    out->answerer = SharedLubm();
    query::Cq q = ParseUb(out->answerer,
                          "SELECT ?f ?c ?s WHERE { ?f ub:teacherOf ?c . "
                          "?s ub:takesCourse ?c . ?s a ub:Student . }");
    reformulation::Reformulator ref(&out->answerer->schema(), {},
                                    &out->answerer->dict());
    auto ucq = ref.Reformulate(q);
    if (!ucq.ok()) std::abort();
    out->ucq = std::move(*ucq);

    rdf::Dictionary& dict = out->answerer->dict();
    const rdf::TermId touches = dict.InternUri("http://bench/touches");
    out->churn.reserve(1536);
    for (int i = 0; i < 1536; ++i) {
      out->churn.emplace_back(
          dict.InternUri("http://bench/s" + std::to_string(i % 256)),
          touches, dict.InternUri("http://bench/o" + std::to_string(i)));
    }
    return out;
  }();
  return workload;
}

void BM_Snapshot_Pristine(benchmark::State& state) {
  SnapshotWorkload* w = Workload();
  engine::Evaluator evaluator(&w->answerer->ref_store());
  for (auto _ : state) {
    engine::Table table = evaluator.EvaluateUcq(w->ucq);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_Snapshot_Pristine)->Unit(benchmark::kMillisecond);

void BM_Snapshot_SealedRuns(benchmark::State& state) {
  SnapshotWorkload* w = Workload();
  storage::VersionSet versions(&w->answerer->ref_store());
  // Three sealed runs of 512 adds each — the multi-generation shape a
  // write-heavy phase leaves behind before compaction catches up.
  for (size_t i = 0; i < w->churn.size(); ++i) {
    versions.Insert(w->churn[i]);
    if ((i + 1) % 512 == 0) versions.Freeze();
  }
  for (auto _ : state) {
    storage::SnapshotPtr snap = versions.snapshot();
    engine::Evaluator evaluator(snap.get());
    engine::Table table = evaluator.EvaluateUcq(w->ucq);
    benchmark::DoNotOptimize(table);
  }
  state.counters["runs"] = static_cast<double>(versions.num_runs());
}
BENCHMARK(BM_Snapshot_SealedRuns)->Unit(benchmark::kMillisecond);

void BM_Snapshot_UnderWriter(benchmark::State& state) {
  SnapshotWorkload* w = Workload();
  storage::VersionSet versions(&w->answerer->ref_store());
  storage::VersionSetOptions maintenance;
  maintenance.freeze_threshold = 512;
  maintenance.compact_min_runs = 3;
  versions.StartBackgroundCompaction(maintenance);

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Insert the churn set, drain it, repeat: the head fills toward the
    // freeze threshold continuously and compaction keeps firing.
    while (!stop.load()) {
      for (const rdf::Triple& t : w->churn) {
        versions.Insert(t);
        if (stop.load()) return;
      }
      for (const rdf::Triple& t : w->churn) {
        versions.Remove(t);
        if (stop.load()) return;
      }
    }
  });

  for (auto _ : state) {
    storage::SnapshotPtr snap = versions.snapshot();
    engine::Evaluator evaluator(snap.get());
    engine::Table table = evaluator.EvaluateUcq(w->ucq);
    benchmark::DoNotOptimize(table);
  }

  stop.store(true);
  writer.join();
  versions.StopBackgroundCompaction();
}
BENCHMARK(BM_Snapshot_UnderWriter)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

BENCHMARK_MAIN();
