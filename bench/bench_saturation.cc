// Experiment T2 — the Sat technique's costs (Section 1: "the saturation
// needs to be maintained after changes in the data and/or constraints,
// which may incur a performance penalty").
//
// Series: saturation time and size amplification vs dataset scale, and
// incremental-insert maintenance cost vs full re-saturation.

#include <benchmark/benchmark.h>

#include <cstdio>

#include <unordered_set>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "reasoner/saturation.h"
#include "storage/delta_store.h"

namespace rdfref {
namespace bench {
namespace {

rdf::Graph MakeLubm(int universities, double scale) {
  datagen::LubmConfig config;
  config.universities = universities;
  config.scale = scale;
  rdf::Graph graph;
  datagen::Lubm::Generate(config, &graph);
  return graph;
}

void PrintSaturationSeries() {
  std::printf("\n== T2: saturation cost and maintenance ==\n");
  std::printf("%10s %12s %12s %12s %10s\n", "scale", "explicit",
              "saturated", "added", "time(ms)");
  for (double scale : {0.25, 0.5, 1.0, 2.0}) {
    rdf::Graph graph = MakeLubm(2, scale);
    schema::Schema schema = schema::Schema::FromGraph(graph);
    schema.Saturate();
    size_t explicit_triples = graph.size();
    Timer timer;
    reasoner::Saturator saturator(&schema);
    size_t added = saturator.Saturate(&graph);
    double millis = timer.ElapsedMillis();
    std::printf("%10.2f %12zu %12zu %12zu %10.2f\n", scale,
                explicit_triples, graph.size(), added, millis);
  }

  // Maintenance: inserting one triple into a saturated graph vs
  // re-saturating from scratch.
  std::printf("\nincremental maintenance (scale 1.0):\n");
  rdf::Graph graph = MakeLubm(2, 1.0);
  schema::Schema schema = schema::Schema::FromGraph(graph);
  schema.Saturate();
  reasoner::Saturator saturator(&schema);
  saturator.Saturate(&graph);

  rdf::TermId s = graph.dict().InternUri("http://www.example.org/newPerson");
  rdf::TermId works = graph.dict().InternUri(
      datagen::Lubm::Uri("worksFor"));
  rdf::TermId dept = graph.dict().InternUri(
      "http://www.Department0.University0.edu");
  Timer insert_timer;
  size_t added = saturator.Insert(&graph, rdf::Triple(s, works, dept));
  double insert_ms = insert_timer.ElapsedMillis();

  rdf::Graph fresh = MakeLubm(2, 1.0);
  fresh.Add(s, works, dept);
  Timer resat_timer;
  saturator.Saturate(&fresh);
  double resat_ms = resat_timer.ElapsedMillis();
  std::printf("  one insert: %zu derived triples in %.3f ms; "
              "full re-saturation: %.2f ms (%.0fx)\n",
              added, insert_ms, resat_ms,
              insert_ms > 0 ? resat_ms / insert_ms : 0.0);

  // Deletion maintenance (DRed): remove a high-fanout explicit fact.
  {
    rdf::Graph g = MakeLubm(2, 1.0);
    std::unordered_set<rdf::Triple, rdf::TripleHash> explicit_set(
        g.triples().begin(), g.triples().end());
    schema::Schema del_schema = schema::Schema::FromGraph(g);
    del_schema.Saturate();
    reasoner::Saturator del_sat(&del_schema);
    del_sat.Saturate(&g);
    // Delete the first worksFor fact we find.
    rdf::TermId works_for = g.dict().InternUri(
        datagen::Lubm::Uri("worksFor"));
    rdf::Triple victim;
    for (const rdf::Triple& t : g.SortedTriples()) {
      if (t.p == works_for && explicit_set.count(t)) {
        victim = t;
        break;
      }
    }
    explicit_set.erase(victim);
    Timer del_timer;
    size_t removed = del_sat.Delete(&g, victim, [&](const rdf::Triple& x) {
      return explicit_set.count(x) > 0;
    });
    double del_ms = del_timer.ElapsedMillis();
    std::printf("  one delete (DRed): %zu triples retracted in %.3f ms "
                "(vs %.2f ms re-saturation)\n",
                removed, del_ms, resat_ms);
  }

  // The Ref side of the same update: a delta-overlay write, no
  // consequence chasing at all (the paper's maintenance argument).
  {
    rdf::Graph g = MakeLubm(2, 1.0);
    storage::Store base(g);
    storage::DeltaStore overlay(&base);
    rdf::TermId works_for =
        g.dict().InternUri(datagen::Lubm::Uri("worksFor"));
    rdf::TermId new_dept =
        g.dict().InternUri("http://www.Department0.University0.edu");
    Timer t;
    constexpr int kUpdates = 1000;
    for (int i = 0; i < kUpdates; ++i) {
      rdf::TermId subj = g.dict().InternUri(
          "http://www.example.org/new" + std::to_string(i));
      overlay.Insert(rdf::Triple(subj, works_for, new_dept));
    }
    std::printf("  Ref-side updates (delta overlay): %.3f us each — no "
                "maintenance needed\n\n",
                t.ElapsedMicros() / static_cast<double>(kUpdates));
  }
}

void BM_Saturate(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 4.0;
  for (auto _ : state) {
    state.PauseTiming();
    rdf::Graph graph = MakeLubm(1, scale);
    schema::Schema schema = schema::Schema::FromGraph(graph);
    schema.Saturate();
    reasoner::Saturator saturator(&schema);
    state.ResumeTiming();
    benchmark::DoNotOptimize(saturator.Saturate(&graph));
  }
}
BENCHMARK(BM_Saturate)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_IncrementalInsert(benchmark::State& state) {
  rdf::Graph graph = MakeLubm(1, 0.5);
  schema::Schema schema = schema::Schema::FromGraph(graph);
  schema.Saturate();
  reasoner::Saturator saturator(&schema);
  saturator.Saturate(&graph);
  rdf::TermId works =
      graph.dict().InternUri(datagen::Lubm::Uri("worksFor"));
  rdf::TermId dept =
      graph.dict().InternUri("http://www.Department0.University0.edu");
  uint64_t i = 0;
  for (auto _ : state) {
    rdf::TermId s = graph.dict().InternUri(
        "http://www.example.org/person" + std::to_string(i++));
    benchmark::DoNotOptimize(
        saturator.Insert(&graph, rdf::Triple(s, works, dept)));
  }
}
BENCHMARK(BM_IncrementalInsert)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintSaturationSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
