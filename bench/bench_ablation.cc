// Experiment T9 — ablations of the design choices DESIGN.md calls out:
//   (a) the union-overlap discount in the cost model's UCQ row estimate
//       (without it, grouped fragments look overpriced and GCov degrades
//       to pitfall covers);
//   (b) the per-union-member overhead (without it, the UCQ strategy's
//       parse/plan blow-up is invisible to the model);
//   (c) the closed-form product reformulation vs the general worklist
//       (same UCQ, very different construction cost).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"

namespace rdfref {
namespace bench {
namespace {

void PrintAblationTable() {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  reformulation::Reformulator reformulator(&answerer->schema());

  std::printf("\n== T9: ablations ==\n");
  std::printf("(a/b) cost-model variants on the Example 1 query:\n");
  std::printf("%-34s %-28s %12s\n", "variant", "GCov cover", "measured(ms)");
  struct Variant {
    const char* name;
    cost::CostParams params;
  };
  cost::CostParams no_overlap;
  no_overlap.union_overlap = 1.0;  // plain sum of member estimates
  cost::CostParams no_member_overhead;
  no_member_overhead.per_union_member = 0.0;
  cost::CostParams pair_stats;
  pair_stats.use_pair_statistics = true;
  const Variant variants[] = {
      {"default", cost::CostParams{}},
      {"no union-overlap discount", no_overlap},
      {"no per-member overhead", no_member_overhead},
      {"attribute-pair statistics", pair_stats},
  };
  for (const Variant& v : variants) {
    cost::CostModel model(&answerer->ref_store().stats(), v.params);
    optimizer::CoverOptimizer optimizer(&reformulator, &model);
    auto cover = optimizer.Greedy(q);
    if (!cover.ok()) continue;
    api::AnswerOptions options;
    options.cover = *cover;
    api::AnswerProfile profile;
    auto table =
        answerer->Answer(q, api::Strategy::kRefJucq, &profile, options);
    std::printf("%-34s %-28s %12.3f\n", v.name,
                cover->ToString().c_str(),
                table.ok() ? profile.eval_millis : -1.0);
  }

  std::printf("\n(c) reformulation construction, product vs worklist "
              "(3-atom fragment):\n");
  query::Cq fragment = ParseUb(
      answerer,
      "SELECT ?x ?u WHERE { ?x rdf:type ?u . "
      "?x ub:mastersDegreeFrom <http://www.University1.edu> . "
      "?x ub:memberOf ?z . }");
  {
    Timer t;
    auto ucq = reformulator.Reformulate(fragment);
    double product_ms = t.ElapsedMillis();
    reformulation::ReformulationOptions force;
    force.force_worklist = true;
    reformulation::Reformulator slow(&answerer->schema(), force);
    Timer t2;
    auto ucq2 = slow.Reformulate(fragment);
    double worklist_ms = t2.ElapsedMillis();
    if (ucq.ok() && ucq2.ok()) {
      std::printf("  product: %zu CQs in %.3f ms; worklist: %zu CQs in "
                  "%.3f ms (%.0fx)\n\n",
                  ucq->size(), product_ms, ucq2->size(), worklist_ms,
                  product_ms > 0 ? worklist_ms / product_ms : 0.0);
    }
  }
}

void BM_ReformulateProduct(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = ParseUb(
      answerer,
      "SELECT ?x ?u WHERE { ?x rdf:type ?u . "
      "?x ub:memberOf ?z . }");
  reformulation::Reformulator reformulator(&answerer->schema());
  for (auto _ : state) {
    auto ucq = reformulator.Reformulate(q);
    benchmark::DoNotOptimize(ucq);
  }
}
BENCHMARK(BM_ReformulateProduct)->Unit(benchmark::kMicrosecond);

void BM_ReformulateWorklist(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = ParseUb(
      answerer,
      "SELECT ?x ?u WHERE { ?x rdf:type ?u . "
      "?x ub:memberOf ?z . }");
  reformulation::ReformulationOptions force;
  force.force_worklist = true;
  reformulation::Reformulator reformulator(&answerer->schema(), force);
  for (auto _ : state) {
    auto ucq = reformulator.Reformulate(q);
    benchmark::DoNotOptimize(ucq);
  }
}
BENCHMARK(BM_ReformulateWorklist)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintAblationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
