// Experiment T12 — parallel UCQ/JUCQ execution: thread-count sweep.
//
// The paper's engines evaluate reformulations sequentially; the UCQ's
// members and a JUCQ's fragments are embarrassingly parallel, so a
// multi-core machine should cut Ref wall-clock near-linearly without
// changing a single answer (the merge preserves sequential order and the
// single dedup keeps tables bit-identical). This bench sweeps the
// `threads` knob over the Example 1 workload and the LUBM strategy mix.
//
// Interpreting numbers: speedups require actual cores. On a single-core
// host the sweep measures the (small) overhead of the pool machinery
// instead — record the host's hardware_concurrency alongside the numbers.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "common/thread_pool.h"

namespace rdfref {
namespace bench {
namespace {

void PrintSweepHeader() {
  std::printf(
      "\n== T12: parallel evaluation sweep "
      "(hardware_concurrency=%u, pool=%d threads) ==\n",
      std::thread::hardware_concurrency(),
      common::ThreadPool::DefaultThreads());
  std::printf(
      "answers are bit-identical across thread counts; speedup needs "
      "real cores\n\n");
}

// --- Example 1 workload -------------------------------------------------

void BM_Example1_Scq_Threads(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  api::AnswerOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefScq, nullptr,
                                  options);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_Example1_Scq_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Example1_PaperCover_Threads(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  api::AnswerOptions options;
  options.cover = Example1PaperCover();
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefJucq, nullptr,
                                  options);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_Example1_PaperCover_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Example1_Gcov_Threads(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  api::AnswerOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefGcov, nullptr,
                                  options);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_Example1_Gcov_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- LUBM strategy mix --------------------------------------------------
// The whole suite under one strategy, per thread count: the aggregate a
// deployment would feel, not a single cherry-picked query.

void RunSuite(api::QueryAnswerer* answerer, api::Strategy strategy,
              const api::AnswerOptions& options) {
  for (const auto& [name, text] : LubmQuerySuite()) {
    query::Cq q = ParseUb(answerer, text);
    auto table = answerer->Answer(q, strategy, nullptr, options);
    benchmark::DoNotOptimize(table);
  }
}

void BM_Suite_RefUcq_Threads(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  api::AnswerOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RunSuite(answerer, api::Strategy::kRefUcq, options);
  }
}
BENCHMARK(BM_Suite_RefUcq_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Suite_RefScq_Threads(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  api::AnswerOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RunSuite(answerer, api::Strategy::kRefScq, options);
  }
}
BENCHMARK(BM_Suite_RefScq_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Suite_RefGcov_Threads(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  api::AnswerOptions options;
  options.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    RunSuite(answerer, api::Strategy::kRefGcov, options);
  }
}
BENCHMARK(BM_Suite_RefGcov_Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintSweepHeader();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
