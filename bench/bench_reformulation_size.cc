// Experiment T3 — "reformulated queries may be syntactically huge"
// (Section 1): UCQ reformulation sizes and reformulation wall-time per
// query, and their growth with schema richness.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "common/timer.h"

namespace rdfref {
namespace bench {
namespace {

void PrintReformulationSizes() {
  api::QueryAnswerer* answerer = SharedLubm();
  reformulation::Reformulator reformulator(&answerer->schema());

  reformulation::ReformulationOptions minimize_options;
  minimize_options.minimize = true;
  reformulation::Reformulator minimizing(&answerer->schema(),
                                         minimize_options);

  std::printf("\n== T3: UCQ reformulation sizes ==\n");
  std::printf("%-18s %12s %12s %14s\n", "query", "#CQs", "minimized",
              "reform(ms)");
  for (const auto& [name, text] : LubmQuerySuite()) {
    query::Cq q = ParseUb(answerer, text);
    Timer timer;
    auto count = reformulator.CountReformulations(q);
    double count_ms = timer.ElapsedMillis();
    auto pruned = minimizing.Reformulate(q);
    if (count.ok()) {
      std::printf("%-18s %12llu %12zu %14.3f\n", name.c_str(),
                  static_cast<unsigned long long>(*count),
                  pruned.ok() ? pruned->size() : 0, count_ms);
    } else {
      std::printf("%-18s %12s %12s %14.3f (%s)\n", name.c_str(), "overflow",
                  "-", count_ms, count.status().ToString().c_str());
    }
  }

  query::Cq example1 = Example1Query(answerer);
  auto count = reformulator.CountReformulations(example1);
  if (count.ok()) {
    std::printf("%-18s %12llu %14s  <- Example 1 (paper: 318,096)\n",
                "E1-query", static_cast<unsigned long long>(*count), "-");
  }

  // Per-atom member counts of Example 1 (paper: (t1)ref and (t2)ref are
  // the dominant factors).
  std::printf("\nper-atom reformulation sizes of the Example 1 query:\n");
  for (size_t i = 0; i < example1.body().size(); ++i) {
    size_t members =
        reformulator.ReformulateAtom(example1, example1.body()[i]).size();
    std::printf("  (t%zu)ref: %zu member(s)\n", i + 1, members);
  }
  std::printf("\n");
}

void BM_ReformulateSuiteQuery(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  const auto& suite = LubmQuerySuite();
  query::Cq q =
      ParseUb(answerer, suite[static_cast<size_t>(state.range(0))].second);
  reformulation::Reformulator reformulator(&answerer->schema());
  for (auto _ : state) {
    auto ucq = reformulator.Reformulate(q);
    benchmark::DoNotOptimize(ucq);
  }
}
BENCHMARK(BM_ReformulateSuiteQuery)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMicrosecond);

void BM_CountExample1(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  reformulation::Reformulator reformulator(&answerer->schema());
  for (auto _ : state) {
    auto count = reformulator.CountReformulations(q);
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_CountExample1)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintReformulationSizes();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
