// Experiment T15 — hierarchy-aware term encoding (DESIGN.md §12).
//
// The same deep-hierarchy reformulation queries answered two ways over the
// same LUBM dataset and the same (encoded) id space:
//
//   Classic:  ReformulationOptions::use_encoding = false — every subclass /
//             subproperty of the queried term contributes its own UCQ
//             member, exactly the pre-encoding plan.
//   Interval: the default — the reformulator collapses each hierarchy
//             union into one interval atom and the store answers it as a
//             single contiguous range scan.
//
// Q1-persons is the paper's Q6/Q9 class of query: `?x a ub:Person` fans
// out across the whole Person subtree under classic reformulation and is
// one range scan when encoded. Q9-teachers shows the same collapse inside
// a three-atom join. Qdeep-taxon isolates the hierarchy cost on a
// synthetic 256-class subclass chain where the union is purely subclass
// members — LUBM's Person union keeps 27 domain/range-derived members
// that no interval can absorb, so its collapse is partial (44 -> 28).
// The `cqs` counter reports the evaluated UCQ size — the structural
// effect the wall-clock speedup comes from.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace bench {
namespace {

api::QueryAnswerer* LubmAnswerer() { return SharedLubm(); }

// A 256-deep subclass chain with 30 instances typed at every class:
// `?x a C0` reformulates into 256 point-scan members under classic
// reformulation and into a single POS range scan when encoded.
api::QueryAnswerer* DeepTaxonAnswerer() {
  static api::QueryAnswerer* answerer = []() {
    constexpr int kClasses = 256;
    constexpr int kPerClass = 30;
    rdf::Graph g;
    std::vector<rdf::TermId> cls;
    cls.reserve(kClasses);
    for (int i = 0; i < kClasses; ++i) {
      cls.push_back(
          g.dict().InternUri("http://deep.example/C" + std::to_string(i)));
    }
    for (int i = 1; i < kClasses; ++i) {
      g.Add(cls[i], rdf::vocab::kSubClassOfId, cls[i - 1]);
    }
    for (int i = 0; i < kClasses; ++i) {
      for (int j = 0; j < kPerClass; ++j) {
        g.Add(g.dict().InternUri("http://deep.example/i" +
                                 std::to_string(i) + "_" +
                                 std::to_string(j)),
              rdf::vocab::kTypeId, cls[i]);
      }
    }
    return new api::QueryAnswerer(std::move(g));
  }();
  return answerer;
}

struct EncodingCase {
  const char* name;
  api::QueryAnswerer* (*answerer)();
  const char* sparql;
};

const EncodingCase kCases[] = {
    {"Q1-persons", LubmAnswerer, "SELECT ?x WHERE { ?x a ub:Person . }"},
    {"Q9-teachers", LubmAnswerer,
     "SELECT ?f ?c ?s WHERE { ?f ub:teacherOf ?c . "
     "?s ub:takesCourse ?c . ?s a ub:Student . }"},
    {"Qdeep-taxon", DeepTaxonAnswerer,
     "SELECT ?x WHERE { ?x a <http://deep.example/C0> . }"},
};

void RunCase(benchmark::State& state, const EncodingCase& c,
             bool use_encoding) {
  api::QueryAnswerer* answerer = c.answerer();
  const query::Cq q = ParseUb(answerer, c.sparql);
  api::AnswerOptions options;
  options.reform.use_encoding = use_encoding;

  uint64_t cqs = 0;
  size_t rows = 0;
  for (auto _ : state) {
    api::AnswerProfile profile;
    auto table = answerer->Answer(q, api::Strategy::kRefUcq, &profile,
                                  options);
    if (!table.ok()) std::abort();
    cqs = profile.reformulation_cqs;
    rows = table->NumRows();
    benchmark::DoNotOptimize(table);
  }
  state.counters["cqs"] = static_cast<double>(cqs);
  state.counters["rows"] = static_cast<double>(rows);
}

void BM_Encoding_Classic(benchmark::State& state) {
  RunCase(state, kCases[state.range(0)], /*use_encoding=*/false);
}

void BM_Encoding_Interval(benchmark::State& state) {
  RunCase(state, kCases[state.range(0)], /*use_encoding=*/true);
}

void NameCases(benchmark::internal::Benchmark* b) {
  for (int i = 0; i < static_cast<int>(std::size(kCases)); ++i) b->Arg(i);
}

BENCHMARK(BM_Encoding_Classic)->Apply(NameCases)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Encoding_Interval)->Apply(NameCases)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

BENCHMARK_MAIN();
