// Experiment T4 — demo step 3: "the space of explored alternatives, and
// their estimated costs". For small queries, enumerate all partition
// covers, compare the cost model's estimate against measured evaluation
// time (rank agreement), and check where GCov's pick lands.
//
// Expected shape (EDBT'15): JUCQ alternatives differ by orders of
// magnitude; the cost model ranks them well enough that the greedy pick is
// at or near the measured optimum.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"

namespace rdfref {
namespace bench {
namespace {

struct CoverPoint {
  query::Cover cover;
  double estimated;
  double measured_ms;
};

void PrintCoverSpace() {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = ParseUb(
      answerer,
      "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . "
      "?x ub:mastersDegreeFrom <http://www.University1.edu> . "
      "?x ub:memberOf ?z . }");

  reformulation::Reformulator reformulator(&answerer->schema());
  cost::CostModel cost_model(&answerer->ref_store().stats());
  optimizer::CoverOptimizer optimizer(&reformulator, &cost_model);

  auto covers = optimizer.EnumeratePartitionCovers(q);
  if (!covers.ok()) {
    std::printf("enumeration failed: %s\n",
                covers.status().ToString().c_str());
    return;
  }

  std::printf("\n== T4: cover space — estimated cost vs measured time ==\n");
  std::printf("%-24s %14s %14s %9s\n", "cover", "est. cost", "measured(ms)",
              "answers");
  std::vector<CoverPoint> points;
  for (const query::Cover& cover : *covers) {
    auto estimate = optimizer.CostOfCover(q, cover);
    if (!estimate.ok()) continue;
    api::AnswerOptions options;
    options.cover = cover;
    // Median-of-3 measurement.
    double best_ms = 1e18;
    size_t answers = 0;
    for (int rep = 0; rep < 3; ++rep) {
      api::AnswerProfile profile;
      auto table =
          answerer->Answer(q, api::Strategy::kRefJucq, &profile, options);
      if (!table.ok()) break;
      best_ms = std::min(best_ms, profile.eval_millis);
      answers = table->NumRows();
    }
    std::printf("%-24s %14.0f %14.3f %9zu\n", cover.ToString().c_str(),
                *estimate, best_ms, answers);
    points.push_back({cover, *estimate, best_ms});
  }

  // Rank agreement between estimate and measurement (Kendall tau-a).
  int concordant = 0, discordant = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      double de = points[i].estimated - points[j].estimated;
      double dm = points[i].measured_ms - points[j].measured_ms;
      if (de * dm > 0) {
        ++concordant;
      } else if (de * dm < 0) {
        ++discordant;
      }
    }
  }
  if (concordant + discordant > 0) {
    std::printf("Kendall tau-a (estimate vs measurement): %.2f\n",
                static_cast<double>(concordant - discordant) /
                    (concordant + discordant));
  }

  // Where does GCov land?
  optimizer::GcovTrace trace;
  auto chosen = optimizer.Greedy(q, &trace);
  if (chosen.ok() && !points.empty()) {
    auto best = std::min_element(points.begin(), points.end(),
                                 [](const CoverPoint& a, const CoverPoint& b) {
                                   return a.measured_ms < b.measured_ms;
                                 });
    double chosen_ms = -1;
    for (const CoverPoint& p : points) {
      if (p.cover == *chosen) chosen_ms = p.measured_ms;
    }
    if (chosen_ms < 0) {
      // The greedy pick uses overlapping fragments, outside the partition
      // sample: measure it directly.
      api::AnswerOptions options;
      options.cover = *chosen;
      api::AnswerProfile profile;
      auto table =
          answerer->Answer(q, api::Strategy::kRefJucq, &profile, options);
      if (table.ok()) chosen_ms = profile.eval_millis;
    }
    std::printf("GCov chose %s (measured %.3f ms); measured partition "
                "optimum %s (%.3f ms); explored %zu covers\n\n",
                chosen->ToString().c_str(), chosen_ms,
                best->cover.ToString().c_str(), best->measured_ms,
                trace.explored.size());
  }
}

void BM_CostOfCover(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = ParseUb(
      answerer,
      "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . "
      "?x ub:mastersDegreeFrom <http://www.University1.edu> . "
      "?x ub:memberOf ?z . }");
  reformulation::Reformulator reformulator(&answerer->schema());
  cost::CostModel cost_model(&answerer->ref_store().stats());
  optimizer::CoverOptimizer optimizer(&reformulator, &cost_model);
  query::Cover cover({{0, 1}, {1, 2}});
  for (auto _ : state) {
    auto cost = optimizer.CostOfCover(q, cover);
    benchmark::DoNotOptimize(cost);
  }
}
BENCHMARK(BM_CostOfCover)->Unit(benchmark::kMicrosecond);

void BM_GreedySearch(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  reformulation::Reformulator reformulator(&answerer->schema());
  cost::CostModel cost_model(&answerer->ref_store().stats());
  optimizer::CoverOptimizer optimizer(&reformulator, &cost_model);
  for (auto _ : state) {
    auto cover = optimizer.Greedy(q);
    benchmark::DoNotOptimize(cover);
  }
}
BENCHMARK(BM_GreedySearch)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintCoverSpace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
