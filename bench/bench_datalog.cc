// Experiment T7 — Dat, "another answering technique ... an alternative to
// Ref and Sat" (Section 5): the Datalog encoding evaluated bottom-up
// (LogicBlox stand-in) against Sat and cost-based Ref on the shared suite.
//
// Expected shape: Dat's closure ≈ Sat's saturation (same fixpoint, higher
// constant factors); per-query evaluation then comparable to Sat; Ref
// avoids the upfront cost entirely.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "datalog/rdf_datalog.h"

namespace rdfref {
namespace bench {
namespace {

void PrintDatalogTable() {
  api::QueryAnswerer* answerer = SharedLubm();

  // One-time preparations, reported explicitly.
  query::Cq warmup = ParseUb(answerer, "SELECT ?x WHERE { ?x a ub:Course . }");
  api::AnswerProfile sat_prep;
  (void)answerer->Answer(warmup, api::Strategy::kSaturation, &sat_prep);
  api::AnswerProfile dat_prep;
  (void)answerer->Answer(warmup, api::Strategy::kDatalog, &dat_prep);
  std::printf("\n== T7: Dat vs Sat vs Ref ==\n");
  std::printf("one-time: saturation %.2f ms (%zu triples added), "
              "datalog closure %.2f ms\n",
              answerer->saturation_millis(), answerer->saturation_added(),
              dat_prep.prepare_millis);

  std::printf("%-18s %12s %12s %12s %9s\n", "query", "SAT(ms)", "DAT(ms)",
              "GCOV(ms)", "answers");
  for (const auto& [name, text] : LubmQuerySuite()) {
    query::Cq q = ParseUb(answerer, text);
    api::AnswerProfile sat, dat, gcov;
    auto sat_table = answerer->Answer(q, api::Strategy::kSaturation, &sat);
    auto dat_table = answerer->Answer(q, api::Strategy::kDatalog, &dat);
    auto gcov_table = answerer->Answer(q, api::Strategy::kRefGcov, &gcov);
    if (!sat_table.ok() || !dat_table.ok() || !gcov_table.ok()) continue;
    std::printf("%-18s %12.2f %12.2f %12.2f %9zu\n", name.c_str(),
                sat.eval_millis, dat.eval_millis,
                gcov.prepare_millis + gcov.eval_millis,
                sat_table->NumRows());
    if (dat_table->NumRows() != sat_table->NumRows()) {
      std::printf("  !! answer mismatch: DAT %zu vs SAT %zu\n",
                  dat_table->NumRows(), sat_table->NumRows());
    }
  }
  std::printf("\n");
}

void BM_DatalogClosure(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  for (auto _ : state) {
    datalog::DatalogAnswerer dat(&answerer->ref_store());
    dat.EnsureClosure();
    benchmark::DoNotOptimize(dat.closure_size());
  }
}
BENCHMARK(BM_DatalogClosure)->Unit(benchmark::kMillisecond);

void BM_DatalogQuery(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = ParseUb(
      answerer,
      "SELECT ?x ?c WHERE { ?x a ub:Student . ?x ub:takesCourse ?c . }");
  (void)answerer->Answer(q, api::Strategy::kDatalog);  // warm closure
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kDatalog);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_DatalogQuery)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintDatalogTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
