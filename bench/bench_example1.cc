// Experiment E1 — Example 1 of the paper (Section 4): the three
// reformulation shapes of the six-atom LUBM query.
//
// Paper (LUBM 100M, RDBMS back-end):
//   UCQ  — 318,096 CQs, "could not even be parsed"
//   SCQ  — 229 s (atomic fragments (t1)ref/(t2)ref return 33,328,108 rows)
//   JUCQ q'' = {t1,t3}{t3,t5}{t2,t4}{t4,t6} — 524 ms, >430x faster
//     (fragments (t1,t3)ref = 2,296 rows, (t2,t4)ref = 2,475 rows)
//
// Here: scaled-down LUBM; the *shape* must reproduce — UCQ explodes past
// any parse budget, SCQ materializes huge unselective fragments, the
// grouped cover and GCov's cover are orders of magnitude smaller/faster.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"

namespace rdfref {
namespace bench {
namespace {

void PrintExample1Table() {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);

  std::printf("\n== E1: Example 1 — reformulation alternatives for q ==\n");

  // --- UCQ: count without materializing; then mimic a parser budget.
  reformulation::Reformulator reformulator(&answerer->schema());
  auto count = reformulator.CountReformulations(q);
  if (count.ok()) {
    std::printf("UCQ   | %10llu CQs | paper: 318,096\n",
                static_cast<unsigned long long>(*count));
  }
  reformulation::ReformulationOptions budget;
  budget.max_cqs = 100000;  // a realistic parser/plan budget
  reformulation::Reformulator bounded(&answerer->schema(), budget);
  auto attempt = bounded.Reformulate(q);
  std::printf("UCQ   | evaluation: %s | paper: could not be parsed\n",
              attempt.ok() ? "unexpectedly succeeded"
                           : attempt.status().ToString().c_str());

  // --- SCQ.
  api::AnswerProfile scq;
  auto scq_table = answerer->Answer(q, api::Strategy::kRefScq, &scq);
  if (!scq_table.ok()) {
    std::printf("SCQ   | failed: %s\n",
                scq_table.status().ToString().c_str());
    return;
  }
  std::printf("SCQ   | eval %10.2f ms | %zu answers | paper: 229 s\n",
              scq.eval_millis, scq_table->NumRows());
  for (const auto& f : scq.jucq.fragments) {
    std::printf("      |   fragment %-10s %6llu CQs -> %9llu rows\n",
                f.cover_fragment.c_str(),
                static_cast<unsigned long long>(f.ucq_members),
                static_cast<unsigned long long>(f.result_rows));
  }

  // --- The paper's cover q''.
  api::AnswerOptions options;
  options.cover = Example1PaperCover();
  api::AnswerProfile jucq;
  auto jucq_table =
      answerer->Answer(q, api::Strategy::kRefJucq, &jucq, options);
  if (jucq_table.ok()) {
    std::printf("JUCQ  | eval %10.2f ms | %zu answers | paper: 524 ms "
                "(cover %s)\n",
                jucq.eval_millis, jucq_table->NumRows(),
                options.cover.ToString().c_str());
    for (const auto& f : jucq.jucq.fragments) {
      std::printf("      |   fragment %-10s %6llu CQs -> %9llu rows\n",
                  f.cover_fragment.c_str(),
                  static_cast<unsigned long long>(f.ucq_members),
                  static_cast<unsigned long long>(f.result_rows));
    }
    if (jucq.eval_millis > 0) {
      std::printf("JUCQ  | speedup over SCQ: %.1fx | paper: >430x\n",
                  scq.eval_millis / jucq.eval_millis);
    }
  }

  // --- GCov.
  api::AnswerProfile gcov;
  auto gcov_table = answerer->Answer(q, api::Strategy::kRefGcov, &gcov);
  if (gcov_table.ok()) {
    std::printf("GCOV  | eval %10.2f ms (+ %.2f ms search+reformulate) | "
                "cover %s | %zu answers\n",
                gcov.eval_millis, gcov.prepare_millis,
                gcov.cover.ToString().c_str(), gcov_table->NumRows());
  }
  std::printf("\n");
}

void BM_Example1_Scq(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefScq);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_Example1_Scq)->Unit(benchmark::kMillisecond);

void BM_Example1_PaperCover(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  api::AnswerOptions options;
  options.cover = Example1PaperCover();
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefJucq, nullptr,
                                  options);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_Example1_PaperCover)->Unit(benchmark::kMillisecond);

void BM_Example1_Gcov(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q = Example1Query(answerer);
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefGcov);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_Example1_Gcov)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintExample1Table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
