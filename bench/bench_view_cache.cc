// Experiment T17 — cross-query view cache: cold vs warm answering.
//
// The same LUBM query suite answered through the facade three ways: cold
// (per-call cache opt-out — the exact uncached path), warm (the shared
// ViewCache serves the reformulated unions / JUCQ fragments), and warm
// while a writer churns the version set with a bench-only property —
// footprint-disjoint writes, so entries must keep proving themselves
// current through the epoch write log instead of being flushed. The PR 10
// acceptance bar: warm ≥ 2x cold on the read-only mix, and the churn run's
// hit_rate counter staying near 1.0 (epoch invalidation is precise, not a
// blunt flush).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "engine/view_cache.h"
#include "storage/version_set.h"

namespace rdfref {
namespace bench {
namespace {

struct CacheWorkload {
  api::QueryAnswerer* answerer = nullptr;
  std::vector<query::Cq> queries;
  // Pre-interned churn triples over a bench-only property (the writer
  // thread must never touch the unsynchronized dictionary) that no suite
  // query's footprint covers.
  std::vector<rdf::Triple> churn;
};

CacheWorkload* Workload() {
  static CacheWorkload* workload = [] {
    auto* out = new CacheWorkload;
    out->answerer = SharedLubm();
    out->answerer->EnableViewCache();
    for (const auto& [name, body] : LubmQuerySuite()) {
      out->queries.push_back(ParseUb(out->answerer, body));
    }
    rdf::Dictionary& dict = out->answerer->dict();
    const rdf::TermId touches = dict.InternUri("http://bench/touches");
    out->churn.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      out->churn.emplace_back(
          dict.InternUri("http://bench/s" + std::to_string(i % 256)),
          touches, dict.InternUri("http://bench/o" + std::to_string(i)));
    }
    return out;
  }();
  return workload;
}

void AnswerSuite(CacheWorkload* w, api::Strategy strategy, bool use_cache) {
  api::AnswerOptions options;
  options.use_view_cache = use_cache;
  for (const query::Cq& q : w->queries) {
    auto table = w->answerer->Answer(q, strategy, nullptr, options);
    if (!table.ok()) std::abort();
    benchmark::DoNotOptimize(table);
  }
}

void ReportHitRate(benchmark::State& state, CacheWorkload* w,
                   const engine::ViewCacheStats& before) {
  const engine::ViewCacheStats after = w->answerer->view_cache_stats();
  const uint64_t hits = after.hits - before.hits;
  const uint64_t probes = hits + (after.misses - before.misses);
  state.counters["hit_rate"] =
      probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
}

void BM_ViewCache_Cold_RefUcq(benchmark::State& state) {
  CacheWorkload* w = Workload();
  for (auto _ : state) AnswerSuite(w, api::Strategy::kRefUcq, false);
}
BENCHMARK(BM_ViewCache_Cold_RefUcq)->Unit(benchmark::kMillisecond);

void BM_ViewCache_Warm_RefUcq(benchmark::State& state) {
  CacheWorkload* w = Workload();
  AnswerSuite(w, api::Strategy::kRefUcq, true);  // fill outside timing
  const engine::ViewCacheStats before = w->answerer->view_cache_stats();
  for (auto _ : state) AnswerSuite(w, api::Strategy::kRefUcq, true);
  ReportHitRate(state, w, before);
}
BENCHMARK(BM_ViewCache_Warm_RefUcq)->Unit(benchmark::kMillisecond);

void BM_ViewCache_Cold_RefGcov(benchmark::State& state) {
  CacheWorkload* w = Workload();
  for (auto _ : state) AnswerSuite(w, api::Strategy::kRefGcov, false);
}
BENCHMARK(BM_ViewCache_Cold_RefGcov)->Unit(benchmark::kMillisecond);

void BM_ViewCache_Warm_RefGcov(benchmark::State& state) {
  CacheWorkload* w = Workload();
  AnswerSuite(w, api::Strategy::kRefGcov, true);
  const engine::ViewCacheStats before = w->answerer->view_cache_stats();
  for (auto _ : state) AnswerSuite(w, api::Strategy::kRefGcov, true);
  ReportHitRate(state, w, before);
}
BENCHMARK(BM_ViewCache_Warm_RefGcov)->Unit(benchmark::kMillisecond);

void BM_ViewCache_WarmUnderChurn(benchmark::State& state) {
  CacheWorkload* w = Workload();
  storage::VersionSet& versions = w->answerer->versions();
  AnswerSuite(w, api::Strategy::kRefUcq, true);
  const engine::ViewCacheStats before = w->answerer->view_cache_stats();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Insert, drain, repeat: every write advances the epoch and lands in
    // the cache's write log, but none touches a cached footprint. Paced to
    // ~250K ops/s — a demanding update stream that still lets entries
    // re-validate through the bounded write log. An unthrottled tight loop
    // (tens of millions of no-op writes/s) just scrolls the log between
    // probes and measures the cap-reinstall cycle instead of invalidation
    // precision; that saturation regime is the workload driver's
    // --view-cache --writer sweep.
    size_t since_pause = 0;
    auto paced = [&](const rdf::Triple& t, bool add) {
      if (add) {
        versions.Insert(t);
      } else {
        versions.Remove(t);
      }
      if (++since_pause >= 128) {
        since_pause = 0;
        std::this_thread::sleep_for(std::chrono::microseconds(500));
      }
    };
    while (!stop.load()) {
      for (const rdf::Triple& t : w->churn) {
        paced(t, true);
        if (stop.load()) return;
      }
      for (const rdf::Triple& t : w->churn) {
        paced(t, false);
        if (stop.load()) return;
      }
    }
  });

  for (auto _ : state) AnswerSuite(w, api::Strategy::kRefUcq, true);

  stop.store(true);
  writer.join();
  ReportHitRate(state, w, before);
}
BENCHMARK(BM_ViewCache_WarmUnderChurn)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

BENCHMARK_MAIN();
