// Experiment T6 — demo step 4: "propose modifications to the available RDF
// data and constraints ... constraints and query modifications, in
// particular, may have a dramatic impact" on Ref performance.
//
// Schema variants over the same instance data:
//   full        — the complete univ-bench RDFS ontology
//   no-dr       — domain/range constraints removed
//   flat        — class/property hierarchies removed (only domain/range)
//   none        — no constraints at all
// Rows: variant → reformulation size of the Example 1 query, eval time of
// the GCov strategy, and answer count of a membership query.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"

namespace rdfref {
namespace bench {
namespace {

enum class Variant { kFull, kNoDomainRange, kFlatHierarchies, kNone };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kFull:
      return "full";
    case Variant::kNoDomainRange:
      return "no-dr";
    case Variant::kFlatHierarchies:
      return "flat";
    case Variant::kNone:
      return "none";
  }
  return "?";
}

std::unique_ptr<api::QueryAnswerer> MakeVariant(Variant v) {
  datagen::LubmConfig config;
  config.universities = 2;
  rdf::Graph original;
  datagen::Lubm::Generate(config, &original);
  rdf::Graph filtered;
  for (const rdf::Triple& t : original.SortedTriples()) {
    bool drop = false;
    switch (v) {
      case Variant::kFull:
        break;
      case Variant::kNoDomainRange:
        drop = t.p == rdf::vocab::kDomainId || t.p == rdf::vocab::kRangeId;
        break;
      case Variant::kFlatHierarchies:
        drop = t.p == rdf::vocab::kSubClassOfId ||
               t.p == rdf::vocab::kSubPropertyOfId;
        break;
      case Variant::kNone:
        drop = rdf::vocab::IsSchemaProperty(t.p);
        break;
    }
    if (drop) continue;
    const rdf::Dictionary& dict = original.dict();
    filtered.Add(dict.Lookup(t.s), dict.Lookup(t.p), dict.Lookup(t.o));
  }
  return std::make_unique<api::QueryAnswerer>(std::move(filtered));
}

void PrintConstraintImpact() {
  std::printf("\n== T6: schema variants — impact on Ref ==\n");
  std::printf("%-8s %12s %14s %12s %12s\n", "variant", "E1 #CQs",
              "gcov eval(ms)", "membership", "constraints");
  for (Variant v : {Variant::kFull, Variant::kNoDomainRange,
                    Variant::kFlatHierarchies, Variant::kNone}) {
    std::unique_ptr<api::QueryAnswerer> answerer = MakeVariant(v);
    query::Cq e1 = Example1Query(answerer.get());
    reformulation::Reformulator reformulator(&answerer->schema());
    auto count = reformulator.CountReformulations(e1);

    api::AnswerProfile profile;
    auto e1_table = answerer->Answer(e1, api::Strategy::kRefGcov, &profile);

    query::Cq membership =
        ParseUb(answerer.get(), "SELECT ?x ?z WHERE { ?x ub:memberOf ?z . }");
    auto members = answerer->Answer(membership, api::Strategy::kRefUcq);

    std::printf("%-8s %12llu %14.2f %12zu %12zu\n", VariantName(v),
                count.ok() ? static_cast<unsigned long long>(*count) : 0ull,
                e1_table.ok() ? profile.eval_millis : -1.0,
                members.ok() ? members->NumRows() : 0,
                answerer->schema().NumConstraints());
  }
  std::printf("(membership = answers to ?x ub:memberOf ?z; shrinking "
              "schemas shrink reformulations AND lose answers)\n\n");
}

void BM_GcovUnderVariant(benchmark::State& state) {
  static std::unique_ptr<api::QueryAnswerer> answerers[4] = {
      MakeVariant(Variant::kFull), MakeVariant(Variant::kNoDomainRange),
      MakeVariant(Variant::kFlatHierarchies), MakeVariant(Variant::kNone)};
  api::QueryAnswerer* answerer = answerers[state.range(0)].get();
  query::Cq q = Example1Query(answerer);
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefGcov);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_GcovUnderVariant)
    ->DenseRange(0, 3)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintConstraintImpact();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
