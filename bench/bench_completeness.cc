// Experiment T5 — the completeness dimension of the demonstration:
// native RDF platforms (Virtuoso, AllegroGraph) use a fixed, *incomplete*
// reformulation [6]. Rows: query → answers with no reasoning, with the
// incomplete hierarchy-only Ref, and with complete Ref; the recall of each.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/bench_common.h"
#include "engine/evaluator.h"

namespace rdfref {
namespace bench {
namespace {

void PrintCompletenessTable() {
  api::QueryAnswerer* answerer = SharedLubm();
  engine::Evaluator plain(&answerer->ref_store());

  std::printf("\n== T5: completeness — none vs incomplete vs complete ==\n");
  std::printf("%-18s %10s %12s %10s %8s %8s\n", "query", "no-reason",
              "incomplete", "complete", "recall%", "recall%");
  std::printf("%-18s %10s %12s %10s %8s %8s\n", "", "", "(virtuoso-ish)",
              "", "(none)", "(inc)");
  for (const auto& [name, text] : LubmQuerySuite()) {
    query::Cq q = ParseUb(answerer, text);
    size_t none = plain.EvaluateCq(q).NumRows();
    auto incomplete = answerer->Answer(q, api::Strategy::kRefIncomplete);
    auto complete = answerer->Answer(q, api::Strategy::kRefUcq);
    if (!incomplete.ok() || !complete.ok()) continue;
    double total = static_cast<double>(complete->NumRows());
    std::printf("%-18s %10zu %12zu %10zu %7.1f%% %7.1f%%\n", name.c_str(),
                none, incomplete->NumRows(), complete->NumRows(),
                total > 0 ? 100.0 * none / total : 100.0,
                total > 0 ? 100.0 * incomplete->NumRows() / total : 100.0);
  }
  std::printf("\n");
}

void BM_IncompleteRef(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q =
      ParseUb(answerer, "SELECT ?x WHERE { ?x a ub:Person . }");
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefIncomplete);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_IncompleteRef)->Unit(benchmark::kMillisecond);

void BM_CompleteRef(benchmark::State& state) {
  api::QueryAnswerer* answerer = SharedLubm();
  query::Cq q =
      ParseUb(answerer, "SELECT ?x WHERE { ?x a ub:Person . }");
  for (auto _ : state) {
    auto table = answerer->Answer(q, api::Strategy::kRefUcq);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_CompleteRef)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintCompletenessTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
