// Experiment T10 — reformulation strategies across physical designs. The
// demonstration evaluates its reformulations "through three well-established
// RDBMSs"; here, two from-scratch back-ends stand in:
//   clustered  — one triple table under four permutation indexes (Store)
//   vertical   — one (s,o) table per property (VerticalStore)
// The *relative* strategy ordering (UCQ explodes, SCQ slow, JUCQ fast)
// must be invariant across back-ends; absolute times differ — notably for
// variable-property atoms, which vertical partitioning answers by
// unioning every table.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "storage/vertical_store.h"

namespace rdfref {
namespace bench {
namespace {

struct Backends {
  rdf::Graph graph;
  std::unique_ptr<storage::Store> clustered;
  std::unique_ptr<storage::VerticalStore> vertical;
  schema::Schema schema;
};

Backends* SharedBackends() {
  static Backends* backends = []() {
    auto* b = new Backends();
    datagen::LubmConfig config;
    config.universities = 3;
    config.referenced_universities = 10;
    datagen::Lubm::Generate(config, &b->graph);
    b->schema = schema::Schema::FromGraph(b->graph);
    b->schema.Saturate();
    b->schema.EmitTriples(&b->graph);
    b->clustered = std::make_unique<storage::Store>(b->graph);
    b->vertical = std::make_unique<storage::VerticalStore>(b->graph);
    return b;
  }();
  return backends;
}

double MeasureJucq(const storage::TripleSource& source, const query::Cq& q,
                   const query::Cover& cover,
                   const reformulation::Reformulator& ref, size_t* answers) {
  std::vector<query::Cq> fragments = cover.FragmentQueries(q);
  std::vector<query::Ucq> ucqs;
  for (const query::Cq& f : fragments) {
    auto ucq = ref.Reformulate(f);
    if (!ucq.ok()) return -1;
    ucqs.push_back(std::move(*ucq));
  }
  engine::Evaluator evaluator(&source);
  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    Timer t;
    engine::Table table = evaluator.EvaluateJucq(q, fragments, ucqs);
    best = std::min(best, t.ElapsedMillis());
    *answers = table.NumRows();
  }
  return best;
}

void PrintBackendTable() {
  Backends* b = SharedBackends();
  auto q = query::ParseSparql(
      std::string(kUbPrefix) +
          "SELECT ?x ?u ?y ?v ?z WHERE {\n"
          "  ?x rdf:type ?u .\n?y rdf:type ?v .\n"
          "  ?x ub:mastersDegreeFrom <" + datagen::Lubm::UniversityUri(1) +
          "> .\n"
          "  ?y ub:doctoralDegreeFrom <" + datagen::Lubm::UniversityUri(1) +
          "> .\n"
          "  ?x ub:memberOf ?z .\n?y ub:memberOf ?z .\n}",
      &b->graph.dict());
  if (!q.ok()) return;
  reformulation::Reformulator ref(&b->schema);

  std::printf("\n== T10: strategies across storage back-ends "
              "(Example 1 query) ==\n");
  std::printf("%-12s %-12s %12s %9s\n", "backend", "strategy", "eval(ms)",
              "answers");
  struct Row {
    const char* name;
    query::Cover cover;
  };
  const Row rows[] = {
      {"SCQ", query::Cover::Singletons(6)},
      {"JUCQ-paper", Example1PaperCover()},
  };
  for (const Row& row : rows) {
    size_t answers = 0;
    double clustered_ms =
        MeasureJucq(*b->clustered, *q, row.cover, ref, &answers);
    std::printf("%-12s %-12s %12.3f %9zu\n", "clustered", row.name,
                clustered_ms, answers);
    double vertical_ms =
        MeasureJucq(*b->vertical, *q, row.cover, ref, &answers);
    std::printf("%-12s %-12s %12.3f %9zu\n", "vertical", row.name,
                vertical_ms, answers);
  }
  std::printf("(the JUCQ-over-SCQ advantage must hold on both designs)\n\n");
}

void BM_ClusteredJucq(benchmark::State& state) {
  Backends* b = SharedBackends();
  auto q = query::ParseSparql(
      std::string(kUbPrefix) +
          "SELECT ?x ?u WHERE { ?x rdf:type ?u . "
          "?x ub:mastersDegreeFrom <http://www.University1.edu> . }",
      &b->graph.dict());
  reformulation::Reformulator ref(&b->schema);
  query::Cover cover = query::Cover::SingleFragment(2);
  for (auto _ : state) {
    size_t answers = 0;
    benchmark::DoNotOptimize(
        MeasureJucq(*b->clustered, *q, cover, ref, &answers));
  }
}
BENCHMARK(BM_ClusteredJucq)->Unit(benchmark::kMillisecond);

void BM_VerticalJucq(benchmark::State& state) {
  Backends* b = SharedBackends();
  auto q = query::ParseSparql(
      std::string(kUbPrefix) +
          "SELECT ?x ?u WHERE { ?x rdf:type ?u . "
          "?x ub:mastersDegreeFrom <http://www.University1.edu> . }",
      &b->graph.dict());
  reformulation::Reformulator ref(&b->schema);
  query::Cover cover = query::Cover::SingleFragment(2);
  for (auto _ : state) {
    size_t answers = 0;
    benchmark::DoNotOptimize(
        MeasureJucq(*b->vertical, *q, cover, ref, &answers));
  }
}
BENCHMARK(BM_VerticalJucq)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintBackendTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
