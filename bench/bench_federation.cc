// Experiment T8 — the distributed motivation of Section 1: "implicit
// facts may be due to the presence of one fact in one endpoint, and a
// constraint in another. Computing the complete (distributed) set of
// consequences in this setting is unfeasible".
//
// Setup: LUBM-style data split across N endpoints (each university its own
// source), the ontology in a separate endpoint. Rows: answering technique
// → answers (completeness) and time, as the endpoint count grows.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "federation/federation.h"

namespace rdfref {
namespace bench {
namespace {

std::unique_ptr<federation::Federation> MakeFederation(
    int universities, bool locally_saturated, size_t answer_cap) {
  auto fed = std::make_unique<federation::Federation>();
  federation::EndpointOptions options;
  options.locally_saturated = locally_saturated;
  options.max_answers_per_request = answer_cap;

  // The ontology is its own endpoint (constraints live apart from facts).
  rdf::Graph ontology;
  datagen::Lubm::AddOntology(&ontology);
  fed->AddEndpoint("ontology", ontology, federation::EndpointOptions{});

  for (int u = 0; u < universities; ++u) {
    datagen::LubmConfig config;
    config.universities = 1;
    config.seed = 42 + static_cast<uint64_t>(u);
    config.scale = 0.5;
    config.referenced_universities = 10;
    rdf::Graph graph;
    datagen::Lubm::Generate(config, &graph);
    // Strip the ontology triples: this endpoint publishes facts only.
    rdf::Graph facts;
    for (const rdf::Triple& t : graph.SortedTriples()) {
      if (rdf::vocab::IsSchemaProperty(t.p)) continue;
      facts.Add(graph.dict().Lookup(t.s), graph.dict().Lookup(t.p),
                graph.dict().Lookup(t.o));
    }
    fed->AddEndpoint("university" + std::to_string(u), facts, options);
  }
  return fed;
}

void PrintFederationTable() {
  std::printf("\n== T8: federated endpoints — completeness and cost ==\n");
  std::printf("%-10s %-22s %10s %12s\n", "endpoints", "technique", "answers",
              "time(ms)");
  for (int universities : {1, 2, 4}) {
    auto fed = MakeFederation(universities, /*locally_saturated=*/false,
                              /*answer_cap=*/0);
    auto q = query::ParseSparql(
        std::string(kUbPrefix) +
            "SELECT ?x WHERE { ?x a ub:Person . }",
        &fed->dict());
    if (!q.ok()) return;

    Timer naive_timer;
    engine::Table naive = fed->EvaluateWithoutReasoning(*q);
    double naive_ms = naive_timer.ElapsedMillis();
    std::printf("%-10d %-22s %10zu %12.2f\n", universities + 1,
                "naive mediator", naive.NumRows(), naive_ms);

    auto fed_sat = MakeFederation(universities, /*locally_saturated=*/true,
                                  /*answer_cap=*/0);
    auto q_sat = query::ParseSparql(
        std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
        &fed_sat->dict());
    Timer local_timer;
    engine::Table local = fed_sat->EvaluateWithoutReasoning(*q_sat);
    double local_ms = local_timer.ElapsedMillis();
    std::printf("%-10d %-22s %10zu %12.2f\n", universities + 1,
                "per-endpoint Sat", local.NumRows(), local_ms);

    Timer ref_timer;
    auto ref = fed->Answer(*q);
    double ref_ms = ref_timer.ElapsedMillis();
    if (ref.ok()) {
      std::printf("%-10d %-22s %10zu %12.2f\n", universities + 1,
                  "mediated Ref (GCov)", ref->NumRows(), ref_ms);
    }
  }
  std::printf("(facts and constraints live in different endpoints: only "
              "mediated Ref is complete)\n");

  // Rate-limited endpoints silently truncate even explicit answers.
  auto capped = MakeFederation(2, false, /*answer_cap=*/100);
  auto q = query::ParseSparql(
      std::string(kUbPrefix) +
          "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c . }",
      &capped->dict());
  if (q.ok()) {
    engine::Table t = capped->EvaluateWithoutReasoning(*q);
    auto uncapped = MakeFederation(2, false, 0);
    auto q2 = query::ParseSparql(
        std::string(kUbPrefix) +
            "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c . }",
        &uncapped->dict());
    engine::Table full = uncapped->EvaluateWithoutReasoning(*q2);
    std::printf("answer caps (100/request): %zu of %zu explicit matches "
                "reach the mediator\n\n",
                t.NumRows(), full.NumRows());
  }
}

void BM_FederatedRef(benchmark::State& state) {
  static auto fed = MakeFederation(2, false, 0);
  static auto q = *query::ParseSparql(
      std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
      &fed->dict());
  for (auto _ : state) {
    auto table = fed->Answer(q);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_FederatedRef)->Unit(benchmark::kMillisecond);

void BM_FederatedNaive(benchmark::State& state) {
  static auto fed = MakeFederation(2, false, 0);
  static auto q = *query::ParseSparql(
      std::string(kUbPrefix) + "SELECT ?x WHERE { ?x a ub:Person . }",
      &fed->dict());
  for (auto _ : state) {
    auto table = fed->EvaluateWithoutReasoning(q);
    benchmark::DoNotOptimize(table);
  }
}
BENCHMARK(BM_FederatedNaive)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace bench
}  // namespace rdfref

int main(int argc, char** argv) {
  rdfref::bench::PrintFederationTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
