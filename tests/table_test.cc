#include "engine/table.h"

#include <limits>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace rdfref {
namespace engine {
namespace {

TEST(TableTest, DedupRemovesDuplicatesKeepingFirstOccurrenceOrder) {
  Table t = Table::FromRows({0, 1}, {{1, 2}, {1, 2}, {3, 4}, {1, 2}, {5, 6}});
  t.Dedup();
  EXPECT_EQ(t.RowVectors(), (std::vector<std::vector<rdf::TermId>>{
                                {1, 2}, {3, 4}, {5, 6}}));
}

TEST(TableTest, SortIsLexicographic) {
  Table t = Table::FromRows({0, 1}, {{2, 1}, {1, 9}, {1, 2}});
  t.Sort();
  EXPECT_EQ(t.RowVectors(), (std::vector<std::vector<rdf::TermId>>{
                                {1, 2}, {1, 9}, {2, 1}}));
}

TEST(TableTest, ColumnOf) {
  Table t;
  t.columns = {4, 7, 9};
  EXPECT_EQ(t.ColumnOf(7), 1);
  EXPECT_EQ(t.ColumnOf(5), -1);
}

TEST(TableTest, ArenaLayoutIsContiguousRowMajor) {
  Table t;
  t.SetArity(3);
  t.AppendRow({1, 2, 3});
  rdf::TermId* slots = t.AppendUninitialized();
  slots[0] = 4;
  slots[1] = 5;
  slots[2] = 6;
  EXPECT_EQ(t.data(), (std::vector<rdf::TermId>{1, 2, 3, 4, 5, 6}));
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.row(1)[1], 5u);
  t.RemoveLastRow();
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.data(), (std::vector<rdf::TermId>{1, 2, 3}));
}

TEST(TableTest, AppendRowInfersArity) {
  Table t;
  EXPECT_FALSE(t.has_arity());
  t.AppendRow({7, 8});
  EXPECT_TRUE(t.has_arity());
  EXPECT_EQ(t.arity(), 2u);
  EXPECT_EQ(t.NumRows(), 1u);
}

// Zero-arity rows (boolean queries): no values, but the row count — and
// dedup down to a single witness — must still work.
TEST(TableTest, ZeroArityRowsCountAndDedup) {
  Table t;
  t.SetArity(0);
  EXPECT_TRUE(t.has_arity());
  EXPECT_EQ(t.NumRows(), 0u);
  EXPECT_EQ(t.AppendUninitialized(), nullptr);
  t.AppendRow(std::span<const rdf::TermId>{});
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.row(0).size(), 0u);
  t.Dedup();
  EXPECT_EQ(t.NumRows(), 1u);  // all zero-arity rows are the same row
  t.RemoveLastRow();
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST(TableTest, AppendConcatenatesArenas) {
  Table a = Table::FromRows({0}, {{1}, {2}});
  Table b = Table::FromRows({0}, {{3}});
  a.Append(b);
  EXPECT_EQ(a.RowVectors(),
            (std::vector<std::vector<rdf::TermId>>{{1}, {2}, {3}}));
  // Appending an empty, arity-less table is a no-op.
  Table fresh;
  a.Append(fresh);
  EXPECT_EQ(a.NumRows(), 3u);
}

// Dedup of a moved-from arena: moving a table out must leave the source
// valid-but-empty, and Dedup on it must be a safe no-op.
TEST(TableTest, DedupOfMovedFromArenaIsSafe) {
  Table t = Table::FromRows({0, 1}, {{1, 2}, {1, 2}});
  Table stolen = std::move(t);
  EXPECT_EQ(stolen.NumRows(), 2u);
  t.Dedup();  // NOLINT(bugprone-use-after-move): deliberate
  EXPECT_EQ(t.NumRows(), 0u);
  stolen.Dedup();
  EXPECT_EQ(stolen.NumRows(), 1u);
}

// The kConstColumn sentinel marks constant head slots. It is the maximum
// VarId, so it can never collide with a real variable, and two constant
// columns must NOT be treated as a shared join column in the usual way —
// they simply behave as a (degenerate) equality column.
TEST(TableTest, ConstColumnSentinelNeverAliasesRealVariables) {
  EXPECT_EQ(kConstColumn, std::numeric_limits<query::VarId>::max());
  Table t = Table::FromRows({0, kConstColumn}, {{1, 42}, {2, 42}});
  EXPECT_EQ(t.ColumnOf(kConstColumn), 1);
  EXPECT_EQ(t.ColumnOf(3), -1);
  // A fragment with variable 5 shares nothing with a constant column.
  Table other = Table::FromRows({5}, {{9}});
  Table joined = HashJoin(t, other);  // cross product: no shared VarId
  EXPECT_EQ(joined.NumRows(), 2u);
  EXPECT_EQ(joined.columns,
            (std::vector<query::VarId>{0, kConstColumn, 5}));
}

TEST(HashJoinTest, JoinsOnSharedColumn) {
  Table left = Table::FromRows({0, 1}, {{1, 10}, {2, 20}, {3, 30}});
  Table right = Table::FromRows({1, 2}, {{10, 100}, {10, 101}, {30, 300}});
  Table joined = HashJoin(left, right);
  EXPECT_EQ(joined.columns, (std::vector<query::VarId>{0, 1, 2}));
  joined.Sort();
  EXPECT_EQ(joined.RowVectors(),
            (std::vector<std::vector<rdf::TermId>>{
                {1, 10, 100}, {1, 10, 101}, {3, 30, 300}}));
}

TEST(HashJoinTest, MultiColumnKeys) {
  Table left = Table::FromRows({0, 1}, {{1, 2}, {1, 3}});
  Table right = Table::FromRows({0, 1, 2}, {{1, 2, 9}, {1, 3, 8}, {1, 4, 7}});
  Table joined = HashJoin(left, right);
  joined.Sort();
  EXPECT_EQ(joined.RowVectors(), (std::vector<std::vector<rdf::TermId>>{
                                     {1, 2, 9}, {1, 3, 8}}));
}

// Duplicate join columns: the left table carries the same VarId twice
// (e.g. after joining fragments that both exported it). Every occurrence
// participates in the key via ColumnOf's first match, and the join must
// still line up values correctly rather than crash or mis-stride.
TEST(HashJoinTest, DuplicateJoinColumnsOnOneSide) {
  Table left = Table::FromRows({0, 0}, {{1, 1}, {2, 2}, {3, 9}});
  Table right = Table::FromRows({0, 1}, {{1, 100}, {2, 200}, {9, 900}});
  Table joined = HashJoin(left, right);
  EXPECT_EQ(joined.columns, (std::vector<query::VarId>{0, 0, 1}));
  joined.Sort();
  // Key is the first occurrence of column 0 on each side: rows {1,1} and
  // {2,2} match; {3,9} keys as 3, which has no build-side partner.
  EXPECT_EQ(joined.RowVectors(), (std::vector<std::vector<rdf::TermId>>{
                                     {1, 1, 100}, {2, 2, 200}}));
}

TEST(HashJoinTest, NoSharedColumnIsCrossProduct) {
  Table left = Table::FromRows({0}, {{1}, {2}});
  Table right = Table::FromRows({1}, {{7}, {8}});
  Table joined = HashJoin(left, right);
  EXPECT_EQ(joined.columns, (std::vector<query::VarId>{0, 1}));
  joined.Sort();
  EXPECT_EQ(joined.RowVectors(), (std::vector<std::vector<rdf::TermId>>{
                                     {1, 7}, {1, 8}, {2, 7}, {2, 8}}));
}

TEST(HashJoinTest, EmptySideYieldsEmpty) {
  Table left, right;
  left.columns = {0};
  right = Table::FromRows({0}, {{1}});
  EXPECT_EQ(HashJoin(left, right).NumRows(), 0u);
  EXPECT_EQ(HashJoin(right, left).NumRows(), 0u);
}

TEST(HashJoinTest, EmptySideOfCrossProductYieldsEmpty) {
  // Zero shared columns *and* an empty build side: the cross product of
  // anything with the empty table is empty, whichever side is empty.
  Table empty, nonempty;
  empty.columns = {0};
  nonempty = Table::FromRows({1}, {{7}, {8}});
  EXPECT_EQ(HashJoin(empty, nonempty).NumRows(), 0u);
  EXPECT_EQ(HashJoin(nonempty, empty).NumRows(), 0u);
  EXPECT_EQ(HashJoin(empty, nonempty).columns.size(), 2u);
}

TEST(TableTest, ToStringTruncates) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.InternUri("http://a");
  Table t;
  t.columns = {0};
  t.SetArity(1);
  for (int i = 0; i < 30; ++i) t.AppendRow({a});
  std::string s = t.ToString(dict, 5);
  EXPECT_NE(s.find("30 row(s)"), std::string::npos);
  EXPECT_NE(s.find("25 more"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace rdfref
