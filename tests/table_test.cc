#include "engine/table.h"

#include <gtest/gtest.h>

namespace rdfref {
namespace engine {
namespace {

TEST(TableTest, DedupRemovesDuplicates) {
  Table t;
  t.columns = {0, 1};
  t.rows = {{1, 2}, {1, 2}, {3, 4}, {1, 2}};
  t.Dedup();
  EXPECT_EQ(t.NumRows(), 2u);
}

TEST(TableTest, SortIsLexicographic) {
  Table t;
  t.rows = {{2, 1}, {1, 9}, {1, 2}};
  t.Sort();
  EXPECT_EQ(t.rows[0], (std::vector<rdf::TermId>{1, 2}));
  EXPECT_EQ(t.rows[1], (std::vector<rdf::TermId>{1, 9}));
  EXPECT_EQ(t.rows[2], (std::vector<rdf::TermId>{2, 1}));
}

TEST(TableTest, ColumnOf) {
  Table t;
  t.columns = {4, 7, 9};
  EXPECT_EQ(t.ColumnOf(7), 1);
  EXPECT_EQ(t.ColumnOf(5), -1);
}

TEST(HashJoinTest, JoinsOnSharedColumn) {
  Table left, right;
  left.columns = {0, 1};
  left.rows = {{1, 10}, {2, 20}, {3, 30}};
  right.columns = {1, 2};
  right.rows = {{10, 100}, {10, 101}, {30, 300}};
  Table joined = HashJoin(left, right);
  EXPECT_EQ(joined.columns, (std::vector<query::VarId>{0, 1, 2}));
  joined.Sort();
  ASSERT_EQ(joined.NumRows(), 3u);
  EXPECT_EQ(joined.rows[0], (std::vector<rdf::TermId>{1, 10, 100}));
  EXPECT_EQ(joined.rows[1], (std::vector<rdf::TermId>{1, 10, 101}));
  EXPECT_EQ(joined.rows[2], (std::vector<rdf::TermId>{3, 30, 300}));
}

TEST(HashJoinTest, MultiColumnKeys) {
  Table left, right;
  left.columns = {0, 1};
  left.rows = {{1, 2}, {1, 3}};
  right.columns = {0, 1, 2};
  right.rows = {{1, 2, 9}, {1, 3, 8}, {1, 4, 7}};
  Table joined = HashJoin(left, right);
  joined.Sort();
  ASSERT_EQ(joined.NumRows(), 2u);
  EXPECT_EQ(joined.rows[0], (std::vector<rdf::TermId>{1, 2, 9}));
  EXPECT_EQ(joined.rows[1], (std::vector<rdf::TermId>{1, 3, 8}));
}

TEST(HashJoinTest, NoSharedColumnIsCrossProduct) {
  Table left, right;
  left.columns = {0};
  left.rows = {{1}, {2}};
  right.columns = {1};
  right.rows = {{7}, {8}};
  Table joined = HashJoin(left, right);
  EXPECT_EQ(joined.columns, (std::vector<query::VarId>{0, 1}));
  joined.Sort();
  ASSERT_EQ(joined.NumRows(), 4u);
  EXPECT_EQ(joined.rows[0], (std::vector<rdf::TermId>{1, 7}));
  EXPECT_EQ(joined.rows[1], (std::vector<rdf::TermId>{1, 8}));
  EXPECT_EQ(joined.rows[2], (std::vector<rdf::TermId>{2, 7}));
  EXPECT_EQ(joined.rows[3], (std::vector<rdf::TermId>{2, 8}));
}

TEST(HashJoinTest, EmptySideYieldsEmpty) {
  Table left, right;
  left.columns = {0};
  right.columns = {0};
  right.rows = {{1}};
  EXPECT_EQ(HashJoin(left, right).NumRows(), 0u);
  EXPECT_EQ(HashJoin(right, left).NumRows(), 0u);
}

TEST(HashJoinTest, EmptySideOfCrossProductYieldsEmpty) {
  // Zero shared columns *and* an empty build side: the cross product of
  // anything with the empty table is empty, whichever side is empty.
  Table empty, nonempty;
  empty.columns = {0};
  nonempty.columns = {1};
  nonempty.rows = {{7}, {8}};
  EXPECT_EQ(HashJoin(empty, nonempty).NumRows(), 0u);
  EXPECT_EQ(HashJoin(nonempty, empty).NumRows(), 0u);
  EXPECT_EQ(HashJoin(empty, nonempty).columns.size(), 2u);
}

TEST(TableTest, ToStringTruncates) {
  rdf::Dictionary dict;
  rdf::TermId a = dict.InternUri("http://a");
  Table t;
  t.columns = {0};
  for (int i = 0; i < 30; ++i) t.rows.push_back({a});
  std::string s = t.ToString(dict, 5);
  EXPECT_NE(s.find("30 row(s)"), std::string::npos);
  EXPECT_NE(s.find("25 more"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace rdfref
