#include "storage/statistics.h"

#include <gtest/gtest.h>

#include <string>

#include "schema/encoder.h"
#include "storage/store.h"

namespace rdfref {
namespace storage {
namespace {

TEST(StatisticsTest, ReportListsTopPropertiesAndClasses) {
  rdf::Graph g;
  rdf::TermId type = rdf::vocab::kTypeId;
  rdf::TermId c = g.dict().InternUri("http://ex/Class");
  rdf::TermId p = g.dict().InternUri("http://ex/popular");
  for (int i = 0; i < 10; ++i) {
    rdf::TermId s = g.dict().InternUri("http://ex/s" + std::to_string(i));
    g.Add(s, p, c);
    g.Add(s, type, c);
  }
  Store store(g);
  std::string report = store.stats().Report(store.dict(), 5);
  EXPECT_NE(report.find("http://ex/popular"), std::string::npos);
  EXPECT_NE(report.find("http://ex/Class"), std::string::npos);
  EXPECT_NE(report.find("triples: 20"), std::string::npos);
}

TEST(StatisticsTest, EmptyStatistics) {
  Statistics stats;
  EXPECT_EQ(stats.total_triples(), 0u);
  EXPECT_EQ(stats.ForProperty(3).count, 0u);
  EXPECT_EQ(stats.ClassCardinality(3), 0u);
}

TEST(StatisticsTest, PropertyTableIsComplete) {
  rdf::Graph g;
  rdf::TermId p1 = g.dict().InternUri("http://ex/p1");
  rdf::TermId p2 = g.dict().InternUri("http://ex/p2");
  rdf::TermId s = g.dict().InternUri("http://ex/s");
  rdf::TermId o = g.dict().InternUri("http://ex/o");
  g.Add(s, p1, o);
  g.Add(s, p2, o);
  Store store(g);
  EXPECT_EQ(store.stats().property_table().size(), 2u);
  EXPECT_TRUE(store.stats().class_table().empty());
}

TEST(StatisticsTest, SubjectPairCounts) {
  rdf::Graph g;
  rdf::TermId p1 = g.dict().InternUri("http://ex/p1");
  rdf::TermId p2 = g.dict().InternUri("http://ex/p2");
  rdf::TermId p3 = g.dict().InternUri("http://ex/p3");
  rdf::TermId o = g.dict().InternUri("http://ex/o");
  // s1 has p1+p2, s2 has p1+p2, s3 has p1 only, s4 has p3.
  for (const char* s : {"s1", "s2"}) {
    rdf::TermId subj = g.dict().InternUri(std::string("http://ex/") + s);
    g.Add(subj, p1, o);
    g.Add(subj, p2, o);
  }
  g.Add(g.dict().InternUri("http://ex/s3"), p1, o);
  g.Add(g.dict().InternUri("http://ex/s4"), p3, o);
  Store store(g);
  const Statistics& stats = store.stats();
  EXPECT_EQ(stats.SubjectPairCount(p1, p2), 2u);
  EXPECT_EQ(stats.SubjectPairCount(p2, p1), 2u);  // symmetric
  EXPECT_EQ(stats.SubjectPairCount(p1, p3), 0u);
  std::string report = stats.Report(store.dict());
  EXPECT_NE(report.find("attribute pairs"), std::string::npos);
}

TEST(StatisticsTest, AbsorbMergesPairCounts) {
  rdf::Graph g1, g2;
  rdf::TermId p1 = g1.dict().InternUri("http://ex/p1");
  rdf::TermId p2 = g1.dict().InternUri("http://ex/p2");
  rdf::TermId s = g1.dict().InternUri("http://ex/s");
  rdf::TermId o = g1.dict().InternUri("http://ex/o");
  g1.Add(s, p1, o);
  g1.Add(s, p2, o);
  // Same ids in g2 thanks to identical intern order.
  rdf::TermId q1 = g2.dict().InternUri("http://ex/p1");
  rdf::TermId q2 = g2.dict().InternUri("http://ex/p2");
  rdf::TermId s2 = g2.dict().InternUri("http://ex/s");
  rdf::TermId o2 = g2.dict().InternUri("http://ex/o");
  g2.Add(s2, q1, o2);
  g2.Add(s2, q2, o2);
  Store store1(g1), store2(g2);
  Statistics merged = store1.stats();
  merged.Absorb(store2.stats());
  EXPECT_EQ(merged.SubjectPairCount(p1, p2), 2u);
}

TEST(StatisticsTest, AbsorbKeepsDistinctCountsWithinCardinalities) {
  // Absorb's distinct counts are the sum-of-parts *upper bound* on the
  // union (the mediator cannot dedup across endpoints), but an estimator
  // invariant must survive any number of absorptions: a relation of N
  // triples has at most N distinct subjects/objects. Without the cap,
  // repeated merging drifts distincts past the triple counts and
  // count/distinct selectivities drop below one row per key.
  rdf::Graph g;
  rdf::TermId p = g.dict().InternUri("http://ex/p");
  rdf::TermId s1 = g.dict().InternUri("http://ex/s1");
  rdf::TermId s2 = g.dict().InternUri("http://ex/s2");
  rdf::TermId o = g.dict().InternUri("http://ex/o");
  g.Add(s1, p, o);
  g.Add(s2, p, o);
  Store store(g);
  ASSERT_EQ(store.stats().total_triples(), 2u);
  ASSERT_EQ(store.stats().distinct_subjects(), 2u);
  ASSERT_EQ(store.stats().distinct_objects(), 1u);

  Statistics merged = store.stats();
  for (int i = 0; i < 9; ++i) {
    merged.Absorb(store.stats());
    // Global and per-property invariants hold after every merge.
    EXPECT_LE(merged.distinct_subjects(), merged.total_triples());
    EXPECT_LE(merged.distinct_objects(), merged.total_triples());
    const PropertyStats ps = merged.ForProperty(p);
    EXPECT_LE(ps.distinct_subjects, ps.count);
    EXPECT_LE(ps.distinct_objects, ps.count);
  }
  // Counts add exactly; distincts add as the (uncapped-here) upper bound.
  EXPECT_EQ(merged.total_triples(), 20u);
  EXPECT_EQ(merged.distinct_subjects(), 20u);
  EXPECT_EQ(merged.distinct_objects(), 10u);
  EXPECT_EQ(merged.ForProperty(p).count, 20u);
  EXPECT_EQ(merged.ForProperty(p).distinct_subjects, 20u);
  EXPECT_EQ(merged.ForProperty(p).distinct_objects, 10u);
}

TEST(StatisticsTest, InvariantUnderHierarchyReencoding) {
  // Statistics keys everything by current TermId in hash maps — no density
  // or intern-order assumption — so hierarchy re-encoding (an arbitrary id
  // permutation) must leave every statistic unchanged when compared through
  // the decoded terms.
  auto build = [](rdf::Graph* g) {
    rdf::Dictionary& dict = g->dict();
    rdf::TermId top = dict.InternUri("http://ex/Top");
    rdf::TermId mid = dict.InternUri("http://ex/Mid");
    rdf::TermId leaf = dict.InternUri("http://ex/Leaf");
    rdf::TermId p1 = dict.InternUri("http://ex/p1");
    rdf::TermId p2 = dict.InternUri("http://ex/p2");
    g->Add(mid, rdf::vocab::kSubClassOfId, top);
    g->Add(leaf, rdf::vocab::kSubClassOfId, mid);
    g->Add(p2, rdf::vocab::kSubPropertyOfId, p1);
    for (int i = 0; i < 6; ++i) {
      rdf::TermId s = dict.InternUri("http://ex/s" + std::to_string(i));
      g->Add(s, rdf::vocab::kTypeId, i % 2 == 0 ? leaf : mid);
      g->Add(s, i % 3 == 0 ? p1 : p2, top);
      if (i % 2 == 0) g->Add(s, p2, mid);
    }
  };
  rdf::Graph plain, encoded;
  build(&plain);
  build(&encoded);
  schema::EncodeGraphHierarchy(&encoded);
  ASSERT_NE(encoded.dict().encoding(), nullptr);

  Store plain_store(plain), encoded_store(encoded);
  const Statistics& a = plain_store.stats();
  const Statistics& b = encoded_store.stats();
  EXPECT_EQ(a.total_triples(), b.total_triples());
  EXPECT_EQ(a.distinct_subjects(), b.distinct_subjects());
  EXPECT_EQ(a.distinct_objects(), b.distinct_objects());

  // Per-term statistics agree term-for-term across the permutation.
  auto id_in = [](rdf::Dictionary& dict, const std::string& uri) {
    return dict.InternUri(uri);
  };
  for (const char* uri : {"http://ex/p1", "http://ex/p2"}) {
    const PropertyStats pa = a.ForProperty(id_in(plain.dict(), uri));
    const PropertyStats pb = b.ForProperty(id_in(encoded.dict(), uri));
    EXPECT_EQ(pa.count, pb.count) << uri;
    EXPECT_EQ(pa.distinct_subjects, pb.distinct_subjects) << uri;
    EXPECT_EQ(pa.distinct_objects, pb.distinct_objects) << uri;
  }
  for (const char* uri : {"http://ex/Top", "http://ex/Mid", "http://ex/Leaf"}) {
    EXPECT_EQ(a.ClassCardinality(id_in(plain.dict(), uri)),
              b.ClassCardinality(id_in(encoded.dict(), uri)))
        << uri;
  }
  EXPECT_EQ(a.SubjectPairCount(id_in(plain.dict(), "http://ex/p1"),
                               id_in(plain.dict(), "http://ex/p2")),
            b.SubjectPairCount(id_in(encoded.dict(), "http://ex/p1"),
                               id_in(encoded.dict(), "http://ex/p2")));
}

}  // namespace
}  // namespace storage
}  // namespace rdfref
