// The cross-query view cache (DESIGN.md §15): key construction, epoch
// validity windows, capped-entry replacement, budgeted eviction, the
// factorized payload round-trip, the facade wiring (QueryAnswerer), the
// ScanCache span-stability contract it generalizes, and the threaded
// bit-identity relation TSan runs in CI.

#include "engine/view_cache.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/query_answering.h"
#include "datagen/bibliography.h"
#include "engine/scan_cache.h"
#include "engine/table.h"
#include "query/cq.h"
#include "query/sparql_parser.h"
#include "query/ucq.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "storage/triple_source.h"
#include "testing/scenario.h"
#include "testing/view_oracle.h"

namespace rdfref {
namespace engine {
namespace {

// q(x, y) :- x p y — a one-atom view whose footprint is exactly property p.
query::Cq PropertyQuery(rdf::TermId p) {
  query::Cq q;
  query::VarId x = q.AddVar("x");
  query::VarId y = q.AddVar("y");
  q.AddAtom(query::Atom(query::QTerm::Var(x), query::QTerm::Const(p),
                        query::QTerm::Var(y)));
  q.AddHead(query::QTerm::Var(x));
  q.AddHead(query::QTerm::Var(y));
  return q;
}

ViewFootprint FootprintOf(const query::Cq& q) {
  ViewFootprint fp;
  fp.AddCq(q);
  return fp;
}

Table TwoColTable(std::vector<std::vector<rdf::TermId>> rows) {
  return Table::FromRows({0, 1}, rows);
}

class ViewCacheTest : public ::testing::Test {
 protected:
  // Key + footprint of the single-member plan Ucq({q}).
  ViewKey Key(const ViewCache& cache, const query::Cq& q) {
    return cache.KeyFor(q, query::Ucq({q}));
  }
};

TEST_F(ViewCacheTest, MissThenInstallThenBitIdenticalHit) {
  ViewCache cache;
  query::Cq q = PropertyQuery(5);
  ViewKey key = Key(cache, q);
  ASSERT_TRUE(key.ok());

  EXPECT_FALSE(cache.Lookup(key.full, 0).has_value());

  Table result = TwoColTable({{10, 11}, {10, 12}, {13, 11}});
  cache.Install(key, 0, result, FootprintOf(q), 1.0);

  std::optional<Table> hit = cache.Lookup(key.full, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->RowVectors(), result.RowVectors());
  EXPECT_EQ(hit->columns, result.columns);

  ViewCacheStats s = cache.Stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.installs, 1u);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
}

TEST_F(ViewCacheTest, OversizedPlansAreNotCacheable) {
  ViewCacheOptions options;
  options.max_plan_members = 2;
  ViewCache cache(options);
  query::Cq q = PropertyQuery(5);
  ViewKey key = cache.KeyFor(q, query::Ucq({q, q, q}));
  EXPECT_FALSE(key.ok());
  EXPECT_FALSE(key.canonical.empty());  // selection still groups on it

  // Installing under a not-cacheable key is a no-op, not a crash.
  cache.Install(key, 0, TwoColTable({{1, 2}}), FootprintOf(q), 1.0);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST_F(ViewCacheTest, WindowExtendsAcrossFootprintDisjointWrites) {
  ViewCache cache;
  query::Cq q = PropertyQuery(5);
  ViewKey key = Key(cache, q);
  cache.Install(key, 0, TwoColTable({{1, 2}}), FootprintOf(q), 1.0);

  // Churn on property 9 cannot change a p=5 view: the window must extend.
  cache.OnEpochWrite(rdf::Triple(7, 9, 8), 1, true);
  cache.OnEpochWrite(rdf::Triple(7, 9, 9), 2, false);

  EXPECT_TRUE(cache.Lookup(key.full, 2).has_value());
  EXPECT_EQ(cache.Stats().invalidations, 0u);
}

TEST_F(ViewCacheTest, OverlappingWriteCapsButOldEpochsStillHit) {
  ViewCache cache;
  query::Cq q = PropertyQuery(5);
  ViewKey key = Key(cache, q);
  cache.Install(key, 0, TwoColTable({{1, 2}}), FootprintOf(q), 1.0);

  cache.OnEpochWrite(rdf::Triple(7, 9, 8), 1, true);  // disjoint
  cache.OnEpochWrite(rdf::Triple(7, 5, 8), 2, true);  // inside the footprint

  // The probe at epoch 2 replays the log: extends over epoch 1, caps at 2.
  EXPECT_FALSE(cache.Lookup(key.full, 2).has_value());
  EXPECT_EQ(cache.Stats().invalidations, 1u);

  // A reader pinned inside the surviving window [0, 1] still hits.
  EXPECT_TRUE(cache.Lookup(key.full, 1).has_value());
  EXPECT_TRUE(cache.Lookup(key.full, 0).has_value());
}

TEST_F(ViewCacheTest, FreshInstallReplacesCappedIncumbent) {
  ViewCache cache;
  query::Cq q = PropertyQuery(5);
  ViewKey key = Key(cache, q);
  cache.Install(key, 0, TwoColTable({{1, 2}}), FootprintOf(q), 1.0);
  cache.OnEpochWrite(rdf::Triple(7, 5, 8), 1, true);
  ASSERT_FALSE(cache.Lookup(key.full, 1).has_value());  // capped at 1

  // The re-fill at the new epoch must replace the dead incumbent — one
  // invalidation must never poison the key forever.
  Table fresh = TwoColTable({{1, 2}, {7, 8}});
  cache.Install(key, 1, fresh, FootprintOf(q), 1.0);
  std::optional<Table> hit = cache.Lookup(key.full, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->RowVectors(), fresh.RowVectors());
  EXPECT_EQ(cache.Stats().lost_races, 0u);

  // A *live* incumbent wins against a racing duplicate fill.
  cache.Install(key, 1, fresh, FootprintOf(q), 1.0);
  EXPECT_EQ(cache.Stats().lost_races, 1u);
  EXPECT_EQ(cache.Stats().entries, 1u);
}

TEST_F(ViewCacheTest, ScrolledWriteLogCapsConservatively) {
  ViewCacheOptions options;
  options.write_log_window = 4;
  ViewCache cache(options);
  query::Cq q = PropertyQuery(5);
  ViewKey key = Key(cache, q);
  cache.Install(key, 0, TwoColTable({{1, 2}}), FootprintOf(q), 1.0);

  // Six footprint-disjoint writes; the 4-record window now starts at epoch
  // 3 > valid_hi + 1, so the entry can no longer prove itself untouched.
  for (uint64_t e = 1; e <= 6; ++e) {
    cache.OnEpochWrite(rdf::Triple(7, 9, e), e, true);
  }
  EXPECT_FALSE(cache.Lookup(key.full, 6).has_value());
  EXPECT_EQ(cache.Stats().invalidations, 1u);
}

TEST_F(ViewCacheTest, EvictionDropsLowestBenefitAndSparesPreferred) {
  // Measure the (deterministic) two-entry footprint first, then rebuild
  // with a budget that fits exactly two entries of that size.
  query::Cq qa = PropertyQuery(5);
  query::Cq qb = PropertyQuery(6);
  query::Cq qc = PropertyQuery(7);
  Table t = TwoColTable({{1, 2}, {3, 4}});

  size_t two_entries = 0;
  {
    ViewCache probe;
    probe.Install(Key(probe, qa), 0, t, FootprintOf(qa), 1.0);
    probe.Install(Key(probe, qb), 0, t, FootprintOf(qb), 1.0);
    two_entries = probe.Stats().bytes;
  }

  ViewCacheOptions options;
  options.byte_budget = two_entries;
  ViewCache cache(options);
  ViewKey ka = Key(cache, qa), kb = Key(cache, qb), kc = Key(cache, qc);
  cache.SetPreferred({kb.canonical});
  cache.Install(ka, 0, t, FootprintOf(qa), 1.0);
  cache.Install(kb, 0, t, FootprintOf(qb), 1.0);
  cache.Install(kc, 0, t, FootprintOf(qc), 1.0);  // must evict exactly one

  ViewCacheStats s = cache.Stats();
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.entries, 2u);
  EXPECT_LE(s.bytes, options.byte_budget);
  // The selection-pinned entry survives; the unpinned same-benefit one went.
  EXPECT_FALSE(cache.Lookup(ka.full, 0).has_value());
  EXPECT_TRUE(cache.Lookup(kb.full, 0).has_value());
  EXPECT_TRUE(cache.Lookup(kc.full, 0).has_value());
}

TEST_F(ViewCacheTest, ResultLargerThanBudgetIsRejected) {
  ViewCacheOptions options;
  options.byte_budget = 64;
  ViewCache cache(options);
  query::Cq q = PropertyQuery(5);
  cache.Install(Key(cache, q), 0, TwoColTable({{1, 2}, {3, 4}}),
                FootprintOf(q), 1.0);
  ViewCacheStats s = cache.Stats();
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
}

TEST_F(ViewCacheTest, FactorizedPayloadRoundTripsExactRowOrder) {
  ViewCache cache;
  query::Cq q = PropertyQuery(5);

  // High-fanout shape: runs of 16 equal lead values, trailing column in a
  // deliberately non-sorted order — a hit must replay it bit-for-bit.
  Table big;
  big.columns = {0, 1};
  big.SetArity(2);
  const size_t rows = 2048;
  for (size_t i = 0; i < rows; ++i) {
    big.AppendRow({static_cast<rdf::TermId>(i / 16),
                   static_cast<rdf::TermId>((i * 7) % 1000)});
  }
  ViewKey key = Key(cache, q);
  cache.Install(key, 0, big, FootprintOf(q), 1.0);

  std::optional<Table> hit = cache.Lookup(key.full, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->columns, big.columns);
  EXPECT_EQ(hit->RowVectors(), big.RowVectors());

  // The grouped-lead representation actually engaged: well under the flat
  // arena's 2048·2·sizeof(TermId) bytes even with entry overhead counted.
  EXPECT_LT(cache.Stats().bytes, rows * 2 * sizeof(rdf::TermId));
}

TEST_F(ViewCacheTest, ClearDropsEntriesButKeepsCounters) {
  ViewCache cache;
  query::Cq q = PropertyQuery(5);
  ViewKey key = Key(cache, q);
  cache.Install(key, 0, TwoColTable({{1, 2}}), FootprintOf(q), 1.0);
  ASSERT_TRUE(cache.Lookup(key.full, 0).has_value());

  cache.Clear();
  EXPECT_FALSE(cache.Lookup(key.full, 0).has_value());
  ViewCacheStats s = cache.Stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.bytes, 0u);
  EXPECT_EQ(s.installs, 1u);  // monotonic counters survive
}

// ---------------------------------------------------------------------------
// ScanCache span-stability regression (the contract the ViewCache payload
// discipline generalizes): spans handed out early must survive a
// rehash-heavy fill of thousands of later patterns.
// ---------------------------------------------------------------------------

// Minimal non-range-capable source: TryGetRange stays false, so every
// LeafRange call materializes into the cache (the Store would answer
// zero-copy and bypass it).
class VectorSource : public storage::TripleSource {
 public:
  explicit VectorSource(std::vector<rdf::Triple> triples)
      : triples_(std::move(triples)) {}

  void Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
            const std::function<void(const rdf::Triple&)>& fn)  // rdfref-check: allow(std-function)
      const override {
    for (const rdf::Triple& t : triples_) {
      if (storage::MatchesPattern(t, s, p, o)) fn(t);
    }
  }

  size_t CountMatches(rdf::TermId s, rdf::TermId p,
                      rdf::TermId o) const override {
    size_t n = 0;
    for (const rdf::Triple& t : triples_) {
      if (storage::MatchesPattern(t, s, p, o)) ++n;
    }
    return n;
  }

  const rdf::Dictionary& dict() const override { return dict_; }

 private:
  std::vector<rdf::Triple> triples_;
  rdf::Dictionary dict_;
};

TEST(ScanCacheSpanStabilityTest, EarlySpansSurviveRehashHeavyFill) {
  const size_t kPatterns = 4096;
  std::vector<rdf::Triple> triples;
  for (rdf::TermId i = 0; i < 3 * kPatterns; ++i) {
    triples.emplace_back(i, i % kPatterns, 2 * i + 1);
  }
  VectorSource source(std::move(triples));
  ScanCache cache(&source);

  std::span<const rdf::Triple> early =
      cache.LeafRange(storage::kAny, 0, storage::kAny);
  ASSERT_EQ(early.size(), 3u);
  const std::vector<rdf::Triple> snapshot(early.begin(), early.end());
  const rdf::Triple* early_data = early.data();

  // Thousands of distinct patterns force many unordered_map rehashes.
  for (rdf::TermId p = 1; p < kPatterns; ++p) {
    ASSERT_EQ(cache.LeafRange(storage::kAny, p, storage::kAny).size(), 3u);
  }
  EXPECT_EQ(cache.num_cached_leaves(), kPatterns);

  // The span still points at the same, unchanged vector.
  EXPECT_EQ(early.data(), early_data);
  EXPECT_TRUE(std::equal(early.begin(), early.end(), snapshot.begin(),
                         snapshot.end()));
  // And a re-probe of the same pattern returns the shared materialization.
  EXPECT_EQ(cache.LeafRange(storage::kAny, 0, storage::kAny).data(),
            early_data);
}

}  // namespace
}  // namespace engine

// ---------------------------------------------------------------------------
// Facade wiring: the cache behind QueryAnswerer.
// ---------------------------------------------------------------------------

namespace api {
namespace {

class ViewCacheApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph graph;
    datagen::Bibliography::AddFigure2Graph(&graph);
    answerer_ = std::make_unique<QueryAnswerer>(std::move(graph));
  }

  rdf::TermId Bib(const std::string& local) {
    return answerer_->dict().InternUri(datagen::Bibliography::Uri(local));
  }

  query::Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text,
        &answerer_->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  engine::Table Answer(const query::Cq& q, Strategy s,
                       const AnswerOptions& options = {}) {
    auto table = answerer_->Answer(q, s, nullptr, options);
    EXPECT_TRUE(table.ok()) << table.status();
    return *table;
  }

  std::unique_ptr<QueryAnswerer> answerer_;
};

TEST_F(ViewCacheApiTest, WarmAnswerIsBitIdenticalToCold) {
  query::Cq q = Parse(
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . "
      "?x1 ?x4 \"1949\" . }");
  answerer_->EnableViewCache();
  ASSERT_TRUE(answerer_->view_cache_enabled());

  for (Strategy s : {Strategy::kRefUcq, Strategy::kRefGcov}) {
    engine::Table cold = Answer(q, s);
    engine::Table warm = Answer(q, s);
    EXPECT_EQ(warm.RowVectors(), cold.RowVectors()) << StrategyName(s);
    EXPECT_EQ(warm.columns, cold.columns) << StrategyName(s);
  }
  engine::ViewCacheStats stats = answerer_->view_cache_stats();
  EXPECT_GT(stats.installs, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST_F(ViewCacheApiTest, OverlappingInsertNeverServesStaleAnswers) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  answerer_->EnableViewCache();
  engine::Table before = Answer(q, Strategy::kRefUcq);
  Answer(q, Strategy::kRefUcq);  // warm the union

  // A second book appears (typed implicitly via the domain of writtenBy).
  rdf::TermId doi2 = Bib("doi2");
  rdf::TermId author = answerer_->dict().InternBlank("b2");
  ASSERT_TRUE(
      answerer_->InsertTriple(rdf::Triple(doi2, Bib("writtenBy"), author))
          .ok());

  engine::Table after = Answer(q, Strategy::kRefUcq);
  EXPECT_EQ(after.NumRows(), before.NumRows() + 1);
  EXPECT_TRUE(after.RowSet().count({doi2}) > 0);
}

TEST_F(ViewCacheApiTest, PerCallOptOutBypassesTheCache) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  answerer_->EnableViewCache();
  AnswerOptions opt_out;
  opt_out.use_view_cache = false;
  engine::Table a = Answer(q, Strategy::kRefUcq, opt_out);
  engine::Table b = Answer(q, Strategy::kRefUcq, opt_out);
  EXPECT_EQ(a.RowVectors(), b.RowVectors());

  engine::ViewCacheStats stats = answerer_->view_cache_stats();
  EXPECT_EQ(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.installs, 0u);
}

TEST_F(ViewCacheApiTest, SelectViewsChoosesAndAnswersStayCorrect) {
  query::Cq q = Parse(
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . }");
  answerer_->EnableViewCache();

  std::vector<optimizer::WorkloadQueryProfile> workload(1);
  workload[0].cq = q;
  workload[0].weight = 1.0;
  auto selection = answerer_->SelectViews(workload);
  ASSERT_TRUE(selection.ok()) << selection.status();
  EXPECT_FALSE(selection->candidates.empty());

  engine::Table cold = Answer(q, Strategy::kRefGcov);
  engine::Table warm = Answer(q, Strategy::kRefGcov);
  EXPECT_EQ(warm.RowVectors(), cold.RowVectors());
}

TEST_F(ViewCacheApiTest, ReencodeClearsTheCacheAndStaysCorrect) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  answerer_->EnableViewCache();
  size_t before = Answer(q, Strategy::kRefUcq).NumRows();
  Answer(q, Strategy::kRefUcq);
  ASSERT_GT(answerer_->view_cache_stats().entries, 0u);

  answerer_->Reencode();
  // Old TermIds are dead: entries were dropped, and a re-parsed query
  // against the new id space answers correctly (and re-warms).
  EXPECT_EQ(answerer_->view_cache_stats().entries, 0u);
  query::Cq q2 = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  EXPECT_EQ(Answer(q2, Strategy::kRefUcq).NumRows(), before);
  EXPECT_EQ(Answer(q2, Strategy::kRefUcq).NumRows(), before);
}

TEST_F(ViewCacheApiTest, DisableDetachesObserverAndUpdatesStillWork) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  answerer_->EnableViewCache();
  Answer(q, Strategy::kRefUcq);
  answerer_->DisableViewCache();
  EXPECT_FALSE(answerer_->view_cache_enabled());

  rdf::TermId doi2 = Bib("doi2");
  ASSERT_TRUE(answerer_
                  ->InsertTriple(rdf::Triple(
                      doi2, answerer_->dict().InternUri(
                                datagen::Bibliography::Uri("writtenBy")),
                      answerer_->dict().InternBlank("b2")))
                  .ok());
  EXPECT_GT(Answer(q, Strategy::kRefUcq).NumRows(), 0u);
}

}  // namespace
}  // namespace api

// ---------------------------------------------------------------------------
// Threaded bit-identity (the relation CI runs under TSan): readers race a
// churning writer + background compaction through the shared cache.
// ---------------------------------------------------------------------------

namespace testing_stress {
namespace {

TEST(ViewCacheConcurrencyTest, ReadersRaceWriterBitIdentical) {
  for (uint64_t seed : {3ull, 11ull}) {
    testing::Scenario sc = testing::GenerateScenario(seed, {});
    Rng rng(seed * 31 + 7);
    query::Cq q = testing::GenerateQuery(sc, &rng, {});
    testing::ConcurrentCachedOptions options;
    options.writer_ops = 64;       // modest under TSan
    options.checks_per_reader = 4;
    testing::Divergence d = testing::CheckConcurrentCached(sc, q, seed, options);
    EXPECT_FALSE(d.found) << d.relation << ": " << d.detail;
  }
}

}  // namespace
}  // namespace testing_stress
}  // namespace rdfref
