#include "schema/encoder.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "api/query_answering.h"
#include "query/cq.h"
#include "rdf/encoding.h"
#include "rdf/graph.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace schema {
namespace {

namespace vocab = rdf::vocab;

/// SELECT ?x WHERE { ?x rdf:type <cls> . } against an already-constructed
/// answerer (the constant interned post-encoding).
query::Cq TypeQuery(api::QueryAnswerer* answerer, const std::string& cls) {
  query::Cq q;
  query::VarId x = q.AddVar("x");
  q.AddAtom(query::Atom(query::QTerm::Var(x),
                        query::QTerm::Const(vocab::kTypeId),
                        query::QTerm::Const(answerer->dict().InternUri(cls))));
  q.AddHead(query::QTerm::Var(x));
  return q;
}

/// SELECT ?s ?o WHERE { ?s <prop> ?o . }
query::Cq PropQuery(api::QueryAnswerer* answerer, const std::string& prop) {
  query::Cq q;
  query::VarId s = q.AddVar("s");
  query::VarId o = q.AddVar("o");
  q.AddAtom(query::Atom(
      query::QTerm::Var(s),
      query::QTerm::Const(answerer->dict().InternUri(prop)),
      query::QTerm::Var(o)));
  q.AddHead(query::QTerm::Var(s));
  q.AddHead(query::QTerm::Var(o));
  return q;
}

/// The answer set of q under interval reformulation must equal the classic
/// UCQ reformulation and saturation ground truth.
void ExpectEncodedEqualsClassic(api::QueryAnswerer* answerer,
                                const query::Cq& q) {
  auto sat = answerer->Answer(q, api::Strategy::kSaturation);
  ASSERT_TRUE(sat.ok()) << sat.status();
  api::AnswerOptions classic;
  classic.reform.use_encoding = false;
  auto fused = answerer->Answer(q, api::Strategy::kRefUcq);
  auto plain = answerer->Answer(q, api::Strategy::kRefUcq, nullptr, classic);
  ASSERT_TRUE(fused.ok()) << fused.status();
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(fused->RowSet(), sat->RowSet());
  EXPECT_EQ(plain->RowSet(), sat->RowSet());
}

TEST(EncoderTest, CycleMembersShareOneInterval) {
  // The seed-231 family: a subClassOf cycle entails reflexive pairs; the
  // encoder must condense the cycle into a single SCC with ONE interval.
  rdf::Graph g;
  rdf::TermId c0 = g.dict().InternUri("http://t/C0");
  rdf::TermId c3 = g.dict().InternUri("http://t/C3");
  g.Add(c0, vocab::kSubClassOfId, c3);
  g.Add(c3, vocab::kSubClassOfId, c0);
  rdf::TermId s = g.dict().InternUri("http://t/s");
  g.Add(s, vocab::kTypeId, c0);

  EncodingResult result = EncodeGraphHierarchy(&g);
  EXPECT_EQ(result.report.classes_encoded, 2u);
  EXPECT_EQ(result.report.class_cycles, 1u);

  const rdf::TermEncoding* enc = g.dict().encoding();
  ASSERT_NE(enc, nullptr);
  rdf::TermId nc0 = result.old_to_new[c0];
  rdf::TermId nc3 = result.old_to_new[c3];
  auto i0 = enc->ClassInterval(nc0);
  auto i3 = enc->ClassInterval(nc3);
  ASSERT_TRUE(i0.has_value());
  ASSERT_TRUE(i3.has_value());
  EXPECT_EQ(*i0, *i3);  // the cycle shares one interval, it does not diverge
  EXPECT_EQ(enc->SccRepresentative(nc0), enc->SccRepresentative(nc3));
  // Both members' ids lie inside the shared interval.
  EXPECT_LE(i0->lo, nc0);
  EXPECT_LE(nc0, i0->hi);
  EXPECT_LE(i0->lo, nc3);
  EXPECT_LE(nc3, i0->hi);

  api::QueryAnswerer answerer(std::move(g));
  query::Cq q = TypeQuery(&answerer, "http://t/C3");
  ExpectEncodedEqualsClassic(&answerer, q);
  auto table = answerer.Answer(q, api::Strategy::kRefUcq);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);  // s : C0 ⊑ C3 via the cycle
}

TEST(EncoderTest, DiamondMultiParentEscapesButStaysComplete) {
  // A ⊑ B, A ⊑ C, B ⊑ D, C ⊑ D: A has two direct super-SCCs, so one of
  // B/C cannot cover A in its interval — the reformulator must emit a
  // classic member for the escapee and answers must not change.
  rdf::Graph g;
  rdf::TermId a = g.dict().InternUri("http://t/A");
  rdf::TermId b = g.dict().InternUri("http://t/B");
  rdf::TermId c = g.dict().InternUri("http://t/C");
  rdf::TermId d = g.dict().InternUri("http://t/D");
  g.Add(a, vocab::kSubClassOfId, b);
  g.Add(a, vocab::kSubClassOfId, c);
  g.Add(b, vocab::kSubClassOfId, d);
  g.Add(c, vocab::kSubClassOfId, d);
  rdf::TermId x = g.dict().InternUri("http://t/x");
  g.Add(x, vocab::kTypeId, a);

  EncodingResult result = EncodeGraphHierarchy(&g);
  EXPECT_EQ(result.report.classes_encoded, 4u);
  EXPECT_EQ(result.report.multi_parent_classes, 1u);  // A

  api::QueryAnswerer answerer(std::move(g));
  for (const char* cls :
       {"http://t/A", "http://t/B", "http://t/C", "http://t/D"}) {
    query::Cq q = TypeQuery(&answerer, cls);
    ExpectEncodedEqualsClassic(&answerer, q);
    auto table = answerer.Answer(q, api::Strategy::kRefUcq);
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(table->NumRows(), 1u) << cls;  // x is in every class via A
  }
}

TEST(EncoderTest, OverBudgetHierarchyFallsBackToClassic) {
  rdf::Graph g;
  rdf::TermId top = g.dict().InternUri("http://t/Top");
  for (int i = 0; i < 8; ++i) {
    rdf::TermId c = g.dict().InternUri("http://t/C" + std::to_string(i));
    g.Add(c, vocab::kSubClassOfId, top);
    rdf::TermId inst = g.dict().InternUri("http://t/i" + std::to_string(i));
    g.Add(inst, vocab::kTypeId, c);
  }
  // Also a small property hierarchy that stays under budget.
  rdf::TermId p = g.dict().InternUri("http://t/p");
  rdf::TermId q_ = g.dict().InternUri("http://t/q");
  g.Add(q_, vocab::kSubPropertyOfId, p);
  g.Add(g.dict().InternUri("http://t/i0"), q_,
        g.dict().InternUri("http://t/i1"));

  EncoderOptions options;
  options.max_hierarchy_terms = 4;  // class hierarchy (9 terms) blows this
  EncodingResult result = EncodeGraphHierarchy(&g, options);
  EXPECT_EQ(result.report.classes_encoded, 0u);
  EXPECT_GT(result.report.classes_skipped, 0u);
  EXPECT_EQ(result.report.properties_encoded, 2u);  // p, q under budget

  const rdf::TermEncoding* enc = g.dict().encoding();
  ASSERT_NE(enc, nullptr);
  EXPECT_FALSE(enc->ClassInterval(result.old_to_new[top]).has_value());

  api::QueryAnswerer answerer(std::move(g), options);
  query::Cq tq = TypeQuery(&answerer, "http://t/Top");
  ExpectEncodedEqualsClassic(&answerer, tq);
  auto table = answerer.Answer(tq, api::Strategy::kRefUcq);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 8u);
  query::Cq pq = PropQuery(&answerer, "http://t/p");
  ExpectEncodedEqualsClassic(&answerer, pq);
}

TEST(EncoderTest, EmptySchemaLeavesDictionaryUnencoded) {
  rdf::Graph g;
  rdf::TermId s = g.dict().InternUri("http://t/s");
  rdf::TermId p = g.dict().InternUri("http://t/p");
  rdf::TermId o = g.dict().InternUri("http://t/o");
  g.Add(s, p, o);

  EncodingResult result = EncodeGraphHierarchy(&g);
  EXPECT_EQ(result.report.classes_encoded, 0u);
  EXPECT_EQ(result.report.properties_encoded, 0u);
  // Identity permutation, no encoding attached (empty() tables are not
  // installed — downstream checks stay on the classic fast path).
  for (rdf::TermId id = 0; id < result.old_to_new.size(); ++id) {
    EXPECT_EQ(result.old_to_new[id], id);
  }
  EXPECT_EQ(g.dict().encoding(), nullptr);

  api::QueryAnswerer answerer(std::move(g));
  query::Cq q = PropQuery(&answerer, "http://t/p");
  ExpectEncodedEqualsClassic(&answerer, q);
}

TEST(EncoderTest, ClosureInputLaysOutLikeDirectInput) {
  // Reencode() reads the *saturated* schema back from the stored triples;
  // the encoder's transitive reduction must recover the Hasse diagram so a
  // closure input produces the same intervals as the direct input.
  auto build = [](bool closed) {
    rdf::Graph g;
    rdf::TermId a = g.dict().InternUri("http://t/A");
    rdf::TermId b = g.dict().InternUri("http://t/B");
    rdf::TermId c = g.dict().InternUri("http://t/C");
    g.Add(a, vocab::kSubClassOfId, b);
    g.Add(b, vocab::kSubClassOfId, c);
    if (closed) {
      g.Add(a, vocab::kSubClassOfId, c);  // the transitive edge
    }
    return g;
  };
  rdf::Graph direct = build(false);
  rdf::Graph closure = build(true);
  EncodingResult rd = EncodeGraphHierarchy(&direct);
  EncodingResult rc = EncodeGraphHierarchy(&closure);
  EXPECT_EQ(rd.report.multi_parent_classes, 0u);
  EXPECT_EQ(rc.report.multi_parent_classes, 0u);  // reduced away

  const rdf::TermEncoding* ed = direct.dict().encoding();
  const rdf::TermEncoding* ec = closure.dict().encoding();
  ASSERT_NE(ed, nullptr);
  ASSERT_NE(ec, nullptr);
  for (const char* cls : {"http://t/A", "http://t/B", "http://t/C"}) {
    rdf::TermId idd = direct.dict().InternUri(cls);
    rdf::TermId idc = closure.dict().InternUri(cls);
    EXPECT_EQ(idd, idc) << cls;  // same layout, term for term
    auto ivd = ed->ClassInterval(idd);
    auto ivc = ec->ClassInterval(idc);
    ASSERT_TRUE(ivd.has_value()) << cls;
    ASSERT_TRUE(ivc.has_value()) << cls;
    EXPECT_EQ(*ivd, *ivc) << cls;
  }
}

TEST(EncoderTest, IntervalsAreSoundAndSubtreesContiguous) {
  // A two-level tree: every parent's interval must cover exactly its
  // subtree (preorder contiguity), and disjoint siblings stay disjoint.
  rdf::Graph g;
  rdf::TermId root = g.dict().InternUri("http://t/Root");
  rdf::TermId l = g.dict().InternUri("http://t/L");
  rdf::TermId r = g.dict().InternUri("http://t/R");
  rdf::TermId l1 = g.dict().InternUri("http://t/L1");
  rdf::TermId l2 = g.dict().InternUri("http://t/L2");
  g.Add(l, vocab::kSubClassOfId, root);
  g.Add(r, vocab::kSubClassOfId, root);
  g.Add(l1, vocab::kSubClassOfId, l);
  g.Add(l2, vocab::kSubClassOfId, l);

  EncodingResult result = EncodeGraphHierarchy(&g);
  EXPECT_EQ(result.report.classes_encoded, 5u);
  const rdf::TermEncoding* enc = g.dict().encoding();
  ASSERT_NE(enc, nullptr);
  auto iv = [&](rdf::TermId old_id) {
    auto interval = enc->ClassInterval(result.old_to_new[old_id]);
    EXPECT_TRUE(interval.has_value());
    return *interval;
  };
  auto width = [](rdf::TermEncoding::Interval i) { return i.hi - i.lo + 1; };
  EXPECT_EQ(width(iv(root)), 5u);
  EXPECT_EQ(width(iv(l)), 3u);
  EXPECT_EQ(width(iv(r)), 1u);
  // Children nest inside parents; siblings are disjoint.
  EXPECT_GE(iv(l).lo, iv(root).lo);
  EXPECT_LE(iv(l).hi, iv(root).hi);
  EXPECT_GE(iv(l1).lo, iv(l).lo);
  EXPECT_LE(iv(l1).hi, iv(l).hi);
  EXPECT_TRUE(iv(l).hi < iv(r).lo || iv(r).hi < iv(l).lo);
}

}  // namespace
}  // namespace schema
}  // namespace rdfref
