#include "query/minimize.h"

#include <gtest/gtest.h>

#include <set>

#include "api/query_answering.h"
#include "datagen/bibliography.h"
#include "query/sparql_parser.h"
#include "reformulation/reformulator.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace query {
namespace {

namespace vocab = rdf::vocab;

Cq Single(VarId* out_x, QTerm p, QTerm o) {
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), p, o));
  q.AddHead(QTerm::Var(x));
  if (out_x != nullptr) *out_x = x;
  return q;
}

TEST(CqContainsTest, IdenticalQueriesContainEachOther) {
  Cq a = Single(nullptr, QTerm::Const(7), QTerm::Const(8));
  Cq b = Single(nullptr, QTerm::Const(7), QTerm::Const(8));
  EXPECT_TRUE(CqContains(a, b));
  EXPECT_TRUE(CqContains(b, a));
}

TEST(CqContainsTest, MoreAtomsAreContained) {
  // A = q(x) :- x p y;   B = q(x) :- x p y, x τ C.   B ⊆ A.
  Cq a;
  VarId ax = a.AddVar("x");
  VarId ay = a.AddVar("y");
  a.AddAtom(Atom(QTerm::Var(ax), QTerm::Const(7), QTerm::Var(ay)));
  a.AddHead(QTerm::Var(ax));

  Cq b;
  VarId bx = b.AddVar("x");
  VarId by = b.AddVar("y");
  b.AddAtom(Atom(QTerm::Var(bx), QTerm::Const(7), QTerm::Var(by)));
  b.AddAtom(Atom(QTerm::Var(bx), QTerm::Const(vocab::kTypeId),
                 QTerm::Const(42)));
  b.AddHead(QTerm::Var(bx));

  EXPECT_TRUE(CqContains(a, b));
  EXPECT_FALSE(CqContains(b, a));
}

TEST(CqContainsTest, DifferentConstantsAreIncomparable) {
  Cq book = Single(nullptr, QTerm::Const(vocab::kTypeId), QTerm::Const(10));
  Cq publication =
      Single(nullptr, QTerm::Const(vocab::kTypeId), QTerm::Const(11));
  EXPECT_FALSE(CqContains(book, publication));
  EXPECT_FALSE(CqContains(publication, book));
}

TEST(CqContainsTest, VariablePropertyContainsItsSpecializations) {
  // A = q(x, p) :- x p o;  B = q(x, τ) :- x τ o.  B ⊆ A (rule 9's member
  // is redundant against the original).
  Cq a;
  VarId x = a.AddVar("x");
  VarId p = a.AddVar("p");
  a.AddAtom(Atom(QTerm::Var(x), QTerm::Var(p), QTerm::Const(9)));
  a.AddHead(QTerm::Var(x));
  a.AddHead(QTerm::Var(p));

  Cq b;
  VarId bx = b.AddVar("x");
  b.AddAtom(Atom(QTerm::Var(bx), QTerm::Const(vocab::kTypeId),
                 QTerm::Const(9)));
  b.AddHead(QTerm::Var(bx));
  b.AddHead(QTerm::Const(vocab::kTypeId));

  EXPECT_TRUE(CqContains(a, b));
  EXPECT_FALSE(CqContains(b, a));
}

TEST(CqContainsTest, ResourceVarsBlockUnsafeContainment) {
  // A carries a resource constraint on its head var; B does not: dropping
  // B in favour of A would wrongly filter literals.
  Cq a = Single(nullptr, QTerm::Const(7), QTerm::Const(8));
  a.AddResourceVar(0);
  Cq b = Single(nullptr, QTerm::Const(7), QTerm::Const(8));
  EXPECT_FALSE(CqContains(a, b));
  EXPECT_TRUE(CqContains(b, a));  // the unconstrained one is wider

  // Matching constraints are fine.
  Cq c = Single(nullptr, QTerm::Const(7), QTerm::Const(8));
  c.AddResourceVar(0);
  EXPECT_TRUE(CqContains(a, c));
}

TEST(MinimizeUcqTest, DropsSubsumedMembers) {
  Cq wide;
  VarId x = wide.AddVar("x");
  VarId y = wide.AddVar("y");
  wide.AddAtom(Atom(QTerm::Var(x), QTerm::Const(7), QTerm::Var(y)));
  wide.AddHead(QTerm::Var(x));

  Cq narrow = wide;
  narrow.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                      QTerm::Const(99)));

  Ucq ucq({narrow, wide, narrow});
  Ucq minimized = MinimizeUcq(ucq);
  ASSERT_EQ(minimized.size(), 1u);
  EXPECT_EQ(minimized.members()[0].CanonicalKey(), wide.CanonicalKey());
}

TEST(MinimizeUcqTest, KeepsFirstOfEquivalentMembers) {
  Cq a = Single(nullptr, QTerm::Const(7), QTerm::Const(8));
  Cq b = Single(nullptr, QTerm::Const(7), QTerm::Const(8));
  Ucq minimized = MinimizeUcq(Ucq({a, b}));
  EXPECT_EQ(minimized.size(), 1u);
}

TEST(MinimizeUcqTest, IncomparableMembersSurvive) {
  Cq a = Single(nullptr, QTerm::Const(vocab::kTypeId), QTerm::Const(10));
  Cq b = Single(nullptr, QTerm::Const(vocab::kTypeId), QTerm::Const(11));
  EXPECT_EQ(MinimizeUcq(Ucq({a, b})).size(), 2u);
}

TEST(MinimizeUcqTest, ReformulationAnswersUnchanged) {
  // End to end on Figure 2: minimized reformulations answer identically.
  rdf::Graph graph;
  datagen::Bibliography::AddFigure2Graph(&graph);
  api::QueryAnswerer answerer(std::move(graph));

  auto q = ParseSparql(
      "PREFIX bib: <http://example.org/bib/>\n"
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . "
      "?x1 ?x4 \"1949\" . }",
      &answerer.dict());
  ASSERT_TRUE(q.ok());

  api::AnswerOptions plain, minimized;
  minimized.reform.minimize = true;
  api::AnswerProfile plain_profile, minimized_profile;
  auto a = answerer.Answer(*q, api::Strategy::kRefUcq, &plain_profile,
                           plain);
  auto b = answerer.Answer(*q, api::Strategy::kRefUcq, &minimized_profile,
                           minimized);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::set<std::vector<rdf::TermId>> ra = a->RowSet();
  std::set<std::vector<rdf::TermId>> rb = b->RowSet();
  EXPECT_EQ(ra, rb);
  // Minimization prunes the rule 9-13 members the variable-property atom
  // already covers.
  EXPECT_LT(minimized_profile.reformulation_cqs,
            plain_profile.reformulation_cqs);
}

}  // namespace
}  // namespace query
}  // namespace rdfref
