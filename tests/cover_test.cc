#include "query/cover.h"

#include <gtest/gtest.h>

namespace rdfref {
namespace query {
namespace {

// q(x, z) :- x p y (t0), y p z (t1), z q w (t2), w q x (t3): a cycle, so
// any contiguous fragment is connected.
Cq MakeChain() {
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  VarId z = q.AddVar("z");
  VarId w = q.AddVar("w");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(7), QTerm::Var(y)));
  q.AddAtom(Atom(QTerm::Var(y), QTerm::Const(7), QTerm::Var(z)));
  q.AddAtom(Atom(QTerm::Var(z), QTerm::Const(8), QTerm::Var(w)));
  q.AddAtom(Atom(QTerm::Var(w), QTerm::Const(8), QTerm::Var(x)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Var(z));
  return q;
}

TEST(CoverTest, SingletonAndSingleFragmentFactories) {
  Cover singletons = Cover::Singletons(4);
  EXPECT_EQ(singletons.num_fragments(), 4u);
  Cover single = Cover::SingleFragment(4);
  EXPECT_EQ(single.num_fragments(), 1u);
  EXPECT_EQ(single.fragments()[0].size(), 4u);
}

TEST(CoverTest, ValidateAcceptsClassicCovers) {
  Cq q = MakeChain();
  EXPECT_TRUE(Cover::Singletons(4).Validate(q).ok());
  EXPECT_TRUE(Cover::SingleFragment(4).Validate(q).ok());
  EXPECT_TRUE(Cover({{0, 1}, {2, 3}}).Validate(q).ok());
  // Overlapping fragments are legal covers.
  EXPECT_TRUE(Cover({{0, 1}, {1, 2}, {2, 3}}).Validate(q).ok());
}

TEST(CoverTest, ValidateRejectsHoles) {
  Cq q = MakeChain();
  Status st = Cover({{0, 1}, {2}}).Validate(q);  // t3 uncovered
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("t3"), std::string::npos);
}

TEST(CoverTest, ValidateRejectsOutOfRange) {
  Cq q = MakeChain();
  EXPECT_EQ(Cover({{0, 1, 2, 3, 4}}).Validate(q).code(),
            StatusCode::kOutOfRange);
}

TEST(CoverTest, ValidateRejectsDisconnectedFragment) {
  Cq q = MakeChain();
  // t0 (x,y) and t2 (z,w) share no variable.
  EXPECT_EQ(Cover({{0, 2}, {1, 3}}).Validate(q).code(),
            StatusCode::kInvalidArgument);
}

TEST(CoverTest, ValidateRejectsEmpty) {
  Cq q = MakeChain();
  EXPECT_FALSE(Cover().Validate(q).ok());
  EXPECT_FALSE(
      Cover(std::vector<std::vector<int>>{{}}).Validate(q).ok());
}

TEST(CoverTest, NormalizationMakesEqualCoversEqual) {
  Cover a({{1, 0}, {3, 2}});
  Cover b({{2, 3}, {0, 1}, {0, 1}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "{t0,t1}{t2,t3}");
}

TEST(CoverTest, ReducedDropsSubsumedFragments) {
  Cover c({{0, 2}, {0}, {1}, {1, 3}});
  Cover reduced = c.Reduced();
  EXPECT_EQ(reduced, Cover({{0, 2}, {1, 3}}));
  // Nothing to reduce: unchanged.
  EXPECT_EQ(reduced.Reduced(), reduced);
}

TEST(CoverTest, SharedVarsComputation) {
  Cq q = MakeChain();
  Cover c({{0, 1}, {2, 3}});
  // Fragment 0 = {t0, t1} has vars {x,y,z}; fragment 1 = {t2,t3} has
  // {z,w,x}; shared = {x, z}.
  std::set<VarId> shared = c.SharedVars(q, 0);
  EXPECT_EQ(shared.size(), 2u);
  EXPECT_TRUE(shared.count(0));  // x
  EXPECT_TRUE(shared.count(2));  // z
}

TEST(CoverTest, FragmentQueriesCarryHeads) {
  Cq q = MakeChain();
  Cover c({{0, 1}, {2, 3}});
  std::vector<Cq> fragments = c.FragmentQueries(q);
  ASSERT_EQ(fragments.size(), 2u);
  // Fragment 0 head: x (query head), z (query head + shared), y? no.
  EXPECT_EQ(fragments[0].head().size(), 2u);
  EXPECT_EQ(fragments[0].body().size(), 2u);
}

TEST(CoverTest, SingletonCoverOfSingleAtomQuery) {
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(1), QTerm::Const(2)));
  q.AddHead(QTerm::Var(x));
  Cover c = Cover::Singletons(1);
  EXPECT_TRUE(c.Validate(q).ok());
  EXPECT_EQ(c, Cover::SingleFragment(1));
}

}  // namespace
}  // namespace query
}  // namespace rdfref
