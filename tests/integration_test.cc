// End-to-end integration over the LUBM-style scenario: the workload of the
// paper's Example 1 at test scale, plus cross-strategy agreement on a
// query suite.

#include <gtest/gtest.h>

#include <set>

#include "api/query_answering.h"
#include "datagen/lubm.h"
#include "query/sparql_parser.h"

namespace rdfref {
namespace {

constexpr const char* kPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

class LubmIntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    datagen::LubmConfig config;
    config.universities = 1;
    config.scale = 0.4;
    config.referenced_universities = 30;
    rdf::Graph graph;
    datagen::Lubm::Generate(config, &graph);
    answerer_ = new api::QueryAnswerer(std::move(graph));
  }
  static void TearDownTestSuite() {
    delete answerer_;
    answerer_ = nullptr;
  }

  query::Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(kPrefix + text, &answerer_->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  std::set<std::vector<rdf::TermId>> Rows(const engine::Table& t) {
    return t.RowSet();
  }

  static api::QueryAnswerer* answerer_;
};

api::QueryAnswerer* LubmIntegrationTest::answerer_ = nullptr;

TEST_F(LubmIntegrationTest, ImplicitMembershipNeedsReasoning) {
  // Faculty are attached via worksFor ⊑ memberOf: plain evaluation misses
  // them, every complete strategy finds them.
  query::Cq q = Parse("SELECT ?x ?z WHERE { ?x ub:memberOf ?z . }");
  engine::Evaluator plain(&answerer_->ref_store());
  size_t explicit_only = plain.EvaluateCq(q).NumRows();

  auto sat = answerer_->Answer(q, api::Strategy::kSaturation);
  ASSERT_TRUE(sat.ok());
  EXPECT_GT(sat->NumRows(), explicit_only);

  auto ref = answerer_->Answer(q, api::Strategy::kRefUcq);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(Rows(*ref), Rows(*sat));
}

TEST_F(LubmIntegrationTest, QuerySuiteAllStrategiesAgree) {
  const char* queries[] = {
      // Q1: all persons (deep subclass + domain/range reasoning).
      "SELECT ?x WHERE { ?x a ub:Person . }",
      // Q2: professors of a department.
      "SELECT ?x WHERE { ?x a ub:Professor . ?x ub:worksFor ?d . }",
      // Q3: students and what they take.
      "SELECT ?x ?c WHERE { ?x a ub:Student . ?x ub:takesCourse ?c . }",
      // Q4: graduate students with an advisor who heads something.
      "SELECT ?x ?a WHERE { ?x ub:advisor ?a . ?a ub:headOf ?d . }",
      // Q5: degree holders from a pool university.
      "SELECT ?x WHERE { ?x ub:degreeFrom <http://www.University1.edu> . }",
      // Q6: members of an organization with their types.
      "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . ?x ub:memberOf ?z . }",
  };
  for (const char* text : queries) {
    query::Cq q = Parse(text);
    auto sat = answerer_->Answer(q, api::Strategy::kSaturation);
    ASSERT_TRUE(sat.ok()) << text;
    const api::Strategy strategies[] = {
        api::Strategy::kRefUcq, api::Strategy::kRefScq,
        api::Strategy::kRefGcov, api::Strategy::kDatalog};
    for (api::Strategy s : strategies) {
      auto got = answerer_->Answer(q, s);
      ASSERT_TRUE(got.ok()) << text << " / " << api::StrategyName(s) << ": "
                            << got.status();
      EXPECT_EQ(Rows(*got), Rows(*sat))
          << text << " / " << api::StrategyName(s);
    }
  }
}

TEST_F(LubmIntegrationTest, Example1QueryShape) {
  // The Example 1 query: its UCQ reformulation explodes combinatorially
  // (318,096 CQs on the authors' LUBM instance; six-digit here too), while
  // fragment reformulations stay small.
  query::Cq q = Parse(
      "SELECT ?x ?u ?y ?v ?z WHERE {\n"
      "  ?x rdf:type ?u .\n"
      "  ?y rdf:type ?v .\n"
      "  ?x ub:mastersDegreeFrom <http://www.University1.edu> .\n"
      "  ?y ub:doctoralDegreeFrom <http://www.University1.edu> .\n"
      "  ?x ub:memberOf ?z .\n"
      "  ?y ub:memberOf ?z .\n"
      "}");
  reformulation::Reformulator ref(&answerer_->schema());
  ASSERT_TRUE(ref.AtomsIndependent(q));
  auto count = ref.CountReformulations(q);
  ASSERT_TRUE(count.ok());
  EXPECT_GT(*count, 100000u) << "UCQ reformulation should explode";

  // A small budget reproduces the paper's "could not even be parsed".
  reformulation::ReformulationOptions small;
  small.max_cqs = 10000;
  reformulation::Reformulator bounded(&answerer_->schema(), small);
  EXPECT_EQ(bounded.Reformulate(q).status().code(),
            StatusCode::kResourceExhausted);

  // The paper's hand-picked cover q'' = {t1,t3}{t3,t5}{t2,t4}{t4,t6}
  // (0-indexed {0,2}{2,4}{1,3}{3,5}) answers fine and matches SCQ.
  api::AnswerOptions options;
  options.cover = query::Cover({{0, 2}, {2, 4}, {1, 3}, {3, 5}});
  ASSERT_TRUE(options.cover.Validate(q).ok());
  api::AnswerProfile jucq_profile;
  auto jucq =
      answerer_->Answer(q, api::Strategy::kRefJucq, &jucq_profile, options);
  ASSERT_TRUE(jucq.ok()) << jucq.status();

  api::AnswerProfile scq_profile;
  auto scq = answerer_->Answer(q, api::Strategy::kRefScq, &scq_profile);
  ASSERT_TRUE(scq.ok());
  EXPECT_EQ(Rows(*jucq), Rows(*scq));

  // The grouped cover's fragments materialize far fewer rows than the
  // unselective singleton fragments (t1)ref/(t2)ref — the mechanism behind
  // the paper's 430× speedup.
  uint64_t max_singleton_rows = 0;
  for (const auto& f : scq_profile.jucq.fragments) {
    max_singleton_rows = std::max(max_singleton_rows, f.result_rows);
  }
  uint64_t max_grouped_rows = 0;
  for (const auto& f : jucq_profile.jucq.fragments) {
    max_grouped_rows = std::max(max_grouped_rows, f.result_rows);
  }
  EXPECT_LT(max_grouped_rows, max_singleton_rows);

  // GCov also avoids the explosion and agrees.
  api::AnswerProfile gcov_profile;
  auto gcov = answerer_->Answer(q, api::Strategy::kRefGcov, &gcov_profile);
  ASSERT_TRUE(gcov.ok()) << gcov.status();
  EXPECT_EQ(Rows(*gcov), Rows(*scq));
}

TEST_F(LubmIntegrationTest, IncompleteRefLosesAnswersOnLubm) {
  // Pool universities are referenced as ub:degreeFrom targets but never
  // explicitly typed: only the range constraint of degreeFrom makes them
  // Universities. The hierarchy-only (Virtuoso-style) engine misses them.
  query::Cq q = Parse("SELECT ?x WHERE { ?x a ub:University . }");
  auto complete = answerer_->Answer(q, api::Strategy::kRefUcq);
  auto incomplete = answerer_->Answer(q, api::Strategy::kRefIncomplete);
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(incomplete.ok());
  EXPECT_LT(incomplete->NumRows(), complete->NumRows());
  // Sanity: the complete answer covers (at least) the degree pool.
  EXPECT_GT(complete->NumRows(), 20u);
}

TEST_F(LubmIntegrationTest, SaturationGrowsStore) {
  const storage::Store& sat = answerer_->sat_store();
  EXPECT_GT(sat.size(), answerer_->num_explicit_triples());
  EXPECT_GT(answerer_->saturation_added(), 0u);
}

}  // namespace
}  // namespace rdfref
