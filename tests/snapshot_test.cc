// Epoch-based snapshot isolation (DESIGN.md §11): VersionSet epoch
// semantics, pinned-snapshot immutability across Freeze/Compact, the
// per-generation zero-copy fast path, background compaction, a
// K-reader/1-writer stress test (run under TSan in CI), and the facade's
// AnswerOptions::snapshot pinning.

#include "storage/version_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/query_answering.h"
#include "common/hash.h"
#include "common/synchronization.h"
#include "datagen/bibliography.h"
#include "query/sparql_parser.h"
#include "rdf/vocab.h"
#include "storage/store.h"

namespace rdfref {
namespace storage {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_ = U("s1");
    s2_ = U("s2");
    p_ = U("p");
    q_ = U("q");
    o1_ = U("o1");
    o2_ = U("o2");
    graph_.Add(s1_, p_, o1_);
    graph_.Add(s1_, p_, o2_);
    graph_.Add(s2_, p_, o1_);
    graph_.Add(s1_, q_, o1_);
    graph_.Add(s2_, q_, o2_);
    base_ = std::make_unique<Store>(graph_);
  }

  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  rdf::Graph graph_;
  std::unique_ptr<Store> base_;
  rdf::TermId s1_, s2_, p_, q_, o1_, o2_;
};

TEST_F(SnapshotTest, EpochBumpsOnlyOnVisibilityChanges) {
  VersionSet v(base_.get());
  EXPECT_EQ(v.epoch(), 0u);

  rdf::Triple fresh(s2_, p_, o2_);
  EXPECT_TRUE(v.Insert(fresh));
  EXPECT_EQ(v.epoch(), 1u);
  EXPECT_FALSE(v.Insert(fresh));  // already visible via the head
  EXPECT_FALSE(v.Insert(rdf::Triple(s1_, p_, o1_)));  // visible via the base
  EXPECT_EQ(v.epoch(), 1u);

  EXPECT_TRUE(v.Remove(rdf::Triple(s1_, p_, o1_)));
  EXPECT_EQ(v.epoch(), 2u);
  EXPECT_FALSE(v.Remove(rdf::Triple(s1_, p_, o1_)));  // already hidden
  EXPECT_FALSE(v.Remove(rdf::Triple(s2_, q_, o1_)));  // never visible
  EXPECT_EQ(v.epoch(), 2u);

  EXPECT_TRUE(v.Insert(rdf::Triple(s1_, p_, o1_)));  // un-hide
  EXPECT_EQ(v.epoch(), 3u);

  // Reorganization is invisible: sealing and merging leave the epoch alone.
  v.Freeze();
  v.Compact();
  EXPECT_EQ(v.epoch(), 3u);
  EXPECT_TRUE(v.Contains(fresh));
  EXPECT_TRUE(v.Contains(rdf::Triple(s1_, p_, o1_)));
}

TEST_F(SnapshotTest, PinnedSnapshotImmuneToLaterChurn) {
  VersionSet v(base_.get());
  SnapshotPtr pin = v.snapshot();
  const std::vector<rdf::Triple> before = pin->Materialize();
  EXPECT_EQ(before.size(), 5u);

  ASSERT_TRUE(v.Insert(rdf::Triple(s2_, p_, o2_)));
  ASSERT_TRUE(v.Remove(rdf::Triple(s1_, q_, o1_)));
  v.Freeze();
  ASSERT_TRUE(v.Remove(rdf::Triple(s2_, p_, o2_)));
  v.Compact();

  // The pin still answers as epoch 0 no matter what happened since.
  EXPECT_EQ(pin->epoch(), 0u);
  EXPECT_EQ(pin->Materialize(), before);
  EXPECT_TRUE(pin->Contains(rdf::Triple(s1_, q_, o1_)));
  EXPECT_FALSE(pin->Contains(rdf::Triple(s2_, p_, o2_)));
  EXPECT_EQ(pin->CountMatches(kAny, kAny, kAny), 5u);

  // A fresh pin sees the churned state: +o2 fact then -o2 fact, -q fact.
  SnapshotPtr now = v.snapshot();
  EXPECT_EQ(now->epoch(), 3u);
  EXPECT_EQ(now->CountMatches(kAny, kAny, kAny), 4u);
  EXPECT_FALSE(now->Contains(rdf::Triple(s1_, q_, o1_)));
}

TEST_F(SnapshotTest, CountsStayExactAcrossGenerations) {
  VersionSet v(base_.get());
  // Generation 1 (sealed run): one add, one removal against the base.
  ASSERT_TRUE(v.Insert(rdf::Triple(s2_, p_, o2_)));
  ASSERT_TRUE(v.Remove(rdf::Triple(s1_, p_, o1_)));
  v.Freeze();
  ASSERT_EQ(v.num_runs(), 1u);
  // Head: one more removal (of a run-added triple) and one add.
  ASSERT_TRUE(v.Remove(rdf::Triple(s2_, p_, o2_)));
  ASSERT_TRUE(v.Insert(rdf::Triple(s2_, q_, o1_)));

  SnapshotPtr snap = v.snapshot();
  // Ground truth: a pristine store over the materialized set must count
  // identically for every pattern shape.
  Store rebuilt(&graph_.dict(), snap->Materialize());
  for (rdf::TermId s : {kAny, s1_, s2_}) {
    for (rdf::TermId p : {kAny, p_, q_}) {
      for (rdf::TermId o : {kAny, o1_, o2_}) {
        EXPECT_EQ(snap->CountMatches(s, p, o), rebuilt.CountMatches(s, p, o))
            << s << " " << p << " " << o;
      }
    }
  }
  EXPECT_EQ(snap->CountMatches(kAny, kAny, kAny), 5u);  // 5 - 1 + 1 - 1 + 1
}

TEST_F(SnapshotTest, ZeroCopyForwardsSingleGenerationRanges) {
  VersionSet v(base_.get());
  rdf::TermId r = U("r");
  rdf::TermId s3 = U("s3");
  ASSERT_TRUE(v.Insert(rdf::Triple(s3, r, o1_)));
  ASSERT_TRUE(v.Insert(rdf::Triple(s3, r, o2_)));
  v.Freeze();  // one sealed run, adds only — nothing filters anything

  SnapshotPtr snap = v.snapshot();
  std::span<const rdf::Triple> span;

  // Base-only pattern: the span aliases the base store's own index.
  ASSERT_TRUE(snap->TryGetRange(kAny, p_, kAny, &span));
  std::span<const rdf::Triple> plain = base_->EqualRangeSpan(kAny, p_, kAny);
  EXPECT_EQ(span.data(), plain.data());
  EXPECT_EQ(span.size(), plain.size());

  // Run-only pattern: forwarded from the run's clustered index.
  ASSERT_TRUE(snap->TryGetRange(kAny, r, kAny, &span));
  EXPECT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].p, r);

  // Hinted variant forwards for base-only patterns too.
  RangeHint hint;
  ASSERT_TRUE(snap->TryGetRangeHinted(s1_, p_, kAny, &span, &hint));
  EXPECT_EQ(span.size(), 2u);

  // No generation matches: success with an empty span.
  ASSERT_TRUE(snap->TryGetRange(s2_, r, kAny, &span));
  EXPECT_TRUE(span.empty());

  // Two generations contribute: the merged (buffered) path is required.
  EXPECT_FALSE(snap->TryGetRange(kAny, kAny, o1_, &span));

  // A head write poisons only the patterns it may affect.
  ASSERT_TRUE(v.Insert(rdf::Triple(s1_, r, o1_)));
  SnapshotPtr with_head = v.snapshot();
  EXPECT_FALSE(with_head->TryGetRange(kAny, r, kAny, &span));
  ASSERT_TRUE(with_head->TryGetRange(kAny, q_, kAny, &span));
  EXPECT_EQ(span.size(), 2u);

  // After compaction everything is one generation again: even the full
  // scan is a single zero-copy range.
  v.Compact();
  SnapshotPtr compacted = v.snapshot();
  EXPECT_EQ(compacted->num_runs(), 0u);
  EXPECT_EQ(compacted->head_size(), 0u);
  ASSERT_TRUE(compacted->TryGetRange(kAny, kAny, kAny, &span));
  EXPECT_EQ(span.size(), 8u);  // 5 base + 3 inserted
}

TEST_F(SnapshotTest, IntervalProbesAreConservativeAgainstMidIntervalOverlays) {
  // o1_ and o2_ are interned consecutively, so [o1_, o2_] is a genuine id
  // interval. Presence filters track EXACT ids, and the interval pattern
  // only names the low endpoint — an overlay write at the interval's upper
  // id must still gate the zero-copy interval fast path, which is why the
  // probe wildcards the ranged position before consulting any presence set
  // (see PatternPresence in triple_source.h).
  ASSERT_EQ(o2_, o1_ + 1);
  constexpr int kRangeO = 2;  // query::Atom::kRangeO

  VersionSet v(base_.get());
  std::span<const rdf::Triple> span;

  // Clean snapshot: the base answers the object interval zero-copy.
  SnapshotPtr clean = v.snapshot();
  ASSERT_TRUE(clean->TryGetIntervalRange(kAny, p_, o1_, kRangeO, o2_, &span));
  EXPECT_EQ(span.size(), 3u);

  // Head write at the interval's UPPER id: the probe's pattern
  // (kAny, p_, o1_) never mentions o2_, so an exact-id presence check
  // would wrongly keep the fast path and drop this triple.
  ASSERT_TRUE(v.Insert(rdf::Triple(s2_, p_, o2_)));
  SnapshotPtr dirty = v.snapshot();
  EXPECT_FALSE(dirty->TryGetIntervalRange(kAny, p_, o1_, kRangeO, o2_, &span));

  // The buffered interval path delivers the overlay triple.
  PatternCursor cursor;
  std::span<const rdf::Triple> rows =
      cursor.ResetInterval(*dirty, kAny, p_, o1_, kRangeO, o2_);
  EXPECT_EQ(rows.size(), 4u);
  size_t overlay_hits = 0;
  for (const rdf::Triple& t : rows) {
    if (t == rdf::Triple(s2_, p_, o2_)) ++overlay_hits;
  }
  EXPECT_EQ(overlay_hits, 1u);

  // A head write the widened pattern cannot match keeps the fast path.
  VersionSet untouched(base_.get());
  ASSERT_TRUE(untouched.Insert(rdf::Triple(s1_, q_, o2_)));
  SnapshotPtr other = untouched.snapshot();
  ASSERT_TRUE(other->TryGetIntervalRange(kAny, p_, o1_, kRangeO, o2_, &span));
  EXPECT_EQ(span.size(), 3u);
}

TEST_F(SnapshotTest, CompactPreservesVisibilityAndDrainsRuns) {
  VersionSet v(base_.get());
  ASSERT_TRUE(v.Insert(rdf::Triple(s2_, p_, o2_)));
  v.Freeze();
  ASSERT_TRUE(v.Remove(rdf::Triple(s1_, p_, o1_)));
  v.Freeze();
  ASSERT_EQ(v.num_runs(), 2u);

  SnapshotPtr before = v.snapshot();
  const std::vector<rdf::Triple> visible = before->Materialize();
  const uint64_t epoch = v.epoch();

  v.Compact();
  EXPECT_EQ(v.num_runs(), 0u);
  EXPECT_EQ(v.head_size(), 0u);
  EXPECT_EQ(v.epoch(), epoch);

  SnapshotPtr after = v.snapshot();
  EXPECT_EQ(after->Materialize(), visible);
  // Freeze on an empty head is a no-op: no empty runs accumulate.
  v.Freeze();
  EXPECT_EQ(v.num_runs(), 0u);
}

TEST_F(SnapshotTest, BackgroundMaintenanceFreezesAndCompacts) {
  // Intern everything before the maintenance thread starts; the dictionary
  // is not synchronized.
  std::vector<rdf::Triple> inserted;
  inserted.reserve(100);
  for (int i = 0; i < 100; ++i) {
    inserted.emplace_back(U("bg" + std::to_string(i)), p_, o1_);
  }

  VersionSet v(base_.get());
  VersionSetOptions opts;
  opts.freeze_threshold = 8;
  opts.compact_min_runs = 2;
  v.StartBackgroundCompaction(opts);
  for (const rdf::Triple& t : inserted) ASSERT_TRUE(v.Insert(t));

  // The maintenance thread must eventually seal the oversized head and
  // merge the accumulated runs back under both thresholds.
  for (int tries = 0; tries < 500; ++tries) {
    if (v.head_size() < opts.freeze_threshold &&
        v.num_runs() < opts.compact_min_runs) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LT(v.head_size(), opts.freeze_threshold);
  EXPECT_LT(v.num_runs(), opts.compact_min_runs);
  v.StopBackgroundCompaction();

  SnapshotPtr snap = v.snapshot();
  EXPECT_EQ(snap->epoch(), 100u);
  EXPECT_EQ(snap->Materialize().size(), 105u);
  for (const rdf::Triple& t : inserted) EXPECT_TRUE(snap->Contains(t));
}

// Regression test for the `maintenance_` guard gap found by the first
// full-tree rdfref_check sweep (guard-completeness rule). The thread
// handle is assigned in StartBackgroundCompaction and moved out in
// StopBackgroundCompaction, both under mu_, but the field carried no
// RDFREF_GUARDED_BY(mu_) — so thread-safety analysis silently skipped
// it, and a future unlocked touch (e.g. a joinable() fast-path check
// before taking the lock) would have raced undetected.
//
// Fuzz-style repro: interleave start/stop cycles on one thread with a
// writer on another. Any unguarded access to the handle shows up under
// TSan as a data race on the std::thread object itself; with the
// annotation in place, such an access no longer even compiles under
// -Werror=thread-safety.
TEST_F(SnapshotTest, BackgroundMaintenanceStartStopCycleStress) {
  // Intern everything before the threads start; the dictionary is not
  // synchronized.
  std::vector<rdf::Triple> inserted;
  inserted.reserve(64);
  for (int i = 0; i < 64; ++i) {
    inserted.emplace_back(U("cyc" + std::to_string(i)), p_, o1_);
  }

  VersionSet v(base_.get());
  VersionSetOptions opts;
  opts.freeze_threshold = 4;
  opts.compact_min_runs = 2;

  std::thread cycler([&] {
    for (int round = 0; round < 25; ++round) {
      v.StartBackgroundCompaction(opts);
      // Redundant start while enabled must be a locked no-op, not a
      // second thread stomping the handle.
      v.StartBackgroundCompaction(opts);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      v.StopBackgroundCompaction();
      // Redundant stop while disabled must also be a locked no-op.
      v.StopBackgroundCompaction();
    }
  });
  for (const rdf::Triple& t : inserted) {
    ASSERT_TRUE(v.Insert(t));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  cycler.join();
  v.StopBackgroundCompaction();

  SnapshotPtr snap = v.snapshot();
  EXPECT_EQ(snap->epoch(), 64u);
  EXPECT_EQ(snap->Materialize().size(), 69u);
  for (const rdf::Triple& t : inserted) EXPECT_TRUE(snap->Contains(t));
}

// The TSan-targeted stress test: readers pin snapshots while one writer
// churns (inserts, removes, explicit Freeze/Compact) and the background
// maintenance thread races both. Every observation of a given epoch — no
// matter which reader, or whether the triples lived in head, runs, or a
// compacted base at pin time — must materialize the identical set.
TEST_F(SnapshotTest, ConcurrentReadersSeeDeterministicEpochs) {
  std::vector<rdf::TermId> subjects, objects;
  for (int i = 0; i < 8; ++i) subjects.push_back(U("cs" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) objects.push_back(U("co" + std::to_string(i)));

  VersionSet v(base_.get());
  VersionSetOptions opts;
  opts.freeze_threshold = 16;
  opts.compact_min_runs = 2;
  v.StartBackgroundCompaction(opts);

  common::Mutex mu;
  std::map<uint64_t, std::vector<rdf::Triple>> by_epoch;  // guarded by mu
  std::atomic<bool> done{false};
  std::atomic<int> mismatches{0};

  auto check = [&](const SnapshotPtr& snap) {
    std::vector<rdf::Triple> mat = snap->Materialize();
    if (snap->CountMatches(kAny, kAny, kAny) != mat.size()) {
      ++mismatches;
      return;
    }
    common::MutexLock lock(&mu);
    auto it = by_epoch.find(snap->epoch());
    if (it == by_epoch.end()) {
      by_epoch.emplace(snap->epoch(), std::move(mat));
    } else if (it->second != mat) {
      ++mismatches;
    }
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      for (int c = 0; c < 400 && !done.load(); ++c) check(v.snapshot());
    });
  }

  // Writer churn on the test thread.
  Rng rng(7);
  std::vector<rdf::Triple> pool;
  for (int op = 0; op < 300; ++op) {
    if (!pool.empty() && rng.Chance(0.4)) {
      const size_t at = rng.Uniform(pool.size());
      ASSERT_TRUE(v.Remove(pool[at]));
      pool.erase(pool.begin() + at);
    } else {
      rdf::Triple t(subjects[rng.Uniform(subjects.size())], p_,
                    objects[rng.Uniform(objects.size())]);
      if (v.Insert(t)) pool.push_back(t);
    }
    if (op % 37 == 36) v.Freeze();
    if (op % 97 == 96) v.Compact();
  }
  done.store(true);
  for (std::thread& t : readers) t.join();
  v.StopBackgroundCompaction();

  EXPECT_EQ(mismatches.load(), 0);
  // The final epoch must agree with the writer's own bookkeeping.
  SnapshotPtr last = v.snapshot();
  EXPECT_EQ(last->Materialize().size(), 5u + pool.size());
}

}  // namespace
}  // namespace storage

// ---------------------------------------------------------------------------
// Facade-level pinning: AnswerOptions::snapshot.

namespace api {
namespace {

namespace vocab = rdf::vocab;

class SnapshotApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph graph;
    datagen::Bibliography::AddFigure2Graph(&graph);
    answerer_ = std::make_unique<QueryAnswerer>(std::move(graph));
  }

  rdf::TermId Bib(const std::string& local) {
    return answerer_->dict().InternUri(datagen::Bibliography::Uri(local));
  }

  query::Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text, &answerer_->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  std::set<std::vector<rdf::TermId>> Rows(Strategy s, const query::Cq& q,
                                          const AnswerOptions& options = {}) {
    auto table = answerer_->Answer(q, s, nullptr, options);
    EXPECT_TRUE(table.ok()) << table.status();
    return table->RowSet();
  }

  std::unique_ptr<QueryAnswerer> answerer_;
};

TEST_F(SnapshotApiTest, PinnedAnswersIgnoreLaterUpdates) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  AnswerOptions pinned;
  pinned.snapshot = answerer_->PinSnapshot();
  const auto before = Rows(Strategy::kRefUcq, q, pinned);
  EXPECT_EQ(before.size(), 1u);

  rdf::TermId doi2 = Bib("doi2");
  ASSERT_TRUE(
      answerer_->InsertTriple(rdf::Triple(doi2, vocab::kTypeId, Bib("Book")))
          .ok());

  // The pinned epoch keeps answering the old state; fresh calls see the new.
  EXPECT_EQ(Rows(Strategy::kRefUcq, q, pinned), before);
  EXPECT_EQ(Rows(Strategy::kRefGcov, q, pinned), before);
  EXPECT_EQ(Rows(Strategy::kRefUcq, q).size(), 2u);

  // Maintenance does not disturb a held pin either.
  answerer_->versions().Freeze();
  answerer_->versions().Compact();
  EXPECT_EQ(Rows(Strategy::kRefUcq, q, pinned), before);
  EXPECT_EQ(Rows(Strategy::kRefUcq, q).size(), 2u);
}

TEST_F(SnapshotApiTest, DatalogPinsTheEpochItsProgramWasBuiltAgainst) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  AnswerOptions pinned;
  pinned.snapshot = answerer_->PinSnapshot();

  rdf::TermId doi2 = Bib("doi2");
  ASSERT_TRUE(
      answerer_->InsertTriple(rdf::Triple(doi2, vocab::kTypeId, Bib("Book")))
          .ok());

  // The insert reset the program; building it against the pre-insert pin
  // answers the pinned epoch.
  EXPECT_EQ(Rows(Strategy::kDatalog, q, pinned).size(), 1u);
  // A fresh program (after another update resets it) sees the insert.
  ASSERT_TRUE(
      answerer_->InsertTriple(rdf::Triple(Bib("doi3"), Bib("writtenBy"),
                                          answerer_->dict().InternBlank("b9")))
          .ok());
  EXPECT_EQ(Rows(Strategy::kDatalog, q).size(), 3u);  // doi3 typed via domain
}

TEST_F(SnapshotApiTest, MaintenanceThroughFacadeKeepsAllStrategiesAgreeing) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Person . }");
  const auto before = Rows(Strategy::kSaturation, q);

  rdf::TermId doi2 = Bib("doi2");
  ASSERT_TRUE(answerer_
                  ->InsertTriple(rdf::Triple(doi2, Bib("writtenBy"),
                                             answerer_->dict().InternBlank(
                                                 "b2")))
                  .ok());
  answerer_->versions().Freeze();
  answerer_->versions().Compact();

  const auto expected = Rows(Strategy::kSaturation, q);
  EXPECT_EQ(expected.size(), before.size() + 1);
  for (Strategy s :
       {Strategy::kRefUcq, Strategy::kRefGcov, Strategy::kDatalog}) {
    EXPECT_EQ(Rows(s, q), expected) << StrategyName(s);
  }
}

}  // namespace
}  // namespace api
}  // namespace rdfref
