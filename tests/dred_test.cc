// Incremental deletion maintenance (DRed): deleting an explicit triple
// from a saturated graph must leave exactly the saturation of the
// remaining explicit triples.

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/hash.h"
#include "reasoner/saturation.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace reasoner {
namespace {

namespace vocab = rdf::vocab;

using TripleSet = std::unordered_set<rdf::Triple, rdf::TripleHash>;

class DredTest : public ::testing::Test {
 protected:
  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  // Saturates graph_, remembering the explicit set.
  void Saturate() {
    explicit_ = TripleSet(graph_.triples().begin(), graph_.triples().end());
    schema_ = schema::Schema::FromGraph(graph_);
    schema_.Saturate();
    Saturator(&schema_).Saturate(&graph_);
  }

  size_t Delete(const rdf::Triple& t) {
    explicit_.erase(t);
    return Saturator(&schema_).Delete(
        &graph_, t, [this](const rdf::Triple& x) {
          return explicit_.count(x) > 0;
        });
  }

  // The ground truth: saturation of the current explicit set from scratch.
  TripleSet Resaturated() {
    rdf::Graph fresh;
    // Share term ids by re-adding through the same dictionary ids — the
    // dictionaries differ, so rebuild by decoded terms.
    for (const rdf::Triple& t : explicit_) {
      fresh.Add(graph_.dict().Lookup(t.s), graph_.dict().Lookup(t.p),
                graph_.dict().Lookup(t.o));
    }
    schema::Schema schema = schema::Schema::FromGraph(fresh);
    schema.Saturate();
    Saturator(&schema).Saturate(&fresh);
    // Decode both sides to compare graphs with different dictionaries.
    TripleSet out;
    for (const rdf::Triple& t : fresh.triples()) {
      out.insert(rdf::Triple(
          graph_.dict().Intern(fresh.dict().Lookup(t.s)),
          graph_.dict().Intern(fresh.dict().Lookup(t.p)),
          graph_.dict().Intern(fresh.dict().Lookup(t.o))));
    }
    return out;
  }

  void ExpectMatchesResaturation() {
    TripleSet expected = Resaturated();
    TripleSet actual(graph_.triples().begin(), graph_.triples().end());
    EXPECT_EQ(actual.size(), expected.size());
    for (const rdf::Triple& t : expected) {
      EXPECT_TRUE(actual.count(t))
          << "missing " << graph_.dict().Lookup(t.s).ToString() << " "
          << graph_.dict().Lookup(t.p).ToString() << " "
          << graph_.dict().Lookup(t.o).ToString();
    }
  }

  rdf::Graph graph_;
  schema::Schema schema_;
  TripleSet explicit_;
};

TEST_F(DredTest, DeleteRemovesDerivedConsequences) {
  graph_.Add(U("A"), vocab::kSubClassOfId, U("B"));
  graph_.Add(U("x"), vocab::kTypeId, U("A"));
  Saturate();
  ASSERT_TRUE(graph_.Contains(rdf::Triple(U("x"), vocab::kTypeId, U("B"))));

  size_t removed = Delete(rdf::Triple(U("x"), vocab::kTypeId, U("A")));
  EXPECT_EQ(removed, 2u);  // the fact and its consequence
  EXPECT_FALSE(graph_.Contains(rdf::Triple(U("x"), vocab::kTypeId, U("B"))));
  ExpectMatchesResaturation();
}

TEST_F(DredTest, AlternativeDerivationSurvives) {
  // x τ B follows from BOTH x τ A (A ⊑ B) and x p y (p ←d B): deleting
  // one leaves the other derivation standing.
  graph_.Add(U("A"), vocab::kSubClassOfId, U("B"));
  graph_.Add(U("p"), vocab::kDomainId, U("B"));
  graph_.Add(U("x"), vocab::kTypeId, U("A"));
  graph_.Add(U("x"), U("p"), U("y"));
  Saturate();

  Delete(rdf::Triple(U("x"), vocab::kTypeId, U("A")));
  EXPECT_TRUE(graph_.Contains(rdf::Triple(U("x"), vocab::kTypeId, U("B"))));
  ExpectMatchesResaturation();
}

TEST_F(DredTest, ExplicitFactsAreNeverOverDeleted) {
  // x τ B is both derivable and explicitly asserted: deletion of the
  // deriving fact must not remove the assertion.
  graph_.Add(U("A"), vocab::kSubClassOfId, U("B"));
  graph_.Add(U("x"), vocab::kTypeId, U("A"));
  graph_.Add(U("x"), vocab::kTypeId, U("B"));  // also asserted
  Saturate();

  Delete(rdf::Triple(U("x"), vocab::kTypeId, U("A")));
  EXPECT_TRUE(graph_.Contains(rdf::Triple(U("x"), vocab::kTypeId, U("B"))));
  ExpectMatchesResaturation();
}

TEST_F(DredTest, CascadedOverDeleteAndRederive) {
  // Chain: x p y ⇒ x q y ⇒ x τ C ⇒ x τ D.
  graph_.Add(U("p"), vocab::kSubPropertyOfId, U("q"));
  graph_.Add(U("q"), vocab::kDomainId, U("C"));
  graph_.Add(U("C"), vocab::kSubClassOfId, U("D"));
  graph_.Add(U("x"), U("p"), U("y"));
  Saturate();

  size_t removed = Delete(rdf::Triple(U("x"), U("p"), U("y")));
  EXPECT_EQ(removed, 4u);
  EXPECT_FALSE(graph_.Contains(rdf::Triple(U("x"), U("q"), U("y"))));
  EXPECT_FALSE(graph_.Contains(rdf::Triple(U("x"), vocab::kTypeId, U("D"))));
  ExpectMatchesResaturation();
}

TEST_F(DredTest, DeletingAbsentTripleIsNoOp) {
  graph_.Add(U("x"), vocab::kTypeId, U("A"));
  Saturate();
  size_t before = graph_.size();
  EXPECT_EQ(Delete(rdf::Triple(U("ghost"), vocab::kTypeId, U("A"))), 0u);
  EXPECT_EQ(graph_.size(), before);
}

TEST_F(DredTest, RandomizedDeleteMatchesResaturation) {
  // Randomized soak: build a random graph + schema, saturate, delete a
  // third of the explicit facts one by one; after each deletion the graph
  // must equal the from-scratch saturation.
  Rng rng(1234);
  std::vector<rdf::TermId> classes, props, subjects;
  for (int i = 0; i < 5; ++i) classes.push_back(U("C" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) props.push_back(U("p" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) subjects.push_back(U("s" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) {
    graph_.Add(classes[rng.Uniform(5)], vocab::kSubClassOfId,
               classes[rng.Uniform(5)]);
  }
  for (int i = 0; i < 2; ++i) {
    graph_.Add(props[rng.Uniform(4)], vocab::kSubPropertyOfId,
               props[rng.Uniform(4)]);
    graph_.Add(props[rng.Uniform(4)], vocab::kDomainId,
               classes[rng.Uniform(5)]);
    graph_.Add(props[rng.Uniform(4)], vocab::kRangeId,
               classes[rng.Uniform(5)]);
  }
  std::vector<rdf::Triple> facts;
  for (int i = 0; i < 40; ++i) {
    rdf::Triple t(subjects[rng.Uniform(8)], props[rng.Uniform(4)],
                  subjects[rng.Uniform(8)]);
    if (rng.Chance(0.3)) {
      t = rdf::Triple(subjects[rng.Uniform(8)], vocab::kTypeId,
                      classes[rng.Uniform(5)]);
    }
    if (graph_.Add(t)) facts.push_back(t);
  }
  Saturate();

  for (size_t i = 0; i < facts.size() / 3; ++i) {
    Delete(facts[i]);
    ExpectMatchesResaturation();
  }
}

TEST_F(DredTest, RandomizedInsertMatchesResaturation) {
  // Mirror soak for Insert: adding facts one at a time to a saturated
  // graph equals saturating everything from scratch.
  Rng rng(777);
  std::vector<rdf::TermId> classes, props, subjects;
  for (int i = 0; i < 5; ++i) classes.push_back(U("C" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) props.push_back(U("p" + std::to_string(i)));
  for (int i = 0; i < 8; ++i) subjects.push_back(U("s" + std::to_string(i)));
  graph_.Add(classes[0], vocab::kSubClassOfId, classes[1]);
  graph_.Add(classes[1], vocab::kSubClassOfId, classes[2]);
  graph_.Add(props[0], vocab::kSubPropertyOfId, props[1]);
  graph_.Add(props[1], vocab::kDomainId, classes[0]);
  graph_.Add(props[2], vocab::kRangeId, classes[3]);
  Saturate();

  Saturator sat(&schema_);
  for (int i = 0; i < 25; ++i) {
    rdf::Triple t(subjects[rng.Uniform(8)], props[rng.Uniform(4)],
                  subjects[rng.Uniform(8)]);
    if (rng.Chance(0.3)) {
      t = rdf::Triple(subjects[rng.Uniform(8)], vocab::kTypeId,
                      classes[rng.Uniform(5)]);
    }
    explicit_.insert(t);
    sat.Insert(&graph_, t);
    ExpectMatchesResaturation();
  }
}

}  // namespace
}  // namespace reasoner
}  // namespace rdfref
