#include "query/sparql_parser.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfref {
namespace query {
namespace {

TEST(SparqlParserTest, ParsesSimpleBgp) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "PREFIX ub: <http://ub/> "
      "SELECT ?x WHERE { ?x ub:memberOf ?z . }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body().size(), 1u);
  EXPECT_EQ(q->head().size(), 1u);
  EXPECT_TRUE(q->body()[0].s.is_var);
  EXPECT_FALSE(q->body()[0].p.is_var);
  EXPECT_EQ(dict.Lookup(q->body()[0].p.term()).lexical, "http://ub/memberOf");
}

TEST(SparqlParserTest, BuiltInPrefixesAndA) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?x WHERE { ?x a <http://ub/Student> . "
      "?x rdf:type <http://ub/Person> . }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body()[0].p.term(), rdf::vocab::kTypeId);
  EXPECT_EQ(q->body()[1].p.term(), rdf::vocab::kTypeId);
}

TEST(SparqlParserTest, RdfsPrefixBuiltIn) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?c WHERE { ?c rdfs:subClassOf ?d . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body()[0].p.term(), rdf::vocab::kSubClassOfId);
}

TEST(SparqlParserTest, VariablesInAllPositions) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->body()[0].s.is_var);
  EXPECT_TRUE(q->body()[0].p.is_var);
  EXPECT_TRUE(q->body()[0].o.is_var);
  EXPECT_EQ(q->num_vars(), 3u);
}

TEST(SparqlParserTest, LiteralsInObjects) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> \"1949\" . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(dict.Lookup(q->body()[0].o.term()).is_literal());
}

TEST(SparqlParserTest, SharedVariablesGetOneId) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://p> ?x . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->num_vars(), 2u);
  EXPECT_EQ(q->body()[0].s.var(), q->body()[1].o.var());
}

TEST(SparqlParserTest, Example1QueryParses) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?x ?u ?y ?v ?z WHERE {\n"
      "  ?x rdf:type ?u .\n"
      "  ?y rdf:type ?v .\n"
      "  ?x ub:mastersDegreeFrom <http://www.University532.edu> .\n"
      "  ?y ub:doctoralDegreeFrom <http://www.University532.edu> .\n"
      "  ?x ub:memberOf ?z .\n"
      "  ?y ub:memberOf ?z .\n"
      "}",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body().size(), 6u);
  EXPECT_EQ(q->head().size(), 5u);
  EXPECT_TRUE(q->IsSafe());
}

TEST(SparqlParserTest, MissingSelectRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparql("WHERE { ?x ?p ?o . }", &dict).status().code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, HeadVariableMustOccurInBody) {
  rdf::Dictionary dict;
  Result<Cq> q =
      ParseSparql("SELECT ?nope WHERE { ?x <http://p> ?y . }", &dict);
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST(SparqlParserTest, UnterminatedBraceRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(
      ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y .", &dict)
          .status()
          .code(),
      StatusCode::kParseError);
}

TEST(SparqlParserTest, UndefinedPrefixRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(
      ParseSparql("SELECT ?x WHERE { ?x nope:p ?y . }", &dict)
          .status()
          .code(),
      StatusCode::kParseError);
}

TEST(SparqlParserTest, EmptyBgpRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparql("SELECT ?x WHERE { }", &dict).status().code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, CommentsIgnored) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "# find members\nSELECT ?x WHERE { ?x <http://p> ?y . # inline\n }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body().size(), 1u);
}

TEST(SparqlParserTest, UnionOfTwoBranches) {
  rdf::Dictionary dict;
  Result<Ucq> u = ParseSparqlUnion(
      "PREFIX ex: <http://ex/>\n"
      "SELECT ?x WHERE { ?x a ex:Book . } UNION { ?x a ex:Article . }",
      &dict);
  ASSERT_TRUE(u.ok()) << u.status();
  ASSERT_EQ(u->size(), 2u);
  EXPECT_EQ(u->members()[0].head().size(), 1u);
  EXPECT_EQ(u->members()[1].head().size(), 1u);
}

TEST(SparqlParserTest, UnionBranchesHaveIndependentVariables) {
  rdf::Dictionary dict;
  Result<Ucq> u = ParseSparqlUnion(
      "SELECT ?x WHERE { ?x <http://p> ?y . } UNION "
      "{ ?z <http://q> ?x . }",
      &dict);
  ASSERT_TRUE(u.ok()) << u.status();
  // Branch 2 names its variables z, x — only ?x is projected.
  EXPECT_EQ(u->members()[1].head().size(), 1u);
  EXPECT_TRUE(u->members()[1].IsSafe());
}

TEST(SparqlParserTest, UnionBranchMissingHeadVarRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparqlUnion(
                "SELECT ?x WHERE { ?x <http://p> ?y . } UNION "
                "{ ?a <http://q> ?b . }",
                &dict)
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, PlainParseRejectsUnion) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparql(
                "SELECT ?x WHERE { ?x <http://p> ?y . } UNION "
                "{ ?x <http://q> ?y . }",
                &dict)
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, TrailingGarbageRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(
      ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y . } bogus:x", &dict)
          .status()
          .code(),
      StatusCode::kParseError);
}

}  // namespace
}  // namespace query
}  // namespace rdfref
