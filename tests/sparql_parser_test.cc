#include "query/sparql_parser.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "rdf/vocab.h"
#include "testing/scenario.h"

namespace rdfref {
namespace query {
namespace {

TEST(SparqlParserTest, ParsesSimpleBgp) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "PREFIX ub: <http://ub/> "
      "SELECT ?x WHERE { ?x ub:memberOf ?z . }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body().size(), 1u);
  EXPECT_EQ(q->head().size(), 1u);
  EXPECT_TRUE(q->body()[0].s.is_var);
  EXPECT_FALSE(q->body()[0].p.is_var);
  EXPECT_EQ(dict.Lookup(q->body()[0].p.term()).lexical, "http://ub/memberOf");
}

TEST(SparqlParserTest, BuiltInPrefixesAndA) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?x WHERE { ?x a <http://ub/Student> . "
      "?x rdf:type <http://ub/Person> . }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body()[0].p.term(), rdf::vocab::kTypeId);
  EXPECT_EQ(q->body()[1].p.term(), rdf::vocab::kTypeId);
}

TEST(SparqlParserTest, RdfsPrefixBuiltIn) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?c WHERE { ?c rdfs:subClassOf ?d . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body()[0].p.term(), rdf::vocab::kSubClassOfId);
}

TEST(SparqlParserTest, VariablesInAllPositions) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?s ?p ?o WHERE { ?s ?p ?o . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(q->body()[0].s.is_var);
  EXPECT_TRUE(q->body()[0].p.is_var);
  EXPECT_TRUE(q->body()[0].o.is_var);
  EXPECT_EQ(q->num_vars(), 3u);
}

TEST(SparqlParserTest, LiteralsInObjects) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> \"1949\" . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE(dict.Lookup(q->body()[0].o.term()).is_literal());
}

TEST(SparqlParserTest, SharedVariablesGetOneId) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> ?y . ?y <http://p> ?x . }", &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->num_vars(), 2u);
  EXPECT_EQ(q->body()[0].s.var(), q->body()[1].o.var());
}

TEST(SparqlParserTest, Example1QueryParses) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n"
      "SELECT ?x ?u ?y ?v ?z WHERE {\n"
      "  ?x rdf:type ?u .\n"
      "  ?y rdf:type ?v .\n"
      "  ?x ub:mastersDegreeFrom <http://www.University532.edu> .\n"
      "  ?y ub:doctoralDegreeFrom <http://www.University532.edu> .\n"
      "  ?x ub:memberOf ?z .\n"
      "  ?y ub:memberOf ?z .\n"
      "}",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body().size(), 6u);
  EXPECT_EQ(q->head().size(), 5u);
  EXPECT_TRUE(q->IsSafe());
}

TEST(SparqlParserTest, MissingSelectRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparql("WHERE { ?x ?p ?o . }", &dict).status().code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, HeadVariableMustOccurInBody) {
  rdf::Dictionary dict;
  Result<Cq> q =
      ParseSparql("SELECT ?nope WHERE { ?x <http://p> ?y . }", &dict);
  EXPECT_EQ(q.status().code(), StatusCode::kParseError);
}

TEST(SparqlParserTest, UnterminatedBraceRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(
      ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y .", &dict)
          .status()
          .code(),
      StatusCode::kParseError);
}

TEST(SparqlParserTest, UndefinedPrefixRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(
      ParseSparql("SELECT ?x WHERE { ?x nope:p ?y . }", &dict)
          .status()
          .code(),
      StatusCode::kParseError);
}

TEST(SparqlParserTest, EmptyBgpRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparql("SELECT ?x WHERE { }", &dict).status().code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, CommentsIgnored) {
  rdf::Dictionary dict;
  Result<Cq> q = ParseSparql(
      "# find members\nSELECT ?x WHERE { ?x <http://p> ?y . # inline\n }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->body().size(), 1u);
}

TEST(SparqlParserTest, UnionOfTwoBranches) {
  rdf::Dictionary dict;
  Result<Ucq> u = ParseSparqlUnion(
      "PREFIX ex: <http://ex/>\n"
      "SELECT ?x WHERE { ?x a ex:Book . } UNION { ?x a ex:Article . }",
      &dict);
  ASSERT_TRUE(u.ok()) << u.status();
  ASSERT_EQ(u->size(), 2u);
  EXPECT_EQ(u->members()[0].head().size(), 1u);
  EXPECT_EQ(u->members()[1].head().size(), 1u);
}

TEST(SparqlParserTest, UnionBranchesHaveIndependentVariables) {
  rdf::Dictionary dict;
  Result<Ucq> u = ParseSparqlUnion(
      "SELECT ?x WHERE { ?x <http://p> ?y . } UNION "
      "{ ?z <http://q> ?x . }",
      &dict);
  ASSERT_TRUE(u.ok()) << u.status();
  // Branch 2 names its variables z, x — only ?x is projected.
  EXPECT_EQ(u->members()[1].head().size(), 1u);
  EXPECT_TRUE(u->members()[1].IsSafe());
}

TEST(SparqlParserTest, UnionBranchMissingHeadVarRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparqlUnion(
                "SELECT ?x WHERE { ?x <http://p> ?y . } UNION "
                "{ ?a <http://q> ?b . }",
                &dict)
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, PlainParseRejectsUnion) {
  rdf::Dictionary dict;
  EXPECT_EQ(ParseSparql(
                "SELECT ?x WHERE { ?x <http://p> ?y . } UNION "
                "{ ?x <http://q> ?y . }",
                &dict)
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(SparqlParserTest, TrailingGarbageRejected) {
  rdf::Dictionary dict;
  EXPECT_EQ(
      ParseSparql("SELECT ?x WHERE { ?x <http://p> ?y . } bogus:x", &dict)
          .status()
          .code(),
      StatusCode::kParseError);
}

// ---------------------------------------------------------------------------
// Round-trip property: for random generated queries, parse(ToSparql(q)) is
// structurally identical to q — equal CanonicalKey (identity modulo variable
// renaming), arity, and atom count. Serializer and parser check each other.

TEST(SparqlRoundTripTest, HandWrittenCqRoundTrips) {
  rdf::Dictionary dict;
  auto q = ParseSparql(
      "SELECT ?x ?y WHERE { ?x a <http://t/C> . ?x <http://t/p> ?y . "
      "?y <http://t/q> \"a \\\"quoted\\\" \\\\ literal\" . }",
      &dict);
  ASSERT_TRUE(q.ok()) << q.status();
  auto text = ToSparql(*q, dict);
  ASSERT_TRUE(text.ok()) << text.status();
  auto back = ParseSparql(*text, &dict);
  ASSERT_TRUE(back.ok()) << *text << "\n" << back.status();
  EXPECT_EQ(back->CanonicalKey(), q->CanonicalKey()) << *text;
}

TEST(SparqlRoundTripTest, RandomCqsRoundTrip) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    rdfref::testing::Scenario sc = rdfref::testing::GenerateScenario(seed);
    Rng rng(seed * 977 + 11);
    for (int trial = 0; trial < 4; ++trial) {
      Cq q = rdfref::testing::GenerateQuery(sc, &rng);
      rdf::Dictionary& dict = sc.graph.dict();
      auto text = ToSparql(q, dict);
      ASSERT_TRUE(text.ok()) << text.status();
      auto back = ParseSparql(*text, &dict);
      ASSERT_TRUE(back.ok()) << *text << "\n" << back.status();
      EXPECT_EQ(back->CanonicalKey(), q.CanonicalKey())
          << "seed=" << seed << " trial=" << trial << "\n" << *text;
      EXPECT_EQ(back->head().size(), q.head().size());
      EXPECT_EQ(back->body().size(), q.body().size());
    }
  }
}

TEST(SparqlRoundTripTest, RandomUcqsRoundTrip) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    rdfref::testing::Scenario sc = rdfref::testing::GenerateScenario(seed);
    Rng rng(seed * 613 + 5);
    Ucq u = rdfref::testing::GenerateUcq(sc, &rng, 2);
    rdf::Dictionary& dict = sc.graph.dict();
    auto text = ToSparql(u, dict);
    ASSERT_TRUE(text.ok()) << text.status();
    auto back = ParseSparqlUnion(*text, &dict);
    ASSERT_TRUE(back.ok()) << *text << "\n" << back.status();
    ASSERT_EQ(back->size(), u.size()) << *text;
    EXPECT_EQ(back->arity(), u.arity());
    for (size_t m = 0; m < u.size(); ++m) {
      EXPECT_EQ(back->members()[m].CanonicalKey(),
                u.members()[m].CanonicalKey())
          << "seed=" << seed << " member=" << m << "\n" << *text;
    }
  }
}

TEST(SparqlRoundTripTest, InexpressibleQueriesRejected) {
  rdf::Dictionary dict;
  // Constant head slot (reformulation can produce these).
  Cq constant_head;
  VarId x = constant_head.AddVar("x");
  constant_head.AddAtom(Atom(QTerm::Var(x), QTerm::Const(rdf::vocab::kTypeId),
                             QTerm::Const(dict.InternUri("http://t/C"))));
  constant_head.AddHead(QTerm::Const(dict.InternUri("http://t/C")));
  EXPECT_EQ(ToSparql(constant_head, dict).status().code(),
            StatusCode::kInvalidArgument);

  // Blank-node constant.
  Cq blank;
  VarId y = blank.AddVar("y");
  blank.AddAtom(Atom(QTerm::Const(dict.InternBlank("b0")),
                     QTerm::Const(dict.InternUri("http://t/p")),
                     QTerm::Var(y)));
  blank.AddHead(QTerm::Var(y));
  EXPECT_EQ(ToSparql(blank, dict).status().code(),
            StatusCode::kInvalidArgument);

  // Variable name with SPARQL-hostile characters.
  Cq bad_name;
  VarId z = bad_name.AddVar("bad name");
  bad_name.AddAtom(Atom(QTerm::Var(z), QTerm::Const(rdf::vocab::kTypeId),
                        QTerm::Const(dict.InternUri("http://t/C"))));
  bad_name.AddHead(QTerm::Var(z));
  EXPECT_EQ(ToSparql(bad_name, dict).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace query
}  // namespace rdfref
