// Negative probe for the snapshot-pin discipline (DESIGN.md section 14):
// a raw SnapshotSource pointer is only valid while some SnapshotPtr
// (std::shared_ptr pin) keeps its epoch alive. Storing the raw pointer in
// a field, or calling .get() on the *temporary* returned by
// VersionSet::snapshot(), detaches the pointer from its pin — the epoch
// can be reclaimed by background compaction mid-read.
//
// Both violations are semantic, not syntactic: every variant of this file
// compiles. The gate is tools/rdfref_check.py's snapshot-pin rule
// (`--probe` on this file under -DRDFREF_NEGATIVE, plus the pregenerated
// AST fixture unpinned_snapshot_ast.json for clang-less runs).
//
//   - without RDFREF_NEGATIVE: the control — the blessed named-pin
//     pattern, zero findings;
//   - with -DRDFREF_NEGATIVE: adds the violations — the check must fire.

#include <cstddef>

#include "storage/version_set.h"

namespace {

// Blessed: bind the pin to a named local whose scope covers every use of
// the raw pointer (exactly what api::QueryAnswerer does around
// evaluation).
size_t CountPinned(rdfref::storage::VersionSet& versions) {
  rdfref::storage::SnapshotPtr snap = versions.snapshot();
  return snap->CountMatches(1, 2, 3);
}

#ifdef RDFREF_NEGATIVE
// Violation 1: raw SnapshotSource pointer stored in a field outside the
// pinning shared_ptr — nothing keeps the epoch alive.
struct CachedReader {
  const rdfref::storage::SnapshotSource* snap;
};

// Violation 2: .get() on the temporary pin; the shared_ptr dies at the
// end of this full-expression and the returned pointer dangles.
const rdfref::storage::SnapshotSource* Grab(
    rdfref::storage::VersionSet& versions) {
  return versions.snapshot().get();
}
#endif

}  // namespace

int main() { return 0; }
