// Negative-compilation probe: accessing a RDFREF_GUARDED_BY field without
// holding its mutex must fail the Clang thread-safety build
// (-Wthread-safety -Werror=thread-safety). Registered only when the
// compiler is Clang — GCC ignores the annotations by design.
//
// Compiled twice by tests/negative/CMakeLists.txt:
//   - without RDFREF_NEGATIVE: the control build — must SUCCEED (the
//     locked accessors below are the blessed pattern);
//   - with -DRDFREF_NEGATIVE: adds the unlocked access — must FAIL.

#include "common/synchronization.h"

namespace {

class Counter {
 public:
  void Increment() RDFREF_EXCLUDES(mu_) {
    rdfref::common::MutexLock lock(&mu_);
    ++value_;
  }

  int Get() const RDFREF_EXCLUDES(mu_) {
    rdfref::common::MutexLock lock(&mu_);
    return value_;
  }

#ifdef RDFREF_NEGATIVE
  int GetUnlocked() const {
    return value_;  // unguarded read of a GUARDED_BY field — must not compile
  }
#endif

 private:
  mutable rdfref::common::Mutex mu_;
  int value_ RDFREF_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  return c.Get() == 1 ? 0 : 1;
}
