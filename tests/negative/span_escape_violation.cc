// Negative-compilation probe for the span-escape discipline
// (DESIGN.md section 14): a borrowed span must not outlive its source,
// and span-holding types must name what they borrow from.
//
// Two independent backends reject the violations below:
//   - the compiler itself: RDFREF_LIFETIME_BOUND expands to
//     [[clang::lifetimebound]] under Clang, so binding View()'s result to
//     a temporary argument is a -Wdangling error
//     (-Werror=dangling in the gate);
//   - tools/rdfref_check.py: the un-annotated span field is a
//     span-escape finding (`--probe` on this file, plus the pregenerated
//     AST fixture span_escape_violation_ast.json for clang-less runs).
//
// Compiled twice by tests/negative/CMakeLists.txt:
//   - without RDFREF_NEGATIVE: the control build — must SUCCEED (the
//     annotated borrow patterns below are the blessed forms);
//   - with -DRDFREF_NEGATIVE: adds the violations — must FAIL the gate.

#include <span>
#include <vector>

#include "common/annotations.h"
#include "rdf/triple.h"

namespace {

// Blessed: the parameter the result borrows from carries the macro, so
// Clang tracks the borrow through every call site.
std::span<const int> View(const std::vector<int>& v RDFREF_LIFETIME_BOUND) {
  return {v.data(), v.size()};
}

// Blessed: a span-holding type declares its borrow contract up front.
struct RDFREF_BORROWS_FROM(source_table) RowView {
  std::span<const rdfref::rdf::Triple> rows;
};

int UseSafe() {
  std::vector<int> owned{1, 2, 3};
  std::span<const int> view = View(owned);  // source outlives the view
  return static_cast<int>(view.size());
}

#ifdef RDFREF_NEGATIVE
// Violation 1 — compiler-visible: the vector temporary dies at the end of
// the full-expression; `view` dangles immediately (-Wdangling via
// [[clang::lifetimebound]]).
int UseDangling() {
  std::span<const int> view = View(std::vector<int>{1, 2, 3});
  return static_cast<int>(view.size());
}

// Violation 2 — checker-visible: a borrowed span stored in a field of a
// holder with no RDFREF_BORROWS_FROM contract (rdfref_check span-escape).
struct LeakyHolder {
  std::span<const rdfref::rdf::Triple> rows;
};
#endif

}  // namespace

int main() { return UseSafe() == 3 ? 0 : 1; }
