// Negative-compilation probe: a silently discarded Result<T> / Status must
// fail the static-analysis build (common/result.h and common/status.h are
// class-level [[nodiscard]]; the gate compiles this file with
// -Werror=unused-result).
//
// Compiled twice by tests/negative/CMakeLists.txt:
//   - without RDFREF_NEGATIVE: the control build — must SUCCEED, proving a
//     failure of the negative build is the violation and not e.g. a broken
//     include path;
//   - with -DRDFREF_NEGATIVE: adds the violations — must FAIL.

#include "common/result.h"
#include "common/status.h"

namespace {

rdfref::Result<int> MakeResult() { return 42; }
rdfref::Status MakeStatus() {
  return rdfref::Status::Unavailable("endpoint down");
}

int Use() {
  // Properly observed returns: always legal.
  rdfref::Result<int> r = MakeResult();
  rdfref::Status s = MakeStatus();
  int total = (r.ok() ? *r : 0) + (s.ok() ? 0 : 1);

#ifdef RDFREF_NEGATIVE
  MakeResult();  // dropped Result<int> — must not compile
  MakeStatus();  // dropped Status — must not compile
#endif

  return total;
}

}  // namespace

int main() { return Use(); }
