#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "common/hash.h"
#include "common/timer.h"

namespace rdfref {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(11);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Chance(0.25)) ++hits;
  }
  EXPECT_GT(hits, 2000);
  EXPECT_LT(hits, 3000);
}

TEST(RngTest, ZeroSeedStillWorks) {
  Rng rng(0);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(HashTest, HashIdsOrderSensitive) {
  EXPECT_NE(HashIds({1, 2, 3}), HashIds({3, 2, 1}));
  EXPECT_EQ(HashIds({1, 2, 3}), HashIds({1, 2, 3}));
  EXPECT_NE(HashIds({}), HashIds({0}));
}

TEST(HashTest, CombineSpreadsNearbyValues) {
  std::set<size_t> hashes;
  for (uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(HashCombine(0, i));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(timer.ElapsedMicros(), 4000);
  EXPECT_GE(timer.ElapsedMillis(), 4.0);
  timer.Reset();
  EXPECT_LT(timer.ElapsedMillis(), 5.0);
}

}  // namespace
}  // namespace rdfref
