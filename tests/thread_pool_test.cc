#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/synchronization.h"

namespace rdfref {
namespace common {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndSingleIterationDegenerate) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no iterations expected"; });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Tasks submit their own batches: the submitter must participate in its
  // batch (and steal others') instead of blocking a worker slot, or a pool
  // smaller than the nesting width would deadlock.
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 8;
  std::atomic<size_t> total{0};
  pool.ParallelFor(kOuter, [&](size_t) {
    pool.ParallelFor(kInner, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareThePool) {
  ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr size_t kIters = 500;
  std::atomic<size_t> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      pool.ParallelFor(kIters, [&](size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kIters);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastTwo) {
  // The parallel code paths (and their TSan coverage) must stay exercised
  // even in single-core CI containers.
  EXPECT_GE(ThreadPool::DefaultThreads(), 2);
  EXPECT_GE(ThreadPool::Shared().num_threads(), 2);
}

TEST(ThreadPoolTest, UnusedPoolDestructsWithoutStartingWorkers) {
  // Lazy start: a pool that never ran a batch has no workers to join, and
  // its destructor's swap-under-lock must handle the empty vector.
  for (int i = 0; i < 100; ++i) {
    ThreadPool pool(8);
    EXPECT_EQ(pool.num_threads(), 8);
  }
}

TEST(ThreadPoolTest, DestructionAfterWorkJoinsAllWorkers) {
  // Regression for the shutdown path: the destructor must move the worker
  // handles out under the lock (joining while holding mu_ would deadlock
  // with a worker draining its last batch; reading workers_ unlocked was
  // the thread-safety-analysis finding). Churn start/stop to give TSan a
  // window.
  for (int round = 0; round < 50; ++round) {
    ThreadPool pool(4);
    std::atomic<int> sum{0};
    pool.ParallelFor(64, [&](size_t) {
      sum.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64);
  }
}

// ---------------------------------------------------------------------------
// common/synchronization.h primitives (run here so the TSan job covers them)
// ---------------------------------------------------------------------------

TEST(SynchronizationTest, MutexLockSerializesIncrements) {
  Mutex mu;
  int counter = 0;  // guarded by mu (annotation elided: local test state)
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  MutexLock lock(&mu);
  EXPECT_EQ(counter, kThreads * kIters);
}

TEST(SynchronizationTest, CondVarPredicateWaitObservesSignal) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = 0;
  std::thread waiter([&] {
    mu.Lock();
    cv.Wait(&mu, [&] { return ready; });
    observed = 1;
    mu.Unlock();
  });
  {
    MutexLock lock(&mu);
    ready = true;
    cv.SignalAll();
  }
  waiter.join();
  EXPECT_EQ(observed, 1);
}

TEST(SynchronizationTest, NotificationReleasesCurrentAndFutureWaiters) {
  Notification done;
  EXPECT_FALSE(done.HasBeenNotified());
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  waiters.reserve(3);
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] {
      done.WaitForNotification();
      released.fetch_add(1, std::memory_order_relaxed);
    });
  }
  done.Notify();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(released.load(), 3);
  EXPECT_TRUE(done.HasBeenNotified());
  done.WaitForNotification();  // post-notify waits return immediately
}

TEST(SynchronizationTest, TryLockReportsContention) {
  Mutex mu;
  mu.Lock();
  std::thread other([&] {
    if (mu.TryLock()) {
      ADD_FAILURE() << "TryLock must fail while another thread holds mu";
      mu.Unlock();
    }
  });
  other.join();
  mu.Unlock();
}

}  // namespace
}  // namespace common
}  // namespace rdfref
