#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace rdfref {
namespace common {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndSingleIterationDegenerate) {
  ThreadPool pool(4);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "no iterations expected"; });
  int calls = 0;
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadPoolRunsInline) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Tasks submit their own batches: the submitter must participate in its
  // batch (and steal others') instead of blocking a worker slot, or a pool
  // smaller than the nesting width would deadlock.
  ThreadPool pool(2);
  constexpr size_t kOuter = 8;
  constexpr size_t kInner = 8;
  std::atomic<size_t> total{0};
  pool.ParallelFor(kOuter, [&](size_t) {
    pool.ParallelFor(kInner, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), kOuter * kInner);
}

TEST(ThreadPoolTest, ConcurrentSubmittersShareThePool) {
  ThreadPool pool(3);
  constexpr int kSubmitters = 4;
  constexpr size_t kIters = 500;
  std::atomic<size_t> total{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&] {
      pool.ParallelFor(kIters, [&](size_t) {
        total.fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * kIters);
}

TEST(ThreadPoolTest, DefaultThreadsIsAtLeastTwo) {
  // The parallel code paths (and their TSan coverage) must stay exercised
  // even in single-core CI containers.
  EXPECT_GE(ThreadPool::DefaultThreads(), 2);
  EXPECT_GE(ThreadPool::Shared().num_threads(), 2);
}

}  // namespace
}  // namespace common
}  // namespace rdfref
