#include "engine/evaluator.h"

#include <gtest/gtest.h>

#include "query/cover.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace engine {
namespace {

using query::Atom;
using query::Cq;
using query::Cover;
using query::QTerm;
using query::Ucq;
using query::VarId;

class EvaluatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A small social graph: knows edges and type assertions.
    ann_ = U("ann");
    bob_ = U("bob");
    carl_ = U("carl");
    knows_ = U("knows");
    person_ = U("Person");
    graph_.Add(ann_, knows_, bob_);
    graph_.Add(bob_, knows_, carl_);
    graph_.Add(carl_, knows_, ann_);
    graph_.Add(ann_, rdf::vocab::kTypeId, person_);
    graph_.Add(bob_, rdf::vocab::kTypeId, person_);
    store_ = std::make_unique<storage::Store>(graph_);
  }

  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  Table EvalDirect(const Cq& q) {
    Evaluator eval(store_.get());
    return eval.EvaluateCq(q);
  }

  rdf::Graph graph_;
  std::unique_ptr<storage::Store> store_;
  rdf::TermId ann_, bob_, carl_, knows_, person_;
};

TEST_F(EvaluatorTest, SingleAtomScan) {
  Evaluator eval(store_.get());
  Table t = eval.EvaluateCq(
      Parse("SELECT ?x ?y WHERE { ?x <http://ex/knows> ?y . }"));
  EXPECT_EQ(t.NumRows(), 3u);
}

TEST_F(EvaluatorTest, TwoAtomJoin) {
  Evaluator eval(store_.get());
  Table t = eval.EvaluateCq(Parse(
      "SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . "
      "?y <http://ex/knows> ?z . }"));
  t.Sort();
  ASSERT_EQ(t.NumRows(), 3u);  // ann→carl, bob→ann, carl→bob
}

TEST_F(EvaluatorTest, ConstantsRestrictMatches) {
  Evaluator eval(store_.get());
  Table t = eval.EvaluateCq(
      Parse("SELECT ?y WHERE { <http://ex/ann> <http://ex/knows> ?y . }"));
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0], bob_);
}

TEST_F(EvaluatorTest, RepeatedVariableWithinAtom) {
  // Add a self-loop; ?x knows ?x must match only it.
  graph_.Add(carl_, knows_, carl_);
  store_ = std::make_unique<storage::Store>(graph_);
  Evaluator eval(store_.get());
  Table t = eval.EvaluateCq(
      Parse("SELECT ?x WHERE { ?x <http://ex/knows> ?x . }"));
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0], carl_);
}

TEST_F(EvaluatorTest, CyclicTriangleJoin) {
  Evaluator eval(store_.get());
  Table t = eval.EvaluateCq(Parse(
      "SELECT ?x WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z ."
      " ?z <http://ex/knows> ?x . }"));
  EXPECT_EQ(t.NumRows(), 3u);  // each of the three rotations
}

TEST_F(EvaluatorTest, EmptyResultOnNoMatch) {
  Evaluator eval(store_.get());
  Table t = eval.EvaluateCq(
      Parse("SELECT ?x WHERE { ?x <http://ex/hates> ?y . }"));
  EXPECT_EQ(t.NumRows(), 0u);
}

TEST_F(EvaluatorTest, DuplicateAnswersAreEliminated) {
  Evaluator eval(store_.get());
  // ?x knows somebody: ann, bob, carl each once even with many matches.
  Table t = eval.EvaluateCq(
      Parse("SELECT ?x WHERE { ?x <http://ex/knows> ?y . "
            "?x a <http://ex/Person> . }"));
  EXPECT_EQ(t.NumRows(), 2u);  // ann, bob (carl is untyped)
}

TEST_F(EvaluatorTest, ConstantHeadSlotEmitted) {
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(knows_), QTerm::Const(bob_)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Const(person_));  // constant slot, as reformulation makes
  Evaluator eval(store_.get());
  Table t = eval.EvaluateCq(q);
  ASSERT_EQ(t.NumRows(), 1u);
  EXPECT_EQ(t.row(0)[0], ann_);
  EXPECT_EQ(t.row(0)[1], person_);
}

TEST_F(EvaluatorTest, UcqUnionsAndDedups) {
  Cq q1 = Parse("SELECT ?x WHERE { ?x <http://ex/knows> ?y . }");
  Cq q2 = Parse("SELECT ?x WHERE { ?x a <http://ex/Person> . }");
  Ucq ucq;
  ucq.Add(q1);
  ucq.Add(q2);
  Evaluator eval(store_.get());
  Table t = eval.EvaluateUcq(ucq);
  EXPECT_EQ(t.NumRows(), 3u);  // ann, bob, carl — union, deduplicated
}

TEST_F(EvaluatorTest, JucqEqualsDirectEvaluation) {
  Cq q = Parse(
      "SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . "
      "?y <http://ex/knows> ?z . ?x a <http://ex/Person> . }");
  Table direct = EvalDirect(q);

  Cover cover({{0, 2}, {1}});
  ASSERT_TRUE(cover.Validate(q).ok());
  std::vector<Cq> fragments = cover.FragmentQueries(q);
  std::vector<Ucq> ucqs;
  for (const Cq& f : fragments) ucqs.push_back(Ucq({f}));
  Evaluator eval(store_.get());
  JucqProfile profile;
  Table jucq = eval.EvaluateJucq(q, fragments, ucqs, &profile);

  direct.Sort();
  jucq.Sort();
  EXPECT_EQ(direct.RowVectors(), jucq.RowVectors());
  ASSERT_EQ(profile.fragments.size(), 2u);
  // Fragment labels name the atom indexes the fragment covers in q.
  EXPECT_EQ(profile.fragments[0].cover_fragment, "{t0,t2}");
  EXPECT_EQ(profile.fragments[1].cover_fragment, "{t1}");
  EXPECT_EQ(profile.fragments[0].ucq_members, 1u);
  EXPECT_GE(profile.total_millis, 0.0);
}

TEST_F(EvaluatorTest, JucqConstantHeadFragmentJoinsOnlyOnVariables) {
  // A fragment whose head carries a *constant* slot (reformulation rules
  // substitute constants into heads). The constant slot must not be
  // mistaken for a join column: term id 2 exists in every dictionary
  // (built-in vocabulary) and collides with the VarId of ?z, so a column
  // rebuild that calls h.var() on the constant would join fragment A's
  // constant column against ?z and wrongly drop every row.
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  VarId z = q.AddVar("z");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(knows_), QTerm::Var(y)));
  q.AddAtom(Atom(QTerm::Var(y), QTerm::Const(knows_), QTerm::Var(z)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Var(z));
  ASSERT_EQ(static_cast<rdf::TermId>(z), 2u);

  Cq frag_a;
  frag_a.AddVar("x");
  frag_a.AddVar("y");
  frag_a.AddAtom(Atom(QTerm::Var(x), QTerm::Const(knows_), QTerm::Var(y)));
  frag_a.AddHead(QTerm::Var(x));
  frag_a.AddHead(QTerm::Var(y));
  frag_a.AddHead(QTerm::Const(rdf::TermId(2)));

  Cq frag_b;
  frag_b.AddVar("x");
  frag_b.AddVar("y");
  frag_b.AddVar("z");
  frag_b.AddAtom(Atom(QTerm::Var(y), QTerm::Const(knows_), QTerm::Var(z)));
  frag_b.AddHead(QTerm::Var(y));
  frag_b.AddHead(QTerm::Var(z));

  Evaluator eval(store_.get());
  Table jucq = eval.EvaluateJucq(q, {frag_a, frag_b},
                                 {Ucq({frag_a}), Ucq({frag_b})});
  Table direct = EvalDirect(q);
  direct.Sort();
  jucq.Sort();
  EXPECT_EQ(direct.RowVectors(), jucq.RowVectors());
  EXPECT_EQ(jucq.NumRows(), 3u);  // ann→carl, bob→ann, carl→bob
}

TEST_F(EvaluatorTest, JucqEmptyFragmentUcqYieldsEmptyAnswer) {
  // A fragment whose reformulation is the empty UCQ contributes an empty
  // table; the join must produce the empty answer, not crash or ignore it.
  Cq q = Parse(
      "SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . "
      "?y <http://ex/knows> ?z . }");
  Cover cover = Cover::Singletons(2);
  std::vector<Cq> fragments = cover.FragmentQueries(q);
  std::vector<Ucq> ucqs;
  ucqs.push_back(Ucq({fragments[0]}));
  ucqs.push_back(Ucq());  // empty reformulation
  Evaluator eval(store_.get());
  JucqProfile profile;
  Table t = eval.EvaluateJucq(q, fragments, ucqs, &profile);
  EXPECT_EQ(t.NumRows(), 0u);
  ASSERT_EQ(profile.fragments.size(), 2u);
  EXPECT_EQ(profile.fragments[1].ucq_members, 0u);
  EXPECT_EQ(profile.fragments[1].result_rows, 0u);
}

TEST_F(EvaluatorTest, JucqZeroFragmentsYieldsEmptyAnswer) {
  Cq q = Parse("SELECT ?x WHERE { ?x <http://ex/knows> ?y . }");
  Evaluator eval(store_.get());
  Table t = eval.EvaluateJucq(q, {}, {});
  EXPECT_EQ(t.NumRows(), 0u);
  ASSERT_EQ(t.columns.size(), 1u);
}

TEST_F(EvaluatorTest, AtomOrderStartsSelective) {
  // knows has 3 matches; the type atom for Person has 2 — the plan leads
  // with the more selective atom.
  Cq q = Parse(
      "SELECT ?x WHERE { ?x <http://ex/knows> ?y . "
      "?x a <http://ex/Person> . }");
  Evaluator eval(store_.get());
  std::vector<int> order = eval.AtomOrder(q);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);  // the 2-match type scan leads
}

TEST_F(EvaluatorTest, ExplainCqRendersPlan) {
  Cq q = Parse(
      "SELECT ?x WHERE { ?x <http://ex/knows> ?y . "
      "?x a <http://ex/Person> . }");
  Evaluator eval(store_.get());
  std::string plan = eval.ExplainCq(q);
  EXPECT_NE(plan.find("scan"), std::string::npos);
  EXPECT_NE(plan.find("probe"), std::string::npos);
  EXPECT_NE(plan.find("index matches"), std::string::npos);
}

TEST_F(EvaluatorTest, ExplainJucqRendersFragments) {
  Cq q = Parse(
      "SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . "
      "?y <http://ex/knows> ?z . }");
  query::Cover cover = query::Cover::Singletons(2);
  std::vector<Cq> fragments = cover.FragmentQueries(q);
  std::vector<Ucq> ucqs;
  for (const Cq& f : fragments) ucqs.push_back(Ucq({f}));
  Evaluator eval(store_.get());
  std::string plan = eval.ExplainJucq(q, fragments, ucqs);
  EXPECT_NE(plan.find("materialize 2 fragment(s)"), std::string::npos);
  EXPECT_NE(plan.find("fragment 0"), std::string::npos);
}

TEST_F(EvaluatorTest, ExplainJucqIndentsEveryNestedPlanLine) {
  // Golden rendering: every line of the nested CQ plan is indented —
  // including the final one, which an indenter that splits on '\n' and
  // ignores the unterminated tail would emit flush-left.
  Cq q = Parse(
      "SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . "
      "?y <http://ex/knows> ?z . }");
  query::Cover cover = query::Cover::Singletons(2);
  std::vector<Cq> fragments = cover.FragmentQueries(q);
  std::vector<Ucq> ucqs;
  for (const Cq& f : fragments) ucqs.push_back(Ucq({f}));
  Evaluator eval(store_.get());
  std::string plan = eval.ExplainJucq(q, fragments, ucqs);
  const std::string expected =
      "JUCQ plan: materialize 2 fragment(s), "
      "then hash-join smallest-connected-first:\n"
      "  fragment 0: UCQ of 1 CQ(s), head arity 2\n"
      "    first member plan:\n"
      "    CQ plan (index nested-loop join):\n"
      "      scan  t0  (~3 index matches unbound)\n"
      "  fragment 1: UCQ of 1 CQ(s), head arity 2\n"
      "    first member plan:\n"
      "    CQ plan (index nested-loop join):\n"
      "      scan  t0  (~3 index matches unbound)\n";
  EXPECT_EQ(plan, expected);
  // No nested line may appear without its indent.
  EXPECT_EQ(plan.find("\nCQ plan"), std::string::npos);
  EXPECT_EQ(plan.find("\n  scan"), std::string::npos);
}

}  // namespace
}  // namespace engine
}  // namespace rdfref
