#include "cost/cardinality.h"

#include <gtest/gtest.h>

#include "rdf/graph.h"
#include "rdf/vocab.h"
#include "storage/store.h"

namespace rdfref {
namespace cost {
namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;

class CardinalityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    knows_ = U("knows");
    person_ = U("Person");
    // 10 subjects each knowing 2 of 5 objects; 6 typed persons.
    for (int i = 0; i < 10; ++i) {
      rdf::TermId s = U("s" + std::to_string(i));
      graph_.Add(s, knows_, U("o" + std::to_string(i % 5)));
      graph_.Add(s, knows_, U("o" + std::to_string((i + 1) % 5)));
      if (i < 6) graph_.Add(s, rdf::vocab::kTypeId, person_);
    }
    store_ = std::make_unique<storage::Store>(graph_);
  }

  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  rdf::Graph graph_;
  std::unique_ptr<storage::Store> store_;
  rdf::TermId knows_, person_;
};

TEST_F(CardinalityTest, BoundPropertyUsesExactCount) {
  CardinalityEstimator est(&store_->stats());
  Cq q;
  VarId x = q.AddVar("x"), y = q.AddVar("y");
  Atom atom(QTerm::Var(x), QTerm::Const(knows_), QTerm::Var(y));
  EXPECT_DOUBLE_EQ(est.EstimateAtom(atom), 20.0);
}

TEST_F(CardinalityTest, ClassAtomUsesClassCardinality) {
  CardinalityEstimator est(&store_->stats());
  Cq q;
  VarId x = q.AddVar("x");
  Atom atom(QTerm::Var(x), QTerm::Const(rdf::vocab::kTypeId),
            QTerm::Const(person_));
  EXPECT_DOUBLE_EQ(est.EstimateAtom(atom), 6.0);
}

TEST_F(CardinalityTest, BoundSubjectDividesByDistinctSubjects) {
  CardinalityEstimator est(&store_->stats());
  Atom atom(QTerm::Const(U("s0")), QTerm::Const(knows_), QTerm::Var(0));
  // 20 triples / 10 distinct subjects = 2.
  EXPECT_DOUBLE_EQ(est.EstimateAtom(atom), 2.0);
}

TEST_F(CardinalityTest, BoundObjectDividesByDistinctObjects) {
  CardinalityEstimator est(&store_->stats());
  Atom atom(QTerm::Var(0), QTerm::Const(knows_), QTerm::Const(U("o0")));
  // 20 triples / 5 distinct objects = 4.
  EXPECT_DOUBLE_EQ(est.EstimateAtom(atom), 4.0);
}

TEST_F(CardinalityTest, VariablePropertyFallsBackToTotal) {
  CardinalityEstimator est(&store_->stats());
  Atom atom(QTerm::Var(0), QTerm::Var(1), QTerm::Var(2));
  EXPECT_DOUBLE_EQ(est.EstimateAtom(atom),
                   static_cast<double>(store_->stats().total_triples()));
}

TEST_F(CardinalityTest, DistinctValuesBoundedByCardinality) {
  CardinalityEstimator est(&store_->stats());
  Cq q;
  VarId x = q.AddVar("x");
  Atom atom(QTerm::Var(x), QTerm::Const(knows_), QTerm::Const(U("o0")));
  // The atom matches ~4 rows; V(x) cannot exceed that.
  EXPECT_LE(est.DistinctValues(atom, x), 4.0);
  EXPECT_GE(est.DistinctValues(atom, x), 1.0);
}

TEST_F(CardinalityTest, JoinSelectivityShrinksEstimate) {
  CardinalityEstimator est(&store_->stats());
  // q(x) :- x knows y, x τ Person: 20 × 6 discounted by V(x).
  Cq q;
  VarId x = q.AddVar("x"), y = q.AddVar("y");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(knows_), QTerm::Var(y)));
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(rdf::vocab::kTypeId),
                 QTerm::Const(person_)));
  q.AddHead(QTerm::Var(x));
  double joined = est.EstimateCqRows(q);
  EXPECT_LT(joined, 20.0 * 6.0);
  EXPECT_GT(joined, 0.0);
}

TEST_F(CardinalityTest, UnknownPropertyEstimatesZero) {
  CardinalityEstimator est(&store_->stats());
  Atom atom(QTerm::Var(0), QTerm::Const(U("absent")), QTerm::Var(1));
  EXPECT_DOUBLE_EQ(est.EstimateAtom(atom), 0.0);
}

TEST_F(CardinalityTest, MonotoneInBinding) {
  CardinalityEstimator est(&store_->stats());
  Atom free(QTerm::Var(0), QTerm::Const(knows_), QTerm::Var(1));
  Atom bound_s(QTerm::Const(U("s0")), QTerm::Const(knows_), QTerm::Var(1));
  Atom bound_both(QTerm::Const(U("s0")), QTerm::Const(knows_),
                  QTerm::Const(U("o0")));
  EXPECT_GE(est.EstimateAtom(free), est.EstimateAtom(bound_s));
  EXPECT_GE(est.EstimateAtom(bound_s), est.EstimateAtom(bound_both));
}

TEST_F(CardinalityTest, PairStatisticsCorrectCorrelatedStars) {
  // Build a graph where p1 and p2 NEVER co-occur: independence predicts a
  // non-trivial join size, the pair-aware estimator predicts ~0.
  rdf::Graph g;
  rdf::TermId p1 = g.dict().InternUri("http://ex/p1");
  rdf::TermId p2 = g.dict().InternUri("http://ex/p2");
  rdf::TermId o = g.dict().InternUri("http://ex/o");
  for (int i = 0; i < 50; ++i) {
    g.Add(g.dict().InternUri("http://ex/a" + std::to_string(i)), p1, o);
    g.Add(g.dict().InternUri("http://ex/b" + std::to_string(i)), p2, o);
  }
  storage::Store store(g);

  Cq q;
  VarId x = q.AddVar("x"), y = q.AddVar("y"), z = q.AddVar("z");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(p1), QTerm::Var(y)));
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(p2), QTerm::Var(z)));
  q.AddHead(QTerm::Var(x));

  CardinalityEstimator independent(&store.stats(), false);
  CardinalityEstimator pair_aware(&store.stats(), true);
  EXPECT_GT(independent.EstimateCqRows(q), 1.0);
  EXPECT_LT(pair_aware.EstimateCqRows(q),
            independent.EstimateCqRows(q) / 10.0);
}

}  // namespace
}  // namespace cost
}  // namespace rdfref
