#include "query/canonical.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "query/cq.h"
#include "query/ucq.h"
#include "testing/scenario.h"

namespace rdfref {
namespace query {
namespace {

// q(x, y) :- x p y, y p z, z p x.
Cq MakeTriangle() {
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  VarId z = q.AddVar("z");
  QTerm p = QTerm::Const(77);
  q.AddAtom(Atom(QTerm::Var(x), p, QTerm::Var(y)));
  q.AddAtom(Atom(QTerm::Var(y), p, QTerm::Var(z)));
  q.AddAtom(Atom(QTerm::Var(z), p, QTerm::Var(x)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Var(y));
  return q;
}

// A copy of `q` whose variables are declared in reverse order under fresh
// names — an α-renaming that shifts every VarId.
Cq RenameVars(const Cq& q) {
  Cq out;
  std::vector<VarId> map(q.num_vars());
  for (size_t v = q.num_vars(); v-- > 0;) {
    map[v] = out.AddVar("r" + std::to_string(v));
  }
  auto remap = [&map](const QTerm& t) {
    return t.is_var ? QTerm::Var(map[t.var()]) : t;
  };
  for (const QTerm& h : q.head()) out.AddHead(remap(h));
  for (const Atom& a : q.body()) {
    Atom b(remap(a.s), remap(a.p), remap(a.o));
    b.range_pos = a.range_pos;
    b.range_hi = a.range_hi;
    out.AddAtom(b);
  }
  return out;
}

TEST(CanonicalTest, IdempotentOnTriangle) {
  CanonicalCq once = Canonicalize(MakeTriangle());
  CanonicalCq twice = Canonicalize(once.cq);
  EXPECT_EQ(once.key, twice.key);
  EXPECT_EQ(once.cq.CanonicalKey(), twice.cq.CanonicalKey());
}

TEST(CanonicalTest, AlphaEquivalentQueriesShareKeys) {
  Cq a = MakeTriangle();
  Cq b = RenameVars(a);
  EXPECT_EQ(Canonicalize(a).key, Canonicalize(b).key);
  // Double renaming too: the key depends only on query shape.
  EXPECT_EQ(Canonicalize(a).key, Canonicalize(RenameVars(b)).key);
}

TEST(CanonicalTest, DistinctShapesGetDistinctKeys) {
  Cq triangle = MakeTriangle();
  // Same atoms but a different head: q(x) instead of q(x, y).
  Cq narrower;
  VarId x = narrower.AddVar("x");
  VarId y = narrower.AddVar("y");
  VarId z = narrower.AddVar("z");
  QTerm p = QTerm::Const(77);
  narrower.AddAtom(Atom(QTerm::Var(x), p, QTerm::Var(y)));
  narrower.AddAtom(Atom(QTerm::Var(y), p, QTerm::Var(z)));
  narrower.AddAtom(Atom(QTerm::Var(z), p, QTerm::Var(x)));
  narrower.AddHead(QTerm::Var(x));
  EXPECT_NE(Canonicalize(triangle).key, Canonicalize(narrower).key);
}

TEST(CanonicalTest, DegenerateIntervalCollapsesToClassicAtom) {
  // x type [C, C] ≡ x type C: a hierarchy interval that shrank to one id.
  Cq ranged;
  VarId x = ranged.AddVar("x");
  Atom a(QTerm::Var(x), QTerm::Const(1), QTerm::Const(40));
  a.range_pos = Atom::kRangeO;
  a.range_hi = 40;
  ranged.AddAtom(a);
  ranged.AddHead(QTerm::Var(x));

  Cq classic;
  VarId y = classic.AddVar("y");
  classic.AddAtom(Atom(QTerm::Var(y), QTerm::Const(1), QTerm::Const(40)));
  classic.AddHead(QTerm::Var(y));

  EXPECT_EQ(Canonicalize(ranged).key, Canonicalize(classic).key);
}

TEST(CanonicalTest, ProperIntervalStaysDistinctFromClassic) {
  Cq ranged;
  VarId x = ranged.AddVar("x");
  Atom a(QTerm::Var(x), QTerm::Const(1), QTerm::Const(40));
  a.range_pos = Atom::kRangeO;
  a.range_hi = 45;
  ranged.AddAtom(a);
  ranged.AddHead(QTerm::Var(x));

  Cq classic;
  VarId y = classic.AddVar("y");
  classic.AddAtom(Atom(QTerm::Var(y), QTerm::Const(1), QTerm::Const(40)));
  classic.AddHead(QTerm::Var(y));

  EXPECT_NE(Canonicalize(ranged).key, Canonicalize(classic).key);
}

TEST(CanonicalTest, DuplicateAtomsCollapse) {
  Cq q = MakeTriangle();
  Cq doubled = q;
  doubled.AddAtom(q.body()[0]);
  EXPECT_EQ(Canonicalize(q).key, Canonicalize(doubled).key);
}

TEST(CanonicalTest, FuzzGeneratedQueriesIdempotentAndAlphaInvariant) {
  // The property pair the cache's grouping key rests on, over the same
  // generator the fuzz harness draws from: canonicalize∘canonicalize is
  // canonicalize, and renaming never changes the key.
  for (uint64_t seed = 0; seed < 40; ++seed) {
    testing::Scenario sc = testing::GenerateScenario(seed, {});
    Rng rng(seed * 31 + 7);
    for (int trial = 0; trial < 4; ++trial) {
      Cq q = testing::GenerateQuery(sc, &rng, {});
      CanonicalCq once = Canonicalize(q);
      EXPECT_EQ(once.key, Canonicalize(once.cq).key)
          << "seed " << seed << " trial " << trial;
      EXPECT_EQ(once.key, Canonicalize(RenameVars(q)).key)
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(CanonicalTest, PlanKeyIsOrderSensitive) {
  // The full cache key must pin the exact member order — evaluation order
  // decides row order, and hits promise bit-identical replay.
  Cq a = MakeTriangle();
  Cq b;
  VarId x = b.AddVar("x");
  VarId y = b.AddVar("y");
  b.AddAtom(Atom(QTerm::Var(x), QTerm::Const(5), QTerm::Var(y)));
  b.AddHead(QTerm::Var(x));
  b.AddHead(QTerm::Var(y));

  Ucq ab({a, b});
  Ucq ba({b, a});
  EXPECT_NE(UcqPlanKey(ab), UcqPlanKey(ba));
  EXPECT_EQ(UcqPlanKey(ab), UcqPlanKey(Ucq({a, b})));
}

TEST(CanonicalTest, PlanKeyDistinguishesMemberCount) {
  Cq a = MakeTriangle();
  Ucq one({a});
  Ucq two({a, a});
  EXPECT_NE(UcqPlanKey(one), UcqPlanKey(two));
}

}  // namespace
}  // namespace query
}  // namespace rdfref
