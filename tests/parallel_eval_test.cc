#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/query_answering.h"
#include "datagen/lubm.h"
#include "engine/evaluator.h"
#include "federation/federation.h"
#include "query/sparql_parser.h"
#include "query/ucq.h"
#include "rdf/parser.h"

namespace rdfref {
namespace {

constexpr const char* kUbPrefix =
    "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n";

// -----------------------------------------------------------------------
// Parallel evaluation must be bit-identical to sequential evaluation.
// -----------------------------------------------------------------------

class ParallelEvalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::LubmConfig config;
    config.universities = 1;
    config.referenced_universities = 10;
    rdf::Graph graph;
    datagen::Lubm::Generate(config, &graph);
    answerer_ = std::make_unique<api::QueryAnswerer>(std::move(graph));
  }

  query::Cq Parse(const std::string& body) {
    auto q = query::ParseSparql(kUbPrefix + body, &answerer_->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  std::unique_ptr<api::QueryAnswerer> answerer_;
};

TEST_F(ParallelEvalTest, AnswersAreBitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> queries = {
      "SELECT ?x WHERE { ?x a ub:Person . }",
      "SELECT ?x ?d WHERE { ?x a ub:Professor . ?x ub:worksFor ?d . }",
      "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . ?x ub:memberOf ?z . }",
      "SELECT ?f ?c ?s WHERE { ?f ub:teacherOf ?c . "
      "?s ub:takesCourse ?c . ?s a ub:Student . }",
  };
  const std::vector<api::Strategy> strategies = {
      api::Strategy::kRefUcq, api::Strategy::kRefScq,
      api::Strategy::kRefGcov};
  for (const std::string& text : queries) {
    query::Cq q = Parse(text);
    for (api::Strategy strategy : strategies) {
      api::AnswerOptions sequential;
      sequential.threads = 1;
      auto base = answerer_->Answer(q, strategy, nullptr, sequential);
      ASSERT_TRUE(base.ok()) << base.status();
      for (int threads : {2, 4, 8}) {
        api::AnswerOptions parallel;
        parallel.threads = threads;
        auto got = answerer_->Answer(q, strategy, nullptr, parallel);
        ASSERT_TRUE(got.ok()) << got.status();
        // Bit-identical: same rows in the same order, no sorting applied.
        EXPECT_EQ(got->RowVectors(), base->RowVectors())
            << api::StrategyName(strategy) << " with " << threads
            << " threads on " << text;
        EXPECT_EQ(got->columns, base->columns);
      }
    }
  }
}

TEST_F(ParallelEvalTest, JucqProfileIsIdenticalAcrossThreadCounts) {
  query::Cq q = Parse(
      "SELECT ?x ?d WHERE { ?x a ub:Professor . ?x ub:worksFor ?d . }");
  api::AnswerOptions sequential;
  sequential.threads = 1;
  api::AnswerProfile base_profile;
  auto base =
      answerer_->Answer(q, api::Strategy::kRefScq, &base_profile, sequential);
  ASSERT_TRUE(base.ok()) << base.status();

  api::AnswerOptions parallel;
  parallel.threads = 4;
  api::AnswerProfile profile;
  auto got =
      answerer_->Answer(q, api::Strategy::kRefScq, &profile, parallel);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_EQ(profile.jucq.fragments.size(),
            base_profile.jucq.fragments.size());
  for (size_t i = 0; i < profile.jucq.fragments.size(); ++i) {
    EXPECT_EQ(profile.jucq.fragments[i].cover_fragment,
              base_profile.jucq.fragments[i].cover_fragment);
    EXPECT_EQ(profile.jucq.fragments[i].ucq_members,
              base_profile.jucq.fragments[i].ucq_members);
    EXPECT_EQ(profile.jucq.fragments[i].result_rows,
              base_profile.jucq.fragments[i].result_rows);
  }
}

TEST_F(ParallelEvalTest, DeadlineCancelsInsideASingleHugeCq) {
  // One disconnected CQ — a three-way cross product of unselective scans —
  // evaluated as a single-member UCQ: only the in-scan cancellation can
  // stop it, since there is no other CQ boundary to check at.
  query::Cq q = Parse(
      "SELECT ?x ?z ?s ?c ?f ?k WHERE { ?x ub:memberOf ?z . "
      "?s ub:takesCourse ?c . ?f ub:teacherOf ?k . }");
  storage::SnapshotPtr snap = answerer_->PinSnapshot();
  engine::Evaluator evaluator(snap.get());
  query::Ucq ucq({q});
  auto result = evaluator.EvaluateUcq(ucq, Deadline::AfterMicros(500));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("of 1 reformulation CQs"),
            std::string::npos)
      << result.status();
}

TEST_F(ParallelEvalTest, ParallelUcqReportsDeadlineWithMemberCounts) {
  query::Cq member = Parse(
      "SELECT ?x ?z ?s ?c WHERE { ?x ub:memberOf ?z . "
      "?s ub:takesCourse ?c . }");
  query::Ucq ucq({member, member, member, member});
  storage::SnapshotPtr snap = answerer_->PinSnapshot();
  engine::Evaluator evaluator(snap.get(), 4);
  auto result = evaluator.EvaluateUcq(ucq, Deadline::AfterMicros(200));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(result.status().message().find("of 4 reformulation CQs"),
            std::string::npos)
      << result.status();
}

TEST_F(ParallelEvalTest, EmptyAndSingleMemberUcqUnderParallelEvaluator) {
  storage::SnapshotPtr snap = answerer_->PinSnapshot();
  engine::Evaluator evaluator(snap.get(), 4);
  query::Ucq empty;
  auto none = evaluator.EvaluateUcq(empty, Deadline::Infinite());
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->NumRows(), 0u);

  query::Cq q = Parse("SELECT ?x WHERE { ?x a ub:Person . }");
  auto single = evaluator.EvaluateUcq(query::Ucq({q}), Deadline::Infinite());
  ASSERT_TRUE(single.ok());
  engine::Evaluator sequential(snap.get(), 1);
  auto base = sequential.EvaluateUcq(query::Ucq({q}), Deadline::Infinite());
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(single->RowVectors(), base->RowVectors());
}

TEST_F(ParallelEvalTest, ZeroResolvesToDefaultThreads) {
  storage::SnapshotPtr snap = answerer_->PinSnapshot();
  engine::Evaluator evaluator(snap.get(), 0);
  EXPECT_GE(evaluator.threads(), 2);
  evaluator.set_threads(1);
  EXPECT_EQ(evaluator.threads(), 1);
}

// -----------------------------------------------------------------------
// Parallel federation fan-out: identical answers, exact health accounting.
// -----------------------------------------------------------------------

class ParallelFederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(rdf::TurtleParser::ParseString(
                    "@prefix bib: <http://example.org/bib/> .\n"
                    "bib:doi1 a bib:Book .\n"
                    "bib:doi1 bib:writtenBy bib:borges .\n",
                    &facts_)
                    .ok());
    ASSERT_TRUE(rdf::TurtleParser::ParseString(
                    "@prefix bib: <http://example.org/bib/> .\n"
                    "bib:doi2 a bib:Book .\n"
                    "bib:doi2 bib:writtenBy bib:cortazar .\n",
                    &more_facts_)
                    .ok());
    ASSERT_TRUE(rdf::TurtleParser::ParseString(
                    "@prefix bib: <http://example.org/bib/> .\n"
                    "bib:Book rdfs:subClassOf bib:Publication .\n"
                    "bib:writtenBy rdfs:domain bib:Book .\n",
                    &schema_)
                    .ok());
  }

  query::Cq Parse(federation::Federation* fed, const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text, &fed->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  rdf::Graph facts_, more_facts_, schema_;
};

TEST_F(ParallelFederationTest, ParallelFanOutMatchesSequential) {
  federation::Federation fed;
  fed.AddEndpoint("facts", facts_);
  fed.AddEndpoint("more-facts", more_facts_);
  fed.AddEndpoint("ontology", schema_);

  query::Cq q = Parse(&fed, "SELECT ?x WHERE { ?x a bib:Publication . }");
  federation::FederationAnswerOptions sequential;
  sequential.threads = 1;
  auto base = fed.AnswerResilient(q, sequential);
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_TRUE(base->report.known_complete);
  EXPECT_EQ(base->table.NumRows(), 2u);  // doi1, doi2

  federation::FederationAnswerOptions parallel;
  parallel.threads = 4;
  auto got = fed.AnswerResilient(q, parallel);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_TRUE(got->report.known_complete);
  EXPECT_EQ(got->table.RowVectors(), base->table.RowVectors());
  EXPECT_EQ(got->table.columns, base->table.columns);
}

TEST_F(ParallelFederationTest, ParallelFanOutSurvivesAFlakyEndpoint) {
  federation::Federation fed;
  fed.AddEndpoint("facts", facts_);
  federation::EndpointOptions flaky;
  flaky.fault.failure_probability = 0.3;
  flaky.fault.seed = 7;
  fed.AddEndpoint("more-facts", more_facts_, flaky);
  fed.AddEndpoint("ontology", schema_);
  federation::ResilienceOptions resilience;
  resilience.retry.max_attempts = 10;
  // Keep the breaker out of the way: this test pins retry behaviour, and a
  // tripped breaker would (correctly) mark the skipped data as lost.
  resilience.breaker.failure_threshold = 1000;
  fed.set_resilience(resilience);

  query::Cq q = Parse(&fed, "SELECT ?x WHERE { ?x a bib:Publication . }");
  federation::FederationAnswerOptions options;
  options.threads = 4;
  options.allow_partial = true;
  auto got = fed.AnswerResilient(q, options);
  ASSERT_TRUE(got.ok()) << got.status();
  // With 8 attempts per request a 50% coin practically always lands; the
  // answer is complete and the retries are visible in the report.
  EXPECT_TRUE(got->report.known_complete);
  EXPECT_EQ(got->table.NumRows(), 2u);
}

TEST_F(ParallelFederationTest, ParallelFanOutReportsHardDownEndpoint) {
  federation::Federation fed;
  fed.AddEndpoint("facts", facts_);
  federation::EndpointOptions down;
  down.fault.hard_down = true;
  fed.AddEndpoint("dead", more_facts_, down);
  fed.AddEndpoint("ontology", schema_);

  query::Cq q = Parse(&fed, "SELECT ?x WHERE { ?x a bib:Publication . }");
  federation::FederationAnswerOptions options;
  options.threads = 4;
  options.allow_partial = true;
  auto got = fed.AnswerResilient(q, options);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_FALSE(got->report.known_complete);
  EXPECT_EQ(got->table.NumRows(), 1u);  // only doi1 is reachable
}

}  // namespace
}  // namespace rdfref
