#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/bibliography.h"
#include "datagen/dblp.h"
#include "datagen/geo.h"
#include "datagen/lubm.h"
#include "datagen/sp2b.h"
#include "rdf/parser.h"
#include "rdf/vocab.h"
#include "schema/schema.h"
#include "storage/serialize.h"
#include "storage/store.h"
#include "testing/scenario.h"
#include "testing/schema_check.h"

namespace rdfref {
namespace datagen {
namespace {

namespace vocab = rdf::vocab;

TEST(LubmTest, OntologyHasAllConstraintKinds) {
  rdf::Graph g;
  Lubm::AddOntology(&g);
  schema::Schema s = schema::Schema::FromGraph(g);
  EXPECT_GT(s.NumSubClass(), 30u);
  EXPECT_EQ(s.NumSubProperty(), 5u);
  EXPECT_GT(s.NumDomain(), 10u);
  EXPECT_GT(s.NumRange(), 5u);
}

TEST(LubmTest, SaturatedOntologyGrowsClosure) {
  rdf::Graph g;
  Lubm::AddOntology(&g);
  schema::Schema s = schema::Schema::FromGraph(g);
  size_t before = s.NumConstraints();
  s.Saturate();
  EXPECT_GT(s.NumConstraints(), before);
  // The deep professor chain: FullProfessor ⊑* Person.
  rdf::TermId full = g.dict().InternUri(Lubm::Uri("FullProfessor"));
  rdf::TermId person = g.dict().InternUri(Lubm::Uri("Person"));
  EXPECT_TRUE(s.SuperClassesOf(full).count(person));
  // headOf inherits memberOf's domain/range through two ⊑sp steps.
  rdf::TermId head_of = g.dict().InternUri(Lubm::Uri("headOf"));
  rdf::TermId org = g.dict().InternUri(Lubm::Uri("Organization"));
  EXPECT_TRUE(s.RangesOf(head_of).count(org));
}

TEST(LubmTest, GenerationIsDeterministic) {
  LubmConfig config;
  config.universities = 1;
  config.scale = 0.2;
  rdf::Graph g1, g2;
  Lubm::Generate(config, &g1);
  Lubm::Generate(config, &g2);
  EXPECT_EQ(g1.size(), g2.size());
}

TEST(LubmTest, ScaleGrowsData) {
  LubmConfig small, large;
  small.universities = 1;
  small.scale = 0.2;
  large.universities = 1;
  large.scale = 1.0;
  rdf::Graph gs, gl;
  Lubm::Generate(small, &gs);
  Lubm::Generate(large, &gl);
  EXPECT_GT(gl.size(), 2 * gs.size());
}

TEST(LubmTest, InstancesUseMostSpecificTypesOnly) {
  LubmConfig config;
  config.universities = 1;
  config.scale = 0.2;
  rdf::Graph g;
  Lubm::Generate(config, &g);
  storage::Store store(g);
  // Nobody is explicitly a Person/Faculty/Student: those are implicit.
  rdf::TermId person = g.dict().InternUri(Lubm::Uri("Person"));
  rdf::TermId faculty = g.dict().InternUri(Lubm::Uri("Faculty"));
  EXPECT_EQ(store.CountMatches(storage::kAny, vocab::kTypeId, person), 0u);
  EXPECT_EQ(store.CountMatches(storage::kAny, vocab::kTypeId, faculty), 0u);
  // But FullProfessors exist.
  rdf::TermId full = g.dict().InternUri(Lubm::Uri("FullProfessor"));
  EXPECT_GT(store.CountMatches(storage::kAny, vocab::kTypeId, full), 0u);
  // And faculty are attached by worksFor, not memberOf.
  rdf::TermId works = g.dict().InternUri(Lubm::Uri("worksFor"));
  EXPECT_GT(store.CountMatches(storage::kAny, works, storage::kAny), 0u);
}

TEST(LubmTest, DegreesReferencePoolUniversities) {
  LubmConfig config;
  config.universities = 1;
  config.scale = 0.2;
  config.referenced_universities = 10;
  rdf::Graph g;
  Lubm::Generate(config, &g);
  storage::Store store(g);
  rdf::TermId masters = g.dict().InternUri(Lubm::Uri("mastersDegreeFrom"));
  size_t total = store.CountMatches(storage::kAny, masters, storage::kAny);
  EXPECT_GT(total, 0u);
  size_t seen = 0;
  for (int i = 0; i < 10; ++i) {
    rdf::TermId univ = g.dict().InternUri(Lubm::UniversityUri(i));
    seen += store.CountMatches(storage::kAny, masters, univ);
  }
  EXPECT_EQ(seen, total);  // all targets come from the pool
}

TEST(BibliographyTest, MatchesFigure2) {
  rdf::Graph g;
  Bibliography::AddFigure2Graph(&g);
  EXPECT_EQ(g.size(), 9u);  // 5 data triples + 4 constraints
  EXPECT_EQ(g.CountSchemaTriples(), 4u);
}

TEST(DblpTest, GeneratesTypedPublications) {
  DblpConfig config;
  config.publications = 200;
  rdf::Graph g;
  Dblp::Generate(config, &g);
  storage::Store store(g);
  rdf::TermId creator = g.dict().InternUri(Dblp::Uri("creator"));
  rdf::TermId first = g.dict().InternUri(Dblp::Uri("firstAuthor"));
  EXPECT_GT(store.CountMatches(storage::kAny, first, storage::kAny), 0u);
  // Authors are never explicitly typed (reasoning needed).
  rdf::TermId author = g.dict().InternUri(Dblp::Uri("Author"));
  EXPECT_EQ(store.CountMatches(storage::kAny, vocab::kTypeId, author), 0u);
  (void)creator;
}

TEST(GeoTest, GeneratesAdministrativeHierarchy) {
  GeoConfig config;
  config.regions = 2;
  rdf::Graph g;
  Geo::Generate(config, &g);
  storage::Store store(g);
  rdf::TermId part_of = g.dict().InternUri(Geo::Uri("partOf"));
  rdf::TermId commune = g.dict().InternUri(Geo::Uri("Commune"));
  EXPECT_GT(store.CountMatches(storage::kAny, part_of, storage::kAny), 50u);
  EXPECT_GT(store.CountMatches(storage::kAny, vocab::kTypeId, commune), 20u);
  // locatedIn never asserted: it is implied by partOf ⊑ locatedIn.
  rdf::TermId located = g.dict().InternUri(Geo::Uri("locatedIn"));
  EXPECT_EQ(store.CountMatches(storage::kAny, located, storage::kAny), 0u);
}

TEST(GeneratorsTest, AllDeterministic) {
  rdf::Graph d1, d2, g1, g2;
  Dblp::Generate({100, 3}, &d1);
  Dblp::Generate({100, 3}, &d2);
  EXPECT_EQ(d1.size(), d2.size());
  Geo::Generate({2, 5}, &g1);
  Geo::Generate({2, 5}, &g2);
  EXPECT_EQ(g1.size(), g2.size());
}

// ---------------------------------------------------------------------------
// Schema-consistency invariants: every generator must emit graphs whose
// asserted classes and properties exist in their own RDFS schema, with
// domains/ranges respected (see testing::CheckSchemaConsistency).

TEST(SchemaConsistencyTest, LubmIsSchemaConsistent) {
  LubmConfig config;
  config.universities = 1;
  config.scale = 0.3;
  rdf::Graph g;
  Lubm::Generate(config, &g);
  auto violations = testing::CheckSchemaConsistency(g);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s), first: " << violations.front();
}

TEST(SchemaConsistencyTest, DblpIsSchemaConsistent) {
  DblpConfig config;
  config.publications = 300;
  rdf::Graph g;
  Dblp::Generate(config, &g);
  auto violations = testing::CheckSchemaConsistency(g);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s), first: " << violations.front();
}

TEST(SchemaConsistencyTest, GeoIsSchemaConsistent) {
  GeoConfig config;
  config.regions = 2;
  rdf::Graph g;
  Geo::Generate(config, &g);
  auto violations = testing::CheckSchemaConsistency(g);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s), first: " << violations.front();
}

TEST(SchemaConsistencyTest, BibliographyConsistentModuloAttributes) {
  // Figure 2 is reproduced verbatim from the paper: hasTitle / hasName /
  // publishedIn carry literal values and are deliberately not constrained.
  rdf::Graph g;
  Bibliography::AddFigure2Graph(&g);
  testing::SchemaCheckOptions relaxed;
  relaxed.allow_undeclared_literal_properties = true;
  EXPECT_TRUE(testing::CheckSchemaConsistency(g, relaxed).empty());
  // Strict mode reports exactly those three attribute properties.
  auto strict = testing::CheckSchemaConsistency(g);
  EXPECT_EQ(strict.size(), 3u);
}

TEST(SchemaConsistencyTest, CheckerFlagsViolations) {
  rdf::Graph g;
  rdf::Dictionary& dict = g.dict();
  rdf::TermId c = dict.InternUri("http://t/C");
  rdf::TermId d = dict.InternUri("http://t/D");
  rdf::TermId p = dict.InternUri("http://t/p");
  rdf::TermId s = dict.InternUri("http://t/s");
  g.Add(c, vocab::kSubClassOfId, d);
  g.Add(p, vocab::kRangeId, d);
  g.Add(s, vocab::kTypeId, dict.InternUri("http://t/Undeclared"));
  g.Add(s, p, dict.InternLiteral("not a resource"));
  g.Add(s, dict.InternUri("http://t/q"), d);
  auto violations = testing::CheckSchemaConsistency(g);
  ASSERT_EQ(violations.size(), 3u);
}

// ---------------------------------------------------------------------------
// SP2Bench-style scenario (sp2b): the workload-diversity generator — deeper
// hierarchies than LUBM, cyclic Zipf-skewed citations, literal attributes.

TEST(Sp2bTest, HierarchiesAreDeeperThanLubm) {
  rdf::Graph g;
  Sp2b::AddOntology(&g);
  schema::Schema s = schema::Schema::FromGraph(g);
  s.Saturate();
  // The article chain: BenchmarkArticle ⊑* Work crosses 7 subClassOf edges.
  rdf::TermId benchmark = g.dict().InternUri(Sp2b::Uri("BenchmarkArticle"));
  rdf::TermId work = g.dict().InternUri(Sp2b::Uri("Work"));
  EXPECT_TRUE(s.SuperClassesOf(benchmark).count(work));
  EXPECT_GE(s.SuperClassesOf(benchmark).size(), 7u);
  // The citation chain: reproduces ⊑* relatedTo crosses 4 subPropertyOf
  // edges (deeper than any LUBM property chain).
  rdf::TermId reproduces = g.dict().InternUri(Sp2b::Uri("reproduces"));
  rdf::TermId related = g.dict().InternUri(Sp2b::Uri("relatedTo"));
  EXPECT_TRUE(s.SuperPropertiesOf(reproduces).count(related));
  EXPECT_GE(s.SuperPropertiesOf(reproduces).size(), 4u);
}

TEST(Sp2bTest, GenerationIsDeterministic) {
  Sp2bConfig config;
  config.documents = 200;
  rdf::Graph g1, g2;
  Sp2b::Generate(config, &g1);
  Sp2b::Generate(config, &g2);
  ASSERT_EQ(g1.size(), g2.size());
  EXPECT_EQ(rdf::ToNTriples(g1), rdf::ToNTriples(g2));
}

TEST(Sp2bTest, ScaleGrowsData) {
  Sp2bConfig small, large;
  small.documents = large.documents = 400;
  small.scale = 0.25;
  large.scale = 1.0;
  rdf::Graph gs, gl;
  Sp2b::Generate(small, &gs);
  Sp2b::Generate(large, &gl);
  EXPECT_GT(gl.size(), 2 * gs.size());
}

TEST(Sp2bTest, InstancesUseMostSpecificTypesOnly) {
  Sp2bConfig config;
  config.documents = 300;
  rdf::Graph g;
  Sp2b::Generate(config, &g);
  storage::Store store(g);
  // Interior classes are never asserted — reasoning must supply them.
  for (const char* interior :
       {"Work", "Document", "Publication", "Article", "JournalArticle",
        "Person", "Author", "Venue"}) {
    rdf::TermId c = g.dict().InternUri(Sp2b::Uri(interior));
    EXPECT_EQ(store.CountMatches(storage::kAny, vocab::kTypeId, c), 0u)
        << interior;
  }
  // Leaves exist.
  rdf::TermId research = g.dict().InternUri(Sp2b::Uri("ResearchArticle"));
  EXPECT_GT(store.CountMatches(storage::kAny, vocab::kTypeId, research), 0u);
  // Citations are asserted via cites and its sub-properties, never via the
  // abstract ancestors references/relatedTo.
  rdf::TermId references = g.dict().InternUri(Sp2b::Uri("references"));
  rdf::TermId related = g.dict().InternUri(Sp2b::Uri("relatedTo"));
  EXPECT_EQ(store.CountMatches(storage::kAny, references, storage::kAny), 0u);
  EXPECT_EQ(store.CountMatches(storage::kAny, related, storage::kAny), 0u);
}

TEST(Sp2bTest, CitationGraphHasCycles) {
  Sp2bConfig config;
  config.documents = 60;
  rdf::Graph g;
  Sp2b::Generate(config, &g);
  storage::Store store(g);
  // The guaranteed tight cycle: doc0 and doc1 cite each other.
  rdf::TermId d0 = g.dict().InternUri(Sp2b::DocumentUri(0));
  rdf::TermId d1 = g.dict().InternUri(Sp2b::DocumentUri(1));
  rdf::TermId cites = g.dict().InternUri(Sp2b::Uri("cites"));
  EXPECT_EQ(store.CountMatches(d0, cites, d1), 1u);
  EXPECT_EQ(store.CountMatches(d1, cites, d0), 1u);
}

TEST(Sp2bTest, CitationPopularityIsZipfSkewed) {
  Sp2bConfig config;
  config.documents = 500;
  rdf::Graph g;
  Sp2b::Generate(config, &g);
  storage::Store store(g);
  rdf::TermId cites = g.dict().InternUri(Sp2b::Uri("cites"));
  // The head of the popularity ranking (doc 0) collects far more in-edges
  // than a mid-tail document — the "classic papers" effect uniform draws
  // never produce.
  rdf::TermId d0 = g.dict().InternUri(Sp2b::DocumentUri(0));
  size_t head = store.CountMatches(storage::kAny, cites, d0);
  size_t tail = 0;
  for (int i = 200; i < 210; ++i) {
    rdf::TermId d = g.dict().InternUri(Sp2b::DocumentUri(i));
    tail += store.CountMatches(storage::kAny, cites, d);
  }
  EXPECT_GT(head, tail);  // one head doc out-draws ten tail docs combined
}

TEST(Sp2bTest, ZipfSamplerIsSkewedAndUniformAtZero) {
  Rng rng(7);
  ZipfSampler zipf(100, 1.0);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Sample(&rng)];
  EXPECT_GT(counts[0], 4 * counts[50]);  // rank 0 ≫ mid-tail under s=1
  ZipfSampler uniform(100, 0.0);
  std::vector<int> ucounts(100, 0);
  for (int i = 0; i < 10000; ++i) ++ucounts[uniform.Sample(&rng)];
  EXPECT_LT(ucounts[0], 3 * ucounts[50]);  // s=0 degenerates to uniform
}

TEST(SchemaConsistencyTest, Sp2bIsSchemaConsistentStrict) {
  Sp2bConfig config;
  config.documents = 300;
  rdf::Graph g;
  Sp2b::Generate(config, &g);
  // Strict mode: every literal attribute (title, year, ...) is declared
  // with a domain, so even the strict checker stays clean.
  auto violations = testing::CheckSchemaConsistency(g);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s), first: " << violations.front();
}

TEST(SchemaConsistencyTest, Sp2bUndeclaredAttributeNeedsRelaxedMode) {
  Sp2bConfig config;
  config.documents = 20;
  rdf::Graph g;
  Sp2b::Generate(config, &g);
  // An ad-hoc literal attribute outside the ontology: strict flags it,
  // literal-attribute mode tolerates it.
  rdf::TermId doc = g.dict().InternUri(Sp2b::DocumentUri(0));
  g.Add(doc, g.dict().InternUri(Sp2b::Uri("doi")),
        g.dict().InternLiteral("10.1000/xyz"));
  auto strict = testing::CheckSchemaConsistency(g);
  EXPECT_EQ(strict.size(), 1u);
  testing::SchemaCheckOptions relaxed;
  relaxed.allow_undeclared_literal_properties = true;
  EXPECT_TRUE(testing::CheckSchemaConsistency(g, relaxed).empty());
}

TEST(Sp2bTest, ScenarioSourceBuildsConsistentPools) {
  testing::ScenarioOptions options;
  options.source = testing::ScenarioSource::kSp2b;
  testing::Scenario sc = testing::GenerateScenario(42, options);
  EXPECT_FALSE(sc.classes.empty());
  EXPECT_FALSE(sc.properties.empty());
  EXPECT_FALSE(sc.subjects.empty());
  EXPECT_FALSE(sc.literals.empty());
  EXPECT_FALSE(sc.schema_triples.empty());
  EXPECT_FALSE(sc.data_triples.empty());
  // Partition is exact: schema + data == the whole graph.
  EXPECT_EQ(sc.schema_triples.size() + sc.data_triples.size(),
            sc.graph.size());
  // Deterministic per seed.
  testing::Scenario sc2 = testing::GenerateScenario(42, options);
  EXPECT_EQ(rdf::ToNTriples(sc.graph), rdf::ToNTriples(sc2.graph));
  // And the shrinker's rebuild path round-trips it id-identically.
  testing::Scenario restricted =
      testing::RestrictScenario(sc, sc.schema_triples, sc.data_triples);
  EXPECT_EQ(rdf::ToNTriples(restricted.graph), rdf::ToNTriples(sc.graph));
}

TEST(Sp2bTest, SerializeRoundTrip) {
  Sp2bConfig config;
  config.documents = 80;
  rdf::Graph g;
  Sp2b::Generate(config, &g);
  const std::string path =
      std::string(::testing::TempDir()) + "/sp2b.rdfb";
  ASSERT_TRUE(storage::SaveGraph(g, path).ok());
  auto loaded = storage::LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(rdf::ToNTriples(*loaded), rdf::ToNTriples(g));
  std::remove(path.c_str());
}

TEST(SchemaConsistencyTest, FuzzScenariosAreSchemaConsistent) {
  // The fuzz generator's scenarios draw all constants from their own schema
  // pools; its graphs must satisfy the same invariants (properties used in
  // data may still lack constraints — allow literal attributes).
  for (uint64_t seed = 0; seed < 10; ++seed) {
    testing::Scenario sc = testing::GenerateScenario(seed);
    for (const rdf::Triple& t : sc.graph.triples()) {
      EXPECT_FALSE(sc.graph.dict().Lookup(t.s).is_literal());
    }
  }
}

}  // namespace
}  // namespace datagen
}  // namespace rdfref
