#include "query/cq.h"

#include <gtest/gtest.h>

#include "query/ucq.h"

#include "rdf/vocab.h"

namespace rdfref {
namespace query {
namespace {

Cq MakeTriangle() {
  // q(x, y) :- x p y, y p z, z p x.
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  VarId z = q.AddVar("z");
  QTerm p = QTerm::Const(77);
  q.AddAtom(Atom(QTerm::Var(x), p, QTerm::Var(y)));
  q.AddAtom(Atom(QTerm::Var(y), p, QTerm::Var(z)));
  q.AddAtom(Atom(QTerm::Var(z), p, QTerm::Var(x)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Var(y));
  return q;
}

TEST(CqTest, VarsAndHeads) {
  Cq q = MakeTriangle();
  EXPECT_EQ(q.num_vars(), 3u);
  EXPECT_EQ(q.BodyVars().size(), 3u);
  EXPECT_EQ(q.HeadVars().size(), 2u);
  EXPECT_TRUE(q.IsSafe());
}

TEST(CqTest, UnsafeQueryDetected) {
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(1), QTerm::Const(2)));
  q.AddHead(QTerm::Var(y));  // y not in body
  EXPECT_FALSE(q.IsSafe());
}

TEST(CqTest, SubstituteReplacesEverywhere) {
  Cq q = MakeTriangle();
  q.Substitute(0, 42);  // x := constant 42
  EXPECT_FALSE(q.head()[0].is_var);
  EXPECT_EQ(q.head()[0].term(), 42u);
  EXPECT_FALSE(q.body()[0].s.is_var);
  EXPECT_FALSE(q.body()[2].o.is_var);
  EXPECT_TRUE(q.body()[0].o.is_var);  // y untouched
}

TEST(CqTest, CanonicalKeyInvariantUnderRenaming) {
  Cq a = MakeTriangle();
  // Same query with variables declared in a different order.
  Cq b;
  VarId z = b.AddVar("zz");
  VarId x = b.AddVar("xx");
  VarId y = b.AddVar("yy");
  QTerm p = QTerm::Const(77);
  b.AddAtom(Atom(QTerm::Var(x), p, QTerm::Var(y)));
  b.AddAtom(Atom(QTerm::Var(y), p, QTerm::Var(z)));
  b.AddAtom(Atom(QTerm::Var(z), p, QTerm::Var(x)));
  b.AddHead(QTerm::Var(x));
  b.AddHead(QTerm::Var(y));
  EXPECT_EQ(a.CanonicalKey(), b.CanonicalKey());
}

TEST(CqTest, CanonicalKeyDistinguishesConstants) {
  Cq a, b;
  VarId xa = a.AddVar("x");
  a.AddAtom(Atom(QTerm::Var(xa), QTerm::Const(1), QTerm::Const(2)));
  a.AddHead(QTerm::Var(xa));
  VarId xb = b.AddVar("x");
  b.AddAtom(Atom(QTerm::Var(xb), QTerm::Const(1), QTerm::Const(3)));
  b.AddHead(QTerm::Var(xb));
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST(CqTest, CanonicalKeyDistinguishesVarFromConst) {
  Cq a, b;
  VarId xa = a.AddVar("x");
  VarId ya = a.AddVar("y");
  a.AddAtom(Atom(QTerm::Var(xa), QTerm::Const(1), QTerm::Var(ya)));
  a.AddHead(QTerm::Var(xa));
  VarId xb = b.AddVar("x");
  b.AddAtom(Atom(QTerm::Var(xb), QTerm::Const(1), QTerm::Const(9)));
  b.AddHead(QTerm::Var(xb));
  EXPECT_NE(a.CanonicalKey(), b.CanonicalKey());
}

TEST(CqTest, FreshVarsGetDistinctNames) {
  Cq q;
  VarId f1 = q.FreshVar();
  VarId f2 = q.FreshVar();
  EXPECT_NE(f1, f2);
  EXPECT_NE(q.var_name(f1), q.var_name(f2));
}

TEST(CqTest, FragmentQueryHeadsAndBodies) {
  // q(x) :- x p y (t0), y p z (t1), z q w (t2).
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  VarId z = q.AddVar("z");
  VarId w = q.AddVar("w");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(7), QTerm::Var(y)));
  q.AddAtom(Atom(QTerm::Var(y), QTerm::Const(7), QTerm::Var(z)));
  q.AddAtom(Atom(QTerm::Var(z), QTerm::Const(8), QTerm::Var(w)));
  q.AddHead(QTerm::Var(x));

  // Fragment {t0, t1} with z shared with the other fragment.
  Cq fragment = q.FragmentQuery({0, 1}, {z});
  EXPECT_EQ(fragment.body().size(), 2u);
  // Head: x (query head var in fragment) then z (shared).
  ASSERT_EQ(fragment.head().size(), 2u);
  EXPECT_EQ(fragment.head()[0].var(), x);
  EXPECT_EQ(fragment.head()[1].var(), z);
}

TEST(CqTest, FragmentQuerySkipsAbsentVars) {
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(7), QTerm::Const(3)));
  q.AddAtom(Atom(QTerm::Var(y), QTerm::Const(7), QTerm::Const(4)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Var(y));
  Cq fragment = q.FragmentQuery({0}, {});
  ASSERT_EQ(fragment.head().size(), 1u);
  EXPECT_EQ(fragment.head()[0].var(), x);
}

TEST(CqTest, ToStringRendersQuery) {
  rdf::Dictionary dict;
  rdf::TermId p = dict.InternUri("http://ex/p");
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(p), QTerm::Const(p)));
  q.AddHead(QTerm::Var(x));
  std::string s = q.ToString(dict);
  EXPECT_NE(s.find("?x"), std::string::npos);
  EXPECT_NE(s.find("<http://ex/p>"), std::string::npos);
}

TEST(UcqTest, ArityAndToString) {
  rdf::Dictionary dict;
  rdf::TermId p = dict.InternUri("http://ex/p");
  Cq member;
  VarId x = member.AddVar("x");
  member.AddAtom(Atom(QTerm::Var(x), QTerm::Const(p), QTerm::Const(p)));
  member.AddHead(QTerm::Var(x));

  Ucq empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.arity(), 0u);

  Ucq ucq({member, member, member});
  EXPECT_EQ(ucq.size(), 3u);
  EXPECT_EQ(ucq.arity(), 1u);
  std::string rendered = ucq.ToString(dict, 2);
  EXPECT_NE(rendered.find("UCQ[3]"), std::string::npos);
  EXPECT_NE(rendered.find("1 more"), std::string::npos);
}

TEST(CqTest, ResourceVarsTrackedAndCleared) {
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(3), QTerm::Const(4)));
  q.AddHead(QTerm::Var(x));
  q.AddResourceVar(x);
  EXPECT_TRUE(q.resource_vars().count(x));
  // Canonical keys distinguish resource-constrained twins.
  Cq twin = q;
  Cq unconstrained;
  VarId y = unconstrained.AddVar("x");
  unconstrained.AddAtom(Atom(QTerm::Var(y), QTerm::Const(3), QTerm::Const(4)));
  unconstrained.AddHead(QTerm::Var(y));
  EXPECT_EQ(q.CanonicalKey(), twin.CanonicalKey());
  EXPECT_NE(q.CanonicalKey(), unconstrained.CanonicalKey());
  // Substituting the variable discharges the constraint.
  q.Substitute(x, 99);
  EXPECT_FALSE(q.resource_vars().count(x));
}

}  // namespace
}  // namespace query
}  // namespace rdfref
