#include "schema/schema.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfref {
namespace schema {
namespace {

namespace vocab = rdf::vocab;

class SchemaTest : public ::testing::Test {
 protected:
  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }
  rdf::Graph graph_;
};

TEST_F(SchemaTest, FromGraphExtractsAllConstraintKinds) {
  graph_.Add(U("Book"), vocab::kSubClassOfId, U("Publication"));
  graph_.Add(U("writtenBy"), vocab::kSubPropertyOfId, U("hasAuthor"));
  graph_.Add(U("writtenBy"), vocab::kDomainId, U("Book"));
  graph_.Add(U("writtenBy"), vocab::kRangeId, U("Person"));
  graph_.Add(U("x"), vocab::kTypeId, U("Book"));  // not a constraint

  Schema s = Schema::FromGraph(graph_);
  EXPECT_EQ(s.NumSubClass(), 1u);
  EXPECT_EQ(s.NumSubProperty(), 1u);
  EXPECT_EQ(s.NumDomain(), 1u);
  EXPECT_EQ(s.NumRange(), 1u);
}

TEST_F(SchemaTest, SubClassTransitivity) {
  Schema s;
  s.AddSubClass(U("A"), U("B"));
  s.AddSubClass(U("B"), U("C"));
  s.AddSubClass(U("C"), U("D"));
  s.Saturate();
  EXPECT_TRUE(s.SuperClassesOf(U("A")).count(U("D")));
  EXPECT_TRUE(s.SubClassesOf(U("D")).count(U("A")));
  EXPECT_EQ(s.SuperClassesOf(U("A")).size(), 3u);
  EXPECT_EQ(s.NumSubClass(), 6u);  // 3 asserted + 3 derived
}

TEST_F(SchemaTest, SubPropertyTransitivity) {
  Schema s;
  s.AddSubProperty(U("headOf"), U("worksFor"));
  s.AddSubProperty(U("worksFor"), U("memberOf"));
  s.Saturate();
  EXPECT_TRUE(s.SubPropertiesOf(U("memberOf")).count(U("headOf")));
  EXPECT_TRUE(s.SubPropertiesOf(U("memberOf")).count(U("worksFor")));
}

TEST_F(SchemaTest, DomainPropagatesUpClassHierarchy) {
  Schema s;
  s.AddDomain(U("writtenBy"), U("Book"));
  s.AddSubClass(U("Book"), U("Publication"));
  s.Saturate();
  EXPECT_TRUE(s.DomainsOf(U("writtenBy")).count(U("Publication")));
  EXPECT_TRUE(s.DomainPropertiesOf(U("Publication")).count(U("writtenBy")));
}

TEST_F(SchemaTest, RangePropagatesUpClassHierarchy) {
  Schema s;
  s.AddRange(U("writtenBy"), U("Author"));
  s.AddSubClass(U("Author"), U("Person"));
  s.Saturate();
  EXPECT_TRUE(s.RangesOf(U("writtenBy")).count(U("Person")));
}

TEST_F(SchemaTest, DomainRangeInheritedBySubProperties) {
  Schema s;
  s.AddSubProperty(U("writtenBy"), U("hasAuthor"));
  s.AddDomain(U("hasAuthor"), U("Publication"));
  s.AddRange(U("hasAuthor"), U("Person"));
  s.Saturate();
  EXPECT_TRUE(s.DomainsOf(U("writtenBy")).count(U("Publication")));
  EXPECT_TRUE(s.RangesOf(U("writtenBy")).count(U("Person")));
}

TEST_F(SchemaTest, CombinedInheritanceThroughBothHierarchies) {
  Schema s;
  // p ⊑sp q, q ←d C, C ⊑sc D  ⇒  p ←d D.
  s.AddSubProperty(U("p"), U("q"));
  s.AddDomain(U("q"), U("C"));
  s.AddSubClass(U("C"), U("D"));
  s.Saturate();
  EXPECT_TRUE(s.DomainsOf(U("p")).count(U("D")));
}

TEST_F(SchemaTest, SaturateIsIdempotent) {
  Schema s;
  s.AddSubClass(U("A"), U("B"));
  s.AddSubClass(U("B"), U("C"));
  s.AddDomain(U("p"), U("A"));
  s.Saturate();
  size_t n1 = s.NumConstraints();
  s.Saturate();
  EXPECT_EQ(s.NumConstraints(), n1);
  EXPECT_TRUE(s.saturated());
}

TEST_F(SchemaTest, ReflexiveConstraintsIgnored) {
  Schema s;
  s.AddSubClass(U("A"), U("A"));
  s.AddSubProperty(U("p"), U("p"));
  EXPECT_EQ(s.NumSubClass(), 0u);
  EXPECT_EQ(s.NumSubProperty(), 0u);
}

TEST_F(SchemaTest, CyclesCloseWithReflexivePairs) {
  Schema s;
  s.AddSubClass(U("A"), U("B"));
  s.AddSubClass(U("B"), U("A"));
  s.Saturate();
  // A ⊑ B ⊑ A: rdfs11 transitivity entails the reflexive pairs too. The
  // closure used to filter them, diverging from the Datalog engine on
  // queries over schema positions (found by the differential fuzzer).
  EXPECT_TRUE(s.SuperClassesOf(U("A")).count(U("B")));
  EXPECT_TRUE(s.SuperClassesOf(U("B")).count(U("A")));
  EXPECT_TRUE(s.SuperClassesOf(U("A")).count(U("A")));
  EXPECT_TRUE(s.SuperClassesOf(U("B")).count(U("B")));
  // Acyclic chains still produce no reflexive pairs.
  Schema acyclic;
  acyclic.AddSubClass(U("C"), U("D"));
  acyclic.Saturate();
  EXPECT_FALSE(acyclic.SuperClassesOf(U("C")).count(U("C")));
  EXPECT_FALSE(acyclic.SuperClassesOf(U("D")).count(U("D")));
}

TEST_F(SchemaTest, EmitTriplesWritesClosure) {
  Schema s;
  s.AddSubClass(U("A"), U("B"));
  s.AddSubClass(U("B"), U("C"));
  s.Saturate();
  rdf::Graph out;
  // Note: ids must agree; reuse the same dictionary by interning first.
  // (In library use the schema and graph share the answerer's dictionary.)
  s.EmitTriples(&graph_);
  EXPECT_TRUE(graph_.Contains(
      rdf::Triple(U("A"), vocab::kSubClassOfId, U("C"))));
}

TEST_F(SchemaTest, AllClassesAndProperties) {
  Schema s;
  s.AddSubClass(U("A"), U("B"));
  s.AddDomain(U("p"), U("C"));
  s.AddRange(U("q"), U("D"));
  EXPECT_EQ(s.AllClasses().size(), 4u);
  EXPECT_EQ(s.AllProperties().size(), 2u);
}

TEST_F(SchemaTest, LookupsOnUnknownIdsReturnEmpty) {
  Schema s;
  s.Saturate();
  EXPECT_TRUE(s.SubClassesOf(U("Nothing")).empty());
  EXPECT_TRUE(s.DomainsOf(U("nothing")).empty());
  EXPECT_TRUE(s.RangePropertiesOf(U("Nothing")).empty());
}

}  // namespace
}  // namespace schema
}  // namespace rdfref
