#include "datalog/rdf_datalog.h"

#include <gtest/gtest.h>

#include "datagen/bibliography.h"
#include "query/sparql_parser.h"
#include "rdf/vocab.h"
#include "schema/schema.h"
#include "storage/store.h"

namespace rdfref {
namespace datalog {
namespace {

class RdfDatalogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::Bibliography::AddFigure2Graph(&graph_);
    // As in the answerer: saturated schema stored alongside the data.
    schema::Schema schema = schema::Schema::FromGraph(graph_);
    schema.Saturate();
    schema.EmitTriples(&graph_);
    store_ = std::make_unique<storage::Store>(graph_);
    dat_ = std::make_unique<DatalogAnswerer>(store_.get());
  }

  query::Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  rdf::Graph graph_;
  std::unique_ptr<storage::Store> store_;
  std::unique_ptr<DatalogAnswerer> dat_;
};

TEST_F(RdfDatalogTest, ClosureContainsImplicitTriples) {
  dat_->EnsureClosure();
  EXPECT_GT(dat_->closure_size(), store_->size());
  EXPECT_GE(dat_->closure_millis(), 0.0);
}

TEST_F(RdfDatalogTest, AnswersSection3Query) {
  auto table = dat_->Answer(Parse(
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . "
      "?x1 ?x4 \"1949\" . }"));
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->NumRows(), 1u);
  EXPECT_EQ(store_->dict().Lookup(table->row(0)[0]).lexical,
            "J. L. Borges");
}

TEST_F(RdfDatalogTest, ImplicitTypesAnswered) {
  auto table = dat_->Answer(
      Parse("SELECT ?x WHERE { ?x a bib:Publication . }"));
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);  // doi1, via Book ⊑ Publication
  auto person = dat_->Answer(Parse("SELECT ?x WHERE { ?x a bib:Person . }"));
  ASSERT_TRUE(person.ok());
  EXPECT_EQ(person->NumRows(), 1u);  // _:b1, via range of writtenBy
}

TEST_F(RdfDatalogTest, LiteralsNotTyped) {
  // "1949" must not become a Publication/Person through the range rule.
  auto table = dat_->Answer(Parse("SELECT ?x ?c WHERE { ?x a ?c . }"));
  ASSERT_TRUE(table.ok());
  for (size_t r = 0; r < table->NumRows(); ++r) {
    EXPECT_FALSE(store_->dict().Lookup(table->row(r)[0]).is_literal());
  }
}

TEST_F(RdfDatalogTest, EmptyQueryRejected) {
  query::Cq empty;
  EXPECT_FALSE(dat_->Answer(empty).ok());
}

TEST_F(RdfDatalogTest, ConstantHeadSlotsEmitted) {
  // After parsing, bind the head var by substitution to mimic reformulated
  // members with constant head slots.
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  auto table = dat_->Answer(q);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);
}

}  // namespace
}  // namespace datalog
}  // namespace rdfref
