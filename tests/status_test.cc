#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace rdfref {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad atom");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad atom");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad atom");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kParseError), "PARSE_ERROR");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kDeadlineExceeded),
               "DEADLINE_EXCEEDED");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnavailable), "UNAVAILABLE");
}

TEST(StatusTest, DeadlineExceededFactory) {
  Status s = Status::DeadlineExceeded("query budget spent");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(s.ToString(), "DEADLINE_EXCEEDED: query budget spent");
}

TEST(StatusTest, UnavailableFactory) {
  Status s = Status::Unavailable("endpoint down");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_EQ(s.ToString(), "UNAVAILABLE: endpoint down");
}

Status FailingOperation() { return Status::Internal("boom"); }

Status PropagatingOperation() {
  RDFREF_RETURN_NOT_OK(FailingOperation());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_EQ(PropagatingOperation(), Status::Internal("boom"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubledPositive(int x) {
  RDFREF_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnPropagatesAndAssigns) {
  Result<int> ok = DoubledPositive(4);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 8);
  Result<int> err = DoubledPositive(0);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

}  // namespace
}  // namespace rdfref
