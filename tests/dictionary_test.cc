#include "rdf/dictionary.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfref {
namespace rdf {
namespace {

TEST(DictionaryTest, BuiltinsHaveStableIds) {
  Dictionary dict;
  EXPECT_EQ(dict.Find(Term::Uri(vocab::kRdfType)), vocab::kTypeId);
  EXPECT_EQ(dict.Find(Term::Uri(vocab::kRdfsSubClassOf)),
            vocab::kSubClassOfId);
  EXPECT_EQ(dict.Find(Term::Uri(vocab::kRdfsSubPropertyOf)),
            vocab::kSubPropertyOfId);
  EXPECT_EQ(dict.Find(Term::Uri(vocab::kRdfsDomain)), vocab::kDomainId);
  EXPECT_EQ(dict.Find(Term::Uri(vocab::kRdfsRange)), vocab::kRangeId);
  EXPECT_EQ(dict.size(), static_cast<size_t>(vocab::kNumBuiltins));
}

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.InternUri("http://example.org/a");
  TermId b = dict.InternUri("http://example.org/a");
  EXPECT_EQ(a, b);
  EXPECT_EQ(dict.size(), static_cast<size_t>(vocab::kNumBuiltins) + 1);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  Term uri = Term::Uri("http://example.org/x");
  Term lit = Term::Literal("El Aleph");
  Term blank = Term::Blank("b1");
  TermId iu = dict.Intern(uri);
  TermId il = dict.Intern(lit);
  TermId ib = dict.Intern(blank);
  EXPECT_EQ(dict.Lookup(iu), uri);
  EXPECT_EQ(dict.Lookup(il), lit);
  EXPECT_EQ(dict.Lookup(ib), blank);
}

TEST(DictionaryTest, KindsDistinguishEqualLexicalForms) {
  Dictionary dict;
  TermId as_uri = dict.InternUri("1949");
  TermId as_lit = dict.InternLiteral("1949");
  TermId as_blank = dict.InternBlank("1949");
  EXPECT_NE(as_uri, as_lit);
  EXPECT_NE(as_uri, as_blank);
  EXPECT_NE(as_lit, as_blank);
}

TEST(DictionaryTest, FindWithoutIntern) {
  Dictionary dict;
  EXPECT_EQ(dict.Find(Term::Uri("http://nowhere")), kInvalidTermId);
  dict.InternUri("http://nowhere");
  EXPECT_NE(dict.Find(Term::Uri("http://nowhere")), kInvalidTermId);
}

TEST(DictionaryTest, ContainsChecksRange) {
  Dictionary dict;
  TermId id = dict.InternUri("http://example.org/y");
  EXPECT_TRUE(dict.Contains(id));
  EXPECT_FALSE(dict.Contains(id + 1000));
}

TEST(TermTest, ToStringUsesNTriplesSyntax) {
  EXPECT_EQ(Term::Uri("http://a").ToString(), "<http://a>");
  EXPECT_EQ(Term::Literal("x y").ToString(), "\"x y\"");
  EXPECT_EQ(Term::Blank("b0").ToString(), "_:b0");
}

TEST(TermTest, Ordering) {
  EXPECT_LT(Term::Uri("a"), Term::Uri("b"));
  EXPECT_LT(Term::Uri("z"), Term::Literal("a"));  // kind dominates
  EXPECT_LT(Term::Literal("z"), Term::Blank("a"));
}

}  // namespace
}  // namespace rdf
}  // namespace rdfref
