#include "workload/workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "workload/histogram.h"

namespace rdfref {
namespace workload {
namespace {

// ---------------------------------------------------------------------------
// LatencyHistogram: exact percentiles in the linear range, bounded relative
// error above it, lock-free merge, quantile monotonicity.

TEST(HistogramTest, ExactPercentilesOnKnownDistribution) {
  LatencyHistogram h;
  // 1..30, once each — all below kSubBuckets, so buckets are singletons and
  // quantiles are exact order statistics.
  for (uint64_t v = 1; v <= 30; ++v) h.Record(v);
  EXPECT_EQ(h.TotalCount(), 30u);
  EXPECT_EQ(h.Percentile(50), 15u);   // rank ceil(0.5*30)  = 15
  EXPECT_EQ(h.Percentile(95), 29u);   // rank ceil(0.95*30) = 29
  EXPECT_EQ(h.Percentile(99), 30u);   // rank ceil(0.99*30) = 30
  EXPECT_EQ(h.Percentile(100), 30u);
  EXPECT_EQ(h.ValueAtQuantile(0.0), 1u);  // rank clamps to 1
}

TEST(HistogramTest, SkewMovesTheMedian) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(2);
  h.Record(25);
  EXPECT_EQ(h.Percentile(50), 2u);
  EXPECT_EQ(h.Percentile(99), 2u);
  EXPECT_EQ(h.Percentile(100), 25u);
}

TEST(HistogramTest, EmptyHistogramReportsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(HistogramTest, RelativeErrorBoundAboveLinearRange) {
  // Every value maps to a bucket whose upper bound overestimates it by at
  // most a factor of 1 + 1/kSubBuckets.
  for (uint64_t v : {32ull, 33ull, 100ull, 1023ull, 1024ull, 123456ull,
                     999999999ull, (1ull << 40) + 7}) {
    const size_t slot = LatencyHistogram::SlotFor(v);
    const uint64_t ub = LatencyHistogram::SlotUpperBound(slot);
    EXPECT_GE(ub, v);
    EXPECT_LE(static_cast<double>(ub - v),
              static_cast<double>(v) / LatencyHistogram::kSubBuckets)
        << "value " << v << " slot " << slot << " ub " << ub;
  }
  // And slot assignment is stable at the exact bucket boundaries.
  EXPECT_EQ(LatencyHistogram::SlotFor(31), 31u);
  EXPECT_EQ(LatencyHistogram::SlotUpperBound(LatencyHistogram::SlotFor(31)),
            31u);
  EXPECT_GE(LatencyHistogram::SlotUpperBound(LatencyHistogram::SlotFor(32)),
            32u);
}

TEST(HistogramTest, QuantilesAreMonotone) {
  LatencyHistogram h;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) h.Record(rng.Uniform(1u << 20));
  uint64_t prev = 0;
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    const uint64_t v = h.ValueAtQuantile(q);
    EXPECT_GE(v, prev) << "quantile " << q;
    prev = v;
  }
}

TEST(HistogramTest, MergeAcrossThreadsMatchesSingleHistogram) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  // Per-thread histograms, merged afterwards...
  std::vector<std::unique_ptr<LatencyHistogram>> parts;
  for (int t = 0; t < kThreads; ++t) {
    parts.push_back(std::make_unique<LatencyHistogram>());
  }
  // ...and one shared histogram all threads hammer concurrently.
  LatencyHistogram shared;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(100 + static_cast<uint64_t>(t));
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t v = rng.Uniform(1u << 16);
        parts[static_cast<size_t>(t)]->Record(v);
        shared.Record(v);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  LatencyHistogram merged;
  for (const auto& part : parts) merged.Merge(*part);
  EXPECT_EQ(merged.TotalCount(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(shared.TotalCount(), merged.TotalCount());
  // Same multiset of recordings => identical quantiles.
  for (double p : {50.0, 90.0, 95.0, 99.0, 99.9}) {
    EXPECT_EQ(merged.Percentile(p), shared.Percentile(p)) << "p" << p;
  }
}

TEST(HistogramTest, ClearResets) {
  LatencyHistogram h;
  h.Record(5);
  h.Record(500);
  h.Clear();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

// ---------------------------------------------------------------------------
// MixSampler: deterministic, weight-respecting draws.

TEST(MixSamplerTest, RespectsWeightsDeterministically) {
  auto answerer = MakeSp2bAnswerer(0.05);
  auto mix = Sp2bQueryMix(answerer.get());
  ASSERT_TRUE(mix.ok()) << mix.status();
  MixSampler sampler(&*mix);
  std::vector<int> counts(mix->queries.size(), 0);
  Rng rng(9);
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) ++counts[sampler.Sample(&rng)];
  double total_weight = 0;
  for (const WorkloadQuery& q : mix->queries) total_weight += q.weight;
  for (size_t i = 0; i < counts.size(); ++i) {
    const double expected = kDraws * mix->queries[i].weight / total_weight;
    EXPECT_NEAR(counts[i], expected, expected * 0.25 + 30)
        << mix->queries[i].name;
  }
  // Same seed => same sequence.
  Rng r1(77), r2(77);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.Sample(&r1), sampler.Sample(&r2));
  }
}

// ---------------------------------------------------------------------------
// The sp2b mix and the closed-loop driver.

TEST(Sp2bMixTest, AllQueriesParseWithValidCovers) {
  auto answerer = MakeSp2bAnswerer(0.05);
  auto mix = Sp2bQueryMix(answerer.get());
  ASSERT_TRUE(mix.ok()) << mix.status();
  EXPECT_EQ(mix->queries.size(), 7u);
  for (const WorkloadQuery& q : mix->queries) {
    EXPECT_FALSE(q.name.empty());
    EXPECT_GT(q.weight, 0.0);
    EXPECT_TRUE(q.cover.Validate(q.cq).ok()) << q.name;
  }
}

TEST(DriverTest, RejectsInvalidConfigurations) {
  auto answerer = MakeSp2bAnswerer(0.05);
  auto mix = Sp2bQueryMix(answerer.get());
  ASSERT_TRUE(mix.ok());
  DriverOptions bad;
  bad.ops_per_client = 10;
  bad.strategy = api::Strategy::kSaturation;
  bad.concurrent_writer = true;
  EXPECT_FALSE(RunClosedLoop(answerer.get(), *mix, bad).ok());
  DriverOptions dat;
  dat.ops_per_client = 10;
  dat.strategy = api::Strategy::kDatalog;
  dat.clients = 2;
  EXPECT_FALSE(RunClosedLoop(answerer.get(), *mix, dat).ok());
  DriverOptions none;
  none.ops_per_client = 0;
  none.duration_ms = 0;
  EXPECT_FALSE(RunClosedLoop(answerer.get(), *mix, none).ok());
  WorkloadMix empty;
  DriverOptions ok_opts;
  ok_opts.ops_per_client = 1;
  EXPECT_FALSE(RunClosedLoop(answerer.get(), empty, ok_opts).ok());
}

TEST(DriverTest, OpsModeRunsExactlyTheRequestedQueries) {
  auto answerer = MakeSp2bAnswerer(0.05);
  auto mix = Sp2bQueryMix(answerer.get());
  ASSERT_TRUE(mix.ok());
  DriverOptions options;
  options.strategy = api::Strategy::kRefUcq;
  options.clients = 2;
  options.ops_per_client = 25;
  options.seed = 5;
  auto report = RunClosedLoop(answerer.get(), *mix, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->total_queries, 50u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_GT(report->total_rows, 0u);
  EXPECT_GT(report->throughput_qps, 0.0);
  uint64_t per_query_total = 0;
  for (const QueryStats& q : report->per_query) per_query_total += q.count;
  EXPECT_EQ(per_query_total, report->total_queries);
  // Same seed, same ops => same draws => identical row totals.
  auto again = RunClosedLoop(answerer.get(), *mix, options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->total_rows, report->total_rows);
}

TEST(DriverTest, StrategiesAgreeOnRowTotals) {
  // Every complete strategy must return the same answers, so a seeded
  // ops-mode run yields identical row totals across them.
  auto answerer = MakeSp2bAnswerer(0.05);
  auto mix = Sp2bQueryMix(answerer.get());
  ASSERT_TRUE(mix.ok());
  DriverOptions options;
  options.clients = 1;
  options.ops_per_client = 30;
  options.seed = 13;
  uint64_t expected_rows = 0;
  for (api::Strategy s : {api::Strategy::kRefUcq, api::Strategy::kRefJucq,
                          api::Strategy::kRefScq, api::Strategy::kSaturation}) {
    options.strategy = s;
    auto report = RunClosedLoop(answerer.get(), *mix, options);
    ASSERT_TRUE(report.ok()) << api::StrategyName(s) << ": "
                             << report.status();
    EXPECT_EQ(report->errors, 0u) << api::StrategyName(s);
    if (expected_rows == 0) {
      expected_rows = report->total_rows;
    } else {
      EXPECT_EQ(report->total_rows, expected_rows) << api::StrategyName(s);
    }
  }
  EXPECT_GT(expected_rows, 0u);
}

// The TSan stress test: many clients and a churning writer share one
// answerer; snapshot isolation must keep every answer identical to the
// read-only run, and the run must shut down cleanly.
TEST(DriverTest, ConcurrentWriterPreservesAnswersAndShutsDownCleanly) {
  auto answerer = MakeSp2bAnswerer(0.05);
  auto mix = Sp2bQueryMix(answerer.get());
  ASSERT_TRUE(mix.ok());
  DriverOptions readonly;
  readonly.strategy = api::Strategy::kRefUcq;
  readonly.clients = 4;
  readonly.ops_per_client = 15;
  readonly.seed = 21;
  auto baseline = RunClosedLoop(answerer.get(), *mix, readonly);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  DriverOptions contended = readonly;
  contended.concurrent_writer = true;
  contended.writer_batch = 64;
  const size_t size_before =
      answerer->versions().snapshot()->Materialize().size();
  auto report = RunClosedLoop(answerer.get(), *mix, contended);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->errors, 0u);
  EXPECT_EQ(report->total_queries, 60u);
  EXPECT_GT(report->writer_ops, 0u);
  // Churn over a workload-only property never touches any mix query, so
  // snapshot-isolated answers match the uncontended run bit-for-bit.
  EXPECT_EQ(report->total_rows, baseline->total_rows);
  // Clean shutdown: the writer drained its churn, the store is as before.
  EXPECT_EQ(answerer->versions().snapshot()->Materialize().size(),
            size_before);
}

TEST(DriverTest, DurationModeStops) {
  auto answerer = MakeSp2bAnswerer(0.05);
  auto mix = Sp2bQueryMix(answerer.get());
  ASSERT_TRUE(mix.ok());
  DriverOptions options;
  options.strategy = api::Strategy::kRefUcq;
  options.clients = 2;
  options.ops_per_client = 0;
  options.duration_ms = 50;
  auto report = RunClosedLoop(answerer.get(), *mix, options);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(report->total_queries, 0u);
  EXPECT_EQ(report->errors, 0u);
  EXPECT_GE(report->wall_ms, 50.0);
}

}  // namespace
}  // namespace workload
}  // namespace rdfref
