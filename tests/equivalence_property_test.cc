// The load-bearing property of reformulation-based query answering
// (Section 3.1 of the paper): for every graph G, schema S and conjunctive
// query q,   q(G∞) = qref(G)   — evaluating the reformulation against the
// explicit triples equals evaluating the query against the saturation.
//
// Scenarios and queries are drawn from the shared generator library in
// src/testing/ (the same one the differential fuzz driver uses); this suite
// checks that ALL complete strategies (Sat, Ref-UCQ, Ref-SCQ, Ref-GCov,
// Dat) produce identical answers and that the incomplete (Virtuoso-style)
// Ref produces a subset.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "api/query_answering.h"
#include "common/hash.h"
#include "query/cq.h"
#include "testing/scenario.h"

namespace rdfref {
namespace {

using query::Cq;
using testing::Scenario;

std::set<std::vector<rdf::TermId>> RowSet(const engine::Table& t) {
  return t.RowSet();
}

class EquivalencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalencePropertyTest, AllCompleteStrategiesAgree) {
  const uint64_t seed = GetParam();
  Scenario sc = testing::GenerateScenario(seed);
  api::QueryAnswerer answerer(std::move(sc.graph));
  Rng rng(seed * 31 + 7);

  for (int trial = 0; trial < 8; ++trial) {
    Cq q = testing::GenerateQuery(sc, &rng);
    auto sat = answerer.Answer(q, api::Strategy::kSaturation);
    ASSERT_TRUE(sat.ok()) << sat.status();
    const std::set<std::vector<rdf::TermId>> expected = RowSet(*sat);

    const api::Strategy strategies[] = {
        api::Strategy::kRefUcq, api::Strategy::kRefScq,
        api::Strategy::kRefGcov, api::Strategy::kDatalog};
    for (api::Strategy s : strategies) {
      auto got = answerer.Answer(q, s);
      ASSERT_TRUE(got.ok()) << api::StrategyName(s) << ": " << got.status();
      EXPECT_EQ(RowSet(*got), expected)
          << "seed=" << seed << " trial=" << trial << " strategy="
          << api::StrategyName(s) << "\nquery: "
          << q.ToString(answerer.dict());
    }

    // UCQ minimization must not change answers.
    api::AnswerOptions minimized;
    minimized.reform.minimize = true;
    auto pruned =
        answerer.Answer(q, api::Strategy::kRefUcq, nullptr, minimized);
    ASSERT_TRUE(pruned.ok()) << pruned.status();
    EXPECT_EQ(RowSet(*pruned), expected)
        << "seed=" << seed << " trial=" << trial
        << " (minimized reformulation)\nquery: "
        << q.ToString(answerer.dict());

    // The incomplete (hierarchy-only) Ref returns a subset.
    auto incomplete = answerer.Answer(q, api::Strategy::kRefIncomplete);
    ASSERT_TRUE(incomplete.ok());
    for (const std::vector<rdf::TermId>& row : incomplete->RowVectors()) {
      EXPECT_TRUE(expected.count(row))
          << "incomplete Ref produced a spurious answer, seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, EquivalencePropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

// JUCQ invariance: for small random queries, EVERY partition cover yields
// the same answer as the UCQ strategy (covers are answering strategies,
// not semantics).
class CoverInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverInvarianceTest, EveryPartitionCoverAgrees) {
  const uint64_t seed = GetParam();
  Scenario sc = testing::GenerateScenario(seed);
  api::QueryAnswerer answerer(std::move(sc.graph));
  Rng rng(seed * 131 + 3);

  for (int trial = 0; trial < 3; ++trial) {
    Cq q = testing::GenerateQuery(sc, &rng);
    auto reference = answerer.Answer(q, api::Strategy::kRefUcq);
    ASSERT_TRUE(reference.ok());
    const std::set<std::vector<rdf::TermId>> expected = RowSet(*reference);

    // All partitions of the atoms (Bell(3) at most = 5).
    reformulation::Reformulator ref(&answerer.schema());
    cost::CostModel cost_model(&answerer.ref_store().stats());
    optimizer::CoverOptimizer optimizer(&ref, &cost_model);
    auto covers = optimizer.EnumeratePartitionCovers(q);
    ASSERT_TRUE(covers.ok());
    for (const query::Cover& cover : *covers) {
      api::AnswerOptions options;
      options.cover = cover;
      auto got =
          answerer.Answer(q, api::Strategy::kRefJucq, nullptr, options);
      ASSERT_TRUE(got.ok()) << cover.ToString() << ": " << got.status();
      EXPECT_EQ(RowSet(*got), expected)
          << "seed=" << seed << " cover=" << cover.ToString()
          << "\nquery: " << q.ToString(answerer.dict());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, CoverInvarianceTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace rdfref
