// The load-bearing property of reformulation-based query answering
// (Section 3.1 of the paper): for every graph G, schema S and conjunctive
// query q,   q(G∞) = qref(G)   — evaluating the reformulation against the
// explicit triples equals evaluating the query against the saturation.
//
// This suite draws randomized (graph, schema, query) scenarios from a
// seeded generator and checks that ALL complete strategies (Sat, Ref-UCQ,
// Ref-SCQ, Ref-GCov, Dat) produce identical answers, and that the
// incomplete (Virtuoso-style) Ref produces a subset.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "api/query_answering.h"
#include "common/hash.h"
#include "query/cq.h"
#include "rdf/graph.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;
namespace vocab = rdf::vocab;

struct Scenario {
  rdf::Graph graph;
  std::vector<rdf::TermId> classes;
  std::vector<rdf::TermId> properties;
  std::vector<rdf::TermId> subjects;
  std::vector<rdf::TermId> literals;
};

Scenario MakeScenario(uint64_t seed) {
  Scenario sc;
  Rng rng(seed);
  rdf::Dictionary& dict = sc.graph.dict();

  const int num_classes = 4 + static_cast<int>(rng.Uniform(4));
  const int num_props = 3 + static_cast<int>(rng.Uniform(3));
  const int num_subjects = 12 + static_cast<int>(rng.Uniform(12));
  for (int i = 0; i < num_classes; ++i) {
    sc.classes.push_back(dict.InternUri("http://t/C" + std::to_string(i)));
  }
  for (int i = 0; i < num_props; ++i) {
    sc.properties.push_back(dict.InternUri("http://t/p" + std::to_string(i)));
  }
  for (int i = 0; i < num_subjects; ++i) {
    sc.subjects.push_back(dict.InternUri("http://t/s" + std::to_string(i)));
  }
  for (int i = 0; i < 3; ++i) {
    sc.literals.push_back(dict.InternLiteral("lit" + std::to_string(i)));
  }

  // Random schema (never constraining the RDFS built-ins, per the DB
  // fragment convention — see DESIGN.md).
  auto random_class = [&]() {
    return sc.classes[rng.Uniform(sc.classes.size())];
  };
  auto random_prop = [&]() {
    return sc.properties[rng.Uniform(sc.properties.size())];
  };
  const int num_sc = 2 + static_cast<int>(rng.Uniform(4));
  for (int i = 0; i < num_sc; ++i) {
    sc.graph.Add(random_class(), vocab::kSubClassOfId, random_class());
  }
  const int num_sp = 1 + static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < num_sp; ++i) {
    sc.graph.Add(random_prop(), vocab::kSubPropertyOfId, random_prop());
  }
  const int num_dom = static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < num_dom; ++i) {
    sc.graph.Add(random_prop(), vocab::kDomainId, random_class());
  }
  const int num_rng = static_cast<int>(rng.Uniform(3));
  for (int i = 0; i < num_rng; ++i) {
    sc.graph.Add(random_prop(), vocab::kRangeId, random_class());
  }

  // Random instance triples: property assertions (some literal-valued) and
  // class assertions.
  const int num_triples = 30 + static_cast<int>(rng.Uniform(40));
  for (int i = 0; i < num_triples; ++i) {
    rdf::TermId s = sc.subjects[rng.Uniform(sc.subjects.size())];
    if (rng.Chance(0.3)) {
      sc.graph.Add(s, vocab::kTypeId, random_class());
    } else {
      rdf::TermId o = rng.Chance(0.25)
                          ? sc.literals[rng.Uniform(sc.literals.size())]
                          : sc.subjects[rng.Uniform(sc.subjects.size())];
      sc.graph.Add(s, random_prop(), o);
    }
  }
  return sc;
}

// Random conjunctive query over the scenario's vocabulary: 1-3 atoms,
// variables shared through a small pool, variables allowed in property and
// class positions.
Cq MakeQuery(const Scenario& sc, Rng* rng) {
  Cq q;
  const int num_pool = 3;
  std::vector<VarId> pool;
  for (int i = 0; i < num_pool; ++i) {
    pool.push_back(q.AddVar("v" + std::to_string(i)));
  }
  auto var = [&]() { return QTerm::Var(pool[rng->Uniform(pool.size())]); };
  const int atoms = 1 + static_cast<int>(rng->Uniform(3));
  for (int i = 0; i < atoms; ++i) {
    // Subject: variable (70%) or a subject constant.
    QTerm s = rng->Chance(0.7)
                  ? var()
                  : QTerm::Const(sc.subjects[rng->Uniform(sc.subjects.size())]);
    double kind = rng->UniformDouble();
    if (kind < 0.4) {
      // Type atom; class constant (70%) or variable.
      QTerm o = rng->Chance(0.7)
                    ? QTerm::Const(sc.classes[rng->Uniform(sc.classes.size())])
                    : var();
      q.AddAtom(Atom(s, QTerm::Const(vocab::kTypeId), o));
    } else if (kind < 0.9) {
      // Property atom with a constant property.
      QTerm o = rng->Chance(0.6) ? var()
                                 : QTerm::Const(sc.subjects[rng->Uniform(
                                       sc.subjects.size())]);
      q.AddAtom(Atom(
          s, QTerm::Const(sc.properties[rng->Uniform(sc.properties.size())]),
          o));
    } else {
      // Variable property.
      q.AddAtom(Atom(s, var(), var()));
    }
  }
  // Head: the body variables (complete bindings make mismatches visible).
  for (VarId v : q.BodyVars()) q.AddHead(QTerm::Var(v));
  if (q.head().empty()) {
    // Fully constant query: give it a dummy variable-free guard by making
    // the first atom's subject a variable instead.
    Cq fallback;
    VarId x = fallback.AddVar("x");
    Atom a = q.body()[0];
    a.s = QTerm::Var(x);
    fallback.AddAtom(a);
    fallback.AddHead(QTerm::Var(x));
    return fallback;
  }
  return q;
}

std::set<std::vector<rdf::TermId>> RowSet(const engine::Table& t) {
  return std::set<std::vector<rdf::TermId>>(t.rows.begin(), t.rows.end());
}

class EquivalencePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EquivalencePropertyTest, AllCompleteStrategiesAgree) {
  const uint64_t seed = GetParam();
  Scenario sc = MakeScenario(seed);
  api::QueryAnswerer answerer(std::move(sc.graph));
  Rng rng(seed * 31 + 7);

  for (int trial = 0; trial < 8; ++trial) {
    Cq q = MakeQuery(sc, &rng);
    auto sat = answerer.Answer(q, api::Strategy::kSaturation);
    ASSERT_TRUE(sat.ok()) << sat.status();
    const std::set<std::vector<rdf::TermId>> expected = RowSet(*sat);

    const api::Strategy strategies[] = {
        api::Strategy::kRefUcq, api::Strategy::kRefScq,
        api::Strategy::kRefGcov, api::Strategy::kDatalog};
    for (api::Strategy s : strategies) {
      auto got = answerer.Answer(q, s);
      ASSERT_TRUE(got.ok()) << api::StrategyName(s) << ": " << got.status();
      EXPECT_EQ(RowSet(*got), expected)
          << "seed=" << seed << " trial=" << trial << " strategy="
          << api::StrategyName(s) << "\nquery: "
          << q.ToString(answerer.dict());
    }

    // UCQ minimization must not change answers.
    api::AnswerOptions minimized;
    minimized.reform.minimize = true;
    auto pruned =
        answerer.Answer(q, api::Strategy::kRefUcq, nullptr, minimized);
    ASSERT_TRUE(pruned.ok()) << pruned.status();
    EXPECT_EQ(RowSet(*pruned), expected)
        << "seed=" << seed << " trial=" << trial
        << " (minimized reformulation)\nquery: "
        << q.ToString(answerer.dict());

    // The incomplete (hierarchy-only) Ref returns a subset.
    auto incomplete = answerer.Answer(q, api::Strategy::kRefIncomplete);
    ASSERT_TRUE(incomplete.ok());
    for (const auto& row : incomplete->rows) {
      EXPECT_TRUE(expected.count(row))
          << "incomplete Ref produced a spurious answer, seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, EquivalencePropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

// JUCQ invariance: for small random queries, EVERY partition cover yields
// the same answer as the UCQ strategy (covers are answering strategies,
// not semantics).
class CoverInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverInvarianceTest, EveryPartitionCoverAgrees) {
  const uint64_t seed = GetParam();
  Scenario sc = MakeScenario(seed);
  api::QueryAnswerer answerer(std::move(sc.graph));
  Rng rng(seed * 131 + 3);

  for (int trial = 0; trial < 3; ++trial) {
    Cq q = MakeQuery(sc, &rng);
    auto reference = answerer.Answer(q, api::Strategy::kRefUcq);
    ASSERT_TRUE(reference.ok());
    const std::set<std::vector<rdf::TermId>> expected = RowSet(*reference);

    // All partitions of the atoms (Bell(3) at most = 5).
    reformulation::Reformulator ref(&answerer.schema());
    cost::CostModel cost_model(&answerer.ref_store().stats());
    optimizer::CoverOptimizer optimizer(&ref, &cost_model);
    auto covers = optimizer.EnumeratePartitionCovers(q);
    ASSERT_TRUE(covers.ok());
    for (const query::Cover& cover : *covers) {
      api::AnswerOptions options;
      options.cover = cover;
      auto got =
          answerer.Answer(q, api::Strategy::kRefJucq, nullptr, options);
      ASSERT_TRUE(got.ok()) << cover.ToString() << ": " << got.status();
      EXPECT_EQ(RowSet(*got), expected)
          << "seed=" << seed << " cover=" << cover.ToString()
          << "\nquery: " << q.ToString(answerer.dict());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, CoverInvarianceTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace rdfref
