#include "api/query_answering.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "datagen/bibliography.h"
#include "query/sparql_parser.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace api {
namespace {

class ApiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph graph;
    datagen::Bibliography::AddFigure2Graph(&graph);
    answerer_ = std::make_unique<QueryAnswerer>(std::move(graph));
  }

  query::Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text,
        &answerer_->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  std::unique_ptr<QueryAnswerer> answerer_;
};

TEST_F(ApiTest, StrategyNamesAreStable) {
  EXPECT_STREQ(StrategyName(Strategy::kSaturation), "SAT");
  EXPECT_STREQ(StrategyName(Strategy::kRefUcq), "REF-UCQ");
  EXPECT_STREQ(StrategyName(Strategy::kRefScq), "REF-SCQ");
  EXPECT_STREQ(StrategyName(Strategy::kRefGcov), "REF-GCOV");
  EXPECT_STREQ(StrategyName(Strategy::kDatalog), "DATALOG");
}

TEST_F(ApiTest, Section3QueryAllCompleteStrategiesAgree) {
  query::Cq q = Parse(
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . "
      "?x1 ?x4 \"1949\" . }");
  const Strategy complete[] = {Strategy::kSaturation, Strategy::kRefUcq,
                               Strategy::kRefScq, Strategy::kRefGcov,
                               Strategy::kDatalog};
  for (Strategy s : complete) {
    auto table = answerer_->Answer(q, s);
    ASSERT_TRUE(table.ok()) << StrategyName(s) << ": " << table.status();
    ASSERT_EQ(table->NumRows(), 1u) << StrategyName(s);
    EXPECT_EQ(answerer_->dict().Lookup(table->row(0)[0]).lexical,
              "J. L. Borges")
        << StrategyName(s);
  }
}

TEST_F(ApiTest, EvaluationWithoutReasoningIsIncomplete) {
  // The paper (Section 3): evaluating q directly against G yields ∅.
  query::Cq q = Parse(
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . "
      "?x1 ?x4 \"1949\" . }");
  engine::Evaluator eval(&answerer_->ref_store());
  EXPECT_EQ(eval.EvaluateCq(q).NumRows(), 0u);
}

TEST_F(ApiTest, IncompleteRefMissesDomainRangeAnswers) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Person . }");
  auto complete = answerer_->Answer(q, Strategy::kRefUcq);
  auto incomplete = answerer_->Answer(q, Strategy::kRefIncomplete);
  ASSERT_TRUE(complete.ok());
  ASSERT_TRUE(incomplete.ok());
  EXPECT_EQ(complete->NumRows(), 1u);   // _:b1 via range of writtenBy
  EXPECT_EQ(incomplete->NumRows(), 0u);  // hierarchy-only Ref misses it
}

TEST_F(ApiTest, ExplicitCoverStrategy) {
  query::Cq q = Parse(
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . }");
  AnswerOptions options;
  options.cover = query::Cover({{0}, {1}});
  AnswerProfile profile;
  auto table = answerer_->Answer(q, Strategy::kRefJucq, &profile, options);
  ASSERT_TRUE(table.ok()) << table.status();
  EXPECT_EQ(table->NumRows(), 1u);
  EXPECT_EQ(profile.jucq.fragments.size(), 2u);
  EXPECT_GT(profile.reformulation_cqs, 0u);
}

TEST_F(ApiTest, InvalidCoverRejected) {
  query::Cq q = Parse(
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . }");
  AnswerOptions options;
  options.cover = query::Cover(std::vector<std::vector<int>>{{0}});  // hole
  EXPECT_FALSE(
      answerer_->Answer(q, Strategy::kRefJucq, nullptr, options).ok());
}

TEST_F(ApiTest, UnsafeQueryRejected) {
  query::Cq q;
  query::VarId x = q.AddVar("x");
  query::VarId y = q.AddVar("y");
  q.AddAtom(query::Atom(query::QTerm::Var(x), query::QTerm::Const(1),
                        query::QTerm::Const(2)));
  q.AddHead(query::QTerm::Var(y));
  EXPECT_EQ(
      answerer_->Answer(q, Strategy::kSaturation).status().code(),
      StatusCode::kInvalidArgument);
}

TEST_F(ApiTest, ProfilesArePopulated) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Publication . }");
  AnswerProfile profile;
  auto sat = answerer_->Answer(q, Strategy::kSaturation, &profile);
  ASSERT_TRUE(sat.ok());
  EXPECT_GT(answerer_->saturation_added(), 0u);

  auto gcov = answerer_->Answer(q, Strategy::kRefGcov, &profile);
  ASSERT_TRUE(gcov.ok());
  EXPECT_GE(profile.gcov.explored.size(), 1u);
  EXPECT_EQ(profile.cover, query::Cover::Singletons(1));
}

TEST_F(ApiTest, SaturationIsLazyAndCached) {
  EXPECT_EQ(answerer_->saturation_millis(), 0.0);
  const storage::Store& s1 = answerer_->sat_store();
  const storage::Store& s2 = answerer_->sat_store();
  EXPECT_EQ(&s1, &s2);
  EXPECT_GT(s1.size(), answerer_->num_explicit_triples() - 1);
}

TEST_F(ApiTest, SchemaQueriesAnswerable) {
  // Schema triples are data in the DB fragment; the saturated schema is
  // stored, so subclass queries see the closure.
  query::Cq q = Parse(
      "SELECT ?c WHERE { ?c rdfs:subClassOf bib:Publication . }");
  auto table = answerer_->Answer(q, Strategy::kRefUcq);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);  // Book
}

TEST_F(ApiTest, UnionQueriesAcrossStrategies) {
  // Books union People: doi1 explicitly, _:b1 via the range constraint.
  auto u = query::ParseSparqlUnion(
      "PREFIX bib: <http://example.org/bib/>\n"
      "SELECT ?x WHERE { ?x a bib:Book . } UNION { ?x a bib:Person . }",
      &answerer_->dict());
  ASSERT_TRUE(u.ok()) << u.status();
  for (Strategy s : {Strategy::kSaturation, Strategy::kRefUcq,
                     Strategy::kRefGcov, Strategy::kDatalog}) {
    AnswerProfile profile;
    auto table = answerer_->AnswerUnion(*u, s, &profile);
    ASSERT_TRUE(table.ok()) << StrategyName(s) << ": " << table.status();
    EXPECT_EQ(table->NumRows(), 2u) << StrategyName(s);
  }
}

TEST_F(ApiTest, UnionDeduplicatesAcrossBranches) {
  // Both branches match doi1 (Book ⊑ Publication): one answer, not two.
  auto u = query::ParseSparqlUnion(
      "PREFIX bib: <http://example.org/bib/>\n"
      "SELECT ?x WHERE { ?x a bib:Book . } UNION "
      "{ ?x a bib:Publication . }",
      &answerer_->dict());
  ASSERT_TRUE(u.ok());
  auto table = answerer_->AnswerUnion(*u, Strategy::kRefUcq);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);
}

TEST_F(ApiTest, EmptyUnionRejected) {
  query::Ucq empty;
  EXPECT_FALSE(answerer_->AnswerUnion(empty, Strategy::kRefUcq).ok());
}

// Shrunken differential-fuzzing repro (oracle:DATALOG),
// generated by tools/fuzz_driver — 2 triple(s), 1 atom(s).
// A subClassOf cycle entails the reflexive pairs C0 ⊑ C0 / C3 ⊑ C3
// (rdfs11); the schema closure used to filter them while Datalog derived
// them, so Sat/Ref answered 0 rows where Dat answered 2.
TEST(FuzzRepro, Seed231Trial3) {
  rdf::Graph g;
  rdf::Dictionary& dict = g.dict();
  g.Add(dict.InternUri("http://t/C0"), rdf::vocab::kSubClassOfId,
        dict.InternUri("http://t/C3"));
  g.Add(dict.InternUri("http://t/C3"), rdf::vocab::kSubClassOfId,
        dict.InternUri("http://t/C0"));

  query::Cq q;
  q.AddVar("v0");  // VarId 0
  q.AddVar("v1");  // VarId 1
  q.AddVar("v2");  // VarId 2
  q.AddAtom(query::Atom(query::QTerm::Var(1), query::QTerm::Var(0),
                        query::QTerm::Var(1)));
  q.AddHead(query::QTerm::Var(0));
  q.AddHead(query::QTerm::Var(1));

  api::QueryAnswerer answerer(std::move(g));
  auto sat = answerer.Answer(q, api::Strategy::kSaturation);
  ASSERT_TRUE(sat.ok()) << sat.status();
  std::set<std::vector<rdf::TermId>> expected = sat->RowSet();
  EXPECT_EQ(expected.size(), 2u);  // (⊑, C0) and (⊑, C3)
  for (api::Strategy s :
       {api::Strategy::kRefUcq, api::Strategy::kRefScq,
        api::Strategy::kRefGcov, api::Strategy::kDatalog}) {
    auto got = answerer.Answer(q, s);
    ASSERT_TRUE(got.ok()) << api::StrategyName(s);
    EXPECT_EQ(got->RowSet(), expected)
        << api::StrategyName(s);
  }
}

}  // namespace
}  // namespace api
}  // namespace rdfref
