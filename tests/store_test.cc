#include "storage/store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <span>
#include <utility>

#include "api/query_answering.h"
#include "rdf/vocab.h"
#include "storage/delta_store.h"
#include "storage/serialize.h"
#include "testing/oracle.h"

namespace rdfref {
namespace storage {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_ = U("s1");
    s2_ = U("s2");
    p_ = U("p");
    q_ = U("q");
    o1_ = U("o1");
    o2_ = U("o2");
    graph_.Add(s1_, p_, o1_);
    graph_.Add(s1_, p_, o2_);
    graph_.Add(s2_, p_, o1_);
    graph_.Add(s1_, q_, o1_);
    graph_.Add(s2_, q_, o2_);
  }

  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  size_t Count(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    Store store(graph_);
    return store.CountMatches(s, p, o);
  }

  rdf::Graph graph_;
  rdf::TermId s1_, s2_, p_, q_, o1_, o2_;
};

TEST_F(StoreTest, AllPatternShapesCount) {
  EXPECT_EQ(Count(kAny, kAny, kAny), 5u);
  EXPECT_EQ(Count(s1_, kAny, kAny), 3u);
  EXPECT_EQ(Count(kAny, p_, kAny), 3u);
  EXPECT_EQ(Count(kAny, kAny, o1_), 3u);
  EXPECT_EQ(Count(s1_, p_, kAny), 2u);
  EXPECT_EQ(Count(s1_, kAny, o1_), 2u);
  EXPECT_EQ(Count(kAny, p_, o1_), 2u);
  EXPECT_EQ(Count(s1_, p_, o1_), 1u);
  EXPECT_EQ(Count(s1_, p_, o2_), 1u);
  EXPECT_EQ(Count(s2_, q_, o1_), 0u);
}

TEST_F(StoreTest, ScanVisitsExactlyMatches) {
  Store store(graph_);
  size_t visited = 0;
  store.Scan(kAny, p_, kAny, [&](const rdf::Triple& t) {
    EXPECT_EQ(t.p, p_);
    ++visited;
  });
  EXPECT_EQ(visited, 3u);
}

TEST_F(StoreTest, ScanFullyBoundActsAsContains) {
  Store store(graph_);
  EXPECT_TRUE(store.Contains(rdf::Triple(s1_, p_, o1_)));
  EXPECT_FALSE(store.Contains(rdf::Triple(s2_, p_, o2_)));
  size_t visited = 0;
  store.Scan(s1_, p_, o1_, [&](const rdf::Triple&) { ++visited; });
  EXPECT_EQ(visited, 1u);
}

TEST_F(StoreTest, UnknownIdsMatchNothing) {
  Store store(graph_);
  rdf::TermId ghost = 99999;
  EXPECT_EQ(store.CountMatches(ghost, kAny, kAny), 0u);
  EXPECT_EQ(store.CountMatches(kAny, ghost, kAny), 0u);
  EXPECT_EQ(store.CountMatches(kAny, kAny, ghost), 0u);
}

TEST_F(StoreTest, EmptyStore) {
  rdf::Graph empty;
  Store store(empty);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CountMatches(kAny, kAny, kAny), 0u);
  size_t visited = 0;
  store.Scan(kAny, kAny, kAny, [&](const rdf::Triple&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST_F(StoreTest, StatisticsAreExact) {
  Store store(graph_);
  const Statistics& stats = store.stats();
  EXPECT_EQ(stats.total_triples(), 5u);
  EXPECT_EQ(stats.distinct_subjects(), 2u);
  EXPECT_EQ(stats.distinct_properties(), 2u);
  EXPECT_EQ(stats.distinct_objects(), 2u);
  PropertyStats ps = stats.ForProperty(p_);
  EXPECT_EQ(ps.count, 3u);
  EXPECT_EQ(ps.distinct_subjects, 2u);
  EXPECT_EQ(ps.distinct_objects, 2u);
}

// The hinted search must return exactly EqualRangeSpan's result for every
// lookup sequence: monotone (the fast case), repeated, backward (stale
// hint falls back), and across a change of pattern shape (which switches
// the permutation index the hint refers to).
TEST_F(StoreTest, HintedRangesMatchPlainRangesUnderAnyLookupOrder) {
  // A larger store so the gallop actually skips over runs.
  rdf::Graph g;
  auto uri = [&](const std::string& n) {
    return g.dict().InternUri("http://ex/" + n);
  };
  rdf::TermId prop = uri("p");
  rdf::TermId other = uri("q");
  std::vector<rdf::TermId> subjects;
  for (int i = 0; i < 64; ++i) {
    rdf::TermId s = uri("s" + std::to_string(i));
    subjects.push_back(s);
    for (int j = 0; j < 1 + i % 3; ++j) {
      g.Add(s, prop, uri("o" + std::to_string(j)));
    }
    if (i % 2 == 0) g.Add(s, other, uri("x"));
  }
  Store store(g);

  auto same = [&](rdf::TermId s, rdf::TermId p, rdf::TermId o,
                  RangeHint* hint) {
    std::span<const rdf::Triple> plain = store.EqualRangeSpan(s, p, o);
    std::span<const rdf::Triple> hinted =
        store.EqualRangeSpanHinted(s, p, o, hint);
    EXPECT_EQ(plain.data(), hinted.data());
    EXPECT_EQ(plain.size(), hinted.size());
  };

  RangeHint hint;
  // Monotone sweep (the nested-loop inner-atom pattern), with repeats.
  for (rdf::TermId s : subjects) {
    same(s, prop, kAny, &hint);
    same(s, prop, kAny, &hint);  // repeated prefix keeps the fence
  }
  // Backward lookup: stale hint must not corrupt the result.
  same(subjects.front(), prop, kAny, &hint);
  // Pattern-shape change switches index (SPO -> OSP); hint is re-keyed.
  same(kAny, kAny, uri("x"), &hint);
  same(subjects.back(), prop, kAny, &hint);
  // Empty results, hinted and not.
  same(subjects.front(), other, uri("nope"), &hint);
  same(uri("ghost"), prop, kAny, &hint);
}

// Regression: a non-empty overlay used to force the buffered path on EVERY
// scan. With the per-position presence sets the zero-copy forward survives
// any overlay that cannot intersect the pattern.
TEST_F(StoreTest, DeltaOverlayKeepsZeroCopyForUntouchedPatterns) {
  Store store(graph_);
  DeltaStore delta(&store);
  rdf::TermId s3 = U("s3");
  ASSERT_TRUE(delta.Insert(rdf::Triple(s3, q_, o2_)));

  // The overlay mentions only {s3, q, o2}: a (any, p, any) scan cannot be
  // affected, so the span must alias the base store's memory.
  std::span<const rdf::Triple> fast;
  ASSERT_TRUE(delta.TryGetRange(kAny, p_, kAny, &fast));
  std::span<const rdf::Triple> plain = store.EqualRangeSpan(kAny, p_, kAny);
  EXPECT_EQ(fast.data(), plain.data());
  EXPECT_EQ(fast.size(), plain.size());

  // Hinted variant forwards too, and the hint stays base-valid.
  RangeHint hint;
  ASSERT_TRUE(delta.TryGetRangeHinted(s1_, p_, kAny, &fast, &hint));
  EXPECT_EQ(fast.size(), 2u);
  ASSERT_TRUE(delta.TryGetRangeHinted(s2_, p_, kAny, &fast, &hint));
  EXPECT_EQ(fast.size(), 1u);

  // Patterns the overlay may touch take the buffered path.
  EXPECT_FALSE(delta.TryGetRange(kAny, q_, kAny, &fast));
  EXPECT_FALSE(delta.TryGetRange(s3, kAny, kAny, &fast));
  EXPECT_FALSE(delta.TryGetRange(kAny, kAny, o2_, &fast));
}

TEST_F(StoreTest, DeltaRemovalPresenceGatesFastPath) {
  Store store(graph_);
  DeltaStore delta(&store);
  ASSERT_TRUE(delta.Remove(rdf::Triple(s1_, q_, o1_)));

  std::span<const rdf::Triple> fast;
  // Removals over q-patterns poison q scans but leave p scans zero-copy.
  EXPECT_FALSE(delta.TryGetRange(kAny, q_, kAny, &fast));
  ASSERT_TRUE(delta.TryGetRange(kAny, p_, kAny, &fast));
  EXPECT_EQ(fast.size(), 3u);

  // Un-hiding drains the removal set; the presence residue is cleared and
  // the q fast path comes back.
  ASSERT_TRUE(delta.Insert(rdf::Triple(s1_, q_, o1_)));
  EXPECT_EQ(delta.num_added(), 0u);
  EXPECT_EQ(delta.num_removed(), 0u);
  ASSERT_TRUE(delta.TryGetRange(kAny, q_, kAny, &fast));
  EXPECT_EQ(fast.size(), 2u);
}

TEST_F(StoreTest, DeltaCompactMaterializesOverlay) {
  Store store(graph_);
  DeltaStore delta(&store);
  rdf::TermId s3 = U("s3");
  ASSERT_TRUE(delta.Insert(rdf::Triple(s3, p_, o1_)));
  ASSERT_TRUE(delta.Remove(rdf::Triple(s2_, q_, o2_)));

  std::unique_ptr<Store> sealed = delta.Compact();
  EXPECT_EQ(sealed->size(), 5u);  // 5 base - 1 removed + 1 added
  EXPECT_TRUE(sealed->Contains(rdf::Triple(s3, p_, o1_)));
  EXPECT_FALSE(sealed->Contains(rdf::Triple(s2_, q_, o2_)));
  EXPECT_EQ(sealed->CountMatches(kAny, p_, kAny), 4u);
  EXPECT_EQ(sealed->CountMatches(kAny, q_, kAny), 1u);

  // Compact() is a snapshot, not a drain: the overlay is untouched.
  EXPECT_EQ(delta.num_added(), 1u);
  EXPECT_EQ(delta.num_removed(), 1u);
}

TEST_F(StoreTest, ClassCardinalities) {
  rdf::TermId c1 = U("C1"), c2 = U("C2"), x = U("x"), y = U("y");
  graph_.Add(x, rdf::vocab::kTypeId, c1);
  graph_.Add(y, rdf::vocab::kTypeId, c1);
  graph_.Add(x, rdf::vocab::kTypeId, c2);
  Store store(graph_);
  EXPECT_EQ(store.stats().ClassCardinality(c1), 2u);
  EXPECT_EQ(store.stats().ClassCardinality(c2), 1u);
  EXPECT_EQ(store.stats().ClassCardinality(U("C3")), 0u);
}

TEST_F(StoreTest, SaveLoadQueryEquality) {
  // Regression for the hierarchy-encoding PR: an answerer built from a
  // loaded image must answer exactly like one built from the original
  // graph. Both encode their dictionary at construction; the comparison is
  // over decoded terms, where the id permutation cancels out.
  rdf::TermId c1 = U("C1"), c2 = U("C2"), x = U("x"), y = U("y");
  graph_.Add(c1, rdf::vocab::kSubClassOfId, c2);
  graph_.Add(x, rdf::vocab::kTypeId, c1);
  graph_.Add(y, rdf::vocab::kTypeId, c2);

  const std::string path =
      std::string(::testing::TempDir()) + "/store_roundtrip.rdfb";
  ASSERT_TRUE(SaveGraph(graph_, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  std::remove(path.c_str());

  api::QueryAnswerer original(graph_.Clone());
  api::QueryAnswerer reloaded(std::move(*loaded));
  auto type_query = [](api::QueryAnswerer* answerer) {
    query::Cq q;
    query::VarId v = q.AddVar("x");
    q.AddAtom(query::Atom(
        query::QTerm::Var(v), query::QTerm::Const(rdf::vocab::kTypeId),
        query::QTerm::Const(answerer->dict().InternUri("http://ex/C2"))));
    q.AddHead(query::QTerm::Var(v));
    return q;
  };
  auto a = original.Answer(type_query(&original), api::Strategy::kRefUcq);
  auto b = reloaded.Answer(type_query(&reloaded), api::Strategy::kRefUcq);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(testing::DecodeRows(*a, original.dict()),
            testing::DecodeRows(*b, reloaded.dict()));
  EXPECT_EQ(a->NumRows(), 2u);  // x via C1 ⊑ C2, y directly
}

}  // namespace
}  // namespace storage
}  // namespace rdfref
