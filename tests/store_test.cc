#include "storage/store.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfref {
namespace storage {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_ = U("s1");
    s2_ = U("s2");
    p_ = U("p");
    q_ = U("q");
    o1_ = U("o1");
    o2_ = U("o2");
    graph_.Add(s1_, p_, o1_);
    graph_.Add(s1_, p_, o2_);
    graph_.Add(s2_, p_, o1_);
    graph_.Add(s1_, q_, o1_);
    graph_.Add(s2_, q_, o2_);
  }

  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  size_t Count(rdf::TermId s, rdf::TermId p, rdf::TermId o) {
    Store store(graph_);
    return store.CountMatches(s, p, o);
  }

  rdf::Graph graph_;
  rdf::TermId s1_, s2_, p_, q_, o1_, o2_;
};

TEST_F(StoreTest, AllPatternShapesCount) {
  EXPECT_EQ(Count(kAny, kAny, kAny), 5u);
  EXPECT_EQ(Count(s1_, kAny, kAny), 3u);
  EXPECT_EQ(Count(kAny, p_, kAny), 3u);
  EXPECT_EQ(Count(kAny, kAny, o1_), 3u);
  EXPECT_EQ(Count(s1_, p_, kAny), 2u);
  EXPECT_EQ(Count(s1_, kAny, o1_), 2u);
  EXPECT_EQ(Count(kAny, p_, o1_), 2u);
  EXPECT_EQ(Count(s1_, p_, o1_), 1u);
  EXPECT_EQ(Count(s1_, p_, o2_), 1u);
  EXPECT_EQ(Count(s2_, q_, o1_), 0u);
}

TEST_F(StoreTest, ScanVisitsExactlyMatches) {
  Store store(graph_);
  size_t visited = 0;
  store.Scan(kAny, p_, kAny, [&](const rdf::Triple& t) {
    EXPECT_EQ(t.p, p_);
    ++visited;
  });
  EXPECT_EQ(visited, 3u);
}

TEST_F(StoreTest, ScanFullyBoundActsAsContains) {
  Store store(graph_);
  EXPECT_TRUE(store.Contains(rdf::Triple(s1_, p_, o1_)));
  EXPECT_FALSE(store.Contains(rdf::Triple(s2_, p_, o2_)));
  size_t visited = 0;
  store.Scan(s1_, p_, o1_, [&](const rdf::Triple&) { ++visited; });
  EXPECT_EQ(visited, 1u);
}

TEST_F(StoreTest, UnknownIdsMatchNothing) {
  Store store(graph_);
  rdf::TermId ghost = 99999;
  EXPECT_EQ(store.CountMatches(ghost, kAny, kAny), 0u);
  EXPECT_EQ(store.CountMatches(kAny, ghost, kAny), 0u);
  EXPECT_EQ(store.CountMatches(kAny, kAny, ghost), 0u);
}

TEST_F(StoreTest, EmptyStore) {
  rdf::Graph empty;
  Store store(empty);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.CountMatches(kAny, kAny, kAny), 0u);
  size_t visited = 0;
  store.Scan(kAny, kAny, kAny, [&](const rdf::Triple&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST_F(StoreTest, StatisticsAreExact) {
  Store store(graph_);
  const Statistics& stats = store.stats();
  EXPECT_EQ(stats.total_triples(), 5u);
  EXPECT_EQ(stats.distinct_subjects(), 2u);
  EXPECT_EQ(stats.distinct_properties(), 2u);
  EXPECT_EQ(stats.distinct_objects(), 2u);
  PropertyStats ps = stats.ForProperty(p_);
  EXPECT_EQ(ps.count, 3u);
  EXPECT_EQ(ps.distinct_subjects, 2u);
  EXPECT_EQ(ps.distinct_objects, 2u);
}

TEST_F(StoreTest, ClassCardinalities) {
  rdf::TermId c1 = U("C1"), c2 = U("C2"), x = U("x"), y = U("y");
  graph_.Add(x, rdf::vocab::kTypeId, c1);
  graph_.Add(y, rdf::vocab::kTypeId, c1);
  graph_.Add(x, rdf::vocab::kTypeId, c2);
  Store store(graph_);
  EXPECT_EQ(store.stats().ClassCardinality(c1), 2u);
  EXPECT_EQ(store.stats().ClassCardinality(c2), 1u);
  EXPECT_EQ(store.stats().ClassCardinality(U("C3")), 0u);
}

}  // namespace
}  // namespace storage
}  // namespace rdfref
