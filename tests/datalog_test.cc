#include "datalog/seminaive.h"

#include <gtest/gtest.h>

#include "datalog/program.h"

namespace rdfref {
namespace datalog {
namespace {

DlTerm V(uint32_t v) { return DlTerm::Var(v); }
DlTerm C(rdf::TermId c) { return DlTerm::Const(c); }

TEST(ProgramTest, ValidatesArity) {
  Program p;
  PredId edge = p.AddPredicate("edge", 2);
  EXPECT_TRUE(p.AddFact(edge, {1, 2}).ok());
  EXPECT_FALSE(p.AddFact(edge, {1}).ok());
  EXPECT_FALSE(p.AddFact(edge + 7, {1, 2}).ok());
}

TEST(ProgramTest, ValidatesRules) {
  Program p;
  PredId edge = p.AddPredicate("edge", 2);
  PredId path = p.AddPredicate("path", 2);
  // OK: path(X,Y) :- edge(X,Y).
  EXPECT_TRUE(
      p.AddRule({DlAtom(path, {V(0), V(1)}), {DlAtom(edge, {V(0), V(1)})}})
          .ok());
  // Not range-restricted: head var 2 not in body.
  EXPECT_FALSE(
      p.AddRule({DlAtom(path, {V(0), V(2)}), {DlAtom(edge, {V(0), V(1)})}})
          .ok());
  // Empty body.
  EXPECT_FALSE(p.AddRule({DlAtom(path, {V(0), V(1)}), {}}).ok());
  // Arity mismatch in body atom.
  EXPECT_FALSE(
      p.AddRule({DlAtom(path, {V(0), V(1)}), {DlAtom(edge, {V(0)})}}).ok());
}

TEST(SemiNaiveTest, TransitiveClosure) {
  Program p;
  PredId edge = p.AddPredicate("edge", 2);
  PredId path = p.AddPredicate("path", 2);
  // Chain 0→1→2→3→4.
  for (rdf::TermId i = 0; i < 4; ++i) {
    ASSERT_TRUE(p.AddFact(edge, {i, i + 1}).ok());
  }
  ASSERT_TRUE(
      p.AddRule({DlAtom(path, {V(0), V(1)}), {DlAtom(edge, {V(0), V(1)})}})
          .ok());
  ASSERT_TRUE(p.AddRule({DlAtom(path, {V(0), V(2)}),
                         {DlAtom(path, {V(0), V(1)}),
                          DlAtom(edge, {V(1), V(2)})}})
                  .ok());
  SemiNaive eval(&p);
  eval.Run();
  // 4+3+2+1 = 10 paths.
  EXPECT_EQ(eval.relation(path).size(), 10u);
  EXPECT_GE(eval.iterations(), 3u);  // chains need several rounds
}

TEST(SemiNaiveTest, RunIsIdempotent) {
  Program p;
  PredId edge = p.AddPredicate("edge", 2);
  ASSERT_TRUE(p.AddFact(edge, {0, 1}).ok());
  SemiNaive eval(&p);
  eval.Run();
  size_t n = eval.TotalTuples();
  eval.Run();
  EXPECT_EQ(eval.TotalTuples(), n);
}

TEST(SemiNaiveTest, ConstantsInRules) {
  Program p;
  PredId edge = p.AddPredicate("edge", 2);
  PredId from_zero = p.AddPredicate("from_zero", 1);
  ASSERT_TRUE(p.AddFact(edge, {0, 1}).ok());
  ASSERT_TRUE(p.AddFact(edge, {2, 3}).ok());
  ASSERT_TRUE(p.AddRule({DlAtom(from_zero, {V(0)}),
                         {DlAtom(edge, {C(0), V(0)})}})
                  .ok());
  SemiNaive eval(&p);
  eval.Run();
  EXPECT_EQ(eval.relation(from_zero).size(), 1u);
  EXPECT_EQ(eval.relation(from_zero).tuples()[0][0], 1u);
}

TEST(SemiNaiveTest, JoinWithRepeatedVariables) {
  Program p;
  PredId edge = p.AddPredicate("edge", 2);
  PredId looped = p.AddPredicate("looped", 1);
  ASSERT_TRUE(p.AddFact(edge, {0, 0}).ok());
  ASSERT_TRUE(p.AddFact(edge, {0, 1}).ok());
  ASSERT_TRUE(
      p.AddRule({DlAtom(looped, {V(0)}), {DlAtom(edge, {V(0), V(0)})}}).ok());
  SemiNaive eval(&p);
  eval.Run();
  EXPECT_EQ(eval.relation(looped).size(), 1u);
}

TEST(SemiNaiveTest, EvaluateRuleOnceDoesNotMaterialize) {
  Program p;
  PredId edge = p.AddPredicate("edge", 2);
  PredId out = p.AddPredicate("out", 2);
  ASSERT_TRUE(p.AddFact(edge, {0, 1}).ok());
  ASSERT_TRUE(p.AddFact(edge, {1, 2}).ok());
  SemiNaive eval(&p);
  eval.Run();
  DlRule query{DlAtom(out, {V(0), V(2)}),
               {DlAtom(edge, {V(0), V(1)}), DlAtom(edge, {V(1), V(2)})}};
  std::vector<std::vector<rdf::TermId>> rows = eval.EvaluateRuleOnce(query);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<rdf::TermId>{0, 2}));
  EXPECT_EQ(eval.relation(out).size(), 0u);  // not stored
}

TEST(DlRelationTest, InsertDedupAndIndex) {
  DlRelation rel(2);
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_FALSE(rel.Insert({1, 2}));
  EXPECT_TRUE(rel.Insert({1, 3}));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.Matching(0, 1).size(), 2u);
  EXPECT_EQ(rel.Matching(1, 3).size(), 1u);
  EXPECT_TRUE(rel.Matching(1, 99).empty());
  // Index extends after later inserts.
  EXPECT_TRUE(rel.Insert({1, 4}));
  EXPECT_EQ(rel.Matching(0, 1).size(), 3u);
}

}  // namespace
}  // namespace datalog
}  // namespace rdfref
