#include "rdf/graph.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfref {
namespace rdf {
namespace {

TEST(GraphTest, AddDeduplicates) {
  Graph g;
  TermId s = g.dict().InternUri("http://s");
  TermId p = g.dict().InternUri("http://p");
  TermId o = g.dict().InternUri("http://o");
  EXPECT_TRUE(g.Add(s, p, o));
  EXPECT_FALSE(g.Add(s, p, o));  // set semantics
  EXPECT_EQ(g.size(), 1u);
}

TEST(GraphTest, AddByTermInterns) {
  Graph g;
  g.Add(Term::Uri("http://s"), Term::Uri("http://p"), Term::Literal("v"));
  EXPECT_EQ(g.size(), 1u);
  EXPECT_NE(g.dict().Find(Term::Literal("v")), kInvalidTermId);
}

TEST(GraphTest, ContainsAndSortedTriples) {
  Graph g;
  g.AddUri("http://s2", "http://p", "http://o");
  g.AddUri("http://s1", "http://p", "http://o");
  std::vector<Triple> sorted = g.SortedTriples();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_LE(sorted[0].s, sorted[1].s);
  EXPECT_TRUE(g.Contains(sorted[0]));
  EXPECT_TRUE(g.Contains(sorted[1]));
}

TEST(GraphTest, CountSchemaTriples) {
  Graph g;
  TermId a = g.dict().InternUri("http://A");
  TermId b = g.dict().InternUri("http://B");
  TermId x = g.dict().InternUri("http://x");
  g.Add(a, vocab::kSubClassOfId, b);
  g.Add(a, vocab::kDomainId, b);
  g.Add(x, vocab::kTypeId, a);  // not a schema triple
  EXPECT_EQ(g.CountSchemaTriples(), 2u);
}

TEST(GraphTest, FreshBlanksAreDistinct) {
  Graph g;
  TermId b1 = g.FreshBlank();
  TermId b2 = g.FreshBlank();
  EXPECT_NE(b1, b2);
  EXPECT_TRUE(g.dict().Lookup(b1).is_blank());
}

TEST(GraphTest, MoveTransfersContents) {
  Graph g;
  g.AddUri("http://s", "http://p", "http://o");
  Graph moved = std::move(g);
  EXPECT_EQ(moved.size(), 1u);
}

TEST(TripleTest, OrderingAndEquality) {
  Triple a(1, 2, 3), b(1, 2, 4), c(1, 2, 3);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  TripleHash h;
  EXPECT_EQ(h(a), h(c));
}

}  // namespace
}  // namespace rdf
}  // namespace rdfref
