#include "storage/vertical_store.h"

#include <gtest/gtest.h>

#include "common/hash.h"
#include "engine/evaluator.h"
#include "query/sparql_parser.h"
#include "storage/store.h"

namespace rdfref {
namespace storage {
namespace {

class VerticalStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    s1_ = U("s1");
    s2_ = U("s2");
    p_ = U("p");
    q_ = U("q");
    o1_ = U("o1");
    o2_ = U("o2");
    graph_.Add(s1_, p_, o1_);
    graph_.Add(s1_, p_, o2_);
    graph_.Add(s2_, p_, o1_);
    graph_.Add(s1_, q_, o1_);
    graph_.Add(s2_, q_, o2_);
    store_ = std::make_unique<VerticalStore>(graph_);
  }

  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  rdf::Graph graph_;
  std::unique_ptr<VerticalStore> store_;
  rdf::TermId s1_, s2_, p_, q_, o1_, o2_;
};

TEST_F(VerticalStoreTest, SizesAndTables) {
  EXPECT_EQ(store_->size(), 5u);
  EXPECT_EQ(store_->num_properties(), 2u);
}

TEST_F(VerticalStoreTest, AllPatternShapesAgreeWithStore) {
  Store reference(graph_);
  const rdf::TermId terms[] = {kAny, s1_, s2_, o1_, o2_, p_, q_};
  for (rdf::TermId s : terms) {
    for (rdf::TermId p : {kAny, p_, q_}) {
      for (rdf::TermId o : terms) {
        EXPECT_EQ(store_->CountMatches(s, p, o),
                  reference.CountMatches(s, p, o))
            << "pattern (" << s << ", " << p << ", " << o << ")";
      }
    }
  }
}

TEST_F(VerticalStoreTest, ScanDeliversMatchingTriples) {
  size_t visited = 0;
  store_->Scan(kAny, p_, o1_, [&](const rdf::Triple& t) {
    EXPECT_EQ(t.p, p_);
    EXPECT_EQ(t.o, o1_);
    ++visited;
  });
  EXPECT_EQ(visited, 2u);
}

TEST_F(VerticalStoreTest, UnboundPropertyUnionsAllTables) {
  size_t visited = 0;
  store_->Scan(s1_, kAny, kAny, [&](const rdf::Triple& t) {
    EXPECT_EQ(t.s, s1_);
    ++visited;
  });
  EXPECT_EQ(visited, 3u);
}

TEST_F(VerticalStoreTest, UnknownPropertyMatchesNothing) {
  EXPECT_EQ(store_->CountMatches(kAny, U("ghost"), kAny), 0u);
}

TEST_F(VerticalStoreTest, EvaluatorRunsOnVerticalBackend) {
  auto q = query::ParseSparql(
      "SELECT ?x ?o WHERE { ?x <http://ex/p> ?y . ?x <http://ex/q> ?o . }",
      &graph_.dict());
  ASSERT_TRUE(q.ok());
  engine::Evaluator vertical(store_.get());
  Store reference(graph_);
  engine::Evaluator clustered(&reference);
  engine::Table a = vertical.EvaluateCq(*q);
  engine::Table b = clustered.EvaluateCq(*q);
  a.Sort();
  b.Sort();
  EXPECT_EQ(a.RowVectors(), b.RowVectors());
}

TEST_F(VerticalStoreTest, RandomizedAgreementWithClusteredStore) {
  rdf::Graph g;
  Rng rng(99);
  std::vector<rdf::TermId> terms;
  for (int i = 0; i < 12; ++i) {
    terms.push_back(g.dict().InternUri("http://r/t" + std::to_string(i)));
  }
  for (int i = 0; i < 200; ++i) {
    g.Add(terms[rng.Uniform(12)], terms[rng.Uniform(4)],
          terms[rng.Uniform(12)]);
  }
  VerticalStore vertical(g);
  Store clustered(g);
  for (int trial = 0; trial < 200; ++trial) {
    rdf::TermId s = rng.Chance(0.5) ? kAny : terms[rng.Uniform(12)];
    rdf::TermId p = rng.Chance(0.5) ? kAny : terms[rng.Uniform(4)];
    rdf::TermId o = rng.Chance(0.5) ? kAny : terms[rng.Uniform(12)];
    EXPECT_EQ(vertical.CountMatches(s, p, o),
              clustered.CountMatches(s, p, o));
  }
}

}  // namespace
}  // namespace storage
}  // namespace rdfref
