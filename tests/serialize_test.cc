#include "storage/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "datagen/bibliography.h"
#include "rdf/parser.h"
#include "rdf/vocab.h"
#include "schema/encoder.h"
#include "testing/scenario.h"

namespace rdfref {
namespace storage {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(SerializeTest, RoundTripPreservesGraph) {
  rdf::Graph graph;
  datagen::Bibliography::AddFigure2Graph(&graph);
  const std::string path = TempPath("bib.rdfb");
  ASSERT_TRUE(SaveGraph(graph, path).ok());

  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), graph.size());
  EXPECT_EQ(loaded->dict().size(), graph.dict().size());
  // Same serialization => same graph.
  EXPECT_EQ(rdf::ToNTriples(*loaded), rdf::ToNTriples(graph));
  std::remove(path.c_str());
}

TEST(SerializeTest, PreservesTermKinds) {
  rdf::Graph graph;
  rdf::TermId s = graph.dict().InternUri("http://s");
  rdf::TermId p = graph.dict().InternUri("http://p");
  rdf::TermId lit = graph.dict().InternLiteral("a literal");
  rdf::TermId blank = graph.dict().InternBlank("b0");
  graph.Add(s, p, lit);
  graph.Add(blank, p, s);
  const std::string path = TempPath("kinds.rdfb");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->dict().Lookup(lit).is_literal());
  EXPECT_TRUE(loaded->dict().Lookup(blank).is_blank());
  std::remove(path.c_str());
}

TEST(SerializeTest, MissingFileIsNotFound) {
  EXPECT_EQ(LoadGraph("/no/such/file.rdfb").status().code(),
            StatusCode::kNotFound);
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.rdfb");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph image";
  }
  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SerializeTest, TruncatedFileRejected) {
  rdf::Graph graph;
  graph.AddUri("http://s", "http://p", "http://o");
  const std::string path = TempPath("trunc.rdfb");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  // Chop the file in half.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  auto half = static_cast<long>(in.tellg()) / 2;
  std::string data(static_cast<size_t>(half), '\0');
  in.seekg(0);
  in.read(data.data(), half);
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), half);
  }
  EXPECT_EQ(LoadGraph(path).status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(SerializeTest, GeneratedScenariosRoundTrip) {
  // Property test over the fuzz generator's graphs: save → load preserves
  // the triple set, the dictionary (ids and kinds), and the N-Triples
  // rendering, for a spread of random schema/data shapes.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    rdfref::testing::Scenario sc = rdfref::testing::GenerateScenario(seed);
    const std::string path =
        TempPath(("scenario" + std::to_string(seed) + ".rdfb").c_str());
    ASSERT_TRUE(SaveGraph(sc.graph, path).ok());
    auto loaded = LoadGraph(path);
    ASSERT_TRUE(loaded.ok()) << "seed=" << seed << ": " << loaded.status();
    EXPECT_EQ(loaded->size(), sc.graph.size()) << "seed=" << seed;
    EXPECT_EQ(loaded->dict().size(), sc.graph.dict().size());
    EXPECT_EQ(rdf::ToNTriples(*loaded), rdf::ToNTriples(sc.graph));
    std::remove(path.c_str());
  }
}

TEST(SerializeTest, EncodedDictionaryRoundTripsBitIdentically) {
  // Hierarchy-encode, save, load: the loaded dictionary must carry the
  // SAME TermEncoding (intervals + SCC table), and re-saving the loaded
  // graph must reproduce the file byte for byte.
  rdf::Graph graph;
  rdf::Dictionary& dict = graph.dict();
  rdf::TermId a = dict.InternUri("http://t/A");
  rdf::TermId b = dict.InternUri("http://t/B");
  rdf::TermId c = dict.InternUri("http://t/C");
  graph.Add(a, rdf::vocab::kSubClassOfId, b);
  graph.Add(c, rdf::vocab::kSubClassOfId, b);
  graph.Add(b, rdf::vocab::kSubClassOfId, a);  // cycle {A, B} plus leaf C
  graph.Add(dict.InternUri("http://t/x"), rdf::vocab::kTypeId, c);
  schema::EncodeGraphHierarchy(&graph);
  ASSERT_NE(graph.dict().encoding(), nullptr);

  const std::string path = TempPath("encoded.rdfb");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_NE(loaded->dict().encoding(), nullptr);
  EXPECT_EQ(*loaded->dict().encoding(), *graph.dict().encoding());
  EXPECT_EQ(rdf::ToNTriples(*loaded), rdf::ToNTriples(graph));

  const std::string path2 = TempPath("encoded2.rdfb");
  ASSERT_TRUE(SaveGraph(*loaded, path2).ok());
  auto slurp = [](const std::string& p) {
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };
  EXPECT_EQ(slurp(path), slurp(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST(SerializeTest, UnencodedGraphHasNoEncodingAfterLoad) {
  rdf::Graph graph;
  graph.AddUri("http://s", "http://p", "http://o");
  const std::string path = TempPath("plain.rdfb");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->dict().encoding(), nullptr);
  std::remove(path.c_str());
}

TEST(SerializeTest, Version1ImagesStillLoad) {
  // A v1 image is a v2 image minus the trailing encoding section: write
  // one by hand and check the loader accepts it.
  rdf::Graph graph;
  graph.AddUri("http://s", "http://p", "http://o");
  const std::string path = TempPath("v1.rdfb");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  in.close();
  std::string image = buffer.str();
  ASSERT_GE(image.size(), 12u);
  image[4] = 1;                              // version byte (little-endian)
  image.resize(image.size() - 4);            // drop u32(has_encoding)
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(image.data(), static_cast<std::streamsize>(image.size()));
  }
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), graph.size());
  EXPECT_EQ(loaded->dict().encoding(), nullptr);
  std::remove(path.c_str());
}

TEST(SerializeTest, EmptyGraphRoundTrips) {
  rdf::Graph graph;  // only the built-ins in the dictionary
  const std::string path = TempPath("empty.rdfb");
  ASSERT_TRUE(SaveGraph(graph, path).ok());
  auto loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace storage
}  // namespace rdfref
