// The fuzzing harness tested against itself: a clean run over a seed range
// finds nothing, an injected evaluator bug (the mutation check) is caught
// AND shrunk to a tiny 1-minimal repro, and the replay seed files
// round-trip. These are the acceptance criteria of the differential
// testing subsystem — if the harness can't catch a planted bug, its green
// runs mean nothing.

#include <gtest/gtest.h>

#include <string>
#include <utility>

#include "api/query_answering.h"
#include "query/sparql_parser.h"
#include "rdf/vocab.h"
#include "testing/fuzz.h"
#include "testing/oracle.h"

namespace rdfref {
namespace {

using testing::FuzzOptions;
using testing::FuzzReport;

// A small clean sweep: every strategy, every metamorphic relation, no
// divergence. (CI's fuzz-smoke job runs a much larger range; this keeps a
// canary inside ctest.)
TEST(FuzzHarnessTest, CleanSweepFindsNothing) {
  FuzzOptions options;
  options.trials_per_seed = 2;
  FuzzReport report = testing::RunFuzz(0, 8, options);
  EXPECT_TRUE(report.ok()) << (report.failures.empty()
                                   ? ""
                                   : report.failures.front().detail);
  EXPECT_EQ(report.seeds_run, 9u);
  EXPECT_EQ(report.queries_checked, 18u);
  EXPECT_GT(report.checks_run, report.queries_checked);
}

// The mutation check: corrupt Ref-SCQ's answers (drop one row) and the
// oracle MUST notice, name the right relation, and shrink the case to at
// most 10 triples and 3 atoms.
TEST(FuzzHarnessTest, InjectedBugIsCaughtAndShrunkSmall) {
  FuzzOptions options;
  options.mutate = [](api::Strategy s, engine::Table* t) {
    if (s == api::Strategy::kRefScq && !t->empty()) {
      t->RemoveLastRow();
    }
  };
  // The oracle alone sees this; skip the slower relations.
  options.check_columnar = false;
  options.check_metamorphic = false;
  options.check_federation = false;
  options.check_updates = false;

  FuzzReport report = testing::RunFuzz(0, 30, options);
  ASSERT_FALSE(report.ok()) << "injected bug was not caught";
  const testing::FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.relation, "oracle:REF-SCQ");
  EXPECT_LE(failure.shrunk.triples(), 10u);
  EXPECT_LE(failure.shrunk.query.body().size(), 3u);
  EXPECT_GE(failure.shrunk.query.body().size(), 1u);
  EXPECT_NE(failure.repro_cc.find("TEST(FuzzRepro"), std::string::npos);
  EXPECT_NE(failure.repro_cc.find("api::QueryAnswerer"), std::string::npos);
  EXPECT_NE(failure.seed_file.find("relation oracle:REF-SCQ"),
            std::string::npos);
}

// A spurious-extra-row bug must be caught too (the dual of a lost tuple).
TEST(FuzzHarnessTest, SpuriousRowIsCaught) {
  FuzzOptions options;
  options.mutate = [](api::Strategy s, engine::Table* t) {
    if (s == api::Strategy::kRefGcov && !t->empty()) {
      const std::vector<rdf::TermId> first(t->row(0).begin(),
                                           t->row(0).end());
      t->AppendRow(first);
      for (auto& id : t->MutableRow(t->NumRows() - 1)) {
        id = rdf::vocab::kTypeId;
      }
    }
  };
  options.check_columnar = false;
  options.check_metamorphic = false;
  options.check_federation = false;
  options.check_updates = false;
  options.shrink = false;

  FuzzReport report = testing::RunFuzz(0, 30, options);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.failures.front().relation, "oracle:REF-GCOV");
}

TEST(FuzzHarnessTest, SeedFileRoundTrips) {
  const std::string contents =
      testing::EmitSeedFile(1234567, 3, "metamorphic:threads=8:REF-UCQ");
  testing::SeedFileEntry entry;
  ASSERT_TRUE(testing::ParseSeedFile(contents, &entry));
  EXPECT_EQ(entry.seed, 1234567u);
  EXPECT_EQ(entry.trial, 3);
  EXPECT_EQ(entry.relation, "metamorphic:threads=8:REF-UCQ");

  // Malformed inputs are rejected, comments tolerated.
  EXPECT_FALSE(testing::ParseSeedFile("trial 2\n", &entry));
  EXPECT_TRUE(testing::ParseSeedFile("# note\nseed 9\n", &entry));
  EXPECT_EQ(entry.seed, 9u);
}

// Replaying a recorded failure reproduces it deterministically.
TEST(FuzzHarnessTest, ReplayReproducesFailure) {
  FuzzOptions options;
  options.mutate = [](api::Strategy s, engine::Table* t) {
    if (s == api::Strategy::kRefScq && !t->empty()) t->RemoveLastRow();
  };
  options.check_columnar = false;
  options.check_metamorphic = false;
  options.check_federation = false;
  options.check_updates = false;
  options.shrink = false;

  FuzzReport first = testing::RunFuzz(0, 30, options);
  ASSERT_FALSE(first.ok());

  testing::SeedFileEntry entry;
  ASSERT_TRUE(testing::ParseSeedFile(first.failures.front().seed_file,
                                     &entry));
  FuzzReport replay;
  testing::RunFuzzSeed(entry.seed, options, &replay);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.failures.front().relation,
            first.failures.front().relation);
  EXPECT_EQ(replay.failures.front().trial, first.failures.front().trial);
}

// SPARQL serialization must be stable across re-encoding: ToSparql emits
// IRIs, never raw TermIds, so a query's text survives any id permutation
// and re-parses against the permuted dictionary to the same answers.
TEST(FuzzHarnessTest, ToSparqlRoundTripStableUnderReencoding) {
  rdf::Graph g;
  {
    rdf::Dictionary& dict = g.dict();
    rdf::TermId top = dict.InternUri("http://ex/Top");
    rdf::TermId mid = dict.InternUri("http://ex/Mid");
    rdf::TermId leaf = dict.InternUri("http://ex/Leaf");
    g.Add(mid, rdf::vocab::kSubClassOfId, top);
    g.Add(leaf, rdf::vocab::kSubClassOfId, mid);
    for (int i = 0; i < 4; ++i) {
      g.Add(dict.InternUri("http://ex/s" + std::to_string(i)),
            rdf::vocab::kTypeId, i % 2 == 0 ? leaf : mid);
    }
  }
  api::QueryAnswerer answerer(std::move(g));

  auto parsed = query::ParseSparql(
      "SELECT ?x WHERE { ?x a <http://ex/Top> . }", &answerer.dict());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto text = query::ToSparql(*parsed, answerer.dict());
  ASSERT_TRUE(text.ok()) << text.status();
  EXPECT_EQ(text->find("http://ex/Top") != std::string::npos, true);

  auto before = answerer.Answer(*parsed, api::Strategy::kRefUcq);
  ASSERT_TRUE(before.ok()) << before.status();
  const std::set<testing::DecodedRow> before_rows =
      testing::DecodeRows(*before, answerer.dict());
  EXPECT_EQ(before_rows.size(), 4u);

  // Re-encode: every TermId may move, invalidating *parsed's constants —
  // but not the SPARQL text, which re-parses to the same decoded answers
  // and re-serializes to the identical string.
  answerer.Reencode();
  auto reparsed = query::ParseSparql(*text, &answerer.dict());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  auto after = answerer.Answer(*reparsed, api::Strategy::kRefUcq);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(testing::DecodeRows(*after, answerer.dict()), before_rows);

  auto text2 = query::ToSparql(*reparsed, answerer.dict());
  ASSERT_TRUE(text2.ok()) << text2.status();
  EXPECT_EQ(*text2, *text);
}

}  // namespace
}  // namespace rdfref
