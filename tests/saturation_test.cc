#include "reasoner/saturation.h"

#include <gtest/gtest.h>

#include "datagen/bibliography.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace reasoner {
namespace {

namespace vocab = rdf::vocab;

class SaturationTest : public ::testing::Test {
 protected:
  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }
  rdf::TermId Lit(const std::string& v) {
    return graph_.dict().InternLiteral(v);
  }
  schema::Schema MakeSchema() {
    schema::Schema s = schema::Schema::FromGraph(graph_);
    s.Saturate();
    return s;
  }
  rdf::Graph graph_;
};

TEST_F(SaturationTest, SubClassRule) {
  graph_.Add(U("Book"), vocab::kSubClassOfId, U("Publication"));
  graph_.Add(U("doi1"), vocab::kTypeId, U("Book"));
  schema::Schema s = MakeSchema();
  Saturator sat(&s);
  sat.Saturate(&graph_);
  EXPECT_TRUE(graph_.Contains(
      rdf::Triple(U("doi1"), vocab::kTypeId, U("Publication"))));
}

TEST_F(SaturationTest, SubClassChain) {
  graph_.Add(U("A"), vocab::kSubClassOfId, U("B"));
  graph_.Add(U("B"), vocab::kSubClassOfId, U("C"));
  graph_.Add(U("x"), vocab::kTypeId, U("A"));
  schema::Schema s = MakeSchema();
  Saturator(&s).Saturate(&graph_);
  EXPECT_TRUE(graph_.Contains(rdf::Triple(U("x"), vocab::kTypeId, U("C"))));
  // The schema closure itself is in the saturated graph.
  EXPECT_TRUE(
      graph_.Contains(rdf::Triple(U("A"), vocab::kSubClassOfId, U("C"))));
}

TEST_F(SaturationTest, SubPropertyRule) {
  graph_.Add(U("writtenBy"), vocab::kSubPropertyOfId, U("hasAuthor"));
  graph_.Add(U("doi1"), U("writtenBy"), U("b1"));
  schema::Schema s = MakeSchema();
  Saturator(&s).Saturate(&graph_);
  EXPECT_TRUE(graph_.Contains(rdf::Triple(U("doi1"), U("hasAuthor"), U("b1"))));
}

TEST_F(SaturationTest, DomainAndRangeRules) {
  graph_.Add(U("writtenBy"), vocab::kDomainId, U("Book"));
  graph_.Add(U("writtenBy"), vocab::kRangeId, U("Person"));
  graph_.Add(U("doi1"), U("writtenBy"), U("b1"));
  schema::Schema s = MakeSchema();
  Saturator(&s).Saturate(&graph_);
  EXPECT_TRUE(
      graph_.Contains(rdf::Triple(U("doi1"), vocab::kTypeId, U("Book"))));
  EXPECT_TRUE(
      graph_.Contains(rdf::Triple(U("b1"), vocab::kTypeId, U("Person"))));
}

TEST_F(SaturationTest, RangeDoesNotTypeLiterals) {
  graph_.Add(U("publishedIn"), vocab::kRangeId, U("Year"));
  graph_.Add(U("doi1"), U("publishedIn"), Lit("1949"));
  schema::Schema s = MakeSchema();
  Saturator(&s).Saturate(&graph_);
  EXPECT_FALSE(
      graph_.Contains(rdf::Triple(Lit("1949"), vocab::kTypeId, U("Year"))));
}

TEST_F(SaturationTest, CascadedDerivations) {
  // s p o  --rdfs7-->  s q o  --rdfs2(q)-->  s τ C  --rdfs9-->  s τ D.
  graph_.Add(U("p"), vocab::kSubPropertyOfId, U("q"));
  graph_.Add(U("q"), vocab::kDomainId, U("C"));
  graph_.Add(U("C"), vocab::kSubClassOfId, U("D"));
  graph_.Add(U("s"), U("p"), U("o"));
  schema::Schema s = MakeSchema();
  Saturator(&s).Saturate(&graph_);
  EXPECT_TRUE(graph_.Contains(rdf::Triple(U("s"), U("q"), U("o"))));
  EXPECT_TRUE(graph_.Contains(rdf::Triple(U("s"), vocab::kTypeId, U("C"))));
  EXPECT_TRUE(graph_.Contains(rdf::Triple(U("s"), vocab::kTypeId, U("D"))));
}

TEST_F(SaturationTest, SaturationIsIdempotent) {
  graph_.Add(U("A"), vocab::kSubClassOfId, U("B"));
  graph_.Add(U("x"), vocab::kTypeId, U("A"));
  schema::Schema s = MakeSchema();
  Saturator sat(&s);
  sat.Saturate(&graph_);
  size_t size_after_first = graph_.size();
  size_t added = sat.Saturate(&graph_);
  EXPECT_EQ(added, 0u);
  EXPECT_EQ(graph_.size(), size_after_first);
}

TEST_F(SaturationTest, IncrementalInsertMatchesFullSaturation) {
  graph_.Add(U("worksFor"), vocab::kSubPropertyOfId, U("memberOf"));
  graph_.Add(U("memberOf"), vocab::kDomainId, U("Person"));
  schema::Schema s = MakeSchema();
  Saturator sat(&s);
  sat.Saturate(&graph_);
  size_t before = graph_.size();

  size_t added = sat.Insert(&graph_, rdf::Triple(U("ann"), U("worksFor"),
                                                 U("dept")));
  // ann worksFor dept, ann memberOf dept, ann τ Person.
  EXPECT_EQ(added, 3u);
  EXPECT_EQ(graph_.size(), before + 3);
  EXPECT_TRUE(
      graph_.Contains(rdf::Triple(U("ann"), vocab::kTypeId, U("Person"))));

  // Inserting again derives nothing new.
  EXPECT_EQ(sat.Insert(&graph_, rdf::Triple(U("ann"), U("worksFor"),
                                            U("dept"))),
            0u);
}

TEST_F(SaturationTest, Figure2GraphEntailments) {
  datagen::Bibliography::AddFigure2Graph(&graph_);
  schema::Schema s = MakeSchema();
  Saturator(&s).Saturate(&graph_);

  auto uri = [&](const char* local) {
    return graph_.dict().InternUri(datagen::Bibliography::Uri(local));
  };
  rdf::TermId b1 = graph_.dict().InternBlank("b1");
  // The dashed (implicit) edges of Figure 2:
  EXPECT_TRUE(graph_.Contains(
      rdf::Triple(uri("doi1"), vocab::kTypeId, uri("Publication"))));
  EXPECT_TRUE(
      graph_.Contains(rdf::Triple(uri("doi1"), uri("hasAuthor"), b1)));
  EXPECT_TRUE(
      graph_.Contains(rdf::Triple(b1, vocab::kTypeId, uri("Person"))));
}

}  // namespace
}  // namespace reasoner
}  // namespace rdfref
