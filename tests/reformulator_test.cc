#include "reformulation/reformulator.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datagen/bibliography.h"
#include "query/sparql_parser.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace reformulation {
namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::Ucq;
using query::VarId;
namespace vocab = rdf::vocab;

class ReformulatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::Bibliography::AddFigure2Graph(&graph_);
    schema_ = schema::Schema::FromGraph(graph_);
    schema_.Saturate();
  }

  rdf::TermId Bib(const char* local) {
    return graph_.dict().InternUri(datagen::Bibliography::Uri(local));
  }

  std::set<std::string> Keys(const Ucq& ucq) {
    std::set<std::string> keys;
    for (const Cq& cq : ucq.members()) keys.insert(cq.CanonicalKey());
    return keys;
  }

  rdf::Graph graph_;
  schema::Schema schema_;
};

TEST_F(ReformulatorTest, TypeAtomWithConstantClass) {
  // q(x) :- x rdf:type Publication. Saturated schema: Book ⊑sc Publication,
  // writtenBy ←d {Book, Publication}, writtenBy ←r Person.
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                 QTerm::Const(Bib("Publication"))));
  q.AddHead(QTerm::Var(x));

  Reformulator ref(&schema_);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok()) << ucq.status();
  // original, rule 1 → (x τ Book), rule 2 → (x writtenBy fresh).
  EXPECT_EQ(ucq->size(), 3u);
}

TEST_F(ReformulatorTest, TypeAtomRangeRule) {
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                 QTerm::Const(Bib("Person"))));
  q.AddHead(QTerm::Var(x));
  Reformulator ref(&schema_);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  // original + rule 3 → (fresh writtenBy x).
  ASSERT_EQ(ucq->size(), 2u);
  bool found_range_member = false;
  for (const Cq& member : ucq->members()) {
    const Atom& a = member.body()[0];
    if (!a.p.is_var && a.p.term() == Bib("writtenBy") && a.s.is_var &&
        a.o.is_var && a.o.var() == 0) {
      found_range_member = true;
    }
  }
  EXPECT_TRUE(found_range_member);
}

TEST_F(ReformulatorTest, PropertyAtomSubPropertyRule) {
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(Bib("hasAuthor")),
                 QTerm::Var(y)));
  q.AddHead(QTerm::Var(x));
  Reformulator ref(&schema_);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 2u);  // original + writtenBy
}

TEST_F(ReformulatorTest, TypeAtomWithVariableClassBindsIt) {
  // q(x, u) :- x rdf:type u.
  Cq q;
  VarId x = q.AddVar("x");
  VarId u = q.AddVar("u");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                 QTerm::Var(u)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Var(u));
  Reformulator ref(&schema_);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  // original + rule5 (Book⊑Publication) + rule6 (writtenBy ←d Book,
  // writtenBy ←d Publication) + rule7 (writtenBy ←r Person) = 5.
  EXPECT_EQ(ucq->size(), 5u);
  // Every non-original member binds u in the head to a constant.
  size_t bound_heads = 0;
  for (const Cq& member : ucq->members()) {
    if (!member.head()[1].is_var) ++bound_heads;
  }
  EXPECT_EQ(bound_heads, 4u);
}

TEST_F(ReformulatorTest, VariablePropertyRules8To13) {
  // q(x, p, y) :- x p y.
  Cq q;
  VarId x = q.AddVar("x");
  VarId p = q.AddVar("p");
  VarId y = q.AddVar("y");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Var(p), QTerm::Var(y)));
  q.AddHead(QTerm::Var(x));
  q.AddHead(QTerm::Var(p));
  q.AddHead(QTerm::Var(y));
  Reformulator ref(&schema_);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  // original
  // rule 8: (x writtenBy y) p→hasAuthor
  // rule 9: (x τ y) p→τ, then rules 5-7 on the variable class y:
  //         (x τ Book) y→Book, (x writtenBy f) y→{Book, Publication},
  //         (f writtenBy x) y→Person
  // rules 10-13: the four schema properties.
  EXPECT_EQ(ucq->size(), 1u + 1u + 1u + 4u + 4u);
}

TEST_F(ReformulatorTest, SchemaPropertyAtomNotRewritten) {
  Cq q;
  VarId c = q.AddVar("c");
  q.AddAtom(Atom(QTerm::Var(c), QTerm::Const(vocab::kSubClassOfId),
                 QTerm::Const(Bib("Publication"))));
  q.AddHead(QTerm::Var(c));
  Reformulator ref(&schema_);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 1u);  // answered against the saturated schema
}

TEST_F(ReformulatorTest, Section3QueryReformulation) {
  // q(x3) :- x1 hasAuthor x2, x2 hasName x3, x1 x4 "1949".
  Result<Cq> q = query::ParseSparql(
      "PREFIX bib: <http://example.org/bib/>\n"
      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . ?x2 bib:hasName ?x3 . "
      "?x1 ?x4 \"1949\" . }",
      &graph_.dict());
  ASSERT_TRUE(q.ok()) << q.status();
  Reformulator ref(&schema_);
  ASSERT_TRUE(ref.AtomsIndependent(*q));
  Result<Ucq> ucq = ref.Reformulate(*q);
  ASSERT_TRUE(ucq.ok());
  // atom1: 2 (hasAuthor, writtenBy); atom2: 1; atom3 (var property):
  // 1 + rule8 (writtenBy) + rule9 (τ) + rules 10-13 = 7.
  EXPECT_EQ(ucq->size(), 2u * 1u * 7u);
  Result<uint64_t> count = ref.CountReformulations(*q);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, ucq->size());
}

TEST_F(ReformulatorTest, CascadedSubPropertyAfterDomainRule) {
  // With p' ⊑sp p and p ←d C: (x τ C) reformulates into the original,
  // (x p f) and, cascading rule 4, (x p' f).
  schema::Schema s;
  rdf::TermId p = graph_.dict().InternUri("http://ex/p");
  rdf::TermId pp = graph_.dict().InternUri("http://ex/pp");
  rdf::TermId c = graph_.dict().InternUri("http://ex/C");
  s.AddSubProperty(pp, p);
  s.AddDomain(p, c);
  s.Saturate();
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                 QTerm::Const(c)));
  q.AddHead(QTerm::Var(x));
  Reformulator ref(&s);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  // original, (x p f) [rule2], (x pp f) [rule2 via S5, also rule4 after
  // rule2 — deduplicated].
  EXPECT_EQ(ucq->size(), 3u);
}

TEST_F(ReformulatorTest, WorklistPathMatchesProductPathWhenBothApply) {
  // Interaction: u is in the class position of t0 AND the subject of t1 —
  // the product fast path must be rejected and the worklist used.
  Cq q;
  VarId x = q.AddVar("x");
  VarId u = q.AddVar("u");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                 QTerm::Var(u)));
  q.AddAtom(Atom(QTerm::Var(u), QTerm::Const(vocab::kSubClassOfId),
                 QTerm::Const(Bib("Publication"))));
  q.AddHead(QTerm::Var(x));
  Reformulator ref(&schema_);
  EXPECT_FALSE(ref.AtomsIndependent(q));
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  // Sound: every member whose t0 was specialized must have u substituted
  // in t1 as well.
  for (const Cq& member : ucq->members()) {
    const Atom& t0 = member.body()[0];
    const Atom& t1 = member.body()[1];
    if (!t0.o.is_var || t0.o.var() != u || !t0.p.is_var) {
      // u was bound (or t0 rewritten away from the original shape):
      // then t1's subject cannot still be the variable u.
      if (!t0.o.is_var && !t0.p.is_var &&
          t0.p.term() == vocab::kTypeId) {
        EXPECT_FALSE(t1.s.is_var && t1.s.var() == u)
            << member.ToString(graph_.dict());
      }
    }
  }
}

TEST_F(ReformulatorTest, BudgetEnforced) {
  Cq q;
  VarId x = q.AddVar("x");
  VarId u = q.AddVar("u");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                 QTerm::Var(u)));
  q.AddHead(QTerm::Var(x));
  ReformulationOptions options;
  options.max_cqs = 2;  // the reformulation has 5 members
  Reformulator ref(&schema_, options);
  EXPECT_EQ(ref.Reformulate(q).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(ReformulatorTest, EmptyQueryRejected) {
  Cq q;
  Reformulator ref(&schema_);
  EXPECT_FALSE(ref.Reformulate(q).ok());
  EXPECT_FALSE(ref.CountReformulations(q).ok());
}

TEST_F(ReformulatorTest, OriginalQueryAlwaysMember) {
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(Bib("hasAuthor")),
                 QTerm::Const(Bib("doi1"))));
  q.AddHead(QTerm::Var(x));
  Reformulator ref(&schema_);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_TRUE(Keys(*ucq).count(q.CanonicalKey()));
}

TEST_F(ReformulatorTest, IncompleteRefIgnoresDomainAndRange) {
  Cq q;
  VarId x = q.AddVar("x");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(vocab::kTypeId),
                 QTerm::Const(Bib("Publication"))));
  q.AddHead(QTerm::Var(x));
  IncompleteReformulator incomplete(&schema_);
  Result<Ucq> ucq = incomplete.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  // Only original + subclass member; the domain-rule member is missing.
  EXPECT_EQ(ucq->size(), 2u);
}

TEST_F(ReformulatorTest, ProductAndWorklistPathsAgree) {
  // Differential check: the fast product path and the general worklist
  // produce the same UCQ (modulo variable renaming) whenever both apply.
  Result<Cq> q = query::ParseSparql(
      "PREFIX bib: <http://example.org/bib/>\n"
      "SELECT ?x ?u WHERE { ?x rdf:type ?u . ?x bib:hasAuthor ?a . "
      "?a bib:hasName ?n . }",
      &graph_.dict());
  ASSERT_TRUE(q.ok());
  Reformulator fast(&schema_);
  ReformulationOptions worklist_options;
  worklist_options.force_worklist = true;
  Reformulator slow(&schema_, worklist_options);
  ASSERT_TRUE(fast.AtomsIndependent(*q));
  Result<Ucq> a = fast.Reformulate(*q);
  Result<Ucq> b = slow.Reformulate(*q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Keys(*a), Keys(*b));
}

TEST_F(ReformulatorTest, EmptySchemaLeavesQueryAlone) {
  schema::Schema empty;
  empty.Saturate();
  Cq q;
  VarId x = q.AddVar("x");
  VarId y = q.AddVar("y");
  q.AddAtom(Atom(QTerm::Var(x), QTerm::Const(Bib("hasAuthor")),
                 QTerm::Var(y)));
  q.AddHead(QTerm::Var(x));
  Reformulator ref(&empty);
  Result<Ucq> ucq = ref.Reformulate(q);
  ASSERT_TRUE(ucq.ok());
  EXPECT_EQ(ucq->size(), 1u);
}

}  // namespace
}  // namespace reformulation
}  // namespace rdfref
