#include "federation/federation.h"

#include <gtest/gtest.h>

#include "query/sparql_parser.h"
#include "rdf/parser.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace federation {
namespace {

// Two independent endpoints reproducing the paper's Section 1 situation:
// the *fact* lives in one endpoint and the *constraint* in another, so the
// implicit fact exists only across the federation.
class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Endpoint A: bibliographic facts, no constraints.
    ASSERT_TRUE(rdf::TurtleParser::ParseString(
                    "@prefix bib: <http://example.org/bib/> .\n"
                    "bib:doi1 a bib:Book .\n"
                    "bib:doi1 bib:writtenBy _:b1 .\n"
                    "_:b1 bib:hasName \"J. L. Borges\" .\n",
                    &data_graph_)
                    .ok());
    // Endpoint B: the ontology, no facts.
    ASSERT_TRUE(rdf::TurtleParser::ParseString(
                    "@prefix bib: <http://example.org/bib/> .\n"
                    "bib:Book rdfs:subClassOf bib:Publication .\n"
                    "bib:writtenBy rdfs:subPropertyOf bib:hasAuthor .\n"
                    "bib:writtenBy rdfs:domain bib:Book .\n"
                    "bib:writtenBy rdfs:range bib:Person .\n",
                    &schema_graph_)
                    .ok());
  }

  query::Cq Parse(Federation* federation, const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text,
        &federation->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  rdf::Graph data_graph_, schema_graph_;
};

TEST_F(FederationTest, CrossEndpointEntailment) {
  Federation federation;
  federation.AddEndpoint("facts", data_graph_);
  federation.AddEndpoint("ontology", schema_graph_);

  // Publications exist only through the constraint in the other endpoint.
  query::Cq q = Parse(&federation,
                      "SELECT ?x WHERE { ?x a bib:Publication . }");
  engine::Table naive = federation.EvaluateWithoutReasoning(q);
  EXPECT_EQ(naive.NumRows(), 0u);

  auto ref = federation.Answer(q);
  ASSERT_TRUE(ref.ok()) << ref.status();
  EXPECT_EQ(ref->NumRows(), 1u);
}

TEST_F(FederationTest, LocalSaturationIsNotEnough) {
  // Even if the fact endpoint saturates locally, it lacks the constraints,
  // so the implicit Publication typing is still missing without Ref.
  Federation federation;
  EndpointOptions saturated;
  saturated.locally_saturated = true;
  federation.AddEndpoint("facts", data_graph_, saturated);
  federation.AddEndpoint("ontology", schema_graph_, saturated);

  query::Cq q = Parse(&federation,
                      "SELECT ?x WHERE { ?x a bib:Publication . }");
  EXPECT_EQ(federation.EvaluateWithoutReasoning(q).NumRows(), 0u);
  auto ref = federation.Answer(q);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(ref->NumRows(), 1u);
}

TEST_F(FederationTest, LocalSaturationHelpsLocally) {
  // When one endpoint holds both fact and constraint, local saturation
  // materializes the consequence and the naive mediator sees it.
  rdf::Graph combined;
  ASSERT_TRUE(rdf::TurtleParser::ParseString(
                  "@prefix bib: <http://example.org/bib/> .\n"
                  "bib:doi1 a bib:Book .\n"
                  "bib:Book rdfs:subClassOf bib:Publication .\n",
                  &combined)
                  .ok());
  Federation federation;
  EndpointOptions saturated;
  saturated.locally_saturated = true;
  federation.AddEndpoint("combined", combined, saturated);
  query::Cq q = Parse(&federation,
                      "SELECT ?x WHERE { ?x a bib:Publication . }");
  EXPECT_EQ(federation.EvaluateWithoutReasoning(q).NumRows(), 1u);
}

TEST_F(FederationTest, AnswerLimitsTruncateNaiveEvaluation) {
  // A rate-limited endpoint returns only the first k triples per request:
  // the naive mediator silently loses answers (Section 1: sources "return
  // only restricted answers ... to avoid overloading their servers").
  rdf::Graph big;
  for (int i = 0; i < 50; ++i) {
    big.AddUri("http://ex/s" + std::to_string(i), "http://ex/knows",
               "http://ex/o");
  }
  Federation federation;
  EndpointOptions limited;
  limited.max_answers_per_request = 10;
  federation.AddEndpoint("limited", big, limited);

  query::Cq q = *query::ParseSparql(
      "SELECT ?x WHERE { ?x <http://ex/knows> ?y . }", &federation.dict());
  EXPECT_EQ(federation.EvaluateWithoutReasoning(q).NumRows(), 10u);
}

TEST_F(FederationTest, SharedDictionaryJoinsAcrossEndpoints) {
  // The same URI in two endpoints is one value in the mediator: joins
  // spanning endpoints work.
  rdf::Graph a, b;
  a.AddUri("http://ex/ann", "http://ex/knows", "http://ex/bob");
  b.AddUri("http://ex/bob", "http://ex/knows", "http://ex/carl");
  Federation federation;
  federation.AddEndpoint("a", a);
  federation.AddEndpoint("b", b);
  query::Cq q = *query::ParseSparql(
      "SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . "
      "?y <http://ex/knows> ?z . }",
      &federation.dict());
  auto table = federation.Answer(q);
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(table->NumRows(), 1u);
}

TEST_F(FederationTest, ExplicitCoverAccepted) {
  Federation federation;
  federation.AddEndpoint("facts", data_graph_);
  federation.AddEndpoint("ontology", schema_graph_);
  query::Cq q = Parse(&federation,
                      "SELECT ?x3 WHERE { ?x1 bib:hasAuthor ?x2 . "
                      "?x2 bib:hasName ?x3 . }");
  query::Cover cover({{0}, {1}});
  auto table = federation.Answer(q, &cover);
  ASSERT_TRUE(table.ok()) << table.status();
  ASSERT_EQ(table->NumRows(), 1u);
  EXPECT_EQ(federation.dict().Lookup(table->row(0)[0]).lexical,
            "J. L. Borges");
}

TEST_F(FederationTest, SchemaQueriesSeeMediatedClosure) {
  Federation federation;
  federation.AddEndpoint("facts", data_graph_);
  federation.AddEndpoint("ontology", schema_graph_);
  query::Cq q = Parse(&federation,
                      "SELECT ?c WHERE { ?c rdfs:subClassOf "
                      "bib:Publication . }");
  auto table = federation.Answer(q);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->NumRows(), 1u);  // Book, via the mediated schema
}

TEST_F(FederationTest, EmptyFederationRejected) {
  Federation federation;
  query::Cq q = *query::ParseSparql(
      "SELECT ?x WHERE { ?x <http://p> ?y . }", &federation.dict());
  EXPECT_FALSE(federation.Answer(q).ok());
}

TEST_F(FederationTest, MergedStatisticsSumCounts) {
  rdf::Graph a, b;
  a.AddUri("http://ex/s1", "http://ex/p", "http://ex/o");
  b.AddUri("http://ex/s2", "http://ex/p", "http://ex/o");
  Federation federation;
  federation.AddEndpoint("a", a);
  federation.AddEndpoint("b", b);
  storage::Statistics merged = federation.MergedStatistics();
  EXPECT_EQ(merged.total_triples(), 2u);
  rdf::TermId p = federation.dict().Find(rdf::Term::Uri("http://ex/p"));
  EXPECT_EQ(merged.ForProperty(p).count, 2u);
}

TEST_F(FederationTest, CountMatchesHonorsAnswerCaps) {
  // Cost-model cardinalities must match what Scan can actually deliver: a
  // rate-limited endpoint contributes at most its per-request cap.
  rdf::Graph big;
  for (int i = 0; i < 50; ++i) {
    big.AddUri("http://ex/s" + std::to_string(i), "http://ex/knows",
               "http://ex/o");
  }
  Federation federation;
  EndpointOptions limited;
  limited.max_answers_per_request = 10;
  federation.AddEndpoint("limited", big, limited);
  federation.AddEndpoint("unlimited", big);

  rdf::TermId knows =
      federation.dict().Find(rdf::Term::Uri("http://ex/knows"));
  EXPECT_EQ(federation.endpoints()[0]->CountMatches(storage::kAny, knows,
                                                    storage::kAny),
            10u);
  EXPECT_EQ(federation.endpoints()[1]->CountMatches(storage::kAny, knows,
                                                    storage::kAny),
            50u);
  EXPECT_EQ(federation.source().CountMatches(storage::kAny, knows,
                                             storage::kAny),
            60u);
}

TEST_F(FederationTest, RequestCountersAdvance) {
  Federation federation;
  federation.AddEndpoint("facts", data_graph_);
  query::Cq q = *query::ParseSparql(
      "SELECT ?x ?p ?y WHERE { ?x ?p ?y . }", &federation.dict());
  (void)federation.EvaluateWithoutReasoning(q);
  EXPECT_GT(federation.endpoints()[0]->requests_served(), 0u);
}

}  // namespace
}  // namespace federation
}  // namespace rdfref
