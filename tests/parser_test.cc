#include "rdf/parser.h"

#include <gtest/gtest.h>

#include "rdf/vocab.h"

namespace rdfref {
namespace rdf {
namespace {

TEST(TurtleParserTest, ParsesFullUris) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> <http://o> .\n", &g);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleParserTest, ParsesPrefixes) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "@prefix ex: <http://example.org/> .\n"
      "ex:s ex:p ex:o .\n",
      &g);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_NE(g.dict().Find(Term::Uri("http://example.org/s")), kInvalidTermId);
}

TEST(TurtleParserTest, ParsesLiteralsBlanksAndA) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "@prefix ex: <http://example.org/> .\n"
      "ex:doi1 a ex:Book .\n"
      "ex:doi1 ex:writtenBy _:b1 .\n"
      "_:b1 ex:hasName \"J. L. Borges\" .\n"
      "ex:doi1 ex:publishedIn \"1949\" .\n",
      &g);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(g.size(), 4u);
  // 'a' resolved to rdf:type
  TermId doi = g.dict().Find(Term::Uri("http://example.org/doi1"));
  TermId book = g.dict().Find(Term::Uri("http://example.org/Book"));
  EXPECT_TRUE(g.Contains(Triple(doi, vocab::kTypeId, book)));
  EXPECT_NE(g.dict().Find(Term::Literal("J. L. Borges")), kInvalidTermId);
  EXPECT_NE(g.dict().Find(Term::Blank("b1")), kInvalidTermId);
}

TEST(TurtleParserTest, SkipsCommentsAndBlankLines) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "# a comment\n"
      "\n"
      "<http://s> <http://p> <http://o> . # trailing comment\n",
      &g);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(g.size(), 1u);
}

TEST(TurtleParserTest, LiteralEscapesAndDatatypes) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> \"a \\\"quoted\\\" word\" .\n"
      "<http://s> <http://q> \"42\"^^<http://www.w3.org/2001/XMLSchema#int> .\n"
      "<http://s> <http://r> \"chat\"@fr .\n",
      &g);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(g.size(), 3u);
  EXPECT_NE(g.dict().Find(Term::Literal("a \"quoted\" word")),
            kInvalidTermId);
  EXPECT_NE(g.dict().Find(Term::Literal("42")), kInvalidTermId);
}

TEST(TurtleParserTest, RejectsUndefinedPrefix) {
  Graph g;
  Status st = TurtleParser::ParseString("nope:s nope:p nope:o .\n", &g);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(TurtleParserTest, RejectsMalformedStatements) {
  Graph g;
  EXPECT_EQ(TurtleParser::ParseString("<http://s> <http://p> .\n", &g).code(),
            StatusCode::kParseError);
  EXPECT_EQ(
      TurtleParser::ParseString("\"lit\" <http://p> <http://o> .\n", &g)
          .code(),
      StatusCode::kParseError);
  EXPECT_EQ(
      TurtleParser::ParseString("<http://s> \"lit\" <http://o> .\n", &g)
          .code(),
      StatusCode::kParseError);
  EXPECT_EQ(TurtleParser::ParseString("<http://s <http://p> <http://o> .\n",
                                      &g)
                .code(),
            StatusCode::kParseError);
}

TEST(TurtleParserTest, ErrorsMentionLineNumbers) {
  Graph g;
  Status st = TurtleParser::ParseString(
      "<http://s> <http://p> <http://o> .\n"
      "<http://s> <http://p> .\n",
      &g);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 2"), std::string::npos) << st;
}

TEST(TurtleParserTest, RoundTripThroughNTriples) {
  Graph g;
  ASSERT_TRUE(TurtleParser::ParseString(
                  "@prefix ex: <http://example.org/> .\n"
                  "ex:s ex:p ex:o .\n"
                  "ex:s a ex:C .\n"
                  "ex:s ex:q \"v\" .\n",
                  &g)
                  .ok());
  std::string serialized = ToNTriples(g);
  Graph g2;
  ASSERT_TRUE(TurtleParser::ParseString(serialized, &g2).ok());
  EXPECT_EQ(g2.size(), g.size());
  EXPECT_EQ(ToNTriples(g2), serialized);
}

TEST(TurtleParserTest, MissingFileReportsNotFound) {
  Graph g;
  EXPECT_EQ(TurtleParser::ParseFile("/no/such/file.ttl", &g).code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace rdf
}  // namespace rdfref
