// Updates through the facade: Ref sees changes instantly via the delta
// overlay; Sat is maintained incrementally (forward chaining on insert,
// DRed on delete); all complete strategies keep agreeing after every
// update — the paper's §1 maintenance story, end to end.

#include <gtest/gtest.h>

#include <set>

#include "api/query_answering.h"
#include "datagen/bibliography.h"
#include "query/sparql_parser.h"
#include "rdf/vocab.h"
#include "storage/delta_store.h"
#include "testing/metamorphic.h"
#include "testing/scenario.h"

namespace rdfref {
namespace api {
namespace {

namespace vocab = rdf::vocab;

class UpdatesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    rdf::Graph graph;
    datagen::Bibliography::AddFigure2Graph(&graph);
    answerer_ = std::make_unique<QueryAnswerer>(std::move(graph));
  }

  rdf::TermId Bib(const std::string& local) {
    return answerer_->dict().InternUri(
        datagen::Bibliography::Uri(local));
  }

  query::Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text,
        &answerer_->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  std::set<std::vector<rdf::TermId>> Rows(Strategy s, const query::Cq& q) {
    auto table = answerer_->Answer(q, s);
    EXPECT_TRUE(table.ok()) << table.status();
    return table->RowSet();
  }

  void ExpectAllStrategiesAgree(const query::Cq& q) {
    auto expected = Rows(Strategy::kSaturation, q);
    for (Strategy s : {Strategy::kRefUcq, Strategy::kRefGcov,
                       Strategy::kDatalog}) {
      EXPECT_EQ(Rows(s, q), expected) << StrategyName(s);
    }
  }

  std::unique_ptr<QueryAnswerer> answerer_;
};

TEST_F(UpdatesTest, InsertVisibleToAllStrategies) {
  // A second book appears; domain of writtenBy types it implicitly.
  rdf::TermId doi2 = Bib("doi2");
  rdf::TermId author = answerer_->dict().InternBlank("b2");
  ASSERT_TRUE(
      answerer_->InsertTriple(rdf::Triple(doi2, Bib("writtenBy"), author))
          .ok());

  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  EXPECT_EQ(Rows(Strategy::kRefUcq, q).size(), 2u);
  ExpectAllStrategiesAgree(q);
}

TEST_F(UpdatesTest, InsertAfterSaturationMaintainsSatStore) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Person . }");
  EXPECT_EQ(Rows(Strategy::kSaturation, q).size(), 1u);  // saturates now

  rdf::TermId doi2 = Bib("doi2");
  rdf::TermId author = answerer_->dict().InternBlank("b2");
  ASSERT_TRUE(
      answerer_->InsertTriple(rdf::Triple(doi2, Bib("writtenBy"), author))
          .ok());
  // The saturated store refreshes lazily and includes the new Person.
  EXPECT_EQ(Rows(Strategy::kSaturation, q).size(), 2u);
  ExpectAllStrategiesAgree(q);
}

TEST_F(UpdatesTest, RemoveRetractsDerivedAnswers) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Person . }");
  EXPECT_EQ(Rows(Strategy::kSaturation, q).size(), 1u);

  rdf::TermId doi1 = Bib("doi1");
  rdf::TermId b1 = answerer_->dict().InternBlank("b1");
  ASSERT_TRUE(
      answerer_->RemoveTriple(rdf::Triple(doi1, Bib("writtenBy"), b1)).ok());
  EXPECT_EQ(Rows(Strategy::kSaturation, q).size(), 0u);
  EXPECT_EQ(Rows(Strategy::kRefUcq, q).size(), 0u);
  ExpectAllStrategiesAgree(q);
}

TEST_F(UpdatesTest, RemoveKeepsAlternativeDerivations) {
  // doi1 is a Book both explicitly and via the domain of writtenBy:
  // retracting the explicit typing keeps the derived one.
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  rdf::TermId doi1 = Bib("doi1");
  ASSERT_TRUE(answerer_
                  ->RemoveTriple(
                      rdf::Triple(doi1, vocab::kTypeId, Bib("Book")))
                  .ok());
  EXPECT_EQ(Rows(Strategy::kSaturation, q).size(), 1u);
  EXPECT_EQ(Rows(Strategy::kRefUcq, q).size(), 1u);
  ExpectAllStrategiesAgree(q);
}

TEST_F(UpdatesTest, SchemaInsertExtendsHierarchyRemoveStillRejected) {
  // Schema growth is supported since the hierarchy encoding landed: the
  // new edge is re-saturated into the stored schema and answered via the
  // classic (escaped) reformulation members until the next Reencode().
  const size_t books =
      Rows(Strategy::kRefUcq, Parse("SELECT ?x WHERE { ?x a bib:Book . }"))
          .size();
  ASSERT_GT(books, 0u);
  EXPECT_EQ(
      Rows(Strategy::kRefUcq, Parse("SELECT ?x WHERE { ?x a bib:Work . }"))
          .size(),
      0u);
  ASSERT_TRUE(answerer_
                  ->InsertTriple(rdf::Triple(Bib("Book"),
                                             vocab::kSubClassOfId,
                                             Bib("Work")))
                  .ok());
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Work . }");
  EXPECT_EQ(Rows(Strategy::kRefUcq, q).size(), books);
  ExpectAllStrategiesAgree(q);

  // Retracting schema triples stays rejected: RDFS entailment is
  // monotone, so removal would require full re-derivation.
  EXPECT_EQ(answerer_
                ->RemoveTriple(rdf::Triple(Bib("Book"),
                                           vocab::kSubClassOfId,
                                           Bib("Publication")))
                .code(),
            StatusCode::kUnimplemented);
}

TEST_F(UpdatesTest, RemovingAbsentTripleIsNotFound) {
  EXPECT_EQ(answerer_
                ->RemoveTriple(
                    rdf::Triple(Bib("ghost"), Bib("writtenBy"), Bib("x")))
                .code(),
            StatusCode::kNotFound);
}

TEST_F(UpdatesTest, InsertThenRemoveRoundTrips) {
  query::Cq q = Parse("SELECT ?x WHERE { ?x a bib:Book . }");
  auto before = Rows(Strategy::kRefGcov, q);
  rdf::TermId doi2 = Bib("doi2");
  rdf::Triple t(doi2, vocab::kTypeId, Bib("Book"));
  ASSERT_TRUE(answerer_->InsertTriple(t).ok());
  EXPECT_EQ(Rows(Strategy::kRefGcov, q).size(), before.size() + 1);
  ASSERT_TRUE(answerer_->RemoveTriple(t).ok());
  EXPECT_EQ(Rows(Strategy::kRefGcov, q), before);
}

TEST(DeltaStoreTest, OverlaySemantics) {
  rdf::Graph g;
  rdf::TermId s = g.dict().InternUri("http://s");
  rdf::TermId p = g.dict().InternUri("http://p");
  rdf::TermId o1 = g.dict().InternUri("http://o1");
  rdf::TermId o2 = g.dict().InternUri("http://o2");
  g.Add(s, p, o1);
  storage::Store base(g);
  storage::DeltaStore delta(&base);

  EXPECT_TRUE(delta.Contains(rdf::Triple(s, p, o1)));
  EXPECT_FALSE(delta.Insert(rdf::Triple(s, p, o1)));  // already visible
  EXPECT_TRUE(delta.Insert(rdf::Triple(s, p, o2)));
  EXPECT_EQ(delta.CountMatches(s, p, storage::kAny), 2u);

  EXPECT_TRUE(delta.Remove(rdf::Triple(s, p, o1)));  // hide base triple
  EXPECT_FALSE(delta.Contains(rdf::Triple(s, p, o1)));
  EXPECT_EQ(delta.CountMatches(s, p, storage::kAny), 1u);

  size_t visited = 0;
  delta.Scan(storage::kAny, p, storage::kAny,
             [&](const rdf::Triple& t) {
               EXPECT_EQ(t.o, o2);
               ++visited;
             });
  EXPECT_EQ(visited, 1u);

  EXPECT_TRUE(delta.Insert(rdf::Triple(s, p, o1)));  // un-hide
  EXPECT_EQ(delta.CountMatches(storage::kAny, storage::kAny, storage::kAny),
            2u);
  EXPECT_TRUE(delta.Remove(rdf::Triple(s, p, o2)));  // drop the addition
  EXPECT_EQ(delta.num_added(), 0u);
}

// ---------------------------------------------------------------------------
// Randomized incremental-update differential test: random insert/delete
// sequences through the facade; after every operation the incrementally
// maintained saturation (forward chase on insert, DRed on delete) and every
// Ref strategy must equal a from-scratch QueryAnswerer over the current
// explicit triples. Shared relation implementation with the fuzz driver.

class IncrementalUpdateDifferentialTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalUpdateDifferentialTest, DredMatchesFromScratch) {
  const uint64_t seed = GetParam();
  rdfref::testing::Scenario sc = rdfref::testing::GenerateScenario(seed);
  Rng query_rng(seed * 71 + 13);
  for (int trial = 0; trial < 3; ++trial) {
    query::Cq q = rdfref::testing::GenerateQuery(sc, &query_rng);
    Rng op_rng(seed * 10007 + trial * 97 + 1);
    rdfref::testing::Divergence d =
        rdfref::testing::CheckUpdateConsistency(sc, q, &op_rng,
                                                /*num_ops=*/6);
    EXPECT_FALSE(d.found) << "seed=" << seed << " trial=" << trial << " "
                          << d.relation << "\n" << d.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomScenarios, IncrementalUpdateDifferentialTest,
                         ::testing::Range<uint64_t>(200, 215));

}  // namespace
}  // namespace api
}  // namespace rdfref
