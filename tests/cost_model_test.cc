#include "cost/cost_model.h"

#include <cmath>

#include <gtest/gtest.h>

#include "query/cover.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "storage/store.h"

namespace rdfref {
namespace cost {
namespace {

using query::Cover;
using query::Cq;
using query::Ucq;

class CostModelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // A popular property and a rare one.
    for (int i = 0; i < 1000; ++i) {
      graph_.Add(U("s" + std::to_string(i)), U("popular"),
                 U("o" + std::to_string(i % 20)));
    }
    for (int i = 0; i < 5; ++i) {
      graph_.Add(U("s" + std::to_string(i)), U("rare"), U("r"));
    }
    store_ = std::make_unique<storage::Store>(graph_);
  }

  rdf::TermId U(const std::string& name) {
    return graph_.dict().InternUri("http://ex/" + name);
  }

  Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(text, &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  rdf::Graph graph_;
  std::unique_ptr<storage::Store> store_;
};

TEST_F(CostModelTest, LargerScansCostMore) {
  CostModel model(&store_->stats());
  Cq popular =
      Parse("SELECT ?x WHERE { ?x <http://ex/popular> ?y . }");
  Cq rare = Parse("SELECT ?x WHERE { ?x <http://ex/rare> ?y . }");
  EXPECT_GT(model.CostCq(popular), model.CostCq(rare));
}

TEST_F(CostModelTest, UcqCostGrowsWithMembers) {
  CostModel model(&store_->stats());
  Cq rare = Parse("SELECT ?x WHERE { ?x <http://ex/rare> ?y . }");
  Ucq one({rare});
  Ucq three({rare, rare, rare});
  EXPECT_GT(model.CostUcq(three), model.CostUcq(one));
}

TEST_F(CostModelTest, PerMemberOverheadModelsParseCost) {
  CostParams params;
  params.per_union_member = 1000.0;
  CostModel model(&store_->stats(), params);
  Cq rare = Parse("SELECT ?x WHERE { ?x <http://ex/rare> ?y . }");
  Ucq two({rare, rare});
  EXPECT_GE(model.CostUcq(two), 2000.0);
}

TEST_F(CostModelTest, JucqCostPrefersSelectiveGrouping) {
  CostModel model(&store_->stats());
  // q(x) :- x popular y, x rare r: joining the popular atom *with* the rare
  // one in a single fragment is cheaper than materializing both
  // independently (the singleton/SCQ shape).
  Cq q = Parse(
      "SELECT ?x WHERE { ?x <http://ex/popular> ?y . "
      "?x <http://ex/rare> <http://ex/r> . }");
  Cover grouped = Cover::SingleFragment(2);
  Cover singleton = Cover::Singletons(2);
  auto cost_of = [&](const Cover& cover) {
    std::vector<Cq> fragments = cover.FragmentQueries(q);
    std::vector<Ucq> ucqs;
    for (const Cq& f : fragments) ucqs.push_back(Ucq({f}));
    return model.CostJucq(q, fragments, ucqs);
  };
  EXPECT_LT(cost_of(grouped), cost_of(singleton));
}

TEST_F(CostModelTest, EstimateUcqRowsDiscountsOverlap) {
  CostModel model(&store_->stats());
  Cq rare = Parse("SELECT ?x WHERE { ?x <http://ex/rare> ?y . }");
  double one = model.EstimateUcqRows(Ucq({rare}));
  double two = model.EstimateUcqRows(Ucq({rare, rare}));
  // Union members overlap: more than one member's rows, far less than sum.
  EXPECT_GT(two, one);
  EXPECT_LT(two, 2 * one);
  EXPECT_DOUBLE_EQ(two, one + model.params().union_overlap * one);
}

TEST_F(CostModelTest, EmptyCqCostsNothing) {
  CostModel model(&store_->stats());
  Cq empty;
  EXPECT_DOUBLE_EQ(model.CostCq(empty), 0.0);
}

TEST_F(CostModelTest, CostsAreFiniteAndNonNegative) {
  CostModel model(&store_->stats());
  Cq q = Parse(
      "SELECT ?x ?z WHERE { ?x <http://ex/popular> ?y . ?y ?p ?z . }");
  double cost = model.CostCq(q);
  EXPECT_GE(cost, 0.0);
  EXPECT_TRUE(std::isfinite(cost));
}

}  // namespace
}  // namespace cost
}  // namespace rdfref
