#include "optimizer/gcov.h"

#include <gtest/gtest.h>

#include "datagen/lubm.h"
#include "query/sparql_parser.h"
#include "rdf/graph.h"
#include "storage/store.h"

namespace rdfref {
namespace optimizer {
namespace {

using query::Cover;
using query::Cq;

class GcovTest : public ::testing::Test {
 protected:
  void SetUp() override {
    datagen::LubmConfig config;
    config.universities = 1;
    config.scale = 0.3;
    config.referenced_universities = 20;
    datagen::Lubm::Generate(config, &graph_);
    schema_ = schema::Schema::FromGraph(graph_);
    schema_.Saturate();
    schema_.EmitTriples(&graph_);
    store_ = std::make_unique<storage::Store>(graph_);
    reformulator_ =
        std::make_unique<reformulation::Reformulator>(&schema_);
    cost_model_ = std::make_unique<cost::CostModel>(&store_->stats());
    optimizer_ = std::make_unique<CoverOptimizer>(reformulator_.get(),
                                                  cost_model_.get());
  }

  Cq Parse(const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>\n" +
            text,
        &graph_.dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  rdf::Graph graph_;
  schema::Schema schema_;
  std::unique_ptr<storage::Store> store_;
  std::unique_ptr<reformulation::Reformulator> reformulator_;
  std::unique_ptr<cost::CostModel> cost_model_;
  std::unique_ptr<CoverOptimizer> optimizer_;
};

TEST_F(GcovTest, CostOfCoverValidates) {
  Cq q = Parse(
      "SELECT ?x WHERE { ?x ub:worksFor ?d . ?x ub:mastersDegreeFrom ?u . }");
  EXPECT_FALSE(optimizer_->CostOfCover(q, Cover(std::vector<std::vector<int>>{{0}})).ok());  // hole
  Result<double> cost = optimizer_->CostOfCover(q, Cover({{0, 1}}));
  ASSERT_TRUE(cost.ok()) << cost.status();
  EXPECT_GT(*cost, 0.0);
}

TEST_F(GcovTest, GreedyReturnsValidCover) {
  Cq q = Parse(
      "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . "
      "?x ub:mastersDegreeFrom <http://www.University0.edu> . "
      "?x ub:memberOf ?z . }");
  GcovTrace trace;
  Result<Cover> cover = optimizer_->Greedy(q, &trace);
  ASSERT_TRUE(cover.ok()) << cover.status();
  EXPECT_TRUE(cover->Validate(q).ok());
  EXPECT_GE(trace.explored.size(), 1u);
  EXPECT_GT(trace.chosen_cost, 0.0);
  EXPECT_EQ(trace.chosen, *cover);
}

TEST_F(GcovTest, GreedyGroupsUnselectiveTypeAtom) {
  // The variable-class type atom reformulates into a huge union with a
  // huge result; GCov must not leave it alone in a singleton fragment.
  Cq q = Parse(
      "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . "
      "?x ub:mastersDegreeFrom <http://www.University0.edu> . "
      "?x ub:memberOf ?z . }");
  Result<Cover> cover = optimizer_->Greedy(q);
  ASSERT_TRUE(cover.ok());
  bool type_atom_alone = false;
  for (const std::vector<int>& f : cover->fragments()) {
    if (f.size() == 1 && f[0] == 0) type_atom_alone = true;
  }
  EXPECT_FALSE(type_atom_alone) << cover->ToString();
}

TEST_F(GcovTest, GreedyCoverCostsNoMoreThanClassicStrategies) {
  Cq q = Parse(
      "SELECT ?x ?u ?z WHERE { ?x rdf:type ?u . "
      "?x ub:mastersDegreeFrom <http://www.University0.edu> . "
      "?x ub:memberOf ?z . }");
  GcovTrace trace;
  Result<Cover> cover = optimizer_->Greedy(q, &trace);
  ASSERT_TRUE(cover.ok());
  Result<double> scq_cost =
      optimizer_->CostOfCover(q, Cover::Singletons(q.body().size()));
  ASSERT_TRUE(scq_cost.ok());
  EXPECT_LE(trace.chosen_cost, *scq_cost);
}

TEST_F(GcovTest, SingleAtomQueryKeepsSingletonCover) {
  Cq q = Parse("SELECT ?x WHERE { ?x ub:worksFor ?d . }");
  Result<Cover> cover = optimizer_->Greedy(q);
  ASSERT_TRUE(cover.ok());
  EXPECT_EQ(*cover, Cover::Singletons(1));
}

TEST_F(GcovTest, EnumeratePartitionCoversSmall) {
  Cq q = Parse(
      "SELECT ?x WHERE { ?x ub:worksFor ?d . ?x ub:mastersDegreeFrom ?u . "
      "?x ub:memberOf ?z . }");
  Result<std::vector<Cover>> covers = optimizer_->EnumeratePartitionCovers(q);
  ASSERT_TRUE(covers.ok());
  // Bell(3) = 5 partitions; all fragments share variable x so all are
  // connected and valid.
  EXPECT_EQ(covers->size(), 5u);
  for (const Cover& c : *covers) EXPECT_TRUE(c.Validate(q).ok());
}

TEST_F(GcovTest, EnumerateRefusesLargeQueries) {
  Cq q = Parse(
      "SELECT ?x WHERE { ?x ub:worksFor ?d . ?x ub:mastersDegreeFrom ?u . "
      "?x ub:memberOf ?z . }");
  EXPECT_EQ(optimizer_->EnumeratePartitionCovers(q, 2).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(GcovTest, TraceRendersReadably) {
  Cq q = Parse(
      "SELECT ?x WHERE { ?x ub:worksFor ?d . ?x ub:mastersDegreeFrom ?u . }");
  GcovTrace trace;
  ASSERT_TRUE(optimizer_->Greedy(q, &trace).ok());
  std::string s = trace.ToString();
  EXPECT_NE(s.find("GCov explored"), std::string::npos);
  EXPECT_NE(s.find("cost="), std::string::npos);
}

}  // namespace
}  // namespace optimizer
}  // namespace rdfref
