#include "federation/resilience.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "api/query_answering.h"
#include "common/deadline.h"
#include "engine/evaluator.h"
#include "federation/federation.h"
#include "query/sparql_parser.h"
#include "rdf/parser.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace federation {
namespace {

// ---------------------------------------------------------------------------
// Deadline
// ---------------------------------------------------------------------------

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.is_infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_millis()));
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  Deadline d = Deadline::AfterMicros(0);
  EXPECT_FALSE(d.is_infinite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_millis(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineNotYetExpired) {
  Deadline d = Deadline::AfterMillis(60000);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_millis(), 0.0);
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, DeterministicUnderFixedSeed) {
  FaultProfile profile;
  profile.failure_probability = 0.3;
  profile.seed = 42;
  FaultInjector a(profile), b(profile);
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    bool fa = a.NextRequestFails();
    ASSERT_EQ(fa, b.NextRequestFails()) << "diverged at roll " << i;
    failures += fa ? 1 : 0;
  }
  // The rate must roughly track the probability (a seeded stream, not a
  // biased coin).
  EXPECT_GT(failures, 200);
  EXPECT_LT(failures, 400);
}

TEST(FaultInjectorTest, ExtremesNeedNoRandomness) {
  FaultProfile never;
  FaultInjector n(never);
  FaultProfile always;
  always.failure_probability = 1.0;
  FaultInjector y(always);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(n.NextRequestFails());
    EXPECT_TRUE(y.NextRequestFails());
  }
}

// ---------------------------------------------------------------------------
// RetryPolicy
// ---------------------------------------------------------------------------

TEST(RetryPolicyTest, ExponentialBackoffWithDeterministicJitter) {
  RetryPolicy policy;
  policy.initial_backoff_ms = 4.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_fraction = 0.25;
  // Attempt 0 (the initial try) never waits.
  EXPECT_EQ(policy.BackoffMillis(0, 7), 0.0);
  double w1 = policy.BackoffMillis(1, 7);
  double w2 = policy.BackoffMillis(2, 7);
  // Jitter stays within [1-j, 1+j] of the exponential base.
  EXPECT_GE(w1, 4.0 * 0.75);
  EXPECT_LE(w1, 4.0 * 1.25);
  EXPECT_GE(w2, 8.0 * 0.75);
  EXPECT_LE(w2, 8.0 * 1.25);
  // Deterministic: same (attempt, seed) -> same wait.
  EXPECT_EQ(w1, policy.BackoffMillis(1, 7));
  // The cap bounds late attempts.
  EXPECT_LE(policy.BackoffMillis(30, 7), 100.0 * 1.25);
}

TEST(RetryPolicyTest, ZeroInitialBackoffDisablesWaiting) {
  RetryPolicy policy;  // default initial_backoff_ms = 0
  EXPECT_EQ(policy.BackoffMillis(1, 1), 0.0);
  EXPECT_EQ(policy.BackoffMillis(5, 1), 0.0);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, OpensAfterConsecutiveFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.cooldown_ms = 60000;  // effectively never half-opens in this test
  CircuitBreaker breaker(options);
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_TRUE(breaker.AllowRequest());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  EXPECT_FALSE(breaker.AllowRequest());
  EXPECT_EQ(breaker.times_opened(), 1u);
}

TEST(CircuitBreakerTest, SuccessResetsTheFailureStreak) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  CircuitBreaker breaker(options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // streak broken
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
}

TEST(CircuitBreakerTest, HalfOpenProbeClosesOrReopens) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 0.0;  // probe immediately
  options.half_open_successes = 1;
  CircuitBreaker breaker(options);

  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  // Cool-down of 0: the next request is admitted as a half-open probe.
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  // A failed probe reopens immediately...
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitState::kOpen);
  // ...and a successful probe closes.
  EXPECT_TRUE(breaker.AllowRequest());
  EXPECT_EQ(breaker.state(), CircuitState::kHalfOpen);
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitState::kClosed);
  EXPECT_EQ(breaker.times_opened(), 2u);
}

TEST(CircuitBreakerTest, StateNames) {
  EXPECT_STREQ(CircuitStateToString(CircuitState::kClosed), "CLOSED");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kOpen), "OPEN");
  EXPECT_STREQ(CircuitStateToString(CircuitState::kHalfOpen), "HALF_OPEN");
}

// ---------------------------------------------------------------------------
// Federated resilience end-to-end
// ---------------------------------------------------------------------------

class ResilientFederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(rdf::TurtleParser::ParseString(
                    "@prefix bib: <http://example.org/bib/> .\n"
                    "bib:doi1 a bib:Book .\n"
                    "bib:Book rdfs:subClassOf bib:Publication .\n",
                    &healthy_graph_)
                    .ok());
    ASSERT_TRUE(rdf::TurtleParser::ParseString(
                    "@prefix bib: <http://example.org/bib/> .\n"
                    "bib:doi2 a bib:Book .\n",
                    &flaky_graph_)
                    .ok());
  }

  query::Cq Parse(Federation* federation, const std::string& text) {
    auto q = query::ParseSparql(
        "PREFIX bib: <http://example.org/bib/>\n" + text, &federation->dict());
    EXPECT_TRUE(q.ok()) << q.status();
    return *q;
  }

  rdf::Graph healthy_graph_, flaky_graph_;
};

// Acceptance: an endpoint failing 100% of requests trips its breaker;
// degraded mode still returns the answers derivable from the healthy
// endpoints, and the completeness report names the skipped endpoint.
TEST_F(ResilientFederationTest, DegradedAnswerFromHealthyEndpoints) {
  Federation federation;
  federation.AddEndpoint("healthy", healthy_graph_);
  EndpointOptions dead;
  dead.fault.failure_probability = 1.0;
  dead.fault.seed = 7;
  federation.AddEndpoint("flaky", flaky_graph_, dead);

  ResilienceOptions resilience;
  resilience.retry.max_attempts = 3;
  resilience.breaker.failure_threshold = 3;
  resilience.breaker.cooldown_ms = 60000;  // stays open for the whole test
  federation.set_resilience(resilience);

  query::Cq q =
      Parse(&federation, "SELECT ?x WHERE { ?x a bib:Publication . }");

  // Degraded mode: the healthy endpoint's derivable answer survives.
  FederationAnswerOptions degraded;
  degraded.allow_partial = true;
  auto partial = federation.AnswerResilient(q, degraded);
  ASSERT_TRUE(partial.ok()) << partial.status();
  EXPECT_EQ(partial->table.NumRows(), 1u);  // doi1 via the healthy endpoint
  EXPECT_FALSE(partial->report.known_complete);
  std::vector<std::string> degraded_eps = partial->report.degraded_endpoints();
  ASSERT_EQ(degraded_eps.size(), 1u);
  EXPECT_EQ(degraded_eps[0], "flaky");
  // Three consecutive failures tripped the breaker; later scans were
  // skipped rather than hammering the dead source.
  EXPECT_EQ(federation.source().BreakerState("flaky"), CircuitState::kOpen);
  for (const EndpointHealth& h : partial->report.endpoints) {
    if (h.endpoint == "flaky") {
      EXPECT_GE(h.failures, 3u);
      EXPECT_GT(h.gave_up + h.skipped, 0u);
    }
  }

  // Strict mode: all-or-nothing, the failure surfaces as kUnavailable (the
  // still-open breaker skips the dead endpoint outright).
  auto strict = federation.AnswerResilient(q);
  ASSERT_FALSE(strict.ok());
  EXPECT_EQ(strict.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(strict.status().message().find("flaky"), std::string::npos)
      << strict.status();
}

TEST_F(ResilientFederationTest, RetryUntilSuccessKeepsAnswerComplete) {
  Federation federation;
  federation.AddEndpoint("healthy", healthy_graph_);
  EndpointOptions shaky;
  shaky.fault.failure_probability = 0.5;
  // Seed 7's roll sequence starts (fail, ok): the first request fails, the
  // first retry succeeds — retry-until-success, deterministically.
  shaky.fault.seed = 7;
  federation.AddEndpoint("shaky", flaky_graph_, shaky);

  ResilienceOptions resilience;
  resilience.retry.max_attempts = 30;        // retries always outlast p=0.5
  resilience.breaker.failure_threshold = 1000;  // isolate retry behaviour
  federation.set_resilience(resilience);

  query::Cq q = Parse(&federation, "SELECT ?x WHERE { ?x a bib:Book . }");
  auto answer = federation.AnswerResilient(q);
  ASSERT_TRUE(answer.ok()) << answer.status();
  EXPECT_EQ(answer->table.NumRows(), 2u);  // doi1 + doi2: nothing lost
  EXPECT_TRUE(answer->report.known_complete);
  EXPECT_GT(answer->report.total_retries, 0u);
}

TEST_F(ResilientFederationTest, DeterministicReportUnderFixedSeed) {
  auto run = [this]() {
    Federation federation;
    federation.AddEndpoint("healthy", healthy_graph_);
    EndpointOptions shaky;
    shaky.fault.failure_probability = 0.5;
    shaky.fault.seed = 99;
    federation.AddEndpoint("shaky", flaky_graph_, shaky);
    ResilienceOptions resilience;
    resilience.retry.max_attempts = 30;
    resilience.breaker.failure_threshold = 1000;
    federation.set_resilience(resilience);
    query::Cq q = Parse(&federation, "SELECT ?x WHERE { ?x a bib:Book . }");
    auto answer = federation.AnswerResilient(q);
    EXPECT_TRUE(answer.ok());
    return answer.ok() ? answer->report.ToString() : std::string("error");
  };
  EXPECT_EQ(run(), run());
}

TEST_F(ResilientFederationTest, MidScanTruncationIsRetriedNotLeaked) {
  // fail_after_triples drops the connection mid-answer. The mediator
  // buffers per request, so the partial prefix is discarded — never
  // double-counted, never silently treated as complete.
  rdf::Graph big;
  for (int i = 0; i < 20; ++i) {
    big.AddUri("http://ex/s" + std::to_string(i), "http://ex/p",
               "http://ex/o");
  }
  Federation federation;
  EndpointOptions truncating;
  truncating.fault.fail_after_triples = 5;
  federation.AddEndpoint("truncating", big, truncating);
  federation.set_resilience(ResilienceOptions{});

  query::Cq q = *query::ParseSparql(
      "SELECT ?x WHERE { ?x <http://ex/p> ?y . }", &federation.dict());
  FederationAnswerOptions degraded;
  degraded.allow_partial = true;
  auto answer = federation.AnswerResilient(q, degraded);
  ASSERT_TRUE(answer.ok()) << answer.status();
  // Every attempt truncates, so no rows from this endpoint are trusted.
  EXPECT_EQ(answer->table.NumRows(), 0u);
  EXPECT_FALSE(answer->report.known_complete);
}

TEST_F(ResilientFederationTest, HardDownEndpointSkippedInCountMatches) {
  Federation federation;
  federation.AddEndpoint("healthy", healthy_graph_);
  EndpointOptions down;
  down.fault.hard_down = true;
  federation.AddEndpoint("down", flaky_graph_, down);
  // The cost model must not count data the mediator cannot fetch.
  rdf::TermId book_id =
      federation.dict().Find(rdf::Term::Uri("http://example.org/bib/Book"));
  EXPECT_EQ(federation.source().CountMatches(storage::kAny,
                                             rdf::vocab::kTypeId, book_id),
            1u);
}

// ---------------------------------------------------------------------------
// Deadlines on exploding reformulations
// ---------------------------------------------------------------------------

// A schema whose class hierarchy makes the UCQ reformulation explode
// multiplicatively (Example-1-style): three type atoms, each reformulating
// into (subclasses + 1) members.
rdf::Graph ExplodingGraph(int subclasses) {
  std::string ttl = "@prefix ex: <http://example.org/> .\n";
  for (int i = 0; i < subclasses; ++i) {
    ttl += "ex:C" + std::to_string(i) + " rdfs:subClassOf ex:Top .\n";
  }
  ttl += "ex:a a ex:C0 .\nex:b a ex:C1 .\nex:c a ex:C2 .\n";
  ttl += "ex:a ex:p ex:b .\nex:b ex:p ex:c .\n";
  rdf::Graph g;
  EXPECT_TRUE(rdf::TurtleParser::ParseString(ttl, &g).ok());
  return g;
}

// Acceptance: a 1 ms deadline on an exploding reformulation returns
// kDeadlineExceeded — no hang, no crash. Hierarchy encoding would collapse
// the explosion into interval atoms (that's its whole point), so this test
// pins use_encoding = false to keep the 51^3-member UCQ it is about.
TEST(ResilienceDeadlineTest, ExplodingUcqHitsDeadline) {
  api::QueryAnswerer answerer(ExplodingGraph(50));
  auto q = query::ParseSparql(
      "PREFIX ex: <http://example.org/>\n"
      "SELECT ?x ?y ?z WHERE { ?x a ex:Top . ?y a ex:Top . ?z a ex:Top . "
      "?x ex:p ?y . ?y ex:p ?z . }",
      &answerer.dict());
  ASSERT_TRUE(q.ok()) << q.status();

  api::AnswerOptions options;
  options.reform.use_encoding = false;

  // Sanity: without a deadline the 51^3 = 132,651-CQ UCQ evaluates fully.
  api::AnswerProfile profile;
  auto unbounded =
      answerer.Answer(*q, api::Strategy::kRefUcq, &profile, options);
  ASSERT_TRUE(unbounded.ok());
  EXPECT_EQ(profile.reformulation_cqs, 132651u);
  EXPECT_EQ(unbounded->NumRows(), 1u);

  options.deadline = Deadline::AfterMillis(1.0);
  auto bounded = answerer.Answer(*q, api::Strategy::kRefUcq, nullptr, options);
  ASSERT_FALSE(bounded.ok());
  EXPECT_EQ(bounded.status().code(), StatusCode::kDeadlineExceeded);

  // The SCQ/JUCQ path checks the same deadline at its CQ boundaries.
  options.deadline = Deadline::AfterMicros(0);
  auto scq = answerer.Answer(*q, api::Strategy::kRefScq, nullptr, options);
  ASSERT_FALSE(scq.ok());
  EXPECT_EQ(scq.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(ResilienceDeadlineTest, EvaluatorReportsProgressInMessage) {
  api::QueryAnswerer answerer(ExplodingGraph(3));
  auto q = query::ParseSparql(
      "PREFIX ex: <http://example.org/>\nSELECT ?x WHERE { ?x a ex:Top . }",
      &answerer.dict());
  ASSERT_TRUE(q.ok());
  reformulation::Reformulator ref(&answerer.schema());
  auto ucq = ref.Reformulate(*q);
  ASSERT_TRUE(ucq.ok());
  engine::Evaluator evaluator(&answerer.ref_store());
  auto r = evaluator.EvaluateUcq(*ucq, Deadline::AfterMicros(0));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(r.status().message().find("0 of 4"), std::string::npos)
      << r.status();
}

TEST_F(ResilientFederationTest, FederationDeadlinePropagates) {
  Federation federation;
  federation.AddEndpoint("healthy", healthy_graph_);
  query::Cq q =
      Parse(&federation, "SELECT ?x WHERE { ?x a bib:Publication . }");
  FederationAnswerOptions options;
  options.deadline = Deadline::AfterMicros(0);
  auto answer = federation.AnswerResilient(q, options);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
}

// ---------------------------------------------------------------------------
// Lock-discipline regressions (found by the thread-safety annotation pass)
// ---------------------------------------------------------------------------

// Regression: FederatedSource::ScanEndpoint used to read the retry policy
// by reference without the mediator lock, racing set_resilience (a torn
// read of the backoff schedule mid-scan). The policy is now snapshotted
// under the lock; swapping it during concurrent answering must neither
// crash nor lose the healthy endpoint's data. TSan (this suite is in the
// thread-sanitizer CI job) would flag the old unlocked read here.
TEST_F(ResilientFederationTest, PolicySwapDuringConcurrentAnswersIsSafe) {
  Federation federation;
  federation.AddEndpoint("healthy", healthy_graph_);
  EndpointOptions flaky;
  flaky.fault.failure_probability = 0.5;
  flaky.fault.seed = 11;
  federation.AddEndpoint("flaky", flaky_graph_, flaky);

  ResilienceOptions initial;
  initial.retry.max_attempts = 4;
  federation.set_resilience(initial);

  query::Cq q =
      Parse(&federation, "SELECT ?x WHERE { ?x a bib:Publication . }");

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    ResilienceOptions a = initial;
    ResilienceOptions b;
    b.retry.max_attempts = 2;
    b.breaker.failure_threshold = 5;
    int i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      federation.set_resilience(++i % 2 == 0 ? a : b);
    }
  });

  FederationAnswerOptions degraded;
  degraded.allow_partial = true;
  for (int round = 0; round < 25; ++round) {
    auto answer = federation.AnswerResilient(q, degraded);
    ASSERT_TRUE(answer.ok()) << answer.status();
    // The healthy endpoint never fails: its derivable answer (doi1 as a
    // Publication via Book ⊑ Publication) must survive every policy swap.
    EXPECT_GE(answer->table.NumRows(), 1u) << "round " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  swapper.join();
}

// Regression: FederatedSource::threads_ was a plain int written by
// set_threads while concurrent Scans (another query on the same mediator)
// read it. Now atomic: concurrent answering calls with different `threads`
// settings must all deliver the same complete answer.
TEST_F(ResilientFederationTest, ConcurrentAnswersWithDifferentThreadKnobs) {
  Federation federation;
  federation.AddEndpoint("healthy", healthy_graph_);
  federation.AddEndpoint("second", flaky_graph_);  // no faults configured

  query::Cq q =
      Parse(&federation, "SELECT ?x WHERE { ?x a bib:Publication . }");

  // Warm-up: materializes the virtual mediated-schema endpoint once.
  // (Concurrent *answering* is supported; concurrent *first* answers are
  // not — RefreshSchemaEndpoint mutates the endpoint list.)
  ASSERT_TRUE(federation.AnswerResilient(q).ok());

  constexpr int kCallers = 4;
  constexpr int kRounds = 10;
  std::vector<std::thread> callers;
  std::vector<std::string> errors(kCallers);
  callers.reserve(kCallers);
  for (int t = 0; t < kCallers; ++t) {
    callers.emplace_back([&, t] {
      FederationAnswerOptions options;
      options.threads = (t % 2 == 0) ? 1 : 4;  // races the knob by design
      for (int round = 0; round < kRounds; ++round) {
        auto answer = federation.AnswerResilient(q, options);
        if (!answer.ok()) {
          errors[t] = answer.status().ToString();
          return;
        }
        if (answer->table.NumRows() != 2u) {  // doi1 + doi2 as Publications
          errors[t] = "caller " + std::to_string(t) + " round " +
                      std::to_string(round) + ": got " +
                      std::to_string(answer->table.NumRows()) + " rows";
          return;
        }
      }
    });
  }
  for (std::thread& t : callers) t.join();
  for (int t = 0; t < kCallers; ++t) EXPECT_EQ(errors[t], "") << "caller " << t;
}

// The resilience() accessor returns a snapshot by value (the stored options
// are mutex-guarded and may be swapped concurrently); the snapshot must
// reflect the last set_resilience.
TEST_F(ResilientFederationTest, ResilienceAccessorReturnsSnapshot) {
  Federation federation;
  federation.AddEndpoint("healthy", healthy_graph_);
  ResilienceOptions options;
  options.retry.max_attempts = 7;
  options.breaker.failure_threshold = 9;
  federation.set_resilience(options);
  ResilienceOptions snapshot = federation.source().resilience();
  EXPECT_EQ(snapshot.retry.max_attempts, 7);
  EXPECT_EQ(snapshot.breaker.failure_threshold, 9);
}

}  // namespace
}  // namespace federation
}  // namespace rdfref
