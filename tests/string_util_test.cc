#include "common/string_util.h"

#include <gtest/gtest.h>

namespace rdfref {
namespace {

TEST(StringUtilTest, SplitBasic) {
  std::vector<std::string> pieces = Split("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[1], "b");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyPieces) {
  std::vector<std::string> pieces = Split(",x,", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "");
  EXPECT_EQ(pieces[1], "x");
  EXPECT_EQ(pieces[2], "");
}

TEST(StringUtilTest, SplitNoSeparator) {
  std::vector<std::string> pieces = Split("abc", ',');
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\r\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("solid"), "solid");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("file.h", ".cc"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ", "), "");
  EXPECT_EQ(Join({"only"}, ", "), "only");
}

}  // namespace
}  // namespace rdfref
