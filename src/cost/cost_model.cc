#include "cost/cost_model.h"

#include <algorithm>
#include <limits>
#include <set>

namespace rdfref {
namespace cost {

namespace {
using query::Atom;
using query::Cq;
using query::QTerm;
using query::Ucq;
using query::VarId;
}  // namespace

double CostModel::CostCq(const Cq& q) const {
  const std::vector<Atom>& body = q.body();
  if (body.empty()) return 0.0;

  // Greedy ordering by base estimate, preferring connected atoms — the same
  // heuristic the evaluation engine uses.
  const size_t n = body.size();
  std::vector<double> base(n);
  for (size_t i = 0; i < n; ++i) base[i] = estimator_.EstimateAtom(body[i]);
  std::vector<bool> used(n, false);
  std::set<VarId> bound;

  double cost = 0.0;
  double inter = 1.0;  // current intermediate cardinality
  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < n; ++i) {
      if (used[i]) continue;
      std::set<VarId> vars = Cq::AtomVars(body[i]);
      bool connected =
          step == 0 || std::any_of(vars.begin(), vars.end(), [&](VarId v) {
            return bound.count(v) > 0;
          });
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected &&
           base[i] < base[static_cast<size_t>(best)])) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    const Atom& atom = body[static_cast<size_t>(best)];
    used[static_cast<size_t>(best)] = true;

    double selectivity = 1.0;
    for (VarId v : Cq::AtomVars(atom)) {
      if (bound.count(v)) {
        selectivity /= std::max(estimator_.DistinctValues(atom, v), 1.0);
      }
    }
    double matched = base[static_cast<size_t>(best)] * selectivity;
    if (step == 0) {
      // Leading range scan.
      cost += matched * params_.scan_per_row;
      inter = matched;
    } else {
      // One index probe per current intermediate row, then output.
      double produced = inter * matched;
      cost += inter * params_.probe_per_row +
              produced * params_.output_per_row;
      inter = produced;
    }
    std::set<VarId> vars = Cq::AtomVars(atom);
    bound.insert(vars.begin(), vars.end());
  }
  return cost;
}

double CostModel::CostUcq(const Ucq& ucq) const {
  double cost = static_cast<double>(ucq.size()) * params_.per_union_member;
  for (const Cq& member : ucq.members()) cost += CostCq(member);
  cost += EstimateUcqRows(ucq) * params_.dedup_per_row;
  return cost;
}

double CostModel::EstimateUcqRows(const Ucq& ucq) const {
  // Reformulation members overlap heavily by construction (they all
  // retrieve fractions of the same extended answer: an instance typed
  // explicitly is often re-derived by several domain/range members), so a
  // plain sum wildly overestimates the deduplicated union. Textbook
  // practice: the largest member plus a fixed overlap discount on the rest.
  double sum = 0.0, largest = 0.0;
  for (const Cq& member : ucq.members()) {
    double rows = estimator_.EstimateCqRows(member);
    sum += rows;
    largest = std::max(largest, rows);
  }
  return largest + params_.union_overlap * (sum - largest);
}

double CostModel::FragmentDistinct(const Cq& fragment, VarId v,
                                   double fragment_rows) const {
  double distinct = std::numeric_limits<double>::max();
  for (const Atom& a : fragment.body()) {
    if (Cq::AtomVars(a).count(v)) {
      distinct = std::min(distinct, estimator_.DistinctValues(a, v));
    }
  }
  if (distinct == std::numeric_limits<double>::max()) distinct = 1.0;
  return std::max(1.0, std::min(distinct, std::max(fragment_rows, 1.0)));
}

double CostModel::CostJucq(const Cq& q,
                           const std::vector<Cq>& fragment_queries,
                           const std::vector<Ucq>& fragment_ucqs) const {
  (void)q;
  std::vector<FragmentCostInput> inputs;
  inputs.reserve(fragment_ucqs.size());
  for (size_t i = 0; i < fragment_ucqs.size(); ++i) {
    FragmentCostInput in;
    in.eval_cost = CostUcq(fragment_ucqs[i]);
    in.rows = EstimateUcqRows(fragment_ucqs[i]);
    in.fragment_query = &fragment_queries[i];
    inputs.push_back(in);
  }
  return CostJucqFromFragments(inputs);
}

double CostModel::CostJucqFromFragments(
    const std::vector<FragmentCostInput>& fragments) const {
  double cost = 0.0;
  for (const FragmentCostInput& f : fragments) cost += f.eval_cost;
  if (fragments.empty()) return cost;

  // Hash-join phase: smallest fragment first, then greedily the smallest
  // fragment connected to the already-joined variables (mirroring the
  // engine's join-order heuristic — cross products only when unavoidable).
  std::vector<bool> joined(fragments.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < fragments.size(); ++i) {
    if (fragments[i].rows < fragments[first].rows) first = i;
  }
  joined[first] = true;
  double inter = fragments[first].rows;
  std::set<VarId> bound;
  Cq joined_atoms;  // conjunction of all atoms joined so far
  for (const query::Atom& a : fragments[first].fragment_query->body()) {
    joined_atoms.AddAtom(a);
  }
  {
    std::set<VarId> head = fragments[first].fragment_query->HeadVars();
    bound.insert(head.begin(), head.end());
  }
  for (size_t step = 1; step < fragments.size(); ++step) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < fragments.size(); ++i) {
      if (joined[i]) continue;
      std::set<VarId> head = fragments[i].fragment_query->HeadVars();
      bool connected = std::any_of(head.begin(), head.end(), [&](VarId v) {
        return bound.count(v) > 0;
      });
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected &&
           fragments[i].rows < fragments[static_cast<size_t>(best)].rows)) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    const size_t k = static_cast<size_t>(best);
    joined[k] = true;
    const Cq& fq = *fragments[k].fragment_query;
    double build = fragments[k].rows;
    cost += build * params_.hash_build_per_row +
            inter * params_.hash_probe_per_row;
    // Intermediate estimate: the System-R estimate of the conjunction of
    // all atoms joined so far (one global formula per prefix). Chaining
    // per-fragment selectivities instead would compound each join's
    // overestimate and systematically punish many-fragment covers.
    for (const query::Atom& a : fq.body()) {
      if (std::find(joined_atoms.body().begin(), joined_atoms.body().end(),
                    a) == joined_atoms.body().end()) {
        joined_atoms.AddAtom(a);
      }
    }
    double produced = estimator_.EstimateCqRows(joined_atoms);
    produced = std::min(produced, inter * build);  // join cannot exceed ×
    cost += produced * params_.output_per_row;
    inter = produced;
    std::set<VarId> head = fq.HeadVars();
    bound.insert(head.begin(), head.end());
  }
  cost += inter * params_.dedup_per_row;  // final projection + dedup
  return cost;
}

}  // namespace cost
}  // namespace rdfref
