#include "cost/cardinality.h"

#include <algorithm>
#include <map>
#include <vector>

#include "rdf/vocab.h"

namespace rdfref {
namespace cost {

namespace {
using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;

double SafeDiv(double num, double den) { return den < 1.0 ? num : num / den; }
}  // namespace

double CardinalityEstimator::EstimateAtom(const Atom& atom) const {
  const double total = static_cast<double>(stats_->total_triples());
  if (atom.has_range()) {
    // Interval atom (hierarchy encoding): the [lo, hi] id range IS the
    // subtree, so the estimate is the sum of the member statistics — the
    // exact analogue of summing the classic UCQ members it replaces.
    // rdfref-check: allow(termid-arith)
    if (atom.range_pos == Atom::kRangeO && !atom.p.is_var &&
        atom.p.term() == rdf::vocab::kTypeId) {
      // (s?, τ, [c .. hi]): per-class cardinalities over the class subtree.
      double card = 0.0;
      // rdfref-check: allow(termid-arith)
      for (rdf::TermId c = atom.o.term(); c <= atom.range_hi; ++c) {
        card += static_cast<double>(stats_->ClassCardinality(c));
      }
      if (!atom.s.is_var) {
        card = SafeDiv(card, static_cast<double>(
                                 stats_->ForProperty(rdf::vocab::kTypeId)
                                     .distinct_subjects));
      }
      return card;
    }
    if (atom.range_pos == Atom::kRangeP) {
      // (s?, [p .. hi], o?): the property subtree's triples.
      double card = 0.0, ds = 0.0, dobj = 0.0;
      // rdfref-check: allow(termid-arith)
      for (rdf::TermId p = atom.p.term(); p <= atom.range_hi; ++p) {
        storage::PropertyStats ps = stats_->ForProperty(p);
        card += static_cast<double>(ps.count);
        ds += static_cast<double>(ps.distinct_subjects);
        dobj += static_cast<double>(ps.distinct_objects);
      }
      if (!atom.s.is_var) card = SafeDiv(card, ds);
      if (!atom.o.is_var) card = SafeDiv(card, dobj);
      return card;
    }
    // Object interval under an unknown/non-type property: uniform share of
    // the object domain, widened by the interval.
    const double width = static_cast<double>(atom.range_hi) -
                         static_cast<double>(atom.range_lo()) + 1.0;
    double card = atom.p.is_var
                      ? total
                      : static_cast<double>(
                            stats_->ForProperty(atom.p.term()).count);
    if (!atom.s.is_var) {
      card = SafeDiv(card, static_cast<double>(stats_->distinct_subjects()));
    }
    card = SafeDiv(card, static_cast<double>(stats_->distinct_objects())) *
           width;
    return card;
  }
  if (!atom.p.is_var) {
    const rdf::TermId p = atom.p.term();
    if (p == rdf::vocab::kTypeId && !atom.o.is_var) {
      // (s?, τ, c): exact per-class cardinality.
      double card = static_cast<double>(stats_->ClassCardinality(atom.o.term()));
      if (!atom.s.is_var) {
        card = SafeDiv(card, static_cast<double>(
                                 stats_->ForProperty(p).distinct_subjects));
      }
      return card;
    }
    storage::PropertyStats ps = stats_->ForProperty(p);
    double card = static_cast<double>(ps.count);
    if (!atom.s.is_var) {
      card = SafeDiv(card, static_cast<double>(ps.distinct_subjects));
    }
    if (!atom.o.is_var) {
      card = SafeDiv(card, static_cast<double>(ps.distinct_objects));
    }
    return card;
  }
  // Variable property: fall back to whole-table uniformity.
  double card = total;
  if (!atom.s.is_var) {
    card = SafeDiv(card, static_cast<double>(stats_->distinct_subjects()));
  }
  if (!atom.o.is_var) {
    card = SafeDiv(card, static_cast<double>(stats_->distinct_objects()));
  }
  return card;
}

double CardinalityEstimator::DistinctValues(const Atom& atom,
                                            VarId v) const {
  const double card = EstimateAtom(atom);
  double distinct = card;
  if (!atom.p.is_var) {
    storage::PropertyStats ps = stats_->ForProperty(atom.p.term());
    if (atom.has_range() && atom.range_pos == Atom::kRangeP) {
      // Property interval: union the subtree's stats (an upper bound; the
      // final clamp against `card` keeps it sane).
      // rdfref-check: allow(termid-arith)
      for (rdf::TermId p = atom.p.term() + 1; p <= atom.range_hi; ++p) {
        storage::PropertyStats more = stats_->ForProperty(p);
        ps.distinct_subjects += more.distinct_subjects;
        ps.distinct_objects += more.distinct_objects;
      }
    }
    if (atom.s.is_var && atom.s.var() == v) {
      distinct = static_cast<double>(ps.distinct_subjects);
    } else if (atom.o.is_var && atom.o.var() == v) {
      distinct = static_cast<double>(ps.distinct_objects);
    }
  } else {
    if (atom.p.var() == v) {
      distinct = static_cast<double>(stats_->distinct_properties());
    } else if (atom.s.is_var && atom.s.var() == v) {
      distinct = static_cast<double>(stats_->distinct_subjects());
    } else if (atom.o.is_var && atom.o.var() == v) {
      distinct = static_cast<double>(stats_->distinct_objects());
    }
  }
  // A relation of `card` rows cannot hold more than `card` distinct values.
  return std::max(1.0, std::min(distinct, std::max(card, 1.0)));
}

double CardinalityEstimator::PairCorrection(const Cq& q) const {
  // For each variable appearing in subject position of several atoms with
  // constant non-type properties, rescale by the observed co-occurrence of
  // the first two properties: P(p1 ∧ p2) / (P(p1) · P(p2)).
  double correction = 1.0;
  const double n = static_cast<double>(stats_->distinct_subjects());
  if (n < 1.0) return 1.0;
  std::map<VarId, std::vector<rdf::TermId>> subject_props;
  for (const Atom& a : q.body()) {
    if (a.s.is_var && !a.p.is_var &&
        a.p.term() != rdf::vocab::kTypeId) {
      subject_props[a.s.var()].push_back(a.p.term());
    }
  }
  for (const auto& [v, props] : subject_props) {
    if (props.size() < 2) continue;
    double ds1 = static_cast<double>(
        stats_->ForProperty(props[0]).distinct_subjects);
    double ds2 = static_cast<double>(
        stats_->ForProperty(props[1]).distinct_subjects);
    if (ds1 < 1.0 || ds2 < 1.0) continue;
    double both =
        static_cast<double>(stats_->SubjectPairCount(props[0], props[1]));
    double factor = (both * n) / (ds1 * ds2);
    correction *= std::clamp(factor, 0.01, 100.0);
  }
  return correction;
}

double CardinalityEstimator::EstimateCqRows(const Cq& q) const {
  const std::vector<Atom>& body = q.body();
  if (body.empty()) return 0.0;
  double rows = 1.0;
  for (const Atom& a : body) rows *= EstimateAtom(a);

  // Per shared variable: divide by the k-1 largest distinct-value counts
  // (the k-way generalization of |R ⋈ S| = |R||S| / max(V(R,v), V(S,v))).
  std::map<VarId, std::vector<double>> distinct_per_var;
  for (const Atom& a : body) {
    for (VarId v : Cq::AtomVars(a)) {
      distinct_per_var[v].push_back(DistinctValues(a, v));
    }
  }
  for (auto& [v, ds] : distinct_per_var) {
    if (ds.size() < 2) continue;
    std::sort(ds.begin(), ds.end(), std::greater<double>());
    for (size_t i = 0; i + 1 < ds.size(); ++i) rows /= std::max(ds[i], 1.0);
  }
  if (use_pair_statistics_) rows *= PairCorrection(q);
  return rows;
}

}  // namespace cost
}  // namespace rdfref
