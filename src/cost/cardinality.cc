#include "cost/cardinality.h"

#include <algorithm>
#include <map>
#include <vector>

#include "rdf/vocab.h"

namespace rdfref {
namespace cost {

namespace {
using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;

double SafeDiv(double num, double den) { return den < 1.0 ? num : num / den; }
}  // namespace

double CardinalityEstimator::EstimateAtom(const Atom& atom) const {
  const double total = static_cast<double>(stats_->total_triples());
  if (!atom.p.is_var) {
    const rdf::TermId p = atom.p.term();
    if (p == rdf::vocab::kTypeId && !atom.o.is_var) {
      // (s?, τ, c): exact per-class cardinality.
      double card = static_cast<double>(stats_->ClassCardinality(atom.o.term()));
      if (!atom.s.is_var) {
        card = SafeDiv(card, static_cast<double>(
                                 stats_->ForProperty(p).distinct_subjects));
      }
      return card;
    }
    storage::PropertyStats ps = stats_->ForProperty(p);
    double card = static_cast<double>(ps.count);
    if (!atom.s.is_var) {
      card = SafeDiv(card, static_cast<double>(ps.distinct_subjects));
    }
    if (!atom.o.is_var) {
      card = SafeDiv(card, static_cast<double>(ps.distinct_objects));
    }
    return card;
  }
  // Variable property: fall back to whole-table uniformity.
  double card = total;
  if (!atom.s.is_var) {
    card = SafeDiv(card, static_cast<double>(stats_->distinct_subjects()));
  }
  if (!atom.o.is_var) {
    card = SafeDiv(card, static_cast<double>(stats_->distinct_objects()));
  }
  return card;
}

double CardinalityEstimator::DistinctValues(const Atom& atom,
                                            VarId v) const {
  const double card = EstimateAtom(atom);
  double distinct = card;
  if (!atom.p.is_var) {
    storage::PropertyStats ps = stats_->ForProperty(atom.p.term());
    if (atom.s.is_var && atom.s.var() == v) {
      distinct = static_cast<double>(ps.distinct_subjects);
    } else if (atom.o.is_var && atom.o.var() == v) {
      distinct = static_cast<double>(ps.distinct_objects);
    }
  } else {
    if (atom.p.var() == v) {
      distinct = static_cast<double>(stats_->distinct_properties());
    } else if (atom.s.is_var && atom.s.var() == v) {
      distinct = static_cast<double>(stats_->distinct_subjects());
    } else if (atom.o.is_var && atom.o.var() == v) {
      distinct = static_cast<double>(stats_->distinct_objects());
    }
  }
  // A relation of `card` rows cannot hold more than `card` distinct values.
  return std::max(1.0, std::min(distinct, std::max(card, 1.0)));
}

double CardinalityEstimator::PairCorrection(const Cq& q) const {
  // For each variable appearing in subject position of several atoms with
  // constant non-type properties, rescale by the observed co-occurrence of
  // the first two properties: P(p1 ∧ p2) / (P(p1) · P(p2)).
  double correction = 1.0;
  const double n = static_cast<double>(stats_->distinct_subjects());
  if (n < 1.0) return 1.0;
  std::map<VarId, std::vector<rdf::TermId>> subject_props;
  for (const Atom& a : q.body()) {
    if (a.s.is_var && !a.p.is_var &&
        a.p.term() != rdf::vocab::kTypeId) {
      subject_props[a.s.var()].push_back(a.p.term());
    }
  }
  for (const auto& [v, props] : subject_props) {
    if (props.size() < 2) continue;
    double ds1 = static_cast<double>(
        stats_->ForProperty(props[0]).distinct_subjects);
    double ds2 = static_cast<double>(
        stats_->ForProperty(props[1]).distinct_subjects);
    if (ds1 < 1.0 || ds2 < 1.0) continue;
    double both =
        static_cast<double>(stats_->SubjectPairCount(props[0], props[1]));
    double factor = (both * n) / (ds1 * ds2);
    correction *= std::clamp(factor, 0.01, 100.0);
  }
  return correction;
}

double CardinalityEstimator::EstimateCqRows(const Cq& q) const {
  const std::vector<Atom>& body = q.body();
  if (body.empty()) return 0.0;
  double rows = 1.0;
  for (const Atom& a : body) rows *= EstimateAtom(a);

  // Per shared variable: divide by the k-1 largest distinct-value counts
  // (the k-way generalization of |R ⋈ S| = |R||S| / max(V(R,v), V(S,v))).
  std::map<VarId, std::vector<double>> distinct_per_var;
  for (const Atom& a : body) {
    for (VarId v : Cq::AtomVars(a)) {
      distinct_per_var[v].push_back(DistinctValues(a, v));
    }
  }
  for (auto& [v, ds] : distinct_per_var) {
    if (ds.size() < 2) continue;
    std::sort(ds.begin(), ds.end(), std::greater<double>());
    for (size_t i = 0; i + 1 < ds.size(); ++i) rows /= std::max(ds[i], 1.0);
  }
  if (use_pair_statistics_) rows *= PairCorrection(q);
  return rows;
}

}  // namespace cost
}  // namespace rdfref
