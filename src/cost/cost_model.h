#ifndef RDFREF_COST_COST_MODEL_H_
#define RDFREF_COST_COST_MODEL_H_

#include <vector>

#include "cost/cardinality.h"
#include "query/cq.h"
#include "query/ucq.h"

namespace rdfref {
namespace cost {

/// \brief Unit costs of the textbook formulas. The absolute scale is
/// arbitrary (costs are only compared against one another); the ratios
/// model an RDBMS evaluating a JUCQ: scanning rows from a clustered index,
/// probing indexes in a nested-loop join, building/probing hash tables for
/// the fragment join, parsing/planning each union member, and eliminating
/// duplicates.
struct CostParams {
  double scan_per_row = 1.0;       ///< reading one row off an index
  double probe_per_row = 0.5;      ///< one index probe in an INLJ step
  double output_per_row = 0.2;     ///< producing one intermediate row
  double hash_build_per_row = 1.0; ///< building a hash table entry
  double hash_probe_per_row = 0.5; ///< probing the hash table
  double dedup_per_row = 0.2;      ///< duplicate elimination per row
  double per_union_member = 10.0;  ///< parse/plan overhead per member CQ
  /// Fraction of the non-largest members' rows that survive union
  /// deduplication (reformulation members overlap heavily).
  double union_overlap = 0.05;
  /// Correct star-join estimates with the attribute-pair distribution
  /// (Statistics::SubjectPairCount) instead of pure independence.
  bool use_pair_statistics = false;
};

/// \brief The cost estimation function `c` of the paper (Section 4): for a
/// JUCQ, returns the estimated cost of evaluating it through the RDBMS.
/// GCov minimizes this function over the space of covers.
class CostModel {
 public:
  CostModel(const storage::Statistics* stats, CostParams params = {})
      : estimator_(stats, params.use_pair_statistics), params_(params) {}

  /// \brief Cost of one CQ as a selectivity-ordered index nested-loop join
  /// (mirrors engine::Evaluator's plan).
  double CostCq(const query::Cq& q) const;

  /// \brief Cost of a UCQ: member costs + per-member overhead + union
  /// duplicate elimination.
  double CostUcq(const query::Ucq& ucq) const;

  /// \brief Per-fragment inputs of the JUCQ join-phase costing, so callers
  /// (notably GCov) can cache fragment reformulation costs across covers.
  struct FragmentCostInput {
    double eval_cost = 0.0;          ///< CostUcq of the fragment's UCQ
    double rows = 0.0;               ///< EstimateUcqRows of that UCQ
    const query::Cq* fragment_query = nullptr;  ///< the fragment subquery
  };

  /// \brief Full JUCQ strategy cost: evaluating every fragment UCQ, then
  /// hash-joining the fragment tables (smallest-first), then projecting.
  double CostJucq(const query::Cq& q,
                  const std::vector<query::Cq>& fragment_queries,
                  const std::vector<query::Ucq>& fragment_ucqs) const;

  /// \brief As CostJucq, from precomputed per-fragment costs.
  double CostJucqFromFragments(
      const std::vector<FragmentCostInput>& fragments) const;

  /// \brief Estimated result rows of a UCQ (sum of member estimates).
  double EstimateUcqRows(const query::Ucq& ucq) const;

  const CardinalityEstimator& estimator() const { return estimator_; }
  const CostParams& params() const { return params_; }

 private:
  /// Estimated distinct values of `v` across the materialized result of
  /// `fragment` (bounded by the fragment cardinality estimate).
  double FragmentDistinct(const query::Cq& fragment, query::VarId v,
                          double fragment_rows) const;

  CardinalityEstimator estimator_;
  CostParams params_;
};

}  // namespace cost
}  // namespace rdfref

#endif  // RDFREF_COST_COST_MODEL_H_
