#ifndef RDFREF_COST_CARDINALITY_H_
#define RDFREF_COST_CARDINALITY_H_

#include "query/cq.h"
#include "storage/statistics.h"

namespace rdfref {
namespace cost {

/// \brief Cardinality estimation from the store's exact statistics, using
/// the classic uniformity and independence assumptions of the relational
/// textbook (the demo paper: "in [5] we computed c based on database
/// textbook formulas").
class CardinalityEstimator {
 public:
  explicit CardinalityEstimator(const storage::Statistics* stats,
                                bool use_pair_statistics = false)
      : stats_(stats), use_pair_statistics_(use_pair_statistics) {}

  /// \brief Estimated matches of a single triple pattern (variables free).
  double EstimateAtom(const query::Atom& atom) const;

  /// \brief Estimated number of distinct values variable `v` takes in the
  /// matches of `atom` (V(R, v) in System-R terms).
  double DistinctValues(const query::Atom& atom, query::VarId v) const;

  /// \brief Estimated result cardinality of a CQ: the product of atom
  /// cardinalities discounted by one equi-join selectivity
  /// 1/max(V(Ri,v), V(Rj,v)) per additional occurrence of each shared
  /// variable.
  double EstimateCqRows(const query::Cq& q) const;

  const storage::Statistics& stats() const { return *stats_; }

 private:
  /// Correlation correction from the attribute-pair distribution: the
  /// independence assumption misjudges star joins whose properties
  /// co-occur more (or less) often than chance.
  double PairCorrection(const query::Cq& q) const;

  const storage::Statistics* stats_;
  bool use_pair_statistics_;
};

}  // namespace cost
}  // namespace rdfref

#endif  // RDFREF_COST_CARDINALITY_H_
