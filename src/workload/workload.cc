#include "workload/workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "query/sparql_parser.h"
#include "storage/version_set.h"

namespace rdfref {
namespace workload {

namespace {

constexpr const char* kSpPrefix = "PREFIX sp: <http://rdfref.org/sp2b#>\n";

bool IsRefStrategy(api::Strategy s) {
  switch (s) {
    case api::Strategy::kRefUcq:
    case api::Strategy::kRefScq:
    case api::Strategy::kRefJucq:
    case api::Strategy::kRefGcov:
    case api::Strategy::kRefIncomplete:
      return true;
    case api::Strategy::kSaturation:
    case api::Strategy::kDatalog:
      return false;
  }
  return false;
}

double ToMillis(uint64_t micros) { return static_cast<double>(micros) / 1e3; }

}  // namespace

MixSampler::MixSampler(const WorkloadMix* mix) : mix_(mix) {
  cumulative_.reserve(mix->queries.size());
  double total = 0.0;
  for (const WorkloadQuery& q : mix->queries) {
    total += q.weight > 0.0 ? q.weight : 0.0;
    cumulative_.push_back(total);
  }
}

size_t MixSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble() * cumulative_.back();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  // Skip zero-weight entries lower_bound may land on (flat cumulative).
  size_t i = static_cast<size_t>(it - cumulative_.begin());
  while (i + 1 < cumulative_.size() && mix_->queries[i].weight <= 0.0) ++i;
  return i;
}

std::unique_ptr<api::QueryAnswerer> MakeSp2bAnswerer(double scale,
                                                     uint64_t seed) {
  datagen::Sp2bConfig config;
  config.scale = scale;
  config.seed = seed;
  rdf::Graph graph;
  datagen::Sp2b::Generate(config, &graph);
  return std::make_unique<api::QueryAnswerer>(std::move(graph));
}

Result<WorkloadMix> Sp2bQueryMix(api::QueryAnswerer* answerer) {
  struct Spec {
    const char* name;
    std::string body;
    double weight;
    std::vector<std::vector<int>> cover;  // empty = single fragment
  };
  const std::string classic = datagen::Sp2b::DocumentUri(0);
  const std::vector<Spec> specs = {
      // Zipf-skewed point lookup: who cites the most-cited classic? The
      // cites subtree (extends/refutes/reproduces) forces reformulation.
      {"P1-classic-citers",
       "SELECT ?x WHERE { ?x sp:cites <" + classic + "> . }", 30, {}},
      // Deep-hierarchy scan: Publication has 20 subclasses, depth 8.
      {"T2-publications", "SELECT ?d WHERE { ?d a sp:Publication . }", 15,
       {}},
      // Venue join with a type atom on the Event subtree.
      {"V3-event-papers",
       "SELECT ?d ?v WHERE { ?d sp:publishedIn ?v . ?v a sp:Event . }", 20,
       {{0}, {1}}},
      // High-fanout star on one document variable.
      {"S4-doc-star",
       "SELECT ?d ?p ?v ?o WHERE { ?d a sp:Article . "
       "?d sp:hasContributor ?p . ?d sp:publishedIn ?v . "
       "?d sp:references ?o . }",
       8, {{0, 1}, {0, 2}, {0, 3}}},
      // Long chain: author -> paper -> cited -> cited -> venue.
      {"C5-citation-chain",
       "SELECT ?a ?x ?y ?v WHERE { ?w sp:hasFirstAuthor ?a . "
       "?w sp:cites ?x . ?x sp:cites ?y . ?y sp:publishedIn ?v . }",
       8, {{0, 1}, {1, 2}, {2, 3}}},
      // Cyclic join: mutual citations (LUBM's DAG shapes never cycle).
      {"Y6-mutual-citations",
       "SELECT ?x ?y WHERE { ?x sp:cites ?y . ?y sp:cites ?x . }", 9,
       {{0}, {1}}},
      // Triangle: co-authorship closed by a citation edge.
      {"A7-coauthor-cites",
       "SELECT ?x ?y ?p WHERE { ?x sp:hasAuthor ?p . ?y sp:hasAuthor ?p . "
       "?x sp:cites ?y . }",
       10, {{0, 2}, {1, 2}}},
  };

  WorkloadMix mix;
  for (const Spec& spec : specs) {
    RDFREF_ASSIGN_OR_RETURN(
        query::Cq cq,
        query::ParseSparql(kSpPrefix + spec.body, &answerer->dict()));
    WorkloadQuery wq;
    wq.name = spec.name;
    wq.weight = spec.weight;
    wq.cover = spec.cover.empty()
                   ? query::Cover::SingleFragment(cq.body().size())
                   : query::Cover(spec.cover);
    RDFREF_RETURN_NOT_OK(wq.cover.Validate(cq));
    wq.cq = std::move(cq);
    mix.queries.push_back(std::move(wq));
  }
  return mix;
}

Result<WorkloadReport> RunClosedLoop(api::QueryAnswerer* answerer,
                                     const WorkloadMix& mix,
                                     const DriverOptions& options) {
  if (mix.queries.empty()) {
    return Status::InvalidArgument("empty workload mix");
  }
  if (options.clients < 1) {
    return Status::InvalidArgument("need at least one client");
  }
  if (options.ops_per_client <= 0 && options.duration_ms <= 0.0) {
    return Status::InvalidArgument("need ops_per_client or duration_ms");
  }
  if (options.concurrent_writer && !IsRefStrategy(options.strategy)) {
    return Status::InvalidArgument(
        "concurrent writer requires a Ref strategy: Sat/Dat lazy state is "
        "not synchronized against updates");
  }
  if (options.strategy == api::Strategy::kDatalog && options.clients > 1) {
    return Status::InvalidArgument(
        "kDatalog evaluation is single-threaded; use clients=1");
  }

  if (options.view_cache && !IsRefStrategy(options.strategy)) {
    return Status::InvalidArgument(
        "the view cache serves the Ref strategies only");
  }

  const size_t num_queries = mix.queries.size();
  // Per-query AnswerOptions, fixed for the whole run: the JUCQ strategy
  // takes each query's cover, everything else carries only the thread knob.
  std::vector<api::AnswerOptions> per_query(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    per_query[i].threads = options.eval_threads;
    // Off-knob runs must stay cold even when the caller's answerer already
    // carries an enabled (and warm) cache — e.g. the cold leg of a sweep.
    per_query[i].use_view_cache = options.view_cache;
    if (options.strategy == api::Strategy::kRefJucq) {
      per_query[i].cover =
          mix.queries[i].cover.num_fragments() > 0
              ? mix.queries[i].cover
              : query::Cover::SingleFragment(mix.queries[i].cq.body().size());
    }
  }

  // View-cache setup happens before warm-up: the warm-up pass then doubles
  // as the cache fill, and the measured window reports steady-state rates.
  // (optimizer:: types arrive through api/query_answering.h — the workload
  // layer deliberately has no direct optimizer dependency.)
  std::vector<std::string> selected_views;
  if (options.view_cache) {
    answerer->EnableViewCache();
    if (options.view_selection) {
      std::vector<optimizer::WorkloadQueryProfile> profiles;
      profiles.reserve(num_queries);
      for (const WorkloadQuery& wq : mix.queries) {
        optimizer::WorkloadQueryProfile p;
        p.cq = wq.cq;
        p.weight = wq.weight;
        if (wq.cover.num_fragments() > 0 && wq.cover.Validate(wq.cq).ok()) {
          p.covers.push_back(wq.cover);
        }
        profiles.push_back(std::move(p));
      }
      RDFREF_ASSIGN_OR_RETURN(optimizer::ViewSelectionResult selection,
                              answerer->SelectViews(profiles));
      selected_views = std::move(selection.chosen_keys);
    }
  }

  // Warm-up pass, single-threaded, before the clock: builds lazy strategy
  // state (saturation store, Datalog program) and surfaces per-query
  // errors (bad covers, unsafe queries) deterministically instead of as
  // mid-run error counts.
  for (size_t i = 0; i < num_queries; ++i) {
    RDFREF_ASSIGN_OR_RETURN(
        engine::Table warm,
        answerer->Answer(mix.queries[i].cq, options.strategy, nullptr,
                         per_query[i]));
    (void)warm;
  }
  // Counter baseline at the warm/measured boundary: the report's deltas
  // then describe steady-state behaviour, not the initial fill.
  const engine::ViewCacheStats cache_baseline = answerer->view_cache_stats();

  // Pre-interned churn triples over a workload-only property: the writer
  // thread must never touch the (unsynchronized) dictionary. The property
  // appears in no schema constraint and no mix query, so churn shifts the
  // version set's shape — head fills, runs seal, compaction races — without
  // changing any answer.
  std::vector<rdf::Triple> churn;
  if (options.concurrent_writer) {
    rdf::Dictionary& dict = answerer->dict();
    const rdf::TermId touches =
        dict.InternUri("http://rdfref.org/workload#churn");
    const int batch = std::max(options.writer_batch, 1);
    churn.reserve(static_cast<size_t>(batch));
    for (int i = 0; i < batch; ++i) {
      churn.emplace_back(
          dict.InternUri("http://rdfref.org/workload#s" +
                         std::to_string(i % 128)),
          touches,
          dict.InternUri("http://rdfref.org/workload#o" + std::to_string(i)));
    }
  }

  // Shared lock-free measurement state.
  LatencyHistogram global_hist;
  std::vector<std::unique_ptr<LatencyHistogram>> query_hists;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> query_counts;
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> query_rows;
  for (size_t i = 0; i < num_queries; ++i) {
    query_hists.push_back(std::make_unique<LatencyHistogram>());
    query_counts.push_back(std::make_unique<std::atomic<uint64_t>>(0));
    query_rows.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> writer_ops{0};
  std::atomic<bool> stop{false};

  // Independent per-client streams: client c's draw sequence depends only
  // on (seed, c), never on how fast the other clients run.
  Rng root(options.seed);
  std::vector<Rng> client_rngs;
  client_rngs.reserve(static_cast<size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    client_rngs.push_back(root.Split());
  }
  Rng writer_rng = root.Split();

  storage::VersionSet& versions = answerer->versions();
  if (options.concurrent_writer) {
    storage::VersionSetOptions maintenance;
    maintenance.freeze_threshold = 256;
    maintenance.compact_min_runs = 3;
    versions.StartBackgroundCompaction(maintenance);
  }

  Timer wall;
  std::thread writer;
  if (options.concurrent_writer) {
    writer = std::thread([&] {
      // Insert the churn set, drain it, repeat — the head keeps crossing
      // the freeze threshold and compaction keeps firing.
      while (!stop.load(std::memory_order_relaxed)) {
        for (const rdf::Triple& t : churn) {
          if (stop.load(std::memory_order_relaxed)) return;
          versions.Insert(t);
          writer_ops.fetch_add(1, std::memory_order_relaxed);
        }
        for (const rdf::Triple& t : churn) {
          if (stop.load(std::memory_order_relaxed)) return;
          versions.Remove(t);
          writer_ops.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng = client_rngs[static_cast<size_t>(c)];
      MixSampler sampler(&mix);
      int done = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        if (options.ops_per_client > 0 && done >= options.ops_per_client) {
          break;
        }
        const size_t qi = sampler.Sample(&rng);
        Timer timer;
        Result<engine::Table> answer = answerer->Answer(
            mix.queries[qi].cq, options.strategy, nullptr, per_query[qi]);
        const uint64_t micros = static_cast<uint64_t>(timer.ElapsedMicros());
        if (answer.ok()) {
          global_hist.Record(micros);
          query_hists[qi]->Record(micros);
          query_counts[qi]->fetch_add(1, std::memory_order_relaxed);
          query_rows[qi]->fetch_add(answer->NumRows(),
                                    std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        ++done;
      }
    });
  }

  if (options.ops_per_client <= 0) {
    // Duration mode: sleep in slices so shutdown stays prompt.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(
            static_cast<int64_t>(options.duration_ms * 1000.0));
    while (std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    stop.store(true, std::memory_order_relaxed);
  }
  for (std::thread& t : clients) t.join();
  stop.store(true, std::memory_order_relaxed);
  if (writer.joinable()) writer.join();
  const double wall_ms = wall.ElapsedMillis();

  if (options.concurrent_writer) {
    versions.StopBackgroundCompaction();
    // Leave the store exactly as found: drain any half-inserted wave.
    for (const rdf::Triple& t : churn) {
      if (versions.Contains(t)) versions.Remove(t);
    }
  }
  (void)writer_rng;  // reserved for randomized churn orders

  WorkloadReport report;
  report.wall_ms = wall_ms;
  report.errors = errors.load();
  report.writer_ops = writer_ops.load();
  report.total_queries = global_hist.TotalCount();
  report.throughput_qps =
      wall_ms > 0.0
          ? static_cast<double>(report.total_queries) / (wall_ms / 1e3)
          : 0.0;
  report.p50_ms = ToMillis(global_hist.Percentile(50));
  report.p95_ms = ToMillis(global_hist.Percentile(95));
  report.p99_ms = ToMillis(global_hist.Percentile(99));
  for (size_t i = 0; i < num_queries; ++i) {
    QueryStats stats;
    stats.name = mix.queries[i].name;
    stats.count = query_counts[i]->load();
    stats.rows = query_rows[i]->load();
    stats.p50_ms = ToMillis(query_hists[i]->Percentile(50));
    stats.p95_ms = ToMillis(query_hists[i]->Percentile(95));
    stats.p99_ms = ToMillis(query_hists[i]->Percentile(99));
    report.total_rows += stats.rows;
    report.per_query.push_back(std::move(stats));
  }
  if (options.view_cache) {
    const engine::ViewCacheStats end = answerer->view_cache_stats();
    report.view_cache = true;
    report.cache_hits = end.hits - cache_baseline.hits;
    report.cache_misses = end.misses - cache_baseline.misses;
    report.cache_installs = end.installs - cache_baseline.installs;
    report.cache_evictions = end.evictions - cache_baseline.evictions;
    report.cache_invalidations =
        end.invalidations - cache_baseline.invalidations;
    const uint64_t probes = report.cache_hits + report.cache_misses;
    report.cache_hit_rate =
        probes > 0 ? static_cast<double>(report.cache_hits) /
                         static_cast<double>(probes)
                   : 0.0;
    report.cache_bytes = end.bytes;
    report.cache_entries = end.entries;
    report.selected_views = std::move(selected_views);
  }
  return report;
}

}  // namespace workload
}  // namespace rdfref
