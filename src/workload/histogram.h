#ifndef RDFREF_WORKLOAD_HISTOGRAM_H_
#define RDFREF_WORKLOAD_HISTOGRAM_H_

#include <array>
#include <atomic>
#include <cstdint>

namespace rdfref {
namespace workload {

/// \brief A lock-free streaming latency histogram (HdrHistogram-style):
/// fixed power-of-two buckets split into 2^kSubBucketBits linear
/// sub-buckets, one relaxed atomic counter each. Record() is wait-free and
/// allocation-free, so closed-loop client threads can share one instance
/// without perturbing the latencies they measure.
///
/// Precision: values below kSubBuckets (32 µs at microsecond resolution)
/// land in exact singleton buckets; larger values carry a relative error of
/// at most 1/kSubBuckets (~3%). Quantiles report the bucket's upper bound,
/// so a reported p99 never understates the true p99 by more than that
/// factor. Reading quantiles concurrently with writers is safe (relaxed
/// loads) but yields a momentary mixture; the driver reads after joining.
class LatencyHistogram {
 public:
  static constexpr int kSubBucketBits = 5;
  static constexpr uint64_t kSubBuckets = 1ULL << kSubBucketBits;
  /// The exact linear range plus one group of kSubBuckets slots per
  /// magnitude above it (values with bit-width kSubBucketBits+1 .. 64).
  static constexpr size_t kSlots = (64 - kSubBucketBits + 1) * kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// \brief Records one measurement (wait-free, any thread).
  void Record(uint64_t value) {
    counts_[SlotFor(value)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  /// \brief Adds every count of `other` into this histogram (per-thread
  /// histograms merge into one report).
  void Merge(const LatencyHistogram& other);

  /// \brief Total measurements recorded.
  uint64_t TotalCount() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// \brief The smallest bucket upper bound `v` such that at least
  /// ceil(q * TotalCount()) measurements are <= v. q in [0, 1]; returns 0
  /// on an empty histogram. Exact for values in the linear range.
  uint64_t ValueAtQuantile(double q) const;

  /// \brief ValueAtQuantile with a percent argument (p50 => 50.0).
  uint64_t Percentile(double p) const { return ValueAtQuantile(p / 100.0); }

  /// \brief Resets every counter to zero (single-threaded use only).
  void Clear();

  /// \brief The bucket slot a value lands in, and the largest value that
  /// shares that slot (exposed for the unit tests' error-bound checks).
  static size_t SlotFor(uint64_t value);
  static uint64_t SlotUpperBound(size_t slot);

 private:
  std::array<std::atomic<uint64_t>, kSlots> counts_{};
  std::atomic<uint64_t> total_{0};
};

}  // namespace workload
}  // namespace rdfref

#endif  // RDFREF_WORKLOAD_HISTOGRAM_H_
