#ifndef RDFREF_WORKLOAD_WORKLOAD_H_
#define RDFREF_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/query_answering.h"
#include "common/result.h"
#include "datagen/sp2b.h"
#include "query/cover.h"
#include "query/cq.h"
#include "workload/histogram.h"

namespace rdfref {
namespace workload {

/// \brief One named query of a mix, with a relative weight (how often the
/// closed-loop clients draw it) and an optional JUCQ cover (used by
/// Strategy::kRefJucq; strategies that pick their own cover ignore it, and
/// a query without one falls back to the single-fragment cover, i.e. plain
/// UCQ evaluation of that query).
struct WorkloadQuery {
  std::string name;
  query::Cq cq;
  double weight = 1.0;
  query::Cover cover;
};

/// \brief A weighted query mix. Weights need not sum to 1.
struct WorkloadMix {
  std::vector<WorkloadQuery> queries;
};

/// \brief Deterministic weighted sampler over a mix (cumulative weights +
/// one Rng draw). Each client thread owns one, seeded from its own split,
/// so the sequence of queries a client replays is a pure function of
/// (mix, seed, client index).
class MixSampler {
 public:
  explicit MixSampler(const WorkloadMix* mix);

  /// \brief Index into mix->queries of the next draw.
  size_t Sample(Rng* rng) const;

 private:
  const WorkloadMix* mix_;
  std::vector<double> cumulative_;
};

/// \brief Options of one closed-loop run.
struct DriverOptions {
  api::Strategy strategy = api::Strategy::kRefUcq;
  /// Closed-loop client threads sharing the one QueryAnswerer.
  int clients = 4;
  /// Seed of every random stream in the run (client mixes, writer churn).
  uint64_t seed = 1;
  /// Stop condition: when > 0, every client runs exactly this many queries
  /// (deterministic; what the unit tests use). When 0, clients run until
  /// `duration_ms` of wall clock elapses.
  int ops_per_client = 0;
  double duration_ms = 500;
  /// Start a concurrent writer thread churning pre-interned triples
  /// through the shared VersionSet (insert waves, then delete waves), with
  /// background freeze/compaction enabled — the snapshot-isolation serving
  /// scenario. Only the Ref strategies are allowed with a writer: Sat/Dat
  /// maintain lazy state that is not synchronized against updates.
  bool concurrent_writer = false;
  /// Churn triples the writer cycles through per wave.
  int writer_batch = 512;
  /// AnswerOptions::threads for each query evaluation (1 = the client
  /// thread itself; the default, so saturation throughput scales with the
  /// client count, not with nested pools).
  int eval_threads = 1;
  /// Enable the cross-query view cache for the run (Ref strategies only):
  /// the driver turns it on before the warm-up pass, so warm-up installs
  /// the hot views and the measured window runs against a warm cache.
  /// Counters in the report cover the measured window only.
  bool view_cache = false;
  /// With view_cache: run the workload-driven view-selection pass over the
  /// mix first, so the chosen views get eviction protection and GCov
  /// cover-alignment hints.
  bool view_selection = true;
};

/// \brief Latency/throughput digest of one query name within a run.
struct QueryStats {
  std::string name;
  uint64_t count = 0;
  uint64_t rows = 0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
};

/// \brief Result of one closed-loop run.
struct WorkloadReport {
  uint64_t total_queries = 0;
  uint64_t total_rows = 0;
  /// Queries that returned a non-OK status (any error fails the run's
  /// acceptance in tests; the count keeps the driver robust in benches).
  uint64_t errors = 0;
  /// Insert/Remove operations the churn writer completed (0 without one).
  uint64_t writer_ops = 0;
  double wall_ms = 0.0;
  double throughput_qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  std::vector<QueryStats> per_query;
  /// View-cache digest of the measured window (all zero when the run had
  /// DriverOptions::view_cache off). Counter fields are deltas from the
  /// end of warm-up to the end of the run; bytes/entries are end gauges.
  bool view_cache = false;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_installs = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_invalidations = 0;
  double cache_hit_rate = 0.0;
  uint64_t cache_bytes = 0;
  uint64_t cache_entries = 0;
  /// Canonical keys the selection pass chose (empty without one).
  std::vector<std::string> selected_views;
};

/// \brief Runs one closed-loop workload: `clients` threads each replay a
/// seeded draw sequence from `mix` against the shared answerer, recording
/// per-query latency into lock-free histograms; optionally a writer thread
/// churns the version set underneath (snapshot isolation keeps every
/// answer consistent). Lazy strategy state (saturation store, Datalog
/// program) is warmed before the clock starts.
Result<WorkloadReport> RunClosedLoop(api::QueryAnswerer* answerer,
                                     const WorkloadMix& mix,
                                     const DriverOptions& options);

/// \brief The pinned sp2b query mix: long citation chains, high-fanout
/// stars, a cyclic mutual-citation join, deep-hierarchy type scans and a
/// Zipf-skewed point lookup — the shapes the LUBM suite never produces.
/// Queries are parsed against the answerer's dictionary; every one carries
/// a hand-picked connected cover for kRefJucq. Weights skew towards the
/// cheap lookups (an 80/20 serving profile).
Result<WorkloadMix> Sp2bQueryMix(api::QueryAnswerer* answerer);

/// \brief Builds a QueryAnswerer over a generated sp2b graph (scale
/// multiplies Sp2bConfig::documents).
std::unique_ptr<api::QueryAnswerer> MakeSp2bAnswerer(double scale,
                                                     uint64_t seed = 11);

}  // namespace workload
}  // namespace rdfref

#endif  // RDFREF_WORKLOAD_WORKLOAD_H_
