#include "workload/histogram.h"

#include <bit>
#include <cmath>

namespace rdfref {
namespace workload {

size_t LatencyHistogram::SlotFor(uint64_t value) {
  if (value < kSubBuckets) return static_cast<size_t>(value);
  // bit_width - 1 = index of the most significant set bit (>= kSubBucketBits).
  const int exponent = std::bit_width(value) - 1;
  const int shift = exponent - kSubBucketBits;
  // top in [kSubBuckets, 2*kSubBuckets): the kSubBucketBits bits below the
  // leading one select the linear sub-bucket within this power of two.
  const uint64_t top = value >> shift;
  return static_cast<size_t>((shift + 1) * kSubBuckets +
                             (top - kSubBuckets));
}

uint64_t LatencyHistogram::SlotUpperBound(size_t slot) {
  if (slot < kSubBuckets) return static_cast<uint64_t>(slot);
  const int shift = static_cast<int>(slot / kSubBuckets) - 1;
  const uint64_t top = kSubBuckets + (slot % kSubBuckets);
  return ((top + 1) << shift) - 1;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kSlots; ++i) {
    const uint64_t n = other.counts_[i].load(std::memory_order_relaxed);
    if (n != 0) counts_[i].fetch_add(n, std::memory_order_relaxed);
  }
  total_.fetch_add(other.total_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
}

uint64_t LatencyHistogram::ValueAtQuantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  uint64_t rank = static_cast<uint64_t>(std::ceil(q * total));
  if (rank == 0) rank = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kSlots; ++i) {
    cumulative += counts_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) return SlotUpperBound(i);
  }
  return SlotUpperBound(kSlots - 1);
}

void LatencyHistogram::Clear() {
  for (size_t i = 0; i < kSlots; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  total_.store(0, std::memory_order_relaxed);
}

}  // namespace workload
}  // namespace rdfref
