#include "datalog/seminaive.h"

#include <algorithm>

namespace rdfref {
namespace datalog {

namespace {
constexpr rdf::TermId kUnbound = rdf::kInvalidTermId;
const std::vector<size_t> kNoMatches;
}  // namespace

bool DlRelation::Insert(const std::vector<rdf::TermId>& tuple) {
  if (!set_.insert(tuple).second) return false;
  tuples_.push_back(tuple);
  return true;
}

const std::vector<size_t>& DlRelation::Matching(size_t col,
                                                rdf::TermId value) const {
  ColumnIndex& index = indexes_[col];
  // Extend the index over tuples appended since the last lookup.
  for (size_t i = index.built_upto; i < tuples_.size(); ++i) {
    index.map[tuples_[i][col]].push_back(i);
  }
  index.built_upto = tuples_.size();
  auto it = index.map.find(value);
  return it == index.map.end() ? kNoMatches : it->second;
}

SemiNaive::SemiNaive(const Program* program) : program_(program) {
  relations_.reserve(program->num_predicates());
  for (PredId p = 0; p < program->num_predicates(); ++p) {
    relations_.emplace_back(program->arity(p));
  }
}

size_t SemiNaive::CountRuleVars(const DlRule& rule) {
  uint32_t max_var = 0;
  bool any = false;
  auto visit = [&](const DlAtom& atom) {
    for (const DlTerm& t : atom.args) {
      if (t.is_var) {
        max_var = std::max(max_var, t.id);
        any = true;
      }
    }
  };
  visit(rule.head);
  for (const DlAtom& a : rule.body) visit(a);
  return any ? max_var + 1 : 0;
}

void SemiNaive::JoinBody(const DlAtom& head,
                         const std::vector<const DlAtom*>& order,
                         size_t depth, const DlRelation* first_override,
                         std::vector<rdf::TermId>* bindings,
                         std::vector<std::vector<rdf::TermId>>* out) const {
  if (depth == order.size()) {
    std::vector<rdf::TermId> tuple;
    tuple.reserve(head.args.size());
    for (const DlTerm& t : head.args) {
      tuple.push_back(t.is_var ? (*bindings)[t.id] : t.id);
    }
    out->push_back(std::move(tuple));
    return;
  }
  const DlAtom& atom = *order[depth];
  const DlRelation& rel = (depth == 0 && first_override != nullptr)
                              ? *first_override
                              : relations_[atom.pred];

  // Pick an access path: an index lookup on the first constant-or-bound
  // argument, else a full scan.
  int key_col = -1;
  rdf::TermId key_value = kUnbound;
  for (size_t i = 0; i < atom.args.size(); ++i) {
    const DlTerm& t = atom.args[i];
    if (!t.is_var) {
      key_col = static_cast<int>(i);
      key_value = t.id;
      break;
    }
    if ((*bindings)[t.id] != kUnbound) {
      key_col = static_cast<int>(i);
      key_value = (*bindings)[t.id];
      break;
    }
  }

  auto try_tuple = [&](const std::vector<rdf::TermId>& tuple) {
    // Program::AddRule bounds body-atom arity to kMaxBodyArity.
    uint32_t newly[kMaxBodyArity];
    int num_new = 0;
    bool ok = true;
    for (size_t i = 0; i < atom.args.size() && ok; ++i) {
      const DlTerm& t = atom.args[i];
      if (!t.is_var) {
        ok = tuple[i] == t.id;
      } else {
        rdf::TermId& slot = (*bindings)[t.id];
        if (slot == kUnbound) {
          slot = tuple[i];
          newly[num_new++] = t.id;
        } else {
          ok = slot == tuple[i];
        }
      }
    }
    if (ok) JoinBody(head, order, depth + 1, first_override, bindings, out);
    for (int k = 0; k < num_new; ++k) (*bindings)[newly[k]] = kUnbound;
  };

  if (key_col >= 0) {
    // Matching() returns a reference into the index, which recursive calls
    // may extend (same-predicate joins); copy the candidate list.
    std::vector<size_t> candidates =
        rel.Matching(static_cast<size_t>(key_col), key_value);
    for (size_t idx : candidates) try_tuple(rel.tuples()[idx]);
  } else {
    // Iterate by position: recursion may append tuples to this relation's
    // backing vector, so no iterators; new tuples are handled next round.
    const size_t limit = rel.tuples().size();
    for (size_t idx = 0; idx < limit; ++idx) try_tuple(rel.tuples()[idx]);
  }
}

void SemiNaive::Run() {
  if (ran_) return;
  ran_ = true;

  // Load the EDB; the first delta is everything.
  std::vector<DlRelation> delta;
  delta.reserve(relations_.size());
  for (PredId p = 0; p < program_->num_predicates(); ++p) {
    delta.emplace_back(program_->arity(p));
    for (const std::vector<rdf::TermId>& fact : program_->facts()[p]) {
      if (relations_[p].Insert(fact)) delta[p].Insert(fact);
    }
  }

  iterations_ = 0;
  std::vector<std::vector<rdf::TermId>> derived;
  while (true) {
    ++iterations_;
    std::vector<DlRelation> next_delta;
    next_delta.reserve(relations_.size());
    for (PredId p = 0; p < program_->num_predicates(); ++p) {
      next_delta.emplace_back(program_->arity(p));
    }
    bool any_new = false;
    for (const DlRule& rule : program_->rules()) {
      std::vector<rdf::TermId> bindings(CountRuleVars(rule), kUnbound);
      for (size_t i = 0; i < rule.body.size(); ++i) {
        if (delta[rule.body[i].pred].size() == 0) continue;
        // Evaluate with body atom i restricted to the delta, and moved to
        // the front of the join order so the delta drives the join.
        std::vector<const DlAtom*> order;
        order.reserve(rule.body.size());
        order.push_back(&rule.body[i]);
        for (size_t j = 0; j < rule.body.size(); ++j) {
          if (j != i) order.push_back(&rule.body[j]);
        }
        derived.clear();
        JoinBody(rule.head, order, 0, &delta[rule.body[i].pred], &bindings,
                 &derived);
        for (const std::vector<rdf::TermId>& tuple : derived) {
          if (relations_[rule.head.pred].Insert(tuple)) {
            next_delta[rule.head.pred].Insert(tuple);
            any_new = true;
          }
        }
      }
    }
    if (!any_new) break;
    delta = std::move(next_delta);
  }
}

size_t SemiNaive::TotalTuples() const {
  size_t total = 0;
  for (const DlRelation& r : relations_) total += r.size();
  return total;
}

std::vector<std::vector<rdf::TermId>> SemiNaive::EvaluateRuleOnce(
    const DlRule& rule) const {
  std::vector<rdf::TermId> bindings(CountRuleVars(rule), kUnbound);
  std::vector<std::vector<rdf::TermId>> out;
  std::vector<const DlAtom*> order;
  order.reserve(rule.body.size());
  // Constants-first ordering: atoms with more constant arguments are more
  // selective leading scans.
  for (const DlAtom& a : rule.body) order.push_back(&a);
  std::stable_sort(order.begin(), order.end(),
                   [](const DlAtom* a, const DlAtom* b) {
                     auto consts = [](const DlAtom* atom) {
                       size_t n = 0;
                       for (const DlTerm& t : atom->args) {
                         if (!t.is_var) ++n;
                       }
                       return n;
                     };
                     return consts(a) > consts(b);
                   });
  JoinBody(rule.head, order, 0, /*first_override=*/nullptr, &bindings, &out);
  return out;
}

}  // namespace datalog
}  // namespace rdfref
