#ifndef RDFREF_DATALOG_RDF_DATALOG_H_
#define RDFREF_DATALOG_RDF_DATALOG_H_

#include <memory>

#include "common/result.h"
#include "datalog/program.h"
#include "datalog/seminaive.h"
#include "engine/table.h"
#include "query/cq.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace datalog {

/// \brief The Dat answering technique of the demonstration (Section 5): RDF
/// data, RDFS constraints and the query are encoded into a Datalog program
/// evaluated bottom-up (standing in for the LogicBlox engine).
///
/// Encoding:
///   EDB   triple(s, p, o)  — every explicit triple (schema included)
///         resource(x)      — every non-literal value (literals cannot be
///                            typed by the range rule)
///   IDB   tri(s, p, o)     — the saturation G∞, defined by one Datalog
///         rule per RDFS entailment rule (instance *and* schema level)
///   query ans(head) :- tri(t1), ..., tri(tα).
///
/// The closure runs once (semi-naive, lazily at the first Answer call);
/// each query is then a single-pass rule evaluation over `tri`.
class DatalogAnswerer {
 public:
  /// \brief `source` must outlive the answerer.
  explicit DatalogAnswerer(const storage::TripleSource* source);

  /// \brief Answers a conjunctive query against the encoded program.
  Result<engine::Table> Answer(const query::Cq& q);

  /// \brief Milliseconds spent computing the closure (0 until first use).
  double closure_millis() const { return closure_millis_; }

  /// \brief Size of the materialized `tri` relation (0 until first use).
  size_t closure_size() const;

  /// \brief Forces the closure to run now (for benchmarking setup).
  void EnsureClosure();

 private:
  const storage::TripleSource* store_;
  Program program_;
  std::unique_ptr<SemiNaive> evaluator_;
  PredId triple_ = 0, resource_ = 0, tri_ = 0;
  bool ran_ = false;
  double closure_millis_ = 0.0;
};

}  // namespace datalog
}  // namespace rdfref

#endif  // RDFREF_DATALOG_RDF_DATALOG_H_
