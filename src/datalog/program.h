#ifndef RDFREF_DATALOG_PROGRAM_H_
#define RDFREF_DATALOG_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "rdf/term.h"

namespace rdfref {
namespace datalog {

/// \brief Predicate identifier within a Program.
using PredId = uint32_t;

/// \brief Maximum arity of a rule body atom (bounds a fixed-size binding
/// scratch buffer in the evaluator).
inline constexpr size_t kMaxBodyArity = 16;

/// \brief A term of a Datalog atom: a rule-local variable or a constant
/// (constants are rdf::TermIds, since our EDB is an RDF store).
struct DlTerm {
  bool is_var = false;
  uint32_t id = 0;

  static DlTerm Var(uint32_t v) { return DlTerm{true, v}; }
  static DlTerm Const(rdf::TermId c) { return DlTerm{false, c}; }

  friend bool operator==(const DlTerm& a, const DlTerm& b) {
    return a.is_var == b.is_var && a.id == b.id;
  }
};

/// \brief A Datalog atom p(a1, ..., ak).
struct DlAtom {
  PredId pred = 0;
  std::vector<DlTerm> args;

  DlAtom() = default;
  DlAtom(PredId p, std::vector<DlTerm> a) : pred(p), args(std::move(a)) {}
};

/// \brief A positive Datalog rule head :- body.
struct DlRule {
  DlAtom head;
  std::vector<DlAtom> body;
};

/// \brief A positive Datalog program: predicates, facts (the EDB) and rules
/// (defining the IDB). This is the encoding target of the paper's Dat
/// technique ("a simple encoding of the RDF data, constraints and queries
/// into Datalog programs", Section 5 — the LogicBlox alternative).
class Program {
 public:
  Program() = default;

  /// \brief Declares a predicate; returns its id.
  PredId AddPredicate(std::string name, size_t arity);

  /// \brief Adds an EDB fact; the tuple arity must match the predicate's.
  Status AddFact(PredId pred, std::vector<rdf::TermId> tuple);

  /// \brief Adds a rule; checks arities and range restriction (every head
  /// variable occurs in the body).
  Status AddRule(DlRule rule);

  size_t num_predicates() const { return names_.size(); }
  const std::string& name(PredId p) const { return names_[p]; }
  size_t arity(PredId p) const { return arities_[p]; }
  const std::vector<DlRule>& rules() const { return rules_; }
  const std::vector<std::vector<std::vector<rdf::TermId>>>& facts() const {
    return facts_;
  }

 private:
  std::vector<std::string> names_;
  std::vector<size_t> arities_;
  std::vector<std::vector<std::vector<rdf::TermId>>> facts_;  // per predicate
  std::vector<DlRule> rules_;
};

}  // namespace datalog
}  // namespace rdfref

#endif  // RDFREF_DATALOG_PROGRAM_H_
