#include "datalog/rdf_datalog.h"

#include <limits>

#include "common/timer.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace datalog {

namespace {
using query::QTerm;
namespace vocab = rdf::vocab;

DlTerm V(uint32_t v) { return DlTerm::Var(v); }
DlTerm C(rdf::TermId c) { return DlTerm::Const(c); }
}  // namespace

DatalogAnswerer::DatalogAnswerer(const storage::TripleSource* source)
    : store_(source) {
  triple_ = program_.AddPredicate("triple", 3);
  resource_ = program_.AddPredicate("resource", 1);
  tri_ = program_.AddPredicate("tri", 3);

  // EDB: the explicit triples, and the non-literal values.
  store_->Scan(storage::kAny, storage::kAny, storage::kAny,
               [this](const rdf::Triple& t) {
                 (void)program_.AddFact(triple_, {t.s, t.p, t.o});
               });
  const rdf::Dictionary& dict = store_->dict();
  // Dense 0..size-1 enumeration of every dictionary entry — valid under
  // any id permutation.  // rdfref-check: allow(termid-arith)
  for (rdf::TermId id = 0; id < dict.size(); ++id) {
    if (!dict.Lookup(id).is_literal()) {
      (void)program_.AddFact(resource_, {id});
    }
  }

  // IDB: tri = the RDFS closure. Variables are rule-local: 0=S, 1=P/C1,
  // 2=O/C2, 3=auxiliary.
  auto add = [this](DlRule rule) { (void)program_.AddRule(std::move(rule)); };

  // Base: every explicit triple is entailed.
  add({DlAtom(tri_, {V(0), V(1), V(2)}),
       {DlAtom(triple_, {V(0), V(1), V(2)})}});
  // Schema level — (S1) subclass transitivity, (S2) subproperty
  // transitivity, (S3)/(S4) domain/range up the class hierarchy,
  // (S5)/(S6) domain/range down the property hierarchy.
  add({DlAtom(tri_, {V(0), C(vocab::kSubClassOfId), V(2)}),
       {DlAtom(tri_, {V(0), C(vocab::kSubClassOfId), V(1)}),
        DlAtom(tri_, {V(1), C(vocab::kSubClassOfId), V(2)})}});
  add({DlAtom(tri_, {V(0), C(vocab::kSubPropertyOfId), V(2)}),
       {DlAtom(tri_, {V(0), C(vocab::kSubPropertyOfId), V(1)}),
        DlAtom(tri_, {V(1), C(vocab::kSubPropertyOfId), V(2)})}});
  add({DlAtom(tri_, {V(0), C(vocab::kDomainId), V(2)}),
       {DlAtom(tri_, {V(0), C(vocab::kDomainId), V(1)}),
        DlAtom(tri_, {V(1), C(vocab::kSubClassOfId), V(2)})}});
  add({DlAtom(tri_, {V(0), C(vocab::kRangeId), V(2)}),
       {DlAtom(tri_, {V(0), C(vocab::kRangeId), V(1)}),
        DlAtom(tri_, {V(1), C(vocab::kSubClassOfId), V(2)})}});
  add({DlAtom(tri_, {V(0), C(vocab::kDomainId), V(2)}),
       {DlAtom(tri_, {V(0), C(vocab::kSubPropertyOfId), V(1)}),
        DlAtom(tri_, {V(1), C(vocab::kDomainId), V(2)})}});
  add({DlAtom(tri_, {V(0), C(vocab::kRangeId), V(2)}),
       {DlAtom(tri_, {V(0), C(vocab::kSubPropertyOfId), V(1)}),
        DlAtom(tri_, {V(1), C(vocab::kRangeId), V(2)})}});
  // Instance level — (rdfs9) subclass, (rdfs7) subproperty, (rdfs2)
  // domain, (rdfs3) range (restricted to resources).
  add({DlAtom(tri_, {V(0), C(vocab::kTypeId), V(2)}),
       {DlAtom(tri_, {V(0), C(vocab::kTypeId), V(1)}),
        DlAtom(tri_, {V(1), C(vocab::kSubClassOfId), V(2)})}});
  add({DlAtom(tri_, {V(0), V(2), V(3)}),
       {DlAtom(tri_, {V(0), V(1), V(3)}),
        DlAtom(tri_, {V(1), C(vocab::kSubPropertyOfId), V(2)})}});
  add({DlAtom(tri_, {V(0), C(vocab::kTypeId), V(2)}),
       {DlAtom(tri_, {V(0), V(1), V(3)}),
        DlAtom(tri_, {V(1), C(vocab::kDomainId), V(2)})}});
  add({DlAtom(tri_, {V(3), C(vocab::kTypeId), V(2)}),
       {DlAtom(tri_, {V(0), V(1), V(3)}),
        DlAtom(tri_, {V(1), C(vocab::kRangeId), V(2)}),
        DlAtom(resource_, {V(3)})}});
}

void DatalogAnswerer::EnsureClosure() {
  if (ran_) return;
  ran_ = true;
  Timer timer;
  evaluator_ = std::make_unique<SemiNaive>(&program_);
  evaluator_->Run();
  closure_millis_ = timer.ElapsedMillis();
}

size_t DatalogAnswerer::closure_size() const {
  return evaluator_ == nullptr ? 0 : evaluator_->relation(tri_).size();
}

Result<engine::Table> DatalogAnswerer::Answer(const query::Cq& q) {
  if (q.body().empty()) {
    return Status::InvalidArgument("empty BGP");
  }
  EnsureClosure();

  // ans(head) :- tri(t1), ..., tri(tα). Query variables map to rule
  // variables with the same numbering.
  DlRule rule;
  auto dlterm = [](const QTerm& t) {
    return t.is_var ? DlTerm::Var(t.var()) : DlTerm::Const(t.term());
  };
  std::vector<DlTerm> head_args;
  for (const QTerm& h : q.head()) head_args.push_back(dlterm(h));
  // The head predicate is synthetic; EvaluateRuleOnce never stores it, so a
  // throwaway predicate id keeps the program unchanged across queries.
  DlAtom head;
  head.pred = tri_;  // unused by EvaluateRuleOnce except for args
  head.args = std::move(head_args);
  rule.head = head;
  for (const query::Atom& a : q.body()) {
    rule.body.push_back(
        DlAtom(tri_, {dlterm(a.s), dlterm(a.p), dlterm(a.o)}));
  }
  for (query::VarId v : q.resource_vars()) {
    rule.body.push_back(DlAtom(resource_, {DlTerm::Var(v)}));
  }

  engine::Table table;
  for (const QTerm& h : q.head()) {
    table.columns.push_back(h.is_var
                                ? h.var()
                                : std::numeric_limits<query::VarId>::max());
  }
  table.SetArity(q.head().size());
  for (const std::vector<rdf::TermId>& row : evaluator_->EvaluateRuleOnce(rule)) {
    table.AppendRow(row);
  }
  table.Dedup();
  return table;
}

}  // namespace datalog
}  // namespace rdfref
