#ifndef RDFREF_DATALOG_SEMINAIVE_H_
#define RDFREF_DATALOG_SEMINAIVE_H_

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/hash.h"
#include "datalog/program.h"
#include "engine/table.h"

namespace rdfref {
namespace datalog {

/// \brief A materialized Datalog relation: a duplicate-free tuple store
/// with lazily built per-column hash indexes (so rule bodies join with
/// index lookups rather than full scans).
class DlRelation {
 public:
  explicit DlRelation(size_t arity) : arity_(arity), indexes_(arity) {}

  /// \brief Inserts a tuple; returns true when new.
  bool Insert(const std::vector<rdf::TermId>& tuple);

  size_t size() const { return tuples_.size(); }
  size_t arity() const { return arity_; }
  const std::vector<std::vector<rdf::TermId>>& tuples() const {
    return tuples_;
  }

  /// \brief Indexes of tuples whose column `col` equals `value` (builds or
  /// extends the column index on demand).
  const std::vector<size_t>& Matching(size_t col, rdf::TermId value) const;

 private:
  struct ColumnIndex {
    std::unordered_map<rdf::TermId, std::vector<size_t>> map;
    size_t built_upto = 0;
  };

  size_t arity_;
  std::vector<std::vector<rdf::TermId>> tuples_;
  std::unordered_set<std::vector<rdf::TermId>, engine::RowHash> set_;
  mutable std::vector<ColumnIndex> indexes_;
};

/// \brief Bottom-up evaluation of a positive Datalog program by the
/// semi-naive fixpoint algorithm: each iteration joins every rule with at
/// least one atom restricted to the previous iteration's delta, so no
/// derivation is recomputed from scratch.
class SemiNaive {
 public:
  /// \brief `program` must outlive the evaluator.
  explicit SemiNaive(const Program* program);

  /// \brief Runs to fixpoint (idempotent).
  void Run();

  /// \brief Number of fixpoint iterations of the last Run.
  size_t iterations() const { return iterations_; }

  /// \brief Total tuples across all relations.
  size_t TotalTuples() const;

  const DlRelation& relation(PredId pred) const { return relations_[pred]; }

  /// \brief Evaluates one extra rule once against the current (fixpoint)
  /// relations and returns the derived head tuples (used for query rules —
  /// queries need one pass, not another fixpoint). Constant head arguments
  /// are emitted as-is.
  [[nodiscard]] std::vector<std::vector<rdf::TermId>> EvaluateRuleOnce(
      const DlRule& rule) const;

 private:
  // Joins the body atoms in `order` starting at `depth`; when
  // `first_override` is non-null, the first atom of the order reads from it
  // (the semi-naive delta) instead of its full relation. Emits instantiated
  // head tuples into `out`.
  void JoinBody(const DlAtom& head, const std::vector<const DlAtom*>& order,
                size_t depth, const DlRelation* first_override,
                std::vector<rdf::TermId>* bindings,
                std::vector<std::vector<rdf::TermId>>* out) const;

  static size_t CountRuleVars(const DlRule& rule);

  const Program* program_;
  std::vector<DlRelation> relations_;
  bool ran_ = false;
  size_t iterations_ = 0;
};

}  // namespace datalog
}  // namespace rdfref

#endif  // RDFREF_DATALOG_SEMINAIVE_H_
