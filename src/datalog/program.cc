#include "datalog/program.h"

#include <set>

namespace rdfref {
namespace datalog {

PredId Program::AddPredicate(std::string name, size_t arity) {
  PredId id = static_cast<PredId>(names_.size());
  names_.push_back(std::move(name));
  arities_.push_back(arity);
  facts_.emplace_back();
  return id;
}

Status Program::AddFact(PredId pred, std::vector<rdf::TermId> tuple) {
  if (pred >= names_.size()) {
    return Status::InvalidArgument("unknown predicate");
  }
  if (tuple.size() != arities_[pred]) {
    return Status::InvalidArgument("arity mismatch for fact of " +
                                   names_[pred]);
  }
  facts_[pred].push_back(std::move(tuple));
  return Status::OK();
}

Status Program::AddRule(DlRule rule) {
  auto check_atom = [this](const DlAtom& atom) -> Status {
    if (atom.pred >= names_.size()) {
      return Status::InvalidArgument("unknown predicate in rule");
    }
    if (atom.args.size() != arities_[atom.pred]) {
      return Status::InvalidArgument("arity mismatch in rule atom of " +
                                     names_[atom.pred]);
    }
    return Status::OK();
  };
  RDFREF_RETURN_NOT_OK(check_atom(rule.head));
  if (rule.body.empty()) {
    return Status::InvalidArgument("rules must have a non-empty body");
  }
  std::set<uint32_t> body_vars;
  for (const DlAtom& atom : rule.body) {
    RDFREF_RETURN_NOT_OK(check_atom(atom));
    if (atom.args.size() > kMaxBodyArity) {
      return Status::InvalidArgument("body atom arity exceeds kMaxBodyArity");
    }
    for (const DlTerm& t : atom.args) {
      if (t.is_var) body_vars.insert(t.id);
    }
  }
  for (const DlTerm& t : rule.head.args) {
    if (t.is_var && !body_vars.count(t.id)) {
      return Status::InvalidArgument(
          "rule is not range-restricted: head variable not in body");
    }
  }
  rules_.push_back(std::move(rule));
  return Status::OK();
}

}  // namespace datalog
}  // namespace rdfref
