#include "schema/encoder.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <utility>

#include "rdf/encoding.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace schema {
namespace {

// The encoder assigns the id space, so raw TermId arithmetic is its job.

/// One hierarchy (class or property) on pre-encoding ids: the direct edges,
/// not the saturated closure — the saturation is derivable and the direct
/// DAG is what the forest layout needs.
struct Hierarchy {
  std::vector<rdf::TermId> nodes;  // sorted, unique
  std::map<rdf::TermId, std::set<rdf::TermId>> supers;  // sub -> direct supers
};

/// Interval layout of one hierarchy: slots are 0-based positions inside the
/// hierarchy's id block; the caller adds the block base.
struct Layout {
  std::map<rdf::TermId, uint32_t> slot;    // node (old id) -> slot
  std::map<rdf::TermId, uint32_t> scc_of;  // node (old id) -> scc index
  std::vector<uint32_t> scc_first_slot;    // per scc: first member slot
  std::vector<uint32_t> scc_subtree_end;   // per scc: last slot of subtree
  std::vector<std::vector<rdf::TermId>> members;  // per scc, old-id order
  uint32_t num_slots = 0;
  size_t cycles = 0;        // multi-member SCCs
  size_t multi_parent = 0;  // nodes with >=2 distinct super-SCCs
};

/// Tarjan SCC condensation + primary-parent forest + DFS preorder slots.
/// Everything iterates sorted containers, so the layout is deterministic.
Layout LayOutHierarchy(const Hierarchy& h) {
  Layout layout;
  const uint32_t n = static_cast<uint32_t>(h.nodes.size());
  if (n == 0) return layout;

  std::map<rdf::TermId, uint32_t> index_of;
  for (uint32_t i = 0; i < n; ++i) index_of[h.nodes[i]] = i;
  std::vector<std::vector<uint32_t>> adj(n);  // sub -> supers, sorted
  for (const auto& [sub, supers] : h.supers) {
    uint32_t u = index_of.at(sub);
    for (rdf::TermId super : supers) adj[u].push_back(index_of.at(super));
  }

  // Iterative Tarjan (schema hierarchies can be deep chains; no recursion).
  constexpr uint32_t kUnvisited = static_cast<uint32_t>(-1);
  std::vector<uint32_t> disc(n, kUnvisited);
  std::vector<uint32_t> low(n, 0);
  std::vector<uint32_t> comp(n, kUnvisited);
  std::vector<bool> on_stack(n, false);
  std::vector<uint32_t> stack;
  struct Frame {
    uint32_t v;
    size_t edge;
  };
  std::vector<Frame> frames;
  uint32_t timer = 0;
  uint32_t num_sccs = 0;
  for (uint32_t start = 0; start < n; ++start) {
    if (disc[start] != kUnvisited) continue;
    frames.push_back({start, 0});
    while (!frames.empty()) {
      Frame& f = frames.back();
      const uint32_t v = f.v;
      if (f.edge == 0) {
        disc[v] = low[v] = timer++;
        stack.push_back(v);
        on_stack[v] = true;
      }
      if (f.edge < adj[v].size()) {
        const uint32_t w = adj[v][f.edge++];
        if (disc[w] == kUnvisited) {
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        if (low[v] == disc[v]) {
          while (true) {
            const uint32_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = num_sccs;
            if (w == v) break;
          }
          ++num_sccs;
        }
        frames.pop_back();
        if (!frames.empty()) {
          Frame& parent = frames.back();
          low[parent.v] = std::min(low[parent.v], low[v]);
        }
      }
    }
  }

  // Condensation. Members stay in old-id order because h.nodes is sorted.
  layout.members.assign(num_sccs, {});
  for (uint32_t i = 0; i < n; ++i) {
    layout.members[comp[i]].push_back(h.nodes[i]);
    layout.scc_of[h.nodes[i]] = comp[i];
  }
  for (uint32_t s = 0; s < num_sccs; ++s) {
    if (layout.members[s].size() > 1) ++layout.cycles;
  }
  std::vector<rdf::TermId> min_old(num_sccs);
  for (uint32_t s = 0; s < num_sccs; ++s) min_old[s] = layout.members[s][0];

  // Parent SCCs, transitively reduced. The input edges may be the *closure*
  // (a re-encode reads the stored saturated schema back), under which every
  // ancestor looks like a parent; reducing to the Hasse diagram recovers
  // the direct forest, so direct-edge and closure inputs lay out
  // identically. Tarjan numbers SCCs in reverse topological order (an edge
  // sub->super implies comp[super] < comp[sub]), so one increasing-index
  // pass computes ancestor sets.
  std::vector<std::set<uint32_t>> parents(num_sccs);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t w : adj[i]) {
      if (comp[w] != comp[i]) parents[comp[i]].insert(comp[w]);
    }
  }
  std::vector<std::set<uint32_t>> ancestors(num_sccs);
  for (uint32_t s = 0; s < num_sccs; ++s) {
    for (uint32_t p : parents[s]) {
      ancestors[s].insert(p);
      ancestors[s].insert(ancestors[p].begin(), ancestors[p].end());
    }
  }
  for (uint32_t s = 0; s < num_sccs; ++s) {
    std::set<uint32_t> reduced;
    for (uint32_t p : parents[s]) {
      bool dominated = false;
      for (uint32_t q : parents[s]) {
        if (q != p && ancestors[q].count(p) > 0) {
          dominated = true;  // p is an ancestor of sibling parent q
          break;
        }
      }
      if (!dominated) reduced.insert(p);
    }
    // A true diamond survives reduction: every member escapes the
    // non-primary parents' intervals (classic members cover them).
    if (reduced.size() >= 2) layout.multi_parent += layout.members[s].size();
    parents[s] = std::move(reduced);
  }
  std::vector<std::vector<uint32_t>> children(num_sccs);
  std::vector<uint32_t> roots;
  for (uint32_t s = 0; s < num_sccs; ++s) {
    if (parents[s].empty()) {
      roots.push_back(s);
      continue;
    }
    uint32_t primary = *parents[s].begin();
    for (uint32_t p : parents[s]) {
      if (min_old[p] < min_old[primary]) primary = p;
    }
    children[primary].push_back(s);
  }
  auto by_min_old = [&](uint32_t a, uint32_t b) {
    return min_old[a] < min_old[b];
  };
  std::sort(roots.begin(), roots.end(), by_min_old);
  for (auto& c : children) std::sort(c.begin(), c.end(), by_min_old);

  // DFS preorder: an SCC's members take consecutive slots, then its primary
  // subtree follows, so [first_slot, subtree_end] is contiguous.
  layout.scc_first_slot.assign(num_sccs, 0);
  layout.scc_subtree_end.assign(num_sccs, 0);
  uint32_t next_slot = 0;
  auto enter = [&](uint32_t s) {
    layout.scc_first_slot[s] = next_slot;
    for (rdf::TermId node : layout.members[s]) layout.slot[node] = next_slot++;
  };
  struct DfsFrame {
    uint32_t scc;
    size_t child;
  };
  std::vector<DfsFrame> dfs;
  for (uint32_t root : roots) {
    dfs.push_back({root, 0});
    enter(root);
    while (!dfs.empty()) {
      DfsFrame& f = dfs.back();
      if (f.child < children[f.scc].size()) {
        const uint32_t next = children[f.scc][f.child++];
        dfs.push_back({next, 0});
        enter(next);
      } else {
        layout.scc_subtree_end[f.scc] = next_slot - 1;
        dfs.pop_back();
      }
    }
  }
  layout.num_slots = next_slot;
  return layout;
}

void AddEdge(Hierarchy* h, rdf::TermId sub, rdf::TermId super) {
  h->supers[sub].insert(super);
}

void CollectNodes(Hierarchy* h) {
  std::set<rdf::TermId> nodes;
  for (const auto& [sub, supers] : h->supers) {
    nodes.insert(sub);
    nodes.insert(supers.begin(), supers.end());
  }
  h->nodes.assign(nodes.begin(), nodes.end());
}

}  // namespace

EncodingResult EncodeGraphHierarchy(rdf::Graph* graph,
                                    const EncoderOptions& options) {
  EncodingResult result;
  rdf::Dictionary& dict = graph->dict();
  const size_t n = dict.size();

  // 1. Direct hierarchy edges. Built-ins keep their pinned ids, so they
  // never participate; self-loops carry no structure (a lone reflexive
  // constraint entails nothing the term itself doesn't cover).
  Hierarchy cls;
  Hierarchy prop;
  for (const rdf::Triple& t : graph->triples()) {
    if (t.s == t.o) continue;
    if (t.s < rdf::vocab::kNumBuiltins || t.o < rdf::vocab::kNumBuiltins) {
      continue;
    }
    if (t.p == rdf::vocab::kSubClassOfId) {
      AddEdge(&cls, t.s, t.o);
    } else if (t.p == rdf::vocab::kSubPropertyOfId) {
      AddEdge(&prop, t.s, t.o);
    }
  }
  CollectNodes(&cls);

  // A term in both hierarchies (degenerate schema) is encoded as a class
  // only: one id cannot sit in two blocks. Its property queries fall back
  // to classic members.
  if (!cls.nodes.empty()) {
    std::set<rdf::TermId> class_nodes(cls.nodes.begin(), cls.nodes.end());
    std::map<rdf::TermId, std::set<rdf::TermId>> kept;
    for (const auto& [sub, supers] : prop.supers) {
      if (class_nodes.count(sub)) continue;
      for (rdf::TermId super : supers) {
        if (class_nodes.count(super)) continue;
        kept[sub].insert(super);
      }
    }
    prop.supers = std::move(kept);
  }
  CollectNodes(&prop);

  // 2. Budget: an over-budget hierarchy is skipped wholesale (classic UCQ
  // fallback) rather than partially encoded.
  const bool encode_classes =
      !cls.nodes.empty() && cls.nodes.size() <= options.max_hierarchy_terms;
  const bool encode_properties =
      !prop.nodes.empty() && prop.nodes.size() <= options.max_hierarchy_terms;
  if (!encode_classes) result.report.classes_skipped = cls.nodes.size();
  if (!encode_properties) result.report.properties_skipped = prop.nodes.size();

  Layout cls_layout = encode_classes ? LayOutHierarchy(cls) : Layout{};
  Layout prop_layout = encode_properties ? LayOutHierarchy(prop) : Layout{};

  // 3. Compose the permutation: built-ins, class block, property block,
  // then every remaining term in old relative order.
  std::vector<rdf::TermId> old_to_new(n, rdf::kInvalidTermId);
  for (rdf::TermId b = 0; b < rdf::vocab::kNumBuiltins; ++b) {
    old_to_new[b] = b;
  }
  const rdf::TermId class_base = rdf::vocab::kNumBuiltins;
  for (const auto& [node, slot] : cls_layout.slot) {
    old_to_new[node] = class_base + slot;
  }
  const rdf::TermId prop_base = class_base + cls_layout.num_slots;
  for (const auto& [node, slot] : prop_layout.slot) {
    old_to_new[node] = prop_base + slot;
  }
  rdf::TermId next = prop_base + prop_layout.num_slots;
  for (size_t id = rdf::vocab::kNumBuiltins; id < n; ++id) {
    if (old_to_new[id] == rdf::kInvalidTermId) old_to_new[id] = next++;
  }

  // 4. Interval and SCC tables, keyed by post-permutation ids.
  auto encoding = std::make_shared<rdf::TermEncoding>();
  auto fill = [&](const Layout& layout, rdf::TermId base, bool classes) {
    for (const auto& [node, scc] : layout.scc_of) {
      const rdf::TermId new_id = old_to_new[node];
      const rdf::TermEncoding::Interval iv{
          base + layout.scc_first_slot[scc],
          base + layout.scc_subtree_end[scc]};
      if (classes) {
        encoding->SetClassInterval(new_id, iv);
      } else {
        encoding->SetPropertyInterval(new_id, iv);
      }
      if (layout.members[scc].size() > 1) {
        // All cycle members share the interval; the representative is the
        // member occupying the interval's first slot.
        encoding->SetSccRepresentative(new_id, iv.lo);
      }
    }
  };
  if (encode_classes) {
    fill(cls_layout, class_base, /*classes=*/true);
    result.report.classes_encoded = cls_layout.slot.size();
    result.report.class_cycles = cls_layout.cycles;
    result.report.multi_parent_classes = cls_layout.multi_parent;
  }
  if (encode_properties) {
    fill(prop_layout, prop_base, /*classes=*/false);
    result.report.properties_encoded = prop_layout.slot.size();
    result.report.property_cycles = prop_layout.cycles;
    result.report.multi_parent_properties = prop_layout.multi_parent;
  }

  // 5. Remap the graph in place and attach the tables.
  graph->Remap(old_to_new);
  if (!encoding->empty()) {
    dict.set_encoding(std::move(encoding));
  }
  result.old_to_new = std::move(old_to_new);
  return result;
}

}  // namespace schema
}  // namespace rdfref
