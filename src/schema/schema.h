#ifndef RDFREF_SCHEMA_SCHEMA_H_
#define RDFREF_SCHEMA_SCHEMA_H_

#include <map>
#include <set>
#include <vector>

#include "rdf/graph.h"
#include "rdf/term.h"

namespace rdfref {
namespace schema {

/// \brief The RDFS constraints of an RDF graph (Figure 1, bottom, of the
/// paper), kept saturated.
///
/// Four constraint kinds are interpreted (open-world):
///   - c1 rdfs:subClassOf c2       (written c1 ⊑sc c2)
///   - p1 rdfs:subPropertyOf p2    (p1 ⊑sp p2)
///   - p rdfs:domain c             (p ←d c: Π_domain(p) ⊆ c)
///   - p rdfs:range c              (p ←r c: Π_range(p) ⊆ c)
///
/// As in [9], the schema is small and is kept *saturated at all times*:
/// Saturate() closes the constraint set under the schema-level RDFS rules
///   (S1) a ⊑sc b, b ⊑sc c    ⇒ a ⊑sc c
///   (S2) p ⊑sp q, q ⊑sp r    ⇒ p ⊑sp r
///   (S3) p ←d c, c ⊑sc c'    ⇒ p ←d c'
///   (S4) p ←r c, c ⊑sc c'    ⇒ p ←r c'
///   (S5) p ⊑sp q, q ←d c     ⇒ p ←d c
///   (S6) p ⊑sp q, q ←r c     ⇒ p ←r c
/// so that every reformulation rule and every instance-level entailment rule
/// needs only a single lookup, never a chain.
class Schema {
 public:
  Schema() = default;

  /// \brief Extracts all RDFS constraint triples from `graph` (schema
  /// statements are ordinary triples in the DB fragment). Does not saturate.
  static Schema FromGraph(const rdf::Graph& graph);

  void AddSubClass(rdf::TermId sub, rdf::TermId super);
  void AddSubProperty(rdf::TermId sub, rdf::TermId super);
  void AddDomain(rdf::TermId property, rdf::TermId klass);
  void AddRange(rdf::TermId property, rdf::TermId klass);

  /// \brief Closes the constraint set under rules S1-S6 (idempotent).
  void Saturate();

  /// \brief True once Saturate() has run and no constraint was added since.
  bool saturated() const { return saturated_; }

  /// \brief Strict sub-classes of c in the closure: all c' with c' ⊑sc c.
  const std::set<rdf::TermId>& SubClassesOf(rdf::TermId c) const;
  /// \brief Strict super-classes of c in the closure.
  const std::set<rdf::TermId>& SuperClassesOf(rdf::TermId c) const;
  /// \brief Strict sub-properties of p in the closure.
  const std::set<rdf::TermId>& SubPropertiesOf(rdf::TermId p) const;
  /// \brief Strict super-properties of p in the closure.
  const std::set<rdf::TermId>& SuperPropertiesOf(rdf::TermId p) const;
  /// \brief Properties p with p ←d c (domain exactly c in the closure).
  const std::set<rdf::TermId>& DomainPropertiesOf(rdf::TermId c) const;
  /// \brief Properties p with p ←r c.
  const std::set<rdf::TermId>& RangePropertiesOf(rdf::TermId c) const;
  /// \brief Classes c with p ←d c.
  const std::set<rdf::TermId>& DomainsOf(rdf::TermId p) const;
  /// \brief Classes c with p ←r c.
  const std::set<rdf::TermId>& RangesOf(rdf::TermId p) const;

  /// \brief Whole-relation views, used by the variable-position
  /// reformulation rules (5-7) and by the Datalog encoding.
  const std::map<rdf::TermId, std::set<rdf::TermId>>& sub_class_map() const {
    return sub_of_class_;
  }
  const std::map<rdf::TermId, std::set<rdf::TermId>>& sub_property_map()
      const {
    return sub_of_property_;
  }
  const std::map<rdf::TermId, std::set<rdf::TermId>>& domain_map() const {
    return domains_;
  }
  const std::map<rdf::TermId, std::set<rdf::TermId>>& range_map() const {
    return ranges_;
  }

  /// \brief Adds every constraint as a triple of `graph` (used to store the
  /// saturated schema alongside the data, so schema queries are answerable).
  void EmitTriples(rdf::Graph* graph) const;

  /// \brief Number of constraints of each kind (after saturation if run).
  size_t NumSubClass() const;
  size_t NumSubProperty() const;
  size_t NumDomain() const;
  size_t NumRange() const;
  size_t NumConstraints() const {
    return NumSubClass() + NumSubProperty() + NumDomain() + NumRange();
  }

  /// \brief All class ids mentioned in any constraint.
  std::set<rdf::TermId> AllClasses() const;
  /// \brief All property ids mentioned in any constraint.
  std::set<rdf::TermId> AllProperties() const;

 private:
  using Relation = std::map<rdf::TermId, std::set<rdf::TermId>>;

  static void TransitiveClosure(Relation* super_of, Relation* sub_of);
  static size_t CountPairs(const Relation& rel);

  // super_of_class_[c] = classes c ⊑sc *; sub_of_class_[c] = classes * ⊑sc c.
  Relation super_of_class_, sub_of_class_;
  Relation super_of_property_, sub_of_property_;
  // domains_[p] = classes c with p ←d c; domain_props_[c] = properties.
  Relation domains_, domain_props_;
  Relation ranges_, range_props_;
  bool saturated_ = false;
};

}  // namespace schema
}  // namespace rdfref

#endif  // RDFREF_SCHEMA_SCHEMA_H_
