#include "schema/schema.h"

#include <algorithm>

#include "rdf/vocab.h"

namespace rdfref {
namespace schema {

namespace {
const std::set<rdf::TermId>& EmptySet() {
  static const std::set<rdf::TermId>* empty = new std::set<rdf::TermId>();
  return *empty;
}

const std::set<rdf::TermId>& LookupOrEmpty(
    const std::map<rdf::TermId, std::set<rdf::TermId>>& rel, rdf::TermId key) {
  auto it = rel.find(key);
  return it == rel.end() ? EmptySet() : it->second;
}
}  // namespace

Schema Schema::FromGraph(const rdf::Graph& graph) {
  Schema s;
  for (const rdf::Triple& t : graph.triples()) {
    switch (t.p) {
      case rdf::vocab::kSubClassOfId:
        s.AddSubClass(t.s, t.o);
        break;
      case rdf::vocab::kSubPropertyOfId:
        s.AddSubProperty(t.s, t.o);
        break;
      case rdf::vocab::kDomainId:
        s.AddDomain(t.s, t.o);
        break;
      case rdf::vocab::kRangeId:
        s.AddRange(t.s, t.o);
        break;
      default:
        break;
    }
  }
  return s;
}

void Schema::AddSubClass(rdf::TermId sub, rdf::TermId super) {
  if (sub == super) return;  // reflexive constraints carry no information
  super_of_class_[sub].insert(super);
  sub_of_class_[super].insert(sub);
  saturated_ = false;
}

void Schema::AddSubProperty(rdf::TermId sub, rdf::TermId super) {
  if (sub == super) return;
  super_of_property_[sub].insert(super);
  sub_of_property_[super].insert(sub);
  saturated_ = false;
}

void Schema::AddDomain(rdf::TermId property, rdf::TermId klass) {
  domains_[property].insert(klass);
  domain_props_[klass].insert(property);
  saturated_ = false;
}

void Schema::AddRange(rdf::TermId property, rdf::TermId klass) {
  ranges_[property].insert(klass);
  range_props_[klass].insert(property);
  saturated_ = false;
}

void Schema::TransitiveClosure(Relation* super_of, Relation* sub_of) {
  // Schema graphs are small; a straightforward fixpoint suffices. A cycle
  // (C ⊑ D, D ⊑ C) entails the reflexive pairs C ⊑ C and D ⊑ D by rdfs11
  // transitivity, so `top == sub` must NOT be filtered: queries can match
  // schema-position triples, and the saturation must contain what Datalog
  // derives (caught by the differential fuzzer, seed 231).
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [sub, supers] : *super_of) {
      std::set<rdf::TermId> to_add;
      for (rdf::TermId mid : supers) {
        auto it = super_of->find(mid);
        if (it == super_of->end()) continue;
        for (rdf::TermId top : it->second) {
          if (!supers.count(top)) to_add.insert(top);
        }
      }
      if (!to_add.empty()) {
        supers.insert(to_add.begin(), to_add.end());
        changed = true;
      }
    }
  }
  sub_of->clear();
  for (const auto& [sub, supers] : *super_of) {
    for (rdf::TermId super : supers) (*sub_of)[super].insert(sub);
  }
}

void Schema::Saturate() {
  // (S1) and (S2): transitive closures of the two hierarchies.
  TransitiveClosure(&super_of_class_, &sub_of_class_);
  TransitiveClosure(&super_of_property_, &sub_of_property_);

  // (S5)/(S6): a property inherits the domains/ranges of its
  // super-properties. The property closure is already transitive, so one
  // pass over the closure is enough.
  for (const auto& [p, supers] : super_of_property_) {
    for (rdf::TermId super : supers) {
      auto dit = domains_.find(super);
      if (dit != domains_.end()) {
        domains_[p].insert(dit->second.begin(), dit->second.end());
      }
      auto rit = ranges_.find(super);
      if (rit != ranges_.end()) {
        ranges_[p].insert(rit->second.begin(), rit->second.end());
      }
    }
  }

  // (S3)/(S4): domains/ranges propagate to super-classes.
  for (auto& [p, cls] : domains_) {
    std::set<rdf::TermId> closed = cls;
    for (rdf::TermId c : cls) {
      const std::set<rdf::TermId>& supers = SuperClassesOf(c);
      closed.insert(supers.begin(), supers.end());
    }
    cls = std::move(closed);
  }
  for (auto& [p, cls] : ranges_) {
    std::set<rdf::TermId> closed = cls;
    for (rdf::TermId c : cls) {
      const std::set<rdf::TermId>& supers = SuperClassesOf(c);
      closed.insert(supers.begin(), supers.end());
    }
    cls = std::move(closed);
  }

  // Rebuild the inverse domain/range relations.
  domain_props_.clear();
  for (const auto& [p, cls] : domains_) {
    for (rdf::TermId c : cls) domain_props_[c].insert(p);
  }
  range_props_.clear();
  for (const auto& [p, cls] : ranges_) {
    for (rdf::TermId c : cls) range_props_[c].insert(p);
  }
  saturated_ = true;
}

const std::set<rdf::TermId>& Schema::SubClassesOf(rdf::TermId c) const {
  return LookupOrEmpty(sub_of_class_, c);
}
const std::set<rdf::TermId>& Schema::SuperClassesOf(rdf::TermId c) const {
  return LookupOrEmpty(super_of_class_, c);
}
const std::set<rdf::TermId>& Schema::SubPropertiesOf(rdf::TermId p) const {
  return LookupOrEmpty(sub_of_property_, p);
}
const std::set<rdf::TermId>& Schema::SuperPropertiesOf(rdf::TermId p) const {
  return LookupOrEmpty(super_of_property_, p);
}
const std::set<rdf::TermId>& Schema::DomainPropertiesOf(rdf::TermId c) const {
  return LookupOrEmpty(domain_props_, c);
}
const std::set<rdf::TermId>& Schema::RangePropertiesOf(rdf::TermId c) const {
  return LookupOrEmpty(range_props_, c);
}
const std::set<rdf::TermId>& Schema::DomainsOf(rdf::TermId p) const {
  return LookupOrEmpty(domains_, p);
}
const std::set<rdf::TermId>& Schema::RangesOf(rdf::TermId p) const {
  return LookupOrEmpty(ranges_, p);
}

void Schema::EmitTriples(rdf::Graph* graph) const {
  for (const auto& [sub, supers] : super_of_class_) {
    for (rdf::TermId super : supers) {
      graph->Add(sub, rdf::vocab::kSubClassOfId, super);
    }
  }
  for (const auto& [sub, supers] : super_of_property_) {
    for (rdf::TermId super : supers) {
      graph->Add(sub, rdf::vocab::kSubPropertyOfId, super);
    }
  }
  for (const auto& [p, cls] : domains_) {
    for (rdf::TermId c : cls) graph->Add(p, rdf::vocab::kDomainId, c);
  }
  for (const auto& [p, cls] : ranges_) {
    for (rdf::TermId c : cls) graph->Add(p, rdf::vocab::kRangeId, c);
  }
}

size_t Schema::CountPairs(const Relation& rel) {
  size_t n = 0;
  for (const auto& [key, values] : rel) n += values.size();
  return n;
}

size_t Schema::NumSubClass() const { return CountPairs(super_of_class_); }
size_t Schema::NumSubProperty() const {
  return CountPairs(super_of_property_);
}
size_t Schema::NumDomain() const { return CountPairs(domains_); }
size_t Schema::NumRange() const { return CountPairs(ranges_); }

std::set<rdf::TermId> Schema::AllClasses() const {
  std::set<rdf::TermId> out;
  for (const auto& [sub, supers] : super_of_class_) {
    out.insert(sub);
    out.insert(supers.begin(), supers.end());
  }
  for (const auto& [p, cls] : domains_) out.insert(cls.begin(), cls.end());
  for (const auto& [p, cls] : ranges_) out.insert(cls.begin(), cls.end());
  return out;
}

std::set<rdf::TermId> Schema::AllProperties() const {
  std::set<rdf::TermId> out;
  for (const auto& [sub, supers] : super_of_property_) {
    out.insert(sub);
    out.insert(supers.begin(), supers.end());
  }
  for (const auto& [p, cls] : domains_) out.insert(p);
  for (const auto& [p, cls] : ranges_) out.insert(p);
  return out;
}

}  // namespace schema
}  // namespace rdfref
