#ifndef RDFREF_SCHEMA_ENCODER_H_
#define RDFREF_SCHEMA_ENCODER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "rdf/graph.h"

namespace rdfref {
namespace schema {

/// \brief Knobs of the hierarchy-aware dictionary assignment pass.
struct EncoderOptions {
  /// Largest hierarchy (node count of one kind) the encoder will lay out.
  /// Plays the role of LiteMat's interval bit budget: a subClassOf or
  /// subPropertyOf hierarchy with more terms than this is left unencoded and
  /// every query over it falls back to classic UCQ members. The default
  /// comfortably covers any real ontology; tests shrink it to exercise the
  /// fallback.
  uint32_t max_hierarchy_terms = 1u << 20;
};

/// \brief What the encoder did, for logging, stats and tests.
struct EncodingReport {
  size_t classes_encoded = 0;      ///< class-hierarchy terms with an interval
  size_t properties_encoded = 0;   ///< property-hierarchy terms likewise
  size_t class_cycles = 0;         ///< multi-member subClassOf SCCs
  size_t property_cycles = 0;      ///< multi-member subPropertyOf SCCs
  size_t multi_parent_classes = 0;     ///< classes with >1 direct super-SCC
  size_t multi_parent_properties = 0;  ///< properties likewise
  size_t classes_skipped = 0;      ///< class hierarchy over budget (all of it)
  size_t properties_skipped = 0;   ///< property hierarchy over budget
};

/// \brief Result of EncodeGraphHierarchy: the applied permutation plus the
/// report. `old_to_new[i]` is the new id of the term previously named `i`;
/// callers holding pre-encoding TermIds translate them through it.
struct EncodingResult {
  std::vector<rdf::TermId> old_to_new;
  EncodingReport report;
};

/// \brief Hierarchy-aware dictionary assignment (LiteMat-style, PAPERS.md).
///
/// Reads the *direct* subClassOf/subPropertyOf triples of `graph`, condenses
/// cycles (Tarjan SCC) so every cycle shares one interval, picks a primary
/// parent per SCC (the candidate with the smallest pre-encoding id, for
/// determinism) to turn each DAG into a forest, and assigns new TermIds by
/// DFS preorder so that every class/property owns a contiguous id interval
/// [lo, hi] covering its SCC and its primary subtree. The graph is remapped
/// in place (Graph::Remap) and the resulting TermEncoding is attached to its
/// dictionary.
///
/// Layout of the new id space:
///   [0 .. 4]                     the five built-ins, unchanged;
///   [5 .. 5+C)                   class-hierarchy terms in preorder;
///   [5+C .. 5+C+P)               property-hierarchy terms in preorder;
///   [5+C+P .. size)              every other term, in old relative order.
///
/// Guarantees: soundness (every id inside an interval is a saturated
/// sub-term of the interval's owner) and shared cycle intervals. Not
/// guaranteed: completeness — secondary parents of multi-parent terms and
/// over-budget hierarchies are not covered, and ids interned after encoding
/// land beyond every interval. The reformulator emits classic members for
/// those escapees, so fused and classic answers coincide.
///
/// Call this BEFORE building a QueryAnswerer (the pass invalidates every
/// outstanding TermId); for a live answerer use QueryAnswerer::Reencode,
/// which re-runs it at a compaction epoch.
EncodingResult EncodeGraphHierarchy(rdf::Graph* graph,
                                    const EncoderOptions& options = {});

}  // namespace schema
}  // namespace rdfref

#endif  // RDFREF_SCHEMA_ENCODER_H_
