#include "engine/scan_cache.h"

#include <utility>

namespace rdfref {
namespace engine {

size_t ScanCache::CountMatches(rdf::TermId s, rdf::TermId p,
                               rdf::TermId o) const {
  const PatternKey key{s, p, o};
  {
    common::MutexLock lock(&mu_);
    auto it = counts_.find(key);
    if (it != counts_.end()) return it->second;
  }
  // Compute outside the lock: a federation count fans out to every
  // endpoint, and sibling chunks must not queue behind it.
  const size_t count = source_->CountMatches(s, p, o);
  common::MutexLock lock(&mu_);
  return counts_.emplace(key, count).first->second;
}

size_t ScanCache::CountIntervalMatches(rdf::TermId s, rdf::TermId p,
                                       rdf::TermId o, int range_pos,
                                       rdf::TermId hi) const {
  const PatternKey key{s, p, o, range_pos, hi};
  {
    common::MutexLock lock(&mu_);
    auto it = counts_.find(key);
    if (it != counts_.end()) return it->second;
  }
  const size_t count = source_->CountIntervalMatches(s, p, o, range_pos, hi);
  common::MutexLock lock(&mu_);
  return counts_.emplace(key, count).first->second;
}

std::span<const rdf::Triple> ScanCache::LeafIntervalRange(
    rdf::TermId s, rdf::TermId p, rdf::TermId o, int range_pos,
    rdf::TermId hi) const {
  std::span<const rdf::Triple> range;
  if (source_->TryGetIntervalRange(s, p, o, range_pos, hi, &range)) {
    return range;  // zero-copy: the interval is contiguous in some order
  }
  const PatternKey key{s, p, o, range_pos, hi};
  {
    common::MutexLock lock(&mu_);
    auto it = leaves_.find(key);
    if (it != leaves_.end()) return {it->second->data(), it->second->size()};
  }
  auto owned = std::make_unique<std::vector<rdf::Triple>>();
  source_->ScanIntervalInto(s, p, o, range_pos, hi, owned.get());
  common::MutexLock lock(&mu_);
  auto it = leaves_.find(key);
  if (it == leaves_.end()) {
    it = leaves_.emplace(key, std::move(owned)).first;
  }
  return {it->second->data(), it->second->size()};
}

std::span<const rdf::Triple> ScanCache::LeafRange(rdf::TermId s, rdf::TermId p,
                                                  rdf::TermId o) const {
  std::span<const rdf::Triple> range;
  if (source_->TryGetRange(s, p, o, &range)) return range;  // zero-copy

  const PatternKey key{s, p, o};
  {
    common::MutexLock lock(&mu_);
    auto it = leaves_.find(key);
    if (it != leaves_.end()) return {it->second->data(), it->second->size()};
  }
  auto owned = std::make_unique<std::vector<rdf::Triple>>();
  source_->ScanInto(s, p, o, owned.get());
  common::MutexLock lock(&mu_);
  auto it = leaves_.find(key);
  if (it == leaves_.end()) {
    it = leaves_.emplace(key, std::move(owned)).first;
  }
  // On a lost race `owned` is dropped: first insert wins, so every caller
  // sees one stable buffer.
  return {it->second->data(), it->second->size()};
}

}  // namespace engine
}  // namespace rdfref
