#include "engine/table.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace rdfref {
namespace engine {

namespace {

[[noreturn]] void TableFatal(const char* message) {
  std::fprintf(stderr, "rdfref: engine::Table: %s\n", message);
  std::abort();
}

// Hashes `stride` ids starting at `base + index * stride`. Used by Dedup
// and HashJoin to key hash containers on arena slices by row index — the
// arena pointer must stay fixed while the container lives.
struct SliceHash {
  const rdf::TermId* base;
  size_t stride;
  size_t operator()(size_t index) const {
    const rdf::TermId* row = base + index * stride;
    size_t seed = 0x51ed270b;
    for (size_t k = 0; k < stride; ++k) seed = HashCombine(seed, row[k]);
    return seed;
  }
};

struct SliceEq {
  const rdf::TermId* base;
  size_t stride;
  bool operator()(size_t a, size_t b) const {
    return std::memcmp(base + a * stride, base + b * stride,
                       stride * sizeof(rdf::TermId)) == 0;
  }
};

}  // namespace

Table Table::FromRows(std::vector<query::VarId> cols,
                      const std::vector<std::vector<rdf::TermId>>& rows) {
  Table t;
  t.columns = std::move(cols);
  if (!rows.empty()) {
    t.SetArity(rows.front().size());
    t.data_.reserve(rows.size() * rows.front().size());
  }
  for (const std::vector<rdf::TermId>& row : rows) t.AppendRow(row);
  return t;
}

void Table::SetArity(size_t arity) {
  if (arity_set_ && arity != arity_ && NumRows() > 0) {
    TableFatal("SetArity would change the stride of a non-empty table");
  }
  arity_ = arity;
  arity_set_ = true;
}

void Table::AppendRow(std::span<const rdf::TermId> values) {
  if (!arity_set_) SetArity(values.size());
  if (values.size() != arity_) {
    TableFatal("AppendRow arity mismatch");
  }
  if (arity_ == 0) {
    ++zero_arity_rows_;
    return;
  }
  data_.insert(data_.end(), values.begin(), values.end());
}

void Table::RemoveLastRow() {
  if (arity_ == 0) {
    if (zero_arity_rows_ > 0) --zero_arity_rows_;
    return;
  }
  if (!data_.empty()) data_.resize(data_.size() - arity_);
}

void Table::Append(const Table& other) {
  if (other.NumRows() == 0) return;
  if (!arity_set_) SetArity(other.arity_);
  if (other.arity_ != arity_) {
    TableFatal("Append arity mismatch");
  }
  if (arity_ == 0) {
    zero_arity_rows_ += other.zero_arity_rows_;
    return;
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
}

std::vector<std::vector<rdf::TermId>> Table::RowVectors() const {
  std::vector<std::vector<rdf::TermId>> out;
  const size_t n = NumRows();
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::span<const rdf::TermId> r = row(i);
    out.emplace_back(r.begin(), r.end());
  }
  return out;
}

std::set<std::vector<rdf::TermId>> Table::RowSet() const {
  std::set<std::vector<rdf::TermId>> out;
  const size_t n = NumRows();
  for (size_t i = 0; i < n; ++i) {
    std::span<const rdf::TermId> r = row(i);
    out.emplace(r.begin(), r.end());
  }
  return out;
}

void Table::Dedup() {
  if (arity_ == 0) {
    zero_arity_rows_ = zero_arity_rows_ > 0 ? 1 : 0;
    return;
  }
  const size_t n = NumRows();
  if (n < 2) return;
  // Compact kept rows toward the front: candidate row r is copied to write
  // position w (w <= r, so nothing unprocessed is clobbered), then looked
  // up among the already-kept slices [0, w). The set stores compacted row
  // indexes and hashes the arena in place.
  SliceHash hash{data_.data(), arity_};
  SliceEq eq{data_.data(), arity_};
  std::unordered_set<size_t, SliceHash, SliceEq> seen(n, hash, eq);
  size_t w = 0;
  for (size_t r = 0; r < n; ++r) {
    if (w != r) {
      std::memmove(data_.data() + w * arity_, data_.data() + r * arity_,
                   arity_ * sizeof(rdf::TermId));
    }
    if (seen.insert(w).second) ++w;
  }
  data_.resize(w * arity_);
}

void Table::Sort() {
  if (arity_ == 0) return;
  const size_t n = NumRows();
  if (n < 2) return;
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  const rdf::TermId* base = data_.data();
  const size_t stride = arity_;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return std::lexicographical_compare(
        base + a * stride, base + (a + 1) * stride, base + b * stride,
        base + (b + 1) * stride);
  });
  std::vector<rdf::TermId> sorted;
  sorted.reserve(data_.size());
  for (size_t i : order) {
    sorted.insert(sorted.end(), base + i * stride, base + (i + 1) * stride);
  }
  data_ = std::move(sorted);
}

std::string Table::ToString(const rdf::Dictionary& dict,
                            size_t max_rows) const {
  std::ostringstream out;
  const size_t n = NumRows();
  out << n << " row(s)\n";
  for (size_t i = 0; i < n && i < max_rows; ++i) {
    std::span<const rdf::TermId> r = row(i);
    out << "  <";
    for (size_t j = 0; j < r.size(); ++j) {
      if (j > 0) out << ", ";
      out << dict.Lookup(r[j]).ToString();
    }
    out << ">\n";
  }
  if (n > max_rows) {
    out << "  ... (" << (n - max_rows) << " more)\n";
  }
  return out.str();
}

Table HashJoin(const Table& left, const Table& right) {
  // Shared columns and the right columns to carry over.
  std::vector<int> left_key, right_key;
  std::vector<int> right_carry;
  for (size_t j = 0; j < right.columns.size(); ++j) {
    int li = left.ColumnOf(right.columns[j]);
    if (li >= 0) {
      left_key.push_back(li);
      right_key.push_back(static_cast<int>(j));
    } else {
      right_carry.push_back(static_cast<int>(j));
    }
  }

  Table out;
  out.columns = left.columns;
  for (int j : right_carry) out.columns.push_back(right.columns[j]);
  // Stride follows the left rows' actual width (equal to columns.size()
  // for every table the engine builds; hand-built tables may differ).
  const size_t left_width =
      left.NumRows() > 0 ? left.arity() : left.columns.size();
  out.SetArity(left_width + right_carry.size());

  const size_t nl = left.NumRows();
  const size_t nr = right.NumRows();
  if (nl == 0 || nr == 0) return out;

  const size_t nk = right_key.size();
  if (nk == 0) {
    // Cross product: every pair, left-major (the seed row order).
    for (size_t l = 0; l < nl; ++l) {
      std::span<const rdf::TermId> lrow = left.row(l);
      for (size_t r = 0; r < nr; ++r) {
        rdf::TermId* slot = out.AppendUninitialized();
        if (!lrow.empty()) {
          std::memcpy(slot, lrow.data(), lrow.size() * sizeof(rdf::TermId));
        }
        std::span<const rdf::TermId> rrow = right.row(r);
        for (size_t c = 0; c < right_carry.size(); ++c) {
          slot[lrow.size() + c] = rrow[right_carry[c]];
        }
      }
    }
    return out;
  }

  // Build on the right side: one flat key arena (one slot per build row,
  // plus a scratch slot the probe key is written into), and first/next
  // chains so each key's rows replay in build order.
  std::vector<rdf::TermId> keys((nr + 1) * nk);
  for (size_t r = 0; r < nr; ++r) {
    std::span<const rdf::TermId> rrow = right.row(r);
    for (size_t k = 0; k < nk; ++k) keys[r * nk + k] = rrow[right_key[k]];
  }
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> next(nr, kNone);
  SliceHash hash{keys.data(), nk};
  SliceEq eq{keys.data(), nk};
  // key-arena row index -> (first, last) build row of its chain.
  std::unordered_map<size_t, std::pair<size_t, size_t>, SliceHash, SliceEq>
      build(nr, hash, eq);
  for (size_t r = 0; r < nr; ++r) {
    auto [it, inserted] = build.try_emplace(r, r, r);
    if (!inserted) {
      next[it->second.second] = r;
      it->second.second = r;
    }
  }

  // Probe with the left side; the scratch slot holds the probe key.
  const size_t scratch = nr;
  for (size_t l = 0; l < nl; ++l) {
    std::span<const rdf::TermId> lrow = left.row(l);
    for (size_t k = 0; k < nk; ++k) {
      keys[scratch * nk + k] = lrow[left_key[k]];
    }
    auto it = build.find(scratch);
    if (it == build.end()) continue;
    for (size_t r = it->second.first; r != kNone; r = next[r]) {
      rdf::TermId* slot = out.AppendUninitialized();
      if (!lrow.empty()) {
        std::memcpy(slot, lrow.data(), lrow.size() * sizeof(rdf::TermId));
      }
      std::span<const rdf::TermId> rrow = right.row(r);
      for (size_t c = 0; c < right_carry.size(); ++c) {
        slot[lrow.size() + c] = rrow[right_carry[c]];
      }
    }
  }
  return out;
}

}  // namespace engine
}  // namespace rdfref
