#include "engine/table.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace rdfref {
namespace engine {

void Table::Dedup() {
  std::unordered_set<std::vector<rdf::TermId>, RowHash> seen;
  seen.reserve(rows.size());
  std::vector<std::vector<rdf::TermId>> unique;
  unique.reserve(rows.size());
  for (std::vector<rdf::TermId>& row : rows) {
    if (seen.insert(row).second) unique.push_back(std::move(row));
  }
  rows = std::move(unique);
}

void Table::Sort() { std::sort(rows.begin(), rows.end()); }

std::string Table::ToString(const rdf::Dictionary& dict,
                            size_t max_rows) const {
  std::ostringstream out;
  out << rows.size() << " row(s)\n";
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    out << "  <";
    for (size_t j = 0; j < rows[i].size(); ++j) {
      if (j > 0) out << ", ";
      out << dict.Lookup(rows[i][j]).ToString();
    }
    out << ">\n";
  }
  if (rows.size() > max_rows) {
    out << "  ... (" << (rows.size() - max_rows) << " more)\n";
  }
  return out.str();
}

Table HashJoin(const Table& left, const Table& right) {
  // Shared columns and the right columns to carry over.
  std::vector<int> left_key, right_key;
  std::vector<int> right_carry;
  for (size_t j = 0; j < right.columns.size(); ++j) {
    int li = left.ColumnOf(right.columns[j]);
    if (li >= 0) {
      left_key.push_back(li);
      right_key.push_back(static_cast<int>(j));
    } else {
      right_carry.push_back(static_cast<int>(j));
    }
  }

  Table out;
  out.columns = left.columns;
  for (int j : right_carry) out.columns.push_back(right.columns[j]);

  // Build on the right side.
  std::unordered_map<std::vector<rdf::TermId>, std::vector<size_t>, RowHash>
      build;
  build.reserve(right.rows.size());
  std::vector<rdf::TermId> key(right_key.size());
  for (size_t r = 0; r < right.rows.size(); ++r) {
    for (size_t k = 0; k < right_key.size(); ++k) {
      key[k] = right.rows[r][right_key[k]];
    }
    build[key].push_back(r);
  }

  // Probe with the left side.
  std::vector<rdf::TermId> probe(left_key.size());
  for (const std::vector<rdf::TermId>& lrow : left.rows) {
    for (size_t k = 0; k < left_key.size(); ++k) probe[k] = lrow[left_key[k]];
    auto it = build.find(probe);
    if (it == build.end()) continue;
    for (size_t r : it->second) {
      std::vector<rdf::TermId> row = lrow;
      for (int j : right_carry) row.push_back(right.rows[r][j]);
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace engine
}  // namespace rdfref
