#ifndef RDFREF_ENGINE_VIEW_CACHE_H_
#define RDFREF_ENGINE_VIEW_CACHE_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "common/synchronization.h"
#include "engine/table.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "rdf/triple.h"
#include "storage/epoch_observer.h"

namespace rdfref {
namespace engine {

/// \brief Tuning knobs of the cross-query view cache.
struct ViewCacheOptions {
  /// Total bytes of cached answers (arena + factorized vectors + keys).
  /// Crossing it evicts lowest-benefit entries; a single result larger
  /// than the whole budget is rejected outright.
  size_t byte_budget = 64ull << 20;
  /// Results with at least this many rows (and arity ≥ 2) are considered
  /// for the factorized grouped-lead representation; smaller ones stay
  /// flat (the encoding overhead would dominate).
  size_t factorize_min_rows = 1024;
  /// Plans with more members than this are not cached: their plan key
  /// alone would rival the materialized result in size (Example 1's
  /// 318,096-member reformulation is the poster child).
  size_t max_plan_members = 4096;
  /// Recent-write window used to re-validate entries across epochs. An
  /// entry whose validity lags the newest write by more than this many
  /// writes can no longer prove itself untouched and is capped. Sized so
  /// a saturating writer (~1M ops/s) cannot scroll it between a view's
  /// fill and its next probe at serving-rate intervals; 64Ki records cost
  /// ~2 MiB.
  size_t write_log_window = 64 * 1024;
};

/// \brief Monotonic counters + gauges of one ViewCache (workload_driver
/// JSON and BENCH_PR10.json report these).
struct ViewCacheStats {
  uint64_t hits = 0;           ///< Lookup served from cache
  uint64_t misses = 0;         ///< Lookup fell through to evaluation
  uint64_t installs = 0;       ///< entries admitted
  uint64_t evictions = 0;      ///< entries dropped for budget
  uint64_t invalidations = 0;  ///< validity windows capped by writes
  uint64_t rejected = 0;       ///< results too large to admit
  uint64_t lost_races = 0;     ///< concurrent duplicate installs discarded
  size_t bytes = 0;            ///< gauge: current cached bytes
  size_t entries = 0;          ///< gauge: current entry count

  double hit_rate() const {
    uint64_t probes = hits + misses;
    return probes == 0 ? 0.0 : static_cast<double>(hits) / probes;
  }
};

/// \brief The two-part cache key of a view: `canonical` groups α-equivalent
/// fragment *shapes* (the selection pass and eviction preference operate on
/// it), `full` additionally pins the exact evaluation plan
/// (query::UcqPlanKey of the reformulation) so a hit is guaranteed to
/// replay bit-identically. Empty `full` means "not cacheable" (plan over
/// ViewCacheOptions::max_plan_members).
struct ViewKey {
  std::string canonical;
  std::string full;

  bool ok() const { return !full.empty(); }
};

/// \brief Conservative write-overlap summary of a cached view: the distinct
/// atom patterns its evaluation scanned, with variables widened to
/// wildcards and interval atoms kept as [lo, hi] ranges. A write that
/// matches no pattern cannot change the view's answer — evaluation reads
/// the database only through these patterns, and residual joins/filters
/// only ever *restrict* what the scans produced.
///
/// This is the probe-direction inverse of storage::PatternPresence (which
/// stores concrete triples and probes with patterns); here the *stored*
/// side holds the wildcards and the probe is a concrete triple.
class ViewFootprint {
 public:
  struct Pattern {
    rdf::TermId s, p, o;  ///< bound ids, or storage::kAny for variables
    uint8_t range_pos;    ///< query::Atom::kRange{P,O,None}
    rdf::TermId range_lo, range_hi;  ///< inclusive; meaningful iff ranged
  };

  /// \brief Adds every atom of every member (deduplicated).
  void AddUcq(const query::Ucq& ucq);
  void AddCq(const query::Cq& q);

  /// \brief True when writing `t` could change the view's answer.
  bool MayTouch(const rdf::Triple& t) const;

  RDFREF_BORROWS_FROM(this)
  std::span<const Pattern> patterns() const { return patterns_; }

 private:
  std::vector<Pattern> patterns_;
  // Quick reject on the property position: most writes (e.g. the workload
  // driver's churn property) miss every cached view, and one hash probe
  // settles that without walking patterns_.
  std::unordered_set<rdf::TermId> properties_;
  bool any_property_ = false;  ///< some pattern has a variable/ranged p
};

/// \brief Process-wide cache of materialized subplan results — the
/// cross-query generalization of ScanCache (DESIGN.md §15).
///
/// Entries map a ViewKey plus a *validity window* of write epochs
/// [computed_epoch, valid_hi] to a materialized answer table. Lookup(key,
/// epoch) hits iff the probing snapshot's epoch lies inside the window.
/// Windows grow lazily: the version set feeds every visibility-changing
/// write through OnEpochWrite (see storage/epoch_observer.h), the cache
/// remembers the last `write_log_window` writes, and a lookup beyond an
/// entry's current window replays the intervening writes against the
/// entry's ViewFootprint — extending the window when none overlap, capping
/// it (counted as an invalidation) at the first that does. Capped entries
/// still serve readers pinned to older epochs inside their window.
///
/// Concurrency follows the ScanCache discipline: misses are materialized
/// entirely OUTSIDE the lock; on a racing double-computation the first
/// Install wins and the loser's result is discarded. The lock is held only
/// for map/window bookkeeping — a hit copies the stored answer outside the
/// lock (entry payloads are immutable after install, shared_ptr-held, so
/// eviction never invalidates an in-flight materialization).
///
/// Memory is bounded by `byte_budget` with benefit-ordered eviction
/// (capped entries first, then lowest fill_millis·(1+hits)/bytes,
/// LRU-tiebroken); keys pinned by SetPreferred — the workload-driven
/// selection pass — are evicted only when nothing else is left. High-
/// fanout answers are stored factorized (grouped lead column) when that
/// pays; materialization reproduces the exact original row order.
class ViewCache : public storage::EpochWriteObserver {
 public:
  explicit ViewCache(const ViewCacheOptions& options = {});

  ViewCache(const ViewCache&) = delete;
  ViewCache& operator=(const ViewCache&) = delete;

  /// \brief Builds the cache key of `view_query` evaluated via the
  /// reformulated `plan`. !ok() when the plan is too large to cache.
  ViewKey KeyFor(const query::Cq& view_query, const query::Ucq& plan) const;

  /// \brief Returns a copy of the cached answer valid at `epoch`, or
  /// nullopt (counted as a miss) when none is. The returned table is the
  /// bit-exact result the plan would evaluate to at that epoch; its
  /// `columns` are the stored ones — callers relabel them for their own
  /// head, exactly as the JUCQ path does for freshly materialized
  /// fragments.
  std::optional<Table> Lookup(const std::string& full_key, uint64_t epoch)
      RDFREF_EXCLUDES(mu_);

  /// \brief Admits `result` (computed against write epoch `epoch`) under
  /// `key`. First insert wins; oversized results are rejected; lowest-
  /// benefit entries are evicted to make room. `fill_millis` (the miss's
  /// evaluation cost) is the benefit numerator.
  void Install(const ViewKey& key, uint64_t epoch, const Table& result,
               ViewFootprint footprint, double fill_millis)
      RDFREF_EXCLUDES(mu_);

  /// \brief storage::EpochWriteObserver: appends to the recent-write
  /// window. Runs under the version set's mutex — O(1), touches only the
  /// cache's own (leaf) lock.
  void OnEpochWrite(const rdf::Triple& t, uint64_t epoch,
                    bool added) override RDFREF_EXCLUDES(mu_);

  /// \brief Pins the canonical keys chosen by the view-selection pass:
  /// matching entries (current and future) are evicted last.
  void SetPreferred(std::vector<std::string> canonical_keys)
      RDFREF_EXCLUDES(mu_);

  /// \brief Drops every entry and the write window (e.g. when the id
  /// space is re-encoded and cached ids become meaningless). Counters
  /// survive; gauges reset.
  void Clear() RDFREF_EXCLUDES(mu_);

  ViewCacheStats Stats() const RDFREF_EXCLUDES(mu_);

  const ViewCacheOptions& options() const { return options_; }

 private:
  // Immutable-after-install payload: either the flat table or the
  // factorized (grouped lead column) form. Materialize() reconstructs the
  // exact original row order either way.
  struct Stored {
    std::vector<query::VarId> columns;
    size_t arity = 0;
    size_t rows = 0;
    size_t bytes = 0;
    bool factorized = false;
    Table flat;                     // when !factorized (incl. zero arity)
    std::vector<rdf::TermId> lead;  // run value per lead-column run
    std::vector<uint32_t> run_length;
    std::vector<rdf::TermId> rest;  // arity-1 trailing values per row

    Table Materialize() const;
  };

  struct Entry {
    Stored stored;
    ViewFootprint footprint;
    std::string canonical_key;
    uint64_t computed_epoch = 0;
    uint64_t valid_hi = 0;
    bool capped = false;  // window can no longer grow
    bool preferred = false;
    uint64_t hits = 0;
    uint64_t last_use = 0;  // tick_ at last hit/install
    double fill_millis = 0.0;
  };

  struct WriteRec {
    uint64_t epoch;
    rdf::Triple triple;
  };

  // Builds the compact payload for `result` (outside the lock).
  Stored Encode(const Table& result) const;

  // Grows e's validity window toward `target` by replaying the write
  // window; caps at the first overlapping write or when the window has
  // scrolled past. True iff the window now covers target.
  bool AdvanceLocked(Entry* e, uint64_t target) RDFREF_REQUIRES(mu_);

  // Evicts lowest-benefit entries until `needed` more bytes fit the
  // budget. False when impossible (needed exceeds the whole budget).
  bool MakeRoomLocked(size_t needed) RDFREF_REQUIRES(mu_);

  const ViewCacheOptions options_;

  mutable common::Mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> entries_
      RDFREF_GUARDED_BY(mu_);
  std::deque<WriteRec> writes_ RDFREF_GUARDED_BY(mu_);
  uint64_t applied_epoch_ RDFREF_GUARDED_BY(mu_) = 0;
  std::unordered_set<std::string> preferred_ RDFREF_GUARDED_BY(mu_);
  size_t bytes_ RDFREF_GUARDED_BY(mu_) = 0;
  uint64_t tick_ RDFREF_GUARDED_BY(mu_) = 0;
  ViewCacheStats stats_ RDFREF_GUARDED_BY(mu_);
};

}  // namespace engine
}  // namespace rdfref

#endif  // RDFREF_ENGINE_VIEW_CACHE_H_
