#ifndef RDFREF_ENGINE_SCAN_CACHE_H_
#define RDFREF_ENGINE_SCAN_CACHE_H_

#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "common/hash.h"
#include "common/synchronization.h"
#include "rdf/triple.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace engine {

/// \brief Per-query scan memo shared across the members of one UCQ (or all
/// fragment UCQs of one JUCQ).
///
/// Reformulation unions are massively redundant: the members of a
/// reformulated UCQ share most of their atoms (Example 1's 318,096-CQ
/// reformulation touches a handful of distinct properties), so the same
/// bound pattern is counted by OrderAtoms and range-scanned at join depth 0
/// over and over — once per member in the seed engine. The ScanCache keys
/// both on the bound `(s, p, o)` pattern:
///
///  - `CountMatches` memoizes the source's cardinality answers, so a
///    462-member UCQ pays one count per *distinct* pattern instead of one
///    per member atom (this matters most for the federation mediator, where
///    a count is a per-endpoint fan-out);
///  - `LeafRange` memoizes materialized leaf scans for sources that cannot
///    expose a contiguous range (overlay and mediator sources). Range-
///    capable sources bypass the cache entirely — their span is already
///    zero-copy and caching it would only add a lock.
///
/// Thread-safety: all methods are const and safe to call concurrently; the
/// parallel UCQ chunk path and the parallel JUCQ fragment path share one
/// cache instance. Returned spans stay valid for the cache's lifetime:
/// materialized scans are held behind unique_ptr, never erased, and a map
/// rehash does not move the pointed-to vectors. Misses are materialized
/// OUTSIDE the lock (a federation scan can take milliseconds and must not
/// serialize sibling chunks); on a racing double-materialization the first
/// insert wins and the loser's buffer is discarded.
///
/// Deadline/cancellation interaction: a cache fill is one source-level
/// batch scan, which is not cancellable mid-pattern — exactly like the
/// seed engine's Scan callbacks. Cancellation is polled by the evaluator
/// between pattern scans (every kCancelStride consumed triples), so an
/// expired deadline aborts after the current pattern, never mid-buffer.
class ScanCache {
 public:
  /// \brief `source` must outlive the cache.
  explicit ScanCache(const storage::TripleSource* source) : source_(source) {}

  ScanCache(const ScanCache&) = delete;
  ScanCache& operator=(const ScanCache&) = delete;

  /// \brief Memoized source->CountMatches(s, p, o).
  size_t CountMatches(rdf::TermId s, rdf::TermId p, rdf::TermId o) const
      RDFREF_EXCLUDES(mu_);

  /// \brief Memoized source->CountIntervalMatches: the interval-atom
  /// analogue, keyed on (pattern, range_pos, hi) so classic and interval
  /// probes of the same bound pattern never collide.
  size_t CountIntervalMatches(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                              int range_pos, rdf::TermId hi) const
      RDFREF_EXCLUDES(mu_);

  /// \brief All matches of the pattern as a contiguous span: zero-copy
  /// when the source is range-capable, otherwise materialized once per
  /// distinct pattern and shared by every later caller (and every thread).
  std::span<const rdf::Triple> LeafRange(rdf::TermId s, rdf::TermId p,
                                         rdf::TermId o) const
      RDFREF_LIFETIME_BOUND RDFREF_EXCLUDES(mu_);

  /// \brief Interval analogue of LeafRange: zero-copy when the source
  /// exposes the interval contiguously, else one shared materialization of
  /// the widened-and-filtered scan per distinct interval pattern.
  std::span<const rdf::Triple> LeafIntervalRange(rdf::TermId s, rdf::TermId p,
                                                 rdf::TermId o, int range_pos,
                                                 rdf::TermId hi) const
      RDFREF_LIFETIME_BOUND RDFREF_EXCLUDES(mu_);

  const storage::TripleSource& source() const RDFREF_LIFETIME_BOUND {
    return *source_;
  }

  /// \brief Introspection for tests: distinct patterns memoized so far.
  size_t num_cached_counts() const RDFREF_EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return counts_.size();
  }
  size_t num_cached_leaves() const RDFREF_EXCLUDES(mu_) {
    common::MutexLock lock(&mu_);
    return leaves_.size();
  }

 private:
  struct PatternKey {
    rdf::TermId s, p, o;
    // Interval annotation; 3 (query::Atom::kRangeNone) + 0 for classic
    // patterns, so classic and interval entries share one map without
    // colliding.
    int range_pos = 3;
    rdf::TermId range_hi = 0;
    friend bool operator==(const PatternKey& a, const PatternKey& b) {
      return a.s == b.s && a.p == b.p && a.o == b.o &&
             a.range_pos == b.range_pos && a.range_hi == b.range_hi;
    }
  };
  struct PatternKeyHash {
    size_t operator()(const PatternKey& k) const {
      size_t h = HashCombine(HashCombine(HashCombine(0x5ca9c4a3, k.s), k.p), k.o);
      return HashCombine(HashCombine(h, static_cast<size_t>(k.range_pos)),
                         k.range_hi);
    }
  };

  const storage::TripleSource* source_;
  mutable common::Mutex mu_;
  mutable std::unordered_map<PatternKey, size_t, PatternKeyHash> counts_
      RDFREF_GUARDED_BY(mu_);
  // unique_ptr: span stability across rehash; entries are never erased.
  mutable std::unordered_map<PatternKey,
                             std::unique_ptr<std::vector<rdf::Triple>>,
                             PatternKeyHash>
      leaves_ RDFREF_GUARDED_BY(mu_);
};

}  // namespace engine
}  // namespace rdfref

#endif  // RDFREF_ENGINE_SCAN_CACHE_H_
