#include "engine/evaluator.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "engine/scan_cache.h"
#include "engine/view_cache.h"
#include "storage/store.h"

namespace rdfref {
namespace engine {

namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;

constexpr rdf::TermId kUnbound = rdf::kInvalidTermId;

// Engine invariant violations abort with a message in every build mode
// (NDEBUG included): a silently truncated answer table is worse than a
// crash.
[[noreturn]] void EngineFatal(const char* msg) {
  std::fprintf(stderr, "rdfref: engine invariant violated: %s\n", msg);
  std::fflush(stderr);
  std::abort();
}

// Resolves a query term under the current bindings: a constant, a bound
// variable's value, or kAny when still free.
rdf::TermId Resolve(const QTerm& t, const std::vector<rdf::TermId>& bindings) {
  if (!t.is_var) return t.term();
  rdf::TermId v = bindings[t.var()];
  return v == kUnbound ? storage::kAny : v;
}

// Greedy join order: start from the atom with the smallest index-estimated
// match count (variables wildcarded), then repeatedly append the
// smallest-count atom connected to the already-ordered ones. Counts come
// from the shared per-UCQ cache, so sibling members with the same atoms
// never re-count; each atom's variables are computed once up front (flat
// vectors probed against a bound bitmap) instead of a std::set rebuilt
// inside the O(n²) selection loop.
std::vector<int> OrderAtoms(const ScanCache& cache, const Cq& q) {
  const std::vector<Atom>& body = q.body();
  const int n = static_cast<int>(body.size());
  std::vector<uint64_t> base(n);
  std::vector<std::vector<VarId>> atom_vars(n);
  for (int i = 0; i < n; ++i) {
    rdf::TermId s = body[i].s.is_var ? storage::kAny : body[i].s.term();
    rdf::TermId p = body[i].p.is_var ? storage::kAny : body[i].p.term();
    rdf::TermId o = body[i].o.is_var ? storage::kAny : body[i].o.term();
    base[i] = body[i].has_range()
                  ? cache.CountIntervalMatches(s, p, o, body[i].range_pos,
                                               body[i].range_hi)
                  : cache.CountMatches(s, p, o);
    const std::set<VarId> vars = Cq::AtomVars(body[i]);
    atom_vars[i].assign(vars.begin(), vars.end());
  }
  std::vector<int> order;
  order.reserve(n);
  std::vector<bool> used(n, false);
  std::vector<char> bound(q.num_vars(), 0);
  for (int step = 0; step < n; ++step) {
    int best = -1;
    uint64_t best_count = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      const std::vector<VarId>& vars = atom_vars[i];
      bool connected =
          step == 0 || std::any_of(vars.begin(), vars.end(),
                                   [&](VarId v) { return bound[v] != 0; });
      // Prefer connected atoms; among equals, the smaller base count.
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected && base[i] < best_count)) {
        best = i;
        best_count = base[i];
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    for (VarId v : atom_vars[best]) bound[v] = 1;
  }
  return order;
}

// Labels a cover fragment with the indexes its atoms occupy in q's body,
// in Cover::ToString notation (e.g. "{t0,t2}"). Duplicate atoms in q are
// matched lowest-unused-index-first, so labels stay a bijection.
std::string FragmentLabel(const Cq& q, const Cq& fragment) {
  std::vector<bool> used(q.body().size(), false);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const Atom& a : fragment.body()) {
    int idx = -1;
    for (size_t j = 0; j < q.body().size(); ++j) {
      if (!used[j] && q.body()[j] == a) {
        idx = static_cast<int>(j);
        used[j] = true;
        break;
      }
    }
    if (!first) out << ",";
    first = false;
    if (idx >= 0) {
      out << "t" << idx;
    } else {
      out << "t?";  // not an atom of q (hand-built fragment query)
    }
  }
  out << "}";
  return out.str();
}

// Indents every line of `text` (including a final line that lacks a
// trailing newline) and newline-terminates the result, so a nested plan
// never bleeds into the next line of the enclosing plan.
std::string IndentBlock(const std::string& text, const std::string& prefix) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    size_t end = nl == std::string::npos ? text.size() : nl + 1;
    out += prefix;
    out.append(text, pos, end - pos);
    pos = end;
  }
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

// Splits [0, n) into `parts` contiguous, near-equal ranges.
std::vector<std::pair<size_t, size_t>> SplitRanges(size_t n, size_t parts) {
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(parts);
  for (size_t c = 0; c < parts; ++c) {
    ranges.emplace_back(n * c / parts, n * (c + 1) / parts);
  }
  return ranges;
}

Status UcqDeadlineError(size_t evaluated, size_t total) {
  return Status::DeadlineExceeded(
      "deadline exceeded after " + std::to_string(evaluated) + " of " +
      std::to_string(total) + " reformulation CQs");
}

// One open atom of the iterative binding-stack join: the contiguous range
// being iterated (zero-copy for range-capable sources, else owned by the
// frame's cursor buffer, which is reused across re-openings at the same
// depth), the iteration position, and the undo record of the variables the
// current row bound.
struct RDFREF_BORROWS_FROM(source, cursor) JoinFrame {
  std::span<const rdf::Triple> range;
  size_t pos = 0;
  storage::PatternCursor cursor;
  // Carried across re-openings at this depth: the outer range is iterated
  // in index order, so successive inner prefixes are non-decreasing and
  // the source can gallop from the previous position (see RangeHint).
  storage::RangeHint hint;
  VarId newly[3];
  int num_new = 0;
};

}  // namespace

Evaluator::Evaluator(const storage::TripleSource* source, int threads)
    : store_(source) {
  set_threads(threads);
}

void Evaluator::set_threads(int threads) {
  threads_ = threads <= 0 ? common::ThreadPool::DefaultThreads() : threads;
}

std::vector<int> Evaluator::AtomOrder(const query::Cq& q) const {
  ScanCache cache(store_);
  return OrderAtoms(cache, q);
}

std::string Evaluator::ExplainCq(const Cq& q) const {
  std::ostringstream out;
  std::vector<int> order = AtomOrder(q);
  out << "CQ plan (index nested-loop join):\n";
  for (size_t depth = 0; depth < order.size(); ++depth) {
    const Atom& atom = q.body()[order[depth]];
    rdf::TermId s = atom.s.is_var ? storage::kAny : atom.s.term();
    rdf::TermId p = atom.p.is_var ? storage::kAny : atom.p.term();
    rdf::TermId o = atom.o.is_var ? storage::kAny : atom.o.term();
    const size_t count =
        atom.has_range()
            ? store_->CountIntervalMatches(s, p, o, atom.range_pos,
                                           atom.range_hi)
            : store_->CountMatches(s, p, o);
    out << "  " << (depth == 0 ? "scan " : "probe") << " t"
        << order[depth] << "  (~" << count << " index matches unbound"
        << (atom.has_range() ? ", interval" : "") << ")\n";
  }
  return out.str();
}

std::string Evaluator::ExplainJucq(
    const Cq& q, const std::vector<Cq>& fragment_queries,
    const std::vector<query::Ucq>& fragment_ucqs) const {
  (void)q;
  std::ostringstream out;
  out << "JUCQ plan: materialize " << fragment_queries.size()
      << " fragment(s), then hash-join smallest-connected-first:\n";
  for (size_t i = 0; i < fragment_queries.size(); ++i) {
    out << "  fragment " << i << ": UCQ of " << fragment_ucqs[i].size()
        << " CQ(s), head arity " << fragment_queries[i].head().size()
        << "\n";
    if (!fragment_ucqs[i].empty()) {
      out << "    first member plan:\n";
      out << IndentBlock(ExplainCq(fragment_ucqs[i].members()[0]), "    ");
    }
  }
  return out.str();
}

bool Evaluator::EvaluateCqInto(const Cq& q, const CancelToken& cancel,
                               ScanCache* cache, Table* out) const {
  if (!out->has_arity()) out->SetArity(q.head().size());
  const std::vector<Atom>& body = q.body();
  if (body.empty()) return true;
  if (cancel.ShouldStop()) return false;
  const std::vector<int> order = OrderAtoms(*cache, q);
  std::vector<rdf::TermId> bindings(q.num_vars(), kUnbound);
  // Resource-constrained variables (reformulation rules 3/7) reject
  // literal bindings: a literal cannot be the subject of an entailed
  // rdf:type triple.
  std::vector<char> resource_only(q.num_vars(), 0);
  for (VarId v : q.resource_vars()) resource_only[v] = 1;
  const rdf::Dictionary& dict = store_->dict();

  // The cancel token is polled every kCancelStride consumed triples,
  // bounding the overrun of a runaway CQ. A single pattern scan (one cache
  // fill or cursor reset) is not cancellable mid-buffer, exactly like the
  // scan callbacks of the recursive engine this replaces.
  constexpr size_t kCancelStride = 1024;
  size_t steps = 0;

  const size_t num_atoms = order.size();
  const size_t head_arity = q.head().size();
  std::vector<JoinFrame> frames(num_atoms);

  // Opens frame d: resolves its atom's pattern under the current bindings
  // and binds the frame's range. Depth-0 patterns with no residual go
  // through the shared cache (they are identical across sibling members of
  // a reformulation union); inner patterns depend on the outer bindings
  // and use the frame's reusable cursor.
  auto open_frame = [&](size_t d) {
    const Atom& atom = body[order[d]];
    const rdf::TermId ps = Resolve(atom.s, bindings);
    const rdf::TermId pp = Resolve(atom.p, bindings);
    const rdf::TermId po = Resolve(atom.o, bindings);
    // An intra-atom repeated *unbound* variable becomes a residual filter
    // (a bound repeat is already a constant in the pattern).
    storage::ResidualEq residual;
    residual.s_eq_p = atom.s.is_var && atom.p.is_var &&
                      atom.s.var() == atom.p.var() && ps == storage::kAny;
    residual.s_eq_o = atom.s.is_var && atom.o.is_var &&
                      atom.s.var() == atom.o.var() && ps == storage::kAny;
    residual.p_eq_o = atom.p.is_var && atom.o.is_var &&
                      atom.p.var() == atom.o.var() && pp == storage::kAny;
    JoinFrame& f = frames[d];
    f.pos = 0;
    f.num_new = 0;
    if (atom.has_range()) {
      // Interval atom (hierarchy-encoded reformulation): the ranged
      // position's pattern value is the interval's low endpoint.
      if (d == 0 && !residual.any()) {
        f.range = cache->LeafIntervalRange(ps, pp, po, atom.range_pos,
                                           atom.range_hi);
      } else {
        f.range = f.cursor.ResetInterval(*store_, ps, pp, po, atom.range_pos,
                                         atom.range_hi, residual);
      }
    } else if (d == 0 && !residual.any()) {
      f.range = cache->LeafRange(ps, pp, po);
    } else {
      f.range = f.cursor.Reset(*store_, ps, pp, po, residual, &f.hint);
    }
  };

  // Binds the free variables of frame d's atom against triple t, recording
  // the undo set in the frame. Honors repeated variables within the atom
  // (the residual filter already discharged unbound repeats; the equality
  // recheck is kept as the single source of truth) and the resource-only
  // constraint.
  auto bind_row = [&](size_t d, const rdf::Triple& t) -> bool {
    const Atom& atom = body[order[d]];
    JoinFrame& f = frames[d];
    auto bind = [&](const QTerm& qt, rdf::TermId value) -> bool {
      if (!qt.is_var) return true;  // matched by the scan pattern
      rdf::TermId& slot = bindings[qt.var()];
      if (slot == kUnbound) {
        if (resource_only[qt.var()] && dict.Lookup(value).is_literal()) {
          return false;
        }
        slot = value;
        f.newly[f.num_new++] = qt.var();
        return true;
      }
      return slot == value;
    };
    return bind(atom.s, t.s) && bind(atom.p, t.p) && bind(atom.o, t.o);
  };

  // Iterative index nested-loop join. Each loop iteration first undoes the
  // bindings of the current frame's previous row (mirroring the recursive
  // engine's unbind-after-recurse), then advances it: descend on a
  // successful bind, emit at the deepest frame, pop when exhausted.
  open_frame(0);
  size_t depth = 0;
  while (true) {
    JoinFrame& f = frames[depth];
    for (int k = 0; k < f.num_new; ++k) bindings[f.newly[k]] = kUnbound;
    f.num_new = 0;
    if (f.pos == f.range.size()) {
      if (depth == 0) break;
      --depth;
      continue;
    }
    const rdf::Triple& t = f.range[f.pos++];
    if (++steps % kCancelStride == 0 && cancel.ShouldStop()) return false;
    if (!bind_row(depth, t)) continue;
    if (depth + 1 == num_atoms) {
      rdf::TermId* row = out->AppendUninitialized();
      for (size_t k = 0; k < head_arity; ++k) {
        const QTerm& h = q.head()[k];
        row[k] = h.is_var ? bindings[h.var()] : h.term();
      }
      continue;
    }
    ++depth;
    open_frame(depth);
  }
  return true;
}

Table Evaluator::EvaluateCq(const Cq& q) const {
  Table table;
  for (const QTerm& h : q.head()) {
    table.columns.push_back(h.is_var ? h.var() : kConstColumn);
  }
  table.SetArity(q.head().size());
  ScanCache cache(store_);
  // A default CancelToken never fires; a partial result here would mean
  // the engine truncated an answer under an infinite budget.
  if (!EvaluateCqInto(q, CancelToken(), &cache, &table)) {
    EngineFatal("EvaluateCq: cancellation fired under an infinite deadline");
  }
  table.Dedup();
  return table;
}

Table Evaluator::EvaluateUcq(const query::Ucq& ucq) const {
  // An infinite deadline never fails.
  return EvaluateUcq(ucq, Deadline::Infinite()).value();
}

Result<Table> Evaluator::EvaluateUcq(const query::Ucq& ucq,
                                     const Deadline& deadline) const {
  // One scan memo for the whole union: members of a reformulation UCQ
  // overlap heavily in their atoms.
  ScanCache cache(store_);
  return EvaluateUcqWithCache(ucq, deadline, &cache);
}

Result<Table> Evaluator::EvaluateUcqView(const query::Cq& q,
                                         const query::Ucq& ucq,
                                         const Deadline& deadline) const {
  if (view_cache_ == nullptr) return EvaluateUcq(ucq, deadline);
  const ViewKey key = view_cache_->KeyFor(q, ucq);
  if (!key.ok()) return EvaluateUcq(ucq, deadline);
  if (std::optional<Table> hit = view_cache_->Lookup(key.full, view_epoch_)) {
    // Relabel with *this* union's head: the cached entry may have been
    // installed by an α-equivalent plan whose VarIds differ. Values are
    // bit-identical (equal plan keys evaluate identically); only the
    // column labels belong to the caller.
    Table table = std::move(*hit);
    table.columns.clear();
    for (const QTerm& h : ucq.members()[0].head()) {
      table.columns.push_back(h.is_var ? h.var() : kConstColumn);
    }
    return table;
  }
  Timer fill;
  Result<Table> computed = EvaluateUcq(ucq, deadline);
  if (computed.ok()) {
    ViewFootprint footprint;
    footprint.AddUcq(ucq);
    view_cache_->Install(key, view_epoch_, computed.value(),
                         std::move(footprint), fill.ElapsedMillis());
  }
  return computed;
}

Result<Table> Evaluator::EvaluateUcqWithCache(const query::Ucq& ucq,
                                              const Deadline& deadline,
                                              ScanCache* cache) const {
  Table table;
  if (!ucq.empty()) {
    for (const QTerm& h : ucq.members()[0].head()) {
      table.columns.push_back(h.is_var ? h.var() : kConstColumn);
    }
    table.SetArity(ucq.members()[0].head().size());
  }
  if (threads_ <= 1 || ucq.size() < 2) {
    return EvaluateUcqSequential(ucq, deadline, cache, std::move(table));
  }
  return EvaluateUcqParallel(ucq, deadline, cache, std::move(table));
}

Result<Table> Evaluator::EvaluateUcqSequential(const query::Ucq& ucq,
                                               const Deadline& deadline,
                                               ScanCache* cache,
                                               Table table) const {
  CancelToken token(&deadline);
  size_t evaluated = 0;
  for (const Cq& member : ucq.members()) {
    if (deadline.expired() ||
        !EvaluateCqInto(member, token, cache, &table)) {
      return UcqDeadlineError(evaluated, ucq.size());
    }
    ++evaluated;
  }
  table.Dedup();
  return table;
}

Result<Table> Evaluator::EvaluateUcqParallel(const query::Ucq& ucq,
                                             const Deadline& deadline,
                                             ScanCache* cache,
                                             Table table) const {
  const size_t n = ucq.size();
  // One contiguous chunk per thread: concurrency is honestly bounded by
  // the `threads` knob, and concatenating the chunk tables in chunk order
  // reproduces the sequential append order exactly — so the single dedup
  // below yields a bit-identical table. All chunks share the UCQ-level
  // scan cache (it is thread-safe).
  const size_t chunks = std::min(n, static_cast<size_t>(threads_));
  const std::vector<std::pair<size_t, size_t>> ranges = SplitRanges(n, chunks);
  std::vector<Table> buffers(chunks);
  std::atomic<bool> stop{false};
  std::atomic<size_t> completed{0};
  CancelToken token(&deadline, &stop);
  common::ThreadPool::Shared().ParallelFor(chunks, [&](size_t c) {
    auto [lo, hi] = ranges[c];
    for (size_t i = lo; i < hi; ++i) {
      // CQ-boundary check: stop promptly when a sibling chunk saw the
      // deadline expire (or it expired here).
      if (token.ShouldStop()) return;
      if (!EvaluateCqInto(ucq.members()[i], token, cache, &buffers[c])) {
        return;
      }
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (stop.load(std::memory_order_relaxed)) {
    return UcqDeadlineError(completed.load(std::memory_order_relaxed), n);
  }
  size_t total = 0;
  for (const Table& buffer : buffers) total += buffer.NumRows();
  table.ReserveRows(total);
  for (const Table& buffer : buffers) table.Append(buffer);
  table.Dedup();
  return table;
}

Table Evaluator::EvaluateJucq(const Cq& q,
                              const std::vector<Cq>& fragment_queries,
                              const std::vector<query::Ucq>& fragment_ucqs,
                              JucqProfile* profile) const {
  return EvaluateJucq(q, fragment_queries, fragment_ucqs, Deadline::Infinite(),
                      profile)
      .value();
}

Result<Table> Evaluator::EvaluateJucq(
    const Cq& q, const std::vector<Cq>& fragment_queries,
    const std::vector<query::Ucq>& fragment_ucqs, const Deadline& deadline,
    JucqProfile* profile) const {
  Timer total;
  const size_t nf = fragment_ucqs.size();

  // 1. Materialize every fragment (one pool task per fragment when
  // parallel; each task's member loop may itself run parallel chunks).
  // The scan memo is shared across fragments: cover fragments of one query
  // re-reformulate the same atoms, so their leaf patterns and counts
  // coincide.
  ScanCache cache(store_);
  std::vector<std::optional<Result<Table>>> materialized(nf);
  std::vector<double> fragment_millis(nf, 0.0);
  auto materialize_one = [&](size_t i) {
    Timer t;
    if (view_cache_ != nullptr) {
      // Cross-query path: probe the view cache for this fragment's plan at
      // the source snapshot's epoch before touching the store; install
      // successful materializations (outside the cache lock) for the next
      // query that covers the same fragment. Columns are relabeled below
      // from the fragment query either way, so hits and misses feed the
      // join identically.
      const ViewKey key =
          view_cache_->KeyFor(fragment_queries[i], fragment_ucqs[i]);
      if (key.ok()) {
        if (std::optional<Table> hit =
                view_cache_->Lookup(key.full, view_epoch_)) {
          materialized[i] = Result<Table>(std::move(*hit));
          fragment_millis[i] = t.ElapsedMillis();
          return;
        }
        Result<Table> computed =
            EvaluateUcqWithCache(fragment_ucqs[i], deadline, &cache);
        if (computed.ok()) {
          ViewFootprint footprint;
          footprint.AddUcq(fragment_ucqs[i]);
          view_cache_->Install(key, view_epoch_, computed.value(),
                               std::move(footprint), t.ElapsedMillis());
        }
        materialized[i] = std::move(computed);
        fragment_millis[i] = t.ElapsedMillis();
        return;
      }
    }
    materialized[i] = EvaluateUcqWithCache(fragment_ucqs[i], deadline, &cache);
    fragment_millis[i] = t.ElapsedMillis();
  };
  if (threads_ > 1 && nf > 1) {
    common::ThreadPool::Shared().ParallelFor(nf, materialize_one);
  } else {
    for (size_t i = 0; i < nf; ++i) {
      materialize_one(i);
      if (!materialized[i]->ok()) break;  // remaining fragments unevaluated
    }
  }

  // Assemble in fragment order: deterministic profiles and tables, and the
  // lowest-indexed failure wins when several fragments hit the deadline.
  std::vector<Table> tables;
  tables.reserve(nf);
  for (size_t i = 0; i < nf; ++i) {
    if (!materialized[i].has_value()) continue;  // after a sequential abort
    if (!materialized[i]->ok()) {
      // Partial profile: the fragments materialized so far stay recorded.
      if (profile != nullptr) profile->total_millis = total.ElapsedMillis();
      return Status(materialized[i]->status().code(),
                    "fragment " + std::to_string(i) + ": " +
                        materialized[i]->status().message());
    }
    Table table = std::move(*materialized[i]).value();
    // Columns must reflect the *fragment query* head terms (member heads
    // may have constants substituted in, but slot j is still the value of
    // head slot j of the fragment subquery). A constant head slot carries
    // no variable: it gets the same sentinel EvaluateCq uses, so it can
    // never alias a real VarId during the fragment joins.
    table.columns.clear();
    for (const QTerm& h : fragment_queries[i].head()) {
      table.columns.push_back(h.is_var ? h.var() : kConstColumn);
    }
    if (profile != nullptr) {
      FragmentProfile fp;
      fp.cover_fragment = FragmentLabel(q, fragment_queries[i]);
      fp.ucq_members = fragment_ucqs[i].size();
      fp.result_rows = table.NumRows();
      fp.millis = fragment_millis[i];
      profile->fragments.push_back(fp);
    }
    tables.push_back(std::move(table));
  }

  // 2. Join fragments: start from the smallest, then greedily pick the
  // smallest fragment *connected* to the joined columns (avoiding cross
  // products, as an RDBMS join-order heuristic would).
  if (deadline.expired()) {
    if (profile != nullptr) profile->total_millis = total.ElapsedMillis();
    return Status::DeadlineExceeded(
        "deadline exceeded before the fragment join");
  }
  Timer join_timer;
  Table result;
  if (!tables.empty()) {
    std::vector<bool> joined(tables.size(), false);
    size_t first = 0;
    for (size_t i = 1; i < tables.size(); ++i) {
      if (tables[i].NumRows() < tables[first].NumRows()) first = i;
    }
    joined[first] = true;
    std::set<VarId> joined_cols(tables[first].columns.begin(),
                                tables[first].columns.end());
    result = std::move(tables[first]);
    for (size_t step = 1; step < tables.size(); ++step) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < tables.size(); ++i) {
        if (joined[i]) continue;
        bool connected =
            std::any_of(tables[i].columns.begin(), tables[i].columns.end(),
                        [&](VarId v) { return joined_cols.count(v) > 0; });
        if (best == -1 || (connected && !best_connected) ||
            (connected == best_connected &&
             tables[i].NumRows() <
                 tables[static_cast<size_t>(best)].NumRows())) {
          best = static_cast<int>(i);
          best_connected = connected;
        }
      }
      joined[static_cast<size_t>(best)] = true;
      joined_cols.insert(tables[static_cast<size_t>(best)].columns.begin(),
                         tables[static_cast<size_t>(best)].columns.end());
      result = HashJoin(result, tables[static_cast<size_t>(best)]);
    }
  }

  // 3. Project the original head: one arena append per row, reading the
  // joined rows as stride slices.
  Table answer;
  for (const QTerm& h : q.head()) {
    answer.columns.push_back(h.is_var ? h.var() : kConstColumn);
  }
  answer.SetArity(q.head().size());
  std::vector<int> proj;
  proj.reserve(q.head().size());
  for (const QTerm& h : q.head()) {
    proj.push_back(h.is_var ? result.ColumnOf(h.var()) : -1);
  }
  const size_t num_rows = result.NumRows();
  answer.ReserveRows(num_rows);
  for (size_t r = 0; r < num_rows; ++r) {
    const std::span<const rdf::TermId> row = result.row(r);
    rdf::TermId* dst = answer.AppendUninitialized();
    for (size_t i = 0; i < proj.size(); ++i) {
      dst[i] = proj[i] >= 0 ? row[proj[i]] : q.head()[i].term();
    }
  }
  answer.Dedup();
  if (profile != nullptr) {
    profile->join_millis = join_timer.ElapsedMillis();
    profile->total_millis = total.ElapsedMillis();
  }
  return answer;
}

}  // namespace engine
}  // namespace rdfref
