#include "engine/evaluator.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <sstream>
#include <utility>

#include "common/thread_pool.h"
#include "common/timer.h"
#include "storage/store.h"

namespace rdfref {
namespace engine {

namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;

constexpr rdf::TermId kUnbound = rdf::kInvalidTermId;

// Constant head slots carry no variable; their column id is this sentinel
// (mirrored from EvaluateCq's final-answer convention).
constexpr VarId kConstColumn = std::numeric_limits<VarId>::max();

// Resolves a query term under the current bindings: a constant, a bound
// variable's value, or kAny when still free.
rdf::TermId Resolve(const QTerm& t, const std::vector<rdf::TermId>& bindings) {
  if (!t.is_var) return t.term();
  rdf::TermId v = bindings[t.var()];
  return v == kUnbound ? storage::kAny : v;
}

// Greedy join order: start from the atom with the smallest index-estimated
// match count (variables wildcarded), then repeatedly append the
// smallest-count atom connected to the already-ordered ones.
std::vector<int> OrderAtoms(const storage::TripleSource& store, const Cq& q) {
  const std::vector<Atom>& body = q.body();
  const int n = static_cast<int>(body.size());
  std::vector<uint64_t> base(n);
  for (int i = 0; i < n; ++i) {
    rdf::TermId s = body[i].s.is_var ? storage::kAny : body[i].s.term();
    rdf::TermId p = body[i].p.is_var ? storage::kAny : body[i].p.term();
    rdf::TermId o = body[i].o.is_var ? storage::kAny : body[i].o.term();
    base[i] = store.CountMatches(s, p, o);
  }
  std::vector<int> order;
  std::vector<bool> used(n, false);
  std::set<VarId> bound_vars;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    uint64_t best_count = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      std::set<VarId> vars = Cq::AtomVars(body[i]);
      bool connected =
          step == 0 || std::any_of(vars.begin(), vars.end(), [&](VarId v) {
            return bound_vars.count(v) > 0;
          });
      // Prefer connected atoms; among equals, the smaller base count.
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected && base[i] < best_count)) {
        best = i;
        best_count = base[i];
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    std::set<VarId> vars = Cq::AtomVars(body[best]);
    bound_vars.insert(vars.begin(), vars.end());
  }
  return order;
}

// Labels a cover fragment with the indexes its atoms occupy in q's body,
// in Cover::ToString notation (e.g. "{t0,t2}"). Duplicate atoms in q are
// matched lowest-unused-index-first, so labels stay a bijection.
std::string FragmentLabel(const Cq& q, const Cq& fragment) {
  std::vector<bool> used(q.body().size(), false);
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const Atom& a : fragment.body()) {
    int idx = -1;
    for (size_t j = 0; j < q.body().size(); ++j) {
      if (!used[j] && q.body()[j] == a) {
        idx = static_cast<int>(j);
        used[j] = true;
        break;
      }
    }
    if (!first) out << ",";
    first = false;
    if (idx >= 0) {
      out << "t" << idx;
    } else {
      out << "t?";  // not an atom of q (hand-built fragment query)
    }
  }
  out << "}";
  return out.str();
}

// Indents every line of `text` (including a final line that lacks a
// trailing newline) and newline-terminates the result, so a nested plan
// never bleeds into the next line of the enclosing plan.
std::string IndentBlock(const std::string& text, const std::string& prefix) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    size_t end = nl == std::string::npos ? text.size() : nl + 1;
    out += prefix;
    out.append(text, pos, end - pos);
    pos = end;
  }
  if (!out.empty() && out.back() != '\n') out += '\n';
  return out;
}

// Splits [0, n) into `parts` contiguous, near-equal ranges.
std::vector<std::pair<size_t, size_t>> SplitRanges(size_t n, size_t parts) {
  std::vector<std::pair<size_t, size_t>> ranges;
  ranges.reserve(parts);
  for (size_t c = 0; c < parts; ++c) {
    ranges.emplace_back(n * c / parts, n * (c + 1) / parts);
  }
  return ranges;
}

Status UcqDeadlineError(size_t evaluated, size_t total) {
  return Status::DeadlineExceeded(
      "deadline exceeded after " + std::to_string(evaluated) + " of " +
      std::to_string(total) + " reformulation CQs");
}

}  // namespace

Evaluator::Evaluator(const storage::TripleSource* source, int threads)
    : store_(source) {
  set_threads(threads);
}

void Evaluator::set_threads(int threads) {
  threads_ = threads <= 0 ? common::ThreadPool::DefaultThreads() : threads;
}

std::vector<int> Evaluator::AtomOrder(const query::Cq& q) const {
  return OrderAtoms(*store_, q);
}

std::string Evaluator::ExplainCq(const Cq& q) const {
  std::ostringstream out;
  std::vector<int> order = AtomOrder(q);
  out << "CQ plan (index nested-loop join):\n";
  for (size_t depth = 0; depth < order.size(); ++depth) {
    const Atom& atom = q.body()[order[depth]];
    rdf::TermId s = atom.s.is_var ? storage::kAny : atom.s.term();
    rdf::TermId p = atom.p.is_var ? storage::kAny : atom.p.term();
    rdf::TermId o = atom.o.is_var ? storage::kAny : atom.o.term();
    out << "  " << (depth == 0 ? "scan " : "probe") << " t"
        << order[depth] << "  (~" << store_->CountMatches(s, p, o)
        << " index matches unbound)\n";
  }
  return out.str();
}

std::string Evaluator::ExplainJucq(
    const Cq& q, const std::vector<Cq>& fragment_queries,
    const std::vector<query::Ucq>& fragment_ucqs) const {
  (void)q;
  std::ostringstream out;
  out << "JUCQ plan: materialize " << fragment_queries.size()
      << " fragment(s), then hash-join smallest-connected-first:\n";
  for (size_t i = 0; i < fragment_queries.size(); ++i) {
    out << "  fragment " << i << ": UCQ of " << fragment_ucqs[i].size()
        << " CQ(s), head arity " << fragment_queries[i].head().size()
        << "\n";
    if (!fragment_ucqs[i].empty()) {
      out << "    first member plan:\n";
      out << IndentBlock(ExplainCq(fragment_ucqs[i].members()[0]), "    ");
    }
  }
  return out.str();
}

bool Evaluator::EvaluateCqInto(
    const Cq& q, const CancelToken& cancel,
    std::vector<std::vector<rdf::TermId>>* out) const {
  const std::vector<Atom>& body = q.body();
  if (body.empty()) return true;
  if (cancel.ShouldStop()) return false;
  std::vector<int> order = OrderAtoms(*store_, q);
  std::vector<rdf::TermId> bindings(q.num_vars(), kUnbound);
  // Resource-constrained variables (reformulation rules 3/7) reject
  // literal bindings: a literal cannot be the subject of an entailed
  // rdf:type triple.
  std::vector<char> resource_only(q.num_vars(), 0);
  for (VarId v : q.resource_vars()) resource_only[v] = 1;
  const rdf::Dictionary& dict = store_->dict();

  // Cancellation state of this evaluation: once `stopped` flips, every
  // pending scan callback returns immediately, unwinding the join without
  // emitting further rows. The token is polled every kCancelStride scan
  // deliveries, bounding the overrun of a runaway CQ (the store's Scan has
  // no early exit, but the exponential cost lives in the recursion, which
  // this cuts off).
  constexpr size_t kCancelStride = 1024;
  bool stopped = false;
  size_t steps = 0;

  // Recursive index nested-loop join over the ordered atoms.
  auto emit = [&]() {
    std::vector<rdf::TermId> row;
    row.reserve(q.head().size());
    for (const QTerm& h : q.head()) {
      row.push_back(h.is_var ? bindings[h.var()] : h.term());
    }
    out->push_back(std::move(row));
  };

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == order.size()) {
      emit();
      return;
    }
    const Atom& atom = body[order[depth]];
    rdf::TermId ps = Resolve(atom.s, bindings);
    rdf::TermId pp = Resolve(atom.p, bindings);
    rdf::TermId po = Resolve(atom.o, bindings);
    store_->Scan(ps, pp, po, [&](const rdf::Triple& t) {
      if (stopped) return;
      if (++steps % kCancelStride == 0 && cancel.ShouldStop()) {
        stopped = true;
        return;
      }
      // Bind free variables, honoring repeated variables within the atom.
      VarId newly[3];
      int num_new = 0;
      auto bind = [&](const QTerm& qt, rdf::TermId value) -> bool {
        if (!qt.is_var) return true;  // matched by the scan pattern
        rdf::TermId& slot = bindings[qt.var()];
        if (slot == kUnbound) {
          if (resource_only[qt.var()] && dict.Lookup(value).is_literal()) {
            return false;
          }
          slot = value;
          newly[num_new++] = qt.var();
          return true;
        }
        return slot == value;
      };
      bool ok = bind(atom.s, t.s) && bind(atom.p, t.p) && bind(atom.o, t.o);
      if (ok) recurse(depth + 1);
      for (int k = 0; k < num_new; ++k) bindings[newly[k]] = kUnbound;
    });
  };
  recurse(0);
  return !stopped;
}

Table Evaluator::EvaluateCq(const Cq& q) const {
  Table table;
  for (const QTerm& h : q.head()) {
    table.columns.push_back(h.is_var ? h.var() : kConstColumn);
  }
  // A default CancelToken never fires, so the evaluation runs to
  // completion unconditionally.
  const bool complete = EvaluateCqInto(q, CancelToken(), &table.rows);
  assert(complete);
  (void)complete;
  table.Dedup();
  return table;
}

Table Evaluator::EvaluateUcq(const query::Ucq& ucq) const {
  // An infinite deadline never fails.
  return EvaluateUcq(ucq, Deadline::Infinite()).value();
}

Result<Table> Evaluator::EvaluateUcq(const query::Ucq& ucq,
                                     const Deadline& deadline) const {
  Table table;
  if (!ucq.empty()) {
    for (const QTerm& h : ucq.members()[0].head()) {
      table.columns.push_back(h.is_var ? h.var() : kConstColumn);
    }
  }
  if (threads_ <= 1 || ucq.size() < 2) {
    return EvaluateUcqSequential(ucq, deadline, std::move(table));
  }
  return EvaluateUcqParallel(ucq, deadline, std::move(table));
}

Result<Table> Evaluator::EvaluateUcqSequential(const query::Ucq& ucq,
                                               const Deadline& deadline,
                                               Table table) const {
  CancelToken token(&deadline);
  size_t evaluated = 0;
  for (const Cq& member : ucq.members()) {
    if (deadline.expired() ||
        !EvaluateCqInto(member, token, &table.rows)) {
      return UcqDeadlineError(evaluated, ucq.size());
    }
    ++evaluated;
  }
  table.Dedup();
  return table;
}

Result<Table> Evaluator::EvaluateUcqParallel(const query::Ucq& ucq,
                                             const Deadline& deadline,
                                             Table table) const {
  const size_t n = ucq.size();
  // One contiguous chunk per thread: concurrency is honestly bounded by
  // the `threads` knob, and concatenating the chunk buffers in chunk order
  // reproduces the sequential append order exactly — so the single dedup
  // below yields a bit-identical table.
  const size_t chunks = std::min(n, static_cast<size_t>(threads_));
  const std::vector<std::pair<size_t, size_t>> ranges = SplitRanges(n, chunks);
  std::vector<std::vector<std::vector<rdf::TermId>>> buffers(chunks);
  std::atomic<bool> stop{false};
  std::atomic<size_t> completed{0};
  CancelToken token(&deadline, &stop);
  common::ThreadPool::Shared().ParallelFor(chunks, [&](size_t c) {
    auto [lo, hi] = ranges[c];
    for (size_t i = lo; i < hi; ++i) {
      // CQ-boundary check: stop promptly when a sibling chunk saw the
      // deadline expire (or it expired here).
      if (token.ShouldStop()) return;
      if (!EvaluateCqInto(ucq.members()[i], token, &buffers[c])) return;
      completed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  if (stop.load(std::memory_order_relaxed)) {
    return UcqDeadlineError(completed.load(std::memory_order_relaxed), n);
  }
  size_t total = table.rows.size();
  for (const auto& buffer : buffers) total += buffer.size();
  table.rows.reserve(total);
  for (auto& buffer : buffers) {
    for (auto& row : buffer) table.rows.push_back(std::move(row));
  }
  table.Dedup();
  return table;
}

Table Evaluator::EvaluateJucq(const Cq& q,
                              const std::vector<Cq>& fragment_queries,
                              const std::vector<query::Ucq>& fragment_ucqs,
                              JucqProfile* profile) const {
  return EvaluateJucq(q, fragment_queries, fragment_ucqs, Deadline::Infinite(),
                      profile)
      .value();
}

Result<Table> Evaluator::EvaluateJucq(
    const Cq& q, const std::vector<Cq>& fragment_queries,
    const std::vector<query::Ucq>& fragment_ucqs, const Deadline& deadline,
    JucqProfile* profile) const {
  Timer total;
  const size_t nf = fragment_ucqs.size();

  // 1. Materialize every fragment (one pool task per fragment when
  // parallel; each task's member loop may itself run parallel chunks).
  std::vector<std::optional<Result<Table>>> materialized(nf);
  std::vector<double> fragment_millis(nf, 0.0);
  auto materialize_one = [&](size_t i) {
    Timer t;
    materialized[i] = EvaluateUcq(fragment_ucqs[i], deadline);
    fragment_millis[i] = t.ElapsedMillis();
  };
  if (threads_ > 1 && nf > 1) {
    common::ThreadPool::Shared().ParallelFor(nf, materialize_one);
  } else {
    for (size_t i = 0; i < nf; ++i) {
      materialize_one(i);
      if (!materialized[i]->ok()) break;  // remaining fragments unevaluated
    }
  }

  // Assemble in fragment order: deterministic profiles and tables, and the
  // lowest-indexed failure wins when several fragments hit the deadline.
  std::vector<Table> tables;
  tables.reserve(nf);
  for (size_t i = 0; i < nf; ++i) {
    if (!materialized[i].has_value()) continue;  // after a sequential abort
    if (!materialized[i]->ok()) {
      // Partial profile: the fragments materialized so far stay recorded.
      if (profile != nullptr) profile->total_millis = total.ElapsedMillis();
      return Status(materialized[i]->status().code(),
                    "fragment " + std::to_string(i) + ": " +
                        materialized[i]->status().message());
    }
    Table table = std::move(*materialized[i]).value();
    // Columns must reflect the *fragment query* head terms (member heads
    // may have constants substituted in, but slot j is still the value of
    // head slot j of the fragment subquery). A constant head slot carries
    // no variable: it gets the same sentinel EvaluateCq uses, so it can
    // never alias a real VarId during the fragment joins.
    table.columns.clear();
    for (const QTerm& h : fragment_queries[i].head()) {
      table.columns.push_back(h.is_var ? h.var() : kConstColumn);
    }
    if (profile != nullptr) {
      FragmentProfile fp;
      fp.cover_fragment = FragmentLabel(q, fragment_queries[i]);
      fp.ucq_members = fragment_ucqs[i].size();
      fp.result_rows = table.NumRows();
      fp.millis = fragment_millis[i];
      profile->fragments.push_back(fp);
    }
    tables.push_back(std::move(table));
  }

  // 2. Join fragments: start from the smallest, then greedily pick the
  // smallest fragment *connected* to the joined columns (avoiding cross
  // products, as an RDBMS join-order heuristic would).
  if (deadline.expired()) {
    if (profile != nullptr) profile->total_millis = total.ElapsedMillis();
    return Status::DeadlineExceeded(
        "deadline exceeded before the fragment join");
  }
  Timer join_timer;
  Table result;
  if (!tables.empty()) {
    std::vector<bool> joined(tables.size(), false);
    size_t first = 0;
    for (size_t i = 1; i < tables.size(); ++i) {
      if (tables[i].NumRows() < tables[first].NumRows()) first = i;
    }
    joined[first] = true;
    std::set<VarId> joined_cols(tables[first].columns.begin(),
                                tables[first].columns.end());
    result = std::move(tables[first]);
    for (size_t step = 1; step < tables.size(); ++step) {
      int best = -1;
      bool best_connected = false;
      for (size_t i = 0; i < tables.size(); ++i) {
        if (joined[i]) continue;
        bool connected =
            std::any_of(tables[i].columns.begin(), tables[i].columns.end(),
                        [&](VarId v) { return joined_cols.count(v) > 0; });
        if (best == -1 || (connected && !best_connected) ||
            (connected == best_connected &&
             tables[i].NumRows() <
                 tables[static_cast<size_t>(best)].NumRows())) {
          best = static_cast<int>(i);
          best_connected = connected;
        }
      }
      joined[static_cast<size_t>(best)] = true;
      joined_cols.insert(tables[static_cast<size_t>(best)].columns.begin(),
                         tables[static_cast<size_t>(best)].columns.end());
      result = HashJoin(result, tables[static_cast<size_t>(best)]);
    }
  }

  // 3. Project the original head.
  Table answer;
  for (const QTerm& h : q.head()) {
    answer.columns.push_back(h.is_var ? h.var() : kConstColumn);
  }
  std::vector<int> proj;
  proj.reserve(q.head().size());
  for (const QTerm& h : q.head()) {
    proj.push_back(h.is_var ? result.ColumnOf(h.var()) : -1);
  }
  answer.rows.reserve(result.rows.size());
  for (const std::vector<rdf::TermId>& row : result.rows) {
    std::vector<rdf::TermId> out;
    out.reserve(proj.size());
    for (size_t i = 0; i < proj.size(); ++i) {
      out.push_back(proj[i] >= 0 ? row[proj[i]] : q.head()[i].term());
    }
    answer.rows.push_back(std::move(out));
  }
  answer.Dedup();
  if (profile != nullptr) {
    profile->join_millis = join_timer.ElapsedMillis();
    profile->total_millis = total.ElapsedMillis();
  }
  return answer;
}

}  // namespace engine
}  // namespace rdfref
