#include "engine/evaluator.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>
#include <sstream>

#include "common/timer.h"
#include "storage/store.h"

namespace rdfref {
namespace engine {

namespace {

using query::Atom;
using query::Cq;
using query::QTerm;
using query::VarId;

constexpr rdf::TermId kUnbound = rdf::kInvalidTermId;

// Resolves a query term under the current bindings: a constant, a bound
// variable's value, or kAny when still free.
rdf::TermId Resolve(const QTerm& t, const std::vector<rdf::TermId>& bindings) {
  if (!t.is_var) return t.term();
  rdf::TermId v = bindings[t.var()];
  return v == kUnbound ? storage::kAny : v;
}

// Greedy join order: start from the atom with the smallest index-estimated
// match count (variables wildcarded), then repeatedly append the
// smallest-count atom connected to the already-ordered ones.
std::vector<int> OrderAtoms(const storage::TripleSource& store, const Cq& q) {
  const std::vector<Atom>& body = q.body();
  const int n = static_cast<int>(body.size());
  std::vector<uint64_t> base(n);
  for (int i = 0; i < n; ++i) {
    rdf::TermId s = body[i].s.is_var ? storage::kAny : body[i].s.term();
    rdf::TermId p = body[i].p.is_var ? storage::kAny : body[i].p.term();
    rdf::TermId o = body[i].o.is_var ? storage::kAny : body[i].o.term();
    base[i] = store.CountMatches(s, p, o);
  }
  std::vector<int> order;
  std::vector<bool> used(n, false);
  std::set<VarId> bound_vars;
  for (int step = 0; step < n; ++step) {
    int best = -1;
    uint64_t best_count = std::numeric_limits<uint64_t>::max();
    bool best_connected = false;
    for (int i = 0; i < n; ++i) {
      if (used[i]) continue;
      std::set<VarId> vars = Cq::AtomVars(body[i]);
      bool connected =
          step == 0 || std::any_of(vars.begin(), vars.end(), [&](VarId v) {
            return bound_vars.count(v) > 0;
          });
      // Prefer connected atoms; among equals, the smaller base count.
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected && base[i] < best_count)) {
        best = i;
        best_count = base[i];
        best_connected = connected;
      }
    }
    used[best] = true;
    order.push_back(best);
    std::set<VarId> vars = Cq::AtomVars(body[best]);
    bound_vars.insert(vars.begin(), vars.end());
  }
  return order;
}

}  // namespace

std::vector<int> Evaluator::AtomOrder(const query::Cq& q) const {
  return OrderAtoms(*store_, q);
}

std::string Evaluator::ExplainCq(const Cq& q) const {
  std::ostringstream out;
  std::vector<int> order = AtomOrder(q);
  out << "CQ plan (index nested-loop join):\n";
  for (size_t depth = 0; depth < order.size(); ++depth) {
    const Atom& atom = q.body()[order[depth]];
    rdf::TermId s = atom.s.is_var ? storage::kAny : atom.s.term();
    rdf::TermId p = atom.p.is_var ? storage::kAny : atom.p.term();
    rdf::TermId o = atom.o.is_var ? storage::kAny : atom.o.term();
    out << "  " << (depth == 0 ? "scan " : "probe") << " t"
        << order[depth] << "  (~" << store_->CountMatches(s, p, o)
        << " index matches unbound)\n";
  }
  return out.str();
}

std::string Evaluator::ExplainJucq(
    const Cq& q, const std::vector<Cq>& fragment_queries,
    const std::vector<query::Ucq>& fragment_ucqs) const {
  (void)q;
  std::ostringstream out;
  out << "JUCQ plan: materialize " << fragment_queries.size()
      << " fragment(s), then hash-join smallest-connected-first:\n";
  for (size_t i = 0; i < fragment_queries.size(); ++i) {
    out << "  fragment " << i << ": UCQ of " << fragment_ucqs[i].size()
        << " CQ(s), head arity " << fragment_queries[i].head().size()
        << "\n";
    if (!fragment_ucqs[i].empty()) {
      out << "    first member plan:\n";
      std::string member = ExplainCq(fragment_ucqs[i].members()[0]);
      // Indent the nested plan.
      size_t pos = 0;
      while ((pos = member.find('\n', pos)) != std::string::npos &&
             pos + 1 < member.size()) {
        member.insert(pos + 1, "    ");
        pos += 5;
      }
      out << "    " << member;
    }
  }
  return out.str();
}

void Evaluator::EvaluateCqInto(
    const Cq& q, std::vector<std::vector<rdf::TermId>>* out) const {
  const std::vector<Atom>& body = q.body();
  if (body.empty()) return;
  std::vector<int> order = OrderAtoms(*store_, q);
  std::vector<rdf::TermId> bindings(q.num_vars(), kUnbound);
  // Resource-constrained variables (reformulation rules 3/7) reject
  // literal bindings: a literal cannot be the subject of an entailed
  // rdf:type triple.
  std::vector<char> resource_only(q.num_vars(), 0);
  for (VarId v : q.resource_vars()) resource_only[v] = 1;
  const rdf::Dictionary& dict = store_->dict();

  // Recursive index nested-loop join over the ordered atoms.
  auto emit = [&]() {
    std::vector<rdf::TermId> row;
    row.reserve(q.head().size());
    for (const QTerm& h : q.head()) {
      row.push_back(h.is_var ? bindings[h.var()] : h.term());
    }
    out->push_back(std::move(row));
  };

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == order.size()) {
      emit();
      return;
    }
    const Atom& atom = body[order[depth]];
    rdf::TermId ps = Resolve(atom.s, bindings);
    rdf::TermId pp = Resolve(atom.p, bindings);
    rdf::TermId po = Resolve(atom.o, bindings);
    store_->Scan(ps, pp, po, [&](const rdf::Triple& t) {
      // Bind free variables, honoring repeated variables within the atom.
      VarId newly[3];
      int num_new = 0;
      auto bind = [&](const QTerm& qt, rdf::TermId value) -> bool {
        if (!qt.is_var) return true;  // matched by the scan pattern
        rdf::TermId& slot = bindings[qt.var()];
        if (slot == kUnbound) {
          if (resource_only[qt.var()] && dict.Lookup(value).is_literal()) {
            return false;
          }
          slot = value;
          newly[num_new++] = qt.var();
          return true;
        }
        return slot == value;
      };
      bool ok = bind(atom.s, t.s) && bind(atom.p, t.p) && bind(atom.o, t.o);
      if (ok) recurse(depth + 1);
      for (int k = 0; k < num_new; ++k) bindings[newly[k]] = kUnbound;
    });
  };
  recurse(0);
}

Table Evaluator::EvaluateCq(const Cq& q) const {
  Table table;
  for (const QTerm& h : q.head()) {
    table.columns.push_back(h.is_var ? h.var()
                                     : std::numeric_limits<VarId>::max());
  }
  EvaluateCqInto(q, &table.rows);
  table.Dedup();
  return table;
}

Table Evaluator::EvaluateUcq(const query::Ucq& ucq) const {
  // An infinite deadline never fails.
  return EvaluateUcq(ucq, Deadline::Infinite()).value();
}

Result<Table> Evaluator::EvaluateUcq(const query::Ucq& ucq,
                                     const Deadline& deadline) const {
  Table table;
  if (!ucq.empty()) {
    for (const QTerm& h : ucq.members()[0].head()) {
      table.columns.push_back(h.is_var ? h.var()
                                       : std::numeric_limits<VarId>::max());
    }
  }
  size_t evaluated = 0;
  for (const Cq& member : ucq.members()) {
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          "deadline exceeded after " + std::to_string(evaluated) + " of " +
          std::to_string(ucq.size()) + " reformulation CQs");
    }
    EvaluateCqInto(member, &table.rows);
    ++evaluated;
  }
  table.Dedup();
  return table;
}

Table Evaluator::EvaluateJucq(const Cq& q,
                              const std::vector<Cq>& fragment_queries,
                              const std::vector<query::Ucq>& fragment_ucqs,
                              JucqProfile* profile) const {
  return EvaluateJucq(q, fragment_queries, fragment_ucqs, Deadline::Infinite(),
                      profile)
      .value();
}

Result<Table> Evaluator::EvaluateJucq(
    const Cq& q, const std::vector<Cq>& fragment_queries,
    const std::vector<query::Ucq>& fragment_ucqs, const Deadline& deadline,
    JucqProfile* profile) const {
  Timer total;
  // 1. Materialize every fragment.
  std::vector<Table> tables;
  tables.reserve(fragment_ucqs.size());
  for (size_t i = 0; i < fragment_ucqs.size(); ++i) {
    Timer t;
    Result<Table> fragment = EvaluateUcq(fragment_ucqs[i], deadline);
    if (!fragment.ok()) {
      // Partial profile: the fragments materialized so far stay recorded.
      if (profile != nullptr) profile->total_millis = total.ElapsedMillis();
      return Status(fragment.status().code(),
                    "fragment " + std::to_string(i) + ": " +
                        fragment.status().message());
    }
    Table table = std::move(fragment).value();
    // Columns must reflect the *fragment query* head variables (member
    // heads may have constants substituted in, but slot i is still the
    // value of head variable i of the fragment subquery).
    table.columns.clear();
    for (const QTerm& h : fragment_queries[i].head()) {
      table.columns.push_back(h.var());
    }
    if (profile != nullptr) {
      FragmentProfile fp;
      fp.ucq_members = fragment_ucqs[i].size();
      fp.result_rows = table.NumRows();
      fp.millis = t.ElapsedMillis();
      profile->fragments.push_back(fp);
    }
    tables.push_back(std::move(table));
  }

  // 2. Join fragments: start from the smallest, then greedily pick the
  // smallest fragment *connected* to the joined columns (avoiding cross
  // products, as an RDBMS join-order heuristic would).
  if (deadline.expired()) {
    if (profile != nullptr) profile->total_millis = total.ElapsedMillis();
    return Status::DeadlineExceeded(
        "deadline exceeded before the fragment join");
  }
  Timer join_timer;
  std::vector<bool> joined(tables.size(), false);
  size_t first = 0;
  for (size_t i = 1; i < tables.size(); ++i) {
    if (tables[i].NumRows() < tables[first].NumRows()) first = i;
  }
  joined[first] = true;
  std::set<VarId> joined_cols(tables[first].columns.begin(),
                              tables[first].columns.end());
  Table result = std::move(tables[first]);
  for (size_t step = 1; step < tables.size(); ++step) {
    int best = -1;
    bool best_connected = false;
    for (size_t i = 0; i < tables.size(); ++i) {
      if (joined[i]) continue;
      bool connected =
          std::any_of(tables[i].columns.begin(), tables[i].columns.end(),
                      [&](VarId v) { return joined_cols.count(v) > 0; });
      if (best == -1 || (connected && !best_connected) ||
          (connected == best_connected &&
           tables[i].NumRows() <
               tables[static_cast<size_t>(best)].NumRows())) {
        best = static_cast<int>(i);
        best_connected = connected;
      }
    }
    joined[static_cast<size_t>(best)] = true;
    joined_cols.insert(tables[static_cast<size_t>(best)].columns.begin(),
                       tables[static_cast<size_t>(best)].columns.end());
    result = HashJoin(result, tables[static_cast<size_t>(best)]);
  }

  // 3. Project the original head.
  Table answer;
  for (const QTerm& h : q.head()) {
    answer.columns.push_back(h.is_var ? h.var()
                                      : std::numeric_limits<VarId>::max());
  }
  std::vector<int> proj;
  proj.reserve(q.head().size());
  for (const QTerm& h : q.head()) {
    proj.push_back(h.is_var ? result.ColumnOf(h.var()) : -1);
  }
  answer.rows.reserve(result.rows.size());
  for (const std::vector<rdf::TermId>& row : result.rows) {
    std::vector<rdf::TermId> out;
    out.reserve(proj.size());
    for (size_t i = 0; i < proj.size(); ++i) {
      out.push_back(proj[i] >= 0 ? row[proj[i]] : q.head()[i].term());
    }
    answer.rows.push_back(std::move(out));
  }
  answer.Dedup();
  if (profile != nullptr) {
    profile->join_millis = join_timer.ElapsedMillis();
    profile->total_millis = total.ElapsedMillis();
  }
  return answer;
}

}  // namespace engine
}  // namespace rdfref
