#include "engine/view_cache.h"

#include <algorithm>
#include <tuple>
#include <utility>

#include "query/canonical.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace engine {

namespace {

std::tuple<rdf::TermId, rdf::TermId, rdf::TermId, uint8_t, rdf::TermId,
           rdf::TermId>
PatternTuple(const ViewFootprint::Pattern& p) {
  return {p.s, p.p, p.o, p.range_pos, p.range_lo, p.range_hi};
}

}  // namespace

// ---------------------------------------------------------------------------
// ViewFootprint
// ---------------------------------------------------------------------------

void ViewFootprint::AddCq(const query::Cq& q) {
  for (const query::Atom& a : q.body()) {
    Pattern pat;
    pat.s = a.s.is_var ? storage::kAny : a.s.term();
    pat.p = a.p.is_var ? storage::kAny : a.p.term();
    pat.o = a.o.is_var ? storage::kAny : a.o.term();
    pat.range_pos = a.range_pos;
    pat.range_lo = a.has_range() ? a.range_lo() : 0;
    pat.range_hi = a.range_hi;
    patterns_.push_back(pat);
    if (a.range_pos == query::Atom::kRangeP || a.p.is_var) {
      any_property_ = true;
    } else {
      properties_.insert(a.p.term());
    }
  }
  std::sort(patterns_.begin(), patterns_.end(),
            [](const Pattern& x, const Pattern& y) {
              return PatternTuple(x) < PatternTuple(y);
            });
  patterns_.erase(std::unique(patterns_.begin(), patterns_.end(),
                              [](const Pattern& x, const Pattern& y) {
                                return PatternTuple(x) == PatternTuple(y);
                              }),
                  patterns_.end());
}

void ViewFootprint::AddUcq(const query::Ucq& ucq) {
  for (const query::Cq& member : ucq.members()) AddCq(member);
}

bool ViewFootprint::MayTouch(const rdf::Triple& t) const {
  if (!any_property_ && properties_.find(t.p) == properties_.end()) {
    return false;
  }
  for (const Pattern& pat : patterns_) {
    bool s_ok = pat.s == storage::kAny || pat.s == t.s;
    bool p_ok = pat.range_pos == query::Atom::kRangeP
                    ? (t.p >= pat.range_lo && t.p <= pat.range_hi)
                    : (pat.p == storage::kAny || pat.p == t.p);
    bool o_ok = pat.range_pos == query::Atom::kRangeO
                    ? (t.o >= pat.range_lo && t.o <= pat.range_hi)
                    : (pat.o == storage::kAny || pat.o == t.o);
    if (s_ok && p_ok && o_ok) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// ViewCache::Stored
// ---------------------------------------------------------------------------

Table ViewCache::Stored::Materialize() const {
  if (!factorized) {
    Table out = flat;
    out.columns = columns;
    return out;
  }
  Table out;
  out.columns = columns;
  out.SetArity(arity);
  out.ReserveRows(rows);
  const size_t trail = arity - 1;
  size_t row = 0;
  for (size_t i = 0; i < lead.size(); ++i) {
    for (uint32_t k = 0; k < run_length[i]; ++k) {
      rdf::TermId* slots = out.AppendUninitialized();
      slots[0] = lead[i];
      std::copy(rest.begin() + row * trail, rest.begin() + (row + 1) * trail,
                slots + 1);
      ++row;
    }
  }
  return out;
}

ViewCache::Stored ViewCache::Encode(const Table& result) const {
  Stored s;
  s.columns = result.columns;
  s.arity = result.arity();
  s.rows = result.NumRows();
  const size_t flat_bytes = result.data().size() * sizeof(rdf::TermId) +
                            s.columns.size() * sizeof(query::VarId) +
                            sizeof(Entry);
  if (s.arity >= 2 && s.rows >= options_.factorize_min_rows) {
    // Count adjacent lead-column runs: nested-loop emission naturally
    // groups rows by their first binding, so high-fanout answers collapse.
    size_t runs = 0;
    const std::vector<rdf::TermId>& data = result.data();
    for (size_t r = 0; r < s.rows; ++r) {
      if (r == 0 || data[r * s.arity] != data[(r - 1) * s.arity]) ++runs;
    }
    const size_t fact_bytes =
        runs * (sizeof(rdf::TermId) + sizeof(uint32_t)) +
        s.rows * (s.arity - 1) * sizeof(rdf::TermId) +
        s.columns.size() * sizeof(query::VarId) + sizeof(Entry);
    if (runs * 2 <= s.rows) {
      s.factorized = true;
      s.lead.reserve(runs);
      s.run_length.reserve(runs);
      s.rest.reserve(s.rows * (s.arity - 1));
      for (size_t r = 0; r < s.rows; ++r) {
        rdf::TermId v = data[r * s.arity];
        if (s.lead.empty() || v != s.lead.back() ||
            s.run_length.back() == UINT32_MAX) {
          s.lead.push_back(v);
          s.run_length.push_back(1);
        } else {
          ++s.run_length.back();
        }
        s.rest.insert(s.rest.end(), data.begin() + r * s.arity + 1,
                      data.begin() + (r + 1) * s.arity);
      }
      s.bytes = fact_bytes;
      return s;
    }
  }
  s.flat = result;
  s.bytes = flat_bytes;
  return s;
}

// ---------------------------------------------------------------------------
// ViewCache
// ---------------------------------------------------------------------------

ViewCache::ViewCache(const ViewCacheOptions& options) : options_(options) {}

ViewKey ViewCache::KeyFor(const query::Cq& view_query,
                          const query::Ucq& plan) const {
  ViewKey key;
  key.canonical = query::Canonicalize(view_query).key;
  if (plan.empty() || plan.size() > options_.max_plan_members) return key;
  key.full = key.canonical + '|' + query::UcqPlanKey(plan);
  return key;
}

bool ViewCache::AdvanceLocked(Entry* e, uint64_t target) {
  if (target <= e->valid_hi) return true;
  if (e->capped) return false;
  // The window holds consecutive epochs front..applied_epoch_; the entry
  // needs (valid_hi, target]. When the writes just past its edge have
  // already scrolled out, the entry can never prove itself current again.
  if (writes_.empty() || writes_.front().epoch > e->valid_hi + 1) {
    e->capped = true;
    ++stats_.invalidations;
    return false;
  }
  size_t idx = static_cast<size_t>(e->valid_hi + 1 - writes_.front().epoch);
  while (e->valid_hi < target && idx < writes_.size()) {
    const WriteRec& w = writes_[idx];
    if (e->footprint.MayTouch(w.triple)) {
      e->capped = true;
      ++stats_.invalidations;
      return false;
    }
    e->valid_hi = w.epoch;
    ++idx;
  }
  return e->valid_hi >= target;
}

std::optional<Table> ViewCache::Lookup(const std::string& full_key,
                                       uint64_t epoch) {
  std::shared_ptr<Entry> hit;
  {
    common::MutexLock lock(&mu_);
    auto it = entries_.find(full_key);
    if (it == entries_.end()) {
      ++stats_.misses;
      return std::nullopt;
    }
    Entry* e = it->second.get();
    if (epoch < e->computed_epoch || !AdvanceLocked(e, epoch)) {
      ++stats_.misses;
      return std::nullopt;
    }
    ++stats_.hits;
    ++e->hits;
    e->last_use = ++tick_;
    hit = it->second;
  }
  // Payloads are immutable after install and shared_ptr-held, so the copy
  // runs outside the lock and survives a concurrent eviction.
  return hit->stored.Materialize();
}

bool ViewCache::MakeRoomLocked(size_t needed) {
  if (needed > options_.byte_budget) return false;
  while (bytes_ + needed > options_.byte_budget) {
    auto victim = entries_.end();
    // Eviction order: non-preferred before preferred, capped (dead to new
    // epochs) before live, then lowest benefit, LRU-tiebroken.
    std::tuple<bool, bool, double, uint64_t> best_score{};
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& e = *it->second;
      double benefit = e.fill_millis * (1.0 + static_cast<double>(e.hits)) /
                       static_cast<double>(e.stored.bytes ? e.stored.bytes : 1);
      std::tuple<bool, bool, double, uint64_t> score{e.preferred, !e.capped,
                                                     benefit, e.last_use};
      if (victim == entries_.end() || score < best_score) {
        victim = it;
        best_score = score;
      }
    }
    if (victim == entries_.end()) return false;
    bytes_ -= victim->second->stored.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
  }
  return true;
}

void ViewCache::Install(const ViewKey& key, uint64_t epoch,
                        const Table& result, ViewFootprint footprint,
                        double fill_millis) {
  if (!key.ok()) return;
  // Encode the payload before taking the lock: a large factorization must
  // not serialize concurrent probes (same discipline as ScanCache fills).
  auto entry = std::make_shared<Entry>();
  entry->stored = Encode(result);
  entry->footprint = std::move(footprint);
  entry->stored.bytes +=
      key.full.size() + key.canonical.size() +
      entry->footprint.patterns().size() * sizeof(ViewFootprint::Pattern);
  entry->canonical_key = key.canonical;
  entry->computed_epoch = epoch;
  entry->valid_hi = epoch;
  entry->fill_millis = fill_millis;

  common::MutexLock lock(&mu_);
  entry->preferred = preferred_.find(key.canonical) != preferred_.end();
  // Bind the window to the present if the write log can prove the result
  // unaffected by writes that landed while it was being computed.
  AdvanceLocked(entry.get(), applied_epoch_);
  auto it = entries_.find(key.full);
  if (it != entries_.end()) {
    const Entry& old = *it->second;
    // A capped incumbent below this fill's window is dead to every epoch
    // the cache will ever be probed at again: replace it, or the one
    // invalidation would poison the key forever. A live incumbent wins
    // over the racing fill (first insert wins).
    if (!(old.capped && old.valid_hi < entry->computed_epoch)) {
      ++stats_.lost_races;
      return;
    }
    bytes_ -= old.stored.bytes;
    entries_.erase(it);
  }
  if (!MakeRoomLocked(entry->stored.bytes)) {
    ++stats_.rejected;
    return;
  }
  bytes_ += entry->stored.bytes;
  ++stats_.installs;
  entries_.emplace(key.full, std::move(entry));
}

void ViewCache::OnEpochWrite(const rdf::Triple& t, uint64_t epoch,
                             bool /*added*/) {
  // Adds and removes invalidate identically: any visibility change inside
  // a view's footprint may change its answer.
  common::MutexLock lock(&mu_);
  writes_.push_back(WriteRec{epoch, t});
  while (writes_.size() > options_.write_log_window) writes_.pop_front();
  applied_epoch_ = epoch;
}

void ViewCache::SetPreferred(std::vector<std::string> canonical_keys) {
  common::MutexLock lock(&mu_);
  preferred_.clear();
  preferred_.insert(std::make_move_iterator(canonical_keys.begin()),
                    std::make_move_iterator(canonical_keys.end()));
  for (auto& [full, entry] : entries_) {
    entry->preferred = preferred_.find(entry->canonical_key) != preferred_.end();
  }
}

void ViewCache::Clear() {
  common::MutexLock lock(&mu_);
  entries_.clear();
  writes_.clear();
  applied_epoch_ = 0;
  bytes_ = 0;
}

ViewCacheStats ViewCache::Stats() const {
  common::MutexLock lock(&mu_);
  ViewCacheStats out = stats_;
  out.bytes = bytes_;
  out.entries = entries_.size();
  return out;
}

}  // namespace engine
}  // namespace rdfref
