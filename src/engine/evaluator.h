#ifndef RDFREF_ENGINE_EVALUATOR_H_
#define RDFREF_ENGINE_EVALUATOR_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/deadline.h"
#include "common/result.h"
#include "engine/table.h"
#include "query/cq.h"
#include "query/ucq.h"
#include "storage/store.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace engine {

class ScanCache;
class ViewCache;

/// \brief Per-fragment measurements of a JUCQ evaluation — the numbers the
/// demonstration displays in step 3 ("cardinalities and costs of
/// (sub)queries"), and the ones quoted by Example 1 (e.g. the 33,328,108
/// results of (t1)ref and the 2,296 rows of (t1,t3)ref).
struct FragmentProfile {
  std::string cover_fragment;  ///< e.g. "{t0,t2}"
  uint64_t ucq_members = 0;    ///< number of CQs in the fragment's UCQ
  uint64_t result_rows = 0;    ///< materialized fragment cardinality
  double millis = 0.0;         ///< fragment evaluation wall-clock
};

/// \brief Whole-JUCQ evaluation profile.
struct JucqProfile {
  std::vector<FragmentProfile> fragments;
  double join_millis = 0.0;   ///< joining + final projection
  double total_millis = 0.0;  ///< end-to-end evaluation
};

/// \brief Evaluation engine over the store — the "RDBMS" of the demo.
///
/// - CQs run as selectivity-ordered index nested-loop joins over the
///   store's permutation indexes (the plan an RDBMS would pick on a fully
///   indexed triple table). The join is an iterative binding-stack loop
///   over contiguous triple ranges (TryGetRange / ScanInto), appending
///   head tuples straight into a columnar Table arena — no std::function
///   recursion, no per-row heap allocation.
/// - Each UCQ/JUCQ evaluation shares one ScanCache across its members and
///   fragments: pattern cardinalities (the join-order inputs) and
///   materialized leaf scans are computed once per *distinct* bound
///   pattern, not once per member — reformulation unions repeat the same
///   few patterns hundreds of times.
/// - UCQs run member-by-member with union duplicate elimination. With
///   `threads > 1` the members are partitioned into contiguous chunks
///   evaluated concurrently on the shared common::ThreadPool; chunk
///   buffers are concatenated in member order before the single dedup, so
///   the answer table is bit-identical to the sequential one.
/// - JUCQs materialize each fragment UCQ (one pool task per fragment when
///   parallel) then hash-join the fragments, which is exactly the strategy
///   costed by the paper's cost model.
///
/// Deadlines are enforced cooperatively at every CQ boundary *and* inside
/// the scan callbacks of each CQ's nested-loop join, so even a single
/// enormous CQ (a cross-product-like member) cannot blow past the budget.
///
/// Evaluation accesses *only explicit triples* (this is `q(db)`, not
/// `q(db∞)`): completeness is the reformulation's job.
///
/// Thread-safety: all evaluation methods are const and concurrency-safe
/// provided the underlying TripleSource tolerates concurrent Scan /
/// CountMatches calls (true for Store, the immutable SnapshotSource —
/// which is also safe *under* concurrent writers, since the writers only
/// ever touch newer epochs — and FederatedSource).
class Evaluator {
 public:
  /// \brief `source` may be a local Store or any other TripleSource (e.g.
  /// a federation mediator); it must outlive the evaluator. `threads`
  /// bounds evaluation parallelism: 1 (the default) is the sequential
  /// path, n > 1 uses up to n concurrent tasks, and 0 resolves to
  /// common::ThreadPool::DefaultThreads().
  explicit Evaluator(const storage::TripleSource* source, int threads = 1);

  /// \brief Replaces the parallelism bound (same semantics as the
  /// constructor argument).
  void set_threads(int threads);
  int threads() const { return threads_; }

  /// \brief Attaches the process-wide cross-query view cache (DESIGN.md
  /// §15); nullptr detaches. `epoch` must be the write epoch of this
  /// evaluator's source snapshot — it scopes every probe and install, so a
  /// cached table is only ever replayed for the exact visible-triple set
  /// it was computed against. With a cache attached, EvaluateJucq probes
  /// it before materializing each fragment UCQ and installs successful
  /// materializations, and EvaluateUcqView does the same for whole
  /// reformulated unions. `cache` must outlive the evaluator.
  void set_view_cache(ViewCache* cache, uint64_t epoch) {
    view_cache_ = cache;
    view_epoch_ = epoch;
  }
  ViewCache* view_cache() const { return view_cache_; }

  /// \brief Evaluates one CQ; returns head tuples, deduplicated.
  [[nodiscard]] Table EvaluateCq(const query::Cq& q) const;

  /// \brief Evaluates a UCQ (members must share head arity).
  [[nodiscard]] Table EvaluateUcq(const query::Ucq& ucq) const;

  /// \brief Deadline-bounded UCQ evaluation: the deadline is checked at
  /// every CQ boundary and inside each CQ's scans, so an exploding
  /// reformulation (Example 1's 318,096-CQ UCQ) returns kDeadlineExceeded
  /// promptly instead of running away — even when a single member is
  /// itself enormous. The error message reports how many members were
  /// evaluated completely.
  Result<Table> EvaluateUcq(const query::Ucq& ucq,
                            const Deadline& deadline) const;

  /// \brief EvaluateUcq through the attached view cache: `q` is the user
  /// query `ucq` reformulates (its canonical form is the cache's grouping
  /// key). On a hit the cached table is replayed (relabeled with `ucq`'s
  /// head columns) without touching the store; on a miss the union is
  /// evaluated normally and, when it succeeds, installed. Without an
  /// attached cache this is exactly EvaluateUcq. Answers are bit-identical
  /// to the uncached path in every case.
  Result<Table> EvaluateUcqView(const query::Cq& q, const query::Ucq& ucq,
                                const Deadline& deadline) const;

  /// \brief Evaluates a JUCQ: `fragment_queries[i]` is the (unreformulated)
  /// subquery of fragment i — its head gives the column variables — and
  /// `fragment_ucqs[i]` its UCQ reformulation. Joins all fragment tables
  /// and projects `q`'s head. `profile` may be null; when given, each
  /// FragmentProfile::cover_fragment is labeled with the fragment's atom
  /// indexes in `q` (e.g. "{t0,t2}").
  [[nodiscard]] Table EvaluateJucq(const query::Cq& q,
                     const std::vector<query::Cq>& fragment_queries,
                     const std::vector<query::Ucq>& fragment_ucqs,
                     JucqProfile* profile = nullptr) const;

  /// \brief Deadline-bounded JUCQ evaluation (covers SCQ as the
  /// all-singleton cover). Checked at CQ boundaries and inside scans
  /// within each fragment, and at fragment boundaries; on
  /// kDeadlineExceeded `profile` holds the partial profile of the
  /// fragments that completed (in the sequential path, the completed
  /// prefix; in the parallel path, every fragment that finished before
  /// cancellation, in fragment order).
  Result<Table> EvaluateJucq(const query::Cq& q,
                             const std::vector<query::Cq>& fragment_queries,
                             const std::vector<query::Ucq>& fragment_ucqs,
                             const Deadline& deadline,
                             JucqProfile* profile = nullptr) const;

  /// \brief The greedy join order the engine will use for q's atoms
  /// (indexes into q.body()) — exposed for plan inspection.
  std::vector<int> AtomOrder(const query::Cq& q) const;

  /// \brief Renders the physical plan of a CQ: the ordered index scans
  /// with their estimated match counts (demo step 3, "inspect the chosen
  /// query plan").
  std::string ExplainCq(const query::Cq& q) const;

  /// \brief Renders the JUCQ plan: per-fragment UCQ sizes and the
  /// fragment hash-join order.
  std::string ExplainJucq(const query::Cq& q,
                          const std::vector<query::Cq>& fragment_queries,
                          const std::vector<query::Ucq>& fragment_ucqs) const;

  const storage::TripleSource& source() const RDFREF_LIFETIME_BOUND {
    return *store_;
  }

 private:
  // Appends q's answer rows (head tuples) to `out` (no dedup), resolving
  // counts and leaf scans through `cache`. Returns false iff the cancel
  // token fired mid-evaluation (rows appended so far are then an unusable
  // partial result).
  [[nodiscard]] bool EvaluateCqInto(const query::Cq& q,
                                    const CancelToken& cancel,
                                    ScanCache* cache, Table* out) const;

  // Deadline-bounded UCQ evaluation over a caller-owned scan cache (the
  // JUCQ path shares one cache across all fragment UCQs).
  Result<Table> EvaluateUcqWithCache(const query::Ucq& ucq,
                                     const Deadline& deadline,
                                     ScanCache* cache) const;

  // Sequential / parallel bodies of the deadline-bounded EvaluateUcq.
  Result<Table> EvaluateUcqSequential(const query::Ucq& ucq,
                                      const Deadline& deadline,
                                      ScanCache* cache, Table table) const;
  Result<Table> EvaluateUcqParallel(const query::Ucq& ucq,
                                    const Deadline& deadline,
                                    ScanCache* cache, Table table) const;

  const storage::TripleSource* store_;
  int threads_;
  ViewCache* view_cache_ = nullptr;  // not owned; optional
  uint64_t view_epoch_ = 0;          // source snapshot epoch for the cache
};

}  // namespace engine
}  // namespace rdfref

#endif  // RDFREF_ENGINE_EVALUATOR_H_
