#ifndef RDFREF_ENGINE_TABLE_H_
#define RDFREF_ENGINE_TABLE_H_

#include <string>
#include <vector>

#include "common/hash.h"
#include "query/cq.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfref {
namespace engine {

/// \brief Hash functor for a result row (vector of TermIds).
struct RowHash {
  size_t operator()(const std::vector<rdf::TermId>& row) const {
    size_t seed = 0x51ed270b;
    for (rdf::TermId id : row) seed = HashCombine(seed, id);
    return seed;
  }
};

/// \brief A materialized intermediate or final result: a bag of rows with
/// one column per (fragment-)head slot.
///
/// `columns` carries the VarId of each column for fragment tables, so the
/// JUCQ join can match columns across fragments; for final query answers
/// the columns are positional and `columns` mirrors the head slots that are
/// variables (constant head slots still produce a value in every row).
struct Table {
  std::vector<query::VarId> columns;
  std::vector<std::vector<rdf::TermId>> rows;

  size_t NumRows() const { return rows.size(); }

  /// \brief Index of the column bound to variable v, or -1.
  int ColumnOf(query::VarId v) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == v) return static_cast<int>(i);
    }
    return -1;
  }

  /// \brief Removes duplicate rows (set semantics).
  void Dedup();

  /// \brief Sorts rows lexicographically (deterministic output for tests).
  void Sort();

  /// \brief Renders up to `max_rows` rows with dictionary-decoded values.
  std::string ToString(const rdf::Dictionary& dict,
                       size_t max_rows = 20) const;
};

/// \brief Hash-joins two tables on their shared columns (natural join).
/// With no shared column this is the cross product. Output columns are
/// left.columns followed by the non-shared right columns.
Table HashJoin(const Table& left, const Table& right);

}  // namespace engine
}  // namespace rdfref

#endif  // RDFREF_ENGINE_TABLE_H_
