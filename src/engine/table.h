#ifndef RDFREF_ENGINE_TABLE_H_
#define RDFREF_ENGINE_TABLE_H_

#include <cstddef>
#include <initializer_list>
#include <limits>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "common/annotations.h"
#include "common/hash.h"
#include "query/cq.h"
#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfref {
namespace engine {

/// \brief Column sentinel for constant head slots: a constant head slot
/// carries no variable, so its `columns` entry is this value — the maximum
/// VarId, which can never alias a real variable during fragment joins.
inline constexpr query::VarId kConstColumn =
    std::numeric_limits<query::VarId>::max();

/// \brief Hash functor for a materialized row (vector of TermIds). The
/// Table itself hashes stride slices in place; this functor remains for
/// callers that still key containers on row vectors (e.g. the semi-naive
/// Datalog fact set).
struct RowHash {
  size_t operator()(const std::vector<rdf::TermId>& row) const {
    size_t seed = 0x51ed270b;
    for (rdf::TermId id : row) seed = HashCombine(seed, id);
    return seed;
  }
};

/// \brief A materialized intermediate or final result: a bag of fixed-arity
/// rows stored columnar-batch style in one contiguous arena.
///
/// Rows live back to back in a single `std::vector<rdf::TermId>` with an
/// arity stride — one allocation per table instead of one per row — and are
/// viewed as stride slices (`std::span`). Dedup, hash join and projection
/// hash and copy slices in place, so the execution core never materializes
/// a per-row heap object.
///
/// `columns` carries the VarId of each column for fragment tables, so the
/// JUCQ join can match columns across fragments; for final query answers
/// the columns are positional and `columns` mirrors the head slots that are
/// variables (constant head slots still produce a value in every row).
///
/// Arity is fixed by the first append (or an explicit SetArity) and every
/// later row must match it. Zero-arity rows (boolean queries) carry no
/// values, so the table tracks their count explicitly.
class Table {
 public:
  std::vector<query::VarId> columns;

  Table() = default;

  /// \brief Builds a table from row vectors (test/bridge convenience; the
  /// hot paths append into the arena directly). Every row must share one
  /// arity.
  static Table FromRows(std::vector<query::VarId> cols,
                        const std::vector<std::vector<rdf::TermId>>& rows);

  /// \brief Index of the column bound to variable v, or -1.
  int ColumnOf(query::VarId v) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i] == v) return static_cast<int>(i);
    }
    return -1;
  }

  /// \brief Number of rows (valid for every arity, including zero).
  size_t NumRows() const {
    return arity_ == 0 ? zero_arity_rows_ : data_.size() / arity_;
  }
  bool empty() const { return NumRows() == 0; }

  /// \brief Values per row. Zero both for an empty fresh table and for
  /// genuine zero-arity rows; has_arity() tells them apart.
  size_t arity() const { return arity_; }
  bool has_arity() const { return arity_set_; }

  /// \brief Fixes the row stride before the first append. Re-setting to a
  /// different arity is only legal while the table has no rows.
  void SetArity(size_t arity);

  /// \brief Stride-slice view of row `i` (empty span for zero arity).
  std::span<const rdf::TermId> row(size_t i) const RDFREF_LIFETIME_BOUND {
    return {data_.data() + i * arity_, arity_};
  }

  /// \brief Mutable view of row `i` (testing hooks / answer mutators).
  std::span<rdf::TermId> MutableRow(size_t i) RDFREF_LIFETIME_BOUND {
    return {data_.data() + i * arity_, arity_};
  }

  /// \brief Hot-path append: grows the arena by one row and returns the
  /// pointer to its `arity()` uninitialized slots (nullptr for zero-arity
  /// rows, whose count is still bumped). SetArity must have been called.
  rdf::TermId* AppendUninitialized() RDFREF_LIFETIME_BOUND {
    if (arity_ == 0) {
      ++zero_arity_rows_;
      return nullptr;
    }
    size_t old = data_.size();
    data_.resize(old + arity_);
    return data_.data() + old;
  }

  /// \brief Appends one row; infers the arity on the first append.
  void AppendRow(std::span<const rdf::TermId> values);
  void AppendRow(std::initializer_list<rdf::TermId> values) {
    AppendRow(std::span<const rdf::TermId>(values.begin(), values.size()));
  }

  /// \brief Drops the last row (testing hooks / answer mutators).
  void RemoveLastRow();

  /// \brief Reserves arena capacity for `n` more rows (no-op until the
  /// arity is known).
  void ReserveRows(size_t n) {
    if (arity_ > 0) data_.reserve(data_.size() + n * arity_);
  }

  /// \brief Concatenates another table's rows (bag union; no dedup). The
  /// arities must agree unless one side is empty with no fixed arity.
  void Append(const Table& other);

  /// \brief The raw arena: NumRows() * arity() ids, row-major.
  const std::vector<rdf::TermId>& data() const RDFREF_LIFETIME_BOUND {
    return data_;
  }

  /// \brief Materializes rows as vectors (tests, diagnostics — not hot).
  std::vector<std::vector<rdf::TermId>> RowVectors() const;

  /// \brief Materializes rows as a set (set-semantics comparisons in
  /// tests and repro snippets).
  std::set<std::vector<rdf::TermId>> RowSet() const;

  /// \brief Removes duplicate rows (set semantics), keeping first
  /// occurrences in order; in place, one hash-set allocation total.
  void Dedup();

  /// \brief Sorts rows lexicographically (deterministic output for tests).
  void Sort();

  /// \brief Renders up to `max_rows` rows with dictionary-decoded values.
  std::string ToString(const rdf::Dictionary& dict,
                       size_t max_rows = 20) const;

 private:
  std::vector<rdf::TermId> data_;
  size_t arity_ = 0;
  size_t zero_arity_rows_ = 0;
  bool arity_set_ = false;
};

/// \brief Hash-joins two tables on their shared columns (natural join).
/// With no shared column this is the cross product. Output columns are
/// left.columns followed by the non-shared right columns. Keys are hashed
/// as stride slices of a flat build-side key arena — no per-row
/// materialization.
Table HashJoin(const Table& left, const Table& right);

}  // namespace engine
}  // namespace rdfref

#endif  // RDFREF_ENGINE_TABLE_H_
