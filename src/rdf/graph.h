#ifndef RDFREF_RDF_GRAPH_H_
#define RDFREF_RDF_GRAPH_H_

#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace rdf {

/// \brief An RDF graph: a set of well-formed triples plus the dictionary
/// interning their values Val(G).
///
/// The graph holds both data triples and RDFS constraint triples (in the DB
/// fragment, schema statements are triples like any other). The set
/// semantics of RDF is respected: inserting a duplicate triple is a no-op.
class Graph {
 public:
  Graph() : dict_(std::make_unique<Dictionary>()) {}

  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;
  Graph(Graph&&) = default;
  Graph& operator=(Graph&&) = default;

  /// \brief Adds an encoded triple; returns true when it was new.
  bool Add(const Triple& t) { return triples_.insert(t).second; }
  bool Add(TermId s, TermId p, TermId o) { return Add(Triple(s, p, o)); }

  /// \brief Interns the three terms and adds the triple.
  bool Add(const Term& s, const Term& p, const Term& o) {
    return Add(dict_->Intern(s), dict_->Intern(p), dict_->Intern(o));
  }

  /// \brief Convenience: adds <s> <p> <o> with all-URI terms.
  bool AddUri(const std::string& s, const std::string& p,
              const std::string& o) {
    return Add(dict_->InternUri(s), dict_->InternUri(p), dict_->InternUri(o));
  }

  /// \brief Convenience: adds a class assertion s rdf:type c.
  bool AddType(TermId s, TermId c) { return Add(s, vocab::kTypeId, c); }

  bool Contains(const Triple& t) const { return triples_.count(t) > 0; }

  /// \brief Removes a triple; returns true when it was present.
  bool Remove(const Triple& t) { return triples_.erase(t) > 0; }

  size_t size() const { return triples_.size(); }
  bool empty() const { return triples_.empty(); }

  const std::unordered_set<Triple, TripleHash>& triples() const {
    return triples_;
  }

  Dictionary& dict() { return *dict_; }
  const Dictionary& dict() const { return *dict_; }

  /// \brief Returns a fresh blank node id (labels _:g0, _:g1, ...).
  TermId FreshBlank() {
    return dict_->InternBlank("g" + std::to_string(blank_counter_++));
  }

  /// \brief Deep copy with an *id-identical* dictionary: every TermId valid
  /// against this graph is valid against the clone and names the same term.
  /// Graphs are otherwise move-only; cloning is explicit because it copies
  /// the whole dictionary. Used by the differential-testing harness to
  /// answer the same query against many QueryAnswerer instances.
  Graph Clone() const {
    Graph out;
    for (TermId id = vocab::kNumBuiltins; id < dict_->size(); ++id) {
      out.dict_->Intern(dict_->Lookup(id));
    }
    // The hierarchy encoding describes the id space, which the clone shares.
    out.dict_->set_encoding(dict_->encoding_ptr());
    out.triples_ = triples_;
    out.blank_counter_ = blank_counter_;
    return out;
  }

  /// \brief Rewrites the graph through a term-id permutation: the dictionary
  /// is permuted (see Dictionary::ApplyPermutation) and every triple's ids
  /// are translated. Drops any attached encoding; the schema encoder is the
  /// intended caller and installs the matching tables afterwards.
  void Remap(const std::vector<TermId>& old_to_new);

  /// \brief Copies all triples as a sorted vector (deterministic order for
  /// tests and store loading).
  std::vector<Triple> SortedTriples() const;

  /// \brief Counts RDFS constraint triples (schema component of the graph).
  size_t CountSchemaTriples() const;

 private:
  std::unique_ptr<Dictionary> dict_;
  std::unordered_set<Triple, TripleHash> triples_;
  uint64_t blank_counter_ = 0;
};

}  // namespace rdf
}  // namespace rdfref

#endif  // RDFREF_RDF_GRAPH_H_
