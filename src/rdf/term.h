#ifndef RDFREF_RDF_TERM_H_
#define RDFREF_RDF_TERM_H_

#include <cstdint>
#include <string>
#include <utility>

#include "common/hash.h"

namespace rdfref {
namespace rdf {

/// \brief Dictionary-encoded identifier of an RDF term (value).
///
/// Terms are interned in a Dictionary; all triple storage, query evaluation
/// and reformulation work on TermIds. The well-known RDF Schema property ids
/// occupy the first slots (see vocab.h).
using TermId = uint32_t;

/// \brief Sentinel for "no term".
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// \brief The three kinds of RDF values: URIs (U), literals (L) and blank
/// nodes (B), per the W3C RDF specification (Section 3 of the paper).
enum class TermKind : uint8_t {
  kUri = 0,
  kLiteral = 1,
  kBlank = 2,
};

/// \brief An RDF value: a kind plus its lexical form.
///
/// The lexical form of a URI is the IRI string, of a literal its contents
/// (without surrounding quotes), of a blank node its local label (without
/// the "_:" prefix).
struct Term {
  TermKind kind = TermKind::kUri;
  std::string lexical;

  Term() = default;
  Term(TermKind k, std::string lex) : kind(k), lexical(std::move(lex)) {}

  /// \brief Convenience factories.
  static Term Uri(std::string iri) {
    return Term(TermKind::kUri, std::move(iri));
  }
  static Term Literal(std::string value) {
    return Term(TermKind::kLiteral, std::move(value));
  }
  static Term Blank(std::string label) {
    return Term(TermKind::kBlank, std::move(label));
  }

  bool is_uri() const { return kind == TermKind::kUri; }
  bool is_literal() const { return kind == TermKind::kLiteral; }
  bool is_blank() const { return kind == TermKind::kBlank; }

  /// \brief Renders the term in N-Triples syntax: <iri>, "literal", _:label.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.kind == b.kind && a.lexical == b.lexical;
  }
  friend bool operator!=(const Term& a, const Term& b) { return !(a == b); }
  friend bool operator<(const Term& a, const Term& b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.lexical < b.lexical;
  }
};

/// \brief Hash functor so Term can key unordered containers.
struct TermHash {
  size_t operator()(const Term& t) const {
    size_t seed = std::hash<std::string>()(t.lexical);
    return HashCombine(seed, static_cast<uint64_t>(t.kind));
  }
};

}  // namespace rdf
}  // namespace rdfref

#endif  // RDFREF_RDF_TERM_H_
