#ifndef RDFREF_RDF_TRIPLE_H_
#define RDFREF_RDF_TRIPLE_H_

#include <cstdint>

#include "common/hash.h"
#include "rdf/term.h"

namespace rdfref {
namespace rdf {

/// \brief A dictionary-encoded RDF triple "s p o": subject s has property p
/// with value o.
struct Triple {
  TermId s = kInvalidTermId;
  TermId p = kInvalidTermId;
  TermId o = kInvalidTermId;

  Triple() = default;
  Triple(TermId subject, TermId property, TermId object)
      : s(subject), p(property), o(object) {}

  friend bool operator==(const Triple& a, const Triple& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
  friend bool operator!=(const Triple& a, const Triple& b) {
    return !(a == b);
  }
  friend bool operator<(const Triple& a, const Triple& b) {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};

/// \brief Hash functor so Triple can key unordered containers.
struct TripleHash {
  size_t operator()(const Triple& t) const {
    size_t seed = HashCombine(0x9e3779b9u, t.s);
    seed = HashCombine(seed, t.p);
    return HashCombine(seed, t.o);
  }
};

}  // namespace rdf
}  // namespace rdfref

#endif  // RDFREF_RDF_TRIPLE_H_
