#include "rdf/dictionary.h"

#include "rdf/vocab.h"

namespace rdfref {
namespace rdf {

Dictionary::Dictionary() {
  // Built-ins occupy ids 0..4 in vocab.h order.
  InternUri(vocab::kRdfType);
  InternUri(vocab::kRdfsSubClassOf);
  InternUri(vocab::kRdfsSubPropertyOf);
  InternUri(vocab::kRdfsDomain);
  InternUri(vocab::kRdfsRange);
}

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

TermId Dictionary::Find(const Term& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

void Dictionary::ApplyPermutation(const std::vector<TermId>& old_to_new) {
  // The dictionary owns id assignment; raw TermId arithmetic is expected.
  std::vector<Term> permuted(terms_.size());
  for (TermId old_id = 0; old_id < terms_.size(); ++old_id) {
    permuted[old_to_new[old_id]] = std::move(terms_[old_id]);
  }
  terms_ = std::move(permuted);
  index_.clear();
  index_.reserve(terms_.size());
  for (TermId id = 0; id < terms_.size(); ++id) {
    index_.emplace(terms_[id], id);
  }
  encoding_.reset();
}

}  // namespace rdf
}  // namespace rdfref
