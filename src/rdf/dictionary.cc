#include "rdf/dictionary.h"

#include "rdf/vocab.h"

namespace rdfref {
namespace rdf {

Dictionary::Dictionary() {
  // Built-ins occupy ids 0..4 in vocab.h order.
  InternUri(vocab::kRdfType);
  InternUri(vocab::kRdfsSubClassOf);
  InternUri(vocab::kRdfsSubPropertyOf);
  InternUri(vocab::kRdfsDomain);
  InternUri(vocab::kRdfsRange);
}

TermId Dictionary::Intern(const Term& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

TermId Dictionary::Find(const Term& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kInvalidTermId : it->second;
}

}  // namespace rdf
}  // namespace rdfref
