#include "rdf/term.h"

namespace rdfref {
namespace rdf {

std::string Term::ToString() const {
  switch (kind) {
    case TermKind::kUri:
      return "<" + lexical + ">";
    case TermKind::kLiteral:
      return "\"" + lexical + "\"";
    case TermKind::kBlank:
      return "_:" + lexical;
  }
  return lexical;
}

}  // namespace rdf
}  // namespace rdfref
