#include "rdf/parser.h"

#include <fstream>
#include <sstream>
#include <vector>

#include "common/string_util.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace rdf {

namespace {

// A lexical token of the Turtle subset.
struct Token {
  enum Kind { kUri, kPName, kLiteral, kBlank, kA, kDot, kPrefixDirective };
  Kind kind;
  std::string text;  // IRI / pname / literal contents / blank label
};

// Tokenizes one logical line; literals may contain spaces, '#' and '.'.
Status Tokenize(std::string_view line, int line_no, std::vector<Token>* out) {
  size_t i = 0;
  const size_t n = line.size();
  auto err = [line_no](const std::string& what) {
    return Status::ParseError("line " + std::to_string(line_no) + ": " + what);
  };
  while (i < n) {
    char c = line[i];
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '#') break;  // comment to end of line
    if (c == '<') {
      size_t close = line.find('>', i + 1);
      if (close == std::string_view::npos) return err("unterminated IRI");
      out->push_back({Token::kUri, std::string(line.substr(i + 1, close - i - 1))});
      i = close + 1;
    } else if (c == '"') {
      std::string value;
      size_t j = i + 1;
      while (j < n && line[j] != '"') {
        if (line[j] == '\\' && j + 1 < n) {
          value.push_back(line[j + 1]);
          j += 2;
        } else {
          value.push_back(line[j]);
          ++j;
        }
      }
      if (j >= n) return err("unterminated literal");
      // Skip optional datatype / language tag suffixes (^^<...>, @lang).
      i = j + 1;
      if (i + 1 < n && line[i] == '^' && line[i + 1] == '^') {
        i += 2;
        if (i < n && line[i] == '<') {
          size_t close = line.find('>', i);
          if (close == std::string_view::npos) return err("bad datatype IRI");
          i = close + 1;
        }
      } else if (i < n && line[i] == '@') {
        while (i < n && line[i] != ' ' && line[i] != '\t' && line[i] != '.') ++i;
      }
      out->push_back({Token::kLiteral, std::move(value)});
    } else if (c == '_' && i + 1 < n && line[i + 1] == ':') {
      size_t j = i + 2;
      while (j < n && line[j] != ' ' && line[j] != '\t' && line[j] != '\r')
        ++j;
      // A trailing '.' terminates the statement, not the label.
      size_t end = j;
      if (end > i + 2 && line[end - 1] == '.') --end;
      out->push_back({Token::kBlank, std::string(line.substr(i + 2, end - i - 2))});
      i = end;
    } else if (c == '.') {
      out->push_back({Token::kDot, "."});
      ++i;
    } else if (c == '@') {
      size_t j = i;
      while (j < n && line[j] != ' ' && line[j] != '\t') ++j;
      std::string directive(line.substr(i, j - i));
      if (directive != "@prefix") return err("unknown directive " + directive);
      out->push_back({Token::kPrefixDirective, directive});
      i = j;
    } else {
      // Bare word: either 'a' or a prefixed name pfx:local.
      size_t j = i;
      while (j < n && line[j] != ' ' && line[j] != '\t' && line[j] != '\r')
        ++j;
      size_t end = j;
      if (end > i && line[end - 1] == '.') --end;
      std::string word(line.substr(i, end - i));
      if (word == "a") {
        out->push_back({Token::kA, word});
      } else if (word.find(':') != std::string::npos) {
        out->push_back({Token::kPName, word});
      } else if (!word.empty()) {
        return err("unrecognized token '" + word + "'");
      }
      i = end;
    }
  }
  return Status::OK();
}

// Resolves a token into a Term using the prefix table.
Status ResolveTerm(const Token& tok, int line_no,
                   const std::unordered_map<std::string, std::string>& prefixes,
                   Term* out) {
  switch (tok.kind) {
    case Token::kUri:
      *out = Term::Uri(tok.text);
      return Status::OK();
    case Token::kLiteral:
      *out = Term::Literal(tok.text);
      return Status::OK();
    case Token::kBlank:
      *out = Term::Blank(tok.text);
      return Status::OK();
    case Token::kA:
      *out = Term::Uri(vocab::kRdfType);
      return Status::OK();
    case Token::kPName: {
      size_t colon = tok.text.find(':');
      std::string pfx = tok.text.substr(0, colon);
      auto it = prefixes.find(pfx);
      if (it == prefixes.end()) {
        return Status::ParseError("line " + std::to_string(line_no) +
                                  ": undefined prefix '" + pfx + ":'");
      }
      *out = Term::Uri(it->second + tok.text.substr(colon + 1));
      return Status::OK();
    }
    default:
      return Status::ParseError("line " + std::to_string(line_no) +
                                ": expected a term");
  }
}

}  // namespace

Status TurtleParser::ParseString(std::string_view text, Graph* graph) {
  // rdf: and rdfs: are built in, as in the SPARQL parser.
  std::unordered_map<std::string, std::string> prefixes = {
      {"rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"},
      {"rdfs", "http://www.w3.org/2000/01/rdf-schema#"},
  };
  int line_no = 0;
  for (const std::string& raw : Split(text, '\n')) {
    ++line_no;
    std::string_view line = StripWhitespace(raw);
    if (line.empty() || line[0] == '#') continue;
    std::vector<Token> tokens;
    RDFREF_RETURN_NOT_OK(Tokenize(line, line_no, &tokens));
    if (tokens.empty()) continue;
    auto err = [line_no](const std::string& what) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                what);
    };
    if (tokens[0].kind == Token::kPrefixDirective) {
      // @prefix pfx: <iri> .
      if (tokens.size() < 3 || tokens[1].kind != Token::kPName ||
          tokens[2].kind != Token::kUri) {
        return err("malformed @prefix (expected '@prefix p: <iri> .')");
      }
      std::string pname = tokens[1].text;
      if (pname.empty() || pname.back() != ':') {
        return err("prefix name must end with ':'");
      }
      prefixes[pname.substr(0, pname.size() - 1)] = tokens[2].text;
      continue;
    }
    // Regular triple statement: s p o .
    size_t count = tokens.size();
    bool has_dot = tokens.back().kind == Token::kDot;
    if (has_dot) --count;
    if (count != 3) return err("expected exactly 3 terms in statement");
    Term s, p, o;
    RDFREF_RETURN_NOT_OK(ResolveTerm(tokens[0], line_no, prefixes, &s));
    RDFREF_RETURN_NOT_OK(ResolveTerm(tokens[1], line_no, prefixes, &p));
    RDFREF_RETURN_NOT_OK(ResolveTerm(tokens[2], line_no, prefixes, &o));
    if (s.is_literal()) return err("literal in subject position");
    if (!p.is_uri()) return err("property must be a URI");
    graph->Add(s, p, o);
  }
  return Status::OK();
}

Status TurtleParser::ParseFile(const std::string& path, Graph* graph) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open file: " + path);
  std::ostringstream contents;
  contents << in.rdbuf();
  return ParseString(contents.str(), graph);
}

std::string ToNTriples(const Graph& graph) {
  std::ostringstream out;
  const Dictionary& dict = graph.dict();
  // PName handling: a PName prefix part ends with ':'. The tokenizer keeps
  // the whole pfx:local word; resolution happens in ResolveTerm.
  for (const Triple& t : graph.SortedTriples()) {
    out << dict.Lookup(t.s).ToString() << " " << dict.Lookup(t.p).ToString()
        << " " << dict.Lookup(t.o).ToString() << " .\n";
  }
  return out.str();
}

}  // namespace rdf
}  // namespace rdfref
