#include "rdf/graph.h"

#include <algorithm>

namespace rdfref {
namespace rdf {

std::vector<Triple> Graph::SortedTriples() const {
  std::vector<Triple> out(triples_.begin(), triples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

size_t Graph::CountSchemaTriples() const {
  size_t n = 0;
  for (const Triple& t : triples_) {
    if (vocab::IsSchemaProperty(t.p)) ++n;
  }
  return n;
}

}  // namespace rdf
}  // namespace rdfref
