#include "rdf/graph.h"

#include <algorithm>

namespace rdfref {
namespace rdf {

std::vector<Triple> Graph::SortedTriples() const {
  std::vector<Triple> out(triples_.begin(), triples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Graph::Remap(const std::vector<TermId>& old_to_new) {
  dict_->ApplyPermutation(old_to_new);
  std::unordered_set<Triple, TripleHash> remapped;
  remapped.reserve(triples_.size());
  for (const Triple& t : triples_) {
    remapped.insert(Triple(old_to_new[t.s], old_to_new[t.p], old_to_new[t.o]));
  }
  triples_ = std::move(remapped);
}

size_t Graph::CountSchemaTriples() const {
  size_t n = 0;
  for (const Triple& t : triples_) {
    if (vocab::IsSchemaProperty(t.p)) ++n;
  }
  return n;
}

}  // namespace rdf
}  // namespace rdfref
