#ifndef RDFREF_RDF_VOCAB_H_
#define RDFREF_RDF_VOCAB_H_

#include "rdf/term.h"

namespace rdfref {
namespace rdf {
namespace vocab {

/// RDF / RDFS vocabulary used by the DB fragment (Figure 1 of the paper).
/// These five properties are the only built-ins whose semantics the fragment
/// interprets: rdf:type for class assertions, and the four RDF Schema
/// constraint properties.
inline constexpr const char* kRdfType =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr const char* kRdfsSubClassOf =
    "http://www.w3.org/2000/01/rdf-schema#subClassOf";
inline constexpr const char* kRdfsSubPropertyOf =
    "http://www.w3.org/2000/01/rdf-schema#subPropertyOf";
inline constexpr const char* kRdfsDomain =
    "http://www.w3.org/2000/01/rdf-schema#domain";
inline constexpr const char* kRdfsRange =
    "http://www.w3.org/2000/01/rdf-schema#range";

/// Stable dictionary ids: every Dictionary interns the five built-ins first,
/// in this order, so code all over the library can compare against these
/// constants without a dictionary lookup.
inline constexpr TermId kTypeId = 0;
inline constexpr TermId kSubClassOfId = 1;
inline constexpr TermId kSubPropertyOfId = 2;
inline constexpr TermId kDomainId = 3;
inline constexpr TermId kRangeId = 4;

/// Number of pre-interned built-in terms.
inline constexpr TermId kNumBuiltins = 5;

/// \brief True when `p` is one of the four RDFS constraint properties.
inline bool IsSchemaProperty(TermId p) {
  return p == kSubClassOfId || p == kSubPropertyOfId || p == kDomainId ||
         p == kRangeId;
}

}  // namespace vocab
}  // namespace rdf
}  // namespace rdfref

#endif  // RDFREF_RDF_VOCAB_H_
