#ifndef RDFREF_RDF_ENCODING_H_
#define RDFREF_RDF_ENCODING_H_

#include <cstddef>
#include <map>
#include <optional>

#include "rdf/term.h"

namespace rdfref {
namespace rdf {

/// \brief Hierarchy-aware id-interval tables of an encoded dictionary.
///
/// After the schema encoder (schema/encoder.h) has permuted a dictionary,
/// every class of the subClassOf DAG and every property of the subPropertyOf
/// DAG owns a closed TermId interval [lo, hi] with two guarantees:
///
///   soundness     every id in [lo, hi] names the term itself, a member of
///                 its subClassOf/subPropertyOf cycle (SCC), or a term below
///                 it in the saturated hierarchy;
///   shared SCCs   all members of one cycle share a single interval (the
///                 seed-231 reflexive-cycle family maps to one interval,
///                 it does not diverge per member).
///
/// Completeness is NOT guaranteed per interval: a multi-parent term is
/// covered by the interval of its primary parent only, and terms added or
/// related after encoding are outside every interval. The reformulator
/// compensates by emitting classic UCQ members for every sub-term that
/// escapes the interval, so fused and classic reformulations stay
/// answer-set-equal (proved by the check_encoded fuzz relation).
///
/// The tables are keyed by *current* (post-permutation) TermIds and use
/// ordered maps so serialization and equality are deterministic.
class TermEncoding {
 public:
  struct Interval {
    TermId lo = 0;
    TermId hi = 0;  // closed: lo <= id <= hi

    friend bool operator==(const Interval& a, const Interval& b) {
      return a.lo == b.lo && a.hi == b.hi;
    }
    friend bool operator!=(const Interval& a, const Interval& b) {
      return !(a == b);
    }
  };

  /// \brief Subtree interval of class `c`, when `c` is encoded.
  std::optional<Interval> ClassInterval(TermId c) const {
    auto it = class_intervals_.find(c);
    if (it == class_intervals_.end()) return std::nullopt;
    return it->second;
  }

  /// \brief Subtree interval of property `p`, when `p` is encoded.
  std::optional<Interval> PropertyInterval(TermId p) const {
    auto it = property_intervals_.find(p);
    if (it == property_intervals_.end()) return std::nullopt;
    return it->second;
  }

  /// \brief Canonical member of `id`'s hierarchy cycle; `id` itself when it
  /// is not part of any cycle (or not encoded at all).
  TermId SccRepresentative(TermId id) const {
    auto it = scc_representative_.find(id);
    return it == scc_representative_.end() ? id : it->second;
  }

  void SetClassInterval(TermId c, Interval iv) { class_intervals_[c] = iv; }
  void SetPropertyInterval(TermId p, Interval iv) {
    property_intervals_[p] = iv;
  }
  void SetSccRepresentative(TermId id, TermId rep) {
    scc_representative_[id] = rep;
  }

  const std::map<TermId, Interval>& class_intervals() const {
    return class_intervals_;
  }
  const std::map<TermId, Interval>& property_intervals() const {
    return property_intervals_;
  }
  const std::map<TermId, TermId>& scc_representatives() const {
    return scc_representative_;
  }

  bool empty() const {
    return class_intervals_.empty() && property_intervals_.empty();
  }

  friend bool operator==(const TermEncoding& a, const TermEncoding& b) {
    return a.class_intervals_ == b.class_intervals_ &&
           a.property_intervals_ == b.property_intervals_ &&
           a.scc_representative_ == b.scc_representative_;
  }
  friend bool operator!=(const TermEncoding& a, const TermEncoding& b) {
    return !(a == b);
  }

 private:
  std::map<TermId, Interval> class_intervals_;
  std::map<TermId, Interval> property_intervals_;
  std::map<TermId, TermId> scc_representative_;
};

}  // namespace rdf
}  // namespace rdfref

#endif  // RDFREF_RDF_ENCODING_H_
