#ifndef RDFREF_RDF_DICTIONARY_H_
#define RDFREF_RDF_DICTIONARY_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/encoding.h"
#include "rdf/term.h"

namespace rdfref {
namespace rdf {

/// \brief Bidirectional mapping between RDF terms and dense integer ids.
///
/// This is the classic dictionary encoding used by RDBMS-backed RDF stores
/// [4, 14]: strings are interned once and all downstream processing (storage,
/// indexes, joins, reformulation) handles fixed-width TermIds. The five RDF /
/// RDFS built-ins of vocab.h are interned at construction with stable ids.
class Dictionary {
 public:
  Dictionary();

  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;
  Dictionary(Dictionary&&) = default;
  Dictionary& operator=(Dictionary&&) = default;

  /// \brief Interns a term, returning its id (existing or fresh).
  TermId Intern(const Term& term);

  /// \brief Interns a URI given by its IRI string.
  TermId InternUri(const std::string& iri) { return Intern(Term::Uri(iri)); }

  /// \brief Interns a literal.
  TermId InternLiteral(const std::string& value) {
    return Intern(Term::Literal(value));
  }

  /// \brief Interns a blank node by label.
  TermId InternBlank(const std::string& label) {
    return Intern(Term::Blank(label));
  }

  /// \brief Looks up a term without interning; kInvalidTermId when absent.
  TermId Find(const Term& term) const;

  /// \brief Returns the term for an id; id must be valid.
  const Term& Lookup(TermId id) const { return terms_[id]; }

  /// \brief True when `id` names an interned term.
  bool Contains(TermId id) const { return id < terms_.size(); }

  /// \brief Number of interned terms (including built-ins).
  size_t size() const { return terms_.size(); }

  /// \brief Reassigns every term's id through a bijection over [0, size()).
  /// `old_to_new[i]` is the new id of the term currently named `i`; the five
  /// built-ins must map to themselves. Every TermId held outside the
  /// dictionary is invalidated (translate it through the permutation). Any
  /// attached encoding is dropped — the caller installs the one matching the
  /// new layout.
  void ApplyPermutation(const std::vector<TermId>& old_to_new);

  /// \brief Hierarchy encoding of this id space, or nullptr when the
  /// dictionary is unencoded (the common case: encoding is an explicit
  /// opt-in pass, see schema/encoder.h).
  const TermEncoding* encoding() const { return encoding_.get(); }
  std::shared_ptr<const TermEncoding> encoding_ptr() const {
    return encoding_;
  }
  void set_encoding(std::shared_ptr<const TermEncoding> encoding) {
    encoding_ = std::move(encoding);
  }

 private:
  std::vector<Term> terms_;
  std::unordered_map<Term, TermId, TermHash> index_;
  std::shared_ptr<const TermEncoding> encoding_;
};

}  // namespace rdf
}  // namespace rdfref

#endif  // RDFREF_RDF_DICTIONARY_H_
