#ifndef RDFREF_RDF_PARSER_H_
#define RDFREF_RDF_PARSER_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "common/status.h"
#include "rdf/graph.h"

namespace rdfref {
namespace rdf {

/// \brief Parser for a practical subset of Turtle / N-Triples.
///
/// Supported syntax, one statement per '.' terminator:
///   @prefix pfx: <iri> .      — rdf: and rdfs: are pre-declared
///   <s> <p> <o> .            — URIs
///   pfx:local ...            — prefixed names
///   "value"                  — literals (objects)
///   _:label                  — blank nodes
///   a                        — abbreviation for rdf:type
///   # line comments and blank lines
///
/// This is the loading path for the demonstration's scenarios (data +
/// constraints are plain triples, per the DB fragment).
class TurtleParser {
 public:
  /// \brief Parses `text`, inserting triples into `graph`.
  /// On error, reports the 1-based line number in the message.
  static Status ParseString(std::string_view text, Graph* graph);

  /// \brief Reads and parses a file.
  static Status ParseFile(const std::string& path, Graph* graph);
};

/// \brief Serializes a graph to N-Triples text (sorted, deterministic).
std::string ToNTriples(const Graph& graph);

}  // namespace rdf
}  // namespace rdfref

#endif  // RDFREF_RDF_PARSER_H_
