#ifndef RDFREF_OPTIMIZER_VIEW_SELECTION_H_
#define RDFREF_OPTIMIZER_VIEW_SELECTION_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"
#include "optimizer/gcov.h"
#include "query/cover.h"
#include "query/cq.h"
#include "reformulation/reformulator.h"

namespace rdfref {
namespace optimizer {

/// \file
/// \brief Workload-driven view selection (DESIGN.md §15) — the RDFViewS
/// idea scoped to the view cache: given the workload mix, decide which
/// canonical CQ fragments are worth keeping materialized, so the cache can
/// protect them from eviction and GCov can align JUCQ covers with them.

/// \brief One query of the workload mix, with its traffic share and the
/// covers it is (or may be) answered through. Candidate views are
/// harvested from the whole query plus every cover fragment.
struct WorkloadQueryProfile {
  query::Cq cq;
  double weight = 1.0;  ///< relative frequency in the mix
  std::vector<query::Cover> covers;
};

/// \brief One candidate view with its scores.
struct ViewCandidate {
  std::string canonical_key;  ///< query::Canonicalize of the fragment
  query::Cq representative;   ///< the canonical fragment subquery
  double frequency = 0.0;     ///< weight-sum of mix entries using it
  double eval_cost = 0.0;     ///< CostUcq of its reformulation (cold cost)
  double rescan_cost = 0.0;   ///< est_rows × scan_per_row (warm cost)
  double est_rows = 0.0;
  double est_bytes = 0.0;
  /// frequency × (eval_cost − rescan_cost): workload cost saved per unit
  /// time by keeping this view warm.
  double benefit = 0.0;
  bool chosen = false;
};

struct ViewSelectionOptions {
  /// Byte budget the chosen set must fit (should match — or undershoot —
  /// the cache's ViewCacheOptions::byte_budget).
  size_t byte_budget = 64ull << 20;
  size_t max_views = 64;
};

struct ViewSelectionResult {
  /// Every scored candidate, highest benefit-density first.
  std::vector<ViewCandidate> candidates;
  /// Canonical keys of the chosen views (feed ViewCache::SetPreferred).
  std::vector<std::string> chosen_keys;
  /// Cover-alignment hints for the chosen views (feed CoverOptimizer).
  ViewHints hints;
  /// Σ benefit of the chosen set (model units; diagnostics).
  double estimated_saving = 0.0;
};

/// \brief Harvests canonical-fragment frequencies from the mix, scores
/// each candidate with the cost model (cold union evaluation vs warm
/// rescan), and greedily packs the byte budget by benefit density.
class ViewSelector {
 public:
  /// \brief Both pointees must outlive the selector.
  ViewSelector(const reformulation::Reformulator* reformulator,
               const cost::CostModel* cost_model)
      : reformulator_(reformulator), cost_model_(cost_model) {}

  Result<ViewSelectionResult> Select(
      const std::vector<WorkloadQueryProfile>& workload,
      const ViewSelectionOptions& options = {}) const;

 private:
  const reformulation::Reformulator* reformulator_;
  const cost::CostModel* cost_model_;
};

}  // namespace optimizer
}  // namespace rdfref

#endif  // RDFREF_OPTIMIZER_VIEW_SELECTION_H_
