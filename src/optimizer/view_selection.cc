#include "optimizer/view_selection.h"

#include <algorithm>
#include <map>
#include <utility>

#include "query/canonical.h"

namespace rdfref {
namespace optimizer {

namespace {
using query::CanonicalCq;
using query::Cq;
using query::Ucq;
}  // namespace

Result<ViewSelectionResult> ViewSelector::Select(
    const std::vector<WorkloadQueryProfile>& workload,
    const ViewSelectionOptions& options) const {
  // 1. Harvest: every query contributes its own body (the whole-union
  // view) and each fragment of each cover, bucketed by canonical form so
  // α-equivalent fragments from different queries pool their traffic.
  struct Bucket {
    Cq representative;
    double frequency = 0.0;
  };
  std::map<std::string, Bucket> buckets;
  auto harvest = [&buckets](const Cq& fragment, double weight) {
    if (fragment.body().empty()) return;
    CanonicalCq canon = query::Canonicalize(fragment);
    auto [it, inserted] =
        buckets.emplace(std::move(canon.key), Bucket{std::move(canon.cq), 0.0});
    it->second.frequency += weight;
  };
  for (const WorkloadQueryProfile& wq : workload) {
    harvest(wq.cq, wq.weight);
    for (const query::Cover& cover : wq.covers) {
      if (!cover.Validate(wq.cq).ok()) continue;
      for (const Cq& fq : cover.FragmentQueries(wq.cq)) {
        harvest(fq, wq.weight);
      }
    }
  }

  // 2. Score: cold cost is the reformulated union's evaluation cost, warm
  // cost a rescan of the materialized rows. Fragments whose reformulation
  // blows the budget are skipped — they cannot be materialized either.
  ViewSelectionResult result;
  const double scan_per_row = cost_model_->params().scan_per_row;
  for (auto& [key, bucket] : buckets) {
    Result<Ucq> ucq = reformulator_->Reformulate(bucket.representative);
    if (!ucq.ok()) continue;
    ViewCandidate c;
    c.canonical_key = key;
    c.frequency = bucket.frequency;
    c.eval_cost = cost_model_->CostUcq(*ucq);
    c.est_rows = cost_model_->EstimateUcqRows(*ucq);
    c.rescan_cost = c.est_rows * scan_per_row;
    c.est_bytes = c.est_rows *
                  static_cast<double>(bucket.representative.head().size()) *
                  sizeof(rdf::TermId);
    c.benefit = c.frequency * (c.eval_cost - c.rescan_cost);
    c.representative = std::move(bucket.representative);
    if (c.benefit > 0.0) result.candidates.push_back(std::move(c));
  }

  // 3. Pack the budget greedily by benefit density.
  std::sort(result.candidates.begin(), result.candidates.end(),
            [](const ViewCandidate& a, const ViewCandidate& b) {
              double da = a.benefit / (a.est_bytes + 1.0);
              double db = b.benefit / (b.est_bytes + 1.0);
              if (da != db) return da > db;
              return a.canonical_key < b.canonical_key;  // deterministic
            });
  double budget = static_cast<double>(options.byte_budget);
  for (ViewCandidate& c : result.candidates) {
    if (result.chosen_keys.size() >= options.max_views) break;
    if (c.est_bytes > budget) continue;
    c.chosen = true;
    budget -= c.est_bytes;
    result.chosen_keys.push_back(c.canonical_key);
    result.hints.cached_rows.emplace(c.canonical_key, c.est_rows);
    result.estimated_saving += c.benefit;
  }
  return result;
}

}  // namespace optimizer
}  // namespace rdfref
