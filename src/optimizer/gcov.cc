#include "optimizer/gcov.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <set>
#include <sstream>

#include "query/canonical.h"

namespace rdfref {
namespace optimizer {

namespace {
using query::Cover;
using query::Cq;
using query::Ucq;
using query::VarId;
}  // namespace

std::string GcovTrace::ToString(size_t max_entries) const {
  std::ostringstream out;
  out << "GCov explored " << explored.size() << " cover(s) in " << iterations
      << " iteration(s); chose " << chosen.ToString() << " at cost "
      << chosen_cost << "\n";
  for (size_t i = 0; i < explored.size() && i < max_entries; ++i) {
    out << (explored[i].accepted ? "  * " : "    ")
        << explored[i].cover.ToString() << "  cost=" << explored[i].cost
        << "\n";
  }
  if (explored.size() > max_entries) {
    out << "    ... (" << (explored.size() - max_entries) << " more)\n";
  }
  return out.str();
}

Result<double> CoverOptimizer::CostOfCoverCached(const Cq& q,
                                                 const Cover& cover,
                                                 FragmentCache* cache) const {
  std::vector<Cq> fragment_queries = cover.FragmentQueries(q);
  std::vector<cost::CostModel::FragmentCostInput> inputs;
  inputs.reserve(fragment_queries.size());
  for (const Cq& fq : fragment_queries) {
    std::string key = fq.CanonicalKey();
    auto it = cache->find(key);
    if (it == cache->end()) {
      RDFREF_ASSIGN_OR_RETURN(Ucq ucq, reformulator_->Reformulate(fq));
      FragmentCost fc;
      fc.eval_cost = cost_model_->CostUcq(ucq);
      fc.rows = cost_model_->EstimateUcqRows(ucq);
      if (hints_ != nullptr && !hints_->empty()) {
        fc.canonical = query::Canonicalize(fq).key;
      }
      it = cache->emplace(std::move(key), fc).first;
    }
    cost::CostModel::FragmentCostInput in;
    in.eval_cost = it->second.eval_cost;
    in.rows = it->second.rows;
    if (hints_ != nullptr) {
      auto hint = hints_->cached_rows.find(it->second.canonical);
      if (hint != hints_->cached_rows.end()) {
        // A view-backed fragment costs a rescan of its materialized rows,
        // not a fresh union evaluation.
        double rescan = hint->second * cost_model_->params().scan_per_row;
        in.eval_cost = std::min(in.eval_cost, rescan);
      }
    }
    in.fragment_query = &fq;
    inputs.push_back(in);
  }
  return cost_model_->CostJucqFromFragments(inputs);
}

Result<double> CoverOptimizer::CostOfCover(const Cq& q,
                                           const Cover& cover) const {
  RDFREF_RETURN_NOT_OK(cover.Validate(q));
  FragmentCache cache;
  return CostOfCoverCached(q, cover, &cache);
}

Result<Cover> CoverOptimizer::Greedy(const Cq& q, GcovTrace* trace) const {
  const size_t n = q.body().size();
  if (n == 0) return Status::InvalidArgument("query has no atoms");
  FragmentCache cache;

  // Moves whose estimated cost lands within this factor of the current
  // cover still get taken (once): estimate noise otherwise blocks
  // multi-move improvements such as the overlapping cover of Example 1,
  // which needs two near-neutral steps before the payoff. The visited set
  // guarantees termination.
  constexpr double kPlateauFactor = 1.05;

  Cover current = Cover::Singletons(n);
  RDFREF_ASSIGN_OR_RETURN(double current_cost,
                          CostOfCoverCached(q, current, &cache));
  Cover overall_best = current;
  double overall_best_cost = current_cost;
  std::set<std::string> visited = {current.ToString()};
  if (trace != nullptr) {
    trace->explored.push_back({current, current_cost, true});
  }

  size_t iterations = 0;
  while (true) {
    ++iterations;
    bool moved = false;
    Cover best_cover = current;
    double best_cost = std::numeric_limits<double>::max();

    // Moves: add one atom to one fragment (the atom must share a variable
    // with the fragment so the extended fragment stays connected).
    const std::vector<std::vector<int>>& fragments = current.fragments();
    for (size_t f = 0; f < fragments.size(); ++f) {
      std::set<VarId> fragment_vars;
      std::set<int> members(fragments[f].begin(), fragments[f].end());
      for (int idx : fragments[f]) {
        std::set<VarId> vars = Cq::AtomVars(q.body()[idx]);
        fragment_vars.insert(vars.begin(), vars.end());
      }
      for (int a = 0; a < static_cast<int>(n); ++a) {
        if (members.count(a)) continue;
        std::set<VarId> avars = Cq::AtomVars(q.body()[a]);
        bool connected = std::any_of(
            avars.begin(), avars.end(),
            [&fragment_vars](VarId v) { return fragment_vars.count(v) > 0; });
        if (!connected) continue;
        std::vector<std::vector<int>> next_fragments = fragments;
        next_fragments[f].push_back(a);
        Cover candidate = Cover(std::move(next_fragments)).Reduced();
        if (visited.count(candidate.ToString())) continue;
        Result<double> cost = CostOfCoverCached(q, candidate, &cache);
        if (!cost.ok()) continue;  // fragment UCQ exploded: skip the move
        if (trace != nullptr) {
          trace->explored.push_back({candidate, *cost, false});
        }
        if (*cost < best_cost) {
          best_cost = *cost;
          best_cover = candidate;
          moved = true;
        }
      }
    }
    if (!moved || best_cost > current_cost * kPlateauFactor) break;
    current = best_cover;
    current_cost = best_cost;
    visited.insert(current.ToString());
    if (current_cost < overall_best_cost) {
      overall_best = current;
      overall_best_cost = current_cost;
    }
    if (trace != nullptr) {
      trace->explored.push_back({current, current_cost, true});
    }
  }
  if (trace != nullptr) {
    trace->chosen = overall_best;
    trace->chosen_cost = overall_best_cost;
    trace->iterations = iterations;
  }
  return overall_best;
}

Result<std::vector<Cover>> CoverOptimizer::EnumeratePartitionCovers(
    const Cq& q, size_t max_atoms) const {
  const size_t n = q.body().size();
  if (n == 0) return Status::InvalidArgument("query has no atoms");
  if (n > max_atoms) {
    return Status::ResourceExhausted(
        "refusing to enumerate partitions of more than " +
        std::to_string(max_atoms) + " atoms");
  }
  // Enumerate set partitions via restricted growth strings.
  std::vector<Cover> covers;
  std::vector<int> assignment(n, 0);
  std::function<void(size_t, int)> recurse = [&](size_t i, int max_block) {
    if (i == n) {
      int blocks = max_block + 1;
      std::vector<std::vector<int>> fragments(blocks);
      for (size_t k = 0; k < n; ++k) {
        fragments[assignment[k]].push_back(static_cast<int>(k));
      }
      Cover cover(std::move(fragments));
      if (cover.Validate(q).ok()) covers.push_back(std::move(cover));
      return;
    }
    for (int b = 0; b <= max_block + 1; ++b) {
      assignment[i] = b;
      recurse(i + 1, std::max(max_block, b));
    }
  };
  assignment[0] = 0;
  recurse(1, 0);
  return covers;
}

}  // namespace optimizer
}  // namespace rdfref
