#ifndef RDFREF_OPTIMIZER_GCOV_H_
#define RDFREF_OPTIMIZER_GCOV_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "cost/cost_model.h"
#include "query/cover.h"
#include "query/cq.h"
#include "reformulation/reformulator.h"

namespace rdfref {
namespace optimizer {

/// \brief One cover considered during the greedy search, with its estimated
/// cost — the "space of explored alternatives, and their estimated costs"
/// the demonstration lets attendees inspect (Section 5, step 3).
struct ExploredCover {
  query::Cover cover;
  double cost = 0.0;
  bool accepted = false;  ///< became the current best of its iteration
};

/// \brief Trace of a GCov run.
struct GcovTrace {
  std::vector<ExploredCover> explored;
  query::Cover chosen;
  double chosen_cost = 0.0;
  size_t iterations = 0;

  std::string ToString(size_t max_entries = 30) const;
};

/// \brief Cached-view hints for cover selection (DESIGN.md §15): fragments
/// whose canonical form (query::Canonicalize of the fragment subquery) has
/// a materialized view are costed as a rescan of the view's rows instead
/// of a fresh union evaluation, so the greedy search preferentially picks
/// covers aligned with what the view cache (or the view-selection pass)
/// already holds.
struct ViewHints {
  /// Canonical fragment key -> (estimated or actual) materialized rows.
  std::map<std::string, double> cached_rows;

  bool empty() const { return cached_rows.empty(); }
};

/// \brief GCov, the greedy cost-based cover selection of [5] (Section 4):
/// starts from the cover where each atom is alone in a fragment and
/// repeatedly applies the best cost-improving move "add one atom to one
/// fragment" (dropping fragments that become subsumed), until no move
/// improves the estimated cost.
class CoverOptimizer {
 public:
  /// \brief Both pointees must outlive the optimizer; `hints` (optional,
  /// may be null) discounts fragments backed by materialized views and
  /// must outlive it too.
  CoverOptimizer(const reformulation::Reformulator* reformulator,
                 const cost::CostModel* cost_model,
                 const ViewHints* hints = nullptr)
      : reformulator_(reformulator), cost_model_(cost_model), hints_(hints) {}

  /// \brief Estimated cost of answering q through the JUCQ induced by
  /// `cover` (reformulates each fragment; fails if a fragment's UCQ
  /// explodes past the reformulator's budget).
  Result<double> CostOfCover(const query::Cq& q,
                             const query::Cover& cover) const;

  /// \brief Runs the greedy search; returns the selected cover.
  Result<query::Cover> Greedy(const query::Cq& q,
                              GcovTrace* trace = nullptr) const;

  /// \brief Enumerates every *partition* cover of q whose fragments are
  /// connected (for exhaustive-optimum validation on small queries;
  /// exponential — refuse above `max_atoms` atoms).
  Result<std::vector<query::Cover>> EnumeratePartitionCovers(
      const query::Cq& q, size_t max_atoms = 8) const;

 private:
  // Cache of per-fragment reformulation costs, keyed by the fragment
  // subquery's canonical form (isomorphic fragments cost the same).
  struct FragmentCost {
    double eval_cost;
    double rows;
    std::string canonical;  // query::Canonicalize key, for hint lookups
  };
  using FragmentCache = std::map<std::string, FragmentCost>;

  Result<double> CostOfCoverCached(const query::Cq& q,
                                   const query::Cover& cover,
                                   FragmentCache* cache) const;

  const reformulation::Reformulator* reformulator_;
  const cost::CostModel* cost_model_;
  const ViewHints* hints_;  // not owned; may be null
};

}  // namespace optimizer
}  // namespace rdfref

#endif  // RDFREF_OPTIMIZER_GCOV_H_
