#ifndef RDFREF_QUERY_SPARQL_PARSER_H_
#define RDFREF_QUERY_SPARQL_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "query/cq.h"
#include "query/ucq.h"

namespace rdfref {
namespace query {

/// \brief Parser for the conjunctive (BGP) dialect of SPARQL that the paper
/// considers (Section 3: "(unions of) basic graph pattern queries").
///
/// Grammar (case-insensitive keywords):
///   PREFIX pfx: <iri>                       (rdf: and rdfs: are built in)
///   SELECT ?v1 ... ?vn WHERE { tp1 . tp2 . ... }
///   tp ::= term term term
///   term ::= ?var | <iri> | pfx:local | "literal" | a
///
/// Constants are interned into `dict`: a query may mention values absent
/// from the data (they simply match nothing).
Result<Cq> ParseSparql(std::string_view text, rdf::Dictionary* dict);

/// \brief Parses the full "(unions of) BGP" dialect:
///   SELECT ?v... WHERE { tp... } [UNION { tp... }]...
/// Every branch must bind all selected variables. A query without UNION
/// yields a one-member UCQ.
Result<Ucq> ParseSparqlUnion(std::string_view text, rdf::Dictionary* dict);

}  // namespace query
}  // namespace rdfref

#endif  // RDFREF_QUERY_SPARQL_PARSER_H_
