#ifndef RDFREF_QUERY_SPARQL_PARSER_H_
#define RDFREF_QUERY_SPARQL_PARSER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "query/cq.h"
#include "query/ucq.h"

namespace rdfref {
namespace query {

/// \brief Parser for the conjunctive (BGP) dialect of SPARQL that the paper
/// considers (Section 3: "(unions of) basic graph pattern queries").
///
/// Grammar (case-insensitive keywords):
///   PREFIX pfx: <iri>                       (rdf: and rdfs: are built in)
///   SELECT ?v1 ... ?vn WHERE { tp1 . tp2 . ... }
///   tp ::= term term term
///   term ::= ?var | <iri> | pfx:local | "literal" | a
///
/// Constants are interned into `dict`: a query may mention values absent
/// from the data (they simply match nothing).
Result<Cq> ParseSparql(std::string_view text, rdf::Dictionary* dict);

/// \brief Parses the full "(unions of) BGP" dialect:
///   SELECT ?v... WHERE { tp... } [UNION { tp... }]...
/// Every branch must bind all selected variables. A query without UNION
/// yields a one-member UCQ.
Result<Ucq> ParseSparqlUnion(std::string_view text, rdf::Dictionary* dict);

/// \brief Renders a CQ back to the SPARQL dialect ParseSparql accepts, such
/// that parse(serialize(q)) is structurally identical to q (equal
/// CanonicalKey). Errors (kInvalidArgument) on queries the dialect cannot
/// express: constant head slots, blank-node constants, variable names that
/// are not SPARQL identifiers, or an empty head/body.
Result<std::string> ToSparql(const Cq& q, const rdf::Dictionary& dict);

/// \brief Renders a UCQ as SELECT ... WHERE { } UNION { } ... Head
/// variables are renamed to a canonical ?h0.. ?hN-1 per branch (each
/// branch has its own variable table), so parse(serialize(u)) matches
/// member-by-member up to variable renaming. Errors additionally when a
/// member's head repeats a variable (inexpressible once renamed).
Result<std::string> ToSparql(const Ucq& u, const rdf::Dictionary& dict);

}  // namespace query
}  // namespace rdfref

#endif  // RDFREF_QUERY_SPARQL_PARSER_H_
