#include "query/ucq.h"

#include <sstream>

namespace rdfref {
namespace query {

std::string Ucq::ToString(const rdf::Dictionary& dict,
                          size_t max_members) const {
  std::ostringstream out;
  out << "UCQ[" << members_.size() << "]{\n";
  for (size_t i = 0; i < members_.size() && i < max_members; ++i) {
    out << "  " << members_[i].ToString(dict) << "\n";
  }
  if (members_.size() > max_members) {
    out << "  ... (" << (members_.size() - max_members) << " more)\n";
  }
  out << "}";
  return out.str();
}

}  // namespace query
}  // namespace rdfref
