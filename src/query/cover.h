#ifndef RDFREF_QUERY_COVER_H_
#define RDFREF_QUERY_COVER_H_

#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/cq.h"

namespace rdfref {
namespace query {

/// \brief A cover of a conjunctive query q [5]: a set of fragments, each a
/// set of body-atom indexes, whose union is all of q's atoms. Fragments may
/// overlap (overlap is precisely what made q'' of Example 1 fast).
///
/// Every cover induces a query answering strategy (a JUCQ): reformulate each
/// fragment subquery into a UCQ, evaluate the UCQs, join their results, and
/// project q's head. The classic strategies are special covers:
///   - the UCQ strategy  = the one-fragment cover {{t1,...,tα}}
///   - the SCQ strategy  = the singleton cover {{t1},...,{tα}} [15]
class Cover {
 public:
  Cover() = default;
  explicit Cover(std::vector<std::vector<int>> fragments)
      : fragments_(std::move(fragments)) {
    Normalize();
  }

  /// \brief The one-fragment cover of a query with `num_atoms` atoms.
  static Cover SingleFragment(size_t num_atoms);

  /// \brief The singleton cover {{0},...,{num_atoms-1}} (the SCQ strategy).
  static Cover Singletons(size_t num_atoms);

  /// \brief Checks that the fragments exactly cover q's atoms, that every
  /// fragment is connected through shared variables (so its subquery has no
  /// cartesian product), and that indexes are in range.
  Status Validate(const Cq& q) const;

  const std::vector<std::vector<int>>& fragments() const { return fragments_; }
  size_t num_fragments() const { return fragments_.size(); }

  /// \brief For fragment `i`, the variables it shares with any other
  /// fragment (they become distinguished in the fragment subquery).
  std::set<VarId> SharedVars(const Cq& q, size_t i) const;

  /// \brief Builds all fragment subqueries of q under this cover.
  std::vector<Cq> FragmentQueries(const Cq& q) const;

  /// \brief Returns this cover without subsumed fragments (fragments that
  /// are strict subsets of another fragment): their subqueries would be
  /// redundant joins. GCov applies this after every extension move.
  Cover Reduced() const;

  /// \brief Canonical text form, e.g. "{t0,t2}{t1,t3}".
  std::string ToString() const;

  friend bool operator==(const Cover& a, const Cover& b) {
    return a.fragments_ == b.fragments_;
  }
  friend bool operator<(const Cover& a, const Cover& b) {
    return a.fragments_ < b.fragments_;
  }

 private:
  /// Sorts atom indexes inside fragments and fragments lexicographically,
  /// and drops duplicate fragments, so equal covers compare equal.
  void Normalize();

  std::vector<std::vector<int>> fragments_;
};

}  // namespace query
}  // namespace rdfref

#endif  // RDFREF_QUERY_COVER_H_
