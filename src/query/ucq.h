#ifndef RDFREF_QUERY_UCQ_H_
#define RDFREF_QUERY_UCQ_H_

#include <string>
#include <vector>

#include "query/cq.h"

namespace rdfref {
namespace query {

/// \brief A union of conjunctive queries — the classic reformulation target
/// language [7, 8, 9, 12, 16].
///
/// All member CQs share the *arity* of the head; member heads may differ in
/// which slots are constants (when reformulation bound distinguished
/// variables).
class Ucq {
 public:
  Ucq() = default;
  explicit Ucq(std::vector<Cq> members) : members_(std::move(members)) {}

  void Add(Cq cq) { members_.push_back(std::move(cq)); }

  const std::vector<Cq>& members() const { return members_; }
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// \brief Head arity (taken from the first member; 0 when empty).
  size_t arity() const { return members_.empty() ? 0 : members_[0].head().size(); }

  std::string ToString(const rdf::Dictionary& dict,
                       size_t max_members = 20) const;

 private:
  std::vector<Cq> members_;
};

}  // namespace query
}  // namespace rdfref

#endif  // RDFREF_QUERY_UCQ_H_
