#ifndef RDFREF_QUERY_CQ_H_
#define RDFREF_QUERY_CQ_H_

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/term.h"

namespace rdfref {
namespace query {

/// \brief Query-local variable identifier.
using VarId = uint32_t;

/// \brief A term of a triple pattern: either a query variable or an RDF
/// value (dictionary-encoded constant).
struct QTerm {
  bool is_var = false;
  uint32_t id = 0;  ///< a VarId when is_var, otherwise an rdf::TermId

  static QTerm Var(VarId v) { return QTerm{true, v}; }
  static QTerm Const(rdf::TermId t) { return QTerm{false, t}; }

  VarId var() const { return id; }
  rdf::TermId term() const { return id; }

  friend bool operator==(const QTerm& a, const QTerm& b) {
    return a.is_var == b.is_var && a.id == b.id;
  }
  friend bool operator!=(const QTerm& a, const QTerm& b) { return !(a == b); }
  friend bool operator<(const QTerm& a, const QTerm& b) {
    if (a.is_var != b.is_var) return a.is_var < b.is_var;
    return a.id < b.id;
  }
};

/// \brief A triple pattern (atom of a BGP): subject, property, object, any of
/// which may be a variable — the DB fragment allows variables in *all*
/// positions, including property and class positions.
///
/// An atom may additionally carry an *id interval* on its property or object
/// position (range_pos/range_hi): the position's QTerm then holds the
/// interval's low endpoint and the atom matches any id in [lo, range_hi].
/// Interval atoms are an internal reformulation form — the hierarchy
/// encoding (rdf/encoding.h) fuses "C or any subclass of C" unions into one
/// such atom. User-written queries and serialized SPARQL never contain them.
struct Atom {
  /// Values of range_pos: which position carries the interval.
  static constexpr uint8_t kRangeP = 1;
  static constexpr uint8_t kRangeO = 2;
  static constexpr uint8_t kRangeNone = 3;

  QTerm s, p, o;
  uint8_t range_pos = kRangeNone;
  rdf::TermId range_hi = 0;  ///< inclusive upper bound; meaningful iff ranged

  Atom() = default;
  Atom(QTerm subject, QTerm property, QTerm object)
      : s(subject), p(property), o(object) {}

  bool has_range() const { return range_pos != kRangeNone; }

  /// \brief The interval's inclusive low endpoint (the ranged position's
  /// constant). Only meaningful when has_range().
  rdf::TermId range_lo() const {
    return range_pos == kRangeP ? p.term() : o.term();
  }

  friend bool operator==(const Atom& a, const Atom& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o &&
           a.range_pos == b.range_pos && a.range_hi == b.range_hi;
  }
  friend bool operator<(const Atom& a, const Atom& b) {
    if (!(a.s == b.s)) return a.s < b.s;
    if (!(a.p == b.p)) return a.p < b.p;
    if (!(a.o == b.o)) return a.o < b.o;
    if (a.range_pos != b.range_pos) return a.range_pos < b.range_pos;
    return a.range_hi < b.range_hi;
  }
};

/// \brief A conjunctive query (basic graph pattern query):
/// q(head) :- t1, ..., tα.
///
/// Head slots are QTerms rather than variables because reformulation may
/// bind a distinguished variable to a schema constant (rules 5-13); such a
/// union member contributes the constant to its answer tuples.
class Cq {
 public:
  Cq() = default;

  /// \brief Declares a new variable with a display name; returns its id.
  VarId AddVar(std::string name);

  /// \brief Declares a fresh non-distinguished variable (names _f0, _f1, …).
  VarId FreshVar();

  /// \brief Appends a head slot.
  void AddHead(QTerm t) { head_.push_back(t); }

  /// \brief Appends a body atom.
  void AddAtom(const Atom& a) { body_.push_back(a); }

  const std::vector<QTerm>& head() const { return head_; }
  const std::vector<Atom>& body() const { return body_; }
  std::vector<Atom>* mutable_body() { return &body_; }
  std::vector<QTerm>* mutable_head() { return &head_; }

  size_t num_vars() const { return var_names_.size(); }
  const std::string& var_name(VarId v) const { return var_names_[v]; }

  /// \brief Replaces variable `v` by constant `c` in the head and every
  /// body atom (used when a reformulation rule binds a variable).
  void Substitute(VarId v, rdf::TermId c);

  /// \brief All variables occurring in the body.
  std::set<VarId> BodyVars() const;

  /// \brief Variables of one atom.
  static std::set<VarId> AtomVars(const Atom& a);

  /// \brief Head variables (skipping constant head slots).
  std::set<VarId> HeadVars() const;

  /// \brief True when every head variable occurs in the body (safety).
  bool IsSafe() const;

  /// \brief Marks a variable as resource-constrained: it may only bind
  /// URIs and blank nodes, never literals. Reformulation rules 3 and 7
  /// impose this on the subject they move into object position (a literal
  /// cannot be the subject of an entailed rdf:type triple).
  void AddResourceVar(VarId v) { resource_vars_.insert(v); }
  const std::set<VarId>& resource_vars() const { return resource_vars_; }

  /// \brief A canonical string key: equal for CQs identical modulo
  /// renaming of variables (by order of first occurrence in head then
  /// body). Used to deduplicate reformulations.
  std::string CanonicalKey() const;

  /// \brief Renders q(head) :- atom, atom, ... with dictionary-decoded
  /// constants.
  std::string ToString(const rdf::Dictionary& dict) const;

  /// \brief Builds the subquery of a cover fragment: body = the atoms at
  /// `atom_indexes`, head = this query's head restricted to variables in the
  /// fragment, plus `extra_distinguished` variables occurring in it (the
  /// shared-with-other-fragments variables).
  Cq FragmentQuery(const std::vector<int>& atom_indexes,
                   const std::set<VarId>& extra_distinguished) const;

 private:
  std::vector<QTerm> head_;
  std::vector<Atom> body_;
  std::set<VarId> resource_vars_;
  std::vector<std::string> var_names_;
  uint32_t fresh_counter_ = 0;
};

}  // namespace query
}  // namespace rdfref

#endif  // RDFREF_QUERY_CQ_H_
