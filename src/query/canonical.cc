#include "query/canonical.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

namespace rdfref {
namespace query {
namespace {

// Collapses degenerate intervals ([c..c] is just c) and drops
// exact-duplicate atoms, preserving first-occurrence order. Equivariant
// under variable renaming: duplicates stay duplicates when every variable
// is renamed consistently.
Cq NormalizeAtoms(const Cq& q) {
  Cq out = q;
  std::vector<Atom>* body = out.mutable_body();
  for (Atom& a : *body) {
    if (a.has_range() && a.range_hi == a.range_lo()) {
      a.range_pos = Atom::kRangeNone;
      a.range_hi = 0;
    }
  }
  std::set<Atom> seen;
  std::vector<Atom> deduped;
  deduped.reserve(body->size());
  for (const Atom& a : *body) {
    if (seen.insert(a).second) deduped.push_back(a);
  }
  *body = std::move(deduped);
  return out;
}

// One canonicalization step: rename variables by first occurrence (head
// then body, each atom s/p/o), then sort the renamed body. The output's
// variables are 0..n-1 in first-occurrence order *of the input*, so a
// second step can still shuffle names when sorting moved atoms — hence the
// fixpoint iteration in Canonicalize.
Cq Step(const Cq& q) {
  std::unordered_map<VarId, VarId> rank;
  auto note = [&rank](const QTerm& t) {
    if (t.is_var) rank.emplace(t.var(), static_cast<VarId>(rank.size()));
  };
  for (const QTerm& t : q.head()) note(t);
  for (const Atom& a : q.body()) {
    note(a.s);
    note(a.p);
    note(a.o);
  }

  Cq out;
  for (size_t i = 0; i < rank.size(); ++i) {
    out.AddVar("v" + std::to_string(i));
  }
  auto conv = [&rank](const QTerm& t) {
    return t.is_var ? QTerm::Var(rank.at(t.var())) : t;
  };
  for (const QTerm& t : q.head()) out.AddHead(conv(t));

  std::vector<Atom> body;
  body.reserve(q.body().size());
  for (const Atom& a : q.body()) {
    Atom r(conv(a.s), conv(a.p), conv(a.o));
    r.range_pos = a.range_pos;
    r.range_hi = a.range_hi;
    body.push_back(r);
  }
  std::sort(body.begin(), body.end());
  for (size_t i = 0; i < body.size(); ++i) {
    if (i > 0 && body[i] == body[i - 1]) continue;  // sorted ⇒ global dedup
    out.AddAtom(body[i]);
  }
  for (VarId v : q.resource_vars()) {
    auto it = rank.find(v);
    // A resource var that occurs nowhere constrains nothing; drop it so
    // α-equivalent queries with stray declarations agree.
    if (it != rank.end()) out.AddResourceVar(it->second);
  }
  return out;
}

}  // namespace

CanonicalCq Canonicalize(const Cq& q) {
  Cq state = NormalizeAtoms(q);
  // Step is a function on a finite orbit (renamings × atom orders), so
  // iterating must either reach a fixpoint or enter a cycle. Keys recorded
  // in visit order detect the cycle; its lexicographically smallest state
  // is the representative (any member would do — smallest makes the choice
  // independent of the entry point, which is what idempotence needs).
  std::map<std::string, Cq> seen;
  std::vector<std::string> order;
  for (;;) {
    state = Step(state);
    // On a Step output the first-occurrence renaming is the identity, so
    // CanonicalKey() is an exact serialization of the state.
    std::string key = state.CanonicalKey();
    auto [it, inserted] = seen.emplace(key, state);
    if (!inserted) {
      size_t entry = 0;
      while (order[entry] != key) ++entry;
      const std::string* best = &order[entry];
      for (size_t i = entry + 1; i < order.size(); ++i) {
        if (order[i] < *best) best = &order[i];
      }
      return CanonicalCq{seen.at(*best), *best};
    }
    order.push_back(std::move(key));
  }
}

std::string UcqPlanKey(const Ucq& ucq) {
  std::string key;
  for (const Cq& member : ucq.members()) {
    key += member.CanonicalKey();
    key += '\n';
  }
  return key;
}

}  // namespace query
}  // namespace rdfref
