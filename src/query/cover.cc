#include "query/cover.h"

#include <algorithm>
#include <sstream>

namespace rdfref {
namespace query {

Cover Cover::SingleFragment(size_t num_atoms) {
  std::vector<int> all(num_atoms);
  for (size_t i = 0; i < num_atoms; ++i) all[i] = static_cast<int>(i);
  return Cover({all});
}

Cover Cover::Singletons(size_t num_atoms) {
  std::vector<std::vector<int>> fragments;
  fragments.reserve(num_atoms);
  for (size_t i = 0; i < num_atoms; ++i) {
    fragments.push_back({static_cast<int>(i)});
  }
  return Cover(std::move(fragments));
}

void Cover::Normalize() {
  for (std::vector<int>& f : fragments_) {
    std::sort(f.begin(), f.end());
    f.erase(std::unique(f.begin(), f.end()), f.end());
  }
  std::sort(fragments_.begin(), fragments_.end());
  fragments_.erase(std::unique(fragments_.begin(), fragments_.end()),
                   fragments_.end());
}

Status Cover::Validate(const Cq& q) const {
  const int n = static_cast<int>(q.body().size());
  if (n == 0) return Status::InvalidArgument("query has no atoms");
  if (fragments_.empty()) return Status::InvalidArgument("empty cover");
  std::vector<bool> covered(n, false);
  for (const std::vector<int>& f : fragments_) {
    if (f.empty()) return Status::InvalidArgument("empty fragment");
    for (int idx : f) {
      if (idx < 0 || idx >= n) {
        return Status::OutOfRange("atom index " + std::to_string(idx) +
                                  " out of range");
      }
      covered[idx] = true;
    }
    // Connectivity of the fragment through shared variables.
    if (f.size() > 1) {
      std::vector<bool> reached(f.size(), false);
      reached[0] = true;
      bool grew = true;
      while (grew) {
        grew = false;
        for (size_t i = 0; i < f.size(); ++i) {
          if (reached[i]) continue;
          std::set<VarId> vi = Cq::AtomVars(q.body()[f[i]]);
          for (size_t j = 0; j < f.size(); ++j) {
            if (!reached[j]) continue;
            std::set<VarId> vj = Cq::AtomVars(q.body()[f[j]]);
            bool shares = std::any_of(vi.begin(), vi.end(), [&vj](VarId v) {
              return vj.count(v) > 0;
            });
            if (shares) {
              reached[i] = true;
              grew = true;
              break;
            }
          }
        }
      }
      if (!std::all_of(reached.begin(), reached.end(),
                       [](bool b) { return b; })) {
        return Status::InvalidArgument(
            "fragment is not connected through shared variables");
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    if (!covered[i]) {
      return Status::InvalidArgument("atom t" + std::to_string(i) +
                                     " not covered");
    }
  }
  return Status::OK();
}

std::set<VarId> Cover::SharedVars(const Cq& q, size_t i) const {
  std::set<VarId> mine;
  for (int idx : fragments_[i]) {
    std::set<VarId> vars = Cq::AtomVars(q.body()[idx]);
    mine.insert(vars.begin(), vars.end());
  }
  std::set<VarId> shared;
  for (size_t j = 0; j < fragments_.size(); ++j) {
    if (j == i) continue;
    for (int idx : fragments_[j]) {
      for (VarId v : Cq::AtomVars(q.body()[idx])) {
        if (mine.count(v)) shared.insert(v);
      }
    }
  }
  return shared;
}

std::vector<Cq> Cover::FragmentQueries(const Cq& q) const {
  std::vector<Cq> out;
  out.reserve(fragments_.size());
  for (size_t i = 0; i < fragments_.size(); ++i) {
    out.push_back(q.FragmentQuery(fragments_[i], SharedVars(q, i)));
  }
  return out;
}

Cover Cover::Reduced() const {
  std::vector<std::vector<int>> kept;
  for (size_t i = 0; i < fragments_.size(); ++i) {
    bool subsumed = false;
    for (size_t j = 0; j < fragments_.size() && !subsumed; ++j) {
      if (i == j || fragments_[i].size() >= fragments_[j].size()) continue;
      subsumed = std::includes(fragments_[j].begin(), fragments_[j].end(),
                               fragments_[i].begin(), fragments_[i].end());
    }
    if (!subsumed) kept.push_back(fragments_[i]);
  }
  return Cover(std::move(kept));
}

std::string Cover::ToString() const {
  std::ostringstream out;
  for (const std::vector<int>& f : fragments_) {
    out << "{";
    for (size_t i = 0; i < f.size(); ++i) {
      if (i > 0) out << ",";
      out << "t" << f[i];
    }
    out << "}";
  }
  return out.str();
}

}  // namespace query
}  // namespace rdfref
