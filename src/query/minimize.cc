#include "query/minimize.h"

#include <unordered_map>
#include <vector>

namespace rdfref {
namespace query {

namespace {

using Mapping = std::unordered_map<VarId, QTerm>;

// Tries to extend `mapping` so that h(from) = to; constants must match.
bool Unify(const QTerm& from, const QTerm& to, Mapping* mapping) {
  if (!from.is_var) return from == to;
  auto it = mapping->find(from.var());
  if (it != mapping->end()) return it->second == to;
  mapping->emplace(from.var(), to);
  return true;
}

// Backtracking search mapping container.body()[depth..] into contained.
bool MatchAtoms(const Cq& container, const Cq& contained, size_t depth,
                Mapping* mapping) {
  if (depth == container.body().size()) return true;
  const Atom& atom = container.body()[depth];
  for (const Atom& target : contained.body()) {
    // An interval atom is semantically a union over its id range, so the
    // syntactic homomorphism argument only holds between atoms with
    // *identical* range annotations (conservative: containments involving
    // differing intervals are simply not detected).
    if (atom.range_pos != target.range_pos || atom.range_hi != target.range_hi) {
      continue;
    }
    Mapping saved = *mapping;
    if (Unify(atom.s, target.s, mapping) &&
        Unify(atom.p, target.p, mapping) &&
        Unify(atom.o, target.o, mapping) &&
        MatchAtoms(container, contained, depth + 1, mapping)) {
      return true;
    }
    *mapping = std::move(saved);
  }
  return false;
}

}  // namespace

bool CqContains(const Cq& container, const Cq& contained,
                const rdf::Dictionary* dict) {
  if (container.head().size() != contained.head().size()) return false;

  // Heads must map slot-wise.
  Mapping mapping;
  for (size_t i = 0; i < container.head().size(); ++i) {
    if (!Unify(container.head()[i], contained.head()[i], &mapping)) {
      return false;
    }
  }
  if (!MatchAtoms(container, contained, 0, &mapping)) return false;

  // A resource-constrained variable of the container restricts its
  // answers; the image must provably never be a literal.
  for (VarId v : container.resource_vars()) {
    auto it = mapping.find(v);
    if (it == mapping.end()) continue;  // variable unused: vacuous
    const QTerm& image = it->second;
    if (image.is_var) {
      if (!contained.resource_vars().count(image.var())) return false;
    } else {
      if (dict == nullptr || !dict->Contains(image.term()) ||
          dict->Lookup(image.term()).is_literal()) {
        return false;
      }
    }
  }
  return true;
}

Ucq MinimizeUcq(const Ucq& ucq, const rdf::Dictionary* dict) {
  const std::vector<Cq>& members = ucq.members();
  const size_t n = members.size();
  std::vector<bool> redundant(n, false);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n && !redundant[i]; ++j) {
      if (i == j || redundant[j]) continue;
      if (!CqContains(members[j], members[i], dict)) continue;
      // members[i] ⊆ members[j]: drop i, unless they are equivalent and i
      // comes first (keep the earliest of an equivalence class).
      if (j > i && CqContains(members[i], members[j], dict)) continue;
      redundant[i] = true;
    }
  }
  Ucq out;
  for (size_t i = 0; i < n; ++i) {
    if (!redundant[i]) out.Add(members[i]);
  }
  return out;
}

}  // namespace query
}  // namespace rdfref
