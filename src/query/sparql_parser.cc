#include "query/sparql_parser.h"

#include <algorithm>
#include <cctype>
#include <set>
#include <unordered_map>
#include <vector>

#include "rdf/vocab.h"

namespace rdfref {
namespace query {

namespace {

struct Token {
  enum Kind {
    kKeyword,  // SELECT / WHERE / PREFIX (uppercased)
    kVar,      // ?name (text = name)
    kUri,      // <iri> (text = iri)
    kPName,    // pfx:local
    kLiteral,  // "..." (text = contents)
    kA,        // the 'a' keyword
    kLBrace,
    kRBrace,
    kDot,
  };
  Kind kind;
  std::string text;
};

bool IsWordChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         c == '-' || c == '.' || c == '/' || c == '#';
}

Status Lex(std::string_view text, std::vector<Token>* out) {
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '{') {
      out->push_back({Token::kLBrace, "{"});
      ++i;
    } else if (c == '}') {
      out->push_back({Token::kRBrace, "}"});
      ++i;
    } else if (c == '.') {
      out->push_back({Token::kDot, "."});
      ++i;
    } else if (c == '?' || c == '$') {
      size_t j = i + 1;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      if (j == i + 1) return Status::ParseError("empty variable name");
      out->push_back({Token::kVar, std::string(text.substr(i + 1, j - i - 1))});
      i = j;
    } else if (c == '<') {
      size_t close = text.find('>', i + 1);
      if (close == std::string_view::npos) {
        return Status::ParseError("unterminated IRI");
      }
      out->push_back({Token::kUri, std::string(text.substr(i + 1, close - i - 1))});
      i = close + 1;
    } else if (c == '"') {
      std::string value;
      size_t j = i + 1;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < n) {
          value.push_back(text[j + 1]);
          j += 2;
        } else {
          value.push_back(text[j]);
          ++j;
        }
      }
      if (j >= n) return Status::ParseError("unterminated literal");
      out->push_back({Token::kLiteral, std::move(value)});
      i = j + 1;
    } else if (IsWordChar(c)) {
      size_t j = i;
      while (j < n && IsWordChar(text[j])) ++j;
      std::string word(text.substr(i, j - i));
      // Words ending in '.' would have been split by the dot handler only if
      // '.' were not a word char; strip a trailing dot so "ns:x." works.
      bool trailing_dot = false;
      while (!word.empty() && word.back() == '.') {
        word.pop_back();
        --j;
        trailing_dot = true;
      }
      std::string upper = word;
      std::transform(upper.begin(), upper.end(), upper.begin(), [](char ch) {
        return static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      });
      if (upper == "SELECT" || upper == "WHERE" || upper == "PREFIX" ||
          upper == "UNION") {
        out->push_back({Token::kKeyword, upper});
      } else if (word == "a") {
        out->push_back({Token::kA, word});
      } else if (word.find(':') != std::string::npos) {
        out->push_back({Token::kPName, word});
      } else {
        return Status::ParseError("unexpected token '" + word + "'");
      }
      if (trailing_dot) out->push_back({Token::kDot, "."});
      i = j;
      while (i < n && text[i] == '.') {
        // already emitted one dot above; skip the consumed dots
        ++i;
        break;
      }
    } else {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "'");
    }
  }
  return Status::OK();
}

}  // namespace

namespace {

// Parses one { tp... } group into a Cq with its own variable table; the
// head is built from `head_names` (each must occur in the group).
Result<Cq> ParseGroup(const std::vector<Token>& tokens, size_t* pos,
                      const std::vector<std::string>& head_names,
                      const std::unordered_map<std::string, std::string>&
                          prefixes,
                      rdf::Dictionary* dict) {
  auto at_end = [&]() { return *pos >= tokens.size(); };
  if (at_end() || tokens[*pos].kind != Token::kLBrace) {
    return Status::ParseError("expected '{'");
  }
  ++*pos;

  Cq cq;
  std::unordered_map<std::string, VarId> vars;
  auto var_id = [&](const std::string& name) {
    auto it = vars.find(name);
    if (it != vars.end()) return it->second;
    VarId id = cq.AddVar(name);
    vars.emplace(name, id);
    return id;
  };
  auto resolve = [&](const Token& tok) -> Result<QTerm> {
    switch (tok.kind) {
      case Token::kVar:
        return QTerm::Var(var_id(tok.text));
      case Token::kUri:
        return QTerm::Const(dict->InternUri(tok.text));
      case Token::kLiteral:
        return QTerm::Const(dict->InternLiteral(tok.text));
      case Token::kA:
        return QTerm::Const(rdf::vocab::kTypeId);
      case Token::kPName: {
        size_t colon = tok.text.find(':');
        std::string pfx = tok.text.substr(0, colon);
        auto it = prefixes.find(pfx);
        if (it == prefixes.end()) {
          return Status::ParseError("undefined prefix '" + pfx + ":'");
        }
        return QTerm::Const(
            dict->InternUri(it->second + tok.text.substr(colon + 1)));
      }
      default:
        return Status::ParseError("expected a term in triple pattern");
    }
  };

  while (!at_end() && tokens[*pos].kind != Token::kRBrace) {
    if (tokens[*pos].kind == Token::kDot) {  // stray separators are fine
      ++*pos;
      continue;
    }
    if (*pos + 2 >= tokens.size()) {
      return Status::ParseError("incomplete triple pattern");
    }
    RDFREF_ASSIGN_OR_RETURN(QTerm st, resolve(tokens[*pos]));
    RDFREF_ASSIGN_OR_RETURN(QTerm pt, resolve(tokens[*pos + 1]));
    RDFREF_ASSIGN_OR_RETURN(QTerm ot, resolve(tokens[*pos + 2]));
    cq.AddAtom(Atom(st, pt, ot));
    *pos += 3;
  }
  if (at_end()) return Status::ParseError("expected '}'");
  ++*pos;  // consume '}'

  for (const std::string& name : head_names) {
    auto it = vars.find(name);
    if (it == vars.end()) {
      return Status::ParseError("head variable ?" + name +
                                " does not occur in every UNION branch");
    }
    cq.AddHead(QTerm::Var(it->second));
  }
  if (cq.body().empty()) return Status::ParseError("empty BGP");
  return cq;
}

}  // namespace

Result<Ucq> ParseSparqlUnion(std::string_view text, rdf::Dictionary* dict) {
  std::vector<Token> tokens;
  RDFREF_RETURN_NOT_OK(Lex(text, &tokens));

  std::unordered_map<std::string, std::string> prefixes = {
      {"rdf", "http://www.w3.org/1999/02/22-rdf-syntax-ns#"},
      {"rdfs", "http://www.w3.org/2000/01/rdf-schema#"},
  };

  size_t pos = 0;
  auto at_end = [&]() { return pos >= tokens.size(); };

  while (!at_end() && tokens[pos].kind == Token::kKeyword &&
         tokens[pos].text == "PREFIX") {
    ++pos;
    if (pos + 1 >= tokens.size() || tokens[pos].kind != Token::kPName ||
        tokens[pos + 1].kind != Token::kUri) {
      return Status::ParseError("malformed PREFIX declaration");
    }
    std::string pname = tokens[pos].text;
    if (pname.empty() || pname.back() != ':') {
      return Status::ParseError("prefix must end with ':'");
    }
    prefixes[pname.substr(0, pname.size() - 1)] = tokens[pos + 1].text;
    pos += 2;
  }

  if (at_end() || tokens[pos].kind != Token::kKeyword ||
      tokens[pos].text != "SELECT") {
    return Status::ParseError("expected SELECT");
  }
  ++pos;

  std::vector<std::string> head_names;
  while (!at_end() && tokens[pos].kind == Token::kVar) {
    head_names.push_back(tokens[pos].text);
    ++pos;
  }
  if (head_names.empty()) {
    return Status::ParseError("SELECT needs at least one variable");
  }

  if (at_end() || tokens[pos].kind != Token::kKeyword ||
      tokens[pos].text != "WHERE") {
    return Status::ParseError("expected WHERE");
  }
  ++pos;

  Ucq ucq;
  while (true) {
    RDFREF_ASSIGN_OR_RETURN(Cq branch,
                            ParseGroup(tokens, &pos, head_names, prefixes,
                                       dict));
    ucq.Add(std::move(branch));
    if (!at_end() && tokens[pos].kind == Token::kKeyword &&
        tokens[pos].text == "UNION") {
      ++pos;
      continue;
    }
    break;
  }
  if (!at_end()) {
    return Status::ParseError("unexpected trailing input after the BGP");
  }
  return ucq;
}

Result<Cq> ParseSparql(std::string_view text, rdf::Dictionary* dict) {
  RDFREF_ASSIGN_OR_RETURN(Ucq ucq, ParseSparqlUnion(text, dict));
  if (ucq.size() != 1) {
    return Status::ParseError(
        "query has UNION branches; use ParseSparqlUnion");
  }
  return ucq.members()[0];
}

namespace {

bool IsSparqlVarName(const std::string& name) {
  if (name.empty()) return false;
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return true;
}

Result<std::string> RenderConst(rdf::TermId id, const rdf::Dictionary& dict) {
  if (id >= dict.size()) {
    return Status::InvalidArgument("constant not in dictionary");
  }
  const rdf::Term& term = dict.Lookup(id);
  switch (term.kind) {
    case rdf::TermKind::kUri:
      if (term.lexical.find('>') != std::string::npos) {
        return Status::InvalidArgument("IRI contains '>'");
      }
      return "<" + term.lexical + ">";
    case rdf::TermKind::kLiteral: {
      std::string out = "\"";
      for (char c : term.lexical) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
    case rdf::TermKind::kBlank:
      return Status::InvalidArgument(
          "blank-node constants are not expressible in the dialect");
  }
  return Status::InvalidArgument("unknown term kind");
}

/// Renders one BGP group body; `name_of(v)` supplies the variable name.
template <typename NameFn>
Result<std::string> RenderGroup(const Cq& q, const rdf::Dictionary& dict,
                                const NameFn& name_of) {
  std::string out = "{ ";
  auto render = [&](const QTerm& t) -> Result<std::string> {
    if (t.is_var) return "?" + name_of(t.var());
    return RenderConst(t.term(), dict);
  };
  for (size_t i = 0; i < q.body().size(); ++i) {
    const Atom& a = q.body()[i];
    RDFREF_ASSIGN_OR_RETURN(std::string s, render(a.s));
    RDFREF_ASSIGN_OR_RETURN(std::string p, render(a.p));
    RDFREF_ASSIGN_OR_RETURN(std::string o, render(a.o));
    out += s + " " + p + " " + o + (i + 1 < q.body().size() ? " . " : " ");
  }
  out += "}";
  return out;
}

Status CheckSerializable(const Cq& q) {
  if (q.body().empty()) return Status::InvalidArgument("empty body");
  if (q.head().empty()) return Status::InvalidArgument("empty head");
  for (const Atom& a : q.body()) {
    if (a.has_range()) {
      // Id intervals are meaningless outside one dictionary's encoded id
      // space; serialized queries must survive a dictionary rebuild.
      return Status::InvalidArgument(
          "interval atoms are an internal reformulation form and are not "
          "expressible in SPARQL");
    }
  }
  for (const QTerm& h : q.head()) {
    if (!h.is_var) {
      return Status::InvalidArgument(
          "constant head slots are not expressible in SPARQL");
    }
  }
  if (!q.IsSafe()) {
    return Status::InvalidArgument("unsafe query (head var not in body)");
  }
  return Status::OK();
}

}  // namespace

Result<std::string> ToSparql(const Cq& q, const rdf::Dictionary& dict) {
  RDFREF_RETURN_NOT_OK(CheckSerializable(q));
  // Original names are kept, so they must be valid identifiers and no two
  // distinct variables may share one (they would merge on re-parse).
  std::set<VarId> used = q.BodyVars();
  std::set<std::string> names;
  for (VarId v : used) {
    if (!IsSparqlVarName(q.var_name(v))) {
      return Status::InvalidArgument("variable name '" + q.var_name(v) +
                                     "' is not a SPARQL identifier");
    }
    if (!names.insert(q.var_name(v)).second) {
      return Status::InvalidArgument("duplicate variable name '" +
                                     q.var_name(v) + "'");
    }
  }
  std::string out = "SELECT";
  for (const QTerm& h : q.head()) out += " ?" + q.var_name(h.var());
  out += " WHERE ";
  auto name_of = [&](VarId v) { return q.var_name(v); };
  RDFREF_ASSIGN_OR_RETURN(std::string group, RenderGroup(q, dict, name_of));
  return out + group;
}

Result<std::string> ToSparql(const Ucq& u, const rdf::Dictionary& dict) {
  if (u.size() == 0) return Status::InvalidArgument("empty union");
  // Branches have independent variable tables but share one SELECT list, so
  // every branch's variables are renamed: head slot i -> hi, the rest -> a
  // fresh x<n>. A head that repeats a variable cannot be renamed this way.
  std::string out = "SELECT";
  for (size_t i = 0; i < u.arity(); ++i) {
    out += " ?h" + std::to_string(i);
  }
  out += " WHERE ";
  for (size_t m = 0; m < u.size(); ++m) {
    const Cq& q = u.members()[m];
    RDFREF_RETURN_NOT_OK(CheckSerializable(q));
    std::unordered_map<VarId, std::string> renamed;
    for (size_t i = 0; i < q.head().size(); ++i) {
      if (!renamed.emplace(q.head()[i].var(), "h" + std::to_string(i))
               .second) {
        return Status::InvalidArgument(
            "a UNION member repeats a head variable; not expressible");
      }
    }
    int fresh = 0;
    for (VarId v : q.BodyVars()) {
      if (!renamed.count(v)) {
        renamed.emplace(v, "x" + std::to_string(fresh++));
      }
    }
    auto name_of = [&](VarId v) { return renamed.at(v); };
    RDFREF_ASSIGN_OR_RETURN(std::string group,
                            RenderGroup(q, dict, name_of));
    if (m > 0) out += " UNION ";
    out += group;
  }
  return out;
}

}  // namespace query
}  // namespace rdfref
