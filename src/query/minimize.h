#ifndef RDFREF_QUERY_MINIMIZE_H_
#define RDFREF_QUERY_MINIMIZE_H_

#include "query/cq.h"
#include "query/ucq.h"
#include "rdf/dictionary.h"

namespace rdfref {
namespace query {

/// \brief True when every answer of `contained` is an answer of
/// `container` on every database — decided by the classic homomorphism
/// theorem: a mapping h from container's terms to contained's terms that
/// is the identity on constants, maps head slot i to head slot i, and maps
/// every body atom into contained's body.
///
/// Resource-constrained variables (reformulation rules 3/7) restrict the
/// container's answers, so a constrained variable may only map to a
/// constant known to be a non-literal (checked via `dict`, when given) or
/// to a variable carrying the same constraint.
bool CqContains(const Cq& container, const Cq& contained,
                const rdf::Dictionary* dict = nullptr);

/// \brief Drops union members subsumed by other members (keeping the first
/// of mutually-equivalent ones). Reformulation UCQs routinely contain
/// redundant members — e.g. (x τ Book) alongside (x τ Publication) when
/// only saturated data is queried — and every dropped member saves one
/// parse/plan/evaluate round trip.
Ucq MinimizeUcq(const Ucq& ucq, const rdf::Dictionary* dict = nullptr);

}  // namespace query
}  // namespace rdfref

#endif  // RDFREF_QUERY_MINIMIZE_H_
