#ifndef RDFREF_QUERY_CANONICAL_H_
#define RDFREF_QUERY_CANONICAL_H_

#include <string>

#include "query/cq.h"
#include "query/ucq.h"

namespace rdfref {
namespace query {

/// \file
/// \brief CQ canonicalization — the grouping keys of the cross-query view
/// cache (DESIGN.md §15).
///
/// Two keys with different guarantees serve different cache roles:
///
///  - `Canonicalize` produces a *canonical form*: interval atoms
///    normalized, duplicate atoms dropped, body atoms sorted, variables
///    renamed by first occurrence. It is idempotent and α-invariant
///    (renaming a query's variables never changes its canonical key), so
///    the view-selection pass can aggregate "the same fragment asked under
///    different variable names" into one frequency bucket. It is a
///    *grouping* key, not a correctness key: atom reordering usually — but
///    not provably always — converges to the same representative.
///
///  - `UcqPlanKey` is the *correctness* key: the exact, order-sensitive
///    serialization of an evaluation plan. Two UCQs with equal plan keys
///    are α-equivalent member-by-member in the same member and atom order,
///    and the engine's evaluation of them is bit-identical (same join
///    orders, same emission order, same dedup order) — which is what lets
///    a cached table be replayed verbatim.

/// \brief A canonicalized CQ: the representative query plus its
/// CanonicalKey() (which, on a canonical form, is an exact serialization —
/// the canonical renaming is the identity on it).
struct CanonicalCq {
  Cq cq;
  std::string key;
};

/// \brief Canonicalizes `q`.
///
/// Normalization: a degenerate interval atom with range_hi == the ranged
/// position's id collapses to a classic atom; exact-duplicate body atoms
/// are dropped (conjunction idempotence). Then rename-by-first-occurrence
/// (head, then body, left to right) and sort-body are iterated to a
/// fixpoint; if the iteration cycles (renaming and sorting feed each
/// other), the lexicographically smallest key state of the cycle is the
/// canonical representative, which keeps the map deterministic and
/// idempotent: Canonicalize(Canonicalize(q).cq) == Canonicalize(q).
CanonicalCq Canonicalize(const Cq& q);

/// \brief The exact plan key of a UCQ: member CanonicalKey()s joined with
/// '\n' (keys never contain '\n', so the concatenation is unambiguous).
/// Rename-invariant, member/atom-order-sensitive.
std::string UcqPlanKey(const Ucq& ucq);

}  // namespace query
}  // namespace rdfref

#endif  // RDFREF_QUERY_CANONICAL_H_
