#include "query/cq.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

namespace rdfref {
namespace query {

VarId Cq::AddVar(std::string name) {
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(std::move(name));
  return id;
}

VarId Cq::FreshVar() {
  return AddVar("_f" + std::to_string(fresh_counter_++));
}

void Cq::Substitute(VarId v, rdf::TermId c) {
  auto subst = [v, c](QTerm* t) {
    if (t->is_var && t->var() == v) *t = QTerm::Const(c);
  };
  for (QTerm& t : head_) subst(&t);
  for (Atom& a : body_) {
    subst(&a.s);
    subst(&a.p);
    subst(&a.o);
  }
  // Substituted constants are schema URIs (the only constants rules bind),
  // which trivially satisfy a resource constraint.
  resource_vars_.erase(v);
}

std::set<VarId> Cq::BodyVars() const {
  std::set<VarId> vars;
  for (const Atom& a : body_) {
    for (const QTerm* t : {&a.s, &a.p, &a.o}) {
      if (t->is_var) vars.insert(t->var());
    }
  }
  return vars;
}

std::set<VarId> Cq::AtomVars(const Atom& a) {
  std::set<VarId> vars;
  for (const QTerm* t : {&a.s, &a.p, &a.o}) {
    if (t->is_var) vars.insert(t->var());
  }
  return vars;
}

std::set<VarId> Cq::HeadVars() const {
  std::set<VarId> vars;
  for (const QTerm& t : head_) {
    if (t.is_var) vars.insert(t.var());
  }
  return vars;
}

bool Cq::IsSafe() const {
  std::set<VarId> body_vars = BodyVars();
  for (const QTerm& t : head_) {
    if (t.is_var && !body_vars.count(t.var())) return false;
  }
  return true;
}

std::string Cq::CanonicalKey() const {
  std::unordered_map<VarId, uint32_t> renaming;
  auto canon = [&renaming](const QTerm& t) -> std::string {
    if (!t.is_var) return "c" + std::to_string(t.id);
    auto it = renaming.find(t.var());
    if (it == renaming.end()) {
      it = renaming.emplace(t.var(), static_cast<uint32_t>(renaming.size()))
               .first;
    }
    return "v" + std::to_string(it->second);
  };
  std::ostringstream key;
  for (const QTerm& t : head_) key << canon(t) << ",";
  key << ":-";
  for (const Atom& a : body_) {
    key << canon(a.s) << " " << canon(a.p) << " " << canon(a.o);
    if (a.has_range()) {
      // Interval atoms reference concrete dictionary intervals, so the raw
      // bounds (not renamed) are the canonical form.
      key << "R" << static_cast<int>(a.range_pos) << ".."
          << std::to_string(a.range_hi);
    }
    key << ".";
  }
  // Resource constraints distinguish otherwise-identical CQs.
  for (VarId v : resource_vars_) {
    auto it = renaming.find(v);
    if (it != renaming.end()) key << "r" << it->second << ";";
  }
  return key.str();
}

std::string Cq::ToString(const rdf::Dictionary& dict) const {
  auto render = [this, &dict](const QTerm& t) -> std::string {
    if (t.is_var) return "?" + var_names_[t.var()];
    return dict.Lookup(t.term()).ToString();
  };
  std::ostringstream out;
  out << "q(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out << ", ";
    out << render(head_[i]);
  }
  out << ") :- ";
  auto render_pos = [&](const Atom& a, const QTerm& t, uint8_t pos) {
    if (a.range_pos != pos) return render(t);
    // Interval position: [lo..hi] over the encoded id space.
    return "[" + render(t) + " .. " + dict.Lookup(a.range_hi).ToString() + "]";
  };
  for (size_t i = 0; i < body_.size(); ++i) {
    if (i > 0) out << ", ";
    const Atom& a = body_[i];
    out << render(a.s) << " " << render_pos(a, a.p, Atom::kRangeP) << " "
        << render_pos(a, a.o, Atom::kRangeO);
  }
  return out.str();
}

Cq Cq::FragmentQuery(const std::vector<int>& atom_indexes,
                     const std::set<VarId>& extra_distinguished) const {
  Cq fragment;
  fragment.var_names_ = var_names_;  // same variable numbering as the parent
  fragment.fresh_counter_ = fresh_counter_;
  fragment.resource_vars_ = resource_vars_;
  std::set<VarId> in_fragment;
  for (int idx : atom_indexes) {
    fragment.body_.push_back(body_[idx]);
    std::set<VarId> vars = AtomVars(body_[idx]);
    in_fragment.insert(vars.begin(), vars.end());
  }
  // Head: parent head variables occurring here, then extra distinguished
  // (shared) variables, deduplicated, in deterministic order.
  std::set<VarId> emitted;
  for (const QTerm& t : head_) {
    if (t.is_var && in_fragment.count(t.var()) && !emitted.count(t.var())) {
      fragment.head_.push_back(t);
      emitted.insert(t.var());
    }
  }
  for (VarId v : extra_distinguished) {
    if (in_fragment.count(v) && !emitted.count(v)) {
      fragment.head_.push_back(QTerm::Var(v));
      emitted.insert(v);
    }
  }
  return fragment;
}

}  // namespace query
}  // namespace rdfref
