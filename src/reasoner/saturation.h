#ifndef RDFREF_REASONER_SATURATION_H_
#define RDFREF_REASONER_SATURATION_H_

#include <cstddef>
#include <functional>

#include "rdf/graph.h"
#include "schema/schema.h"

namespace rdfref {
namespace reasoner {

/// \brief The Sat technique: materializes in the graph every triple its
/// RDFS constraints entail, so queries can then be *evaluated* directly
/// (Section 1 of the paper: "saturation").
///
/// Instance-level immediate entailment rules (with τ = rdf:type), applied
/// to fixpoint:
///   (rdfs9)  s τ c,  c ⊑sc c'  ⇒  s τ c'
///   (rdfs7)  s p o,  p ⊑sp p'  ⇒  s p' o
///   (rdfs2)  s p o,  p ←d c    ⇒  s τ c
///   (rdfs3)  s p o,  p ←r c    ⇒  o τ c   (only when o is not a literal)
/// The schema-level rules (S1-S6) are handled by schema::Schema::Saturate;
/// Saturate() below also writes the saturated constraint triples into the
/// graph, so G∞ contains every entailed triple, schema included.
class Saturator {
 public:
  /// \brief `schema` must be saturated and outlive the saturator.
  explicit Saturator(const schema::Schema* schema) : schema_(schema) {}

  /// \brief Saturates `graph` in place; returns the number of triples
  /// added. Idempotent: saturating a saturated graph adds nothing.
  size_t Saturate(rdf::Graph* graph) const;

  /// \brief Incremental maintenance: inserts `t` plus all its consequences
  /// into an already-saturated graph; returns the number of triples added.
  /// This is the update path whose cost the Sat technique must pay on every
  /// change (the maintenance penalty motivating Ref, Section 1).
  size_t Insert(rdf::Graph* graph, const rdf::Triple& t) const;

  /// \brief Incremental deletion by over-delete + rederive (DRed): removes
  /// the explicit triple `t` from the saturated graph along with every
  /// derived triple, then rederives the deleted triples that still have a
  /// derivation from the remaining data. `is_explicit` tells which triples
  /// are asserted facts (they are never over-deleted). Returns the net
  /// number of triples removed. Deleting *constraint* triples is a schema
  /// change and requires full re-saturation instead.
  size_t Delete(rdf::Graph* graph, const rdf::Triple& t,
                const std::function<bool(const rdf::Triple&)>& is_explicit)
      const;

 private:
  /// Adds `t` and, transitively, its immediate consequences.
  size_t AddWithConsequences(rdf::Graph* graph, const rdf::Triple& t) const;

  const schema::Schema* schema_;
};

}  // namespace reasoner
}  // namespace rdfref

#endif  // RDFREF_REASONER_SATURATION_H_
