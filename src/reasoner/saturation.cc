#include "reasoner/saturation.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "rdf/vocab.h"

namespace rdfref {
namespace reasoner {

namespace {
bool IsLiteral(const rdf::Graph& graph, rdf::TermId id) {
  return graph.dict().Lookup(id).is_literal();
}
}  // namespace

// Immediate consequences of one triple under the instance-level rules
// (shared by forward chaining and the DRed over-delete).
static void ImmediateConsequences(const schema::Schema& schema,
                                  const rdf::Graph& graph,
                                  const rdf::Triple& t,
                                  std::vector<rdf::Triple>* out) {
  if (t.p == rdf::vocab::kTypeId) {
    for (rdf::TermId super : schema.SuperClassesOf(t.o)) {
      out->emplace_back(t.s, rdf::vocab::kTypeId, super);
    }
  } else if (!rdf::vocab::IsSchemaProperty(t.p)) {
    for (rdf::TermId super : schema.SuperPropertiesOf(t.p)) {
      out->emplace_back(t.s, super, t.o);
    }
    for (rdf::TermId c : schema.DomainsOf(t.p)) {
      out->emplace_back(t.s, rdf::vocab::kTypeId, c);
    }
    if (!IsLiteral(graph, t.o)) {
      for (rdf::TermId c : schema.RangesOf(t.p)) {
        out->emplace_back(t.o, rdf::vocab::kTypeId, c);
      }
    }
  }
}

size_t Saturator::AddWithConsequences(rdf::Graph* graph,
                                      const rdf::Triple& seed) const {
  size_t added = 0;
  std::deque<rdf::Triple> worklist;
  if (graph->Add(seed)) ++added;
  // The seed's consequences are chased even when the seed itself was
  // already present (Saturate feeds every existing triple through here).
  worklist.push_back(seed);
  std::vector<rdf::Triple> derived;
  while (!worklist.empty()) {
    rdf::Triple t = worklist.front();
    worklist.pop_front();
    derived.clear();
    // (rdfs9) / (rdfs7) / (rdfs2) / (rdfs3).
    ImmediateConsequences(*schema_, *graph, t, &derived);
    for (const rdf::Triple& d : derived) {
      if (graph->Add(d)) {
        ++added;
        worklist.push_back(d);
      }
    }
  }
  return added;
}

size_t Saturator::Saturate(rdf::Graph* graph) const {
  size_t added = 0;
  // Schema component: the saturated constraints become explicit triples.
  size_t before = graph->size();
  schema_->EmitTriples(graph);
  added += graph->size() - before;

  // Instance component: one pass over a snapshot; AddWithConsequences
  // chases each triple's derivations to fixpoint, so no global iteration is
  // needed (the schema is saturated, collapsing rule chains).
  std::vector<rdf::Triple> snapshot = graph->SortedTriples();
  for (const rdf::Triple& t : snapshot) {
    added += AddWithConsequences(graph, t);
  }
  return added;
}

size_t Saturator::Insert(rdf::Graph* graph, const rdf::Triple& t) const {
  return AddWithConsequences(graph, t);
}

size_t Saturator::Delete(
    rdf::Graph* graph, const rdf::Triple& t,
    const std::function<bool(const rdf::Triple&)>& is_explicit) const {
  if (!graph->Contains(t)) return 0;
  const size_t size_before = graph->size();

  // 1. Over-delete: everything transitively derivable from t that is
  // present in the graph and is not itself an asserted fact.
  std::unordered_set<rdf::Triple, rdf::TripleHash> deleted;
  std::deque<rdf::Triple> worklist;
  deleted.insert(t);
  worklist.push_back(t);
  std::vector<rdf::Triple> derived;
  while (!worklist.empty()) {
    rdf::Triple d = worklist.front();
    worklist.pop_front();
    derived.clear();
    ImmediateConsequences(*schema_, *graph, d, &derived);
    for (const rdf::Triple& c : derived) {
      if (graph->Contains(c) && !is_explicit(c) && deleted.insert(c).second) {
        worklist.push_back(c);
      }
    }
  }
  for (const rdf::Triple& d : deleted) graph->Remove(d);

  // 2. Rederive: a deleted triple may still follow from the remaining
  // data. Every instance-level derivation of a triple with subject s
  // starts from a triple whose subject or object is s, so chasing the
  // remaining triples touching the deleted subjects suffices.
  std::unordered_set<rdf::TermId> affected;
  for (const rdf::Triple& d : deleted) affected.insert(d.s);
  std::vector<rdf::Triple> snapshot;
  for (const rdf::Triple& r : graph->triples()) {
    if (affected.count(r.s) || affected.count(r.o)) snapshot.push_back(r);
  }
  for (const rdf::Triple& r : snapshot) AddWithConsequences(graph, r);

  return size_before - graph->size();
}

}  // namespace reasoner
}  // namespace rdfref
