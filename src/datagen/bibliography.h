#ifndef RDFREF_DATAGEN_BIBLIOGRAPHY_H_
#define RDFREF_DATAGEN_BIBLIOGRAPHY_H_

#include <string>

#include "rdf/graph.h"

namespace rdfref {
namespace datagen {

/// \brief The sample RDF graph of Figure 2 of the paper: a book (doi1) with
/// its author, title and publication year, plus the four RDFS constraints
/// of Section 3 (books are publications; writing means being an author;
/// writtenBy relates books to people).
///
/// The query of Section 3,
///   q(x3) :- x1 hasAuthor x2, x2 hasName x3, x1 x4 "1949"
/// answers {"J. L. Borges"} against the saturation (and the empty set
/// against the explicit triples only) — see examples/bibliography.cc.
class Bibliography {
 public:
  /// Example namespace used for the bibliographic vocabulary.
  static constexpr const char* kNs = "http://example.org/bib/";

  /// \brief Adds the Figure 2 graph (data + constraints) to `graph`.
  static void AddFigure2Graph(rdf::Graph* graph);

  /// \brief URI of a bib: name, e.g. Uri("hasAuthor").
  static std::string Uri(const std::string& local);
};

}  // namespace datagen
}  // namespace rdfref

#endif  // RDFREF_DATAGEN_BIBLIOGRAPHY_H_
