#include "datagen/sp2b.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "rdf/vocab.h"

namespace rdfref {
namespace datagen {

namespace {
using rdf::Graph;
using rdf::TermId;
namespace vocab = rdf::vocab;

struct Ns {
  Graph* g;

  TermId U(const std::string& local) {
    return g->dict().InternUri(Sp2b::Uri(local));
  }
  TermId Lit(const std::string& value) {
    return g->dict().InternLiteral(value);
  }
};

}  // namespace

ZipfSampler::ZipfSampler(size_t n, double s) {
  cumulative_.reserve(n == 0 ? 1 : n);
  double total = 0.0;
  for (size_t k = 0; k < std::max<size_t>(n, 1); ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cumulative_.push_back(total);
  }
}

size_t ZipfSampler::Sample(Rng* rng) const {
  const double u = rng->UniformDouble() * cumulative_.back();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  if (it == cumulative_.end()) --it;
  return static_cast<size_t>(it - cumulative_.begin());
}

std::string Sp2b::Uri(const std::string& local) {
  return std::string(kNs) + local;
}

std::string Sp2b::DocumentUri(int i) {
  return std::string(kNs) + "doc/" + std::to_string(i);
}

void Sp2b::AddOntology(rdf::Graph* graph) {
  Ns ns{graph};
  auto sub_class = [&](const char* sub, const char* super) {
    graph->Add(ns.U(sub), vocab::kSubClassOfId, ns.U(super));
  };
  auto sub_property = [&](const char* sub, const char* super) {
    graph->Add(ns.U(sub), vocab::kSubPropertyOfId, ns.U(super));
  };
  auto domain = [&](const char* p, const char* c) {
    graph->Add(ns.U(p), vocab::kDomainId, ns.U(c));
  };
  auto range = [&](const char* p, const char* c) {
    graph->Add(ns.U(p), vocab::kRangeId, ns.U(c));
  };

  // --- Class hierarchy. The article axis is the deep chain (depth 8:
  // BenchmarkArticle ⊑* Work); LUBM's deepest is 5.
  sub_class("Document", "Work");
  sub_class("Publication", "Document");
  sub_class("Article", "Publication");
  sub_class("JournalArticle", "Article");
  sub_class("RefereedArticle", "JournalArticle");
  sub_class("ResearchArticle", "RefereedArticle");
  sub_class("BenchmarkArticle", "ResearchArticle");
  sub_class("SurveyArticle", "RefereedArticle");
  sub_class("InvitedArticle", "JournalArticle");
  sub_class("ConferencePaper", "Article");
  sub_class("FullPaper", "ConferencePaper");
  sub_class("BestPaper", "FullPaper");
  sub_class("ShortPaper", "ConferencePaper");
  sub_class("DemoPaper", "ConferencePaper");
  sub_class("Thesis", "Publication");
  sub_class("PhdThesis", "Thesis");
  sub_class("MastersThesis", "Thesis");
  sub_class("Book", "Publication");
  sub_class("Monograph", "Book");
  sub_class("EditedVolume", "Publication");
  sub_class("Proceedings", "EditedVolume");

  sub_class("Person", "Agent");
  sub_class("Author", "Person");
  sub_class("StudentAuthor", "Author");
  sub_class("SeniorAuthor", "Author");
  sub_class("Editor", "Person");

  sub_class("PublicationSeries", "Venue");
  sub_class("JournalSeries", "PublicationSeries");
  sub_class("BookSeries", "PublicationSeries");
  sub_class("Event", "Venue");
  sub_class("Conference", "Event");
  sub_class("Workshop", "Conference");

  // --- Property hierarchy. The citation axis is the deep chain (depth 5:
  // reproduces ⊑* relatedTo); LUBM's deepest is 3.
  sub_property("references", "relatedTo");
  sub_property("cites", "references");
  sub_property("extends", "cites");
  sub_property("reproduces", "extends");
  sub_property("refutes", "cites");

  sub_property("hasAuthor", "hasContributor");
  sub_property("hasFirstAuthor", "hasAuthor");
  sub_property("hasEditor", "hasContributor");

  sub_property("inJournal", "publishedIn");
  sub_property("presentedAt", "publishedIn");
  sub_property("inSeries", "publishedIn");

  // --- Domains and ranges.
  domain("relatedTo", "Work");
  range("relatedTo", "Work");
  domain("cites", "Publication");
  range("cites", "Publication");
  domain("hasContributor", "Publication");
  range("hasContributor", "Person");
  range("hasAuthor", "Author");
  range("hasEditor", "Editor");
  domain("publishedIn", "Publication");
  range("publishedIn", "Venue");
  range("inJournal", "JournalSeries");
  range("presentedAt", "Event");
  range("inSeries", "BookSeries");

  // Literal attributes: domain only (a ranged property never takes a
  // literal object — checker rule 3).
  domain("title", "Document");
  domain("year", "Publication");
  domain("pages", "Article");
  domain("abstract", "Publication");
  domain("name", "Person");
  domain("venueName", "Venue");
}

void Sp2b::Generate(const Sp2bConfig& config, rdf::Graph* graph) {
  AddOntology(graph);
  Ns ns{graph};
  Rng rng(config.seed);

  const TermId type = vocab::kTypeId;
  const int docs = std::max(1, static_cast<int>(config.documents *
                                                config.scale));
  // DBLP-like ratios: authors grow sublinearly (reuse), venues slowly.
  const int authors = std::max(2, docs * 3 / 5);
  const int venues = std::max(3, docs / 25);

  // Pre-intern the vocabulary used in the hot loops.
  const TermId c_research = ns.U("ResearchArticle");
  const TermId c_benchmark = ns.U("BenchmarkArticle");
  const TermId c_survey = ns.U("SurveyArticle");
  const TermId c_invited = ns.U("InvitedArticle");
  const TermId c_full = ns.U("FullPaper");
  const TermId c_best = ns.U("BestPaper");
  const TermId c_short = ns.U("ShortPaper");
  const TermId c_demo = ns.U("DemoPaper");
  const TermId c_phd = ns.U("PhdThesis");
  const TermId c_masters = ns.U("MastersThesis");
  const TermId c_monograph = ns.U("Monograph");
  const TermId c_proceedings = ns.U("Proceedings");
  const TermId c_student = ns.U("StudentAuthor");
  const TermId c_senior = ns.U("SeniorAuthor");
  const TermId c_journal_series = ns.U("JournalSeries");
  const TermId c_book_series = ns.U("BookSeries");
  const TermId c_conference = ns.U("Conference");
  const TermId c_workshop = ns.U("Workshop");

  const TermId p_cites = ns.U("cites");
  const TermId p_extends = ns.U("extends");
  const TermId p_reproduces = ns.U("reproduces");
  const TermId p_refutes = ns.U("refutes");
  const TermId p_has_author = ns.U("hasAuthor");
  const TermId p_first_author = ns.U("hasFirstAuthor");
  const TermId p_has_editor = ns.U("hasEditor");
  const TermId p_in_journal = ns.U("inJournal");
  const TermId p_presented_at = ns.U("presentedAt");
  const TermId p_in_series = ns.U("inSeries");
  const TermId p_title = ns.U("title");
  const TermId p_year = ns.U("year");
  const TermId p_pages = ns.U("pages");
  const TermId p_name = ns.U("name");
  const TermId p_venue_name = ns.U("venueName");

  // Venue pool, typed most-specifically. Venue kind decides which
  // publishedIn sub-property a document attaches with.
  enum VenueKind { kJournal, kConference, kWorkshop, kBookSeries };
  std::vector<TermId> venue_ids(venues);
  std::vector<VenueKind> venue_kinds(venues);
  for (int i = 0; i < venues; ++i) {
    venue_ids[i] =
        graph->dict().InternUri(std::string(kNs) + "venue/" +
                                std::to_string(i));
    const double kind = rng.UniformDouble();
    VenueKind vk = kind < 0.35   ? kJournal
                   : kind < 0.70 ? kConference
                   : kind < 0.88 ? kWorkshop
                                 : kBookSeries;
    venue_kinds[i] = vk;
    const TermId venue_class = vk == kJournal      ? c_journal_series
                               : vk == kConference ? c_conference
                               : vk == kWorkshop   ? c_workshop
                                                   : c_book_series;
    graph->Add(venue_ids[i], type, venue_class);
    graph->Add(venue_ids[i], p_venue_name,
               ns.Lit("Venue" + std::to_string(i)));
  }

  // Author pool. A thin senior elite is explicitly typed (most-specific
  // only); the long tail stays untyped — only the range of hasAuthor makes
  // them Authors, so author queries need reasoning, as in the other
  // generators.
  std::vector<TermId> author_ids(authors);
  for (int i = 0; i < authors; ++i) {
    author_ids[i] =
        graph->dict().InternUri(std::string(kNs) + "author/" +
                                std::to_string(i));
    graph->Add(author_ids[i], p_name, ns.Lit("Author" + std::to_string(i)));
    if (i < authors / 20 + 1) {
      graph->Add(author_ids[i], type, c_senior);
    } else if (rng.Chance(0.1)) {
      graph->Add(author_ids[i], type, c_student);
    }
  }

  // Pre-intern every document URI: citations may point forward (no
  // topological order — that is what makes the citation graph cyclic).
  std::vector<TermId> doc_ids(docs);
  for (int i = 0; i < docs; ++i) {
    doc_ids[i] = graph->dict().InternUri(DocumentUri(i));
  }

  // The skewed draws. Popularity rank == pool index, so author 0 is the
  // most prolific and doc 0 the most cited ("classic papers" effect).
  const ZipfSampler author_zipf(author_ids.size(), config.zipf_s);
  const ZipfSampler doc_zipf(doc_ids.size(), config.zipf_s);
  const ZipfSampler venue_zipf(venue_ids.size(), config.zipf_s);
  // Citation fan-out: heavy tail via a Zipf rank over [0, 8*mean), so a few
  // surveys cite dozens while the median document cites a handful.
  const int max_citations = std::max(1, config.mean_citations * 8);
  const ZipfSampler fanout_zipf(static_cast<size_t>(max_citations), 0.7);

  struct LeafClass {
    TermId klass;
    double weight;
  };
  const LeafClass leaves[] = {
      {c_research, 0.30},   {c_full, 0.20},     {c_short, 0.10},
      {c_survey, 0.06},     {c_benchmark, 0.05}, {c_best, 0.03},
      {c_demo, 0.05},       {c_invited, 0.04},  {c_phd, 0.05},
      {c_masters, 0.04},    {c_monograph, 0.04}, {c_proceedings, 0.04},
  };

  for (int i = 0; i < docs; ++i) {
    const TermId doc = doc_ids[i];
    // Most-specific class, skewed towards the common kinds.
    double pick = rng.UniformDouble();
    TermId klass = leaves[0].klass;
    for (const LeafClass& leaf : leaves) {
      if (pick < leaf.weight) {
        klass = leaf.klass;
        break;
      }
      pick -= leaf.weight;
    }
    graph->Add(doc, type, klass);
    graph->Add(doc, p_title, ns.Lit("Title" + std::to_string(i)));
    // Publication years skew recent (rank 0 = current year).
    graph->Add(doc, p_year,
               ns.Lit(std::to_string(
                   2026 - static_cast<int>(rng.Uniform(30) * rng.Uniform(2)))));
    if (rng.Chance(0.6)) {
      graph->Add(doc, p_pages,
                 ns.Lit(std::to_string(1 + rng.Uniform(500))));
    }

    // Contributors: Zipf-skewed author picks; the first author uses the
    // deeper sub-property. Proceedings get editors instead.
    if (klass == c_proceedings) {
      const int editors = 1 + static_cast<int>(rng.Uniform(3));
      for (int e = 0; e < editors; ++e) {
        graph->Add(doc, p_has_editor, author_ids[author_zipf.Sample(&rng)]);
      }
    } else {
      const int coauthors = 1 + static_cast<int>(rng.Uniform(4));
      graph->Add(doc, p_first_author, author_ids[author_zipf.Sample(&rng)]);
      for (int a = 1; a < coauthors; ++a) {
        graph->Add(doc, p_has_author, author_ids[author_zipf.Sample(&rng)]);
      }
    }

    // Venue, via the sub-property matching the venue kind.
    const size_t v = venue_zipf.Sample(&rng);
    const TermId venue_prop = venue_kinds[v] == kJournal ? p_in_journal
                              : venue_kinds[v] == kBookSeries
                                  ? p_in_series
                                  : p_presented_at;
    graph->Add(doc, venue_prop, venue_ids[v]);

    // Citations: Zipf-popular targets drawn from the whole pool (forward
    // references included — cycles by construction), mostly via cites,
    // sometimes via its specific sub-properties.
    const int citations = static_cast<int>(fanout_zipf.Sample(&rng));
    for (int c = 0; c < citations; ++c) {
      const size_t target = doc_zipf.Sample(&rng);
      if (doc_ids[target] == doc) continue;  // no self-citations
      const double flavor = rng.UniformDouble();
      const TermId cite_prop = flavor < 0.80   ? p_cites
                               : flavor < 0.90 ? p_extends
                               : flavor < 0.95 ? p_refutes
                                               : p_reproduces;
      graph->Add(doc, cite_prop, doc_ids[target]);
    }
  }

  // Guarantee at least one tight citation cycle at every scale, so the
  // cyclic-join queries never degenerate on tiny test configs.
  if (docs >= 2) {
    graph->Add(doc_ids[0], p_cites, doc_ids[1]);
    graph->Add(doc_ids[1], p_cites, doc_ids[0]);
  }
}

}  // namespace datagen
}  // namespace rdfref
