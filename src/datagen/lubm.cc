#include "datagen/lubm.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/hash.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace datagen {

namespace {
using rdf::Graph;
using rdf::TermId;
namespace vocab = rdf::vocab;

// Interning helpers bound to one graph.
struct Ns {
  Graph* g;

  TermId U(const std::string& local) {
    return g->dict().InternUri(Lubm::Uri(local));
  }
  TermId Lit(const std::string& value) {
    return g->dict().InternLiteral(value);
  }
};

}  // namespace

std::string Lubm::Uri(const std::string& local) {
  return std::string(kNs) + local;
}

std::string Lubm::UniversityUri(int i) {
  return "http://www.University" + std::to_string(i) + ".edu";
}

void Lubm::AddOntology(rdf::Graph* graph) {
  Ns ns{graph};
  auto sub_class = [&](const char* sub, const char* super) {
    graph->Add(ns.U(sub), vocab::kSubClassOfId, ns.U(super));
  };
  auto sub_property = [&](const char* sub, const char* super) {
    graph->Add(ns.U(sub), vocab::kSubPropertyOfId, ns.U(super));
  };
  auto domain = [&](const char* p, const char* c) {
    graph->Add(ns.U(p), vocab::kDomainId, ns.U(c));
  };
  auto range = [&](const char* p, const char* c) {
    graph->Add(ns.U(p), vocab::kRangeId, ns.U(c));
  };

  // --- Class hierarchy (univ-bench, RDFS fragment) ---
  sub_class("University", "Organization");
  sub_class("College", "Organization");
  sub_class("Department", "Organization");
  sub_class("Institute", "Organization");
  sub_class("Program", "Organization");
  sub_class("ResearchGroup", "Organization");

  sub_class("Employee", "Person");
  sub_class("Faculty", "Employee");
  sub_class("Professor", "Faculty");
  sub_class("FullProfessor", "Professor");
  sub_class("AssociateProfessor", "Professor");
  sub_class("AssistantProfessor", "Professor");
  sub_class("VisitingProfessor", "Professor");
  sub_class("Chair", "Professor");
  sub_class("Dean", "Professor");
  sub_class("Lecturer", "Faculty");
  sub_class("PostDoc", "Faculty");
  sub_class("AdministrativeStaff", "Employee");
  sub_class("ClericalStaff", "AdministrativeStaff");
  sub_class("SystemsStaff", "AdministrativeStaff");
  sub_class("Student", "Person");
  sub_class("UndergraduateStudent", "Student");
  sub_class("GraduateStudent", "Student");
  sub_class("TeachingAssistant", "Person");
  sub_class("ResearchAssistant", "Person");
  sub_class("Director", "Person");

  sub_class("Course", "Work");
  sub_class("GraduateCourse", "Course");
  sub_class("Research", "Work");
  sub_class("Schedule", "Work");

  sub_class("Article", "Publication");
  sub_class("ConferencePaper", "Article");
  sub_class("JournalArticle", "Article");
  sub_class("TechnicalReport", "Article");
  sub_class("Book", "Publication");
  sub_class("Manual", "Publication");
  sub_class("Software", "Publication");
  sub_class("Specification", "Publication");
  sub_class("UnofficialPublication", "Publication");

  // --- Property hierarchy ---
  sub_property("worksFor", "memberOf");
  sub_property("headOf", "worksFor");
  sub_property("undergraduateDegreeFrom", "degreeFrom");
  sub_property("mastersDegreeFrom", "degreeFrom");
  sub_property("doctoralDegreeFrom", "degreeFrom");

  // --- Domains and ranges ---
  domain("memberOf", "Person");
  range("memberOf", "Organization");
  domain("subOrganizationOf", "Organization");
  range("subOrganizationOf", "Organization");
  domain("degreeFrom", "Person");
  range("degreeFrom", "University");
  domain("teacherOf", "Faculty");
  range("teacherOf", "Course");
  domain("takesCourse", "Student");
  range("takesCourse", "Course");
  domain("teachingAssistantOf", "TeachingAssistant");
  range("teachingAssistantOf", "Course");
  domain("advisor", "Person");
  range("advisor", "Professor");
  domain("publicationAuthor", "Publication");
  range("publicationAuthor", "Person");
  domain("researchInterest", "Person");
  domain("emailAddress", "Person");
  domain("telephone", "Person");
  domain("title", "Person");
  domain("researchProject", "ResearchGroup");
  range("researchProject", "Research");
  domain("tenured", "Professor");
  domain("name", "Person");
  domain("officeNumber", "Faculty");
  domain("age", "Person");
  domain("affiliatedOrganizationOf", "Organization");
  range("affiliatedOrganizationOf", "Organization");
  domain("affiliateOf", "Organization");
  range("affiliateOf", "Person");
  domain("hasAlumnus", "University");
  range("hasAlumnus", "Person");
  domain("listedCourse", "Schedule");
  range("listedCourse", "Course");
  domain("orgPublication", "Organization");
  range("orgPublication", "Publication");
  domain("publicationDate", "Publication");
  domain("publicationResearch", "Publication");
  range("publicationResearch", "Research");
  domain("softwareDocumentation", "Software");
  domain("softwareVersion", "Software");
}

void Lubm::Generate(const LubmConfig& config, rdf::Graph* graph) {
  AddOntology(graph);
  Ns ns{graph};
  Rng rng(config.seed);

  const TermId type = vocab::kTypeId;
  // Pre-intern the vocabulary used in the hot loops.
  const TermId c_university = ns.U("University");
  const TermId c_department = ns.U("Department");
  const TermId c_research_group = ns.U("ResearchGroup");
  const TermId c_full_prof = ns.U("FullProfessor");
  const TermId c_assoc_prof = ns.U("AssociateProfessor");
  const TermId c_asst_prof = ns.U("AssistantProfessor");
  const TermId c_lecturer = ns.U("Lecturer");
  const TermId c_ugrad = ns.U("UndergraduateStudent");
  const TermId c_grad = ns.U("GraduateStudent");
  const TermId c_ta = ns.U("TeachingAssistant");
  const TermId c_ra = ns.U("ResearchAssistant");
  const TermId c_course = ns.U("Course");
  const TermId c_grad_course = ns.U("GraduateCourse");
  const TermId c_journal = ns.U("JournalArticle");
  const TermId c_conf = ns.U("ConferencePaper");
  const TermId c_tech = ns.U("TechnicalReport");

  const TermId p_works_for = ns.U("worksFor");
  const TermId p_member_of = ns.U("memberOf");
  const TermId p_head_of = ns.U("headOf");
  const TermId p_sub_org = ns.U("subOrganizationOf");
  const TermId p_ug_degree = ns.U("undergraduateDegreeFrom");
  const TermId p_ms_degree = ns.U("mastersDegreeFrom");
  const TermId p_dr_degree = ns.U("doctoralDegreeFrom");
  const TermId p_teacher_of = ns.U("teacherOf");
  const TermId p_takes = ns.U("takesCourse");
  const TermId p_ta_of = ns.U("teachingAssistantOf");
  const TermId p_advisor = ns.U("advisor");
  const TermId p_pub_author = ns.U("publicationAuthor");
  const TermId p_email = ns.U("emailAddress");
  const TermId p_interest = ns.U("researchInterest");
  const TermId p_name = ns.U("name");

  const int pool = std::max(config.referenced_universities,
                            config.universities);
  std::vector<TermId> university_pool(pool);
  for (int i = 0; i < pool; ++i) {
    university_pool[i] = graph->dict().InternUri(UniversityUri(i));
  }
  auto random_university = [&]() {
    return university_pool[rng.Uniform(static_cast<uint64_t>(pool))];
  };

  std::vector<std::string> interests = {
      "Databases",  "SemanticWeb", "Reasoning", "QueryOptimization",
      "Networking", "Systems",     "Theory",    "MachineLearning"};

  auto scaled = [&](int base) {
    int value = static_cast<int>(base * config.scale);
    return value < 1 ? 1 : value;
  };

  for (int u = 0; u < config.universities; ++u) {
    const TermId univ = university_pool[u];
    graph->Add(univ, type, c_university);
    const int departments = 3 + static_cast<int>(rng.Uniform(3));
    for (int d = 0; d < departments; ++d) {
      const std::string dept_base = "http://www.Department" +
                                    std::to_string(d) + ".University" +
                                    std::to_string(u) + ".edu";
      const TermId dept = graph->dict().InternUri(dept_base);
      graph->Add(dept, type, c_department);
      graph->Add(dept, p_sub_org, univ);
      auto entity = [&](const std::string& label, int i) {
        return graph->dict().InternUri(dept_base + "/" + label +
                                       std::to_string(i));
      };

      // Research groups.
      const int groups = scaled(5);
      for (int i = 0; i < groups; ++i) {
        TermId group = entity("ResearchGroup", i);
        graph->Add(group, type, c_research_group);
        graph->Add(group, p_sub_org, dept);
      }

      // Faculty. Chairs get headOf (a sub-sub-property of memberOf).
      struct FacultySpec {
        TermId klass;
        const char* label;
        int count;
      };
      const FacultySpec faculty_specs[] = {
          {c_full_prof, "FullProfessor", scaled(7)},
          {c_assoc_prof, "AssociateProfessor", scaled(10)},
          {c_asst_prof, "AssistantProfessor", scaled(8)},
          {c_lecturer, "Lecturer", scaled(5)},
      };
      std::vector<TermId> faculty;
      std::vector<TermId> professors;
      std::vector<TermId> courses;
      int course_counter = 0;
      for (const FacultySpec& spec : faculty_specs) {
        for (int i = 0; i < spec.count; ++i) {
          TermId f = entity(spec.label, i);
          graph->Add(f, type, spec.klass);
          faculty.push_back(f);
          if (spec.klass != c_lecturer) professors.push_back(f);
          if (spec.klass == c_full_prof && i == 0) {
            graph->Add(f, p_head_of, dept);  // the chair
          } else {
            graph->Add(f, p_works_for, dept);
          }
          graph->Add(f, p_ug_degree, random_university());
          graph->Add(f, p_ms_degree, random_university());
          graph->Add(f, p_dr_degree, random_university());
          graph->Add(f, p_name,
                     ns.Lit(std::string(spec.label) + std::to_string(i)));
          graph->Add(f, p_email,
                     ns.Lit(std::string(spec.label) + std::to_string(i) +
                            "@Department" + std::to_string(d) + ".University" +
                            std::to_string(u) + ".edu"));
          graph->Add(
              f, p_interest,
              ns.Lit(interests[rng.Uniform(interests.size())]));
          // Courses taught.
          const int taught = 1 + static_cast<int>(rng.Uniform(2));
          for (int t = 0; t < taught; ++t) {
            TermId course = entity("Course", course_counter);
            graph->Add(course, type,
                       rng.Chance(0.3) ? c_grad_course : c_course);
            graph->Add(f, p_teacher_of, course);
            courses.push_back(course);
            ++course_counter;
          }
          // Publications.
          const int pubs = 2 + static_cast<int>(rng.Uniform(4));
          for (int pb = 0; pb < pubs; ++pb) {
            TermId pub = graph->dict().InternUri(
                dept_base + "/" + spec.label + std::to_string(i) +
                "/Publication" + std::to_string(pb));
            double kind = rng.UniformDouble();
            graph->Add(pub, type,
                       kind < 0.4 ? c_journal
                                  : (kind < 0.8 ? c_conf : c_tech));
            graph->Add(pub, p_pub_author, f);
          }
        }
      }

      // Graduate students: ~3 per faculty member.
      const int grads = static_cast<int>(faculty.size()) * 3;
      for (int i = 0; i < grads; ++i) {
        TermId s = entity("GraduateStudent", i);
        graph->Add(s, type, c_grad);
        graph->Add(s, p_member_of, dept);
        graph->Add(s, p_ug_degree, random_university());
        graph->Add(s, p_advisor,
                   professors[rng.Uniform(professors.size())]);
        graph->Add(s, p_name, ns.Lit("GraduateStudent" + std::to_string(i)));
        const int taken = 1 + static_cast<int>(rng.Uniform(3));
        for (int t = 0; t < taken; ++t) {
          graph->Add(s, p_takes, courses[rng.Uniform(courses.size())]);
        }
        if (rng.Chance(0.2)) {
          graph->Add(s, type, c_ta);
          graph->Add(s, p_ta_of, courses[rng.Uniform(courses.size())]);
        } else if (rng.Chance(0.1)) {
          graph->Add(s, type, c_ra);
        }
      }

      // Undergraduate students: ~10 per faculty member.
      const int ugrads = static_cast<int>(faculty.size()) * 10;
      for (int i = 0; i < ugrads; ++i) {
        TermId s = entity("UndergraduateStudent", i);
        graph->Add(s, type, c_ugrad);
        graph->Add(s, p_member_of, dept);
        graph->Add(s, p_name,
                   ns.Lit("UndergraduateStudent" + std::to_string(i)));
        const int taken = 2 + static_cast<int>(rng.Uniform(3));
        for (int t = 0; t < taken; ++t) {
          graph->Add(s, p_takes, courses[rng.Uniform(courses.size())]);
        }
      }
    }
  }
}

}  // namespace datagen
}  // namespace rdfref
