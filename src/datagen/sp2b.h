#ifndef RDFREF_DATAGEN_SP2B_H_
#define RDFREF_DATAGEN_SP2B_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/hash.h"
#include "rdf/graph.h"

namespace rdfref {
namespace datagen {

/// \brief Configuration of the SP2Bench-style generator. `documents` is the
/// scale knob (SP2Bench scales by triple count; we scale by the document
/// population everything else hangs off), `scale` multiplies it so callers
/// can shrink a pinned shape the way LubmConfig::scale does.
struct Sp2bConfig {
  int documents = 1000;
  uint64_t seed = 11;
  double scale = 1.0;
  /// Zipf exponent of the skewed draws (author productivity, citation
  /// popularity, venue size). 0 degenerates to uniform; SP2Bench's DBLP
  /// measurements sit near 1.
  double zipf_s = 1.0;
  /// Mean outgoing citations per document (the realized distribution is
  /// heavy-tailed; a few surveys cite far more).
  int mean_citations = 4;
};

/// \brief SP2Bench-inspired bibliographic scenario [PAPERS.md]: the
/// workload-diversity counterpart to the LUBM-style suite. Everything the
/// LUBM shape lacks is here by construction:
///
///   - *Deeper hierarchies.* The class chain Work ⊒ Document ⊒ Publication
///     ⊒ Article ⊒ JournalArticle ⊒ RefereedArticle ⊒ ResearchArticle ⊒
///     BenchmarkArticle is depth 8 (LUBM tops out at 5), and the citation
///     property chain relatedTo ⊒ references ⊒ cites ⊒ extends ⊒ reproduces
///     is depth 5 (LUBM: 3) — so reformulations of Document- or
///     references-atoms fan out much wider than anything in the LUBM suite.
///   - *Cyclic, high-fanout joins.* Documents cite each other with Zipf-
///     skewed popularity and no topological order: citation cycles exist by
///     construction, and a few "classic" documents accumulate most
///     in-edges, which stresses join-order and cover choices.
///   - *Skewed value distributions.* Author productivity, venue size and
///     citation in-degree are Zipf(zipf_s); uniform-assumption cardinality
///     estimates are reliably wrong on them.
///
/// As in the other generators, instances carry their most specific type
/// only and the specific sub-properties (hasFirstAuthor, extends, ...) are
/// asserted instead of their ancestors, so reformulation or saturation is
/// required for complete answers.
class Sp2b {
 public:
  static constexpr const char* kNs = "http://rdfref.org/sp2b#";

  /// \brief Adds the RDFS constraint triples (direct edges only).
  static void AddOntology(rdf::Graph* graph);

  /// \brief Generates ontology + instances (deterministic per config).
  static void Generate(const Sp2bConfig& config, rdf::Graph* graph);

  /// \brief URI of an sp2b class or property, e.g. Uri("cites").
  static std::string Uri(const std::string& local);

  /// \brief URI of document `i`, e.g. DocumentUri(42).
  static std::string DocumentUri(int i);
};

/// \brief A Zipf(s) sampler over ranks 0..n-1 (rank 0 most popular):
/// P(k) ∝ 1/(k+1)^s, drawn by binary search over the cumulative weights.
/// Deterministic given the caller's Rng; shared by the generator and the
/// workload mix (skewed constants in point queries).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double s);

  /// \brief Draws a rank in [0, n).
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> cumulative_;
};

}  // namespace datagen
}  // namespace rdfref

#endif  // RDFREF_DATAGEN_SP2B_H_
