#include "datagen/bibliography.h"

#include "rdf/vocab.h"

namespace rdfref {
namespace datagen {

std::string Bibliography::Uri(const std::string& local) {
  return std::string(kNs) + local;
}

void Bibliography::AddFigure2Graph(rdf::Graph* graph) {
  rdf::Dictionary& dict = graph->dict();
  namespace vocab = rdf::vocab;

  const rdf::TermId doi1 = dict.InternUri(Uri("doi1"));
  const rdf::TermId b1 = dict.InternBlank("b1");
  const rdf::TermId book = dict.InternUri(Uri("Book"));
  const rdf::TermId publication = dict.InternUri(Uri("Publication"));
  const rdf::TermId person = dict.InternUri(Uri("Person"));
  const rdf::TermId written_by = dict.InternUri(Uri("writtenBy"));
  const rdf::TermId has_author = dict.InternUri(Uri("hasAuthor"));
  const rdf::TermId has_title = dict.InternUri(Uri("hasTitle"));
  const rdf::TermId has_name = dict.InternUri(Uri("hasName"));
  const rdf::TermId published_in = dict.InternUri(Uri("publishedIn"));

  // G = { doi1 rdf:type Book, doi1 writtenBy _:b1,
  //       doi1 hasTitle "El Aleph", _:b1 hasName "J. L. Borges",
  //       doi1 publishedIn "1949" }
  graph->Add(doi1, vocab::kTypeId, book);
  graph->Add(doi1, written_by, b1);
  graph->Add(doi1, has_title, dict.InternLiteral("El Aleph"));
  graph->Add(b1, has_name, dict.InternLiteral("J. L. Borges"));
  graph->Add(doi1, published_in, dict.InternLiteral("1949"));

  // Constraints: books are publications; writing something means being an
  // author; writtenBy is a relation between books and people.
  graph->Add(book, vocab::kSubClassOfId, publication);
  graph->Add(written_by, vocab::kSubPropertyOfId, has_author);
  graph->Add(written_by, vocab::kDomainId, book);
  graph->Add(written_by, vocab::kRangeId, person);
}

}  // namespace datagen
}  // namespace rdfref
