#ifndef RDFREF_DATAGEN_LUBM_H_
#define RDFREF_DATAGEN_LUBM_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"

namespace rdfref {
namespace datagen {

/// \brief Configuration of the LUBM-style generator.
///
/// The original LUBM benchmark [11] scales by number of universities; one
/// university yields roughly 100K triples, and the paper's experiments use
/// LUBM 100M (about 1000 universities). `scale` additionally multiplies the
/// per-department population, so small, fast test datasets keep the same
/// shape.
struct LubmConfig {
  int universities = 1;
  uint64_t seed = 42;
  double scale = 1.0;
  /// Size of the pool of university URIs used as degreeFrom targets (LUBM
  /// references many more universities than it instantiates).
  int referenced_universities = 100;
};

/// \brief Generator for LUBM-style RDF data: the univ-bench ontology
/// restricted to its RDFS constraints (subclass / subproperty / domain /
/// range — exactly the DB fragment) plus a synthetic university instance
/// graph with LUBM-like cardinality ratios.
///
/// Faithfulness notes (see DESIGN.md §1): instances are typed with their
/// most specific class only, faculty are attached with ub:worksFor (a strict
/// sub-property of ub:memberOf) and degrees with the three specific
/// degreeFrom properties — so reformulation or saturation is *required* for
/// complete answers, as in the paper's Example 1.
class Lubm {
 public:
  /// The ub: namespace of univ-bench.
  static constexpr const char* kNs =
      "http://swat.cse.lehigh.edu/onto/univ-bench.owl#";

  /// \brief Adds the ontology's constraint triples to `graph`.
  static void AddOntology(rdf::Graph* graph);

  /// \brief Generates ontology + instances into `graph` (deterministic for
  /// a given config).
  static void Generate(const LubmConfig& config, rdf::Graph* graph);

  /// \brief URI of university `i` in the referenced pool, e.g.
  /// "http://www.University532.edu" — the degreeFrom constant of Example 1.
  static std::string UniversityUri(int i);

  /// \brief URI of a ub: class or property, e.g. Uri("memberOf").
  static std::string Uri(const std::string& local);
};

}  // namespace datagen
}  // namespace rdfref

#endif  // RDFREF_DATAGEN_LUBM_H_
