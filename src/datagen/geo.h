#ifndef RDFREF_DATAGEN_GEO_H_
#define RDFREF_DATAGEN_GEO_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"

namespace rdfref {
namespace datagen {

/// \brief Configuration of the geographic generator.
struct GeoConfig {
  int regions = 13;
  uint64_t seed = 11;
};

/// \brief Synthetic French-statistics-flavoured geographic data, standing
/// in for the INSEE / IGN datasets of the demonstration (Section 5): an
/// administrative hierarchy (régions / départements / arrondissements /
/// communes), natural features crossing administrative units, and RDFS
/// constraints tying them together.
class Geo {
 public:
  static constexpr const char* kNs = "http://example.org/geo/";

  /// \brief Adds the geographic ontology constraints.
  static void AddOntology(rdf::Graph* graph);

  /// \brief Generates ontology + instances (deterministic per config).
  static void Generate(const GeoConfig& config, rdf::Graph* graph);

  static std::string Uri(const std::string& local);
};

}  // namespace datagen
}  // namespace rdfref

#endif  // RDFREF_DATAGEN_GEO_H_
