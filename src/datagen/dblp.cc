#include "datagen/dblp.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/hash.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace datagen {

namespace {
namespace vocab = rdf::vocab;
}  // namespace

std::string Dblp::Uri(const std::string& local) {
  return std::string(kNs) + local;
}

void Dblp::AddOntology(rdf::Graph* graph) {
  rdf::Dictionary& dict = graph->dict();
  auto u = [&](const char* local) { return dict.InternUri(Uri(local)); };
  auto sub_class = [&](const char* sub, const char* super) {
    graph->Add(u(sub), vocab::kSubClassOfId, u(super));
  };

  sub_class("Publication", "Work");
  sub_class("Article", "Publication");
  sub_class("InProceedings", "Publication");
  sub_class("Book", "Publication");
  sub_class("PhdThesis", "Publication");
  sub_class("Author", "Person");
  sub_class("Editor", "Person");
  sub_class("Journal", "Venue");
  sub_class("Conference", "Venue");

  graph->Add(u("creator"), vocab::kDomainId, u("Publication"));
  graph->Add(u("creator"), vocab::kRangeId, u("Author"));
  graph->Add(u("editedBy"), vocab::kDomainId, u("Publication"));
  graph->Add(u("editedBy"), vocab::kRangeId, u("Editor"));
  graph->Add(u("publishedIn"), vocab::kDomainId, u("Publication"));
  graph->Add(u("publishedIn"), vocab::kRangeId, u("Venue"));
  graph->Add(u("cites"), vocab::kDomainId, u("Publication"));
  graph->Add(u("cites"), vocab::kRangeId, u("Publication"));
  graph->Add(u("firstAuthor"), vocab::kSubPropertyOfId, u("creator"));
  graph->Add(u("title"), vocab::kDomainId, u("Publication"));
  graph->Add(u("yearOfPublication"), vocab::kDomainId, u("Publication"));
}

void Dblp::Generate(const DblpConfig& config, rdf::Graph* graph) {
  AddOntology(graph);
  rdf::Dictionary& dict = graph->dict();
  Rng rng(config.seed);
  auto u = [&](const std::string& local) {
    return dict.InternUri(Uri(local));
  };

  const rdf::TermId type = vocab::kTypeId;
  const rdf::TermId c_article = u("Article");
  const rdf::TermId c_inproc = u("InProceedings");
  const rdf::TermId c_book = u("Book");
  const rdf::TermId c_thesis = u("PhdThesis");
  const rdf::TermId c_journal = u("Journal");
  const rdf::TermId c_conference = u("Conference");
  const rdf::TermId p_creator = u("creator");
  const rdf::TermId p_first_author = u("firstAuthor");
  const rdf::TermId p_published_in = u("publishedIn");
  const rdf::TermId p_cites = u("cites");
  const rdf::TermId p_year = u("yearOfPublication");
  const rdf::TermId p_title = u("title");

  // Authors and venues pools scale with the publication count.
  const int num_authors = std::max(10, config.publications / 4);
  const int num_venues = std::max(4, config.publications / 200);
  std::vector<rdf::TermId> authors(num_authors);
  for (int i = 0; i < num_authors; ++i) {
    authors[i] = u("author/a" + std::to_string(i));
    // Authors are *not* typed explicitly: their Author/Person types are
    // implied by the range of creator — reasoning must supply them.
  }
  std::vector<rdf::TermId> venues(num_venues);
  for (int i = 0; i < num_venues; ++i) {
    venues[i] = u("venue/v" + std::to_string(i));
    graph->Add(venues[i], type, (i % 2 == 0) ? c_journal : c_conference);
  }

  std::vector<rdf::TermId> pubs;
  pubs.reserve(config.publications);
  for (int i = 0; i < config.publications; ++i) {
    rdf::TermId pub = u("pub/p" + std::to_string(i));
    pubs.push_back(pub);
    double kind = rng.UniformDouble();
    rdf::TermId klass = kind < 0.5 ? c_article
                        : kind < 0.85 ? c_inproc
                        : kind < 0.95 ? c_book
                                      : c_thesis;
    graph->Add(pub, type, klass);
    graph->Add(pub, p_title, dict.InternLiteral("Title" + std::to_string(i)));
    graph->Add(pub, p_year,
               dict.InternLiteral(
                   std::to_string(1970 + static_cast<int>(rng.Uniform(55)))));
    graph->Add(pub, p_published_in, venues[rng.Uniform(venues.size())]);
    const int coauthors = 1 + static_cast<int>(rng.Uniform(4));
    graph->Add(pub, p_first_author, authors[rng.Uniform(authors.size())]);
    for (int a = 1; a < coauthors; ++a) {
      graph->Add(pub, p_creator, authors[rng.Uniform(authors.size())]);
    }
    const int cited = static_cast<int>(rng.Uniform(4));
    for (int c = 0; c < cited && !pubs.empty(); ++c) {
      graph->Add(pub, p_cites, pubs[rng.Uniform(pubs.size())]);
    }
  }
}

}  // namespace datagen
}  // namespace rdfref
