#include "datagen/geo.h"

#include <algorithm>
#include <string>
#include <vector>

#include "common/hash.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace datagen {

namespace {
namespace vocab = rdf::vocab;
}  // namespace

std::string Geo::Uri(const std::string& local) {
  return std::string(kNs) + local;
}

void Geo::AddOntology(rdf::Graph* graph) {
  rdf::Dictionary& dict = graph->dict();
  auto u = [&](const char* local) { return dict.InternUri(Uri(local)); };
  auto sub_class = [&](const char* sub, const char* super) {
    graph->Add(u(sub), vocab::kSubClassOfId, u(super));
  };

  sub_class("AdministrativeUnit", "GeographicalUnit");
  sub_class("Region", "AdministrativeUnit");
  sub_class("Departement", "AdministrativeUnit");
  sub_class("Arrondissement", "AdministrativeUnit");
  sub_class("Commune", "AdministrativeUnit");
  sub_class("Prefecture", "Commune");
  sub_class("NaturalFeature", "GeographicalUnit");
  sub_class("River", "NaturalFeature");
  sub_class("Mountain", "NaturalFeature");

  graph->Add(u("partOf"), vocab::kSubPropertyOfId, u("locatedIn"));
  graph->Add(u("locatedIn"), vocab::kDomainId, u("GeographicalUnit"));
  graph->Add(u("locatedIn"), vocab::kRangeId, u("AdministrativeUnit"));
  graph->Add(u("crosses"), vocab::kDomainId, u("NaturalFeature"));
  graph->Add(u("crosses"), vocab::kRangeId, u("AdministrativeUnit"));
  graph->Add(u("chefLieuOf"), vocab::kDomainId, u("Prefecture"));
  graph->Add(u("chefLieuOf"), vocab::kRangeId, u("Departement"));
  graph->Add(u("population"), vocab::kDomainId, u("AdministrativeUnit"));
  graph->Add(u("inseeCode"), vocab::kDomainId, u("AdministrativeUnit"));
}

void Geo::Generate(const GeoConfig& config, rdf::Graph* graph) {
  AddOntology(graph);
  rdf::Dictionary& dict = graph->dict();
  Rng rng(config.seed);
  auto u = [&](const std::string& local) {
    return dict.InternUri(Uri(local));
  };

  const rdf::TermId type = vocab::kTypeId;
  const rdf::TermId c_region = u("Region");
  const rdf::TermId c_departement = u("Departement");
  const rdf::TermId c_arrondissement = u("Arrondissement");
  const rdf::TermId c_commune = u("Commune");
  const rdf::TermId c_prefecture = u("Prefecture");
  const rdf::TermId c_river = u("River");
  const rdf::TermId p_part_of = u("partOf");
  const rdf::TermId p_crosses = u("crosses");
  const rdf::TermId p_chef_lieu = u("chefLieuOf");
  const rdf::TermId p_population = u("population");
  const rdf::TermId p_insee = u("inseeCode");

  std::vector<rdf::TermId> communes;
  int dept_counter = 0, arr_counter = 0, commune_counter = 0;
  for (int r = 0; r < config.regions; ++r) {
    rdf::TermId region = u("region/R" + std::to_string(r));
    graph->Add(region, type, c_region);
    const int departements = 4 + static_cast<int>(rng.Uniform(5));
    for (int d = 0; d < departements; ++d) {
      rdf::TermId dept = u("departement/D" + std::to_string(dept_counter++));
      graph->Add(dept, type, c_departement);
      graph->Add(dept, p_part_of, region);
      graph->Add(dept, p_insee,
                 dict.InternLiteral(std::to_string(dept_counter)));
      bool prefecture_placed = false;
      const int arrondissements = 3 + static_cast<int>(rng.Uniform(3));
      for (int a = 0; a < arrondissements; ++a) {
        rdf::TermId arr =
            u("arrondissement/A" + std::to_string(arr_counter++));
        graph->Add(arr, type, c_arrondissement);
        graph->Add(arr, p_part_of, dept);
        const int ncommunes = 10 + static_cast<int>(rng.Uniform(21));
        for (int c = 0; c < ncommunes; ++c) {
          rdf::TermId commune =
              u("commune/C" + std::to_string(commune_counter++));
          if (!prefecture_placed) {
            graph->Add(commune, type, c_prefecture);
            graph->Add(commune, p_chef_lieu, dept);
            prefecture_placed = true;
          } else {
            graph->Add(commune, type, c_commune);
          }
          graph->Add(commune, p_part_of, arr);
          graph->Add(
              commune, p_population,
              dict.InternLiteral(std::to_string(100 + rng.Uniform(100000))));
          communes.push_back(commune);
        }
      }
    }
  }

  // Rivers cross several communes; rivers are typed only through the
  // domain of `crosses`.
  const int rivers = std::max(1, static_cast<int>(communes.size()) / 200);
  for (int i = 0; i < rivers; ++i) {
    rdf::TermId river = u("river/F" + std::to_string(i));
    if (rng.Chance(0.5)) graph->Add(river, type, c_river);
    const int crossed = 2 + static_cast<int>(rng.Uniform(8));
    for (int c = 0; c < crossed; ++c) {
      graph->Add(river, p_crosses, communes[rng.Uniform(communes.size())]);
    }
  }
}

}  // namespace datagen
}  // namespace rdfref
