#ifndef RDFREF_DATAGEN_DBLP_H_
#define RDFREF_DATAGEN_DBLP_H_

#include <cstdint>
#include <string>

#include "rdf/graph.h"

namespace rdfref {
namespace datagen {

/// \brief Configuration of the DBLP-style bibliographic generator (one of
/// the demonstration's alternative scenarios, Section 5).
struct DblpConfig {
  int publications = 10000;
  uint64_t seed = 7;
};

/// \brief Synthetic DBLP-like bibliography: a publication-type hierarchy,
/// author/editor roles, venues and citations, with RDFS constraints (e.g.
/// authoring implies being a Person via the range of dblp:creator) that
/// make reasoning necessary for complete answers.
class Dblp {
 public:
  static constexpr const char* kNs = "http://example.org/dblp/";

  /// \brief Adds the DBLP-style ontology constraints.
  static void AddOntology(rdf::Graph* graph);

  /// \brief Generates ontology + instances (deterministic per config).
  static void Generate(const DblpConfig& config, rdf::Graph* graph);

  static std::string Uri(const std::string& local);
};

}  // namespace datagen
}  // namespace rdfref

#endif  // RDFREF_DATAGEN_DBLP_H_
