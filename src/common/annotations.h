#ifndef RDFREF_COMMON_ANNOTATIONS_H_
#define RDFREF_COMMON_ANNOTATIONS_H_

/// \file
/// \brief Lifetime and borrow annotations for the zero-copy API surface.
///
/// The batch engine's speed comes from borrowed views: `std::span` ranges
/// into store permutation indexes, delta runs and pinned snapshot epochs
/// (DESIGN.md §9, §11). A borrowed span that outlives its source is today a
/// local use-after-free; once store images are mmap'd and served by forked
/// workers, it becomes cross-process corruption. These macros make the
/// borrow contracts machine-checkable on two independent backends:
///
///  - under Clang, `RDFREF_LIFETIME_BOUND` expands to
///    `[[clang::lifetimebound]]`, so the compiler's own -Wdangling family
///    flags a span bound to a temporary or destroyed source at the call
///    site;
///  - `tools/rdfref_check` (the Clang-AST analyzer, DESIGN.md §14) requires
///    every function returning a borrowed view to carry one of these
///    markers, requires span-typed fields to live in a
///    `RDFREF_BORROWS_FROM(...)`-annotated holder, and bans raw
///    `SnapshotSource` pointers stored beyond their pinning `shared_ptr`.
///
/// On compilers without the attributes (GCC), everything expands to
/// nothing: zero overhead, no behavioural difference.
///
/// Conventions (DESIGN.md §14):
///  - an accessor returning a view into `*this` (or into state `*this`
///    keeps alive) is suffixed with `RDFREF_LIFETIME_BOUND` after its
///    cv-qualifiers; a parameter the result borrows from carries the macro
///    after the parameter name;
///  - a class whose *fields* hold borrowed views declares the borrow up
///    front: `class RDFREF_BORROWS_FROM(source) PatternCursor { ... };` —
///    naming what the views point into. The checker treats un-annotated
///    span fields as escapes;
///  - a deliberate violation is silenced for one declaration with
///    `// rdfref-check: allow(<rule>)` plus a justification, exactly like
///    the lint escapes (stale escapes fail CI).

#if defined(__clang__)
/// The returned view borrows from the annotated parameter (or, placed
/// after a member function's cv-qualifiers, from *this): Clang warns when
/// the result outlives it.
#define RDFREF_LIFETIME_BOUND [[clang::lifetimebound]]
#define RDFREF_ANNOTATE_(text) [[clang::annotate(text)]]
#else
#define RDFREF_LIFETIME_BOUND  // no-op outside Clang
#define RDFREF_ANNOTATE_(text)  // no-op outside Clang
#endif

/// Declares the borrow contract of a view-holding class or view-returning
/// function: the views point into the named sources, which must outlive
/// every use. Verified structurally by tools/rdfref_check (span fields and
/// span returns without a contract are findings).
#define RDFREF_BORROWS_FROM(...) \
  RDFREF_ANNOTATE_("rdfref::borrows_from:" #__VA_ARGS__)

/// Declares that a mutable field of a mutex-owning class is deliberately
/// outside that mutex's critical sections (externally synchronized, or
/// confined to one thread), with the reason inline. Without this (or
/// RDFREF_GUARDED_BY), tools/rdfref_check flags any such field touched
/// from two or more methods — the gap Clang's thread-safety analysis
/// silently ignores for unannotated fields.
#define RDFREF_NOT_GUARDED(reason) \
  RDFREF_ANNOTATE_("rdfref::not_guarded:" reason)

#endif  // RDFREF_COMMON_ANNOTATIONS_H_
