#ifndef RDFREF_COMMON_HASH_H_
#define RDFREF_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rdfref {

/// \brief Mixes a 64-bit value into a running hash (a 64-bit variant of
/// boost::hash_combine using the splitmix64 finalizer).
inline size_t HashCombine(size_t seed, uint64_t value) {
  uint64_t x = value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x = x ^ (x >> 31);
  return static_cast<size_t>(seed ^ x);
}

/// \brief Hashes a vector of 64-bit ids (used for multi-column join keys).
inline size_t HashIds(const std::vector<uint64_t>& ids) {
  size_t seed = 0xcbf29ce484222325ULL;
  for (uint64_t id : ids) seed = HashCombine(seed, id);
  return seed;
}

/// \brief A deterministic, portable xorshift64* random generator used by the
/// synthetic data generators and the property tests (seeded, reproducible).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed == 0 ? 0x2545F4914F6CDD1DULL : seed) {}

  /// \brief Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// \brief Uniform integer in [0, bound); bound must be positive.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// \brief Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) / 9007199254740992.0;
  }

  /// \brief Bernoulli trial with probability p.
  bool Chance(double p) { return UniformDouble() < p; }

  /// \brief Uniform integer in [lo, lo + extra]: the "base + U(spread)"
  /// idiom of the synthetic generators, as one call.
  uint64_t Between(uint64_t lo, uint64_t extra) {
    return extra == 0 ? lo : lo + Uniform(extra + 1);
  }

  /// \brief Forks an independent generator seeded from this stream.
  ///
  /// Derived test components (scenario generator, query generator,
  /// metamorphic mutators) each take their own split so adding draws to one
  /// never perturbs the others — seeds stay replayable across harness
  /// changes.
  Rng Split() { return Rng(Next() ^ 0x5851F42D4C957F2DULL); }

 private:
  uint64_t state_;
};

}  // namespace rdfref

#endif  // RDFREF_COMMON_HASH_H_
