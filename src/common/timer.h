#ifndef RDFREF_COMMON_TIMER_H_
#define RDFREF_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace rdfref {

/// \brief A monotonic wall-clock stopwatch used by the evaluation profiles
/// and the benchmark harnesses.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// \brief Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// \brief Elapsed time since construction or the last Reset, in
  /// microseconds.
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

  /// \brief Elapsed time in milliseconds (fractional).
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedMicros()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rdfref

#endif  // RDFREF_COMMON_TIMER_H_
