#ifndef RDFREF_COMMON_SYNCHRONIZATION_H_
#define RDFREF_COMMON_SYNCHRONIZATION_H_

#include <cassert>
#include <condition_variable>
#include <mutex>

/// \file
/// \brief The only place in rdfref that may name std::mutex.
///
/// Every lock in the repository goes through the capability-annotated
/// wrappers below so Clang's Thread Safety Analysis (TSA) can prove, at
/// compile time, that every access to a `RDFREF_GUARDED_BY(mu_)` field
/// happens with `mu_` held and that every `RDFREF_REQUIRES(mu_)` method is
/// only called under the lock. The CI `static-analysis` job builds with
/// `-Wthread-safety -Werror=thread-safety`; `tools/rdfref_lint.py` rejects
/// raw `std::mutex` / `std::condition_variable` / `std::lock_guard` /
/// `std::unique_lock` anywhere else in `src/`.
///
/// On compilers without the attributes (GCC), the annotation macros expand
/// to nothing and the wrappers compile to the std primitives they wrap —
/// zero overhead, no behavioural difference.
///
/// Conventions (DESIGN.md §8):
///  - every mutex-protected field is annotated `RDFREF_GUARDED_BY(mu_)`;
///  - private helpers that expect the lock held are annotated
///    `RDFREF_REQUIRES(mu_)` and suffixed `...Locked`;
///  - public methods that take the lock themselves are annotated
///    `RDFREF_EXCLUDES(mu_)` when they would deadlock if re-entered;
///  - a false positive is silenced with `RDFREF_NO_THREAD_SAFETY_ANALYSIS`
///    on the narrowest function possible, with a comment saying why.

// ---------------------------------------------------------------------------
// Attribute macros (no-ops outside Clang)
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define RDFREF_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define RDFREF_THREAD_ANNOTATION_(x)  // no-op
#endif

/// Marks a type as a lock (a "capability" in TSA terms).
#define RDFREF_CAPABILITY(name) RDFREF_THREAD_ANNOTATION_(capability(name))
/// Marks a RAII type whose lifetime equals a critical section.
#define RDFREF_SCOPED_CAPABILITY RDFREF_THREAD_ANNOTATION_(scoped_lockable)
/// Field may only be accessed while `mu` is held.
#define RDFREF_GUARDED_BY(mu) RDFREF_THREAD_ANNOTATION_(guarded_by(mu))
/// Pointee may only be accessed while `mu` is held.
#define RDFREF_PT_GUARDED_BY(mu) RDFREF_THREAD_ANNOTATION_(pt_guarded_by(mu))
/// Caller must hold `mu` (exclusively) to call this function.
#define RDFREF_REQUIRES(...) \
  RDFREF_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
/// Caller must hold `mu` at least shared to call this function.
#define RDFREF_REQUIRES_SHARED(...) \
  RDFREF_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))
/// Function acquires `mu` and returns with it held.
#define RDFREF_ACQUIRE(...) \
  RDFREF_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define RDFREF_ACQUIRE_SHARED(...) \
  RDFREF_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
/// Function releases `mu`.
#define RDFREF_RELEASE(...) \
  RDFREF_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RDFREF_RELEASE_SHARED(...) \
  RDFREF_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))
/// Caller must NOT hold `mu` (the function takes it itself; re-entry would
/// self-deadlock).
#define RDFREF_EXCLUDES(...) \
  RDFREF_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))
/// Dynamic assertion that the calling thread holds `mu`.
#define RDFREF_ASSERT_HELD(...) \
  RDFREF_THREAD_ANNOTATION_(assert_capability(__VA_ARGS__))
/// Return value is the lock guarding this object.
#define RDFREF_RETURN_CAPABILITY(x) \
  RDFREF_THREAD_ANNOTATION_(lock_returned(x))
/// Escape hatch for TSA false positives — always pair with a comment.
#define RDFREF_NO_THREAD_SAFETY_ANALYSIS \
  RDFREF_THREAD_ANNOTATION_(no_thread_safety_analysis)

namespace rdfref {
namespace common {

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

/// \brief A std::mutex the Thread Safety Analysis can reason about.
///
/// Prefer the RAII guards (MutexLock / CondVar::Wait) over Lock/Unlock;
/// the explicit pair exists for the rare hand-over-hand pattern (the
/// ThreadPool worker loop) and is equally annotated.
class RDFREF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() RDFREF_ACQUIRE() { mu_.lock(); }
  void Unlock() RDFREF_RELEASE() { mu_.unlock(); }
  bool TryLock() RDFREF_THREAD_ANNOTATION_(try_acquire_capability(true)) {
    return mu_.try_lock();
  }

  /// \brief Tells the analysis (not the runtime) that the lock is held —
  /// for callbacks that are documented to run under a lock the analysis
  /// cannot see across.
  void AssertHeld() const RDFREF_ASSERT_HELD() {}

  /// \brief The wrapped primitive, for CondVar only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII exclusive lock: `MutexLock lock(&mu_);`.
class RDFREF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) RDFREF_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RDFREF_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Reader lock alias. rdfref's Mutex is exclusive-only (the guarded
/// sections are all short map/counter updates where a shared mode buys
/// nothing), so this is MutexLock under a name that documents read-only
/// intent at the call site — and gives reads a distinct type to migrate if
/// a shared mutex ever pays for itself.
class RDFREF_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(Mutex* mu) RDFREF_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~ReaderMutexLock() RDFREF_RELEASE() { mu_->Unlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  Mutex* const mu_;
};

// ---------------------------------------------------------------------------
// CondVar
// ---------------------------------------------------------------------------

/// \brief Condition variable over common::Mutex.
///
/// Wait() is annotated RDFREF_REQUIRES(*mu): the analysis checks the lock
/// is held at the call, and (like std::condition_variable) the lock is
/// held again when Wait returns. Always wait in a predicate loop.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// \brief Atomically releases *mu and blocks; re-acquires before
  /// returning. Spurious wakeups happen: loop on the predicate.
  void Wait(Mutex* mu) RDFREF_REQUIRES(*mu) {
    std::unique_lock<std::mutex> lock(mu->native(), std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's scope still owns the lock
  }

  /// \brief Waits until `pred()` is true (handles spurious wakeups).
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) RDFREF_REQUIRES(*mu) {
    while (!pred()) Wait(mu);
  }

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// ---------------------------------------------------------------------------
// Notification
// ---------------------------------------------------------------------------

/// \brief One-shot latch: Notify() releases every current and future
/// WaitForNotification(). Notify may be called at most once.
class Notification {
 public:
  Notification() = default;
  Notification(const Notification&) = delete;
  Notification& operator=(const Notification&) = delete;

  bool HasBeenNotified() const RDFREF_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return notified_;
  }

  void Notify() RDFREF_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    assert(!notified_ && "Notification::Notify called twice");
    notified_ = true;
    cv_.SignalAll();
  }

  void WaitForNotification() const RDFREF_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    cv_.Wait(&mu_, [this]() RDFREF_REQUIRES(mu_) { return notified_; });
  }

 private:
  mutable Mutex mu_;
  mutable CondVar cv_;
  bool notified_ RDFREF_GUARDED_BY(mu_) = false;
};

}  // namespace common
}  // namespace rdfref

#endif  // RDFREF_COMMON_SYNCHRONIZATION_H_
