#ifndef RDFREF_COMMON_STATUS_H_
#define RDFREF_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace rdfref {

/// \brief Error categories used throughout the library.
///
/// rdfref follows the Google C++ style: no exceptions. Fallible operations
/// return a Status (or a Result<T>, see result.h) that callers must inspect.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kUnimplemented = 5,
  kInternal = 6,
  kResourceExhausted = 7,
  kParseError = 8,
  kDeadlineExceeded = 9,
  kUnavailable = 10,
};

/// \brief Returns a human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// \brief The outcome of a fallible operation: a code plus a message.
///
/// A default-constructed Status is OK. Statuses are cheap to copy (the
/// message is empty in the OK case, which is the common path).
///
/// The class is [[nodiscard]]: a function returning Status failed for a
/// reason, and ignoring it is a correctness bug (see result.h). Deliberate
/// discards must be spelled `(void)expr;` with a comment.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// \brief Constructs an OK status.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// \brief Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Propagates a non-OK Status to the caller.
#define RDFREF_RETURN_NOT_OK(expr)                \
  do {                                            \
    ::rdfref::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (false)

}  // namespace rdfref

#endif  // RDFREF_COMMON_STATUS_H_
