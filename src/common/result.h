#ifndef RDFREF_COMMON_RESULT_H_
#define RDFREF_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace rdfref {

/// \brief Holds either a value of type T or a non-OK Status.
///
/// This is the value-returning companion of Status (in the spirit of
/// arrow::Result / absl::StatusOr). Accessing the value of an errored
/// Result is a programming error and aborts in debug builds.
///
/// The class is [[nodiscard]]: silently dropping a Result discards an
/// error the caller was obligated to observe (a dropped kUnavailable in
/// the federation path is a lost-data bug). The `-Werror` CI build and
/// tools/rdfref_lint.py keep it that way; a deliberate discard must be
/// spelled `(void)expr;` with a comment.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// \brief Constructs from a value (implicit, so functions can
  /// `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// \brief Constructs from a non-OK status (implicit, so functions can
  /// `return Status::...;`).
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// \brief Returns the status: OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// \brief Returns the value, or `alternative` when errored.
  T ValueOr(T alternative) const {
    return ok() ? value() : std::move(alternative);
  }

 private:
  std::variant<T, Status> repr_;
};

/// \brief Propagates the error of a Result expression, or assigns its value.
#define RDFREF_ASSIGN_OR_RETURN(lhs, expr)        \
  auto RDFREF_CONCAT_(_result_, __LINE__) = (expr);             \
  if (!RDFREF_CONCAT_(_result_, __LINE__).ok())                 \
    return RDFREF_CONCAT_(_result_, __LINE__).status();         \
  lhs = std::move(RDFREF_CONCAT_(_result_, __LINE__)).value()

#define RDFREF_CONCAT_IMPL_(a, b) a##b
#define RDFREF_CONCAT_(a, b) RDFREF_CONCAT_IMPL_(a, b)

}  // namespace rdfref

#endif  // RDFREF_COMMON_RESULT_H_
