#ifndef RDFREF_COMMON_THREAD_POOL_H_
#define RDFREF_COMMON_THREAD_POOL_H_

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/synchronization.h"

namespace rdfref {
namespace common {

/// \brief Fixed-size fork-join worker pool, shared per process.
///
/// Work arrives as *batches* (ParallelFor): a batch of `n` index-addressed
/// tasks is published to the pool, and every thread that touches it — the
/// pool's workers *and* the submitting thread — steals the next unclaimed
/// index until none remain. Two properties follow:
///
/// - **Deadlock freedom under nesting.** Because the submitter itself
///   executes tasks of its own batch before blocking, a task running on a
///   worker may submit a nested batch (a parallel UCQ inside a parallel
///   JUCQ fragment, a parallel federation fan-out inside a scan) without
///   ever waiting on a thread that cannot make progress.
/// - **Work stealing.** Idle workers steal iterations from the oldest
///   in-flight batch, so an unbalanced batch (one giant reformulation CQ
///   among cheap ones) keeps every thread busy until the last index is
///   claimed.
///
/// Workers are started lazily on the first ParallelFor, so merely linking
/// the pool costs nothing. The pool never owns the task state: batches
/// live on the submitter's stack (kept alive through a shared_ptr until
/// the last worker lets go).
///
/// Lock discipline (checked by -Wthread-safety): all queue state —
/// `active_`, `workers_`, `started_`, `shutdown_`, and every
/// `Batch::done` counter — is guarded by `mu_`; `Batch::next` is the one
/// lock-free member (an atomic claim ticket).
class ThreadPool {
 public:
  /// \brief A pool with `num_threads` workers (clamped to >= 1). With one
  /// thread, ParallelFor degenerates to an inline sequential loop.
  explicit ThreadPool(int num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Joins all workers. Outstanding batches must have completed
  /// (ParallelFor blocks until its batch drains, so this holds whenever
  /// no ParallelFor call is in flight).
  ~ThreadPool() RDFREF_EXCLUDES(mu_);

  /// \brief The process-wide shared pool, sized by DefaultThreads() and
  /// lazily constructed (and lazily *started* on first use).
  static ThreadPool& Shared();

  /// \brief Default evaluation parallelism: hardware_concurrency, but at
  /// least 2 so the parallel machinery (and its TSan coverage) is real
  /// even in single-core containers. Oversubscription is harmless for the
  /// engine's coarse-grained batches.
  static int DefaultThreads();

  int num_threads() const { return num_threads_; }

  /// \brief Runs fn(0) ... fn(n-1), each exactly once, and returns when
  /// all have completed. Iterations run concurrently in no particular
  /// order; the calling thread participates. Safe to call from inside a
  /// running task (nested parallelism) and from multiple threads at once.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn)
      RDFREF_EXCLUDES(mu_);

 private:
  struct Batch {
    const std::function<void(size_t)>* fn = nullptr;
    size_t n = 0;
    std::atomic<size_t> next{0};  ///< next unclaimed index (lock-free)
    // `done` and `done_cv` belong to the owning pool's critical section;
    // TSA cannot name a foreign instance's mutex from a nested struct, so
    // the guard is enforced by CompleteOneLocked / ParallelFor instead of
    // an annotation.
    size_t done = 0;  ///< completed iterations (guarded by the pool's mu_)
    CondVar done_cv;
  };

  void StartWorkersLocked() RDFREF_REQUIRES(mu_);
  void WorkerLoop() RDFREF_EXCLUDES(mu_);
  // Claims and runs one iteration of `batch`; false when none remain.
  bool RunOne(Batch* batch) RDFREF_EXCLUDES(mu_);
  // Marks one iteration of `batch` complete, waking its submitter when it
  // was the last.
  void CompleteOneLocked(Batch* batch) RDFREF_REQUIRES(mu_);
  // Removes a drained batch from the active list (idempotent).
  void RetireLocked(Batch* batch) RDFREF_REQUIRES(mu_);

  const int num_threads_;
  Mutex mu_;
  CondVar work_cv_;
  /// Batches with unclaimed work.
  std::vector<std::shared_ptr<Batch>> active_ RDFREF_GUARDED_BY(mu_);
  std::vector<std::thread> workers_ RDFREF_GUARDED_BY(mu_);
  bool started_ RDFREF_GUARDED_BY(mu_) = false;
  bool shutdown_ RDFREF_GUARDED_BY(mu_) = false;
};

}  // namespace common
}  // namespace rdfref

#endif  // RDFREF_COMMON_THREAD_POOL_H_
