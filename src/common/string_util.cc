#include "common/string_util.h"

namespace rdfref {

std::vector<std::string> Split(std::string_view input, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      break;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  while (begin < input.size() &&
         (input[begin] == ' ' || input[begin] == '\t' || input[begin] == '\r' ||
          input[begin] == '\n')) {
    ++begin;
  }
  size_t end = input.size();
  while (end > begin && (input[end - 1] == ' ' || input[end - 1] == '\t' ||
                         input[end - 1] == '\r' || input[end - 1] == '\n')) {
    --end;
  }
  return input.substr(begin, end - begin);
}

bool StartsWith(std::string_view input, std::string_view prefix) {
  return input.size() >= prefix.size() &&
         input.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view input, std::string_view suffix) {
  return input.size() >= suffix.size() &&
         input.substr(input.size() - suffix.size()) == suffix;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace rdfref
