#include "common/thread_pool.h"

#include <algorithm>

namespace rdfref {
namespace common {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    work_cv_.notify_all();
  }
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: the shared pool must outlive every static whose
  // destructor might still evaluate queries at exit.
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return *pool;
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2u, hw == 0 ? 1u : hw);
}

void ThreadPool::StartWorkersLocked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

bool ThreadPool::RunOne(Batch* batch) {
  const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
  if (i >= batch->n) return false;
  (*batch->fn)(i);
  std::lock_guard<std::mutex> lock(mu_);
  if (++batch->done == batch->n) batch->done_cv.notify_all();
  return true;
}

void ThreadPool::RetireLocked(Batch* batch) {
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->get() == batch) {
      active_.erase(it);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return shutdown_ || !active_.empty(); });
    if (shutdown_) return;
    // Steal from the oldest in-flight batch; holding a shared_ptr keeps
    // the batch state alive even after the submitter unblocks.
    std::shared_ptr<Batch> batch = active_.front();
    lock.unlock();
    const bool ran = RunOne(batch.get());
    lock.lock();
    if (!ran) RetireLocked(batch.get());
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  {
    std::lock_guard<std::mutex> lock(mu_);
    StartWorkersLocked();
    active_.push_back(batch);
    work_cv_.notify_all();
  }
  // The submitter works its own batch down (and, transitively, any nested
  // batches those tasks publish) instead of blocking while work is open.
  while (RunOne(batch.get())) {
  }
  std::unique_lock<std::mutex> lock(mu_);
  RetireLocked(batch.get());
  batch->done_cv.wait(lock, [&] { return batch->done == batch->n; });
}

}  // namespace common
}  // namespace rdfref
