#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace rdfref {
namespace common {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {}

ThreadPool::~ThreadPool() {
  // Move the worker handles out under the lock: join() must not run with
  // mu_ held (a worker draining its last batch re-acquires mu_), and
  // workers_ must not be read unlocked either.
  std::vector<std::thread> workers;
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
    work_cv_.SignalAll();
    workers.swap(workers_);
  }
  for (std::thread& w : workers) w.join();
}

ThreadPool& ThreadPool::Shared() {
  // Leaked intentionally: the shared pool must outlive every static whose
  // destructor might still evaluate queries at exit.
  static ThreadPool* pool = new ThreadPool(DefaultThreads());
  return *pool;
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(2u, hw == 0 ? 1u : hw);
}

void ThreadPool::StartWorkersLocked() {
  if (started_) return;
  started_ = true;
  workers_.reserve(static_cast<size_t>(num_threads_));
  for (int i = 0; i < num_threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::CompleteOneLocked(Batch* batch) {
  if (++batch->done == batch->n) batch->done_cv.SignalAll();
}

bool ThreadPool::RunOne(Batch* batch) {
  const size_t i = batch->next.fetch_add(1, std::memory_order_relaxed);
  if (i >= batch->n) return false;
  (*batch->fn)(i);
  MutexLock lock(&mu_);
  CompleteOneLocked(batch);
  return true;
}

void ThreadPool::RetireLocked(Batch* batch) {
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (it->get() == batch) {
      active_.erase(it);
      return;
    }
  }
}

void ThreadPool::WorkerLoop() {
  mu_.Lock();
  for (;;) {
    while (!shutdown_ && active_.empty()) work_cv_.Wait(&mu_);
    if (shutdown_) {
      mu_.Unlock();
      return;
    }
    // Steal from the oldest in-flight batch; holding a shared_ptr keeps
    // the batch state alive even after the submitter unblocks.
    std::shared_ptr<Batch> batch = active_.front();
    mu_.Unlock();
    const bool ran = RunOne(batch.get());
    mu_.Lock();
    if (!ran) RetireLocked(batch.get());
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->fn = &fn;
  batch->n = n;
  {
    MutexLock lock(&mu_);
    StartWorkersLocked();
    active_.push_back(batch);
    work_cv_.SignalAll();
  }
  // The submitter works its own batch down (and, transitively, any nested
  // batches those tasks publish) instead of blocking while work is open.
  while (RunOne(batch.get())) {
  }
  MutexLock lock(&mu_);
  RetireLocked(batch.get());
  while (batch->done != batch->n) batch->done_cv.Wait(&mu_);
}

}  // namespace common
}  // namespace rdfref
