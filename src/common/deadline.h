#ifndef RDFREF_COMMON_DEADLINE_H_
#define RDFREF_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

namespace rdfref {

/// \brief A point on the monotonic clock past which work should stop.
///
/// A default-constructed Deadline is infinite (never expires), so APIs can
/// take one by value and callers that don't care pay nothing. Deadlines are
/// checked cooperatively: long-running loops (the UCQ/JUCQ evaluator, the
/// federation mediator) poll expired() at natural boundaries and return
/// StatusCode::kDeadlineExceeded when the budget is gone — the paper's
/// exploding reformulations (Example 1's 318,096-CQ UCQ) become boundable
/// instead of runaway.
class Deadline {
 public:
  /// \brief Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// \brief Expires `millis` (fractional) from now.
  static Deadline AfterMillis(double millis) {
    return AfterMicros(static_cast<int64_t>(millis * 1000.0));
  }

  /// \brief Expires `micros` from now.
  static Deadline AfterMicros(int64_t micros) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::microseconds(micros);
    return d;
  }

  [[nodiscard]] bool is_infinite() const { return !has_deadline_; }

  /// \brief True once the budget is gone. [[nodiscard]]: polling a
  /// deadline and dropping the answer means the overrun goes unhandled.
  [[nodiscard]] bool expired() const {
    return has_deadline_ && Clock::now() >= at_;
  }

  /// \brief Milliseconds until expiry: +infinity when infinite, <= 0 once
  /// expired.
  [[nodiscard]] double remaining_millis() const {
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    auto left = std::chrono::duration_cast<std::chrono::microseconds>(
        at_ - Clock::now());
    return static_cast<double>(left.count()) / 1000.0;
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// \brief Cooperative cancellation handle: a deadline plus an optional
/// stop flag shared between parallel workers.
///
/// ShouldStop() is cheap enough to poll from inner scan callbacks: the
/// flag is a relaxed atomic load, and the clock is only consulted when a
/// finite deadline is set. The first observer of an expired deadline
/// raises the shared flag, so sibling workers cancel without touching the
/// clock themselves. A default-constructed token never stops.
class CancelToken {
 public:
  CancelToken() = default;
  explicit CancelToken(const Deadline* deadline,
                       std::atomic<bool>* stop = nullptr)
      : deadline_(deadline), stop_(stop) {}

  [[nodiscard]] bool ShouldStop() const {
    if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
      return true;
    }
    if (deadline_ != nullptr && deadline_->expired()) {
      if (stop_ != nullptr) stop_->store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

 private:
  const Deadline* deadline_ = nullptr;
  std::atomic<bool>* stop_ = nullptr;
};

}  // namespace rdfref

#endif  // RDFREF_COMMON_DEADLINE_H_
