#ifndef RDFREF_COMMON_STRING_UTIL_H_
#define RDFREF_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace rdfref {

/// \brief Splits `input` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view input, char sep);

/// \brief Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// \brief True when `input` starts with `prefix`.
bool StartsWith(std::string_view input, std::string_view prefix);

/// \brief True when `input` ends with `suffix`.
bool EndsWith(std::string_view input, std::string_view suffix);

/// \brief Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

}  // namespace rdfref

#endif  // RDFREF_COMMON_STRING_UTIL_H_
