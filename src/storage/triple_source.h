#ifndef RDFREF_STORAGE_TRIPLE_SOURCE_H_
#define RDFREF_STORAGE_TRIPLE_SOURCE_H_

#include <functional>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/annotations.h"
#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace rdfref {
namespace storage {

/// \brief Wildcard marker in scan patterns ("any value at this position").
inline constexpr rdf::TermId kAny = rdf::kInvalidTermId;

/// \brief True when triple `t` matches the (s, p, o) pattern; kAny
/// wildcards a position.
inline bool MatchesPattern(const rdf::Triple& t, rdf::TermId s, rdf::TermId p,
                           rdf::TermId o) {
  return (s == kAny || t.s == s) && (p == kAny || t.p == p) &&
         (o == kAny || t.o == o);
}

/// \brief Conservative index of which triple patterns a set of overlay
/// triples can intersect: the distinct subjects, properties and objects the
/// set has ever touched. MayMatch answers "could any tracked triple match
/// this pattern?" — false positives are allowed (entries are never evicted,
/// so erased triples leave stale residue until the owner clears the whole
/// presence), false negatives are not. Overlay sources consult it to keep
/// the zero-copy base fast path for scans the overlay provably cannot
/// affect.
///
/// MayMatch checks EXACT ids only. An interval probe (TryGetIntervalRange)
/// must NOT pass the interval's low endpoint here — that would miss overlay
/// triples touching ids strictly inside (lo, hi]. Interval callers widen the
/// ranged position to kAny before consulting any presence filter.
class PatternPresence {
 public:
  void Add(const rdf::Triple& t) {
    s_.insert(t.s);
    p_.insert(t.p);
    o_.insert(t.o);
  }

  void Clear() {
    s_.clear();
    p_.clear();
    o_.clear();
  }

  bool MayMatch(rdf::TermId s, rdf::TermId p, rdf::TermId o) const {
    if (p_.empty()) return false;  // nothing tracked
    return (s == kAny || s_.count(s) > 0) && (p == kAny || p_.count(p) > 0) &&
           (o == kAny || o_.count(o) > 0);
  }

 private:
  std::unordered_set<rdf::TermId> s_, p_, o_;
};

/// \brief Opaque position hint threaded through TryGetRangeHinted calls.
/// `index` identifies which physical ordering the position refers to (the
/// source compares it against its own index identity and ignores a stale
/// hint); `pos` is the begin offset of the previous result in that index.
struct RangeHint {
  const void* index = nullptr;
  size_t pos = 0;
};

/// \brief Abstract triple-pattern access path: what the evaluation engine
/// needs from a database.
///
/// Implemented by the local Store (clustered indexes) and by
/// federation::FederatedSource (a mediator over independent RDF endpoints,
/// Section 1 of the paper: data "split across independent sources").
///
/// Access comes in two granularities:
///   - the batch API (`TryGetRange` / `ScanInto`), which the columnar
///     engine drives: a whole pattern's matches at once, as a contiguous
///     block (zero-copy when the source is range-capable, one buffered
///     copy otherwise);
///   - the legacy per-triple callback `Scan`, kept for federation
///     compatibility and the reference evaluator.
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// \brief Invokes `fn` on every triple matching the pattern; kAny
  /// (rdf::kInvalidTermId) wildcards a position. May deliver duplicates
  /// across underlying sources; the engine deduplicates answers.
  /// Legacy path: hot code should use TryGetRange/ScanInto instead.
  virtual void Scan(
      rdf::TermId s, rdf::TermId p, rdf::TermId o,
      const std::function<void(const rdf::Triple&)>& fn) const = 0;  // rdfref-check: allow(std-function)

  /// \brief Batch fast path: when the source can expose every match as one
  /// contiguous block (valid until the source is modified), sets `*out`
  /// and returns true. The local Store answers every pattern this way from
  /// its clustered permutation indexes; overlay and mediator sources
  /// return false and are served by ScanInto.
  ///
  /// Borrow contract: `*out` points into storage owned (or pinned) by this
  /// source and is invalidated by its modification or destruction — never
  /// store it in a field or by-value capture that outlives the source.
  RDFREF_BORROWS_FROM(this)
  virtual bool TryGetRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                           std::span<const rdf::Triple>* out) const {
    (void)s;
    (void)p;
    (void)o;
    (void)out;
    return false;
  }

  /// \brief Hinted batch fast path: like TryGetRange, but carries a
  /// position hint between successive lookups. When a nested-loop join
  /// drives its inner atom from an index-ordered outer range, successive
  /// patterns have non-decreasing bound prefixes, so the next range starts
  /// at or after the previous one: range-capable sources gallop forward
  /// from the hint (O(log gap)) instead of binary-searching the whole
  /// index (O(log n)). The hint is advisory — results are always exactly
  /// the pattern's matches — and sources without a fast path ignore it.
  RDFREF_BORROWS_FROM(this)
  virtual bool TryGetRangeHinted(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                                 std::span<const rdf::Triple>* out,
                                 RangeHint* hint) const {
    (void)hint;
    return TryGetRange(s, p, o, out);
  }

  /// \brief Batch fallback: clears `*out` and appends every match, in the
  /// same order Scan would deliver them. Sources with internal buffering
  /// (the federation mediator) override this to fill `out` directly; the
  /// default adapts the legacy callback.
  virtual void ScanInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                        std::vector<rdf::Triple>* out) const {
    out->clear();
    Scan(s, p, o, [out](const rdf::Triple& t) { out->push_back(t); });
  }

  /// \brief Number of triples matching the pattern (exact for local
  /// stores; an upper bound for federations).
  virtual size_t CountMatches(rdf::TermId s, rdf::TermId p,
                              rdf::TermId o) const = 0;

  /// \brief Interval batch fast path, for the hierarchy-encoded atoms of
  /// rdf/encoding.h: like TryGetRange, but the position selected by
  /// `range_pos` (query::Atom::kRangeP = property, kRangeO = object)
  /// matches any id in [its pattern value, hi] instead of exactly one id.
  /// Range-capable sources answer when one of their clustered orders makes
  /// the interval contiguous; everyone else returns false and is served by
  /// ScanIntervalInto.
  RDFREF_BORROWS_FROM(this)
  virtual bool TryGetIntervalRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                                   int range_pos, rdf::TermId hi,
                                   std::span<const rdf::Triple>* out) const {
    (void)s;
    (void)p;
    (void)o;
    (void)range_pos;
    (void)hi;
    (void)out;
    return false;
  }

  /// \brief Interval batch fallback: clears `*out` and appends every match
  /// of the pattern with the ranged position relaxed to [lo, hi]. The
  /// default widens the ranged position to a wildcard scan and filters;
  /// sources with better access paths may override.
  virtual void ScanIntervalInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                                int range_pos, rdf::TermId hi,
                                std::vector<rdf::Triple>* out) const {
    const bool on_p = range_pos == 1;
    const rdf::TermId lo = on_p ? p : o;
    const rdf::TermId ws = s;
    const rdf::TermId wp = on_p ? kAny : p;
    const rdf::TermId wo = on_p ? o : kAny;
    out->clear();
    Scan(ws, wp, wo, [&](const rdf::Triple& t) {
      const rdf::TermId v = on_p ? t.p : t.o;
      if (v >= lo && v <= hi) out->push_back(t);
    });
  }

  /// \brief Number of triples matching the interval pattern: exact when the
  /// interval is contiguous in some clustered order, otherwise the count of
  /// the widened (wildcarded) pattern — an upper bound, which is what the
  /// join-ordering and costing consumers need.
  virtual size_t CountIntervalMatches(rdf::TermId s, rdf::TermId p,
                                      rdf::TermId o, int range_pos,
                                      rdf::TermId hi) const {
    std::span<const rdf::Triple> range;
    if (TryGetIntervalRange(s, p, o, range_pos, hi, &range)) {
      return range.size();
    }
    const bool on_p = range_pos == 1;
    return CountMatches(s, on_p ? kAny : p, on_p ? o : kAny);
  }

  /// \brief The dictionary the triples are encoded against.
  virtual const rdf::Dictionary& dict() const RDFREF_LIFETIME_BOUND = 0;
};

/// \brief Residual equality constraints a triple-pattern scan cannot
/// express: repeated variables within one atom, e.g. (?x p ?x) requires
/// s == o on every delivered triple.
struct ResidualEq {
  bool s_eq_p = false;
  bool s_eq_o = false;
  bool p_eq_o = false;

  bool any() const { return s_eq_p || s_eq_o || p_eq_o; }
  bool Accepts(const rdf::Triple& t) const {
    return (!s_eq_p || t.s == t.p) && (!s_eq_o || t.s == t.o) &&
           (!p_eq_o || t.p == t.o);
  }
};

/// \brief Reusable pattern cursor: binds to one (s, p, o) pattern at a time
/// and exposes the matches as a contiguous span. Range-capable sources are
/// served zero-copy; others are materialized into an internal buffer that
/// is reused across Reset calls, so a join's inner atoms amortize to zero
/// allocations. The optional residual filter materializes only the triples
/// satisfying intra-atom equality constraints (the "thin filtering cursor"
/// for patterns a prefix range cannot express).
class RDFREF_BORROWS_FROM(source, this) PatternCursor {
 public:
  /// \brief Re-binds the cursor. The returned span (also available via
  /// triples()) is valid until the next Reset or the cursor's destruction;
  /// for zero-copy sources, until the source is modified.
  std::span<const rdf::Triple> Reset(
      const TripleSource& source RDFREF_LIFETIME_BOUND, rdf::TermId s,
      rdf::TermId p, rdf::TermId o, ResidualEq residual = {},
      RangeHint* hint = nullptr) RDFREF_LIFETIME_BOUND {
    if (!residual.any()) {
      if (source.TryGetRangeHinted(s, p, o, &view_, hint)) return view_;
      source.ScanInto(s, p, o, &buffer_);
      view_ = buffer_;
      return view_;
    }
    // Residual filtering: copy only the accepted triples.
    std::span<const rdf::Triple> raw;
    if (source.TryGetRangeHinted(s, p, o, &raw, hint)) {
      buffer_.clear();
      for (const rdf::Triple& t : raw) {
        if (residual.Accepts(t)) buffer_.push_back(t);
      }
    } else {
      source.ScanInto(s, p, o, &scratch_);
      buffer_.clear();
      for (const rdf::Triple& t : scratch_) {
        if (residual.Accepts(t)) buffer_.push_back(t);
      }
    }
    view_ = buffer_;
    return view_;
  }

  /// \brief Re-binds the cursor to an interval pattern (the ranged position
  /// holds the interval's low endpoint; see TryGetIntervalRange). Zero-copy
  /// when the source exposes the interval contiguously, buffered otherwise.
  std::span<const rdf::Triple> ResetInterval(
      const TripleSource& source RDFREF_LIFETIME_BOUND, rdf::TermId s,
      rdf::TermId p, rdf::TermId o, int range_pos, rdf::TermId hi,
      ResidualEq residual = {}) RDFREF_LIFETIME_BOUND {
    if (!residual.any()) {
      if (source.TryGetIntervalRange(s, p, o, range_pos, hi, &view_)) {
        return view_;
      }
      source.ScanIntervalInto(s, p, o, range_pos, hi, &buffer_);
      view_ = buffer_;
      return view_;
    }
    std::span<const rdf::Triple> raw;
    if (source.TryGetIntervalRange(s, p, o, range_pos, hi, &raw)) {
      buffer_.clear();
      for (const rdf::Triple& t : raw) {
        if (residual.Accepts(t)) buffer_.push_back(t);
      }
    } else {
      source.ScanIntervalInto(s, p, o, range_pos, hi, &scratch_);
      buffer_.clear();
      for (const rdf::Triple& t : scratch_) {
        if (residual.Accepts(t)) buffer_.push_back(t);
      }
    }
    view_ = buffer_;
    return view_;
  }

  std::span<const rdf::Triple> triples() const RDFREF_LIFETIME_BOUND {
    return view_;
  }

 private:
  std::span<const rdf::Triple> view_;
  std::vector<rdf::Triple> buffer_;
  std::vector<rdf::Triple> scratch_;
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_TRIPLE_SOURCE_H_
