#ifndef RDFREF_STORAGE_TRIPLE_SOURCE_H_
#define RDFREF_STORAGE_TRIPLE_SOURCE_H_

#include <functional>

#include "rdf/dictionary.h"
#include "rdf/triple.h"

namespace rdfref {
namespace storage {

/// \brief Wildcard marker in scan patterns ("any value at this position").
inline constexpr rdf::TermId kAny = rdf::kInvalidTermId;

/// \brief Abstract triple-pattern access path: what the evaluation engine
/// needs from a database.
///
/// Implemented by the local Store (clustered indexes) and by
/// federation::FederatedSource (a mediator over independent RDF endpoints,
/// Section 1 of the paper: data "split across independent sources").
class TripleSource {
 public:
  virtual ~TripleSource() = default;

  /// \brief Invokes `fn` on every triple matching the pattern; kAny
  /// (rdf::kInvalidTermId) wildcards a position. May deliver duplicates
  /// across underlying sources; the engine deduplicates answers.
  virtual void Scan(
      rdf::TermId s, rdf::TermId p, rdf::TermId o,
      const std::function<void(const rdf::Triple&)>& fn) const = 0;

  /// \brief Number of triples matching the pattern (exact for local
  /// stores; an upper bound for federations).
  virtual size_t CountMatches(rdf::TermId s, rdf::TermId p,
                              rdf::TermId o) const = 0;

  /// \brief The dictionary the triples are encoded against.
  virtual const rdf::Dictionary& dict() const = 0;
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_TRIPLE_SOURCE_H_
