#include "storage/version_set.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace rdfref {
namespace storage {

// ---------------------------------------------------------------------------
// DeltaRun
// ---------------------------------------------------------------------------

DeltaRun::DeltaRun(const rdf::Dictionary* dict, std::vector<rdf::Triple> added,
                   std::vector<rdf::Triple> removed)
    : adds_(dict, std::move(added)), removed_(std::move(removed)) {
  std::sort(removed_.begin(), removed_.end());
  for (const rdf::Triple& t : adds_.EqualRangeSpan(kAny, kAny, kAny)) {
    added_presence_.Add(t);
  }
  for (const rdf::Triple& t : removed_) removed_presence_.Add(t);
}

bool DeltaRun::Removes(const rdf::Triple& t) const {
  return std::binary_search(removed_.begin(), removed_.end(), t);
}

size_t DeltaRun::CountRemovedMatches(rdf::TermId s, rdf::TermId p,
                                     rdf::TermId o) const {
  if (!MayRemoveMatch(s, p, o)) return 0;
  size_t count = 0;
  for (const rdf::Triple& t : removed_) {
    if (MatchesPattern(t, s, p, o)) ++count;
  }
  return count;
}

namespace {

/// Folds one sealed run into a version's combined presence union.
void AddRunToPresence(const DeltaRun& run, PatternPresence* added,
                      PatternPresence* removed) {
  for (const rdf::Triple& t : run.adds().EqualRangeSpan(kAny, kAny, kAny)) {
    added->Add(t);
  }
  for (const rdf::Triple& t : run.removed()) removed->Add(t);
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotSource
// ---------------------------------------------------------------------------

SnapshotSource::SnapshotSource(uint64_t epoch,
                               std::shared_ptr<const Version> version,
                               HeadDelta head)
    : epoch_(epoch), version_(std::move(version)), head_(std::move(head)) {
  any_removals_ = !head_.removed.empty();
  for (const auto& run : version_->runs) {
    any_removals_ = any_removals_ || run->has_removals();
  }
}

bool SnapshotSource::RemovedAbove(const rdf::Triple& t, size_t gen) const {
  if (!any_removals_) return false;
  // runs[j] is generation j + 1, so generations above `gen` start at j = gen.
  const auto& runs = version_->runs;
  for (size_t j = gen; j < runs.size(); ++j) {
    if (runs[j]->Removes(t)) return true;
  }
  return !head_.removed.empty() && head_.removed.count(t) > 0;
}

bool SnapshotSource::Contains(const rdf::Triple& t) const {
  // Newest generation wins: a generation never both adds and removes one
  // triple, so the first verdict walking downward is the visibility.
  if (!head_.added.empty() && head_.added.count(t) > 0) return true;
  if (!head_.removed.empty() && head_.removed.count(t) > 0) return false;
  const auto& runs = version_->runs;
  for (size_t i = runs.size(); i-- > 0;) {
    if (runs[i]->Removes(t)) return false;
    if (runs[i]->adds().Contains(t)) return true;
  }
  return version_->base->Contains(t);
}

void SnapshotSource::ScanInto(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                              std::vector<rdf::Triple>* out) const {
  out->clear();
  const auto& runs = version_->runs;
  // One pattern-level presence check decides whether any generation's
  // removals can filter this scan; when none can, every span is appended
  // verbatim with no per-triple membership probes.
  bool filter =
      !head_.removed.empty() && head_.removed_presence.MayMatch(s, p, o);
  if (!filter && version_->RunsMayRemove(s, p, o)) {
    for (const auto& run : runs) {
      filter = filter || run->MayRemoveMatch(s, p, o);
    }
  }
  const bool runs_may_add = version_->RunsMayAdd(s, p, o);
  size_t sorted_contributors = 0;  // spans appended verbatim, each sorted
  std::span<const rdf::Triple> base = version_->base->EqualRangeSpan(s, p, o);
  if (!filter) {
    if (!base.empty()) ++sorted_contributors;
    out->insert(out->end(), base.begin(), base.end());
    if (runs_may_add) {
      for (const auto& run : runs) {
        if (!run->MayAddMatch(s, p, o)) continue;
        std::span<const rdf::Triple> adds = run->adds().EqualRangeSpan(s, p, o);
        if (!adds.empty()) ++sorted_contributors;
        out->insert(out->end(), adds.begin(), adds.end());
      }
    }
  } else {
    sorted_contributors = 2;  // filtered interleaving: always re-sort
    for (const rdf::Triple& t : base) {
      if (!RemovedAbove(t, 0)) out->push_back(t);
    }
    if (runs_may_add) {
      for (size_t i = 0; i < runs.size(); ++i) {
        if (!runs[i]->MayAddMatch(s, p, o)) continue;
        for (const rdf::Triple& t : runs[i]->adds().EqualRangeSpan(s, p, o)) {
          if (!RemovedAbove(t, i + 1)) out->push_back(t);
        }
      }
    }
  }
  if (!head_.added.empty() && head_.added_presence.MayMatch(s, p, o)) {
    for (const rdf::Triple& t : head_.added) {  // hash order: needs re-sort
      if (MatchesPattern(t, s, p, o)) {
        out->push_back(t);
        sorted_contributors = 2;
      }
    }
  }
  // Deliver in SPO order. Restricted to one pattern, every clustered
  // permutation of a Store is SPO-ordered too (the bound positions are
  // constant across the matches), so snapshot scans return matches in
  // exactly the order a pristine Store over the visible set would — the
  // invariant that makes pinned-epoch evaluation bit-identical to
  // from-scratch evaluation. A single verbatim span is already sorted.
  if (sorted_contributors > 1) std::sort(out->begin(), out->end());
}

void SnapshotSource::Scan(
    rdf::TermId s, rdf::TermId p, rdf::TermId o,
    const std::function<void(const rdf::Triple&)>& fn) const {  // rdfref-check: allow(std-function)
  std::vector<rdf::Triple> buffer;
  ScanInto(s, p, o, &buffer);
  for (const rdf::Triple& t : buffer) fn(t);
}

bool SnapshotSource::TryGetRange(rdf::TermId s, rdf::TermId p, rdf::TermId o,
                                 std::span<const rdf::Triple>* out) const {
  return TryGetRangeHinted(s, p, o, out, nullptr);
}

bool SnapshotSource::TryGetRangeHinted(rdf::TermId s, rdf::TermId p,
                                       rdf::TermId o,
                                       std::span<const rdf::Triple>* out,
                                       RangeHint* hint) const {
  // Zero-copy iff (a) the frozen head cannot touch the pattern, (b) no
  // run's removals can filter it, and (c) at most one sealed generation
  // holds matches — then that generation's clustered range IS the answer.
  // The combined presence unions make the hot case (pattern untouched by
  // every run) cost two presence checks regardless of the run count, so a
  // snapshot probe stays within a few percent of a pristine Store's.
  if (!head_.empty() && head_.MayAffect(s, p, o)) return false;
  if (version_->RunsMayRemove(s, p, o)) return false;
  // The hint always tracks the base index: in the monotone lookup sequences
  // it accelerates, the base is overwhelmingly the contributing generation.
  std::span<const rdf::Triple> chosen =
      hint == nullptr ? version_->base->EqualRangeSpan(s, p, o)
                      : version_->base->EqualRangeSpanHinted(s, p, o, hint);
  if (!version_->RunsMayAdd(s, p, o)) {
    *out = chosen;
    return true;
  }
  size_t contributors = chosen.empty() ? 0 : 1;
  for (const auto& run : version_->runs) {
    if (!run->MayAddMatch(s, p, o)) continue;
    std::span<const rdf::Triple> adds = run->adds().EqualRangeSpan(s, p, o);
    if (adds.empty()) continue;
    if (++contributors > 1) return false;
    chosen = adds;
  }
  *out = chosen;  // contributors == 0 delivers the empty range, still exact
  return true;
}

bool SnapshotSource::TryGetIntervalRange(
    rdf::TermId s, rdf::TermId p, rdf::TermId o, int range_pos, rdf::TermId hi,
    std::span<const rdf::Triple>* out) const {
  // Presence probes must cover every id the interval spans, so the ranged
  // position is widened to a wildcard: conservative, never unsound.
  const bool on_p = range_pos == 1;
  const rdf::TermId ws = s;
  const rdf::TermId wp = on_p ? kAny : p;
  const rdf::TermId wo = on_p ? o : kAny;
  if (!head_.empty() && head_.MayAffect(ws, wp, wo)) return false;
  if (version_->RunsMayRemove(ws, wp, wo)) return false;
  std::span<const rdf::Triple> chosen;
  if (!version_->base->TryGetIntervalRange(s, p, o, range_pos, hi, &chosen)) {
    return false;  // interval not contiguous in any clustered order
  }
  if (!version_->RunsMayAdd(ws, wp, wo)) {
    *out = chosen;
    return true;
  }
  size_t contributors = chosen.empty() ? 0 : 1;
  for (const auto& run : version_->runs) {
    if (!run->MayAddMatch(ws, wp, wo)) continue;
    std::span<const rdf::Triple> adds;
    if (!run->adds().TryGetIntervalRange(s, p, o, range_pos, hi, &adds)) {
      return false;
    }
    if (adds.empty()) continue;
    if (++contributors > 1) return false;
    chosen = adds;
  }
  *out = chosen;
  return true;
}

size_t SnapshotSource::CountMatches(rdf::TermId s, rdf::TermId p,
                                    rdf::TermId o) const {
  // Exact by the generation invariants: every add was invisible when
  // recorded, every removal kills exactly one visible older occurrence.
  size_t count = version_->base->CountMatches(s, p, o);
  if (version_->RunsMayAdd(s, p, o) || version_->RunsMayRemove(s, p, o)) {
    for (const auto& run : version_->runs) {
      if (run->MayAddMatch(s, p, o)) count += run->adds().CountMatches(s, p, o);
      count -= run->CountRemovedMatches(s, p, o);
    }
  }
  if (!head_.added.empty() && head_.added_presence.MayMatch(s, p, o)) {
    for (const rdf::Triple& t : head_.added) {
      if (MatchesPattern(t, s, p, o)) ++count;
    }
  }
  if (!head_.removed.empty() && head_.removed_presence.MayMatch(s, p, o)) {
    for (const rdf::Triple& t : head_.removed) {
      if (MatchesPattern(t, s, p, o)) --count;
    }
  }
  return count;
}

std::vector<rdf::Triple> SnapshotSource::Materialize() const {
  std::vector<rdf::Triple> triples;
  ScanInto(kAny, kAny, kAny, &triples);  // already SPO-sorted (see ScanInto)
  return triples;
}

// ---------------------------------------------------------------------------
// VersionSet
// ---------------------------------------------------------------------------

VersionSet::VersionSet(const Store* base) : dict_(&base->dict()) {
  auto initial = std::make_shared<Version>();
  initial->generation = 0;
  // Non-owning alias: the caller keeps the initial base alive.
  initial->base = std::shared_ptr<const Store>(base, [](const Store*) {});
  current_ = std::move(initial);
}

VersionSet::~VersionSet() { StopBackgroundCompaction(); }

bool VersionSet::ContainsSealedLocked(const rdf::Triple& t) const {
  const auto& runs = current_->runs;
  for (size_t i = runs.size(); i-- > 0;) {
    if (runs[i]->Removes(t)) return false;
    if (runs[i]->adds().Contains(t)) return true;
  }
  return current_->base->Contains(t);
}

bool VersionSet::Insert(const rdf::Triple& t) {
  bool changed = false;
  bool signal = false;
  {
    common::MutexLock lock(&mu_);
    if (head_.removed.erase(t) > 0) {  // un-hide a sealed triple
      if (head_.removed.empty()) head_.removed_presence.Clear();
      changed = true;
    } else if (!ContainsSealedLocked(t) && head_.added.insert(t).second) {
      head_.added_presence.Add(t);
      changed = true;
    }
    if (changed) {
      ++epoch_;
      if (observer_ != nullptr) observer_->OnEpochWrite(t, epoch_, true);
    }
    signal = maintenance_enabled_ && head_.size() >= options_.freeze_threshold;
  }
  if (signal) work_cv_.Signal();
  return changed;
}

bool VersionSet::Remove(const rdf::Triple& t) {
  bool changed = false;
  bool signal = false;
  {
    common::MutexLock lock(&mu_);
    if (head_.added.erase(t) > 0) {  // retract a head-only addition
      if (head_.added.empty()) head_.added_presence.Clear();
      changed = true;
    } else if (ContainsSealedLocked(t) && head_.removed.insert(t).second) {
      head_.removed_presence.Add(t);
      changed = true;
    }
    if (changed) {
      ++epoch_;
      if (observer_ != nullptr) observer_->OnEpochWrite(t, epoch_, false);
    }
    signal = maintenance_enabled_ && head_.size() >= options_.freeze_threshold;
  }
  if (signal) work_cv_.Signal();
  return changed;
}

void VersionSet::SetWriteObserver(EpochWriteObserver* observer) {
  common::MutexLock lock(&mu_);
  observer_ = observer;
}

bool VersionSet::Contains(const rdf::Triple& t) const {
  common::MutexLock lock(&mu_);
  if (!head_.added.empty() && head_.added.count(t) > 0) return true;
  if (!head_.removed.empty() && head_.removed.count(t) > 0) return false;
  return ContainsSealedLocked(t);
}

uint64_t VersionSet::epoch() const {
  common::MutexLock lock(&mu_);
  return epoch_;
}

SnapshotPtr VersionSet::snapshot() const {
  common::MutexLock lock(&mu_);
  // Copies the (small, threshold-bounded) head; the version is shared.
  // From here the reader never touches the VersionSet again.
  return std::make_shared<const SnapshotSource>(epoch_, current_, head_);
}

void VersionSet::FreezeLocked() {
  if (head_.empty()) return;
  std::vector<rdf::Triple> added(head_.added.begin(), head_.added.end());
  std::vector<rdf::Triple> removed(head_.removed.begin(), head_.removed.end());
  auto run =
      std::make_shared<const DeltaRun>(dict_, std::move(added), std::move(removed));
  auto next = std::make_shared<Version>();
  next->generation = current_->generation + 1;
  next->base = current_->base;
  next->runs = current_->runs;
  // Extend the combined presence unions with the newly sealed run.
  next->runs_added_presence = current_->runs_added_presence;
  next->runs_removed_presence = current_->runs_removed_presence;
  AddRunToPresence(*run, &next->runs_added_presence,
                   &next->runs_removed_presence);
  next->runs.push_back(std::move(run));
  current_ = std::move(next);  // the single publication point
  head_ = HeadDelta{};
}

void VersionSet::Freeze() {
  bool signal = false;
  {
    common::MutexLock lock(&mu_);
    FreezeLocked();
    signal = maintenance_enabled_ &&
             current_->runs.size() >= options_.compact_min_runs;
  }
  if (signal) work_cv_.Signal();
}

void VersionSet::Compact() {
  std::shared_ptr<const Version> captured;
  {
    common::MutexLock lock(&mu_);
    FreezeLocked();
    captured = current_;
  }
  if (captured->runs.empty()) return;  // already fully compacted

  // The O(base) merge runs outside the lock: writers and snapshots proceed
  // against `captured` (or newer) meanwhile. An all-sealed snapshot of the
  // captured version materializes exactly its visible set.
  SnapshotSource frozen_view(0, captured, HeadDelta{});
  auto merged = std::make_shared<const Store>(dict_, frozen_view.Materialize());

  common::MutexLock lock(&mu_);
  // Publish only if no racing compaction replaced the base while we merged
  // (our merge would silently drop the runs that compaction consumed).
  if (current_->base != captured->base) return;
  auto next = std::make_shared<Version>();
  next->generation = current_->generation + 1;
  next->base = std::move(merged);
  // Runs sealed after our capture still overlay the merged base; their
  // combined presence is rebuilt from scratch (the unions cannot subtract).
  next->runs.assign(current_->runs.begin() + captured->runs.size(),
                    current_->runs.end());
  for (const auto& run : next->runs) {
    AddRunToPresence(*run, &next->runs_added_presence,
                     &next->runs_removed_presence);
  }
  current_ = std::move(next);
}

void VersionSet::StartBackgroundCompaction(const VersionSetOptions& options) {
  common::MutexLock lock(&mu_);
  if (maintenance_enabled_) return;
  assert(options.freeze_threshold > 0 && "freeze_threshold must be positive");
  maintenance_enabled_ = true;
  stop_maintenance_ = false;
  options_ = options;
  maintenance_ = std::thread([this] { MaintenanceLoop(); });
}

void VersionSet::StopBackgroundCompaction() {
  std::thread joiner;
  {
    common::MutexLock lock(&mu_);
    if (!maintenance_enabled_) return;
    stop_maintenance_ = true;
    maintenance_enabled_ = false;
    joiner = std::move(maintenance_);
  }
  work_cv_.SignalAll();
  if (joiner.joinable()) joiner.join();
}

void VersionSet::MaintenanceLoop() {
  for (;;) {
    bool do_compact = false;
    {
      common::MutexLock lock(&mu_);
      work_cv_.Wait(&mu_, [this]() RDFREF_REQUIRES(mu_) {
        return stop_maintenance_ ||
               head_.size() >= options_.freeze_threshold ||
               current_->runs.size() >= options_.compact_min_runs;
      });
      if (stop_maintenance_) return;
      if (head_.size() >= options_.freeze_threshold) FreezeLocked();
      do_compact = current_->runs.size() >= options_.compact_min_runs;
    }
    // Compaction re-acquires the lock only to capture and to publish; the
    // merge itself never blocks writers or snapshot pinning.
    if (do_compact) Compact();
  }
}

size_t VersionSet::head_size() const {
  common::MutexLock lock(&mu_);
  return head_.size();
}

size_t VersionSet::num_runs() const {
  common::MutexLock lock(&mu_);
  return current_->runs.size();
}

}  // namespace storage
}  // namespace rdfref
