#ifndef RDFREF_STORAGE_VERTICAL_STORE_H_
#define RDFREF_STORAGE_VERTICAL_STORE_H_

#include <unordered_map>
#include <vector>

#include "common/annotations.h"
#include "rdf/dictionary.h"
#include "rdf/graph.h"
#include "storage/triple_source.h"

namespace rdfref {
namespace storage {

/// \brief A second RDBMS-style back-end: vertically partitioned storage —
/// one two-column (subject, object) table per property, each kept in both
/// subject and object order.
///
/// The demonstration runs its reformulations against *three* different
/// RDBMSs; this backend (the classic SW-store / vertical-partitioning
/// layout) complements the clustered-permutation Store so the benchmarks
/// can compare reformulation strategies across physical designs:
///   - property-bound patterns are fast (a dedicated table);
///   - patterns with an *unbound property* must union over every table —
///     precisely the access pattern reformulation rules 8-13 generate,
///     which is why variable-property atoms are expensive here.
class VerticalStore : public TripleSource {
 public:
  explicit VerticalStore(const rdf::Graph& graph);

  VerticalStore(const VerticalStore&) = delete;
  VerticalStore& operator=(const VerticalStore&) = delete;

  void Scan(rdf::TermId s, rdf::TermId p, rdf::TermId o,
            const std::function<void(const rdf::Triple&)>& fn)  // rdfref-check: allow(std-function)
      const override;
  size_t CountMatches(rdf::TermId s, rdf::TermId p,
                      rdf::TermId o) const override;
  const rdf::Dictionary& dict() const RDFREF_LIFETIME_BOUND override {
    return *dict_;
  }

  size_t size() const { return total_; }
  size_t num_properties() const { return tables_.size(); }

 private:
  struct PropertyTable {
    std::vector<std::pair<rdf::TermId, rdf::TermId>> by_subject;  // (s, o)
    std::vector<std::pair<rdf::TermId, rdf::TermId>> by_object;   // (o, s)
  };

  // Scans one property table under the given subject/object bounds.
  static void ScanTable(const PropertyTable& table, rdf::TermId p,
                        rdf::TermId s, rdf::TermId o,
                        const std::function<void(const rdf::Triple&)>& fn);  // rdfref-check: allow(std-function)
  static size_t CountTable(const PropertyTable& table, rdf::TermId s,
                           rdf::TermId o);

  const rdf::Dictionary* dict_;
  std::unordered_map<rdf::TermId, PropertyTable> tables_;
  std::vector<rdf::TermId> properties_;  // deterministic iteration order
  size_t total_ = 0;
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_VERTICAL_STORE_H_
