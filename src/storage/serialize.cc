#include "storage/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "rdf/encoding.h"
#include "rdf/vocab.h"

namespace rdfref {
namespace storage {

namespace {

constexpr char kMagic[4] = {'R', 'D', 'F', 'B'};
constexpr uint32_t kVersion = 2;
constexpr uint32_t kMinVersion = 1;  // v1: no trailing encoding section

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4] = {static_cast<char>(v & 0xff),
                 static_cast<char>((v >> 8) & 0xff),
                 static_cast<char>((v >> 16) & 0xff),
                 static_cast<char>((v >> 24) & 0xff)};
  out.write(buf, 4);
}

bool ReadU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
       (static_cast<uint32_t>(buf[2]) << 16) |
       (static_cast<uint32_t>(buf[3]) << 24);
  return true;
}

}  // namespace

Status SaveGraph(const rdf::Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);

  const rdf::Dictionary& dict = graph.dict();
  out.write(kMagic, 4);
  WriteU32(out, kVersion);
  WriteU32(out, static_cast<uint32_t>(dict.size()));
  WriteU32(out, static_cast<uint32_t>(graph.size()));

  // Dictionary ids are dense 0..size-1 under any permutation; the image
  // records terms in id order.  // rdfref-check: allow(termid-arith)
  for (rdf::TermId id = 0; id < dict.size(); ++id) {
    const rdf::Term& term = dict.Lookup(id);
    char kind = static_cast<char>(term.kind);
    out.write(&kind, 1);
    WriteU32(out, static_cast<uint32_t>(term.lexical.size()));
    out.write(term.lexical.data(),
              static_cast<std::streamsize>(term.lexical.size()));
  }
  for (const rdf::Triple& t : graph.SortedTriples()) {
    WriteU32(out, t.s);
    WriteU32(out, t.p);
    WriteU32(out, t.o);
  }

  const rdf::TermEncoding* encoding = dict.encoding();
  WriteU32(out, encoding != nullptr ? 1 : 0);
  if (encoding != nullptr) {
    auto write_intervals =
        [&](const std::map<rdf::TermId, rdf::TermEncoding::Interval>& m) {
          WriteU32(out, static_cast<uint32_t>(m.size()));
          for (const auto& [id, iv] : m) {
            WriteU32(out, id);
            WriteU32(out, iv.lo);
            WriteU32(out, iv.hi);
          }
        };
    write_intervals(encoding->class_intervals());
    write_intervals(encoding->property_intervals());
    WriteU32(out,
             static_cast<uint32_t>(encoding->scc_representatives().size()));
    for (const auto& [id, rep] : encoding->scc_representatives()) {
      WriteU32(out, id);
      WriteU32(out, rep);
    }
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<rdf::Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);

  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::ParseError("not an RDFB graph image: " + path);
  }
  uint32_t version = 0, num_terms = 0, num_triples = 0;
  if (!ReadU32(in, &version) || version < kMinVersion ||
      version > kVersion) {
    return Status::ParseError("unsupported RDFB version");
  }
  if (!ReadU32(in, &num_terms) || !ReadU32(in, &num_triples)) {
    return Status::ParseError("truncated RDFB header");
  }
  if (num_terms < rdf::vocab::kNumBuiltins) {
    return Status::ParseError("RDFB image is missing the built-in terms");
  }

  rdf::Graph graph;
  for (uint32_t id = 0; id < num_terms; ++id) {
    char kind;
    uint32_t length = 0;
    if (!in.read(&kind, 1) || !ReadU32(in, &length)) {
      return Status::ParseError("truncated term table");
    }
    std::string lexical(length, '\0');
    if (length > 0 && !in.read(lexical.data(), length)) {
      return Status::ParseError("truncated term table");
    }
    rdf::Term term(static_cast<rdf::TermKind>(kind), std::move(lexical));
    rdf::TermId interned = graph.dict().Intern(term);
    if (interned != id) {
      // The image's ids must be dense and in intern order (the built-ins
      // first); anything else means a corrupted or reordered file.
      return Status::ParseError("RDFB term table out of intern order");
    }
  }
  for (uint32_t i = 0; i < num_triples; ++i) {
    uint32_t s = 0, p = 0, o = 0;
    if (!ReadU32(in, &s) || !ReadU32(in, &p) || !ReadU32(in, &o)) {
      return Status::ParseError("truncated triple table");
    }
    if (s >= num_terms || p >= num_terms || o >= num_terms) {
      return Status::ParseError("triple references unknown term");
    }
    graph.Add(s, p, o);
  }

  if (version >= 2) {
    uint32_t has_encoding = 0;
    if (!ReadU32(in, &has_encoding)) {
      return Status::ParseError("truncated encoding flag");
    }
    if (has_encoding > 1) {
      return Status::ParseError("bad encoding flag");
    }
    if (has_encoding == 1) {
      auto encoding = std::make_shared<rdf::TermEncoding>();
      auto read_intervals = [&](bool classes) -> bool {
        uint32_t n = 0;
        if (!ReadU32(in, &n)) return false;
        for (uint32_t i = 0; i < n; ++i) {
          uint32_t id = 0, lo = 0, hi = 0;
          if (!ReadU32(in, &id) || !ReadU32(in, &lo) || !ReadU32(in, &hi)) {
            return false;
          }
          if (id >= num_terms || lo > hi || hi >= num_terms) return false;
          rdf::TermEncoding::Interval iv{lo, hi};
          if (classes) {
            encoding->SetClassInterval(id, iv);
          } else {
            encoding->SetPropertyInterval(id, iv);
          }
        }
        return true;
      };
      if (!read_intervals(true) || !read_intervals(false)) {
        return Status::ParseError("truncated interval table");
      }
      uint32_t num_sccs = 0;
      if (!ReadU32(in, &num_sccs)) {
        return Status::ParseError("truncated SCC table");
      }
      for (uint32_t i = 0; i < num_sccs; ++i) {
        uint32_t id = 0, rep = 0;
        if (!ReadU32(in, &id) || !ReadU32(in, &rep)) {
          return Status::ParseError("truncated SCC table");
        }
        if (id >= num_terms || rep >= num_terms) {
          return Status::ParseError("SCC entry references unknown term");
        }
        encoding->SetSccRepresentative(id, rep);
      }
      graph.dict().set_encoding(std::move(encoding));
    }
  }
  return graph;
}

}  // namespace storage
}  // namespace rdfref
