#include "storage/serialize.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "rdf/vocab.h"

namespace rdfref {
namespace storage {

namespace {

constexpr char kMagic[4] = {'R', 'D', 'F', 'B'};
constexpr uint32_t kVersion = 1;

void WriteU32(std::ostream& out, uint32_t v) {
  char buf[4] = {static_cast<char>(v & 0xff),
                 static_cast<char>((v >> 8) & 0xff),
                 static_cast<char>((v >> 16) & 0xff),
                 static_cast<char>((v >> 24) & 0xff)};
  out.write(buf, 4);
}

bool ReadU32(std::istream& in, uint32_t* v) {
  unsigned char buf[4];
  if (!in.read(reinterpret_cast<char*>(buf), 4)) return false;
  *v = static_cast<uint32_t>(buf[0]) | (static_cast<uint32_t>(buf[1]) << 8) |
       (static_cast<uint32_t>(buf[2]) << 16) |
       (static_cast<uint32_t>(buf[3]) << 24);
  return true;
}

}  // namespace

Status SaveGraph(const rdf::Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::Internal("cannot open for writing: " + path);

  const rdf::Dictionary& dict = graph.dict();
  out.write(kMagic, 4);
  WriteU32(out, kVersion);
  WriteU32(out, static_cast<uint32_t>(dict.size()));
  WriteU32(out, static_cast<uint32_t>(graph.size()));

  for (rdf::TermId id = 0; id < dict.size(); ++id) {
    const rdf::Term& term = dict.Lookup(id);
    char kind = static_cast<char>(term.kind);
    out.write(&kind, 1);
    WriteU32(out, static_cast<uint32_t>(term.lexical.size()));
    out.write(term.lexical.data(),
              static_cast<std::streamsize>(term.lexical.size()));
  }
  for (const rdf::Triple& t : graph.SortedTriples()) {
    WriteU32(out, t.s);
    WriteU32(out, t.p);
    WriteU32(out, t.o);
  }
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<rdf::Graph> LoadGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open: " + path);

  char magic[4];
  if (!in.read(magic, 4) || std::memcmp(magic, kMagic, 4) != 0) {
    return Status::ParseError("not an RDFB graph image: " + path);
  }
  uint32_t version = 0, num_terms = 0, num_triples = 0;
  if (!ReadU32(in, &version) || version != kVersion) {
    return Status::ParseError("unsupported RDFB version");
  }
  if (!ReadU32(in, &num_terms) || !ReadU32(in, &num_triples)) {
    return Status::ParseError("truncated RDFB header");
  }
  if (num_terms < rdf::vocab::kNumBuiltins) {
    return Status::ParseError("RDFB image is missing the built-in terms");
  }

  rdf::Graph graph;
  for (uint32_t id = 0; id < num_terms; ++id) {
    char kind;
    uint32_t length = 0;
    if (!in.read(&kind, 1) || !ReadU32(in, &length)) {
      return Status::ParseError("truncated term table");
    }
    std::string lexical(length, '\0');
    if (length > 0 && !in.read(lexical.data(), length)) {
      return Status::ParseError("truncated term table");
    }
    rdf::Term term(static_cast<rdf::TermKind>(kind), std::move(lexical));
    rdf::TermId interned = graph.dict().Intern(term);
    if (interned != id) {
      // The image's ids must be dense and in intern order (the built-ins
      // first); anything else means a corrupted or reordered file.
      return Status::ParseError("RDFB term table out of intern order");
    }
  }
  for (uint32_t i = 0; i < num_triples; ++i) {
    uint32_t s = 0, p = 0, o = 0;
    if (!ReadU32(in, &s) || !ReadU32(in, &p) || !ReadU32(in, &o)) {
      return Status::ParseError("truncated triple table");
    }
    if (s >= num_terms || p >= num_terms || o >= num_terms) {
      return Status::ParseError("triple references unknown term");
    }
    graph.Add(s, p, o);
  }
  return graph;
}

}  // namespace storage
}  // namespace rdfref
