#ifndef RDFREF_STORAGE_EPOCH_OBSERVER_H_
#define RDFREF_STORAGE_EPOCH_OBSERVER_H_

#include <cstdint>

#include "rdf/triple.h"

namespace rdfref {
namespace storage {

/// \brief Write-notification interface of the versioned explicit database.
///
/// The version set invokes the registered observer once per
/// *visibility-changing* update (no-op inserts/removes are silent), in
/// strict epoch order with no gaps, passing the *new* write epoch — the
/// first epoch at which the change is visible to snapshots. This is the
/// invalidation feed of the cross-query view cache (DESIGN.md §15): the
/// cache compares each written triple against the pattern footprints of
/// its cached views and either extends or caps their validity windows.
///
/// Contract: the callback runs UNDER the version set's internal mutex, on
/// the writer's thread. Implementations must be O(1)-ish, may take only
/// their own (leaf) locks, and must never call back into the notifying
/// version set — doing so would self-deadlock.
class EpochWriteObserver {
 public:
  virtual ~EpochWriteObserver() = default;

  /// \brief `t` became visible (`added`) or stopped being visible
  /// (!`added`) at epoch `epoch`.
  virtual void OnEpochWrite(const rdf::Triple& t, uint64_t epoch,
                            bool added) = 0;
};

}  // namespace storage
}  // namespace rdfref

#endif  // RDFREF_STORAGE_EPOCH_OBSERVER_H_
